// Ablation: single hoisted target-data region vs per-kernel mapping
// (paper §IV-D: "Misplacing a data construct in a loop when it could be
// placed outside the loop body will almost definitely incur a significant
// performance penalty"). Disabling region extension reduces OMPDart to
// per-kernel clauses, which re-transfers on every launch inside loops.
#include "driver/pipeline.hpp"
#include "exp/experiment.hpp"
#include "interp/interp.hpp"
#include "suite/benchmarks.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace {

std::uint64_t bytesWith(const std::string &benchmarkName, bool extend) {
  ompdart::PipelineConfig config;
  config.planner.extendRegionOverLoops = extend;
  const auto *def = ompdart::suite::findBenchmark(benchmarkName);
  ompdart::Session session(benchmarkName + ".c", def->unoptimized, config);
  const bool ok = session.run();
  const auto run = ompdart::interp::runProgram(
      ok ? session.rewrite() : def->unoptimized);
  return run.ledger.totalBytes();
}

void regionExtent(benchmark::State &state, const std::string &name) {
  for (auto _ : state)
    benchmark::DoNotOptimize(bytesWith(name, true));
  state.counters["bytes_hoisted"] =
      static_cast<double>(bytesWith(name, true));
  state.counters["bytes_per_kernel"] =
      static_cast<double>(bytesWith(name, false));
}

} // namespace

int main(int argc, char **argv) {
  for (const char *name : {"ace", "accuracy", "xsbench"}) {
    benchmark::RegisterBenchmark(
        (std::string("region_extent/") + name).c_str(),
        [name](benchmark::State &state) { regionExtent(state, name); })
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nABLATION: region extent (hoisted region vs per-kernel "
              "maps)\n");
  std::printf("  benchmark    hoisted-region    per-kernel     penalty\n");
  for (const char *name : {"ace", "accuracy", "xsbench"}) {
    const std::uint64_t hoisted = bytesWith(name, true);
    const std::uint64_t perKernel = bytesWith(name, false);
    std::printf("  %-10s %15s %13s %9.1fx\n", name,
                ompdart::exp::formatBytes(hoisted).c_str(),
                ompdart::exp::formatBytes(perKernel).c_str(),
                hoisted > 0 ? static_cast<double>(perKernel) /
                                  static_cast<double>(hoisted)
                            : 0.0);
  }
  return 0;
}
