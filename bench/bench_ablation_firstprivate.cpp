// Ablation: firstprivate vs map(to:) for read-only scalars (paper §IV-D).
// The paper credits firstprivate for 57%/33%/38% memcpy-call reductions in
// hotspot/nw/xsbench; this bench disables the optimization and measures the
// call-count delta on those three benchmarks.
#include "driver/pipeline.hpp"
#include "exp/experiment.hpp"
#include "interp/interp.hpp"
#include "suite/benchmarks.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace {

unsigned callsWith(const std::string &benchmarkName, bool useFirstprivate) {
  ompdart::PipelineConfig config;
  config.planner.useFirstprivate = useFirstprivate;
  const auto *def = ompdart::suite::findBenchmark(benchmarkName);
  ompdart::Session session(benchmarkName + ".c", def->unoptimized, config);
  const auto run = ompdart::interp::runProgram(session.rewrite());
  return run.ledger.totalCalls();
}

void firstprivateAblation(benchmark::State &state,
                          const std::string &benchmarkName) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(callsWith(benchmarkName, true));
  }
  state.counters["calls_firstprivate"] = callsWith(benchmarkName, true);
  state.counters["calls_map_to"] = callsWith(benchmarkName, false);
}

} // namespace

int main(int argc, char **argv) {
  for (const char *name : {"hotspot", "nw", "xsbench"}) {
    benchmark::RegisterBenchmark(
        (std::string("firstprivate/") + name).c_str(),
        [name](benchmark::State &state) {
          firstprivateAblation(state, name);
        })
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nABLATION: firstprivate vs map(to:) for read-only scalars\n");
  std::printf("  benchmark    calls(firstprivate)  calls(map-to)  "
              "reduction   paper\n");
  const double paperReduction[] = {57.0, 33.0, 38.0};
  int index = 0;
  for (const char *name : {"hotspot", "nw", "xsbench"}) {
    const unsigned with = callsWith(name, true);
    const unsigned without = callsWith(name, false);
    const double reduction =
        without > 0 ? 100.0 * (without - with) / without : 0.0;
    std::printf("  %-10s %15u %15u %9.0f%% %6.0f%%\n", name, with, without,
                reduction, paperReduction[index++]);
  }
  return 0;
}
