// Fuzz gate: the generator-driven scenario engine at CI scale. Runs 500
// seeded programs through the differential plan-correctness oracle over the
// batch worker pool and writes BENCH_fuzz.json. Exits non-zero unless:
//   1. every program that ran inside the time box passes all three oracle
//      invariants (output equality, transfer bound, predicted==simulated
//      for byte-predictable plans) — and at least 500 actually ran,
//   2. the same seed range regenerates the corpus byte-for-byte (and a
//      warm second oracle pass over the shared plan cache is 100% hits),
//   3. the statement-deletion shrinker reduces an injected failure to at
//      most 25% of the original statement count.
#include "driver/batch.hpp"
#include "gen/generator.hpp"
#include "gen/shrink.hpp"
#include "interp/interp.hpp"
#include "support/json.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

namespace fs = std::filesystem;

namespace {

constexpr unsigned kPrograms = 500;
constexpr std::uint64_t kBaseSeed = 1;
// CI time box: generous for the gate's scale (the run takes seconds), but
// a hard stop if something degenerates.
constexpr double kTimeBoxSeconds = 600.0;

fs::path freshCacheDir() {
  std::random_device rd;
  const fs::path dir = fs::temp_directory_path() /
                       ("ompdart-bench-fuzz-" + std::to_string(rd()));
  fs::remove_all(dir);
  return dir;
}

/// Any shrunken failing programs land here for CI artifact upload.
void dumpFailures(const ompdart::FuzzResult &result) {
  if (result.failures.empty())
    return;
  fs::create_directories("fuzz-artifacts");
  for (const ompdart::FuzzFailure &failure : result.failures) {
    std::ofstream out(fs::path("fuzz-artifacts") / (failure.name + ".c"));
    out << "// seed " << failure.seed << "\n// " << failure.divergence
        << "\n"
        << (failure.shrunken.empty() ? failure.source : failure.shrunken);
    std::fprintf(stderr, "wrote fuzz-artifacts/%s.c\n",
                 failure.name.c_str());
  }
}

} // namespace

int main() {
  using ompdart::BatchDriver;
  namespace json = ompdart::json;
  bool ok = true;

  const fs::path cacheDir = freshCacheDir();
  BatchDriver::Options options;
  options.config.cacheDir = cacheDir.string();
  options.config.cacheMode = ompdart::cache::CacheMode::ReadWrite;
  BatchDriver driver(options);

  BatchDriver::FuzzOptions fuzz;
  fuzz.baseSeed = kBaseSeed;
  fuzz.count = kPrograms;
  fuzz.shrinkFailures = true;
  fuzz.checkRewrite = true; // the rewrite leg caught braceless-body bugs
  fuzz.timeBoxSeconds = kTimeBoxSeconds;

  // Gate 1: the cold oracle pass.
  const ompdart::FuzzResult cold = driver.runFuzz(fuzz);
  if (cold.stats.ran < kPrograms) {
    std::fprintf(stderr, "time box cut the run: %u/%u programs ran\n",
                 cold.stats.ran, kPrograms);
    ok = false;
  }
  if (cold.stats.failed != 0) {
    std::fprintf(stderr, "%u programs failed the oracle\n",
                 cold.stats.failed);
    for (const ompdart::FuzzFailure &failure : cold.failures)
      std::fprintf(stderr, "  %s (seed %llu): %s\n", failure.name.c_str(),
                   static_cast<unsigned long long>(failure.seed),
                   failure.divergence.substr(0, 200).c_str());
    dumpFailures(cold);
    ok = false;
  }

  // Gate 2a: byte-for-byte corpus reproducibility.
  const auto corpusA = ompdart::gen::generateCorpus(kBaseSeed, kPrograms);
  const auto corpusB = ompdart::gen::generateCorpus(kBaseSeed, kPrograms);
  bool reproducible = corpusA.size() == corpusB.size();
  for (std::size_t i = 0; reproducible && i < corpusA.size(); ++i)
    reproducible = corpusA[i].combined() == corpusB[i].combined() &&
                   corpusA[i].provableTrips == corpusB[i].provableTrips;
  if (!reproducible) {
    std::fprintf(stderr, "same seed range produced different corpora\n");
    ok = false;
  }

  // Gate 2b: a second pass over the same cache re-hydrates every plan.
  const ompdart::FuzzResult warm = driver.runFuzz(fuzz);
  if (warm.stats.planCacheHits != warm.stats.ran || warm.stats.ran == 0) {
    std::fprintf(stderr, "warm fuzz pass not fully cached: %u hits / %u\n",
                 warm.stats.planCacheHits, warm.stats.ran);
    ok = false;
  }
  if (warm.stats.failed != cold.stats.failed ||
      warm.stats.planBytes != cold.stats.planBytes) {
    std::fprintf(stderr, "warm pass verdicts differ from cold pass\n");
    ok = false;
  }

  // Gate 3: the shrinker reduces an injected failure to <= 25% of the
  // original statement count. The injected bug is a marker statement deep
  // inside a generated program; the predicate is "still runs and still
  // prints the marker", the standard delta-debugging stand-in for a
  // divergence only one statement causes.
  ompdart::gen::GeneratedProgram victim =
      ompdart::gen::generateProgram(kBaseSeed + 3);
  std::string bugged = victim.combined();
  const std::string tailMarker = "  return 0;\n}";
  const auto insertAt = bugged.rfind(tailMarker);
  double shrinkRatio = 1.0;
  unsigned shrinkFrom = 0;
  unsigned shrinkTo = 0;
  if (insertAt == std::string::npos) {
    std::fprintf(stderr, "cannot inject failure into generated program\n");
    ok = false;
  } else {
    bugged.insert(insertAt, "  printf(\"FUZZBUG\\n\");\n");
    const auto shrunk = ompdart::gen::shrinkProgram(
        bugged, [](const std::string &candidate) {
          const auto run = ompdart::interp::runProgram(candidate);
          return run.ok && run.output.find("FUZZBUG") != std::string::npos;
        });
    shrinkRatio = shrunk.ratio();
    shrinkFrom = shrunk.originalStatements;
    shrinkTo = shrunk.finalStatements;
    if (shrunk.finalStatements * 4 > shrunk.originalStatements) {
      std::fprintf(stderr,
                   "shrinker left %u of %u statements (> 25%%)\n",
                   shrunk.finalStatements, shrunk.originalStatements);
      ok = false;
    }
  }

  json::Value out = json::Value::object();
  out.set("programs", kPrograms);
  out.set("baseSeed", kBaseSeed);
  out.set("cold", cold.stats.toJson());
  out.set("warm", warm.stats.toJson());
  out.set("corpusReproducible", reproducible);
  json::Value shrinkJson = json::Value::object();
  shrinkJson.set("originalStatements", shrinkFrom);
  shrinkJson.set("finalStatements", shrinkTo);
  shrinkJson.set("ratio", shrinkRatio);
  out.set("shrink", std::move(shrinkJson));
  out.set("gate", ok ? "pass" : "fail");
  {
    std::ofstream file("BENCH_fuzz.json");
    file << out.dump(/*pretty=*/true) << "\n";
  }
  std::printf("%s\n", out.dump(/*pretty=*/true).c_str());

  std::error_code ec;
  fs::remove_all(cacheDir, ec);
  return ok ? 0 : 1;
}
