// Regenerates paper Figure 4: HtoD/DtoH memcpy call counts per variant.
#include "exp/experiment.hpp"

#include <cstdio>

int main() {
  const auto results = ompdart::exp::runAllBenchmarks();
  std::printf("%s", ompdart::exp::renderFigure4(results).c_str());
  return 0;
}
