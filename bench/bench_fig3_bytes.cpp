// Regenerates paper Figure 3: HtoD/DtoH bytes for unoptimized vs OMPDart vs
// expert across the nine benchmarks (simulated A100-class runtime).
#include "exp/experiment.hpp"

#include <cstdio>

int main() {
  const auto results = ompdart::exp::runAllBenchmarks();
  std::printf("%s", ompdart::exp::renderFigure3(results).c_str());
  return 0;
}
