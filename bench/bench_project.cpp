// Whole-program project fidelity gate: runs the multi-TU xsbench split
// through the ProjectSession and checks that cross-TU pessimism actually
// disappears. Writes BENCH_project.json and exits non-zero unless:
//   - every TU pipeline succeeds and the combined planned program produces
//     the same output as the combined unoptimized program,
//   - every bodiless callee *defined elsewhere in the project* analyzed
//     with an imported summary (isExternal pessimism count == 0),
//   - the statically predicted transfer bytes reconcile with the simulated
//     runtime's ledger within the suite-wide [0.98, 1.02] gate,
//   - the no-imports (pessimistic, per-TU) baseline moves strictly more
//     bytes than the project plan — the inflation whole-program analysis
//     removes.
#include "driver/project.hpp"
#include "exp/experiment.hpp"
#include "interp/interp.hpp"
#include "suite/benchmarks.hpp"
#include "support/json.hpp"

#include <cstdio>
#include <fstream>

namespace {

std::uint64_t ledgerBytes(const ompdart::interp::RunResult &run) {
  return run.ledger.bytes(ompdart::sim::TransferDir::HtoD) +
         run.ledger.bytes(ompdart::sim::TransferDir::DtoH);
}

} // namespace

int main() {
  using namespace ompdart;

  const suite::ProjectBenchmarkDef &def = suite::xsbenchProject();
  ProjectManifest manifest;
  manifest.name = def.name;
  for (const auto &tu : def.tus)
    manifest.tus.push_back({tu.name, tu.name, tu.source});

  PipelineConfig config;
  config.includeOutputInReport = false;
  ProjectSession project(manifest, config);
  bool ok = project.run();
  if (!ok)
    std::fprintf(stderr, "project pipeline failed\n");

  // Gate: zero isExternal pessimism for in-project callees.
  unsigned pessimisticCallees = 0;
  unsigned importedCallees = 0;
  for (const auto &tu : def.tus) {
    Session *session = project.sessionFor(tu.name);
    if (session == nullptr)
      continue;
    for (const auto &[fn, summary] : session->interproc().summaries) {
      if (fn->isDefined())
        continue;
      auto definedIt = project.link().definedIn.find(fn->name());
      if (definedIt == project.link().definedIn.end() ||
          definedIt->second == tu.name)
        continue; // genuinely external (or local) — pessimism is correct
      if (summary.imported && !summary.isExternal)
        ++importedCallees;
      else
        ++pessimisticCallees;
    }
  }
  if (pessimisticCallees != 0) {
    std::fprintf(stderr, "%u in-project callees analyzed pessimistically\n",
                 pessimisticCallees);
    ok = false;
  }

  // Predicted (sum of per-TU static predictions) vs simulated (interpreted
  // combined planned program).
  std::uint64_t predicted = 0;
  std::string plannedCombined;
  for (const auto &tu : def.tus) {
    Session *session = project.sessionFor(tu.name);
    if (session == nullptr)
      continue;
    predicted += exp::predictedTransferBytes(session->ir());
    plannedCombined += session->rewrite();
  }
  const interp::RunResult plannedRun = interp::runProgram(plannedCombined);
  const interp::RunResult unoptRun = interp::runProgram(def.combined());
  const std::uint64_t simulated = ledgerBytes(plannedRun);
  const double ratio = predicted > 0
                           ? static_cast<double>(simulated) /
                                 static_cast<double>(predicted)
                           : 0.0;
  if (!plannedRun.ok || !unoptRun.ok ||
      plannedRun.output != unoptRun.output) {
    std::fprintf(stderr, "combined program outputs diverge\n");
    ok = false;
  }
  if (ratio < 0.98 || ratio > 1.02) {
    std::fprintf(stderr,
                 "predicted-vs-simulated ratio %.4f outside [0.98, 1.02] "
                 "(predicted %llu, simulated %llu)\n",
                 ratio, static_cast<unsigned long long>(predicted),
                 static_cast<unsigned long long>(simulated));
    ok = false;
  }

  // Pessimism baseline: per-TU planning without imports. The worst-case
  // summaries for cross-TU callees must cost strictly more transfers.
  std::string pessimisticCombined;
  for (const auto &tu : def.tus) {
    Session solo(tu.name, tu.source, config);
    solo.run();
    pessimisticCombined += solo.rewrite();
  }
  const interp::RunResult pessimisticRun =
      interp::runProgram(pessimisticCombined);
  const std::uint64_t pessimisticBytes = ledgerBytes(pessimisticRun);
  if (!(pessimisticBytes > simulated)) {
    std::fprintf(stderr,
                 "pessimistic baseline (%llu bytes) does not exceed the "
                 "project plan (%llu bytes): the benchmark no longer "
                 "demonstrates the pessimism gap\n",
                 static_cast<unsigned long long>(pessimisticBytes),
                 static_cast<unsigned long long>(simulated));
    ok = false;
  }

  std::printf("project %s: %zu TUs, schedule:", def.name.c_str(),
              def.tus.size());
  for (const auto &name : project.scheduleOrder())
    std::printf(" %s", name.c_str());
  std::printf("\n");
  std::printf("  imported callees: %u (pessimistic: %u)\n", importedCallees,
              pessimisticCallees);
  std::printf("  predicted %llu B, simulated %llu B, ratio %.4f\n",
              static_cast<unsigned long long>(predicted),
              static_cast<unsigned long long>(simulated), ratio);
  std::printf("  pessimistic per-TU baseline: %llu B (%.2fx inflation)\n",
              static_cast<unsigned long long>(pessimisticBytes),
              simulated > 0 ? static_cast<double>(pessimisticBytes) /
                                  static_cast<double>(simulated)
                            : 0.0);

  json::Value doc = json::Value::object();
  doc.set("project", def.name);
  doc.set("tus", static_cast<std::uint64_t>(def.tus.size()));
  json::Value scheduleJson = json::Value::array();
  for (const auto &name : project.scheduleOrder())
    scheduleJson.push(name);
  doc.set("schedule", std::move(scheduleJson));
  doc.set("importedCallees", importedCallees);
  doc.set("pessimisticCallees", pessimisticCallees);
  doc.set("predictedBytes", predicted);
  doc.set("simulatedBytes", simulated);
  doc.set("predictedVsSimulatedRatio", ratio);
  doc.set("pessimisticBaselineBytes", pessimisticBytes);
  doc.set("pessimismInflation",
          simulated > 0 ? static_cast<double>(pessimisticBytes) /
                              static_cast<double>(simulated)
                        : 0.0);
  doc.set("outputsMatch",
          plannedRun.ok && unoptRun.ok &&
              plannedRun.output == unoptRun.output);
  doc.set("allGatesPassed", ok);
  doc.set("report", project.reportJson());
  std::ofstream out("BENCH_project.json");
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("wrote BENCH_project.json\n");
  return ok ? 0 : 1;
}
