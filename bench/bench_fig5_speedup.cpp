// Regenerates paper Figure 5: modeled end-to-end speedups over the
// unoptimized variant, plus the paper's geometric-mean summary claims.
#include "exp/experiment.hpp"

#include <cstdio>

int main() {
  const auto results = ompdart::exp::runAllBenchmarks();
  std::printf("%s", ompdart::exp::renderFigure5(results).c_str());
  return 0;
}
