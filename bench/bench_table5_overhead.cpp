// Regenerates paper Table V: OMPDart tool execution time per benchmark.
// google-benchmark times the full tool pipeline (parse -> analyses -> plan
// -> rewrite) on each benchmark's unoptimized source, then the paper-style
// table is printed from single-shot runs.
#include "driver/tool.hpp"
#include "exp/experiment.hpp"
#include "suite/benchmarks.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

void toolOnBenchmark(benchmark::State &state, const std::string &source) {
  for (auto _ : state) {
    auto result = ompdart::runOmpDart(source);
    benchmark::DoNotOptimize(result.output.data());
    if (!result.success)
      state.SkipWithError("tool failed");
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const auto &def : ompdart::suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(("tool/" + def.name).c_str(),
                                 [source = def.unoptimized](
                                     benchmark::State &state) {
                                   toolOnBenchmark(state, source);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto results = ompdart::exp::runAllBenchmarks();
  std::printf("\n%s", ompdart::exp::renderTable5(results).c_str());
  return 0;
}
