// Regenerates paper Table V: OMPDart tool execution time per benchmark.
// google-benchmark times the full staged pipeline (parse -> cfg ->
// interproc -> plan -> rewrite -> metrics) on each benchmark's unoptimized
// source; the paper-style table is then printed from the per-stage Report
// timings of single-shot Sessions, a BatchDriver run compares concurrent
// against sequential throughput on the same inputs, and the whole result
// set is written to BENCH_table5.json.
#include "driver/batch.hpp"
#include "driver/pipeline.hpp"
#include "exp/experiment.hpp"
#include "suite/benchmarks.hpp"
#include "support/json.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

void toolOnBenchmark(benchmark::State &state, const std::string &name,
                     const std::string &source) {
  for (auto _ : state) {
    ompdart::Session session(name + ".c", source);
    session.run();
    benchmark::DoNotOptimize(session.rewrite().data());
    if (!session.success())
      state.SkipWithError("tool failed");
  }
}

std::vector<ompdart::BatchJob> suiteJobs() {
  std::vector<ompdart::BatchJob> jobs;
  for (const auto &def : ompdart::suite::allBenchmarks())
    jobs.push_back({def.name, def.name + ".c", def.unoptimized});
  return jobs;
}

} // namespace

int main(int argc, char **argv) {
  for (const auto &def : ompdart::suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(
        ("tool/" + def.name).c_str(),
        [name = def.name,
         source = def.unoptimized](benchmark::State &state) {
          toolOnBenchmark(state, name, source);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Single-shot per-stage timings (the Table V refinement): one Session per
  // benchmark, timings read from the structured Report.
  const auto &defs = ompdart::suite::allBenchmarks();
  std::vector<ompdart::Report> reports;
  for (const auto &def : defs) {
    ompdart::Session session(def.name + ".c", def.unoptimized);
    session.run();
    reports.push_back(session.report());
  }

  std::printf("\nTABLE V: OMPDart overhead, per pipeline stage (seconds)\n");
  std::printf("  %-10s %9s %9s %9s %9s %9s %9s %10s %9s\n", "benchmark",
              "parse", "cfg", "interproc", "plan", "rewrite", "metrics",
              "total", "paper");
  double sum = 0.0;
  for (std::size_t i = 0; i < defs.size(); ++i) {
    const ompdart::Report &report = reports[i];
    std::printf(
        "  %-10s %9.5f %9.5f %9.5f %9.5f %9.5f %9.5f %10.5f %9.2f\n",
        defs[i].name.c_str(), report.secondsFor(ompdart::Stage::Parse),
        report.secondsFor(ompdart::Stage::Cfg),
        report.secondsFor(ompdart::Stage::Interproc),
        report.secondsFor(ompdart::Stage::Plan),
        report.secondsFor(ompdart::Stage::Rewrite),
        report.secondsFor(ompdart::Stage::Metrics), report.totalSeconds,
        defs[i].paper.toolSeconds);
    sum += report.totalSeconds;
  }
  std::printf("  %-10s %69.5f\n", "average",
              defs.empty() ? 0.0 : sum / static_cast<double>(defs.size()));

  // Batch throughput: the same nine programs, concurrent vs sequential.
  const std::vector<ompdart::BatchJob> jobs = suiteJobs();
  ompdart::BatchDriver::Options sequentialOptions;
  sequentialOptions.threads = 1;
  const ompdart::BatchResult sequential =
      ompdart::BatchDriver(sequentialOptions).run(jobs);
  const ompdart::BatchResult concurrent = ompdart::BatchDriver().run(jobs);
  std::printf("\nBATCH: %u programs, sequential %.5fs wall vs concurrent "
              "%.5fs wall on %u threads (%.2fx)\n",
              concurrent.stats.jobs, sequential.stats.wallSeconds,
              concurrent.stats.wallSeconds, concurrent.stats.threads,
              concurrent.stats.wallSeconds > 0.0
                  ? sequential.stats.wallSeconds /
                        concurrent.stats.wallSeconds
                  : 0.0);

  // Machine-readable dump for downstream tooling/CI trend lines.
  ompdart::json::Value doc = ompdart::json::Value::object();
  ompdart::json::Value perBenchmark = ompdart::json::Value::array();
  for (std::size_t i = 0; i < defs.size(); ++i) {
    ompdart::json::Value entry = reports[i].toJson();
    entry.set("benchmark", defs[i].name);
    entry.set("paperToolSeconds", defs[i].paper.toolSeconds);
    // The transformed source is bulky and reproducible; keep the JSON lean.
    entry.set("output", ompdart::json::Value());
    perBenchmark.push(std::move(entry));
  }
  doc.set("table5", std::move(perBenchmark));
  doc.set("batchSequential", sequential.stats.toJson());
  doc.set("batchConcurrent", concurrent.stats.toJson());

  const char *jsonPath = "BENCH_table5.json";
  std::ofstream out(jsonPath);
  out << doc.dump(/*pretty=*/true);
  std::printf("wrote %s\n", jsonPath);
  return 0;
}
