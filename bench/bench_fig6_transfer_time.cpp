// Regenerates paper Figure 6: improvements in data-transfer wall time over
// the unoptimized variant (modeled: bytes/bandwidth + per-call latency).
// Also writes BENCH_plan_cost.json comparing the cost model's static
// prediction of the plan's transfer bytes against the bytes the simulated
// runtime actually moved per benchmark.
#include "exp/experiment.hpp"
#include "support/json.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace {

double secondsOf(const ompdart::exp::ExperimentOptions &options) {
  const auto start = std::chrono::steady_clock::now();
  const auto results = ompdart::exp::runAllBenchmarks({}, options);
  const auto end = std::chrono::steady_clock::now();
  (void)results;
  return std::chrono::duration<double>(end - start).count();
}

} // namespace

int main() {
  const auto results = ompdart::exp::runAllBenchmarks();
  std::printf("%s", ompdart::exp::renderFigure6(results).c_str());

  // Harness execution-path comparison: the plan-overlay backend skips the
  // rewrite→reparse round-trip the classic path pays per benchmark.
  ompdart::exp::ExperimentOptions overlayPath;
  ompdart::exp::ExperimentOptions rewritePath;
  rewritePath.useInterpBackend = false;
  const double rewriteSeconds = secondsOf(rewritePath);
  const double overlaySeconds = secondsOf(overlayPath);
  std::printf("\nharness path comparison (full suite):\n"
              "  rewrite+reparse path: %8.3f s\n"
              "  ApplyToInterpBackend: %8.3f s  (%.2fx)\n",
              rewriteSeconds, overlaySeconds,
              overlaySeconds > 0.0 ? rewriteSeconds / overlaySeconds : 0.0);

  ompdart::json::Value doc = ompdart::json::Value::object();
  ompdart::json::Value rows = ompdart::json::Value::array();
  for (const auto &cmp : results) {
    ompdart::json::Value row = ompdart::json::Value::object();
    row.set("benchmark", cmp.name);
    // Static prediction: one execution of the planned regions.
    row.set("predictedBytes", cmp.predictedPlanBytes);
    // Simulated ledger of the OMPDart variant (all region executions).
    row.set("simulatedBytes", cmp.ompdart.totalBytes());
    row.set("simulatedBytesHtoD", cmp.ompdart.bytesHtoD);
    row.set("simulatedBytesDtoH", cmp.ompdart.bytesDtoH);
    row.set("ratio", cmp.predictedPlanBytes > 0
                         ? static_cast<double>(cmp.ompdart.totalBytes()) /
                               static_cast<double>(cmp.predictedPlanBytes)
                         : 0.0);
    rows.push(std::move(row));
  }
  doc.set("planCost", std::move(rows));
  std::ofstream out("BENCH_plan_cost.json");
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("\nwrote BENCH_plan_cost.json (cost-model predicted vs "
              "simulated transfer bytes)\n");
  return 0;
}
