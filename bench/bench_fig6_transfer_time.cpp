// Regenerates paper Figure 6: improvements in data-transfer wall time over
// the unoptimized variant (modeled: bytes/bandwidth + per-call latency).
#include "exp/experiment.hpp"

#include <cstdio>

int main() {
  const auto results = ompdart::exp::runAllBenchmarks();
  std::printf("%s", ompdart::exp::renderFigure6(results).c_str());
  return 0;
}
