// Cold-path per-stage benchmark + byte-identity gate.
//
// Runs the nine-benchmark suite plus a 500-seed generated corpus through
// the batch driver with the plan cache OFF — every session pays the full
// parse -> cfg -> interproc -> plan -> check -> rewrite pipeline — and
// records per-stage wall time (best of OMPDART_COLD_REPS passes, default 3)
// plus a deterministic identity digest over every plan fingerprint,
// diagnostic and rewritten source. The digest is the refactor safety net:
// two builds that produce the same digest produced byte-identical plans,
// reports and rewrites for all 509 inputs.
//
// Usage: bench_cold [baseline BENCH_cold.json]
//
// With a baseline the run gates on (a) digest equality (the byte-identity
// gate) and (b) cold wall time <= baseline * OMPDART_COLD_GATE_FACTOR
// (default 1.15; CI's regression gate). Per-stage speedups vs the baseline
// are reported either way. Writes BENCH_cold.json.
#include "driver/batch.hpp"
#include "gen/generator.hpp"
#include "suite/benchmarks.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr unsigned kCorpusSeeds = 500;
constexpr std::uint64_t kCorpusBaseSeed = 1;

std::vector<ompdart::BatchJob> coldJobs() {
  std::vector<ompdart::BatchJob> jobs;
  for (const auto &def : ompdart::suite::allBenchmarks()) {
    ompdart::BatchJob job;
    job.name = def.name;
    job.fileName = def.name + ".c";
    job.source = def.unoptimized;
    jobs.push_back(std::move(job));
  }
  for (unsigned i = 0; i < kCorpusSeeds; ++i) {
    const auto program = ompdart::gen::generateProgram(kCorpusBaseSeed + i);
    ompdart::BatchJob job;
    job.name = program.name;
    job.fileName = program.name + ".c";
    job.source = program.combined();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Digest over everything a consumer can observe from the batch: plan IR
/// fingerprints, diagnostics, metrics, and the rewritten sources. Timings
/// and cache counters are deliberately excluded — they vary run to run.
std::string identityDigest(const ompdart::BatchResult &result) {
  ompdart::hash::Hasher hasher;
  for (const auto &item : result.items) {
    hasher.update(item.name);
    hasher.update(std::string(item.success ? "ok" : "fail"));
    hasher.update(item.report.plan.fingerprint());
    hasher.update(static_cast<std::uint64_t>(item.report.diagnostics.size()));
    for (const auto &diag : item.report.diagnostics) {
      hasher.update(diag.message);
      hasher.update(static_cast<std::uint64_t>(diag.location.offset));
      hasher.update(static_cast<std::uint64_t>(diag.severity));
    }
    hasher.update(static_cast<std::uint64_t>(item.report.metrics.kernels));
    hasher.update(
        static_cast<std::uint64_t>(item.report.metrics.mappedVariables));
    hasher.update(item.report.metrics.possibleMappings);
    hasher.update(item.output);
  }
  return hasher.hex();
}

double stageOf(const ompdart::BatchStats &stats, ompdart::Stage stage) {
  return stats.stageSeconds[static_cast<unsigned>(stage)];
}

double envFactor(const char *name, double fallback) {
  const char *raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0')
    return fallback;
  return std::atof(raw);
}

} // namespace

int main(int argc, char **argv) {
  using ompdart::BatchDriver;
  using ompdart::Stage;
  namespace json = ompdart::json;

  const unsigned reps = static_cast<unsigned>(
      std::max(1.0, envFactor("OMPDART_COLD_REPS", 3.0)));
  const double gateFactor = envFactor("OMPDART_COLD_GATE_FACTOR", 1.15);

  const auto jobs = coldJobs();

  BatchDriver::Options options;
  options.config.cacheMode = ompdart::cache::CacheMode::Off;
  options.config.includeOutputInReport = false;
  BatchDriver driver(options);

  bool ok = true;
  bool deterministic = true;
  std::string digest;
  ompdart::BatchResult best;
  for (unsigned rep = 0; rep < reps; ++rep) {
    ompdart::BatchResult result = driver.run(jobs);
    const std::string repDigest = identityDigest(result);
    if (rep == 0)
      digest = repDigest;
    else if (repDigest != digest) {
      std::fprintf(stderr, "identity digest differs between passes\n");
      deterministic = false;
      ok = false;
    }
    if (result.stats.succeeded != result.stats.jobs) {
      std::fprintf(stderr, "cold pass had failures (%u/%u succeeded)\n",
                   result.stats.succeeded, result.stats.jobs);
      ok = false;
    }
    if (rep == 0 || result.stats.wallSeconds < best.stats.wallSeconds)
      best = std::move(result);
  }

  const double parseS = stageOf(best.stats, Stage::Parse);
  const double cfgS = stageOf(best.stats, Stage::Cfg);
  const double interprocS = stageOf(best.stats, Stage::Interproc);
  const double planS = stageOf(best.stats, Stage::Plan);
  const double checkS = stageOf(best.stats, Stage::Check);
  const double rewriteS = stageOf(best.stats, Stage::Rewrite);

  std::printf("cold pipeline over %u inputs (9 benchmarks + %u-seed corpus),"
              " best of %u passes\n",
              best.stats.jobs, kCorpusSeeds, reps);
  std::printf("  wall %.4f s | cpu %.4f s | threads %u\n",
              best.stats.wallSeconds, best.stats.cpuSeconds,
              best.stats.threads);
  std::printf("  parse %.4f s | cfg %.4f s | interproc %.4f s | plan %.4f s"
              " | check %.4f s | rewrite %.4f s\n",
              parseS, cfgS, interprocS, planS, checkS, rewriteS);
  std::printf("  identity digest %s\n", digest.c_str());

  json::Value doc = json::Value::object();
  doc.set("suiteInputs", 9);
  doc.set("corpusSeeds", kCorpusSeeds);
  doc.set("reps", reps);
  doc.set("wallSeconds", best.stats.wallSeconds);
  doc.set("cpuSeconds", best.stats.cpuSeconds);
  doc.set("threads", best.stats.threads);
  json::Value stages = json::Value::object();
  stages.set("parse", parseS);
  stages.set("cfg", cfgS);
  stages.set("interproc", interprocS);
  stages.set("plan", planS);
  stages.set("check", checkS);
  stages.set("rewrite", rewriteS);
  doc.set("stages", stages);
  doc.set("identityDigest", digest);
  doc.set("deterministic", deterministic);

  // Baseline comparison: byte identity + wall-regression gate + speedups.
  if (argc > 1) {
    std::ifstream in(argv[1]);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto parsed = json::Value::parse(buffer.str(), &error);
    if (!in || !parsed.has_value()) {
      std::fprintf(stderr, "cannot read baseline %s: %s\n", argv[1],
                   error.c_str());
      ok = false;
    } else {
      const json::Value &base = *parsed;
      const std::string baseDigest = base.stringOr("identityDigest");
      const double baseWall = base.doubleOr("wallSeconds");
      const json::Value *baseStages = base.find("stages");
      const double baseParse =
          baseStages != nullptr ? baseStages->doubleOr("parse") : 0.0;
      const double basePlan =
          baseStages != nullptr ? baseStages->doubleOr("plan") : 0.0;

      const bool identical = !baseDigest.empty() && baseDigest == digest;
      if (!identical) {
        std::fprintf(stderr,
                     "byte-identity gate FAILED: digest %s != baseline %s\n",
                     digest.c_str(), baseDigest.c_str());
        ok = false;
      }
      const bool withinBudget =
          baseWall <= 0.0 || best.stats.wallSeconds <= baseWall * gateFactor;
      if (!withinBudget) {
        std::fprintf(stderr,
                     "regression gate FAILED: wall %.4f s > baseline %.4f s"
                     " * %.2f\n",
                     best.stats.wallSeconds, baseWall, gateFactor);
        ok = false;
      }

      const double parseSpeedup = parseS > 0.0 ? baseParse / parseS : 0.0;
      const double planSpeedup = planS > 0.0 ? basePlan / planS : 0.0;
      const double parsePlusPlanSpeedup =
          parseS + planS > 0.0 ? (baseParse + basePlan) / (parseS + planS)
                               : 0.0;
      const double wallSpeedup = best.stats.wallSeconds > 0.0
                                     ? baseWall / best.stats.wallSeconds
                                     : 0.0;
      std::printf("  vs baseline: parse %.2fx | plan %.2fx |"
                  " parse+plan %.2fx | wall %.2fx | byte-identical %s\n",
                  parseSpeedup, planSpeedup, parsePlusPlanSpeedup,
                  wallSpeedup, identical ? "yes" : "NO");

      json::Value baseline = json::Value::object();
      baseline.set("file", std::string(argv[1]));
      baseline.set("wallSeconds", baseWall);
      baseline.set("parseSeconds", baseParse);
      baseline.set("planSeconds", basePlan);
      baseline.set("identityDigest", baseDigest);
      doc.set("baseline", baseline);
      json::Value speedup = json::Value::object();
      speedup.set("parse", parseSpeedup);
      speedup.set("plan", planSpeedup);
      speedup.set("parsePlusPlan", parsePlusPlanSpeedup);
      speedup.set("wall", wallSpeedup);
      doc.set("speedupVsBaseline", speedup);
      doc.set("byteIdentical", identical);
      doc.set("withinRegressionBudget", withinBudget);
    }
  }

  doc.set("allGatesPassed", ok);
  std::ofstream out("BENCH_cold.json");
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("wrote BENCH_cold.json\n");
  return ok ? 0 : 1;
}
