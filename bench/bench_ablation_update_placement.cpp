// Ablation: Algorithm 1 update hoisting vs naive innermost placement.
// The paper's motivating example (Listing 6 / §IV-E) reports >2 GB vs <5 MB
// and a 14x speedup from hoisting the update out of the nested loops; this
// bench reproduces the comparison on the backprop motif at our scale.
#include "driver/pipeline.hpp"
#include "exp/experiment.hpp"
#include "interp/interp.hpp"
#include "suite/benchmarks.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

struct PlacementResult {
  std::uint64_t bytes = 0;
  unsigned calls = 0;
  double modeledSeconds = 0.0;
};

PlacementResult measure(bool hoist) {
  ompdart::PipelineConfig config;
  config.planner.hoistUpdates = hoist;
  const auto *def = ompdart::suite::findBenchmark("backprop");
  ompdart::Session session("backprop.c", def->unoptimized, config);
  const auto run = ompdart::interp::runProgram(session.rewrite());
  ompdart::sim::CostModel model;
  PlacementResult result;
  result.bytes = run.ledger.totalBytes();
  result.calls = run.ledger.totalCalls();
  result.modeledSeconds = model.totalSeconds(run.ledger);
  return result;
}

void placement(benchmark::State &state) {
  const bool hoist = state.range(0) != 0;
  for (auto _ : state) {
    const PlacementResult result = measure(hoist);
    benchmark::DoNotOptimize(result.bytes);
  }
  const PlacementResult result = measure(hoist);
  state.counters["transfer_bytes"] = static_cast<double>(result.bytes);
  state.counters["memcpy_calls"] = result.calls;
  state.counters["modeled_us"] = result.modeledSeconds * 1e6;
}

} // namespace

BENCHMARK(placement)->Arg(1)->ArgName("alg1_hoisted")->Iterations(3);
BENCHMARK(placement)->Arg(0)->ArgName("naive_innermost")->Iterations(3);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const PlacementResult hoisted = measure(true);
  const PlacementResult naive = measure(false);
  std::printf("\nABLATION: update placement (backprop motif, paper SIV-E)\n");
  std::printf("  Algorithm 1 hoisted : %10s in %4u calls, %8.1f us "
              "modeled\n",
              ompdart::exp::formatBytes(hoisted.bytes).c_str(), hoisted.calls,
              hoisted.modeledSeconds * 1e6);
  std::printf("  naive innermost     : %10s in %4u calls, %8.1f us "
              "modeled\n",
              ompdart::exp::formatBytes(naive.bytes).c_str(), naive.calls,
              naive.modeledSeconds * 1e6);
  if (hoisted.modeledSeconds > 0.0)
    std::printf("  hoisting advantage  : %.1fx transfer bytes, %.1fx modeled "
                "time (paper example: 14x)\n",
                static_cast<double>(naive.bytes) /
                    static_cast<double>(hoisted.bytes ? hoisted.bytes : 1),
                naive.modeledSeconds / hoisted.modeledSeconds);
  return 0;
}
