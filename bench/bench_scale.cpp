// Plan-server scale benchmark: synthesizes a large flat project with
// src/gen's deterministic scale generator (OMPDART_SCALE_TUS translation
// units, default 1000), serves it through a REAL PlanServer over a Unix
// socket, and measures
//
//   1. cold single-TU "plan" requests-per-second + p99 latency over
//      concurrent client connections,
//   2. the same requests warm (every plan must come back a cache hit with
//      ZERO parse/cfg/interproc/plan stage executions, byte-identical to
//      the cold pass and to an in-process one-shot Session),
//   3. whole-project request latency, then touch-one-TU replan latency:
//      a comment-only edit must replan exactly the edited TU, and a
//      summary-visible fact edit must replan exactly the edited TU plus
//      main (whose imports cover every stage summary) — asserted from the
//      per-TU replan reasons and the response's stage-run counts.
//
// Results go to BENCH_scale.json; any gate failure exits non-zero so CI can
// use this as the planning-as-a-service regression gate.
#include "driver/pipeline.hpp"
#include "gen/generator.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "support/json.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace fs = std::filesystem;
namespace json = ompdart::json;
namespace server = ompdart::server;

namespace {

constexpr std::uint64_t kSeed = 7;

unsigned envTuCount() {
  const char *env = std::getenv("OMPDART_SCALE_TUS");
  if (env == nullptr)
    return 1000;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed < 8 ? 8 : static_cast<unsigned>(parsed);
}

struct RequestTiming {
  double wallSeconds = 0.0;
  std::vector<double> latencies; ///< seconds, unsorted

  [[nodiscard]] double rps() const {
    return wallSeconds > 0.0
               ? static_cast<double>(latencies.size()) / wallSeconds
               : 0.0;
  }
  [[nodiscard]] double p99Millis() const {
    if (latencies.empty())
      return 0.0;
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t index =
        std::min(sorted.size() - 1,
                 static_cast<std::size_t>(
                     static_cast<double>(sorted.size()) * 0.99));
    return sorted[index] * 1000.0;
  }
  [[nodiscard]] json::Value toJson() const {
    json::Value doc = json::Value::object();
    doc.set("requests", static_cast<std::uint64_t>(latencies.size()));
    doc.set("wallSeconds", wallSeconds);
    doc.set("requestsPerSecond", rps());
    doc.set("p99Millis", p99Millis());
    return doc;
  }
};

/// Sends one "plan" request per TU over `threads` concurrent connections.
/// Each response's (cache, output, planStageRuns) lands in the out-arrays
/// by TU index.
RequestTiming planAll(const std::string &socketPath,
                      const std::vector<ompdart::gen::GeneratedTu> &tus,
                      unsigned threads, std::vector<std::string> *outputs,
                      std::vector<std::string> *cacheStatuses,
                      std::vector<unsigned> *planStageRuns, bool *transportOk) {
  outputs->assign(tus.size(), "");
  cacheStatuses->assign(tus.size(), "");
  planStageRuns->assign(tus.size(), 0);
  *transportOk = true;

  RequestTiming timing;
  timing.latencies.resize(tus.size(), 0.0);
  std::atomic<std::size_t> cursor{0};
  std::mutex failMutex;

  const auto wallStart = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&]() {
      server::PlanClient client;
      std::string error;
      if (!client.connect(socketPath, &error)) {
        std::lock_guard<std::mutex> lock(failMutex);
        std::fprintf(stderr, "client connect failed: %s\n", error.c_str());
        *transportOk = false;
        return;
      }
      while (true) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= tus.size())
          return;
        json::Value request = json::Value::object();
        request.set("method", "plan");
        request.set("file", tus[i].name);
        request.set("source", tus[i].source);
        const auto start = std::chrono::steady_clock::now();
        const auto response = client.call(request, &error);
        timing.latencies[i] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (!response || !response->boolOr("ok")) {
          std::lock_guard<std::mutex> lock(failMutex);
          std::fprintf(stderr, "plan request %zu failed: %s\n", i,
                       error.c_str());
          *transportOk = false;
          return;
        }
        const json::Value *result = response->find("result");
        (*outputs)[i] = result->stringOr("output");
        (*cacheStatuses)[i] = result->stringOr("cache");
        const json::Value *runs = result->find("stageRuns");
        if (runs != nullptr)
          (*planStageRuns)[i] = static_cast<unsigned>(
              runs->uintOr("parse") + runs->uintOr("cfg") +
              runs->uintOr("interproc") + runs->uintOr("plan"));
      }
    });
  }
  for (std::thread &thread : pool)
    thread.join();
  timing.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wallStart)
          .count();
  return timing;
}

json::Value projectRequest(const std::vector<ompdart::gen::GeneratedTu> &tus) {
  json::Value request = json::Value::object();
  request.set("method", "project");
  request.set("project", "scale");
  json::Value tusJson = json::Value::array();
  for (const ompdart::gen::GeneratedTu &tu : tus) {
    json::Value tuJson = json::Value::object();
    tuJson.set("name", tu.name);
    tuJson.set("file", tu.name);
    tuJson.set("source", tu.source);
    tusJson.push(std::move(tuJson));
  }
  request.set("tus", std::move(tusJson));
  return request;
}

/// Names of the TUs the replan actually re-planned (reason != "reused").
std::vector<std::string> replannedNames(const json::Value &result) {
  std::vector<std::string> names;
  const json::Value *tus = result.find("tus");
  if (tus == nullptr)
    return names;
  for (const json::Value &tu : tus->items())
    if (tu.stringOr("reason") != "reused")
      names.push_back(tu.stringOr("name"));
  return names;
}

bool gate(bool condition, const char *message, bool *ok) {
  if (!condition) {
    std::fprintf(stderr, "GATE FAILED: %s\n", message);
    *ok = false;
  }
  return condition;
}

} // namespace

int main() {
  const unsigned tuCount = envTuCount();
  const unsigned clientThreads =
      std::min(8u, std::max(2u, std::thread::hardware_concurrency()));

  std::random_device rd;
  const fs::path workDir =
      fs::temp_directory_path() /
      ("ompdart-bench-scale-" + std::to_string(rd()));
  fs::create_directories(workDir);
  const std::string socketPath = (workDir / "plan.sock").string();

  const ompdart::gen::GeneratedProgram program =
      ompdart::gen::generateScaleProject(kSeed, tuCount);

  server::ServerOptions options;
  options.socketPath = socketPath;
  options.workers = clientThreads;
  options.service.config.cacheDir = (workDir / "cache").string();
  options.service.config.cacheMode = ompdart::cache::CacheMode::ReadWrite;
  server::PlanServer planServer(std::move(options));
  std::string error;
  if (!planServer.start(&error)) {
    std::fprintf(stderr, "cannot start plan server: %s\n", error.c_str());
    return 1;
  }

  bool ok = true;

  // --- 1. cold single-TU plans over concurrent connections ---
  std::vector<std::string> coldOutputs, coldStatuses;
  std::vector<unsigned> coldRuns;
  bool transportOk = false;
  const RequestTiming cold =
      planAll(socketPath, program.tus, clientThreads, &coldOutputs,
              &coldStatuses, &coldRuns, &transportOk);
  gate(transportOk, "cold pass transport failed", &ok);

  // --- 2. warm: all hits, zero plan-stage runs, byte-identical ---
  std::vector<std::string> warmOutputs, warmStatuses;
  std::vector<unsigned> warmRuns;
  const RequestTiming warm =
      planAll(socketPath, program.tus, clientThreads, &warmOutputs,
              &warmStatuses, &warmRuns, &transportOk);
  gate(transportOk, "warm pass transport failed", &ok);

  unsigned warmHits = 0, warmPlanStageRuns = 0;
  bool warmByteIdentical = true;
  for (std::size_t i = 0; i < program.tus.size(); ++i) {
    warmHits += warmStatuses[i] == "hit" ? 1 : 0;
    warmPlanStageRuns += warmRuns[i];
    warmByteIdentical = warmByteIdentical && warmOutputs[i] == coldOutputs[i];
  }
  gate(warmHits == program.tus.size(), "warm pass was not 100% cache hits",
       &ok);
  gate(warmPlanStageRuns == 0,
       "warm pass executed parse/cfg/interproc/plan stages", &ok);
  gate(warmByteIdentical, "warm outputs differ from cold outputs", &ok);

  // Server responses must match what an in-process one-shot pipeline emits
  // (spot-checked: full-corpus comparison would dominate the benchmark).
  bool matchesOneShot = true;
  const std::size_t sampleStep =
      std::max<std::size_t>(1, program.tus.size() / 16);
  for (std::size_t i = 0; i < program.tus.size(); i += sampleStep) {
    ompdart::Session session(program.tus[i].name, program.tus[i].source);
    session.run();
    matchesOneShot = matchesOneShot && session.rewrite() == coldOutputs[i];
  }
  gate(matchesOneShot, "server outputs differ from one-shot Session", &ok);

  // --- 3. whole-project + touch-one-TU replans ---
  server::PlanClient client;
  if (!client.connect(socketPath, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto callProject =
      [&](const std::vector<ompdart::gen::GeneratedTu> &tus,
          double *seconds) -> std::optional<json::Value> {
    const auto start = std::chrono::steady_clock::now();
    auto response = client.call(projectRequest(tus), &error);
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    if (!response || !response->boolOr("ok")) {
      std::fprintf(stderr, "project request failed: %s\n", error.c_str());
      return std::nullopt;
    }
    return *response->find("result");
  };

  double projectColdSeconds = 0.0, commentSeconds = 0.0, factSeconds = 0.0;
  const auto projectCold = callProject(program.tus, &projectColdSeconds);
  gate(projectCold.has_value() && projectCold->boolOr("success"),
       "cold project request failed", &ok);

  // Comment-only edit of one stage: source hash changes, summary does not —
  // exactly ONE TU may replan.
  const std::size_t editIndex = 1 + (program.tus.size() - 1) / 2;
  std::vector<ompdart::gen::GeneratedTu> commentEdit = program.tus;
  commentEdit[editIndex].source += "/* touched */\n";
  const auto commentResult = callProject(commentEdit, &commentSeconds);
  if (gate(commentResult.has_value(), "comment-edit replan failed", &ok)) {
    const auto names = replannedNames(*commentResult);
    gate(commentResult->uintOr("tusReplanned") == 1 && names.size() == 1 &&
             names[0] == commentEdit[editIndex].name,
         "comment edit did not replan exactly the edited TU", &ok);
    gate(commentResult->uintOr("tusReused") == program.tus.size() - 1,
         "comment edit dropped held TUs", &ok);
  }

  // Fact edit (variant 1 flips the stage's kernel access effects): the
  // edited TU replans for its source, main replans because its imports
  // cover the stage summary — and nothing else moves.
  std::vector<ompdart::gen::GeneratedTu> factEdit = commentEdit;
  factEdit[editIndex] = ompdart::gen::generateScaleTu(
      kSeed, static_cast<unsigned>(editIndex), tuCount, /*variant=*/1);
  const auto factResult = callProject(factEdit, &factSeconds);
  if (gate(factResult.has_value(), "fact-edit replan failed", &ok)) {
    auto names = replannedNames(*factResult);
    std::sort(names.begin(), names.end());
    std::vector<std::string> expected = {factEdit[0].name,
                                         factEdit[editIndex].name};
    std::sort(expected.begin(), expected.end());
    gate(names == expected,
         "fact edit did not replan exactly {edited TU, main}", &ok);
    const json::Value *stageRuns = factResult->find("stageRuns");
    gate(stageRuns != nullptr && stageRuns->uintOr("plan") <= 2,
         "fact-edit replan ran more than 2 plan stages", &ok);
  }

  // Clean shutdown through the protocol.
  json::Value shutdownRequest = json::Value::object();
  shutdownRequest.set("method", "shutdown");
  (void)client.call(shutdownRequest, &error);
  planServer.stop();
  planServer.wait();

  std::printf("plan-server scale benchmark: %u TUs, %u client threads\n",
              tuCount, clientThreads);
  std::printf("  cold plans: %8.3f s wall, %8.1f req/s, p99 %7.2f ms\n",
              cold.wallSeconds, cold.rps(), cold.p99Millis());
  std::printf("  warm plans: %8.3f s wall, %8.1f req/s, p99 %7.2f ms "
              "(%u/%zu hits)\n",
              warm.wallSeconds, warm.rps(), warm.p99Millis(), warmHits,
              program.tus.size());
  std::printf("  project cold: %8.3f s\n", projectColdSeconds);
  std::printf("  replan (comment edit): %8.3f s\n", commentSeconds);
  std::printf("  replan (fact edit):    %8.3f s\n", factSeconds);

  json::Value doc = json::Value::object();
  doc.set("tus", tuCount);
  doc.set("clientThreads", clientThreads);
  doc.set("cold", cold.toJson());
  doc.set("warm", warm.toJson());
  doc.set("warmHits", warmHits);
  doc.set("warmPlanStageRuns", warmPlanStageRuns);
  doc.set("warmByteIdentical", warmByteIdentical);
  doc.set("matchesOneShot", matchesOneShot);
  doc.set("projectColdSeconds", projectColdSeconds);
  doc.set("commentReplanSeconds", commentSeconds);
  doc.set("factReplanSeconds", factSeconds);
  doc.set("allGatesPassed", ok);
  std::ofstream out("BENCH_scale.json");
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("wrote BENCH_scale.json\n");

  std::error_code ec;
  fs::remove_all(workDir, ec);
  return ok ? 0 : 1;
}
