// Ablation: interprocedural fixed point vs single-pass analysis
// (paper §IV-C: "This process can be repeated several times up to the
// maximum call depth of any function. Each pass provides new information").
// Measures fixed-point pass counts across the suite and shows that the
// analysis converges quickly while still resolving call chains.
#include "analysis/interproc.hpp"
#include "frontend/parser.hpp"
#include "suite/benchmarks.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

unsigned passesFor(const std::string &source, unsigned maxPasses) {
  ompdart::SourceManager sourceManager("bench.c", source);
  ompdart::ASTContext context;
  ompdart::DiagnosticEngine diags;
  if (!ompdart::parseSource(sourceManager, context, diags))
    return 0;
  ompdart::InterproceduralOptions options;
  options.maxPasses = maxPasses;
  const auto result =
      ompdart::runInterproceduralAnalysis(context.unit(), options);
  return result.passes;
}

void interprocPasses(benchmark::State &state, const std::string &source) {
  for (auto _ : state)
    benchmark::DoNotOptimize(passesFor(source, 16));
  state.counters["passes_to_fixed_point"] = passesFor(source, 16);
}

} // namespace

int main(int argc, char **argv) {
  for (const auto &def : ompdart::suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(
        ("interproc/" + def.name).c_str(),
        [source = def.unoptimized](benchmark::State &state) {
          interprocPasses(state, source);
        })
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nABLATION: interprocedural fixed point\n");
  std::printf("  benchmark    passes-to-converge (cap 16)\n");
  for (const auto &def : ompdart::suite::allBenchmarks())
    std::printf("  %-10s %6u\n", def.name.c_str(),
                passesFor(def.unoptimized, 16));
  return 0;
}
