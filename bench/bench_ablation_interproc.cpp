// Ablation: interprocedural fixed point vs single-pass analysis
// (paper §IV-C: "This process can be repeated several times up to the
// maximum call depth of any function. Each pass provides new information").
// Measures fixed-point pass counts across the suite and shows that the
// analysis converges quickly while still resolving call chains.
#include "driver/pipeline.hpp"
#include "suite/benchmarks.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

unsigned passesFor(const std::string &source, unsigned maxPasses) {
  // Direct artifact access: interproc() pulls in only its parse dependency,
  // so the timing excludes CFG construction, planning and rewriting.
  ompdart::PipelineConfig config;
  config.interprocMaxPasses = maxPasses;
  ompdart::Session session("bench.c", source, config);
  if (!session.parseSucceeded())
    return 0;
  return session.interproc().passes;
}

void interprocPasses(benchmark::State &state, const std::string &source) {
  for (auto _ : state)
    benchmark::DoNotOptimize(passesFor(source, 16));
  state.counters["passes_to_fixed_point"] = passesFor(source, 16);
}

} // namespace

int main(int argc, char **argv) {
  for (const auto &def : ompdart::suite::allBenchmarks()) {
    benchmark::RegisterBenchmark(
        ("interproc/" + def.name).c_str(),
        [source = def.unoptimized](benchmark::State &state) {
          interprocPasses(state, source);
        })
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nABLATION: interprocedural fixed point\n");
  std::printf("  benchmark    passes-to-converge (cap 16)\n");
  for (const auto &def : ompdart::suite::allBenchmarks())
    std::printf("  %-10s %6u\n", def.name.c_str(),
                passesFor(def.unoptimized, 16));
  return 0;
}
