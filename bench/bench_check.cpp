// Checker gate: precision and soundness for the static plan-safety checker
// (src/check/), the two properties ISSUE 8 requires of the analysis. Writes
// BENCH_check.json and exits non-zero unless both gates hold:
//
//   PRECISION — the checker reports ZERO findings across the 500-seed
//   oracle-passing fuzz corpus and all nine paper benchmarks. The planner's
//   own plans are correct by the differential oracle (bench_fuzz), so any
//   finding on them is a checker false positive.
//
//   SOUNDNESS — the plan-mutation battery (src/check/mutate.hpp: drop a
//   from-leg, drop an update, weaken a map type, shift an update insertion
//   point, zero an entry count, break the present contract) applied to
//   every corpus plan must be flagged >= 99% of the time, and the verdicts
//   must be oracle-concordant: every mutant the dynamic oracle fails, the
//   checker flags. (The reverse is not required — a flagged mutant the
//   oracle passes is a latent issue the executed trace did not reach, e.g.
//   a dead transfer wastes bytes without corrupting output.)
#include "check/checker.hpp"
#include "check/mutate.hpp"
#include "driver/pipeline.hpp"
#include "gen/generator.hpp"
#include "suite/benchmarks.hpp"
#include "support/json.hpp"
#include "verify/oracle.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

constexpr unsigned kPrograms = 500;
constexpr std::uint64_t kBaseSeed = 1;
constexpr double kMinKillRate = 0.99;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PerKind {
  unsigned mutants = 0;
  unsigned flagged = 0;
};

} // namespace

int main() {
  namespace json = ompdart::json;
  using ompdart::PipelineConfig;
  using ompdart::Session;
  using ompdart::check::Mutation;

  const auto started = Clock::now();
  bool ok = true;

  // ---- precision: corpus + paper benchmarks -----------------------------

  const auto corpus = ompdart::gen::generateCorpus(kBaseSeed, kPrograms);

  unsigned precisionFindings = 0;
  unsigned regionsChecked = 0;
  unsigned programsChecked = 0;

  // Sessions are kept per program so the soundness pass can re-check
  // mutants against the already-built front-end artifacts.
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(corpus.size());

  for (const ompdart::gen::GeneratedProgram &program : corpus) {
    auto session = std::make_unique<Session>(program.name + ".c",
                                             program.combined(),
                                             PipelineConfig{});
    const ompdart::check::CheckResult &result = session->check();
    ++programsChecked;
    regionsChecked += result.regionsChecked;
    if (!result.findings.empty()) {
      precisionFindings += static_cast<unsigned>(result.findings.size());
      for (const ompdart::check::Finding &finding : result.findings)
        std::fprintf(stderr, "precision FP %s: [%s] %s\n",
                     program.name.c_str(),
                     ompdart::check::findingCodeName(finding.code),
                     finding.message.c_str());
    }
    sessions.push_back(std::move(session));
  }

  unsigned benchmarkFindings = 0;
  for (const ompdart::suite::BenchmarkDef &def :
       ompdart::suite::allBenchmarks()) {
    Session session(def.name + ".c", def.unoptimized, PipelineConfig{});
    const ompdart::check::CheckResult &result = session.check();
    regionsChecked += result.regionsChecked;
    if (!result.findings.empty()) {
      benchmarkFindings += static_cast<unsigned>(result.findings.size());
      for (const ompdart::check::Finding &finding : result.findings)
        std::fprintf(stderr, "precision FP %s: [%s] %s\n", def.name.c_str(),
                     ompdart::check::findingCodeName(finding.code),
                     finding.message.c_str());
    }
  }

  if (precisionFindings + benchmarkFindings > 0) {
    std::fprintf(stderr,
                 "precision gate FAILED: %u corpus + %u benchmark findings "
                 "on oracle-correct plans\n",
                 precisionFindings, benchmarkFindings);
    ok = false;
  }
  if (regionsChecked == 0) {
    std::fprintf(stderr, "precision gate vacuous: no region was checked\n");
    ok = false;
  }

  // ---- soundness: mutation battery --------------------------------------

  unsigned totalMutants = 0;
  unsigned flaggedMutants = 0;
  unsigned oracleFailed = 0;
  unsigned oracleFailedFlagged = 0;
  unsigned oracleRuns = 0;
  std::map<std::string, PerKind> byKind;
  std::vector<std::string> survivors;

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const ompdart::gen::GeneratedProgram &program = corpus[i];
    Session &session = *sessions[i];
    const ompdart::ir::MappingIr &ir = session.ir();
    if (ir.empty())
      continue;

    const auto mutations = ompdart::check::enumerateMutations(ir);
    for (const Mutation &mutation : mutations) {
      const ompdart::ir::MappingIr mutant =
          ompdart::check::applyMutation(ir, mutation);
      const ompdart::check::CheckResult result = ompdart::check::checkPlan(
          session.parse().unit(), session.cfg(), session.interproc(),
          mutant);
      const bool flagged = !result.findings.empty();

      ++totalMutants;
      PerKind &kind = byKind[ompdart::check::mutationKindName(mutation.kind)];
      ++kind.mutants;
      if (flagged) {
        ++flaggedMutants;
        ++kind.flagged;
      } else if (survivors.size() < 25) {
        survivors.push_back(program.name + ": " + mutation.describe(ir));
      }

      // Oracle cross-check: a mutant the dynamic run catches MUST also be
      // caught statically.
      const ompdart::verify::OracleVerdict verdict = ompdart::verify::verifyIr(
          program.name, program.combined(), mutant, program.provableTrips);
      ++oracleRuns;
      if (!verdict.ok) {
        ++oracleFailed;
        if (flagged) {
          ++oracleFailedFlagged;
        } else {
          std::fprintf(stderr,
                       "DISCORDANT %s %s: oracle fails (%s) but checker is "
                       "silent\n",
                       program.name.c_str(),
                       mutation.describe(ir).c_str(),
                       verdict.divergence().substr(0, 160).c_str());
        }
      }
    }
  }

  const double killRate =
      totalMutants == 0 ? 0.0
                        : static_cast<double>(flaggedMutants) / totalMutants;
  if (totalMutants == 0) {
    std::fprintf(stderr, "soundness gate vacuous: no mutants generated\n");
    ok = false;
  }
  if (killRate < kMinKillRate) {
    std::fprintf(stderr,
                 "soundness gate FAILED: %u/%u mutants flagged (%.2f%% < "
                 "%.0f%%)\n",
                 flaggedMutants, totalMutants, killRate * 100.0,
                 kMinKillRate * 100.0);
    for (const std::string &survivor : survivors)
      std::fprintf(stderr, "  survivor: %s\n", survivor.c_str());
    ok = false;
  }
  if (oracleFailedFlagged != oracleFailed) {
    std::fprintf(stderr,
                 "soundness gate FAILED: %u oracle-failing mutants escaped "
                 "the checker (%u/%u concordant)\n",
                 oracleFailed - oracleFailedFlagged, oracleFailedFlagged,
                 oracleFailed);
    ok = false;
  }

  // ---- report -----------------------------------------------------------

  json::Value report = json::Value::object();
  report.set("bench", "check");
  json::Value precision = json::Value::object();
  precision.set("corpusPrograms", programsChecked);
  precision.set("benchmarks",
                static_cast<std::uint64_t>(
                    ompdart::suite::allBenchmarks().size()));
  precision.set("regionsChecked", regionsChecked);
  precision.set("findings", precisionFindings + benchmarkFindings);
  report.set("precision", std::move(precision));

  json::Value soundness = json::Value::object();
  soundness.set("mutants", totalMutants);
  soundness.set("flagged", flaggedMutants);
  soundness.set("killRate", killRate);
  soundness.set("oracleRuns", oracleRuns);
  soundness.set("oracleFailed", oracleFailed);
  soundness.set("oracleFailedFlagged", oracleFailedFlagged);
  json::Value kinds = json::Value::object();
  for (const auto &[name, stats] : byKind) {
    json::Value entry = json::Value::object();
    entry.set("mutants", stats.mutants);
    entry.set("flagged", stats.flagged);
    kinds.set(name, std::move(entry));
  }
  soundness.set("byKind", std::move(kinds));
  report.set("soundness", std::move(soundness));
  report.set("seconds", secondsSince(started));
  report.set("pass", ok);

  std::ofstream out("BENCH_check.json");
  out << report.dump(/*pretty=*/true);
  out.flush();

  std::printf("check: precision %u findings over %u programs + %zu "
              "benchmarks (%u regions); soundness %u/%u mutants flagged "
              "(%.2f%%), %u/%u oracle-concordant; %.1fs — %s\n",
              precisionFindings + benchmarkFindings, programsChecked,
              ompdart::suite::allBenchmarks().size(), regionsChecked,
              flaggedMutants, totalMutants, killRate * 100.0,
              oracleFailedFlagged, oracleFailed, secondsSince(started),
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
