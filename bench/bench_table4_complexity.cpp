// Regenerates paper Table IV: data-mapping complexity per benchmark
// (kernels, offloaded lines, mapped variables, possible mappings), with the
// paper's values alongside our re-authored benchmarks' measurements.
#include "exp/experiment.hpp"

#include <cstdio>

int main() {
  const auto results = ompdart::exp::runAllBenchmarks();
  std::printf("%s", ompdart::exp::renderTable4(results).c_str());
  return 0;
}
