// Regenerates paper Table III: the benchmark roster.
#include "exp/experiment.hpp"

#include <cstdio>

int main() {
  std::printf("%s", ompdart::exp::renderTable3().c_str());
  return 0;
}
