// Plan-cache throughput: runs the nine-benchmark suite through the batch
// driver twice against one cache directory — a cold pass that plans and
// populates, then a warm pass that must re-hydrate every plan — and writes
// BENCH_cache.json with the cold/warm wall times, the speedup, and the
// cache counters. Exits non-zero when the warm pass is not 100% hits or the
// emitted sources differ between passes, so CI can use it as the warm-run
// equivalence gate.
#include "driver/batch.hpp"
#include "suite/benchmarks.hpp"
#include "support/json.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

namespace fs = std::filesystem;

namespace {

std::vector<ompdart::BatchJob> suiteJobs() {
  std::vector<ompdart::BatchJob> jobs;
  for (const auto &def : ompdart::suite::allBenchmarks()) {
    ompdart::BatchJob job;
    job.name = def.name;
    job.fileName = def.name + ".c";
    job.source = def.unoptimized;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

fs::path freshCacheDir() {
  std::random_device rd;
  const fs::path dir = fs::temp_directory_path() /
                       ("ompdart-bench-cache-" + std::to_string(rd()));
  fs::remove_all(dir);
  return dir;
}

ompdart::json::Value batchJson(const ompdart::BatchResult &result) {
  return result.stats.toJson();
}

} // namespace

int main() {
  using ompdart::BatchDriver;
  namespace json = ompdart::json;

  const auto jobs = suiteJobs();
  const fs::path cacheDir = freshCacheDir();

  BatchDriver::Options options;
  options.config.cacheDir = cacheDir.string();
  options.config.cacheMode = ompdart::cache::CacheMode::ReadWrite;
  options.config.includeOutputInReport = false;
  BatchDriver driver(options);

  const ompdart::BatchResult cold = driver.run(jobs);
  const ompdart::BatchResult warm = driver.run(jobs);

  bool ok = true;
  if (cold.stats.succeeded != cold.stats.jobs) {
    std::fprintf(stderr, "cold pass had failures (%u/%u succeeded)\n",
                 cold.stats.succeeded, cold.stats.jobs);
    ok = false;
  }
  if (!warm.stats.fullyWarm()) {
    std::fprintf(stderr, "warm pass not fully cached: %u hits / %u jobs\n",
                 warm.stats.planCacheHits, warm.stats.jobs);
    ok = false;
  }
  bool outputsByteIdentical = true;
  for (const auto &coldItem : cold.items) {
    const ompdart::BatchItem *warmItem = warm.find(coldItem.name);
    if (warmItem == nullptr || warmItem->output != coldItem.output) {
      std::fprintf(stderr, "emitted source differs cold vs warm: %s\n",
                   coldItem.name.c_str());
      outputsByteIdentical = false;
      ok = false;
    }
  }
  const unsigned warmPlanRuns =
      warm.stats.stageRuns[static_cast<unsigned>(ompdart::Stage::Parse)] +
      warm.stats.stageRuns[static_cast<unsigned>(ompdart::Stage::Cfg)] +
      warm.stats.stageRuns[static_cast<unsigned>(ompdart::Stage::Interproc)] +
      warm.stats.stageRuns[static_cast<unsigned>(ompdart::Stage::Plan)];
  if (warmPlanRuns != 0) {
    std::fprintf(stderr,
                 "warm pass executed %u parse/cfg/interproc/plan stages\n",
                 warmPlanRuns);
    ok = false;
  }

  const double speedup = warm.stats.wallSeconds > 0.0
                             ? cold.stats.wallSeconds / warm.stats.wallSeconds
                             : 0.0;
  std::printf("plan cache over the %u-benchmark suite (%s)\n",
              cold.stats.jobs, cacheDir.string().c_str());
  std::printf("  cold batch: %8.4f s wall (%u misses, %llu stores)\n",
              cold.stats.wallSeconds, cold.stats.planCacheMisses,
              static_cast<unsigned long long>(cold.stats.planCacheStores));
  std::printf("  warm batch: %8.4f s wall (%u hits, plan-stage runs %u)\n",
              warm.stats.wallSeconds, warm.stats.planCacheHits, warmPlanRuns);
  std::printf("  warm speedup: %.2fx\n", speedup);

  json::Value doc = json::Value::object();
  doc.set("jobs", cold.stats.jobs);
  doc.set("coldWallSeconds", cold.stats.wallSeconds);
  doc.set("warmWallSeconds", warm.stats.wallSeconds);
  doc.set("warmSpeedup", speedup);
  doc.set("outputsByteIdentical", outputsByteIdentical);
  doc.set("allGatesPassed", ok);
  doc.set("cold", batchJson(cold));
  doc.set("warm", batchJson(warm));
  std::ofstream out("BENCH_cache.json");
  out << doc.dump(/*pretty=*/true) << "\n";
  std::printf("wrote BENCH_cache.json\n");

  std::error_code ec;
  fs::remove_all(cacheDir, ec);
  return ok ? 0 : 1;
}
