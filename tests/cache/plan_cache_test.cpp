// Plan-cache tests: content-addressed key stability, config-fingerprint
// sensitivity, stale-entry invalidation on source edits, warm-run
// equivalence (a cache hit must reproduce the cold run's artifacts without
// executing parse/cfg/interproc/plan), and batch-driver aggregation.
#include "cache/plan_cache.hpp"
#include "driver/batch.hpp"
#include "driver/pipeline.hpp"
#include "suite/benchmarks.hpp"
#include "support/hash.hpp"
#include "support/version.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ompdart {
namespace {

namespace fs = std::filesystem;

const char *const kKernelSource = R"(
#define N 64
double a[N];
double b[N];
int main() {
  for (int i = 0; i < N; ++i) {
    a[i] = i;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; ++i) {
    b[i] = a[i] * 2.0;
  }
  printf("%f\n", b[1]);
  return 0;
}
)";

const char *const kEditedSource = R"(
#define N 64
double a[N];
double b[N];
int main() {
  for (int i = 0; i < N; ++i) {
    a[i] = i + 1;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; ++i) {
    b[i] = a[i] * 2.0;
  }
  printf("%f\n", b[1]);
  return 0;
}
)";

/// RAII temp cache directory.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string &tag) {
    path = fs::temp_directory_path() /
           ("ompdart-test-" + tag + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

PipelineConfig cachedConfig(const std::string &dir,
                            cache::CacheMode mode = cache::CacheMode::ReadWrite) {
  PipelineConfig config;
  config.cacheDir = dir;
  config.cacheMode = mode;
  return config;
}

TEST(StableHashTest, FingerprintIsStableAndInputSensitive) {
  // Pinned value: the hash participates in on-disk cache keys, so an
  // accidental algorithm change must fail loudly here.
  EXPECT_EQ(hash::fingerprint(""), "55c5e55dfb685f30cbf29ce484222325");
  EXPECT_EQ(hash::fingerprint("abc"), "12eea96b77d145f0e71fa2190541574b");
  EXPECT_EQ(hash::fingerprint("abc"), hash::fingerprint("abc"));
  EXPECT_NE(hash::fingerprint("abc"), hash::fingerprint("abd"));
  EXPECT_NE(hash::fingerprint("abc"), hash::fingerprint("ab"));
  hash::Hasher incremental;
  incremental.update(std::string("ab")).update(std::string("c"));
  EXPECT_EQ(incremental.hex(), hash::fingerprint("abc"));
}

TEST(CacheKeyTest, IdIsStableAcrossInstancesAndComponentSensitive) {
  cache::CacheKey key;
  key.sourceHash = hash::fingerprint(kKernelSource);
  key.configHash = planFingerprint(PipelineConfig{});
  key.toolVersion = kToolVersion;

  cache::CacheKey same = key;
  EXPECT_EQ(key.id(), same.id());

  cache::CacheKey editedSource = key;
  editedSource.sourceHash = hash::fingerprint(kEditedSource);
  EXPECT_NE(key.id(), editedSource.id());

  cache::CacheKey newerTool = key;
  newerTool.toolVersion = "99.0.0";
  EXPECT_NE(key.id(), newerTool.id());

  // Length-prefixing: shuffling bytes across component boundaries must not
  // collide.
  cache::CacheKey shifted;
  shifted.sourceHash = key.sourceHash + "a";
  shifted.configHash = key.configHash.substr(1);
  shifted.toolVersion = key.toolVersion;
  EXPECT_NE(key.id(), shifted.id());

  // Cross-TU imports join the address: a TU whose imported summaries or
  // call facts changed must miss its old entry (and only then).
  cache::CacheKey withImports = key;
  withImports.importsHash = hash::fingerprint("imports-v1");
  EXPECT_NE(key.id(), withImports.id());
  cache::CacheKey otherImports = key;
  otherImports.importsHash = hash::fingerprint("imports-v2");
  EXPECT_NE(withImports.id(), otherImports.id());
}

TEST(CacheKeyTest, ImportsChangeMissesAndInvalidatesLikeAnEdit) {
  // Same source + config under two different import fingerprints: distinct
  // entries; flipping imports back re-hits the first entry (entries are
  // immutable-valid, like content flip-backs).
  TempDir dir("imports-key");
  summary::TuImports imports;
  imports.executions["main"] = 1;
  summary::TuImports otherImports;
  otherImports.executions["main"] = 7;

  PipelineConfig config = cachedConfig(dir.str());
  config.imports = &imports;
  {
    Session cold("kernel.c", kKernelSource, config);
    cold.run();
    EXPECT_EQ(cold.planCacheStatus(), Session::PlanCacheStatus::Miss);
  }
  {
    Session warm("kernel.c", kKernelSource, config);
    warm.run();
    EXPECT_EQ(warm.planCacheStatus(), Session::PlanCacheStatus::Hit);
  }
  PipelineConfig changed = cachedConfig(dir.str());
  changed.imports = &otherImports;
  {
    Session miss("kernel.c", kKernelSource, changed);
    miss.run();
    EXPECT_EQ(miss.planCacheStatus(), Session::PlanCacheStatus::Miss);
  }
  {
    Session back("kernel.c", kKernelSource, config);
    back.run();
    EXPECT_EQ(back.planCacheStatus(), Session::PlanCacheStatus::Hit);
  }
}

TEST(PlanCacheReportTest, EmitJsonSurfacesCacheCounters) {
  // The report embeds the probe outcome and the cache's counters, so a
  // `--emit=json` run observes warm behavior without bench_cache.
  TempDir dir("report-stats");
  {
    Session cold("kernel.c", kKernelSource, cachedConfig(dir.str()));
    cold.run();
    const Report &report = cold.report();
    ASSERT_TRUE(report.planCache.has_value());
    EXPECT_EQ(report.planCache->status, "miss");
    EXPECT_EQ(report.planCache->keyId, cold.planCacheKey().id());
    EXPECT_EQ(report.planCache->misses, 1u);
    EXPECT_EQ(report.planCache->stores, 1u);
    const json::Value doc = report.toJson();
    const json::Value *cacheJson = doc.find("planCache");
    ASSERT_NE(cacheJson, nullptr);
    EXPECT_EQ(cacheJson->stringOr("status"), "miss");
    EXPECT_EQ(cacheJson->uintOr("stores"), 1u);
  }
  {
    Session warm("kernel.c", kKernelSource, cachedConfig(dir.str()));
    warm.run();
    const Report &report = warm.report();
    ASSERT_TRUE(report.planCache.has_value());
    EXPECT_EQ(report.planCache->status, "hit");
    EXPECT_EQ(report.planCache->hits, 1u);
    // Round trip preserves the cache section.
    std::string error;
    const auto round = Report::fromJson(report.toJson(), &error);
    ASSERT_TRUE(round.has_value()) << error;
    ASSERT_TRUE(round->planCache.has_value());
    EXPECT_EQ(*round->planCache, *report.planCache);
  }
  // No cache configured: the section is absent.
  {
    Session plain("kernel.c", kKernelSource, PipelineConfig{});
    plain.run();
    EXPECT_FALSE(plain.report().planCache.has_value());
    EXPECT_EQ(plain.report().toJson().find("planCache"), nullptr);
  }
}

TEST(ConfigFingerprintTest, SensitiveToEveryPlanningSwitch) {
  const PipelineConfig base;
  const std::string baseFp = planFingerprint(base);
  EXPECT_EQ(baseFp, planFingerprint(PipelineConfig{}));

  PipelineConfig flip = base;
  flip.planner.useFirstprivate = false;
  EXPECT_NE(baseFp, planFingerprint(flip));

  flip = base;
  flip.planner.hoistUpdates = false;
  EXPECT_NE(baseFp, planFingerprint(flip));

  flip = base;
  flip.planner.extendRegionOverLoops = false;
  EXPECT_NE(baseFp, planFingerprint(flip));

  flip = base;
  flip.planner.interprocedural = false;
  EXPECT_NE(baseFp, planFingerprint(flip));

  flip = base;
  flip.costModel = "sim";
  EXPECT_NE(baseFp, planFingerprint(flip));

  flip = base;
  flip.interprocMaxPasses = 3;
  EXPECT_NE(baseFp, planFingerprint(flip));

  // Presentation-only settings do not invalidate cached plans.
  flip = base;
  flip.includeOutputInReport = false;
  flip.stopAfter = Stage::Plan;
  flip.cacheDir = "/somewhere/else";
  flip.cacheMode = cache::CacheMode::Read;
  EXPECT_EQ(baseFp, planFingerprint(flip));
}

TEST(PlanCacheTest, WarmRunSkipsPlanStagesAndReproducesArtifacts) {
  TempDir dir("warm");

  Session cold("prog.c", kKernelSource, cachedConfig(dir.str()));
  ASSERT_TRUE(cold.run());
  EXPECT_EQ(cold.planCacheStatus(), Session::PlanCacheStatus::Miss);
  EXPECT_FALSE(cold.planFromCache());
  EXPECT_EQ(cold.stageRuns(Stage::Parse), 1u);
  EXPECT_EQ(cold.stageRuns(Stage::Plan), 1u);

  Session warm("prog.c", kKernelSource, cachedConfig(dir.str()));
  ASSERT_TRUE(warm.run());
  EXPECT_EQ(warm.planCacheStatus(), Session::PlanCacheStatus::Hit);
  EXPECT_TRUE(warm.planFromCache());
  // The hit skips the front half of the pipeline entirely.
  EXPECT_EQ(warm.stageRuns(Stage::Parse), 0u);
  EXPECT_EQ(warm.stageRuns(Stage::Cfg), 0u);
  EXPECT_EQ(warm.stageRuns(Stage::Interproc), 0u);
  EXPECT_EQ(warm.stageRuns(Stage::Plan), 0u);
  EXPECT_EQ(warm.stageRuns(Stage::Rewrite), 1u);

  // Same key, same artifacts: IR, rewrite, metrics, diagnostics.
  EXPECT_EQ(warm.planCacheKey().id(), cold.planCacheKey().id());
  EXPECT_EQ(warm.ir(), cold.ir());
  EXPECT_EQ(warm.rewrite(), cold.rewrite());
  EXPECT_EQ(warm.metrics(), cold.metrics());
  EXPECT_EQ(warm.report().diagnostics, cold.report().diagnostics);
  EXPECT_EQ(warm.report().plan, cold.report().plan);
}

TEST(PlanCacheTest, ReadModeNeverPopulates) {
  TempDir dir("readonly");
  Session session("prog.c", kKernelSource,
                  cachedConfig(dir.str(), cache::CacheMode::Read));
  ASSERT_TRUE(session.run());
  EXPECT_EQ(session.planCacheStatus(), Session::PlanCacheStatus::Miss);
  EXPECT_FALSE(fs::exists(dir.path / "plans"));

  Session again("prog.c", kKernelSource,
                cachedConfig(dir.str(), cache::CacheMode::Read));
  ASSERT_TRUE(again.run());
  EXPECT_EQ(again.planCacheStatus(), Session::PlanCacheStatus::Miss);
}

TEST(PlanCacheTest, SourceEditInvalidatesAndReplansFreshly) {
  TempDir dir("stale");
  cache::PlanCache shared(dir.str(), cache::CacheMode::ReadWrite);

  PipelineConfig config;
  config.planCache = &shared;
  Session original("prog.c", kKernelSource, config);
  ASSERT_TRUE(original.run());
  const std::string originalEntry =
      shared.entryPathFor(original.planCacheKey());
  EXPECT_TRUE(fs::exists(originalEntry));

  // Editing the source changes the content address: the lookup misses,
  // the file's index row is invalidated, and the fresh plan is stored
  // under the new key. The superseded entry FILE stays — entries are
  // immutable-valid and may be re-hit by a flip back.
  Session edited("prog.c", kEditedSource, config);
  ASSERT_TRUE(edited.run());
  EXPECT_EQ(edited.planCacheStatus(), Session::PlanCacheStatus::Miss);
  EXPECT_NE(edited.planCacheKey().id(), original.planCacheKey().id());

  const cache::CacheStats stats = shared.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.stores, 2u);
  EXPECT_TRUE(fs::exists(originalEntry));
  EXPECT_TRUE(fs::exists(shared.entryPathFor(edited.planCacheKey())));

  // The edited program replays warm afterwards.
  Session warm("prog.c", kEditedSource, config);
  ASSERT_TRUE(warm.run());
  EXPECT_EQ(warm.planCacheStatus(), Session::PlanCacheStatus::Hit);
  EXPECT_EQ(warm.rewrite(), edited.rewrite());

  // Reverting the edit (branch switch, undo) re-hits the original entry.
  Session reverted("prog.c", kKernelSource, config);
  ASSERT_TRUE(reverted.run());
  EXPECT_EQ(reverted.planCacheStatus(), Session::PlanCacheStatus::Hit);
  EXPECT_EQ(reverted.rewrite(), original.rewrite());
}

TEST(PlanCacheTest, EditingOneFileKeepsIdenticalTwinCached) {
  // Identical sources share one content-addressed entry. Invalidating one
  // file's stale index row must not unlink the entry out from under the
  // twin whose key is still valid.
  TempDir dir("twin");
  cache::PlanCache shared(dir.str(), cache::CacheMode::ReadWrite);
  PipelineConfig config;
  config.planCache = &shared;

  Session a("a.c", kKernelSource, config);
  ASSERT_TRUE(a.run());
  Session b("b.c", kKernelSource, config);
  ASSERT_TRUE(b.run());
  EXPECT_EQ(b.planCacheStatus(), Session::PlanCacheStatus::Hit);

  Session aEdited("a.c", kEditedSource, config);
  ASSERT_TRUE(aEdited.run());
  EXPECT_EQ(aEdited.planCacheStatus(), Session::PlanCacheStatus::Miss);
  EXPECT_EQ(shared.stats().invalidations, 1u);

  // b.c's entry survived a.c's invalidation.
  Session bWarm("b.c", kKernelSource, config);
  ASSERT_TRUE(bWarm.run());
  EXPECT_EQ(bWarm.planCacheStatus(), Session::PlanCacheStatus::Hit);
}

TEST(PlanCacheTest, InjectedCostModelInstanceIsNeverCached) {
  // An injected CostModel instance is only identifiable by name, so the
  // Session must refuse to cache rather than risk replaying a plan from a
  // differently-behaving model with the same name.
  TempDir dir("injected");
  SimCostModel model;
  PipelineConfig config = cachedConfig(dir.str());
  config.planner.costModel = &model;

  Session first("prog.c", kKernelSource, config);
  ASSERT_TRUE(first.run());
  EXPECT_EQ(first.planCacheStatus(), Session::PlanCacheStatus::Uncacheable);
  EXPECT_FALSE(fs::exists(dir.path / "plans"));

  Session second("prog.c", kKernelSource, config);
  ASSERT_TRUE(second.run());
  EXPECT_EQ(second.planCacheStatus(), Session::PlanCacheStatus::Uncacheable);
}

TEST(PlanCacheTest, ConfigFlipMissesWithoutCrossContamination) {
  TempDir dir("config");
  Session defaultRun("prog.c", kKernelSource, cachedConfig(dir.str()));
  ASSERT_TRUE(defaultRun.run());

  PipelineConfig ablated = cachedConfig(dir.str());
  ablated.planner.useFirstprivate = false;
  Session ablatedRun("prog.c", kKernelSource, ablated);
  ASSERT_TRUE(ablatedRun.run());
  EXPECT_EQ(ablatedRun.planCacheStatus(), Session::PlanCacheStatus::Miss);
  EXPECT_NE(ablatedRun.planCacheKey().id(), defaultRun.planCacheKey().id());
}

TEST(PlanCacheTest, AlternatingConfigsKeepBothEntriesWarm) {
  // A config flip is not a source edit: each config gets its own index
  // row, so A-B config traffic over one file must warm both ways instead
  // of invalidating the other config's (still valid) entry.
  TempDir dir("alternate");
  PipelineConfig ablated = cachedConfig(dir.str());
  ablated.planner.hoistUpdates = false;

  Session coldDefault("prog.c", kKernelSource, cachedConfig(dir.str()));
  ASSERT_TRUE(coldDefault.run());
  Session coldAblated("prog.c", kKernelSource, ablated);
  ASSERT_TRUE(coldAblated.run());

  Session warmDefault("prog.c", kKernelSource, cachedConfig(dir.str()));
  ASSERT_TRUE(warmDefault.run());
  EXPECT_EQ(warmDefault.planCacheStatus(), Session::PlanCacheStatus::Hit);
  Session warmAblated("prog.c", kKernelSource, ablated);
  ASSERT_TRUE(warmAblated.run());
  EXPECT_EQ(warmAblated.planCacheStatus(), Session::PlanCacheStatus::Hit);

  cache::PlanCache probe(dir.str(), cache::CacheMode::Read);
  EXPECT_EQ(probe.stats().invalidations, 0u);
}

TEST(PlanCacheTest, WarmStopAfterPlanReportMatchesColdStoppedAfter) {
  // buildReport derives stoppedAfter from executed stages; a hydrated plan
  // never executes, but the stage was reached — warm reports must agree
  // with cold ones.
  TempDir dir("stopafter");
  PipelineConfig config = cachedConfig(dir.str());
  config.stopAfter = Stage::Plan;

  Session cold("prog.c", kKernelSource, config);
  ASSERT_TRUE(cold.run());
  EXPECT_EQ(cold.report().stoppedAfter, "plan");

  Session warm("prog.c", kKernelSource, config);
  ASSERT_TRUE(warm.run());
  EXPECT_EQ(warm.planCacheStatus(), Session::PlanCacheStatus::Hit);
  EXPECT_EQ(warm.report().stoppedAfter, "plan");
  EXPECT_EQ(warm.report().plan, cold.report().plan);
}

TEST(PlanCacheTest, CorruptedEntryIsRejectedNotReplayed) {
  TempDir dir("corrupt");
  Session cold("prog.c", kKernelSource, cachedConfig(dir.str()));
  ASSERT_TRUE(cold.run());
  cache::PlanCache probe(dir.str(), cache::CacheMode::ReadWrite);
  const std::string path = probe.entryPathFor(cold.planCacheKey());
  ASSERT_TRUE(fs::exists(path));
  // Tamper with the stored IR: the integrity fingerprint must reject it.
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const auto pos = text.find("\"regions\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "\"regionsX\"");
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  Session warm("prog.c", kKernelSource, cachedConfig(dir.str()));
  ASSERT_TRUE(warm.run());
  EXPECT_EQ(warm.planCacheStatus(), Session::PlanCacheStatus::Miss);
  EXPECT_EQ(warm.rewrite(), cold.rewrite()); // replanned fresh, same output
}

TEST(PlanCacheTest, EntryJsonRoundTripsThroughDisk) {
  TempDir dir("roundtrip");
  Session cold("prog.c", kKernelSource, cachedConfig(dir.str()));
  ASSERT_TRUE(cold.run());

  cache::PlanCache reader(dir.str(), cache::CacheMode::Read);
  auto entry = reader.lookup(cold.planCacheKey(), "prog.c");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->ir, cold.ir());
  EXPECT_EQ(entry->metrics, cold.metrics());
  EXPECT_EQ(entry->irFingerprint, cold.ir().fingerprint());
  EXPECT_EQ(entry->fileName, "prog.c");
}

TEST(BatchCacheTest, SecondBatchIsFullyWarmWithIdenticalOutputs) {
  TempDir dir("batch");
  std::vector<BatchJob> jobs;
  for (const auto &def : suite::allBenchmarks())
    jobs.push_back({def.name, def.name + ".c", def.unoptimized});

  BatchDriver::Options options;
  options.config.cacheDir = dir.str();
  options.config.cacheMode = cache::CacheMode::ReadWrite;
  BatchDriver driver(options);

  const BatchResult cold = driver.run(jobs);
  EXPECT_EQ(cold.stats.succeeded, cold.stats.jobs);
  EXPECT_EQ(cold.stats.planCacheMisses, cold.stats.jobs);
  EXPECT_EQ(cold.stats.planCacheStores, cold.stats.jobs);
  EXPECT_FALSE(cold.stats.fullyWarm());

  const BatchResult warm = driver.run(jobs);
  EXPECT_EQ(warm.stats.succeeded, warm.stats.jobs);
  EXPECT_EQ(warm.stats.planCacheHits, warm.stats.jobs);
  EXPECT_TRUE(warm.stats.fullyWarm());
  // The warm pass must not execute any pre-rewrite stage.
  for (const Stage stage :
       {Stage::Parse, Stage::Cfg, Stage::Interproc, Stage::Plan})
    EXPECT_EQ(warm.stats.stageRuns[static_cast<unsigned>(stage)], 0u)
        << stageName(stage);

  ASSERT_EQ(warm.items.size(), cold.items.size());
  for (std::size_t i = 0; i < cold.items.size(); ++i) {
    EXPECT_TRUE(warm.items[i].planCacheHit()) << cold.items[i].name;
    EXPECT_EQ(warm.items[i].output, cold.items[i].output)
        << cold.items[i].name;
    EXPECT_EQ(warm.items[i].report.plan, cold.items[i].report.plan)
        << cold.items[i].name;
    EXPECT_EQ(warm.items[i].report.metrics, cold.items[i].report.metrics)
        << cold.items[i].name;
    EXPECT_EQ(warm.items[i].report.diagnostics,
              cold.items[i].report.diagnostics)
        << cold.items[i].name;
  }
}

// -------------------------------------------------------------------------
// Sharded index layout
// -------------------------------------------------------------------------

cache::CacheKey syntheticKey(int i) {
  cache::CacheKey key;
  key.sourceHash = "source-" + std::to_string(i);
  key.configHash = "config";
  key.toolVersion = kToolVersion;
  return key;
}

cache::CacheEntry syntheticEntry(int i) {
  cache::CacheEntry entry;
  entry.fileName = "file-" + std::to_string(i) + ".c";
  entry.irFingerprint = entry.ir.fingerprint();
  return entry;
}

/// Parses every index-NN.json under `dir`; returns row -> id across all
/// shards, asserting each row lives in the shard its stable hash selects.
std::map<std::string, std::string> readShardRows(const fs::path &dir) {
  std::map<std::string, std::string> rows;
  for (unsigned shard = 0; shard < cache::PlanCache::kIndexShards;
       ++shard) {
    char name[32];
    std::snprintf(name, sizeof(name), "index-%02u.json", shard);
    std::ifstream in(dir / name);
    if (!in.is_open())
      continue;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto doc = json::Value::parse(buffer.str());
    if (!doc.has_value() || !doc->isObject())
      continue;
    for (const auto &[row, id] : doc->members()) {
      EXPECT_EQ(cache::PlanCache::shardOf(row), shard) << row;
      rows[row] = id.asString();
    }
  }
  return rows;
}

TEST(ShardedIndexTest, ShardAssignmentIsStableAndInRange) {
  for (int i = 0; i < 256; ++i) {
    const std::string row = "file-" + std::to_string(i) + ".c\nconfig";
    const unsigned shard = cache::PlanCache::shardOf(row);
    EXPECT_LT(shard, cache::PlanCache::kIndexShards);
    // Pure function of the row bytes: every process sharing a cache
    // directory must compute the same shard.
    EXPECT_EQ(cache::PlanCache::shardOf(row), shard);
  }
  // The hash must actually stripe: 256 distinct rows landing in one shard
  // would mean the striping (and the per-shard locking) is decorative.
  std::set<unsigned> used;
  for (int i = 0; i < 256; ++i)
    used.insert(cache::PlanCache::shardOf("row-" + std::to_string(i)));
  EXPECT_GT(used.size(), cache::PlanCache::kIndexShards / 2);
}

TEST(ShardedIndexTest, RowsRoundTripThroughShardFiles) {
  TempDir dir("shard-roundtrip");
  constexpr int kEntries = 40;
  {
    cache::PlanCache cacheA(dir.str(), cache::CacheMode::ReadWrite);
    for (int i = 0; i < kEntries; ++i)
      cacheA.store(syntheticKey(i), syntheticEntry(i));
  } // destructor flushes the index shards

  ASSERT_FALSE(fs::exists(dir.path / "index.json"));
  const std::map<std::string, std::string> rows = readShardRows(dir.path);
  EXPECT_EQ(rows.size(), static_cast<std::size_t>(kEntries));

  cache::PlanCache cacheB(dir.str(), cache::CacheMode::Read);
  for (int i = 0; i < kEntries; ++i) {
    const auto entry =
        cacheB.lookup(syntheticKey(i), syntheticEntry(i).fileName);
    EXPECT_TRUE(entry.has_value()) << i;
  }
  EXPECT_EQ(cacheB.stats().hits, static_cast<std::uint64_t>(kEntries));
}

TEST(ShardedIndexTest, ConcurrentWritersMergeLosslessly) {
  TempDir dir("shard-merge");
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 25;
  {
    // Each writer is its own PlanCache instance on the shared directory —
    // the multi-process topology, compressed into threads. Every row must
    // survive the merge-on-save; a clobbering writer would drop rows.
    std::vector<std::unique_ptr<cache::PlanCache>> writers;
    for (int w = 0; w < kWriters; ++w)
      writers.push_back(std::make_unique<cache::PlanCache>(
          dir.str(), cache::CacheMode::ReadWrite));
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (int i = 0; i < kPerWriter; ++i) {
          const int id = w * kPerWriter + i;
          writers[w]->store(syntheticKey(id), syntheticEntry(id));
          if (i % 8 == 0)
            writers[w]->flushIndex(); // interleave disk merges mid-stream
        }
      });
    }
    for (std::thread &t : threads)
      t.join();
  } // all writers flush on destruction, merging each other's rows

  const std::map<std::string, std::string> rows = readShardRows(dir.path);
  EXPECT_EQ(rows.size(), static_cast<std::size_t>(kWriters * kPerWriter));

  cache::PlanCache reader(dir.str(), cache::CacheMode::Read);
  for (int id = 0; id < kWriters * kPerWriter; ++id)
    EXPECT_TRUE(
        reader.lookup(syntheticKey(id), syntheticEntry(id).fileName)
            .has_value())
        << id;
}

TEST(ShardedIndexTest, LegacyMonolithicIndexIsMigrated) {
  TempDir dir("shard-legacy");
  constexpr int kEntries = 6;
  {
    cache::PlanCache writer(dir.str(), cache::CacheMode::ReadWrite);
    for (int i = 0; i < kEntries; ++i)
      writer.store(syntheticKey(i), syntheticEntry(i));
  }
  // Rewind the layout to the pre-shard era: consolidate every shard file
  // into one monolithic index.json and delete the shards.
  const std::map<std::string, std::string> rows = readShardRows(dir.path);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(kEntries));
  json::Value legacy = json::Value::object();
  for (const auto &[row, id] : rows)
    legacy.set(row, json::Value(id));
  {
    std::ofstream out(dir.path / "index.json");
    out << legacy.dump(true);
  }
  for (unsigned shard = 0; shard < cache::PlanCache::kIndexShards;
       ++shard) {
    char name[32];
    std::snprintf(name, sizeof(name), "index-%02u.json", shard);
    fs::remove(dir.path / name);
  }
  ASSERT_TRUE(readShardRows(dir.path).empty());

  // The index rows power stale detection: a lookup with a changed source
  // hash only counts an invalidation when the old row is visible — which
  // after the rewind requires the legacy migration to have adopted it.
  cache::PlanCache migrated(dir.str(), cache::CacheMode::ReadWrite);
  cache::CacheKey editedKey = syntheticKey(0);
  editedKey.sourceHash = "source-0-edited";
  EXPECT_FALSE(
      migrated.lookup(editedKey, syntheticEntry(0).fileName).has_value());
  EXPECT_EQ(migrated.stats().invalidations, 1u);
  // Unedited entries still hit through the migrated rows.
  EXPECT_TRUE(
      migrated.lookup(syntheticKey(1), syntheticEntry(1).fileName)
          .has_value());
  migrated.store(editedKey, syntheticEntry(0));
  migrated.flushIndex();
  // Migration is per-shard-on-load: the two shards this cache touched
  // (entry 0's row was updated, entry 1's was adopted from the legacy
  // file) persist their rows into shard files; untouched rows stay
  // readable through the legacy file.
  EXPECT_GE(readShardRows(dir.path).size(), 2u);
  cache::PlanCache reader(dir.str(), cache::CacheMode::Read);
  EXPECT_TRUE(reader.lookup(editedKey, syntheticEntry(0).fileName)
                  .has_value());
  for (int i = 1; i < kEntries; ++i)
    EXPECT_TRUE(
        reader.lookup(syntheticKey(i), syntheticEntry(i).fileName)
            .has_value())
        << i;
}

TEST(ShardedIndexTest, ErasedStaleRowIsNotResurrectedFromLegacyIndex) {
  TempDir dir("shard-legacy-erase");
  // A pre-shard cache knew entry 0: its row lives only in legacy
  // index.json (no shard files on disk).
  {
    cache::PlanCache writer(dir.str(), cache::CacheMode::ReadWrite);
    writer.store(syntheticKey(0), syntheticEntry(0));
  }
  const std::map<std::string, std::string> rows = readShardRows(dir.path);
  ASSERT_EQ(rows.size(), 1u);
  json::Value legacy = json::Value::object();
  for (const auto &[row, id] : rows)
    legacy.set(row, json::Value(id));
  {
    std::ofstream out(dir.path / "index.json");
    out << legacy.dump(true);
  }
  for (unsigned shard = 0; shard < cache::PlanCache::kIndexShards;
       ++shard) {
    char name[32];
    std::snprintf(name, sizeof(name), "index-%02u.json", shard);
    fs::remove(dir.path / name);
  }

  // An edited source misses, counts ONE invalidation, and erases the
  // stale row; the destructor's flush persists the erasure into the row's
  // shard file.
  cache::CacheKey editedKey = syntheticKey(0);
  editedKey.sourceHash = "source-0-edited";
  {
    cache::PlanCache cacheA(dir.str(), cache::CacheMode::ReadWrite);
    EXPECT_FALSE(
        cacheA.lookup(editedKey, syntheticEntry(0).fileName).has_value());
    EXPECT_EQ(cacheA.stats().invalidations, 1u);
  }

  // The shard file now exists and is authoritative. A fresh cache must
  // NOT re-adopt the erased row from the (never-rewritten) legacy file —
  // that would resurrect it and re-count the invalidation once per
  // process lifetime, forever.
  cache::PlanCache cacheB(dir.str(), cache::CacheMode::ReadWrite);
  EXPECT_FALSE(
      cacheB.lookup(editedKey, syntheticEntry(0).fileName).has_value());
  EXPECT_EQ(cacheB.stats().invalidations, 0u);
}

TEST(ShardedIndexTest, MemoServesRepeatLookupsAndDropMemosForcesDisk) {
  TempDir dir("shard-memo");
  cache::PlanCache planCache(dir.str(), cache::CacheMode::ReadWrite);
  planCache.store(syntheticKey(0), syntheticEntry(0));
  // store() memoizes, so the first lookup is already a memo hit.
  EXPECT_TRUE(planCache.lookup(syntheticKey(0), "file-0.c").has_value());
  EXPECT_EQ(planCache.stats().memoHits, 1u);
  planCache.dropMemos();
  // Post-drop the lookup revalidates against disk (no new memo hit) and
  // re-memoizes, so the one after is served from memory again.
  EXPECT_TRUE(planCache.lookup(syntheticKey(0), "file-0.c").has_value());
  EXPECT_EQ(planCache.stats().memoHits, 1u);
  EXPECT_TRUE(planCache.lookup(syntheticKey(0), "file-0.c").has_value());
  EXPECT_EQ(planCache.stats().memoHits, 2u);
  EXPECT_EQ(planCache.stats().hits, 3u);
}

TEST(BatchCacheTest, WarmupPassesPrepopulateTheMeasuredRun) {
  TempDir dir("warmup");
  std::vector<BatchJob> jobs;
  for (const auto &def : suite::allBenchmarks())
    jobs.push_back({def.name, def.name + ".c", def.unoptimized});

  BatchDriver::Options options;
  options.config.cacheDir = dir.str();
  options.config.cacheMode = cache::CacheMode::ReadWrite;
  options.warmupPasses = 1;
  const BatchResult measured = BatchDriver(options).run(jobs);
  EXPECT_TRUE(measured.stats.fullyWarm());
}

} // namespace
} // namespace ompdart
