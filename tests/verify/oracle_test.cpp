// The differential oracle itself is load-bearing test infrastructure, so
// these tests prove both directions: it PASSES correct plans (the whole
// nine-benchmark suite, simple handcrafted programs) and it DETECTS each
// invariant's violation when handed a deliberately broken Mapping IR via
// verifyIr (dropped from-map, inflated cold-entry counts, duplicated
// updates).
#include "verify/oracle.hpp"

#include "driver/pipeline.hpp"
#include "exp/experiment.hpp"
#include "gen/generator.hpp"
#include "suite/benchmarks.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ompdart {
namespace {

const char *const kRoundTrip = R"(
double a[16];

int main() {
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 0.5;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 16; ++i) {
    a[i] = a[i] * 2.0;
  }
  double tail = 0.0;
  for (int i = 0; i < 16; ++i) {
    tail += a[i];
  }
  printf("%.6f\n", tail);
  return 0;
}
)";

TEST(OracleTest, PassesSimpleProgramWithAllInvariants) {
  verify::OracleOptions options;
  options.checkRewrite = true;
  const auto verdict =
      verify::runOracle("simple.c", kRoundTrip, /*provableTrips=*/true,
                        options);
  EXPECT_TRUE(verdict.ok) << verdict.divergence();
  EXPECT_TRUE(verdict.predictedChecked);
  EXPECT_TRUE(verdict.rewriteChecked);
  EXPECT_GT(verdict.baselineBytes, 0u);
  EXPECT_LE(verdict.planBytes, verdict.baselineBytes);
  EXPECT_EQ(verdict.predictedBytes, verdict.planBytes);
  EXPECT_FALSE(verdict.irFingerprint.empty());
}

TEST(OracleTest, PassesEverySuiteBenchmark) {
  // The paper's §V safety criterion, re-checked through the oracle for all
  // nine hand-ported benchmarks (trips are not generator-annotated here,
  // so invariant 3 is skipped; the exp reconciliation tests pin it).
  for (const suite::BenchmarkDef &def : suite::allBenchmarks()) {
    verify::OracleOptions options;
    options.checkRewrite = true;
    const auto verdict = verify::runOracle(def.name + ".c", def.unoptimized,
                                           /*provableTrips=*/false, options);
    EXPECT_TRUE(verdict.ok) << def.name << ": " << verdict.divergence();
  }
}

TEST(OracleTest, DetectsDroppedFromMap) {
  // Break invariant (1): weaken the tofrom map to `to`, so the kernel's
  // writes never reach the host.
  Session session("simple.c", kRoundTrip);
  ASSERT_TRUE(session.run());
  ir::MappingIr broken = session.ir();
  ASSERT_FALSE(broken.regions.empty());
  bool weakened = false;
  for (ir::Region &region : broken.regions)
    for (ir::MapItem &map : region.maps)
      if (map.type == ir::MapType::ToFrom) {
        map.type = ir::MapType::To;
        weakened = true;
      }
  ASSERT_TRUE(weakened) << "expected a tofrom map to weaken";

  const auto verdict = verify::verifyIr("simple.c", kRoundTrip, broken,
                                        /*provableTrips=*/true);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.outputsMatch) << verdict.divergence();
}

TEST(OracleTest, DetectsWrongColdEntryPrediction) {
  // Break invariant (3): inflate a map item's cold-entry count; predicted
  // bytes then exceed the simulated ledger.
  Session session("simple.c", kRoundTrip);
  ASSERT_TRUE(session.run());
  ir::MappingIr inflated = session.ir();
  ASSERT_FALSE(inflated.regions.empty());
  for (ir::Region &region : inflated.regions)
    for (ir::MapItem &map : region.maps)
      map.coldEntries = map.coldEntries * 7 + 1;

  const auto verdict = verify::verifyIr("simple.c", kRoundTrip, inflated,
                                        /*provableTrips=*/true);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(verdict.outputsMatch);
  EXPECT_TRUE(verdict.predictedChecked);
  EXPECT_FALSE(verdict.predictedMatches);
  EXPECT_GT(verdict.predictedBytes, verdict.planBytes);
}

TEST(OracleTest, DetectsExcessTransfers) {
  // Break invariant (2): duplicate every update several times. The overlay
  // executes each copy, so the planned run moves more than the baseline.
  const std::string source =
      std::string(R"(
double a[16];

int main() {
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 0.5;
  }
  double sum = 0.0;
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 16; ++i) {
      sum += a[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 16; ++i) {
      a[i] = a[i] + 1.0;
    }
  }
  printf("%.6f\n", sum);
  return 0;
}
)");
  Session session("carried.c", source);
  ASSERT_TRUE(session.run());
  ir::MappingIr bloated = session.ir();
  ASSERT_FALSE(bloated.regions.empty());
  // Same-point duplicates consolidate (the overlay mirrors the rewriter's
  // (offset, direction) merge), so the excess update is anchored at a
  // statement INSIDE the element loop: it fires once per element per trip.
  ASSERT_FALSE(bloated.regions[0].updates.empty())
      << "expected the plan to carry updates";
  ir::UpdateItem excess = bloated.regions[0].updates[0];
  const std::string anchorText = "sum += a[i];";
  const std::size_t anchorAt = source.find(anchorText);
  ASSERT_NE(anchorAt, std::string::npos);
  excess.placement = ir::UpdatePlacement::After;
  excess.hoisted = false;
  excess.anchor = ir::StmtAnchor{};
  excess.anchor.beginOffset = anchorAt;
  excess.anchor.endOffset = anchorAt + anchorText.size();
  bloated.regions[0].updates.push_back(excess);

  const auto verdict = verify::verifyIr("carried.c", source, bloated,
                                        /*provableTrips=*/false);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.transferBounded) << verdict.divergence();
}

TEST(OracleTest, UnresolvedExtentSkipsPredictedInvariant) {
  // Disagreeing call-site constants leave the callee map's extent
  // symbolic (approxBytes 0): the plan stays correct but is not
  // byte-predictable, so invariant (3) must not apply.
  const char *const source = R"(
double a[48];
double b[48];

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w;
  }
}

int main() {
  for (int i = 0; i < 48; ++i) {
    a[i] = i * 0.5;
    b[i] = 0.0;
  }
  stage(a, b, 12, 2.0);
  stage(a, b, 48, 2.0);
  double tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += b[i];
  }
  printf("%.6f\n", tail);
  return 0;
}
)";
  const auto verdict =
      verify::runOracle("extent.c", source, /*provableTrips=*/true);
  EXPECT_TRUE(verdict.ok) << verdict.divergence();
  EXPECT_FALSE(verdict.predictedChecked);
}

TEST(OracleTest, GeneratedProgramOverloadUsesCombinedSource) {
  const gen::GeneratedProgram program = gen::generateProgram(9);
  ASSERT_TRUE(program.multiTu()); // seed 9 is a two-TU split
  const auto verdict = verify::runOracle(program);
  EXPECT_TRUE(verdict.ok) << verdict.divergence();
}

TEST(OracleTest, WarmCalleeMapsCarryPresentAndZeroColdEntries) {
  // The warm-callee accounting is observable in the IR: a helper region
  // whose every call site sits inside main's data region gets
  // present-marked, zero-cold-entry maps.
  const char *const source = R"(
double a[16];
double b[16];

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

int main() {
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 0.5;
    b[i] = 0.0;
  }
  double scale = 1.5;
  double sum = 0.0;
  for (int t = 0; t < 2; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 16; ++i) {
      b[i] = a[i] * scale;
    }
    stage(a, b, 16, scale);
    for (int i = 0; i < 16; ++i) {
      sum += b[i];
    }
  }
  printf("%.6f\n", sum);
  return 0;
}
)";
  Session session("warm.c", source);
  ASSERT_TRUE(session.run());
  const ir::Region *stage = session.ir().regionFor("stage");
  ASSERT_NE(stage, nullptr);
  ASSERT_FALSE(stage->maps.empty());
  for (const ir::MapItem &map : stage->maps) {
    EXPECT_TRUE(map.modifiers.present) << map.item;
    EXPECT_EQ(map.coldEntries, 0u) << map.item;
  }
  const auto verdict =
      verify::runOracle("warm.c", source, /*provableTrips=*/true);
  EXPECT_TRUE(verdict.ok) << verdict.divergence();
}

} // namespace
} // namespace ompdart
