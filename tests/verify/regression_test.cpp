// Every divergence the differential oracle found during development lives
// as a minimized C program under tests/verify/regressions/ — with the fix
// in the owning layer (parser / planner / interp / rewriter). This harness
// re-runs the full oracle (all three invariants plus the rewritten-source
// leg) on each file, so any of those bugs coming back fails tier-1
// deterministically.
//
// File protocol: first line `// oracle-regression: provable=0|1` gates
// invariant (3) exactly like the generator's provable-trips flag.
#include "verify/oracle.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef OMPDART_REPO_DIR
#define OMPDART_REPO_DIR "."
#endif

namespace ompdart {
namespace {

namespace fs = std::filesystem;

struct RegressionCase {
  std::string name;
  std::string source;
  bool provable = false;
};

std::vector<RegressionCase> loadRegressions() {
  std::vector<RegressionCase> cases;
  const fs::path dir =
      fs::path(OMPDART_REPO_DIR) / "tests" / "verify" / "regressions";
  std::vector<fs::path> paths;
  for (const auto &entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".c")
      paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());
  for (const fs::path &path : paths) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    RegressionCase regression;
    regression.name = path.filename().string();
    regression.source = buffer.str();
    regression.provable =
        regression.source.find("oracle-regression: provable=1") !=
        std::string::npos;
    cases.push_back(std::move(regression));
  }
  return cases;
}

class RegressionTest : public ::testing::TestWithParam<RegressionCase> {};

TEST_P(RegressionTest, OracleInvariantsHold) {
  const RegressionCase &regression = GetParam();
  verify::OracleOptions options;
  options.checkRewrite = true;
  const verify::OracleVerdict verdict = verify::runOracle(
      regression.name, regression.source, regression.provable, options);
  EXPECT_TRUE(verdict.ok) << verdict.divergence();
}

std::string caseName(const ::testing::TestParamInfo<RegressionCase> &info) {
  std::string name = info.param.name;
  for (char &c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)))
      c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, RegressionTest,
                         ::testing::ValuesIn(loadRegressions()), caseName);

TEST(RegressionCorpusTest, CorpusIsNonEmpty) {
  // The directory must keep its cases: an empty corpus means the harness
  // silently tests nothing.
  EXPECT_GE(loadRegressions().size(), 8u);
}

} // namespace
} // namespace ompdart
