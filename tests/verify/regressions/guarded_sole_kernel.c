// oracle-regression: provable=0
// Found by the differential oracle (invariant 1): with the sole kernel
// nested inside an if, the planner's region walker finished the region in
// the nested compound but kept walking the statements AFTER the branch as
// if they were in-region. The post-region host read then became an
// in-region dependency "satisfied" by a dead post-region update-from, and
// the kernel's map lost its from-leg — the kernel's writes were silently
// dropped. Fix (planner): the region walk stops at every nesting level
// once the region end statement has been processed.
double a[24];
int flag[1];

int main() {
  flag[0] = 0;
  for (int i = 0; i < 24; ++i) {
    a[i] = i * 0.5;
  }
  if (flag[0] == 0) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 12; ++i) {
      a[i] = a[i] * 2.0;
    }
  }
  double tail = 0.0;
  for (int i = 0; i < 24; ++i) {
    tail += a[i];
  }
  printf("%.6f\n", tail);
  return 0;
}
