// oracle-regression: provable=1
// Found by code review of the full-coverage kill logic (and reachable by
// the oracle): the host loop overwrites only HALF of `a` after the kernel
// wrote all of it, yet a whole-object kill dropped the from-leg — the
// final host read of a[20..39] saw stale pre-kernel values. Fix (planner):
// a host write only kills when its coverage is provably full (direct
// writes against the enclosing loop bounds, call-synthesized writes via
// the callee's interprocedural full-sweep proof); partial writes of
// device-valid data sync the untouched elements down first.
double a[40];

int main() {
  for (int i = 0; i < 40; ++i) {
    a[i] = i * 0.5;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 40; ++i) {
    a[i] = a[i] * 3.0;
  }
  for (int i = 0; i < 20; ++i) {
    a[i] = 0.25;
  }
  double tail = 0.0;
  for (int i = 0; i < 40; ++i) {
    tail += a[i];
  }
  printf("%.6f\n", tail);
  return 0;
}
