// oracle-regression: provable=1
// Found by the differential oracle (invariant 2): the host loop fully
// overwrites `a` after the kernel, so the kernel's device write is dead —
// yet the planner kept a from-leg plus the update-to guarding it, moving
// MORE bytes than the implicit baseline. Fix (planner): a for loop with
// provably positive constant trips definitely executes, so its full-
// coverage host writes kill the variable (no zero-trip merge).
double a[16];
double b[16];

int main() {
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 0.5;
    b[i] = i * 0.25;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 16; ++i) {
    a[i] = a[i] * 1.5;
  }
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 0.125 + 1.0;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 16; ++i) {
    b[i] = b[i] + 2.0;
  }
  double tail = 0.0;
  for (int i = 0; i < 16; ++i) {
    tail += a[i] + b[i];
  }
  printf("%.6f\n", tail);
  return 0;
}
