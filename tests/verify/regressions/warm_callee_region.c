// oracle-regression: provable=1
// Found by the differential oracle (invariant 3): every stage() call
// executes inside main's data region, where both argument arrays are
// already present — the callee kernel's maps are reference-count
// transitions that move nothing, but the transfer predictor charged them
// as cold entries. Fix (planner): the warm-callee post-pass marks such
// map items `present` and zeroes their coldEntries; the predictor charges
// transition copies per cold entry only.
double a[16];
double b[16];

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

int main() {
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 0.5;
    b[i] = 0.0;
  }
  double scale = 1.5;
  double sum = 0.0;
  for (int t = 0; t < 2; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 16; ++i) {
      b[i] = a[i] * scale;
    }
    stage(a, b, 16, scale);
    stage(b, a, 16, scale);
    for (int i = 0; i < 16; ++i) {
      sum += b[i];
    }
  }
  printf("%.6f\n", sum);
  return 0;
}
