// oracle-regression: provable=1
// Found by the differential oracle (invariant 1): the host read at the top
// of the t-loop consumes values the kernel wrote in the PREVIOUS
// iteration (a loop-carried device->host dependency). The planner placed
// an update-from before the read, but on the first trip no kernel has run
// yet — without a to-leg on the map the update copied uninitialized
// device memory over live host data. Fix (planner): a loop-carried
// update-from with Before placement forces the map's `to` leg, and its
// hoist limit is the carrying loop's body (the producer-end limit is
// meaningless across iterations).
double a[16];

int main() {
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 0.5;
  }
  double sum = 0.0;
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 16; ++i) {
      sum += a[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 16; ++i) {
      a[i] = a[i] + 1.0;
    }
  }
  printf("%.6f\n", sum);
  return 0;
}
