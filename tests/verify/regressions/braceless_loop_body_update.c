// oracle-regression: provable=0
// Found by the oracle's rewritten-source leg: a BodyEnd update directive
// anchored at a while loop whose body is a single (braceless) statement
// was inserted AFTER the loop — outside both the loop and the data region
// — so the loop condition kept reading stale host data. Fix (rewriter):
// braceless loop bodies hosting BodyBegin/BodyEnd directives gain a brace
// pair, and same-offset edits order structurally (region open, body open,
// directives, body close, region close).
int stop[1];
double a[8];

int main() {
  stop[0] = 0;
  for (int i = 0; i < 8; ++i) {
    a[i] = 0.5;
  }
  int t = 0;
  while (stop[0] == 0 && t < 20)
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 8; ++i) {
      a[i] = a[i] + 1.0;
      if (a[i] > 3.0) {
        stop[0] = 1;
      }
      t = t + 1;
    }
  double sum = 0.0;
  for (int i = 0; i < 8; ++i) {
    sum += a[i];
  }
  printf("%.6f %d\n", sum, stop[0]);
  return 0;
}
