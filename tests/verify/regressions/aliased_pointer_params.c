// oracle-regression: provable=1
// Found by the differential oracle (invariant 1): stage(data, data, ...)
// aliases src and dst through two pointer parameters, so the kernel's
// map(to: src) map(from: dst) clauses name the SAME storage. Sequential
// reference-counted application suppressed every copy after the first,
// leaving the device image uninitialized. Fix (interp): same-construct map
// items of one object coalesce into the union of their map types
// (to + from = tofrom), matching libomptarget.
double data[16];

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

int main() {
  for (int i = 0; i < 16; ++i) {
    data[i] = i * 0.5;
  }
  stage(data, data, 16, 2.0);
  stage(data, data, 16, 2.0);
  double tail = 0.0;
  for (int i = 0; i < 16; ++i) {
    tail += data[i];
  }
  printf("data=%.6f\n", tail);
  return 0;
}
