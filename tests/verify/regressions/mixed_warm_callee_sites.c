// oracle-regression: provable=1
// Found by the differential oracle (invariant 3): stage() is called both
// INSIDE main's data region (warm: arguments already mapped) and AFTER it
// (cold: pays the transition copies). All-or-nothing `present` marking
// cannot express the mix — the per-map-item coldEntries split charges
// exactly the cold call sites.
double a[16];
double b[16];

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

int main() {
  for (int i = 0; i < 16; ++i) {
    a[i] = i * 0.5;
    b[i] = 0.0;
  }
  double scale = 1.5;
  double sum = 0.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 16; ++i) {
    b[i] = a[i] * scale;
  }
  stage(a, b, 16, scale);
  for (int i = 0; i < 16; ++i) {
    sum += b[i];
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 16; ++i) {
    a[i] = b[i] + 1.0;
  }
  stage(a, b, 16, scale);
  for (int i = 0; i < 16; ++i) {
    sum += a[i] + b[i];
  }
  printf("%.6f\n", sum);
  return 0;
}
