#include "../common/test_util.hpp"

#include "analysis/access.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

FunctionAccessInfo accessesOf(const test::ParsedUnit &parsed,
                              const std::string &name = "f") {
  FunctionDecl *fn = parsed.function(name);
  EXPECT_NE(fn, nullptr);
  return collectAccesses(fn);
}

/// Events of `var` filtered by a predicate.
template <typename Pred>
std::vector<AccessEvent> eventsOf(const FunctionAccessInfo &info,
                                  const std::string &varName, Pred pred) {
  std::vector<AccessEvent> out;
  for (const AccessEvent &event : info.events)
    if (event.var != nullptr && event.var->name() == varName && pred(event))
      out.push_back(event);
  return out;
}

std::vector<AccessEvent> eventsOf(const FunctionAccessInfo &info,
                                  const std::string &varName) {
  return eventsOf(info, varName, [](const AccessEvent &) { return true; });
}

TEST(AccessTest, SimpleReadAndWrite) {
  auto parsed = test::parse("void f(int a, int b) { a = b; }");
  auto info = accessesOf(parsed);
  auto aEvents = eventsOf(info, "a");
  ASSERT_EQ(aEvents.size(), 1u);
  EXPECT_EQ(aEvents[0].kind, AccessKind::Write);
  auto bEvents = eventsOf(info, "b");
  ASSERT_EQ(bEvents.size(), 1u);
  EXPECT_EQ(bEvents[0].kind, AccessKind::Read);
}

TEST(AccessTest, CompoundAssignmentIsReadWrite) {
  auto parsed = test::parse("void f(int a) { a += 2; }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "a");
  ASSERT_EQ(events.size(), 2u); // read + write halves
  EXPECT_EQ(events[0].kind, AccessKind::Read);
  EXPECT_EQ(events[1].kind, AccessKind::Write);
}

TEST(AccessTest, ReadsEmittedBeforeWritesWithinStatement) {
  auto parsed = test::parse("void f(int *a, int i) { a[i] = a[i + 1]; }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "a");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, AccessKind::Read);
  EXPECT_EQ(events[1].kind, AccessKind::Write);
}

TEST(AccessTest, IncrementOperators) {
  auto parsed = test::parse("void f(int a) { ++a; a--; }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "a");
  ASSERT_EQ(events.size(), 4u); // two read+write pairs
}

TEST(AccessTest, ArraySubscriptRecordsSubscript) {
  auto parsed = test::parse("void f(double *a, int i) { a[i] = 1.0; }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "a");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AccessKind::Write);
  EXPECT_NE(events[0].subscript, nullptr);
  EXPECT_TRUE(events[0].pointeeAccess);
  EXPECT_TRUE(events[0].isDataAccess());
}

TEST(AccessTest, MultiDimSubscriptIndicesAreReads) {
  auto parsed =
      test::parse("void f(double g[4][8], int i, int j) { g[i][j] = 0.0; }");
  auto info = accessesOf(parsed);
  EXPECT_EQ(eventsOf(info, "i").size(), 1u);
  EXPECT_EQ(eventsOf(info, "j").size(), 1u);
  auto gEvents = eventsOf(info, "g");
  ASSERT_EQ(gEvents.size(), 1u);
  EXPECT_EQ(gEvents[0].kind, AccessKind::Write);
}

TEST(AccessTest, DerefIsPointeeAccess) {
  auto parsed = test::parse("void f(int *p) { *p = 3; }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "p");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AccessKind::Write);
  EXPECT_TRUE(events[0].pointeeAccess);
}

TEST(AccessTest, PointerValueReadIsNotDataAccess) {
  auto parsed = test::parse("void g(int *q);\nvoid f(int *p) { g(p); }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "p");
  ASSERT_GE(events.size(), 1u);
  EXPECT_FALSE(events[0].pointeeAccess);
  EXPECT_FALSE(events[0].isDataAccess());
}

TEST(AccessTest, AddressOfMarksEscape) {
  auto parsed = test::parse("void g(int *q);\nvoid f() { int x = 0; g(&x); }");
  auto info = accessesOf(parsed);
  bool escaped = false;
  for (const VarDecl *var : info.addressTaken)
    escaped |= var->name() == "x";
  EXPECT_TRUE(escaped);
}

TEST(AccessTest, DeviceEventsMarkedWithKernel) {
  auto parsed = test::parse(R"(
void f(int n, double *a) {
  a[0] = 1.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) a[i] = a[i] * 2.0;
}
)");
  auto info = accessesOf(parsed);
  auto hostEvents = eventsOf(info, "a", [](const AccessEvent &event) {
    return !event.onDevice;
  });
  auto deviceEvents = eventsOf(info, "a", [](const AccessEvent &event) {
    return event.onDevice;
  });
  EXPECT_EQ(hostEvents.size(), 1u);
  ASSERT_EQ(deviceEvents.size(), 2u); // read + write
  EXPECT_NE(deviceEvents[0].kernel, nullptr);
}

TEST(AccessTest, ReductionVariableIsDeviceReadWrite) {
  auto parsed = test::parse(R"(
void f(int n, double *a) {
  double sum = 0.0;
  #pragma omp target teams distribute parallel for reduction(+: sum)
  for (int i = 0; i < n; ++i) sum += a[i];
  a[0] = sum;
}
)");
  auto info = accessesOf(parsed);
  auto deviceSum = eventsOf(info, "sum", [](const AccessEvent &event) {
    return event.onDevice;
  });
  // reduction clause RW + loop body compound-assign RW
  ASSERT_GE(deviceSum.size(), 2u);
}

TEST(AccessTest, ConditionalWriteFlagged) {
  auto parsed = test::parse(
      "void f(int n, int *a) { if (n > 0) { a[0] = 1; } a[1] = 2; }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "a");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].conditional);
  EXPECT_FALSE(events[1].conditional);
}

TEST(AccessTest, MathBuiltinsReadOnly) {
  auto parsed = test::parse("void f(double x, double *r) { r[0] = exp(x); }");
  auto info = accessesOf(parsed);
  auto xEvents = eventsOf(info, "x");
  ASSERT_EQ(xEvents.size(), 1u);
  EXPECT_EQ(xEvents[0].kind, AccessKind::Read);
}

TEST(AccessTest, MemsetWritesPointee) {
  auto parsed = test::parse("void f(int n, double *a) { memset(a, 0, n); }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "a");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AccessKind::Write);
  EXPECT_TRUE(events[0].pointeeAccess);
}

TEST(AccessTest, UnknownExternWritesPessimistic) {
  auto parsed = test::parse("void f(double *a) { mystery(a); }");
  // mystery is undeclared -> builtin lookup fails -> Unknown effect.
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "a");
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AccessKind::Unknown);
}

TEST(AccessTest, CallSitesRecorded) {
  auto parsed = test::parse(R"(
void helper(double *p) { p[0] = 1.0; }
void f(double *a) { helper(a); }
)");
  auto info = accessesOf(parsed);
  ASSERT_EQ(info.callSites.size(), 1u);
  EXPECT_EQ(info.callSites[0].call->calleeName(), "helper");
  EXPECT_FALSE(info.callSites[0].onDevice);
}

TEST(AccessTest, DeclInitIsWrite) {
  auto parsed = test::parse("void f(int n) { int x = n + 1; x = x; }");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "x");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, AccessKind::Write); // declaration init
}

TEST(AccessTest, LoopConditionAccessAttachedToLoopStmt) {
  auto parsed = test::parse("void f(int n) { while (n > 0) { n--; } }");
  auto info = accessesOf(parsed);
  FunctionDecl *fn = parsed.function("f");
  Stmt *whileStmt = fn->body()->body()[0];
  auto it = info.byStmt.find(whileStmt);
  ASSERT_NE(it, info.byStmt.end());
  EXPECT_FALSE(it->second.empty());
}

TEST(AccessTest, MemberAccessTouchesWholeStruct) {
  auto parsed = test::parse(R"(
struct cfg { int n; double scale; };
void f(struct cfg c, double *a) { a[0] = c.scale; }
)");
  auto info = accessesOf(parsed);
  auto events = eventsOf(info, "c");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AccessKind::Read);
  EXPECT_TRUE(events[0].isDataAccess());
}

} // namespace
} // namespace ompdart
