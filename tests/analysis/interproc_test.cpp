#include "../common/test_util.hpp"

#include "analysis/interproc.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

InterproceduralResult analyze(const test::ParsedUnit &parsed) {
  return runInterproceduralAnalysis(parsed.unit());
}

TEST(InterprocTest, DirectParamEffects) {
  auto parsed = test::parse(R"(
void writer(double *out, const double *in, int n) {
  for (int i = 0; i < n; ++i) out[i] = in[i];
}
)");
  auto result = analyze(parsed);
  const FunctionSummary *summary =
      result.summaryFor(parsed.function("writer"));
  ASSERT_NE(summary, nullptr);
  ASSERT_EQ(summary->params.size(), 3u);
  EXPECT_TRUE(summary->params[0].writeHost);
  EXPECT_FALSE(summary->params[0].readHost);
  EXPECT_TRUE(summary->params[1].readHost);
  EXPECT_FALSE(summary->params[1].writeHost);
  // Scalar param `n`: no externally visible effect.
  EXPECT_FALSE(summary->params[2].any());
}

TEST(InterprocTest, EffectsPropagateThroughCallChain) {
  auto parsed = test::parse(R"(
void leaf(double *p) { p[0] = 1.0; }
void mid(double *q) { leaf(q); }
void top(double *r) { mid(r); }
)");
  auto result = analyze(parsed);
  const FunctionSummary *top = result.summaryFor(parsed.function("top"));
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->params.size(), 1u);
  EXPECT_TRUE(top->params[0].writeHost);
}

TEST(InterprocTest, FixedPointTerminatesOnMutualRecursion) {
  auto parsed = test::parse(R"(
void pong(double *p, int n);
void ping(double *p, int n) { if (n > 0) pong(p, n - 1); p[0] = 1.0; }
void pong(double *p, int n) { if (n > 0) ping(p, n - 1); double x = p[0]; (void)x; }
)");
  // Note: (void)x keeps x used; cast-to-void of a var parses as cast expr.
  auto result = analyze(parsed);
  EXPECT_LE(result.passes, 16u);
  const FunctionSummary *ping = result.summaryFor(parsed.function("ping"));
  ASSERT_NE(ping, nullptr);
  EXPECT_TRUE(ping->params[0].writeHost);
  EXPECT_TRUE(ping->params[0].readHost); // via pong
}

TEST(InterprocTest, GlobalEffectsSummarized) {
  auto parsed = test::parse(R"(
double table[64];
void fill() { for (int i = 0; i < 64; ++i) table[i] = i; }
void caller() { fill(); }
)");
  auto result = analyze(parsed);
  const FunctionSummary *caller =
      result.summaryFor(parsed.function("caller"));
  ASSERT_NE(caller, nullptr);
  ASSERT_EQ(caller->globals.size(), 1u);
  EXPECT_TRUE(caller->globals.begin()->second.writeHost);
}

TEST(InterprocTest, ExternalFunctionIsPessimistic) {
  auto parsed = test::parse(R"(
void external_fn(double *data, const double *config);
void f(double *a, double *b) { external_fn(a, b); }
)");
  auto result = analyze(parsed);
  const FunctionSummary *external =
      result.summaryFor(parsed.function("external_fn"));
  ASSERT_NE(external, nullptr);
  EXPECT_TRUE(external->isExternal);
  // Non-const pointer: worst case read+write+unknown.
  EXPECT_TRUE(external->params[0].writeHost);
  EXPECT_TRUE(external->params[0].unknown);
  // Const pointer: read-only (paper rule).
  EXPECT_TRUE(external->params[1].readHost);
  EXPECT_FALSE(external->params[1].writeHost);
}

TEST(InterprocTest, CallSiteAugmentationAddsEvents) {
  auto parsed = test::parse(R"(
void helper(double *p, int n) { for (int i = 0; i < n; ++i) p[i] = i; }
void f(double *a, int n) { helper(a, n); }
)");
  auto result = analyze(parsed);
  const FunctionAccessInfo *info = result.accessesFor(parsed.function("f"));
  ASSERT_NE(info, nullptr);
  bool sawSynthesizedWrite = false;
  for (const AccessEvent &event : info->events) {
    if (event.fromCall && event.var != nullptr && event.var->name() == "a" &&
        event.kind == AccessKind::Write)
      sawSynthesizedWrite = true;
  }
  EXPECT_TRUE(sawSynthesizedWrite);
}

TEST(InterprocTest, KernelLaunchingPropagates) {
  auto parsed = test::parse(R"(
void kernel_fn(double *a, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) a[i] = i;
}
void outer(double *a, int n) { kernel_fn(a, n); }
void plain(double *a) { a[0] = 1.0; }
)");
  auto result = analyze(parsed);
  EXPECT_TRUE(result.summaryFor(parsed.function("kernel_fn"))
                  ->launchesKernels);
  EXPECT_TRUE(result.summaryFor(parsed.function("outer"))->launchesKernels);
  EXPECT_FALSE(result.summaryFor(parsed.function("plain"))->launchesKernels);
}

TEST(InterprocTest, DeviceEffectsTrackedSeparately) {
  auto parsed = test::parse(R"(
void kernel_fn(double *a, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) a[i] = i;
}
)");
  auto result = analyze(parsed);
  const FunctionSummary *summary =
      result.summaryFor(parsed.function("kernel_fn"));
  ASSERT_NE(summary, nullptr);
  EXPECT_TRUE(summary->params[0].writeDevice);
  EXPECT_FALSE(summary->params[0].writeHost);
}

TEST(InterprocTest, PointerArithmeticArgumentTracked) {
  auto parsed = test::parse(R"(
void helper(double *p) { p[0] = 1.0; }
void f(double *a, int half) { helper(a + half); }
)");
  auto result = analyze(parsed);
  const FunctionSummary *f = result.summaryFor(parsed.function("f"));
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->params[0].writeHost);
}

TEST(InterprocTest, AddressOfScalarArgumentTracked) {
  auto parsed = test::parse(R"(
void setter(int *flag) { *flag = 1; }
void f() { int stop = 0; setter(&stop); if (stop) { stop = 2; } }
)");
  auto result = analyze(parsed);
  const FunctionAccessInfo *info = result.accessesFor(parsed.function("f"));
  ASSERT_NE(info, nullptr);
  bool sawStopWriteFromCall = false;
  for (const AccessEvent &event : info->events)
    if (event.fromCall && event.var->name() == "stop" &&
        event.kind == AccessKind::Write)
      sawStopWriteFromCall = true;
  EXPECT_TRUE(sawStopWriteFromCall);
}

TEST(InterprocTest, EarlyTerminationWithoutCalls) {
  auto parsed = test::parse("void f(int *a) { a[0] = 1; }");
  auto result = analyze(parsed);
  // One pass to compute, one to observe stability.
  EXPECT_LE(result.passes, 2u);
}

} // namespace
} // namespace ompdart
