// Whole-program summary artifacts and link: extraction, JSON round trips,
// the cross-TU §IV-C fixed point, execution estimation across TU
// boundaries, signature checking and TU scheduling.
#include "analysis/summary.hpp"

#include "common/test_util.hpp"

#include <gtest/gtest.h>

namespace ompdart::summary {
namespace {

ModuleSummary extractFrom(const std::string &source,
                          const std::string &file) {
  auto parsed = test::parse(source, file);
  EXPECT_TRUE(parsed.ok) << parsed.diags->summary();
  return extractModuleSummary(parsed.unit(), file);
}

TEST(ModuleSummaryTest, ExtractsDirectEffectsEdgesAndExterns) {
  const ModuleSummary module = extractFrom(R"(
double shared[64];
void helper(double *dst, int n);
void producer(double *out) {
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 64; ++i) {
      out[i] = shared[i];
    }
    helper(out, 64);
  }
}
)",
                                           "producer.c");
  ASSERT_EQ(module.functions.size(), 1u);
  const FunctionArtifact &producer = module.functions.front();
  EXPECT_EQ(producer.direct.function, "producer");
  EXPECT_TRUE(producer.direct.defined);
  EXPECT_FALSE(producer.direct.launchesKernels);
  // Direct effects: writes out's pointee on the host, reads global shared.
  ASSERT_EQ(producer.direct.params.size(), 1u);
  EXPECT_TRUE(producer.direct.params[0].writeHost);
  ASSERT_EQ(producer.direct.globals.count(internSymbol("shared")), 1u);
  EXPECT_TRUE(producer.direct.globals.at(internSymbol("shared")).readHost);
  // The helper edge: 4 provable trips, arg 0 binds parameter 0.
  ASSERT_EQ(producer.calls.size(), 1u);
  const CallEdge &edge = producer.calls.front();
  EXPECT_EQ(edge.callee, "helper");
  EXPECT_EQ(edge.provableTrips, 4u);
  EXPECT_FALSE(edge.guarded);
  ASSERT_EQ(edge.args.size(), 2u);
  EXPECT_EQ(edge.args[0].kind, ArgBinding::Kind::Param);
  EXPECT_EQ(edge.args[0].paramIndex, 0);
  EXPECT_TRUE(edge.args[0].isPointerArg);
  ASSERT_TRUE(edge.args[1].constValue.has_value());
  EXPECT_EQ(*edge.args[1].constValue, 64);
  // The undefined prototype is an extern ref with its signature.
  ASSERT_EQ(module.externs.size(), 1u);
  EXPECT_EQ(module.externs.front().function, "helper");
  EXPECT_EQ(module.externs.front().signature, "void(double *, int)");
}

TEST(ModuleSummaryTest, JsonRoundTripAndFingerprint) {
  const ModuleSummary module = extractFrom(R"(
double grid[32];
void kernel_fn() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; ++i) grid[i] = i;
}
)",
                                           "k.c");
  std::string error;
  const auto round = ModuleSummary::fromJson(module.toJson(), &error);
  ASSERT_TRUE(round.has_value()) << error;
  EXPECT_EQ(*round, module);
  EXPECT_EQ(round->fingerprint(), module.fingerprint());

  // The fingerprint covers facts, not the file label.
  ModuleSummary renamed = module;
  renamed.file = "elsewhere.c";
  EXPECT_EQ(renamed.fingerprint(), module.fingerprint());
}

TEST(ModuleSummaryTest, RebindFileFollowsStaticLinkedNames) {
  // Cached summaries are content-keyed: a hit may carry the path the
  // artifact was extracted under. Rebinding must rewrite static linked
  // names so the bare-name executions alias still resolves — and the
  // fingerprint must be path-independent even with statics.
  const ModuleSummary module = extractFrom(R"(
static void init() { }
void run() {
  for (int i = 0; i < 4; ++i) {
    init();
  }
}
)",
                                           "old.c");
  ModuleSummary moved = module;
  moved.rebindFile("new.c");
  EXPECT_NE(moved.find("new.c::init"), nullptr);
  EXPECT_EQ(moved.find("old.c::init"), nullptr);
  EXPECT_EQ(moved.fingerprint(), module.fingerprint());
  const LinkResult link = linkProgram({moved});
  EXPECT_EQ(link.executions.at("new.c::init"), 4u);
  EXPECT_EQ(buildTuImports(moved, link).executions.at("init"), 4u);
}

TEST(LinkTest, DuplicateModulesDoNotDoubleCountEdges) {
  const ModuleSummary mainTu = extractFrom(R"(
void step();
int main() {
  for (int t = 0; t < 10; ++t) {
    step();
  }
  return 0;
}
)",
                                           "main.c");
  const ModuleSummary stepTu = extractFrom(R"(
void step() { }
)",
                                           "step.c");
  // The same module listed twice: a warning, but counts stay correct.
  const LinkResult link = linkProgram({mainTu, mainTu, stepTu});
  ASSERT_FALSE(link.diagnostics.empty());
  EXPECT_NE(link.diagnostics.front().message.find("duplicate definition"),
            std::string::npos);
  EXPECT_EQ(link.executions.at("step"), 10u);
}

TEST(LinkTest, ClosesEffectsAcrossTuChains) {
  // a.c: entry calls mid (b.c); mid calls leaf (c.c); leaf writes its
  // pointer parameter. The closure must surface leaf's write through mid
  // up to entry's parameter.
  const ModuleSummary a = extractFrom(R"(
void mid(double *data);
void entry(double *buffer) { mid(buffer); }
)",
                                      "a.c");
  const ModuleSummary b = extractFrom(R"(
void leaf(double *p);
void mid(double *data) { leaf(data); }
)",
                                      "b.c");
  const ModuleSummary c = extractFrom(R"(
void leaf(double *p) {
  for (int i = 0; i < 8; ++i) p[i] = i;
}
)",
                                      "c.c");
  const LinkResult link = linkProgram({a, b, c});
  EXPECT_TRUE(link.diagnostics.empty());
  ASSERT_EQ(link.closed.count("entry"), 1u);
  const PortableSummary &entry = link.closed.at("entry");
  ASSERT_EQ(entry.params.size(), 1u);
  EXPECT_TRUE(entry.params[0].writeHost);
  EXPECT_FALSE(entry.params[0].unknown);
}

TEST(LinkTest, UnknownCalleesStayPessimistic) {
  const ModuleSummary module = extractFrom(R"(
void mystery(double *data, const double *src);
void wrapper(double *out, const double *in) { mystery(out, in); }
)",
                                          "w.c");
  const LinkResult link = linkProgram({module});
  const PortableSummary &wrapper = link.closed.at("wrapper");
  ASSERT_EQ(wrapper.params.size(), 2u);
  // Non-const pointer: read+write+unknown. Const pointer: read-only.
  EXPECT_TRUE(wrapper.params[0].writeHost);
  EXPECT_TRUE(wrapper.params[0].unknown);
  EXPECT_TRUE(wrapper.params[1].readHost);
  EXPECT_FALSE(wrapper.params[1].writeHost);
}

TEST(LinkTest, EstimatesExecutionsAcrossTuBoundaries) {
  const ModuleSummary mainTu = extractFrom(R"(
void step();
int main() {
  for (int t = 0; t < 10; ++t) {
    step();
  }
  return 0;
}
)",
                                           "main.c");
  const ModuleSummary stepTu = extractFrom(R"(
void inner();
void step() {
  for (int i = 0; i < 3; ++i) {
    inner();
  }
}
)",
                                           "step.c");
  const ModuleSummary innerTu = extractFrom(R"(
void inner() { }
)",
                                            "inner.c");
  const LinkResult link = linkProgram({mainTu, stepTu, innerTu});
  EXPECT_EQ(link.executions.at("main"), 1u);
  EXPECT_EQ(link.executions.at("step"), 10u);
  EXPECT_EQ(link.executions.at("inner"), 30u);
}

TEST(LinkTest, SignatureMismatchFallsBackToPessimism) {
  const ModuleSummary caller = extractFrom(R"(
void helper(double *data);
void use(double *buffer) { helper(buffer); }
)",
                                           "caller.c");
  const ModuleSummary callee = extractFrom(R"(
void helper(double *data, int n) {
  for (int i = 0; i < n; ++i) {
    double v = data[i];
    (void)v;
  }
}
)",
                                           "callee.c");
  const LinkResult link = linkProgram({caller, callee});
  ASSERT_FALSE(link.diagnostics.empty());
  EXPECT_NE(link.diagnostics.front().message.find("does not match"),
            std::string::npos);
  ASSERT_EQ(link.signatureMismatches.count("caller.c"), 1u);
  EXPECT_EQ(link.signatureMismatches.at("caller.c").count("helper"), 1u);

  // The mismatching TU's imports exclude the callee entirely.
  const TuImports imports = buildTuImports(caller, link);
  EXPECT_EQ(imports.externals.count("helper"), 0u);
}

TEST(LinkTest, RecursionFloorsAtProvableExecutions) {
  const ModuleSummary module = extractFrom(R"(
void spin(int depth);
int main() {
  for (int i = 0; i < 10; ++i) {
    spin(3);
  }
  return 0;
}
void spin(int depth) {
  if (depth > 0) {
    spin(depth - 1);
  }
}
)",
                                           "rec.c");
  const LinkResult link = linkProgram({module});
  // The cycle's extra executions are unprovable (the guarded self-edge
  // contributes nothing mid-evaluation); the 10-trip caller loop is the
  // provable floor.
  EXPECT_EQ(link.executions.at("spin"), 10u);
}

TEST(TuImportsTest, SlicesExternalsExecutionsAndParamFacts) {
  const ModuleSummary mainTu = extractFrom(R"(
double field[128];
void relax(double *cells, int n);
int main() {
  for (int t = 0; t < 5; ++t) {
    relax(field, 128);
  }
  return 0;
}
)",
                                           "main.c");
  const ModuleSummary relaxTu = extractFrom(R"(
void relax(double *cells, int n) {
  for (int i = 0; i < n; ++i) cells[i] = cells[i] * 0.5;
}
)",
                                           "relax.c");
  const LinkResult link = linkProgram({mainTu, relaxTu});

  const TuImports mainImports = buildTuImports(mainTu, link);
  ASSERT_EQ(mainImports.externals.count("relax"), 1u);
  EXPECT_TRUE(mainImports.externals.at("relax").params[0].writeHost);
  EXPECT_EQ(mainImports.executions.at("relax"), 5u);
  // main.c defines no function others call: no param facts for it.
  EXPECT_EQ(mainImports.paramFacts.count("main"), 0u);

  const TuImports relaxImports = buildTuImports(relaxTu, link);
  EXPECT_TRUE(relaxImports.externals.empty());
  // relax's param facts carry main.c's call-site constant and extent.
  ASSERT_EQ(relaxImports.paramFacts.count("relax"), 1u);
  const auto &perParam = relaxImports.paramFacts.at("relax");
  ASSERT_EQ(perParam.size(), 2u);
  ASSERT_EQ(perParam[0].size(), 1u);
  EXPECT_EQ(perParam[0][0].callerFile, "main.c");
  EXPECT_TRUE(perParam[0][0].extentKnown);
  EXPECT_EQ(perParam[0][0].extentConstElems.value_or(0), 128u);
  ASSERT_EQ(perParam[1].size(), 1u);
  EXPECT_EQ(perParam[1][0].constValue.value_or(-1), 128);

  // Import fingerprints are stable and content-sensitive.
  EXPECT_EQ(mainImports.fingerprint(), buildTuImports(mainTu, link).fingerprint());
  EXPECT_NE(mainImports.fingerprint(), relaxImports.fingerprint());
}

TEST(LinkTest, StaticFunctionsLinkPerModuleNotByBareName) {
  // Two TUs each define `static void init()` — distinct objects with
  // internal linkage. The link must not report a duplicate definition,
  // and each TU's executions must come from its own call sites.
  const ModuleSummary a = extractFrom(R"(
static void init() { }
void runA() {
  for (int i = 0; i < 3; ++i) {
    init();
  }
}
)",
                                      "a.c");
  const ModuleSummary b = extractFrom(R"(
static void init() { }
void runB() {
  for (int i = 0; i < 7; ++i) {
    init();
  }
}
)",
                                      "b.c");
  const ModuleSummary mainTu = extractFrom(R"(
void runA();
void runB();
int main() { runA(); runB(); return 0; }
)",
                                           "main.c");
  const LinkResult link = linkProgram({a, b, mainTu});
  EXPECT_TRUE(link.diagnostics.empty())
      << link.diagnostics.front().message;
  EXPECT_EQ(link.executions.at("a.c::init"), 3u);
  EXPECT_EQ(link.executions.at("b.c::init"), 7u);
  // Each TU's import slice exposes its own static under the bare name the
  // planner resolves.
  EXPECT_EQ(buildTuImports(a, link).executions.at("init"), 3u);
  EXPECT_EQ(buildTuImports(b, link).executions.at("init"), 7u);
}

TEST(LinkTest, StaticGlobalsAreNotExported) {
  // f() writes a file-static global; the exported summary must not name
  // it (another TU's same-named global is a different object).
  const ModuleSummary module = extractFrom(R"(
static double hidden[8];
double visible[8];
void f() {
  hidden[0] = 1.0;
  visible[0] = 2.0;
}
)",
                                           "m.c");
  const LinkResult link = linkProgram({module});
  const PortableSummary &f = link.closed.at("f");
  EXPECT_EQ(f.globals.count(internSymbol("hidden")), 0u);
  EXPECT_EQ(f.globals.count(internSymbol("visible")), 1u);
}

TEST(ScheduleTest, ReverseTopologicalOrderPutsCalleesFirst) {
  const ModuleSummary mainTu = extractFrom(R"(
void a();
void b();
int main() { a(); b(); return 0; }
)",
                                           "main.c");
  const ModuleSummary aTu = extractFrom(R"(
void b();
void a() { b(); }
)",
                                        "a.c");
  const ModuleSummary bTu = extractFrom(R"(
void b() { }
)",
                                        "b.c");
  const auto order = reverseTopologicalOrder({mainTu, aTu, bTu});
  ASSERT_EQ(order.size(), 3u);
  // b.c (leaf) first, then a.c, then main.c.
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 0u);
}

TEST(ScheduleTest, CyclesResolveDeterministically) {
  const ModuleSummary aTu = extractFrom(R"(
void b();
void a() { b(); }
)",
                                        "a.c");
  const ModuleSummary bTu = extractFrom(R"(
void a();
void b() { a(); }
)",
                                        "b.c");
  const auto order = reverseTopologicalOrder({aTu, bTu});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u); // a.c's DFS visits b.c first
  EXPECT_EQ(order[1], 0u);
}

} // namespace
} // namespace ompdart::summary
