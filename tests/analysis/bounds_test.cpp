#include "../common/test_util.hpp"

#include "analysis/bounds.hpp"
#include "cfg/cfg.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

const ForStmt *firstForLoop(const Stmt *stmt) {
  if (stmt == nullptr)
    return nullptr;
  if (stmt->kind() == StmtKind::For)
    return static_cast<const ForStmt *>(stmt);
  switch (stmt->kind()) {
  case StmtKind::Compound:
    for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
      if (const ForStmt *found = firstForLoop(sub))
        return found;
    return nullptr;
  case StmtKind::OmpDirective:
    return firstForLoop(
        static_cast<const OmpDirectiveStmt *>(stmt)->associated());
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    if (const ForStmt *found = firstForLoop(ifStmt->thenStmt()))
      return found;
    return firstForLoop(ifStmt->elseStmt());
  }
  default:
    return nullptr;
  }
}

LoopBounds boundsOf(const std::string &loopSource) {
  static std::vector<test::ParsedUnit> keepAlive;
  keepAlive.push_back(
      test::parse("void f(int n, int m, double *a) {\n" + loopSource +
                  "\n}\n"));
  const auto &parsed = keepAlive.back();
  EXPECT_TRUE(parsed.ok) << parsed.diags->summary();
  const ForStmt *loop = firstForLoop(parsed.function("f")->body());
  EXPECT_NE(loop, nullptr);
  return analyzeForLoop(loop);
}

TEST(LoopBoundsTest, CanonicalUpwardLoop) {
  const LoopBounds bounds = boundsOf("for (int i = 0; i < n; ++i) a[i] = i;");
  ASSERT_TRUE(bounds.valid);
  EXPECT_EQ(bounds.inductionVar->name(), "i");
  EXPECT_EQ(bounds.lowerConst.value_or(-1), 0);
  EXPECT_FALSE(bounds.upperConst.has_value()); // symbolic n
  EXPECT_EQ(bounds.step, 1);
}

TEST(LoopBoundsTest, ConstantBounds) {
  const LoopBounds bounds =
      boundsOf("for (int i = 2; i < 100; i++) a[i] = i;");
  ASSERT_TRUE(bounds.valid);
  EXPECT_EQ(bounds.lowerConst.value_or(-1), 2);
  EXPECT_EQ(bounds.upperConst.value_or(-1), 100);
}

TEST(LoopBoundsTest, InclusiveUpperBoundAdjusted) {
  const LoopBounds bounds =
      boundsOf("for (int i = 0; i <= 9; ++i) a[i] = i;");
  ASSERT_TRUE(bounds.valid);
  EXPECT_EQ(bounds.upperConst.value_or(-1), 10);
  EXPECT_TRUE(bounds.upperInclusiveAdjusted);
}

TEST(LoopBoundsTest, PaperListing4Bound) {
  // Paper Listing 4: for (int i = 0; i < N/2; i++) with N == 100.
  const LoopBounds bounds =
      boundsOf("for (int i = 0; i < 100 / 2; i++) a[i] = i;");
  ASSERT_TRUE(bounds.valid);
  EXPECT_EQ(bounds.upperConst.value_or(-1), 50);
}

TEST(LoopBoundsTest, MirroredComparison) {
  const LoopBounds bounds = boundsOf("for (int i = 0; n > i; ++i) a[i] = i;");
  ASSERT_TRUE(bounds.valid);
  EXPECT_EQ(bounds.inductionVar->name(), "i");
}

TEST(LoopBoundsTest, DownwardLoop) {
  const LoopBounds bounds =
      boundsOf("for (int i = 9; i >= 0; --i) a[i] = i;");
  ASSERT_TRUE(bounds.valid);
  EXPECT_EQ(bounds.step, -1);
  EXPECT_EQ(bounds.lowerConst.value_or(-1), 0);
  EXPECT_EQ(bounds.upperConst.value_or(-1), 10); // exclusive of init+1
}

TEST(LoopBoundsTest, AssignmentInit) {
  const LoopBounds bounds =
      boundsOf("int i; for (i = 1; i < n; i = i + 1) a[i] = i;");
  ASSERT_TRUE(bounds.valid);
  EXPECT_EQ(bounds.lowerConst.value_or(-1), 1);
}

TEST(LoopBoundsTest, CompoundAssignStep) {
  const LoopBounds bounds =
      boundsOf("for (int i = 0; i < n; i += 1) a[i] = i;");
  ASSERT_TRUE(bounds.valid);
  EXPECT_EQ(bounds.step, 1);
}

TEST(LoopBoundsTest, NonUnitStrideRejected) {
  const LoopBounds bounds =
      boundsOf("for (int i = 0; i < n; i += 2) a[i] = i;");
  EXPECT_FALSE(bounds.valid);
}

TEST(LoopBoundsTest, MissingConditionRejected) {
  const LoopBounds bounds = boundsOf("for (int i = 0; ; ++i) { a[i] = i; "
                                     "if (i > 3) break; }");
  EXPECT_FALSE(bounds.valid);
}

TEST(LoopBoundsTest, ComplexConditionRejected) {
  const LoopBounds bounds =
      boundsOf("for (int i = 0; i * i < n; ++i) a[i] = i;");
  EXPECT_FALSE(bounds.valid);
}

TEST(LoopBoundsTest, WhileLoopHasNoIndexingVar) {
  auto parsed = test::parse("void f(int n) { while (n > 0) { n--; } }");
  const Stmt *whileStmt = parsed.function("f")->body()->body()[0];
  EXPECT_EQ(findIndexingVar(whileStmt), nullptr);
}

// --- Algorithm 1 ---

struct Alg1Fixture {
  test::ParsedUnit parsed;
  std::unique_ptr<AstCfg> cfg;
  FunctionAccessInfo info;

  explicit Alg1Fixture(const std::string &source)
      : parsed(test::parse(source)) {
    EXPECT_TRUE(parsed.ok) << parsed.diags->summary();
    CfgBuilder builder;
    cfg = builder.build(parsed.function("f"));
    info = collectAccesses(parsed.function("f"));
  }

  /// First host read event of `name` that has a subscript.
  const AccessEvent *hostReadOf(const std::string &name) {
    for (const AccessEvent &event : info.events)
      if (event.var != nullptr && event.var->name() == name &&
          !event.onDevice && event.kind == AccessKind::Read &&
          event.subscript != nullptr)
        return &event;
    return nullptr;
  }
};

TEST(Alg1Test, HoistsOutOfIndexingLoops) {
  // The backprop motif (paper Listing 6): host reads partial_sum[k*hid+j-1]
  // inside nested loops; the update belongs before the outermost loop whose
  // induction variable indexes the access (j), i.e. before both loops.
  Alg1Fixture fixture(R"(
void f(int hid, int num_blocks, double *partial_sum, double *hidden) {
  double sum = 0.0;
  for (int j = 1; j <= hid; j++) {
    sum = 0.0;
    for (int k = 0; k < num_blocks; k++) {
      sum += partial_sum[k * hid + j - 1];
    }
    hidden[j] = sum;
  }
}
)");
  const AccessEvent *access = fixture.hostReadOf("partial_sum");
  ASSERT_NE(access, nullptr);
  const auto *loops = fixture.cfg->enclosingLoops(access->stmt);
  ASSERT_NE(loops, nullptr);
  ASSERT_EQ(loops->size(), 2u);
  const Stmt *pos = findUpdateInsertLoc(access->subscript, access->stmt,
                                        *loops, SourceLocation{});
  EXPECT_EQ(pos, (*loops)[0]); // hoisted before the outermost (j) loop
}

TEST(Alg1Test, StopsAtNonIndexingLoop) {
  // The outer time loop's induction var (t) does not appear in the
  // subscript: the update stays inside it, before the j loop.
  Alg1Fixture fixture(R"(
void f(int n, double *data, double *out) {
  for (int t = 0; t < 10; ++t) {
    for (int j = 0; j < n; ++j) {
      out[t] += data[j];
    }
  }
}
)");
  const AccessEvent *access = fixture.hostReadOf("data");
  ASSERT_NE(access, nullptr);
  const auto *loops = fixture.cfg->enclosingLoops(access->stmt);
  ASSERT_EQ(loops->size(), 2u);
  const Stmt *pos = findUpdateInsertLoc(access->subscript, access->stmt,
                                        *loops, SourceLocation{});
  EXPECT_EQ(pos, (*loops)[1]); // the j loop, not the t loop
}

TEST(Alg1Test, LocLimBoundsHoisting) {
  Alg1Fixture fixture(R"(
void f(int n, double *data) {
  double acc = 0.0;
  for (int j = 0; j < n; ++j) {
    acc += data[j];
  }
}
)");
  const AccessEvent *access = fixture.hostReadOf("data");
  ASSERT_NE(access, nullptr);
  const auto *loops = fixture.cfg->enclosingLoops(access->stmt);
  ASSERT_EQ(loops->size(), 1u);
  // locLim *after* the loop start: hoisting above the loop is forbidden.
  SourceLocation locLim;
  locLim.offset = (*loops)[0]->range().begin.offset + 1;
  const Stmt *pos =
      findUpdateInsertLoc(access->subscript, access->stmt, *loops, locLim);
  EXPECT_EQ(pos, access->stmt);
}

TEST(Alg1Test, ScalarAccessNotHoisted) {
  Alg1Fixture fixture(R"(
void f(int n, double *data) {
  double acc = 0.0;
  for (int j = 0; j < n; ++j) {
    acc += data[0];
  }
}
)");
  // Constant subscript: no indexing variables, so Algorithm 1 keeps the
  // anchor statement.
  const AccessEvent *access = fixture.hostReadOf("data");
  ASSERT_NE(access, nullptr);
  const auto *loops = fixture.cfg->enclosingLoops(access->stmt);
  const Stmt *pos = findUpdateInsertLoc(access->subscript, access->stmt,
                                        *loops, SourceLocation{});
  EXPECT_EQ(pos, access->stmt);
}

// --- Extents ---

TEST(ExtentTest, DeclaredArrayExtent) {
  auto parsed = test::parse("double grid[4][8];\nvoid f() { grid[0][0] = 1.0; }");
  MallocExtents mallocExtents(parsed.unit());
  const ExtentInfo extent =
      dataExtent(parsed.unit().globals[0], mallocExtents);
  EXPECT_EQ(extent.constElems.value_or(0), 32u); // flattened
}

TEST(ExtentTest, MallocElementCount) {
  auto parsed = test::parse(
      "void f(int n) { double *p = (double *)malloc(n * sizeof(double)); "
      "p[0] = 1.0; free(p); }");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  MallocExtents mallocExtents(parsed.unit());
  auto *declStmt = test::firstStmtAs<DeclStmt>(parsed.function("f"));
  const ExtentInfo extent = dataExtent(declStmt->decls()[0], mallocExtents);
  EXPECT_TRUE(extent.known());
  EXPECT_EQ(extent.spelling, "n");
  EXPECT_FALSE(extent.constElems.has_value());
}

TEST(ExtentTest, MallocConstantBytes) {
  auto parsed = test::parse(
      "void f() { double *p = (double *)malloc(800); p[0] = 1.0; free(p); }");
  MallocExtents mallocExtents(parsed.unit());
  auto *declStmt = test::firstStmtAs<DeclStmt>(parsed.function("f"));
  const ExtentInfo extent = dataExtent(declStmt->decls()[0], mallocExtents);
  EXPECT_EQ(extent.constElems.value_or(0), 100u);
}

TEST(ExtentTest, MallocSizeofFirst) {
  auto parsed = test::parse(
      "void f(int count) { float *p = (float *)malloc(sizeof(float) * "
      "count); p[0] = 1.0f; free(p); }");
  MallocExtents mallocExtents(parsed.unit());
  auto *declStmt = test::firstStmtAs<DeclStmt>(parsed.function("f"));
  const ExtentInfo extent = dataExtent(declStmt->decls()[0], mallocExtents);
  EXPECT_EQ(extent.spelling, "count");
}

TEST(ExtentTest, CallocPattern) {
  auto parsed = test::parse(
      "void f(int n) { int *p = (int *)calloc(n, sizeof(int)); p[0] = 1; "
      "free(p); }");
  MallocExtents mallocExtents(parsed.unit());
  auto *declStmt = test::firstStmtAs<DeclStmt>(parsed.function("f"));
  const ExtentInfo extent = dataExtent(declStmt->decls()[0], mallocExtents);
  EXPECT_EQ(extent.spelling, "n");
}

TEST(ExtentTest, AssignedAfterDeclaration) {
  auto parsed = test::parse(R"(
void f(int n) {
  double *p;
  p = (double *)malloc(n * sizeof(double));
  p[0] = 1.0;
  free(p);
}
)");
  MallocExtents mallocExtents(parsed.unit());
  auto *declStmt = test::firstStmtAs<DeclStmt>(parsed.function("f"));
  const ExtentInfo extent = dataExtent(declStmt->decls()[0], mallocExtents);
  EXPECT_EQ(extent.spelling, "n");
}

TEST(ExtentTest, UnknownPointerExtent) {
  auto parsed = test::parse("void f(double *p) { p[0] = 1.0; }");
  MallocExtents mallocExtents(parsed.unit());
  const ExtentInfo extent =
      dataExtent(parsed.function("f")->params()[0], mallocExtents);
  EXPECT_FALSE(extent.known());
}

TEST(ExtentTest, ScalarIsOneElement) {
  auto parsed = test::parse("int x;");
  MallocExtents mallocExtents(parsed.unit());
  const ExtentInfo extent =
      dataExtent(parsed.unit().globals[0], mallocExtents);
  EXPECT_EQ(extent.constElems.value_or(0), 1u);
}

// --- Full coverage ---

TEST(CoverageTest, FullWriteDetected) {
  Alg1Fixture fixture(R"(
void f(double *a) {
  for (int i = 0; i < 256; ++i) {
    a[i] = i;
  }
}
)");
  // Give `a` a known extent of 256 via a synthetic ExtentInfo.
  ExtentInfo extent;
  extent.constElems = 256;
  extent.spelling = "256";
  const AccessEvent *write = nullptr;
  for (const AccessEvent &event : fixture.info.events)
    if (event.var->name() == "a" && event.kind == AccessKind::Write)
      write = &event;
  ASSERT_NE(write, nullptr);
  const auto *loops = fixture.cfg->enclosingLoops(write->stmt);
  ASSERT_NE(loops, nullptr);
  EXPECT_TRUE(isFullCoverageWrite(*write, write->var, extent, *loops));
}

TEST(CoverageTest, PartialWriteNotFullCoverage) {
  Alg1Fixture fixture(R"(
void f(double *a) {
  for (int i = 0; i < 128; ++i) {
    a[i] = i;
  }
}
)");
  ExtentInfo extent;
  extent.constElems = 256;
  extent.spelling = "256";
  const AccessEvent *write = nullptr;
  for (const AccessEvent &event : fixture.info.events)
    if (event.var->name() == "a" && event.kind == AccessKind::Write)
      write = &event;
  ASSERT_NE(write, nullptr);
  const auto *loops = fixture.cfg->enclosingLoops(write->stmt);
  EXPECT_FALSE(isFullCoverageWrite(*write, write->var, extent, *loops));
}

TEST(CoverageTest, ConditionalWriteNotFullCoverage) {
  Alg1Fixture fixture(R"(
void f(double *a, int flag) {
  for (int i = 0; i < 256; ++i) {
    if (flag) a[i] = i;
  }
}
)");
  ExtentInfo extent;
  extent.constElems = 256;
  extent.spelling = "256";
  const AccessEvent *write = nullptr;
  for (const AccessEvent &event : fixture.info.events)
    if (event.var->name() == "a" && event.kind == AccessKind::Write)
      write = &event;
  ASSERT_NE(write, nullptr);
  const auto *loops = fixture.cfg->enclosingLoops(write->stmt);
  EXPECT_FALSE(isFullCoverageWrite(*write, write->var, extent, *loops));
}

TEST(CoverageTest, SymbolicExtentMatchesLoopBound) {
  Alg1Fixture fixture(R"(
void f(double *a, int n) {
  for (int i = 0; i < n; ++i) {
    a[i] = i;
  }
}
)");
  ExtentInfo extent;
  extent.spelling = "n";
  const AccessEvent *write = nullptr;
  for (const AccessEvent &event : fixture.info.events)
    if (event.var->name() == "a" && event.kind == AccessKind::Write)
      write = &event;
  ASSERT_NE(write, nullptr);
  const auto *loops = fixture.cfg->enclosingLoops(write->stmt);
  EXPECT_TRUE(isFullCoverageWrite(*write, write->var, extent, *loops));
}

} // namespace
} // namespace ompdart
