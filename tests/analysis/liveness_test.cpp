#include "../common/test_util.hpp"

#include "analysis/liveness.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

struct Fixture {
  test::ParsedUnit parsed;
  std::unique_ptr<AstCfg> cfg;
  FunctionAccessInfo info;
  std::unique_ptr<LivenessAnalysis> liveness;

  explicit Fixture(const std::string &source) : parsed(test::parse(source)) {
    EXPECT_TRUE(parsed.ok) << parsed.diags->summary();
    CfgBuilder builder;
    cfg = builder.build(parsed.function("f"));
    info = collectAccesses(parsed.function("f"));
    liveness = std::make_unique<LivenessAnalysis>(*cfg, info);
  }

  VarDecl *localVar(const std::string &name) {
    for (const AccessEvent &event : info.events)
      if (event.var != nullptr && event.var->name() == name)
        return event.var;
    return nullptr;
  }
  const Stmt *bodyStmt(std::size_t index) {
    return parsed.function("f")->body()->body()[index];
  }
};

TEST(LivenessTest, ReadAfterKeepsLive) {
  Fixture fx(R"(
int f() {
  int x = 1;
  int y = 2;
  return x + y;
}
)");
  EXPECT_TRUE(fx.liveness->isLiveAfter(fx.bodyStmt(0), fx.localVar("x")));
  EXPECT_TRUE(fx.liveness->isLiveAfter(fx.bodyStmt(1), fx.localVar("y")));
}

TEST(LivenessTest, OverwriteKills) {
  Fixture fx(R"(
int f() {
  int x = 1;
  x = 2;
  x = 3;
  return x;
}
)");
  // After the first statement, x is overwritten before any read.
  EXPECT_FALSE(fx.liveness->isLiveAfter(fx.bodyStmt(0), fx.localVar("x")));
  EXPECT_TRUE(fx.liveness->isLiveAfter(fx.bodyStmt(2), fx.localVar("x")));
}

TEST(LivenessTest, DeadAfterLastUse) {
  Fixture fx(R"(
int f() {
  int t = 5;
  int r = t * 2;
  return r;
}
)");
  EXPECT_FALSE(fx.liveness->isLiveAfter(fx.bodyStmt(1), fx.localVar("t")));
}

TEST(LivenessTest, LoopKeepsVariableLiveAcrossBackEdge) {
  Fixture fx(R"(
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    acc = acc + i;
  }
  return acc;
}
)");
  EXPECT_TRUE(fx.liveness->isLiveAfter(fx.bodyStmt(0), fx.localVar("acc")));
}

TEST(LivenessTest, BranchMergeIsConservative) {
  Fixture fx(R"(
int f(int c) {
  int x = 1;
  if (c) {
    x = 2;
  }
  return x;
}
)");
  // x may flow to the return via the else path: live.
  EXPECT_TRUE(fx.liveness->isLiveAfter(fx.bodyStmt(0), fx.localVar("x")));
}

TEST(LivenessTest, ConditionalWriteDoesNotKill) {
  Fixture fx(R"(
int f(int c) {
  int x = 1;
  if (c) { x = 2; }
  x = x + 1;
  return x;
}
)");
  EXPECT_TRUE(fx.liveness->isLiveAfter(fx.bodyStmt(0), fx.localVar("x")));
}

TEST(LivenessTest, GlobalsAlwaysEscape) {
  Fixture fx(R"(
int counter;
int f() {
  counter = 1;
  return 0;
}
)");
  VarDecl *counter = fx.localVar("counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_TRUE(fx.liveness->escapes(counter));
  EXPECT_TRUE(fx.liveness->isLiveAfter(fx.bodyStmt(0), counter));
}

TEST(LivenessTest, PointerParamsEscape) {
  Fixture fx("void f(double *a) { a[0] = 1.0; }");
  EXPECT_TRUE(fx.liveness->escapes(fx.parsed.function("f")->params()[0]));
}

TEST(LivenessTest, ScalarParamsDoNotEscape) {
  Fixture fx("int f(int n) { return n + 1; }");
  EXPECT_FALSE(fx.liveness->escapes(fx.parsed.function("f")->params()[0]));
}

TEST(LivenessTest, AddressTakenEscapes) {
  Fixture fx(R"(
void g(int *p);
void f() {
  int x = 0;
  g(&x);
}
)");
  EXPECT_TRUE(fx.liveness->escapes(fx.localVar("x")));
}

TEST(LivenessTest, ArrayElementWriteDoesNotKill) {
  Fixture fx(R"(
int f() {
  int a[4] = {};
  a[0] = 1;
  return a[0];
}
)");
  EXPECT_TRUE(fx.liveness->isLiveAfter(fx.bodyStmt(0), fx.localVar("a")));
}

TEST(LivenessTest, DeviceReadsDoNotKeepHostLive) {
  Fixture fx(R"(
void f(int n) {
  int scale = 3;
  double out[64] = {};
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) out[i] = scale;
  out[0] = 0.0;
}
)");
  // scale is only read on the device after its definition; host liveness
  // (used for map(from:) decisions) must NOT consider device reads.
  EXPECT_FALSE(fx.liveness->isLiveAfter(fx.bodyStmt(0), fx.localVar("scale")));
}

} // namespace
} // namespace ompdart
