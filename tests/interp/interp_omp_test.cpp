// OpenMP offload semantics in the interpreter: implicit mapping rules,
// target data reference counting, updates, firstprivate, plus the pipeline
// property at the heart of the paper's evaluation — OMPDart-transformed
// programs produce identical output with strictly less data transfer.
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"

#include <gtest/gtest.h>

namespace ompdart::interp {
namespace {

RunResult run(const std::string &source) { return runProgram(source); }

TEST(InterpOmpTest, KernelExecutesAndResultsReturn) {
  auto result = run(R"(
int main() {
  double a[16];
  for (int i = 0; i < 16; ++i) a[i] = i;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 16; ++i) a[i] = a[i] * 2.0;
  double sum = 0.0;
  for (int i = 0; i < 16; ++i) sum += a[i];
  return (int)sum;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 240); // 2 * (0+...+15)
  EXPECT_EQ(result.ledger.kernelLaunches(), 1u);
}

TEST(InterpOmpTest, ImplicitMapMovesWholeArrayBothWays) {
  auto result = run(R"(
int main() {
  double a[100];
  for (int i = 0; i < 100; ++i) a[i] = 1.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 100; ++i) a[i] += 1.0;
  return (int)a[99];
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 2);
  EXPECT_EQ(result.ledger.bytes(sim::TransferDir::HtoD), 800u);
  EXPECT_EQ(result.ledger.bytes(sim::TransferDir::DtoH), 800u);
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::HtoD), 1u);
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::DtoH), 1u);
}

TEST(InterpOmpTest, ListingOneRedundantTransfersEachIteration) {
  // Paper Listing 1: kernel in a loop without explicit mappings transfers
  // both ways on every iteration.
  auto result = run(R"(
int main() {
  double a[64] = {};
  for (int t = 0; t < 10; ++t) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < 64; ++j) a[j] += j;
  }
  return (int)a[1];
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 10);
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::HtoD), 10u);
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::DtoH), 10u);
  EXPECT_EQ(result.ledger.totalBytes(), 2u * 10u * 64u * 8u);
}

TEST(InterpOmpTest, TargetDataRegionEliminatesPerKernelTraffic) {
  auto result = run(R"(
int main() {
  double a[64] = {};
  #pragma omp target data map(tofrom: a)
  {
    for (int t = 0; t < 10; ++t) {
      #pragma omp target teams distribute parallel for
      for (int j = 0; j < 64; ++j) a[j] += j;
    }
  }
  return (int)a[1];
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 10);
  // Exactly one copy each way regardless of iteration count.
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::HtoD), 1u);
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::DtoH), 1u);
}

TEST(InterpOmpTest, ImplicitScalarIsFirstprivate) {
  // Writes to an unmapped scalar inside a kernel are lost (OpenMP >= 4.5
  // semantics) and generate no transfers.
  auto result = run(R"(
int main() {
  double a[8] = {};
  int flag = 0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 8; ++i) {
    a[i] = 1.0;
    flag = 1;
  }
  return flag;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 0) << "firstprivate write must not escape";
}

TEST(InterpOmpTest, ScalarValueReachesKernelWithoutMemcpy) {
  auto result = run(R"(
int main() {
  double a[8] = {};
  double factor = 2.5;
  #pragma omp target teams distribute parallel for firstprivate(factor)
  for (int i = 0; i < 8; ++i) a[i] = factor;
  // Only the array transfers; factor travels as a kernel argument.
  return (int)(a[7] * 2.0);
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 5);
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::HtoD), 1u); // array only
}

TEST(InterpOmpTest, MapToScalarCountsAsTransfer) {
  auto result = run(R"(
int main() {
  double a[8] = {};
  double factor = 2.5;
  #pragma omp target teams distribute parallel for map(to: factor)
  for (int i = 0; i < 8; ++i) a[i] = factor;
  return (int)a[0];
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  // Array HtoD + scalar HtoD: the call-count difference behind the paper's
  // hotspot/nw/xsbench firstprivate wins (Figure 4).
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::HtoD), 2u);
}

TEST(InterpOmpTest, ReductionMapsToFrom) {
  auto result = run(R"(
int main() {
  double a[32];
  for (int i = 0; i < 32; ++i) a[i] = 1.0;
  double sum = 0.0;
  #pragma omp target teams distribute parallel for reduction(+: sum)
  for (int i = 0; i < 32; ++i) sum += a[i];
  return (int)sum;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 32);
}

TEST(InterpOmpTest, UpdateFromRefreshesHost) {
  auto result = run(R"(
int main() {
  double a[16] = {};
  double total = 0.0;
  #pragma omp target data map(tofrom: a)
  {
    for (int t = 0; t < 4; ++t) {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; ++i) a[i] += 1.0;
      #pragma omp target update from(a)
      for (int i = 0; i < 16; ++i) total += a[i];
    }
  }
  return (int)total;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 16 * (1 + 2 + 3 + 4));
  EXPECT_EQ(result.ledger.calls(sim::TransferDir::DtoH), 4u + 1u);
}

TEST(InterpOmpTest, MissingUpdateReadsStaleData) {
  // The buggy mapping of paper Listing 3: host reads stale zeros.
  auto result = run(R"(
int main() {
  double a[16] = {};
  double total = 0.0;
  #pragma omp target data map(tofrom: a)
  {
    for (int t = 0; t < 4; ++t) {
      #pragma omp target teams distribute parallel for map(from: a)
      for (int i = 0; i < 16; ++i) a[i] += 1.0;
      for (int i = 0; i < 16; ++i) total += a[i];
    }
  }
  return (int)total;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 0) << "stale host reads must see zeros";
}

TEST(InterpOmpTest, UpdateToPushesHostWrites) {
  auto result = run(R"(
int main() {
  double a[8] = {};
  double b[8] = {};
  #pragma omp target data map(to: a) map(from: b)
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 8; ++i) b[i] = a[i];
    for (int i = 0; i < 8; ++i) a[i] = 5.0;
    #pragma omp target update to(a)
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 8; ++i) b[i] = a[i];
  }
  return (int)(b[0] + b[7]);
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 10);
}

TEST(InterpOmpTest, ArraySectionTransfersOnlySlice) {
  auto result = run(R"(
int main() {
  double a[100] = {};
  #pragma omp target data map(tofrom: a[0:10])
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 10; ++i) a[i] = 1.0;
  }
  return (int)a[9];
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 1);
  EXPECT_EQ(result.ledger.bytes(sim::TransferDir::HtoD), 80u);
  EXPECT_EQ(result.ledger.bytes(sim::TransferDir::DtoH), 80u);
}

TEST(InterpOmpTest, MallocedArraysThroughKernel) {
  auto result = run(R"(
int main() {
  int n = 32;
  double *a = (double *)malloc(n * sizeof(double));
  for (int i = 0; i < n; ++i) a[i] = 1.0;
  #pragma omp target teams distribute parallel for map(tofrom: a[0:n])
  for (int i = 0; i < n; ++i) a[i] *= 3.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += a[i];
  free(a);
  return (int)sum;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 96);
  EXPECT_EQ(result.ledger.bytes(sim::TransferDir::HtoD), 256u);
}

TEST(InterpOmpTest, DeviceOpsCounted) {
  auto result = run(R"(
int main() {
  double a[64] = {};
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 64; ++i) a[i] = i * 2.0;
  return 0;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.ledger.deviceOps(), 64u);
  EXPECT_GT(result.ledger.hostOps(), 0u);
}

TEST(InterpOmpTest, GlobalArraysMappable) {
  auto result = run(R"(
double table[32];
int main() {
  for (int i = 0; i < 32; ++i) table[i] = i;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; ++i) table[i] += 10.0;
  return (int)table[31];
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 41);
}

TEST(InterpOmpTest, KernelInCalleeFunction) {
  auto result = run(R"(
void scale(double *data, int n, double f) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) data[i] *= f;
}
int main() {
  double a[16];
  for (int i = 0; i < 16; ++i) a[i] = 1.0;
  scale(a, 16, 4.0);
  return (int)a[5];
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 4);
}

// --- The central pipeline property (paper §VI correctness evaluation) ---

struct VariantComparison {
  RunResult unoptimized;
  RunResult transformed;
};

VariantComparison compareTransformed(const std::string &source) {
  VariantComparison cmp;
  cmp.unoptimized = runProgram(source);
  Session session("variant.c", source);
  EXPECT_TRUE(session.run()) << "tool failed";
  cmp.transformed = runProgram(session.rewrite());
  return cmp;
}

TEST(InterpOmpTest, TransformedProgramKeepsOutputReducesTransfer) {
  const std::string source = R"(
int main() {
  double a[128] = {};
  double total = 0.0;
  for (int t = 0; t < 20; ++t) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < 128; ++j) a[j] += j * 0.5;
    for (int j = 0; j < 128; ++j) total += a[j];
  }
  printf("total=%.2f\n", total);
  return 0;
}
)";
  auto cmp = compareTransformed(source);
  ASSERT_TRUE(cmp.unoptimized.ok) << cmp.unoptimized.error;
  ASSERT_TRUE(cmp.transformed.ok) << cmp.transformed.error;
  EXPECT_EQ(cmp.unoptimized.output, cmp.transformed.output);
  EXPECT_LT(cmp.transformed.ledger.totalBytes(),
            cmp.unoptimized.ledger.totalBytes());
  EXPECT_LT(cmp.transformed.ledger.calls(sim::TransferDir::HtoD),
            cmp.unoptimized.ledger.calls(sim::TransferDir::HtoD));
}

TEST(InterpOmpTest, TransformedKernelChainKeepsOutput) {
  const std::string source = R"(
int main() {
  double a[64] = {};
  double b[64] = {};
  for (int i = 0; i < 64; ++i) a[i] = i;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 64; ++i) a[i] += 1.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 64; ++i) b[i] = a[i] * 2.0;
  double checksum = 0.0;
  for (int i = 0; i < 64; ++i) checksum += b[i];
  printf("%.1f\n", checksum);
  return 0;
}
)";
  auto cmp = compareTransformed(source);
  ASSERT_TRUE(cmp.unoptimized.ok) << cmp.unoptimized.error;
  ASSERT_TRUE(cmp.transformed.ok) << cmp.transformed.error;
  EXPECT_EQ(cmp.unoptimized.output, cmp.transformed.output);
  EXPECT_LE(cmp.transformed.ledger.totalCalls(),
            cmp.unoptimized.ledger.totalCalls());
}

} // namespace
} // namespace ompdart::interp
