// Core language semantics of the interpreter (no OpenMP): expressions,
// control flow, functions, memory, builtins, printf.
#include "interp/interp.hpp"

#include <gtest/gtest.h>

namespace ompdart::interp {
namespace {

RunResult run(const std::string &source) { return runProgram(source); }

TEST(InterpCoreTest, ReturnsExitCode) {
  auto result = run("int main() { return 42; }");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 42);
}

TEST(InterpCoreTest, ArithmeticAndPrecedence) {
  auto result = run("int main() { return 2 + 3 * 4 - 6 / 2; }");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 11);
}

TEST(InterpCoreTest, FloatingPointMath) {
  auto result = run(R"(
int main() {
  double x = 2.0;
  double y = sqrt(x * 8.0);
  printf("%.1f\n", y);
  return 0;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.output, "4.0\n");
}

TEST(InterpCoreTest, PrintfFormats) {
  auto result = run(R"(
int main() {
  printf("%d %5d %.3f %e %s %c%%\n", 7, 42, 3.14159, 1234.5, "hi", 'x');
  return 0;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.output, "7    42 3.142 1.234500e+03 hi x%\n");
}

TEST(InterpCoreTest, ForLoopAccumulates) {
  auto result = run(R"(
int main() {
  int sum = 0;
  for (int i = 1; i <= 10; ++i) sum += i;
  return sum;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 55);
}

TEST(InterpCoreTest, WhileAndDoLoops) {
  auto result = run(R"(
int main() {
  int n = 0;
  while (n < 5) n++;
  int m = 0;
  do { m += 2; } while (m < 10);
  return n + m;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 15);
}

TEST(InterpCoreTest, BreakAndContinue) {
  auto result = run(R"(
int main() {
  int sum = 0;
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) continue;
    if (i > 10) break;
    sum += i;
  }
  return sum;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 1 + 3 + 5 + 7 + 9);
}

TEST(InterpCoreTest, SwitchWithFallthrough) {
  auto result = run(R"(
int classify(int k) {
  int r = 0;
  switch (k) {
  case 0:
  case 1: r = 10; break;
  case 2: r = 20; break;
  default: r = 99;
  }
  return r;
}
int main() {
  return classify(0) + classify(1) + classify(2) + classify(7);
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 10 + 10 + 20 + 99);
}

TEST(InterpCoreTest, RecursionWorks) {
  auto result = run(R"(
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main() { return fib(12); }
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 144);
}

TEST(InterpCoreTest, ArraysAndPointers) {
  auto result = run(R"(
int main() {
  int a[8] = {};
  for (int i = 0; i < 8; ++i) a[i] = i * i;
  int *p = a;
  return p[3] + *(p + 4);
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 9 + 16);
}

TEST(InterpCoreTest, MultiDimensionalArrays) {
  auto result = run(R"(
int main() {
  double g[3][4];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j)
      g[i][j] = i * 10 + j;
  return (int)(g[2][3] + g[1][0]);
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 23 + 10);
}

TEST(InterpCoreTest, MallocFreeRoundTrip) {
  auto result = run(R"(
int main() {
  int n = 16;
  double *data = (double *)malloc(n * sizeof(double));
  for (int i = 0; i < n; ++i) data[i] = i * 0.5;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += data[i];
  free(data);
  return (int)sum;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 60); // 0.5 * (0+..+15) = 60
}

TEST(InterpCoreTest, UseAfterFreeDetected) {
  auto result = run(R"(
int main() {
  double *p = (double *)malloc(8 * sizeof(double));
  free(p);
  p[0] = 1.0;
  return 0;
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("use after free"), std::string::npos);
}

TEST(InterpCoreTest, OutOfBoundsDetected) {
  auto result = run(R"(
int main() {
  int a[4] = {};
  a[10] = 1;
  return 0;
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("out-of-bounds"), std::string::npos);
}

TEST(InterpCoreTest, StructsAndMembers) {
  auto result = run(R"(
struct point { double x; double y; };
int main() {
  struct point p;
  p.x = 3.0;
  p.y = 4.0;
  double d = sqrt(p.x * p.x + p.y * p.y);
  return (int)d;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 5);
}

TEST(InterpCoreTest, StructPointerArrow) {
  auto result = run(R"(
struct counter { int value; };
void bump(struct counter *c) { c->value += 1; }
int main() {
  struct counter c;
  c.value = 0;
  bump(&c);
  bump(&c);
  return c.value;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 2);
}

TEST(InterpCoreTest, GlobalsInitialized) {
  auto result = run(R"(
int table[4] = {10, 20, 30, 40};
int scale = 2;
int main() { return table[2] * scale; }
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 60);
}

TEST(InterpCoreTest, PassByPointerMutates) {
  auto result = run(R"(
void fill(double *out, int n, double v) {
  for (int i = 0; i < n; ++i) out[i] = v;
}
int main() {
  double a[4];
  fill(a, 4, 2.5);
  return (int)(a[0] + a[3]);
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 5);
}

TEST(InterpCoreTest, DeterministicRand) {
  auto a = run(R"(
int main() {
  srand(7);
  int s = 0;
  for (int i = 0; i < 5; ++i) s += rand() % 100;
  return s;
}
)");
  auto b = run(R"(
int main() {
  srand(7);
  int s = 0;
  for (int i = 0; i < 5; ++i) s += rand() % 100;
  return s;
}
)");
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.exitCode, b.exitCode);
}

TEST(InterpCoreTest, ShortCircuitEvaluation) {
  auto result = run(R"(
int main() {
  int a[2] = {1, 2};
  int i = 5;
  // Without short-circuit this would be out of bounds.
  if (i < 2 && a[i] > 0) return 1;
  if (i >= 2 || a[i] > 0) return 7;
  return 0;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 7);
}

TEST(InterpCoreTest, OpBudgetGuardsRunawayLoops) {
  InterpOptions options;
  options.maxOps = 10'000;
  auto result = runProgram("int main() { while (1) { } return 0; }", options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("budget"), std::string::npos);
}

TEST(InterpCoreTest, MemsetZeroesArray) {
  auto result = run(R"(
int main() {
  double a[8];
  for (int i = 0; i < 8; ++i) a[i] = 5.0;
  memset(a, 0, 8 * sizeof(double));
  double sum = 0.0;
  for (int i = 0; i < 8; ++i) sum += a[i];
  return (int)sum;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 0);
}

TEST(InterpCoreTest, ExitBuiltinStopsProgram) {
  auto result = run(R"(
int main() {
  printf("before\n");
  exit(3);
  printf("after\n");
  return 0;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 3);
  EXPECT_EQ(result.output, "before\n");
}

TEST(InterpCoreTest, TernaryAndComma) {
  auto result = run(R"(
int main() {
  int x = 3;
  int y = x > 2 ? 10 : 20;
  int z;
  for (z = 0; z < 3; ++z, y += 1) { }
  return y;
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exitCode, 13);
}

} // namespace
} // namespace ompdart::interp
