// Experiment-harness acceptance tests: the ApplyToInterpBackend path (plan
// overlay, no rewrite→reparse round-trip) must reproduce the classic
// path's Figures 3-6 inputs — identical ledgers and outputs per variant —
// across the whole nine-benchmark suite.
#include "exp/experiment.hpp"

#include <gtest/gtest.h>

namespace ompdart::exp {
namespace {

void expectVariantLedgersEqual(const VariantResult &a, const VariantResult &b,
                               const std::string &name) {
  EXPECT_EQ(a.ok, b.ok) << name;
  EXPECT_EQ(a.output, b.output) << name;
  EXPECT_EQ(a.bytesHtoD, b.bytesHtoD) << name;
  EXPECT_EQ(a.bytesDtoH, b.bytesDtoH) << name;
  EXPECT_EQ(a.callsHtoD, b.callsHtoD) << name;
  EXPECT_EQ(a.callsDtoH, b.callsDtoH) << name;
  EXPECT_EQ(a.kernelLaunches, b.kernelLaunches) << name;
  EXPECT_DOUBLE_EQ(a.transferSeconds, b.transferSeconds) << name;
}

TEST(ExperimentBackendTest, InterpBackendReproducesRewritePathAcrossSuite) {
  ExperimentOptions overlayPath;
  overlayPath.useInterpBackend = true;
  ExperimentOptions rewritePath;
  rewritePath.useInterpBackend = false;

  const auto viaOverlay = runAllBenchmarks({}, overlayPath);
  const auto viaRewrite = runAllBenchmarks({}, rewritePath);
  ASSERT_EQ(viaOverlay.size(), viaRewrite.size());

  for (std::size_t i = 0; i < viaOverlay.size(); ++i) {
    const BenchmarkComparison &overlay = viaOverlay[i];
    const BenchmarkComparison &rewrite = viaRewrite[i];
    expectVariantLedgersEqual(overlay.ompdart, rewrite.ompdart,
                              overlay.name);
    EXPECT_TRUE(overlay.outputsMatch) << overlay.name;
    EXPECT_TRUE(rewrite.outputsMatch) << rewrite.name;
    // Both paths saw the same plan and the same static cost prediction.
    EXPECT_EQ(overlay.toolReport.plan, rewrite.toolReport.plan)
        << overlay.name;
    EXPECT_GT(overlay.predictedPlanBytes, 0u) << overlay.name;
    EXPECT_EQ(overlay.predictedPlanBytes,
              predictedTransferBytes(overlay.toolReport.plan))
        << overlay.name;
  }

  // Figures 3, 4 and 6 are pure functions of the ledgers; their rendered
  // tables must be byte-identical between the two execution paths.
  EXPECT_EQ(renderFigure3(viaOverlay), renderFigure3(viaRewrite));
  EXPECT_EQ(renderFigure4(viaOverlay), renderFigure4(viaRewrite));
  EXPECT_EQ(renderFigure6(viaOverlay), renderFigure6(viaRewrite));
  EXPECT_EQ(renderTable4(viaOverlay), renderTable4(viaRewrite));
}

// The paper's central claim is that *static* analysis can predict (and so
// minimize) runtime transfers. This reconciliation pins the cost layer to
// the reference-count simulator across the whole suite: the statically
// predicted plan bytes must match the bytes the simulated runtime actually
// moved to within 2% — present-table re-entry transitions, per-kernel map
// multiplicities, both tofrom legs and update loop executions included.
// (The only tolerated residual is dynamically bounded control flow, e.g.
// bfs's frontier loop, whose trip count no static analysis can prove.)
TEST(PredictedVsSimulatedTest, SuiteWideByteRatioWithinTwoPercent) {
  const auto results = runAllBenchmarks();
  ASSERT_EQ(results.size(), 9u);
  for (const BenchmarkComparison &cmp : results) {
    ASSERT_TRUE(cmp.ompdart.ok) << cmp.name;
    ASSERT_GT(cmp.predictedPlanBytes, 0u) << cmp.name;
    const double ratio =
        static_cast<double>(cmp.ompdart.totalBytes()) /
        static_cast<double>(cmp.predictedPlanBytes);
    EXPECT_GE(ratio, 0.98) << cmp.name << ": predicted "
                           << cmp.predictedPlanBytes << " vs simulated "
                           << cmp.ompdart.totalBytes();
    EXPECT_LE(ratio, 1.02) << cmp.name << ": predicted "
                           << cmp.predictedPlanBytes << " vs simulated "
                           << cmp.ompdart.totalBytes();
  }
}

// The four divergences this reconciliation fixed must stay exact: hotspot
// (90.0x: symbolic pointer extents resolved through call-site constants
// plus 30 region re-entries), lulesh (3.14x) and xsbench (1.56x) and
// backprop (1.057x: update directives inside constant-trip loops charged
// per execution).
TEST(PredictedVsSimulatedTest, FormerDivergencesPredictExactly) {
  for (const auto &def : suite::allBenchmarks()) {
    if (def.name != "hotspot" && def.name != "lulesh" &&
        def.name != "xsbench" && def.name != "backprop")
      continue;
    const BenchmarkComparison cmp = runBenchmark(def);
    EXPECT_EQ(cmp.predictedPlanBytes, cmp.ompdart.totalBytes()) << def.name;
  }
}

} // namespace
} // namespace ompdart::exp
