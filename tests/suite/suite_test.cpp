// Integration tests over the nine-benchmark suite: for every benchmark the
// three variants must run, produce identical output (the paper's
// correctness check), and exhibit the paper's qualitative transfer shape
// (OMPDart strictly below unoptimized; at or below expert in memcpy calls
// for the firstprivate benchmarks; below expert for lulesh).
#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace ompdart::exp {
namespace {

/// Results are cached: the full suite runs once for all assertions.
const std::map<std::string, BenchmarkComparison> &results() {
  static const std::map<std::string, BenchmarkComparison> cache = [] {
    std::map<std::string, BenchmarkComparison> map;
    for (BenchmarkComparison &cmp : runAllBenchmarks())
      map.emplace(cmp.name, std::move(cmp));
    return map;
  }();
  return cache;
}

class SuiteTest : public ::testing::TestWithParam<std::string> {
protected:
  const BenchmarkComparison &cmp() { return results().at(GetParam()); }
};

TEST_P(SuiteTest, AllVariantsRun) {
  const BenchmarkComparison &c = cmp();
  EXPECT_TRUE(c.unoptimized.ok) << c.unoptimized.error;
  EXPECT_TRUE(c.ompdart.ok) << c.ompdart.error << "\n--- transformed ---\n"
                            << c.transformedSource;
  EXPECT_TRUE(c.expert.ok) << c.expert.error;
}

TEST_P(SuiteTest, OutputsIdenticalAcrossVariants) {
  const BenchmarkComparison &c = cmp();
  EXPECT_EQ(c.unoptimized.output, c.ompdart.output)
      << "--- transformed ---\n"
      << c.transformedSource;
  EXPECT_EQ(c.unoptimized.output, c.expert.output);
  EXPECT_FALSE(c.unoptimized.output.empty());
}

TEST_P(SuiteTest, OmpDartReducesTransferVsUnoptimized) {
  const BenchmarkComparison &c = cmp();
  EXPECT_LT(c.ompdart.totalBytes(), c.unoptimized.totalBytes())
      << "--- transformed ---\n"
      << c.transformedSource;
  EXPECT_LT(c.ompdart.totalCalls(), c.unoptimized.totalCalls());
}

TEST_P(SuiteTest, OmpDartRuntimeAtLeastAsGoodAsUnoptimized) {
  const BenchmarkComparison &c = cmp();
  EXPECT_LE(c.ompdart.totalSeconds, c.unoptimized.totalSeconds * 1.001);
}

TEST_P(SuiteTest, ToolOverheadIsSmall) {
  const BenchmarkComparison &c = cmp();
  EXPECT_GT(c.toolSeconds, 0.0);
  EXPECT_LT(c.toolSeconds, 2.0); // paper's slowest (lulesh) was 1.35s
}

TEST_P(SuiteTest, ComplexityMetricsPopulated) {
  const BenchmarkComparison &c = cmp();
  EXPECT_GT(c.kernels, 0u);
  EXPECT_GT(c.offloadedLines, 0u);
  EXPECT_GT(c.mappedVariables, 0u);
  EXPECT_GT(c.possibleMappings, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteTest,
    ::testing::Values("accuracy", "ace", "backprop", "bfs", "clenergy",
                      "hotspot", "lulesh", "nw", "xsbench"),
    [](const ::testing::TestParamInfo<std::string> &info) {
      return info.param;
    });

// --- Benchmark-specific shape assertions from the paper's §VI ---

TEST(SuiteShapeTest, KernelCountsMatchPaperTable4) {
  EXPECT_EQ(results().at("accuracy").kernels, 1u);
  EXPECT_EQ(results().at("ace").kernels, 6u);
  EXPECT_EQ(results().at("backprop").kernels, 2u);
  EXPECT_EQ(results().at("bfs").kernels, 2u);
  EXPECT_EQ(results().at("clenergy").kernels, 2u);
  EXPECT_EQ(results().at("hotspot").kernels, 1u);
  EXPECT_EQ(results().at("lulesh").kernels, 15u);
  EXPECT_EQ(results().at("nw").kernels, 2u);
  EXPECT_EQ(results().at("xsbench").kernels, 1u);
}

TEST(SuiteShapeTest, LuleshMappedVariablesMatchPaper) {
  EXPECT_EQ(results().at("lulesh").mappedVariables, 65u);
}

TEST(SuiteShapeTest, AceHasLargestTransferReduction) {
  // Paper: ace's 1010x is the largest reduction in the suite.
  const auto &map = results();
  const double aceReduction =
      map.at("ace").transferReduction(map.at("ace").ompdart);
  for (const auto &[name, cmp] : map) {
    if (name == "ace")
      continue;
    EXPECT_GE(aceReduction, cmp.transferReduction(cmp.ompdart))
        << name << " beats ace";
  }
  EXPECT_GT(aceReduction, 50.0);
}

TEST(SuiteShapeTest, FirstprivateBeatsExpertCalls) {
  // Paper Figure 4: OMPDart reduces memcpy calls below the expert level in
  // hotspot, nw and xsbench via firstprivate.
  for (const char *name : {"hotspot", "nw", "xsbench"}) {
    const BenchmarkComparison &c = results().at(name);
    EXPECT_LT(c.ompdart.totalCalls(), c.expert.totalCalls()) << name;
  }
}

TEST(SuiteShapeTest, ClenergyStructBeatsExpertCalls) {
  // Paper: the expert overlooked the lattice struct; OMPDart maps it and
  // cuts memcpy calls (66% in the paper).
  const BenchmarkComparison &c = results().at("clenergy");
  EXPECT_LT(c.ompdart.totalCalls(), c.expert.totalCalls());
}

TEST(SuiteShapeTest, LuleshBeatsExpert) {
  // Paper: 1.6x speedup over expert and large transfer reduction from
  // removing the redundant update directives.
  const BenchmarkComparison &c = results().at("lulesh");
  EXPECT_LT(c.ompdart.totalBytes(), c.expert.totalBytes());
  EXPECT_LT(c.ompdart.totalSeconds, c.expert.totalSeconds);
  const double vsExpert = c.expert.totalSeconds / c.ompdart.totalSeconds;
  EXPECT_GT(vsExpert, 1.1) << "expected a clear win over expert";
}

TEST(SuiteShapeTest, OmpDartAtLeastAsGoodAsExpertEverywhere) {
  // Paper: "for each application, the mappings were always at least as good
  // as the expert implementations" (runtime metric).
  for (const auto &[name, cmp] : results()) {
    EXPECT_LE(cmp.ompdart.totalSeconds, cmp.expert.totalSeconds * 1.02)
        << name;
  }
}

TEST(SuiteShapeTest, GeomeanSpeedupInPaperBallpark) {
  std::vector<double> speedups;
  for (const auto &[name, cmp] : results())
    speedups.push_back(cmp.speedup(cmp.ompdart));
  const double geomean = geometricMean(speedups);
  // Paper: 2.8x. Our simulator will differ, but the win must be material.
  EXPECT_GT(geomean, 1.3);
}

TEST(SuiteShapeTest, TableRenderersProduceRows) {
  std::vector<BenchmarkComparison> list;
  for (const auto &[name, cmp] : results())
    list.push_back(cmp);
  EXPECT_NE(renderTable3().find("accuracy"), std::string::npos);
  EXPECT_NE(renderTable4(list).find("lulesh"), std::string::npos);
  EXPECT_NE(renderTable5(list).find("average"), std::string::npos);
  EXPECT_NE(renderFigure3(list).find("reduction"), std::string::npos);
  EXPECT_NE(renderFigure4(list).find("memcpy"), std::string::npos);
  EXPECT_NE(renderFigure5(list).find("geomean"), std::string::npos);
  EXPECT_NE(renderFigure6(list).find("geomean"), std::string::npos);
}

} // namespace
} // namespace ompdart::exp
