#include "frontend/ast.hpp"
#include "frontend/type.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

TEST(TypeTest, BuiltinSizes) {
  TypeContext types;
  EXPECT_EQ(types.builtin(BuiltinKind::Char)->sizeInBytes(), 1u);
  EXPECT_EQ(types.builtin(BuiltinKind::Short)->sizeInBytes(), 2u);
  EXPECT_EQ(types.builtin(BuiltinKind::Int)->sizeInBytes(), 4u);
  EXPECT_EQ(types.builtin(BuiltinKind::UInt)->sizeInBytes(), 4u);
  EXPECT_EQ(types.builtin(BuiltinKind::Float)->sizeInBytes(), 4u);
  EXPECT_EQ(types.builtin(BuiltinKind::Long)->sizeInBytes(), 8u);
  EXPECT_EQ(types.builtin(BuiltinKind::Double)->sizeInBytes(), 8u);
  EXPECT_EQ(types.voidType()->sizeInBytes(), 0u);
}

TEST(TypeTest, BuiltinsAreUniqued) {
  TypeContext types;
  EXPECT_EQ(types.builtin(BuiltinKind::Int), types.builtin(BuiltinKind::Int));
  EXPECT_NE(types.builtin(BuiltinKind::Int),
            types.builtin(BuiltinKind::UInt));
}

TEST(TypeTest, PointerUniquing) {
  TypeContext types;
  const Type *p1 = types.pointerTo(types.doubleType());
  const Type *p2 = types.pointerTo(types.doubleType());
  EXPECT_EQ(p1, p2);
  const Type *pc = types.pointerTo(types.doubleType(), /*pointeeConst=*/true);
  EXPECT_NE(p1, pc);
  EXPECT_EQ(p1->sizeInBytes(), 8u);
}

TEST(TypeTest, ArraySize) {
  TypeContext types;
  const Type *array = types.arrayOf(types.doubleType(), 32, "32");
  EXPECT_EQ(array->sizeInBytes(), 256u);
}

TEST(TypeTest, NestedArraySize) {
  TypeContext types;
  const Type *inner = types.arrayOf(types.intType(), 8, "8");
  const Type *outer = types.arrayOf(inner, 4, "4");
  EXPECT_EQ(outer->sizeInBytes(), 128u);
}

TEST(TypeTest, RecordPackedLayout) {
  RecordDecl record("atom");
  TypeContext types;
  record.addField("x", types.builtin(BuiltinKind::Float));
  record.addField("y", types.builtin(BuiltinKind::Float));
  record.addField("q", types.doubleType());
  EXPECT_EQ(record.sizeInBytes(), 16u);
  EXPECT_EQ(record.findField("x")->offset, 0u);
  EXPECT_EQ(record.findField("y")->offset, 4u);
  EXPECT_EQ(record.findField("q")->offset, 8u);
  EXPECT_EQ(record.findField("nope"), nullptr);
}

TEST(TypeTest, Spellings) {
  TypeContext types;
  EXPECT_EQ(types.doubleType()->spelling(), "double");
  EXPECT_EQ(types.pointerTo(types.doubleType())->spelling(), "double *");
  EXPECT_EQ(types.pointerTo(types.intType(), true)->spelling(),
            "const int *");
  EXPECT_EQ(types.arrayOf(types.intType(), 5, "5")->spelling(), "int [5]");
}

TEST(TypeTest, ScalarBaseTypeStripsLayers) {
  TypeContext types;
  const Type *array = types.arrayOf(types.doubleType(), 8, "8");
  const Type *pointer = types.pointerTo(array);
  EXPECT_EQ(scalarBaseType(pointer), types.doubleType());
  EXPECT_EQ(scalarBaseType(types.intType()), types.intType());
}

TEST(TypeTest, Predicates) {
  TypeContext types;
  EXPECT_TRUE(types.doubleType()->isFloatingPoint());
  EXPECT_FALSE(types.doubleType()->isInteger());
  EXPECT_TRUE(types.intType()->isInteger());
  EXPECT_TRUE(types.intType()->isScalar());
  EXPECT_FALSE(types.pointerTo(types.intType())->isScalar());
  EXPECT_TRUE(types.voidType()->isVoid());
}

} // namespace
} // namespace ompdart
