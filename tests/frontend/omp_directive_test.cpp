// Exhaustive coverage of Table I (AST nodes recognized as offload kernels)
// plus directive/clause parsing details the analyses rely on.
#include "../common/test_util.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

using test::parse;

OmpDirectiveStmt *parseDirective(const std::string &pragmaLine,
                                 test::ParsedUnit &parsed) {
  const std::string source = "void f(int n, double *a, double *b) {\n" +
                             pragmaLine +
                             "\nfor (int i = 0; i < n; ++i) a[i] = b[i];\n}\n";
  parsed = parse(source);
  return test::findFirstDirective(parsed.function("f"));
}

struct DirectiveCase {
  const char *pragma;
  OmpDirectiveKind kind;
  bool isKernel;
};

class TableOneTest : public ::testing::TestWithParam<DirectiveCase> {};

TEST_P(TableOneTest, DirectiveKindAndKernelClassification) {
  const DirectiveCase &testCase = GetParam();
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective(std::string("#pragma omp ") + testCase.pragma, parsed);
  ASSERT_NE(directive, nullptr)
      << testCase.pragma << "\n"
      << parsed.diags->summary();
  EXPECT_EQ(directive->directive(), testCase.kind) << testCase.pragma;
  EXPECT_EQ(directive->isOffloadKernel(), testCase.isKernel)
      << testCase.pragma;
}

// Table I of the paper: every kernel-launching target directive.
INSTANTIATE_TEST_SUITE_P(
    PaperTableOne, TableOneTest,
    ::testing::Values(
        DirectiveCase{"target", OmpDirectiveKind::Target, true},
        DirectiveCase{"target parallel", OmpDirectiveKind::TargetParallel,
                      true},
        DirectiveCase{"target parallel for",
                      OmpDirectiveKind::TargetParallelFor, true},
        DirectiveCase{"target parallel for simd",
                      OmpDirectiveKind::TargetParallelForSimd, true},
        DirectiveCase{"target parallel loop",
                      OmpDirectiveKind::TargetParallelLoop, true},
        DirectiveCase{"target simd", OmpDirectiveKind::TargetSimd, true},
        DirectiveCase{"target teams", OmpDirectiveKind::TargetTeams, true},
        DirectiveCase{"target teams distribute",
                      OmpDirectiveKind::TargetTeamsDistribute, true},
        DirectiveCase{"target teams distribute parallel for",
                      OmpDirectiveKind::TargetTeamsDistributeParallelFor,
                      true},
        DirectiveCase{"target teams distribute parallel for simd",
                      OmpDirectiveKind::TargetTeamsDistributeParallelForSimd,
                      true},
        DirectiveCase{"target teams distribute simd",
                      OmpDirectiveKind::TargetTeamsDistributeSimd, true},
        DirectiveCase{"target teams loop", OmpDirectiveKind::TargetTeamsLoop,
                      true}));

TEST(OmpDirectiveTest, TargetDataIsNotAKernel) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp target data map(a[0:n])", parsed);
  ASSERT_NE(directive, nullptr);
  EXPECT_EQ(directive->directive(), OmpDirectiveKind::TargetData);
  EXPECT_FALSE(directive->isOffloadKernel());
}

TEST(OmpDirectiveTest, TargetUpdateIsStandalone) {
  auto parsed = parse(R"(
void f(int n, double *a) {
  #pragma omp target update from(a[0:n])
  a[0] = 1.0;
}
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  auto *directive = test::findFirstDirective(parsed.function("f"));
  ASSERT_NE(directive, nullptr);
  EXPECT_EQ(directive->directive(), OmpDirectiveKind::TargetUpdate);
  EXPECT_EQ(directive->associated(), nullptr);
  ASSERT_EQ(directive->clauses().size(), 1u);
  EXPECT_EQ(directive->clauses()[0].kind, OmpClauseKind::UpdateFrom);
}

TEST(OmpDirectiveTest, TargetEnterExitData) {
  auto parsed = parse(R"(
void f(int n, double *a) {
  #pragma omp target enter data map(to: a[0:n])
  #pragma omp target exit data map(from: a[0:n])
  a[0] = 1.0;
}
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  auto *body = parsed.function("f")->body();
  auto *enter = dynamic_cast<OmpDirectiveStmt *>(body->body()[0]);
  auto *exit = dynamic_cast<OmpDirectiveStmt *>(body->body()[1]);
  ASSERT_NE(enter, nullptr);
  ASSERT_NE(exit, nullptr);
  EXPECT_EQ(enter->directive(), OmpDirectiveKind::TargetEnterData);
  EXPECT_EQ(exit->directive(), OmpDirectiveKind::TargetExitData);
}

TEST(OmpDirectiveTest, MapTypesParsed) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive = parseDirective(
      "#pragma omp target map(to: a[0:n]) map(from: b[0:n]) map(tofrom: n)",
      parsed);
  ASSERT_NE(directive, nullptr);
  ASSERT_EQ(directive->clauses().size(), 3u);
  EXPECT_EQ(directive->clauses()[0].mapType, OmpMapType::To);
  EXPECT_EQ(directive->clauses()[1].mapType, OmpMapType::From);
  EXPECT_EQ(directive->clauses()[2].mapType, OmpMapType::ToFrom);
}

TEST(OmpDirectiveTest, DefaultMapTypeIsToFrom) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp target map(a)", parsed);
  ASSERT_NE(directive, nullptr);
  EXPECT_EQ(directive->clauses()[0].mapType, OmpMapType::ToFrom);
}

TEST(OmpDirectiveTest, AllocMapType) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp target data map(alloc: a[0:n])", parsed);
  ASSERT_NE(directive, nullptr);
  EXPECT_EQ(directive->clauses()[0].mapType, OmpMapType::Alloc);
}

TEST(OmpDirectiveTest, ArraySectionBounds) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp target map(to: a[2:n])", parsed);
  ASSERT_NE(directive, nullptr);
  const OmpObject &object = directive->clauses()[0].objects[0];
  ASSERT_EQ(object.sections.size(), 1u);
  EXPECT_NE(object.sections[0].lower, nullptr);
  EXPECT_NE(object.sections[0].length, nullptr);
  EXPECT_EQ(object.spelling, "a[2:n]");
  ASSERT_NE(object.var, nullptr);
  EXPECT_EQ(object.var->name(), "a");
}

TEST(OmpDirectiveTest, WholeDimensionSection) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp target map(a[:])", parsed);
  ASSERT_NE(directive, nullptr);
  const OmpObject &object = directive->clauses()[0].objects[0];
  ASSERT_EQ(object.sections.size(), 1u);
  EXPECT_EQ(object.sections[0].lower, nullptr);
  EXPECT_EQ(object.sections[0].length, nullptr);
}

TEST(OmpDirectiveTest, FirstprivateClause) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp target firstprivate(n)", parsed);
  ASSERT_NE(directive, nullptr);
  ASSERT_EQ(directive->clauses().size(), 1u);
  EXPECT_EQ(directive->clauses()[0].kind, OmpClauseKind::FirstPrivate);
  EXPECT_EQ(directive->clauses()[0].objects[0].var->name(), "n");
}

TEST(OmpDirectiveTest, ReductionClause) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive = parseDirective(
      "#pragma omp target teams distribute parallel for reduction(+: n)",
      parsed);
  ASSERT_NE(directive, nullptr);
  ASSERT_EQ(directive->clauses().size(), 1u);
  EXPECT_EQ(directive->clauses()[0].kind, OmpClauseKind::Reduction);
  EXPECT_EQ(directive->clauses()[0].reductionOp, "+");
}

TEST(OmpDirectiveTest, NumTeamsAndThreadLimit) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive = parseDirective(
      "#pragma omp target teams num_teams(8) thread_limit(256)", parsed);
  ASSERT_NE(directive, nullptr);
  ASSERT_EQ(directive->clauses().size(), 2u);
  EXPECT_EQ(directive->clauses()[0].kind, OmpClauseKind::NumTeams);
  EXPECT_NE(directive->clauses()[0].value, nullptr);
  EXPECT_EQ(directive->clauses()[1].kind, OmpClauseKind::ThreadLimit);
}

TEST(OmpDirectiveTest, MultipleObjectsPerClause) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp target map(to: a[0:n], b[0:n]) "
                     "firstprivate(n)",
                     parsed);
  ASSERT_NE(directive, nullptr);
  EXPECT_EQ(directive->clauses()[0].objects.size(), 2u);
}

TEST(OmpDirectiveTest, PragmaRangeCoversDirectiveLine) {
  const std::string source =
      "void f(int n, double *a) {\n"
      "  #pragma omp target teams distribute parallel for map(tofrom: "
      "a[0:n])\n"
      "  for (int i = 0; i < n; ++i) a[i] = i;\n"
      "}\n";
  auto parsed = parse(source);
  auto *directive = test::findFirstDirective(parsed.function("f"));
  ASSERT_NE(directive, nullptr);
  const SourceRange range = directive->pragmaRange();
  const std::string text = source.substr(
      range.begin.offset, range.end.offset - range.begin.offset);
  EXPECT_EQ(text.substr(0, 11), "#pragma omp");
  EXPECT_NE(text.find("map(tofrom: a[0:n])"), std::string::npos);
  // The pragma range must not include the following for loop.
  EXPECT_EQ(text.find("for (int"), std::string::npos);
}

TEST(OmpDirectiveTest, AssociatedStatementAttached) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp target teams distribute parallel for",
                     parsed);
  ASSERT_NE(directive, nullptr);
  ASSERT_NE(directive->associated(), nullptr);
  EXPECT_EQ(directive->associated()->kind(), StmtKind::For);
}

TEST(OmpDirectiveTest, HostParallelForIsNotOffload) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive =
      parseDirective("#pragma omp parallel for", parsed);
  ASSERT_NE(directive, nullptr);
  EXPECT_EQ(directive->directive(), OmpDirectiveKind::ParallelFor);
  EXPECT_FALSE(directive->isOffloadKernel());
}

TEST(OmpDirectiveTest, UnknownClauseWarnsButParses) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive = parseDirective(
      "#pragma omp target mystery_clause(a, b) map(to: a[0:n])", parsed);
  ASSERT_NE(directive, nullptr);
  ASSERT_EQ(directive->clauses().size(), 1u); // unknown clause dropped
  bool sawWarning = false;
  for (const auto &diag : parsed.diags->diagnostics())
    sawWarning |= diag.severity == Severity::Warning;
  EXPECT_TRUE(sawWarning);
}

TEST(OmpDirectiveTest, ScheduleClauseSkipped) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive = parseDirective(
      "#pragma omp target teams distribute parallel for schedule(static, 4)",
      parsed);
  ASSERT_NE(directive, nullptr);
  EXPECT_TRUE(parsed.ok) << parsed.diags->summary();
}

TEST(OmpDirectiveTest, CollapseClauseValue) {
  test::ParsedUnit parsed;
  OmpDirectiveStmt *directive = parseDirective(
      "#pragma omp target teams distribute parallel for collapse(2)", parsed);
  ASSERT_NE(directive, nullptr);
  ASSERT_EQ(directive->clauses().size(), 1u);
  EXPECT_EQ(directive->clauses()[0].kind, OmpClauseKind::Collapse);
}

TEST(OmpDirectiveTest, MultiLinePragmaViaContinuation) {
  auto parsed = parse(R"(
void f(int n, double *a) {
  #pragma omp target teams distribute \
      parallel for map(tofrom: a[0:n])
  for (int i = 0; i < n; ++i) a[i] = i;
}
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  auto *directive = test::findFirstDirective(parsed.function("f"));
  ASSERT_NE(directive, nullptr);
  EXPECT_EQ(directive->directive(),
            OmpDirectiveKind::TargetTeamsDistributeParallelFor);
}

TEST(OmpDirectiveTest, DirectiveSpellingRoundTrip) {
  EXPECT_STREQ(directiveSpelling(OmpDirectiveKind::TargetTeamsDistribute),
               "target teams distribute");
  EXPECT_STREQ(directiveSpelling(OmpDirectiveKind::TargetUpdate),
               "target update");
  EXPECT_STREQ(mapTypeSpelling(OmpMapType::ToFrom), "tofrom");
  EXPECT_STREQ(mapTypeSpelling(OmpMapType::Alloc), "alloc");
}

} // namespace
} // namespace ompdart
