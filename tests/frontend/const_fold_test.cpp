#include "../common/test_util.hpp"

#include "frontend/const_fold.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

std::optional<std::int64_t> foldInitOf(const std::string &expr) {
  auto parsed = test::parse("int v = " + expr + ";");
  if (!parsed.ok || parsed.unit().globals.empty())
    return std::nullopt;
  return foldIntegerConstant(parsed.unit().globals[0]->init());
}

TEST(ConstFoldTest, Literals) {
  EXPECT_EQ(foldInitOf("42").value_or(-1), 42);
  EXPECT_EQ(foldInitOf("0x10").value_or(-1), 16);
}

TEST(ConstFoldTest, Arithmetic) {
  EXPECT_EQ(foldInitOf("2 + 3 * 4").value_or(-1), 14);
  EXPECT_EQ(foldInitOf("100 / 2 - 1").value_or(-1), 49);
  EXPECT_EQ(foldInitOf("17 % 5").value_or(-1), 2);
}

TEST(ConstFoldTest, Shifts) {
  EXPECT_EQ(foldInitOf("1 << 10").value_or(-1), 1024);
  EXPECT_EQ(foldInitOf("256 >> 4").value_or(-1), 16);
}

TEST(ConstFoldTest, Bitwise) {
  EXPECT_EQ(foldInitOf("0xF0 & 0x1F").value_or(-1), 0x10);
  EXPECT_EQ(foldInitOf("1 | 6").value_or(-1), 7);
  EXPECT_EQ(foldInitOf("5 ^ 3").value_or(-1), 6);
}

TEST(ConstFoldTest, Comparisons) {
  EXPECT_EQ(foldInitOf("3 < 4").value_or(-1), 1);
  EXPECT_EQ(foldInitOf("3 >= 4").value_or(-1), 0);
  EXPECT_EQ(foldInitOf("3 == 3 && 1").value_or(-1), 1);
  EXPECT_EQ(foldInitOf("0 || 0").value_or(-1), 0);
}

TEST(ConstFoldTest, Unary) {
  EXPECT_EQ(foldInitOf("-5").value_or(0), -5);
  EXPECT_EQ(foldInitOf("~0").value_or(0), -1);
  EXPECT_EQ(foldInitOf("!3").value_or(-1), 0);
  EXPECT_EQ(foldInitOf("!0").value_or(-1), 1);
}

TEST(ConstFoldTest, Conditional) {
  EXPECT_EQ(foldInitOf("1 ? 7 : 9").value_or(-1), 7);
  EXPECT_EQ(foldInitOf("0 ? 7 : 9").value_or(-1), 9);
}

TEST(ConstFoldTest, DivisionByZeroIsNotConstant) {
  EXPECT_FALSE(foldInitOf("1 / 0").has_value());
  EXPECT_FALSE(foldInitOf("1 % 0").has_value());
}

TEST(ConstFoldTest, SizeofFolds) {
  EXPECT_EQ(foldInitOf("sizeof(double)").value_or(-1), 8);
  EXPECT_EQ(foldInitOf("4 * sizeof(int)").value_or(-1), 16);
}

TEST(ConstFoldTest, VariableReferencesAreNotConstant) {
  auto parsed = test::parse("int a = 1; int v = a + 2;");
  ASSERT_TRUE(parsed.ok);
  EXPECT_FALSE(foldIntegerConstant(parsed.unit().globals[1]->init()));
}

TEST(ConstFoldTest, ParensAndCasts) {
  EXPECT_EQ(foldInitOf("(int)(2.0 ? 3 : 4)").value_or(-1), 3);
  EXPECT_EQ(foldInitOf("((2)) * ((3))").value_or(-1), 6);
}

TEST(ConstFoldTest, PaperListing4Bound) {
  // The paper's Listing 4/5 example: upper bound 100/2, minus one for the
  // strict `<` comparison.
  EXPECT_EQ(foldInitOf("100 / 2").value_or(-1), 50);
}

} // namespace
} // namespace ompdart
