#include "../common/test_util.hpp"

#include "frontend/ast_printer.hpp"
#include "frontend/const_fold.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

using test::parse;

TEST(ParserTest, GlobalVariable) {
  auto parsed = parse("int counter = 3;");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  ASSERT_EQ(parsed.unit().globals.size(), 1u);
  const VarDecl *var = parsed.unit().globals[0];
  EXPECT_EQ(var->name(), "counter");
  EXPECT_TRUE(var->isGlobal());
  ASSERT_NE(var->init(), nullptr);
  EXPECT_EQ(foldIntegerConstant(var->init()).value_or(-1), 3);
}

TEST(ParserTest, GlobalArrayWithMacroExtent) {
  auto parsed = parse("#define N 64\ndouble data[N];");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  const auto *array =
      dynamic_cast<const ArrayType *>(parsed.unit().globals[0]->type());
  ASSERT_NE(array, nullptr);
  EXPECT_EQ(array->extent().value_or(0), 64u);
}

TEST(ParserTest, ExternGlobalUnifiesOntoOneDecl) {
  // Concatenated multi-TU programs redeclare globals: an extern
  // redeclaration after the definition (and vice versa) must bind to one
  // object, and the definition's type wins (it may carry the extent).
  auto parsed = parse(R"(
extern double grid[];
double grid[64];
extern double grid[64];
double reader() { return grid[1]; }
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  ASSERT_EQ(parsed.unit().globals.size(), 1u);
  const VarDecl *grid = parsed.unit().globals[0];
  EXPECT_FALSE(grid->isExtern());
  const auto *array = dynamic_cast<const ArrayType *>(grid->type());
  ASSERT_NE(array, nullptr);
  EXPECT_EQ(array->extent().value_or(0), 64u);
}

TEST(ParserTest, LaterExternDeclarationCompletesArrayType) {
  // A richer redeclaration must not lose its extent to declaration order.
  auto parsed = parse(R"(
extern double a[];
extern double a[64];
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  ASSERT_EQ(parsed.unit().globals.size(), 1u);
  const auto *array =
      dynamic_cast<const ArrayType *>(parsed.unit().globals[0]->type());
  ASSERT_NE(array, nullptr);
  EXPECT_EQ(array->extent().value_or(0), 64u);
}

TEST(ParserTest, StaticGlobalsDoNotUnify) {
  // Internal linkage: same-named statics are distinct objects.
  auto parsed = parse(R"(
static double tmp[8];
static double tmp[16];
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  ASSERT_EQ(parsed.unit().globals.size(), 2u);
}

TEST(ParserTest, MultiDimensionalArray) {
  auto parsed = parse("double grid[4][8];");
  ASSERT_TRUE(parsed.ok);
  const auto *outer =
      dynamic_cast<const ArrayType *>(parsed.unit().globals[0]->type());
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->extent().value_or(0), 4u);
  const auto *inner = dynamic_cast<const ArrayType *>(outer->element());
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->extent().value_or(0), 8u);
  EXPECT_TRUE(inner->element()->isFloatingPoint());
}

TEST(ParserTest, FunctionDefinitionAndParams) {
  auto parsed = parse("int add(int a, int b) { return a + b; }");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  FunctionDecl *fn = parsed.function("add");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->isDefined());
  ASSERT_EQ(fn->params().size(), 2u);
  EXPECT_EQ(fn->params()[0]->name(), "a");
  EXPECT_TRUE(fn->params()[0]->isParam());
}

TEST(ParserTest, PrototypeThenDefinitionShareDecl) {
  auto parsed = parse("void f(int x);\nvoid f(int x) { x = x + 1; }");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  ASSERT_EQ(parsed.unit().functions.size(), 1u);
  EXPECT_TRUE(parsed.unit().functions[0]->isDefined());
}

TEST(ParserTest, ArrayParamDecaysToPointer) {
  auto parsed = parse("void f(double a[], int n) { a[0] = n; }");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  const VarDecl *param = parsed.function("f")->params()[0];
  EXPECT_TRUE(param->type()->isPointer());
}

TEST(ParserTest, ConstPointerParamRecorded) {
  auto parsed = parse("void f(const double *a) { double x = a[0]; (void)x; }");
  // Note: (void)x cast-expr of variable; just check parse outcome of param.
  const VarDecl *param = parsed.function("f")->params()[0];
  const auto *pointer = dynamic_cast<const PointerType *>(param->type());
  ASSERT_NE(pointer, nullptr);
  EXPECT_TRUE(pointer->isPointeeConst());
}

TEST(ParserTest, OperatorPrecedence) {
  auto parsed = parse("int v = 2 + 3 * 4;");
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(foldIntegerConstant(parsed.unit().globals[0]->init()).value_or(0),
            14);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto parsed = parse("int v = (2 + 3) * 4;");
  EXPECT_EQ(foldIntegerConstant(parsed.unit().globals[0]->init()).value_or(0),
            20);
}

TEST(ParserTest, RightAssociativeAssignment) {
  auto parsed = parse("void f() { int a; int b; a = b = 3; }");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
}

TEST(ParserTest, ConditionalExpression) {
  auto parsed = parse("int v = 1 < 2 ? 10 : 20;");
  EXPECT_EQ(foldIntegerConstant(parsed.unit().globals[0]->init()).value_or(0),
            10);
}

TEST(ParserTest, SizeofType) {
  auto parsed = parse("unsigned long v = sizeof(double);");
  EXPECT_EQ(foldIntegerConstant(parsed.unit().globals[0]->init()).value_or(0),
            8);
}

TEST(ParserTest, CastOfMalloc) {
  auto parsed =
      parse("void f(int n) { double *p = (double *)malloc(n * "
            "sizeof(double)); free(p); }");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  auto *declStmt = test::firstStmtAs<DeclStmt>(parsed.function("f"));
  ASSERT_NE(declStmt, nullptr);
  const VarDecl *var = declStmt->decls()[0];
  EXPECT_TRUE(var->type()->isPointer());
  const Expr *init = ignoreParensAndCasts(var->init());
  ASSERT_EQ(init->kind(), ExprKind::Call);
  EXPECT_EQ(static_cast<const CallExpr *>(init)->calleeName(), "malloc");
}

TEST(ParserTest, StructDefinitionAndMemberAccess) {
  auto parsed = parse(R"(
struct point { double x; double y; };
double norm2(struct point p) { return p.x * p.x + p.y * p.y; }
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  ASSERT_EQ(parsed.unit().records.size(), 1u);
  EXPECT_EQ(parsed.unit().records[0]->fields().size(), 2u);
  EXPECT_EQ(parsed.unit().records[0]->sizeInBytes(), 16u);
}

TEST(ParserTest, ArrowMemberAccess) {
  auto parsed = parse(R"(
struct node { int value; };
int get(struct node *n) { return n->value; }
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
}

TEST(ParserTest, TypedefStruct) {
  auto parsed = parse(R"(
typedef struct vec3 { float x; float y; float z; } vec3_t;
float getx(vec3_t v) { return v.x; }
)");
  EXPECT_TRUE(parsed.ok) << parsed.diags->summary();
}

TEST(ParserTest, ForLoopWithDeclInit) {
  auto parsed = parse("void f(int n, int *a) { for (int i = 0; i < n; ++i) "
                      "a[i] = i; }");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  auto *forStmt = test::firstStmtAs<ForStmt>(parsed.function("f"));
  ASSERT_NE(forStmt, nullptr);
  EXPECT_NE(forStmt->init(), nullptr);
  EXPECT_NE(forStmt->cond(), nullptr);
  EXPECT_NE(forStmt->inc(), nullptr);
}

TEST(ParserTest, WhileAndDoLoops) {
  auto parsed = parse(R"(
void f(int n) {
  int i = 0;
  while (i < n) { i++; }
  do { i--; } while (i > 0);
}
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
}

TEST(ParserTest, SwitchCaseDefault) {
  auto parsed = parse(R"(
int pick(int k) {
  switch (k) {
  case 0: return 1;
  case 1: return 2;
  default: break;
  }
  return 0;
}
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
}

TEST(ParserTest, ShadowingResolvesToInnermost) {
  auto parsed = parse(R"(
int x = 1;
int f() {
  int x = 2;
  { int x = 3; return x; }
}
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  // Find the return statement's variable; it must not be the global.
  FunctionDecl *fn = parsed.function("f");
  auto *block = dynamic_cast<CompoundStmt *>(fn->body()->body()[1]);
  ASSERT_NE(block, nullptr);
  auto *returnStmt = dynamic_cast<ReturnStmt *>(block->body()[1]);
  ASSERT_NE(returnStmt, nullptr);
  VarDecl *returned = referencedVar(returnStmt->value());
  ASSERT_NE(returned, nullptr);
  EXPECT_FALSE(returned->isGlobal());
  EXPECT_NE(returned, parsed.unit().globals[0]);
}

TEST(ParserTest, UndeclaredIdentifierIsError) {
  auto parsed = parse("void f() { y = 3; }");
  EXPECT_FALSE(parsed.ok);
  EXPECT_TRUE(parsed.diags->hasErrors());
}

TEST(ParserTest, InitializerList) {
  auto parsed = parse("int a[4] = {1, 2, 3, 4};");
  ASSERT_TRUE(parsed.ok);
  ASSERT_NE(parsed.unit().globals[0]->init(), nullptr);
  EXPECT_EQ(parsed.unit().globals[0]->init()->kind(), ExprKind::InitList);
}

TEST(ParserTest, EmptyInitializerList) {
  auto parsed = parse("int a[4] = {};");
  ASSERT_TRUE(parsed.ok);
  const auto *init =
      static_cast<const InitListExpr *>(parsed.unit().globals[0]->init());
  EXPECT_TRUE(init->inits().empty());
}

TEST(ParserTest, CommaExpression) {
  auto parsed = parse("void f() { int a; int b; for (a = 0, b = 9; a < b; "
                      "++a, --b) { } }");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
}

TEST(ParserTest, StatementRangesCoverSource) {
  const std::string source = "void f() { int x = 1; x = 2; }";
  auto parsed = parse(source);
  FunctionDecl *fn = parsed.function("f");
  const auto &body = fn->body()->body();
  ASSERT_EQ(body.size(), 2u);
  const SourceRange declRange = body[0]->range();
  EXPECT_EQ(source.substr(declRange.begin.offset,
                          declRange.end.offset - declRange.begin.offset),
            "int x = 1;");
  const SourceRange exprRange = body[1]->range();
  EXPECT_EQ(source.substr(exprRange.begin.offset,
                          exprRange.end.offset - exprRange.begin.offset),
            "x = 2;");
}

TEST(ParserTest, GlobalsAndFunctionsMixed) {
  auto parsed = parse(R"(
#define SIZE 16
double weights[SIZE];
static int hidden;
void init(void);
void init(void) {
  for (int i = 0; i < SIZE; ++i) weights[i] = 0.0;
  hidden = SIZE;
}
int main() { init(); return hidden; }
)");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  EXPECT_EQ(parsed.unit().globals.size(), 2u);
  EXPECT_EQ(parsed.unit().functions.size(), 2u);
  EXPECT_TRUE(parsed.unit().globals[1]->isStatic());
}

TEST(ParserTest, AstDumpMentionsNodes) {
  auto parsed = parse("void f(int n, int *a) { for (int i = 0; i < n; ++i) "
                      "a[i] = i; }");
  const std::string dump = dumpFunction(parsed.function("f"));
  EXPECT_NE(dump.find("ForStmt"), std::string::npos);
  EXPECT_NE(dump.find("ArraySubscriptExpr"), std::string::npos);
  EXPECT_NE(dump.find("BinaryOperator"), std::string::npos);
}

TEST(ParserTest, ExprToSourceRoundTrip) {
  auto parsed = parse("int v = (1 + 2) * 3;");
  EXPECT_EQ(exprToSource(parsed.unit().globals[0]->init()), "(1 + 2) * 3");
}

TEST(ParserTest, NegativeArrayBoundRejectedGracefully) {
  auto parsed = parse("int a[-4];");
  // Extent is not representable; parser keeps a dynamic array type.
  const auto *array =
      dynamic_cast<const ArrayType *>(parsed.unit().globals[0]->type());
  ASSERT_NE(array, nullptr);
  EXPECT_FALSE(array->extent().has_value());
}

TEST(ParserTest, RecoveryAfterBadStatement) {
  auto parsed = parse("void f() { @; int ok = 1; }");
  EXPECT_FALSE(parsed.ok);
  // Parser must survive and still see the function.
  EXPECT_NE(parsed.function("f"), nullptr);
}

} // namespace
} // namespace ompdart
