#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ompdart {
namespace {

std::vector<Token> lex(const std::string &source) {
  SourceManager sourceManager("test.c", source);
  DiagnosticEngine diags;
  Lexer lexer(sourceManager, diags);
  return lexer.lexAll();
}

std::vector<TokenKind> kindsOf(const std::vector<Token> &tokens) {
  std::vector<TokenKind> kinds;
  for (const Token &token : tokens)
    kinds.push_back(token.kind);
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::Eof);
}

TEST(LexerTest, Identifiers) {
  const auto tokens = lex("alpha _beta gamma9");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "alpha");
  EXPECT_EQ(tokens[1].text, "_beta");
  EXPECT_EQ(tokens[2].text, "gamma9");
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(tokens[i].kind, TokenKind::Identifier);
}

TEST(LexerTest, KeywordsAreDistinguished) {
  const auto tokens = lex("int intx for fortune while");
  EXPECT_EQ(tokens[0].kind, TokenKind::KwInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[2].kind, TokenKind::KwFor);
  EXPECT_EQ(tokens[3].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[4].kind, TokenKind::KwWhile);
}

TEST(LexerTest, IntegerLiterals) {
  const auto tokens = lex("0 42 0x1F 100u 7L");
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(tokens[i].kind, TokenKind::IntLiteral) << i;
  EXPECT_EQ(tokens[2].text, "0x1F");
}

TEST(LexerTest, FloatLiterals) {
  const auto tokens = lex("1.0 .5 2e10 3.14f 1E-3");
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(tokens[i].kind, TokenKind::FloatLiteral) << i;
}

TEST(LexerTest, IntegerFollowedByDotIsFloat) {
  const auto tokens = lex("1. 2");
  EXPECT_EQ(tokens[0].kind, TokenKind::FloatLiteral);
  EXPECT_EQ(tokens[1].kind, TokenKind::IntLiteral);
}

TEST(LexerTest, MaximalMunchOperators) {
  const auto tokens = lex("a+++b a<<=2 x>>=1 p->q i!=j");
  const auto kinds = kindsOf(tokens);
  // a ++ + b
  EXPECT_EQ(kinds[1], TokenKind::PlusPlus);
  EXPECT_EQ(kinds[2], TokenKind::Plus);
  EXPECT_EQ(kinds[5], TokenKind::LessLessEqual);
  EXPECT_EQ(kinds[8], TokenKind::GreaterGreaterEqual);
  EXPECT_EQ(kinds[11], TokenKind::Arrow);
  EXPECT_EQ(kinds[14], TokenKind::ExclaimEqual);
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto tokens = lex("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, StringAndCharLiterals) {
  const auto tokens = lex("\"hi\\n\" 'x' '\\n'");
  EXPECT_EQ(tokens[0].kind, TokenKind::StringLiteral);
  EXPECT_EQ(tokens[0].text, "hi\n");
  EXPECT_EQ(tokens[1].kind, TokenKind::CharLiteral);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].text, "\n");
}

TEST(LexerTest, LineColumnTracking) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  EXPECT_EQ(tokens[1].location.line, 2u);
  EXPECT_EQ(tokens[1].location.column, 3u);
}

TEST(LexerTest, PragmaOmpIsBracketed) {
  const auto tokens = lex("#pragma omp target\nx;");
  const auto kinds = kindsOf(tokens);
  ASSERT_GE(kinds.size(), 5u);
  EXPECT_EQ(kinds[0], TokenKind::PragmaOmp);
  EXPECT_EQ(kinds[1], TokenKind::Identifier); // target
  EXPECT_EQ(kinds[2], TokenKind::PragmaEnd);
  EXPECT_EQ(kinds[3], TokenKind::Identifier); // x
}

TEST(LexerTest, PragmaLineContinuation) {
  const auto tokens =
      lex("#pragma omp target teams \\\n    distribute\ny;");
  const auto kinds = kindsOf(tokens);
  // pragma, target, teams, distribute, end, y, ;, eof
  EXPECT_EQ(kinds[0], TokenKind::PragmaOmp);
  EXPECT_EQ(tokens[1].text, "target");
  EXPECT_EQ(tokens[2].text, "teams");
  EXPECT_EQ(tokens[3].text, "distribute");
  EXPECT_EQ(kinds[4], TokenKind::PragmaEnd);
}

TEST(LexerTest, NonOmpPragmaSkipped) {
  const auto tokens = lex("#pragma once\nint a;");
  EXPECT_EQ(tokens[0].kind, TokenKind::KwInt);
}

TEST(LexerTest, IncludeLinesSkipped) {
  const auto tokens = lex("#include <stdio.h>\n#include \"x.h\"\nint a;");
  EXPECT_EQ(tokens[0].kind, TokenKind::KwInt);
}

TEST(LexerTest, ObjectMacroExpansion) {
  const auto tokens = lex("#define N 100\nint a[N];");
  // int a [ 100 ] ;
  EXPECT_EQ(tokens[3].kind, TokenKind::IntLiteral);
  EXPECT_EQ(tokens[3].text, "100");
}

TEST(LexerTest, MacroExpansionKeepsUseSiteLocation) {
  const std::string source = "#define N 100\nint a[N];";
  SourceManager sourceManager("test.c", source);
  DiagnosticEngine diags;
  Lexer lexer(sourceManager, diags);
  const auto tokens = lexer.lexAll();
  // The `100` token must point at the `N` use, line 2.
  EXPECT_EQ(tokens[3].location.line, 2u);
}

TEST(LexerTest, MacroExpandsToExpression) {
  const auto tokens = lex("#define SZ (4 * 256)\nint a[SZ];");
  // int a [ ( 4 * 256 ) ] ;
  EXPECT_EQ(tokens[3].kind, TokenKind::LParen);
  EXPECT_EQ(tokens[4].text, "4");
  EXPECT_EQ(tokens[5].kind, TokenKind::Star);
  EXPECT_EQ(tokens[6].text, "256");
}

TEST(LexerTest, NestedMacroExpansion) {
  const auto tokens = lex("#define A 7\n#define B A\nint x = B;");
  EXPECT_EQ(tokens[3].kind, TokenKind::IntLiteral);
  EXPECT_EQ(tokens[3].text, "7");
}

TEST(LexerTest, SelfReferentialMacroTerminates) {
  SourceManager sourceManager("test.c", "#define X X\nint a = X;");
  DiagnosticEngine diags;
  Lexer lexer(sourceManager, diags);
  const auto tokens = lexer.lexAll();
  EXPECT_FALSE(tokens.empty());
  EXPECT_TRUE(diags.hasErrors()); // expansion-depth error reported
}

TEST(LexerTest, FunctionLikeMacroIgnoredWithWarning) {
  SourceManager sourceManager("test.c", "#define SQ(x) ((x)*(x))\nint a;");
  DiagnosticEngine diags;
  Lexer lexer(sourceManager, diags);
  const auto tokens = lexer.lexAll();
  EXPECT_EQ(tokens[0].kind, TokenKind::KwInt);
  ASSERT_FALSE(diags.diagnostics().empty());
  EXPECT_EQ(diags.diagnostics()[0].severity, Severity::Warning);
}

TEST(LexerTest, UnterminatedStringReportsError) {
  SourceManager sourceManager("test.c", "\"abc");
  DiagnosticEngine diags;
  Lexer lexer(sourceManager, diags);
  (void)lexer.lexAll();
  EXPECT_TRUE(diags.hasErrors());
}

TEST(LexerTest, TokenEndOffsetsCoverSpelling) {
  const std::string source = "alpha beta";
  SourceManager sourceManager("test.c", source);
  DiagnosticEngine diags;
  Lexer lexer(sourceManager, diags);
  const auto tokens = lexer.lexAll();
  EXPECT_EQ(tokens[0].location.offset, 0u);
  EXPECT_EQ(tokens[0].endOffset, 5u);
  EXPECT_EQ(tokens[1].location.offset, 6u);
  EXPECT_EQ(tokens[1].endOffset, 10u);
}

} // namespace
} // namespace ompdart
