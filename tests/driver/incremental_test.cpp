// IncrementalProject coverage: the long-lived replanner must produce
// byte-identical outputs to a one-shot ProjectSession, reuse everything on
// an unchanged request (zero pipeline stage runs), replan exactly the
// edited TU on a comment edit, replan exactly {edited TU, importers} on a
// summary-visible fact edit, and fall back to a full plan after
// invalidate(). Uses the generator's scale projects as the fixture: a flat
// call graph where main imports every stage's summary.
#include "driver/incremental.hpp"

#include "driver/project.hpp"
#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace ompdart {
namespace {

constexpr std::uint64_t kSeed = 11;
constexpr unsigned kTuCount = 6;

std::vector<ProjectTu> scaleTus(std::uint64_t seed, unsigned tuCount) {
  const gen::GeneratedProgram program =
      gen::generateScaleProject(seed, tuCount);
  std::vector<ProjectTu> tus;
  tus.reserve(program.tus.size());
  for (const gen::GeneratedTu &tu : program.tus)
    tus.push_back(ProjectTu{tu.name, tu.name, tu.source});
  return tus;
}

PipelineConfig interprocConfig() {
  PipelineConfig config;
  config.planner.interprocedural = true;
  return config;
}

/// Outputs of a fresh one-shot ProjectSession over the same TUs — the
/// ground truth every replan must reproduce byte-for-byte.
std::map<std::string, std::string>
oneShotOutputs(const std::vector<ProjectTu> &tus) {
  ProjectManifest manifest;
  manifest.name = "scale";
  manifest.tus = tus;
  ProjectSession session(std::move(manifest), interprocConfig());
  EXPECT_TRUE(session.run());
  std::map<std::string, std::string> outputs;
  for (const ProjectItem &item : session.items())
    outputs[item.name] = item.output;
  return outputs;
}

unsigned totalStageRuns(const IncrementalResult &result) {
  unsigned total = 0;
  for (unsigned runs : result.stageRuns)
    total += runs;
  return total;
}

std::vector<std::string> replannedNames(const IncrementalResult &result) {
  std::vector<std::string> names;
  for (const IncrementalTuResult &tu : result.tus)
    if (tu.replanned())
      names.push_back(tu.name);
  std::sort(names.begin(), names.end());
  return names;
}

TEST(IncrementalProjectTest, InitialReplanMatchesOneShotProjectSession) {
  const std::vector<ProjectTu> tus = scaleTus(kSeed, kTuCount);
  const std::map<std::string, std::string> expected = oneShotOutputs(tus);

  IncrementalProject project(interprocConfig());
  const IncrementalResult result = project.replan(tus);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.tus.size(), tus.size());
  EXPECT_EQ(result.tusReplanned, kTuCount);
  EXPECT_EQ(result.tusReused, 0u);
  EXPECT_EQ(project.heldTus(), tus.size());
  for (const IncrementalTuResult &tu : result.tus) {
    EXPECT_EQ(tu.reason, ReplanReason::Initial) << tu.name;
    ASSERT_TRUE(expected.count(tu.name)) << tu.name;
    EXPECT_EQ(tu.item.output, expected.at(tu.name)) << tu.name;
  }
}

TEST(IncrementalProjectTest, UnchangedRequestReusesEverything) {
  const std::vector<ProjectTu> tus = scaleTus(kSeed, kTuCount);
  IncrementalProject project(interprocConfig());
  const IncrementalResult cold = project.replan(tus);
  ASSERT_TRUE(cold.success);

  const IncrementalResult warm = project.replan(tus);
  ASSERT_TRUE(warm.success);
  EXPECT_EQ(warm.tusReplanned, 0u);
  EXPECT_EQ(warm.tusReused, kTuCount);
  EXPECT_EQ(warm.summariesExtracted, 0u);
  EXPECT_EQ(warm.summariesReused, kTuCount);
  // The observable proof the replan was incremental: zero pipeline stage
  // executions anywhere.
  EXPECT_EQ(totalStageRuns(warm), 0u);
  for (const IncrementalTuResult &tu : warm.tus) {
    EXPECT_EQ(tu.reason, ReplanReason::Reused) << tu.name;
    EXPECT_TRUE(tu.summaryReused) << tu.name;
    const IncrementalTuResult *coldTu = cold.find(tu.name);
    ASSERT_NE(coldTu, nullptr);
    EXPECT_EQ(tu.item.output, coldTu->item.output) << tu.name;
  }
}

TEST(IncrementalProjectTest, CommentEditReplansOnlyTheEditedTu) {
  std::vector<ProjectTu> tus = scaleTus(kSeed, kTuCount);
  IncrementalProject project(interprocConfig());
  ASSERT_TRUE(project.replan(tus).success);

  // A comment changes the source hash but not the summary, so the import
  // edge into main stays quiet.
  const unsigned editIndex = 2;
  tus[editIndex].source += "/* touched */\n";
  const IncrementalResult result = project.replan(tus);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.tusReplanned, 1u);
  EXPECT_EQ(result.tusReused, kTuCount - 1);
  EXPECT_EQ(replannedNames(result),
            std::vector<std::string>{tus[editIndex].name});
  const IncrementalTuResult *edited = result.find(tus[editIndex].name);
  ASSERT_NE(edited, nullptr);
  EXPECT_EQ(edited->reason, ReplanReason::SourceChanged);

  // The replanned output still matches a fresh one-shot over the edited
  // set.
  const std::map<std::string, std::string> expected = oneShotOutputs(tus);
  for (const IncrementalTuResult &tu : result.tus)
    EXPECT_EQ(tu.item.output, expected.at(tu.name)) << tu.name;
}

TEST(IncrementalProjectTest, FactEditReplansEditedTuAndItsImporters) {
  std::vector<ProjectTu> tus = scaleTus(kSeed, kTuCount);
  IncrementalProject project(interprocConfig());
  ASSERT_TRUE(project.replan(tus).success);

  // Odd variant flips the edited stage's kernel access effects — a
  // summary-visible fact — so main (which imports every stage summary)
  // must replan too, and nothing else.
  const unsigned editIndex = 3;
  const gen::GeneratedTu edited =
      gen::generateScaleTu(kSeed, editIndex, kTuCount, /*variant=*/1);
  ASSERT_NE(edited.source, tus[editIndex].source);
  tus[editIndex].source = edited.source;

  const IncrementalResult result = project.replan(tus);
  ASSERT_TRUE(result.success);
  std::vector<std::string> expectNames{tus[0].name, tus[editIndex].name};
  std::sort(expectNames.begin(), expectNames.end());
  EXPECT_EQ(replannedNames(result), expectNames);
  EXPECT_EQ(result.tusReplanned, 2u);
  EXPECT_EQ(result.tusReused, kTuCount - 2);
  // Only the edited TU's summary was re-extracted; main's source did not
  // change.
  EXPECT_EQ(result.summariesExtracted, 1u);
  EXPECT_EQ(result.find(tus[editIndex].name)->reason,
            ReplanReason::SourceChanged);
  EXPECT_EQ(result.find(tus[0].name)->reason, ReplanReason::ImportsChanged);

  const std::map<std::string, std::string> expected = oneShotOutputs(tus);
  for (const IncrementalTuResult &tu : result.tus)
    EXPECT_EQ(tu.item.output, expected.at(tu.name)) << tu.name;
}

TEST(IncrementalProjectTest, InvalidateForcesAFullReplan) {
  const std::vector<ProjectTu> tus = scaleTus(kSeed, kTuCount);
  IncrementalProject project(interprocConfig());
  ASSERT_TRUE(project.replan(tus).success);
  ASSERT_EQ(project.heldTus(), tus.size());

  project.invalidate();
  EXPECT_EQ(project.heldTus(), 0u);
  const IncrementalResult result = project.replan(tus);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.tusReplanned, kTuCount);
  for (const IncrementalTuResult &tu : result.tus)
    EXPECT_EQ(tu.reason, ReplanReason::Initial) << tu.name;
}

TEST(IncrementalProjectTest, DroppedAndAddedTusAreHandledByName) {
  std::vector<ProjectTu> tus = scaleTus(kSeed, kTuCount);
  IncrementalProject project(interprocConfig());
  ASSERT_TRUE(project.replan(tus).success);

  // Shrink the project by one stage: the dropped TU leaves held state,
  // main replans because its imports lost that stage's summary.
  std::vector<ProjectTu> smaller = scaleTus(kSeed, kTuCount - 1);
  const IncrementalResult result = project.replan(smaller);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(project.heldTus(), smaller.size());
  const IncrementalTuResult *mainTu = result.find(smaller[0].name);
  ASSERT_NE(mainTu, nullptr);
  // Main's own source names one fewer stage, so it is a source edit.
  EXPECT_EQ(mainTu->reason, ReplanReason::SourceChanged);

  const std::map<std::string, std::string> expected =
      oneShotOutputs(smaller);
  for (const IncrementalTuResult &tu : result.tus)
    EXPECT_EQ(tu.item.output, expected.at(tu.name)) << tu.name;
}

TEST(IncrementalProjectTest, WorkerPoolMatchesSequentialOutputs) {
  const std::vector<ProjectTu> tus = scaleTus(kSeed + 1, kTuCount + 2);

  IncrementalProject sequential(interprocConfig());
  const IncrementalResult seqResult = sequential.replan(tus);
  ASSERT_TRUE(seqResult.success);

  IncrementalProject::Options options;
  options.threads = 4;
  IncrementalProject threaded(interprocConfig(), options);
  const IncrementalResult thrResult = threaded.replan(tus);
  ASSERT_TRUE(thrResult.success);

  ASSERT_EQ(thrResult.tus.size(), seqResult.tus.size());
  for (const IncrementalTuResult &tu : thrResult.tus) {
    const IncrementalTuResult *seqTu = seqResult.find(tu.name);
    ASSERT_NE(seqTu, nullptr);
    EXPECT_EQ(tu.item.output, seqTu->item.output) << tu.name;
  }
}

} // namespace
} // namespace ompdart
