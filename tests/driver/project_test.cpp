// ProjectSession tests: single-file golden equivalence (a one-TU project
// must emit byte-identical sources to the plain Session — the Project
// layer's compatibility pin), whole-program pessimism removal on the
// multi-TU xsbench split, manifest loading, batch project mode, and the
// imports-keyed incremental cache.
#include "driver/project.hpp"

#include "driver/batch.hpp"
#include "exp/experiment.hpp"
#include "interp/interp.hpp"
#include "suite/benchmarks.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>

namespace ompdart {
namespace {

namespace fs = std::filesystem;

ProjectManifest xsbenchManifest() {
  const suite::ProjectBenchmarkDef &def = suite::xsbenchProject();
  ProjectManifest manifest;
  manifest.name = def.name;
  for (const auto &tu : def.tus)
    manifest.tus.push_back({tu.name, tu.name, tu.source});
  return manifest;
}

fs::path freshDir(const char *tag) {
  std::random_device rd;
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("ompdart-project-") + tag + "-" + std::to_string(rd()));
  fs::remove_all(dir);
  return dir;
}

// Acceptance pin: every suite benchmark routed through a one-TU project
// produces a byte-identical emitted source and an identical IR to the
// plain single-file Session.
TEST(ProjectGoldenTest, SingleFileProjectMatchesSessionByteForByte) {
  for (const auto &def : suite::allBenchmarks()) {
    PipelineConfig config;
    Session solo(def.name + ".c", def.unoptimized, config);
    solo.run();

    ProjectManifest manifest;
    manifest.name = def.name;
    manifest.tus.push_back(
        {def.name + ".c", def.name + ".c", def.unoptimized});
    ProjectSession project(std::move(manifest), config);
    ASSERT_TRUE(project.run()) << def.name;
    Session *viaProject = project.sessionFor(def.name + ".c");
    ASSERT_NE(viaProject, nullptr) << def.name;
    EXPECT_EQ(viaProject->rewrite(), solo.rewrite()) << def.name;
    EXPECT_EQ(viaProject->ir(), solo.ir()) << def.name;
    EXPECT_EQ(viaProject->report().diagnostics,
              solo.report().diagnostics)
        << def.name;
  }
}

TEST(ProjectSessionTest, MultiTuImportsRemovePessimismAndReconcile) {
  const suite::ProjectBenchmarkDef &def = suite::xsbenchProject();
  PipelineConfig config;
  config.includeOutputInReport = false;
  ProjectSession project(xsbenchManifest(), config);
  ASSERT_TRUE(project.run());
  EXPECT_TRUE(project.linkDiagnostics().empty());

  // Zero isExternal pessimism for in-project callees.
  for (const auto &tu : def.tus) {
    Session *session = project.sessionFor(tu.name);
    ASSERT_NE(session, nullptr) << tu.name;
    for (const auto &[fn, summary] : session->interproc().summaries) {
      if (fn->isDefined())
        continue;
      auto definedIt = project.link().definedIn.find(fn->name());
      if (definedIt == project.link().definedIn.end())
        continue;
      EXPECT_FALSE(summary.isExternal) << tu.name << ": " << fn->name();
      EXPECT_TRUE(summary.imported) << tu.name << ": " << fn->name();
    }
  }

  // Cross-TU execution counts feed the estimator.
  EXPECT_EQ(project.link().executions.at("run_batches"), 1u);
  EXPECT_EQ(project.link().executions.at("accumulate_stats"), 8u);

  // Reverse topological schedule: support (leaf) before kernel, kernel
  // before main.
  const auto &schedule = project.scheduleOrder();
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0], "xsbench_support.c");
  EXPECT_EQ(schedule[1], "xsbench_kernel.c");
  EXPECT_EQ(schedule[2], "xsbench_main.c");

  // Predicted-vs-simulated reconciliation within the suite-wide gate.
  std::uint64_t predicted = 0;
  std::string plannedCombined;
  for (const auto &tu : def.tus) {
    Session *session = project.sessionFor(tu.name);
    predicted += exp::predictedTransferBytes(session->ir());
    plannedCombined += session->rewrite();
  }
  ASSERT_GT(predicted, 0u);
  const interp::RunResult plannedRun = interp::runProgram(plannedCombined);
  const interp::RunResult unoptRun = interp::runProgram(def.combined());
  ASSERT_TRUE(plannedRun.ok) << plannedRun.error;
  ASSERT_TRUE(unoptRun.ok) << unoptRun.error;
  EXPECT_EQ(plannedRun.output, unoptRun.output);
  const std::uint64_t simulated =
      plannedRun.ledger.bytes(sim::TransferDir::HtoD) +
      plannedRun.ledger.bytes(sim::TransferDir::DtoH);
  const double ratio =
      static_cast<double>(simulated) / static_cast<double>(predicted);
  EXPECT_GE(ratio, 0.98);
  EXPECT_LE(ratio, 1.02);

  // The per-TU pessimistic baseline moves strictly more bytes: worst-case
  // treatment of accumulate_stats re-syncs `results` to the device every
  // batch iteration.
  std::string pessimisticCombined;
  for (const auto &tu : def.tus) {
    Session solo(tu.name, tu.source, config);
    solo.run();
    pessimisticCombined += solo.rewrite();
  }
  const interp::RunResult pessimisticRun =
      interp::runProgram(pessimisticCombined);
  ASSERT_TRUE(pessimisticRun.ok) << pessimisticRun.error;
  const std::uint64_t pessimisticBytes =
      pessimisticRun.ledger.bytes(sim::TransferDir::HtoD) +
      pessimisticRun.ledger.bytes(sim::TransferDir::DtoH);
  EXPECT_GT(pessimisticBytes, simulated);
}

TEST(ProjectSessionTest, ManifestLoadsRelativeTuPaths) {
  const fs::path dir = freshDir("manifest");
  fs::create_directories(dir);
  {
    std::ofstream a(dir / "alpha.c");
    a << "double data[16];\nvoid touch();\nint main() { touch(); return 0; }\n";
    std::ofstream b(dir / "beta.c");
    b << "extern double data[16];\nvoid touch() { data[0] = 1.0; }\n";
    std::ofstream m(dir / "proj.json");
    m << R"({ "name": "two", "tus": ["alpha.c", {"file": "beta.c", "name": "b"}] })";
  }
  std::string error;
  const auto manifest =
      ProjectManifest::fromJsonFile((dir / "proj.json").string(), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_EQ(manifest->name, "two");
  ASSERT_EQ(manifest->tus.size(), 2u);
  EXPECT_EQ(manifest->tus[0].name, "alpha.c");
  EXPECT_EQ(manifest->tus[1].name, "b");
  EXPECT_NE(manifest->tus[0].source.find("int main"), std::string::npos);
  EXPECT_NE(manifest->tus[1].source.find("void touch"), std::string::npos);

  EXPECT_FALSE(
      ProjectManifest::fromJsonFile((dir / "missing.json").string()));
  fs::remove_all(dir);
}

TEST(BatchProjectTest, ProjectModeSchedulesAndSucceeds) {
  const suite::ProjectBenchmarkDef &def = suite::xsbenchProject();
  std::vector<BatchJob> jobs;
  for (const auto &tu : def.tus)
    jobs.push_back({tu.name, tu.name, tu.source});

  BatchDriver::Options options;
  options.config.includeOutputInReport = false;
  BatchDriver driver(options);
  const BatchResult result = driver.runProject(jobs);
  EXPECT_EQ(result.stats.succeeded, result.stats.jobs);
  ASSERT_EQ(result.items.size(), 3u);
  // Input order preserved in items, schedule recorded separately.
  EXPECT_EQ(result.items[0].name, "xsbench_main.c");
  ASSERT_EQ(result.projectSchedule.size(), 3u);
  EXPECT_EQ(result.projectSchedule.front(), "xsbench_support.c");
  EXPECT_EQ(result.projectSchedule.back(), "xsbench_main.c");
  // The kernel TU emitted a transformed source.
  const BatchItem *kernel = result.find("xsbench_kernel.c");
  ASSERT_NE(kernel, nullptr);
  EXPECT_NE(kernel->output.find("#pragma omp target data"),
            std::string::npos);
}

// A repeated runProject over a shared cache must not re-extract summaries
// for TUs whose source hash is unchanged: the second pass serves every
// summary from the cache (the in-memory memo — no parse, no disk), and an
// edit to one TU re-extracts exactly one.
TEST(BatchProjectTest, RepeatRunProjectSkipsSummaryReExtraction) {
  const suite::ProjectBenchmarkDef &def = suite::xsbenchProject();
  std::vector<BatchJob> jobs;
  for (const auto &tu : def.tus)
    jobs.push_back({tu.name, tu.name, tu.source});
  const unsigned tuCount = static_cast<unsigned>(jobs.size());

  const fs::path cacheDir = freshDir("runproject-cache");
  cache::PlanCache shared(cacheDir.string(), cache::CacheMode::ReadWrite);
  BatchDriver::Options options;
  options.config.planCache = &shared;
  options.config.includeOutputInReport = false;
  BatchDriver driver(options);

  const BatchResult cold = driver.runProject(jobs);
  EXPECT_EQ(cold.stats.succeeded, cold.stats.jobs);
  const cache::CacheStats afterCold = shared.stats();
  EXPECT_EQ(afterCold.summaryMisses, tuCount);
  EXPECT_EQ(afterCold.summaryStores, tuCount);

  const BatchResult warm = driver.runProject(jobs);
  const cache::CacheStats afterWarm = shared.stats();
  // Zero re-extractions: no new misses, every lookup a (memo) hit.
  EXPECT_EQ(afterWarm.summaryMisses, afterCold.summaryMisses);
  EXPECT_EQ(afterWarm.summaryHits - afterCold.summaryHits, tuCount);
  EXPECT_GE(afterWarm.summaryMemoHits, tuCount);
  ASSERT_EQ(warm.items.size(), cold.items.size());
  for (std::size_t i = 0; i < warm.items.size(); ++i)
    EXPECT_EQ(warm.items[i].output, cold.items[i].output)
        << cold.items[i].name;

  // Edit one TU: exactly one summary re-extracts, the rest stay served.
  jobs[1].source = "// one-TU edit\n" + jobs[1].source;
  const BatchResult edited = driver.runProject(jobs);
  EXPECT_EQ(edited.stats.succeeded, edited.stats.jobs);
  const cache::CacheStats afterEdit = shared.stats();
  EXPECT_EQ(afterEdit.summaryMisses - afterWarm.summaryMisses, 1u);
  EXPECT_EQ(afterEdit.summaryHits - afterWarm.summaryHits, tuCount - 1);
}

// Incremental whole-program builds: a warm project run is 100% plan-cache
// hits; editing one TU's *comments* re-extracts only that TU's summary
// (its source hash changed) while every TU re-hits its cached plan (the
// imports fingerprints are unchanged); editing a TU in a way that changes
// its exported summary re-plans its dependents.
TEST(ProjectCacheTest, ImportsKeyedIncrementalRePlanning) {
  const fs::path cacheDir = freshDir("cache");
  PipelineConfig config;
  config.cacheDir = cacheDir.string();
  config.cacheMode = cache::CacheMode::ReadWrite;
  config.includeOutputInReport = false;

  // Cold run: everything misses and stores.
  {
    ProjectSession cold(xsbenchManifest(), config);
    ASSERT_TRUE(cold.run());
    for (const auto &item : cold.items()) {
      EXPECT_EQ(item.cacheStatus, Session::PlanCacheStatus::Miss)
          << item.name;
      EXPECT_FALSE(item.summaryFromCache) << item.name;
    }
  }

  // Warm run: summaries and plans all hit; parse/plan stages never run.
  {
    ProjectSession warm(xsbenchManifest(), config);
    ASSERT_TRUE(warm.run());
    for (const auto &item : warm.items()) {
      EXPECT_EQ(item.cacheStatus, Session::PlanCacheStatus::Hit)
          << item.name;
      EXPECT_TRUE(item.summaryFromCache) << item.name;
    }
    Session *kernel = warm.sessionFor("xsbench_kernel.c");
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel->stageRuns(Stage::Parse), 0u);
    EXPECT_EQ(kernel->stageRuns(Stage::Plan), 0u);
  }

  // Comment-only edit of the support TU: its source hash changes (summary
  // re-extracted, plan re-planned) but its exported facts do not, so the
  // other TUs' imports fingerprints are unchanged and their plans re-hit.
  {
    ProjectManifest manifest = xsbenchManifest();
    for (auto &tu : manifest.tus)
      if (tu.name == "xsbench_support.c")
        tu.source = "// incremental-build comment edit\n" + tu.source;
    ProjectSession edited(std::move(manifest), config);
    ASSERT_TRUE(edited.run());
    for (const auto &item : edited.items()) {
      if (item.name == "xsbench_support.c") {
        EXPECT_EQ(item.cacheStatus, Session::PlanCacheStatus::Miss)
            << "edited TU must re-plan";
        EXPECT_FALSE(item.summaryFromCache);
      } else {
        EXPECT_EQ(item.cacheStatus, Session::PlanCacheStatus::Hit)
            << item.name << " must stay warm after a facts-neutral edit";
        EXPECT_TRUE(item.summaryFromCache) << item.name;
      }
    }
  }

  // Comment edit of the KERNEL TU — the one holding cross-TU call sites:
  // every call edge's line shifts, but lines are scrubbed from the facts
  // fingerprints, so the other TUs' imports are unchanged and stay warm.
  {
    ProjectManifest manifest = xsbenchManifest();
    for (auto &tu : manifest.tus)
      if (tu.name == "xsbench_kernel.c")
        tu.source = "// line-shifting comment edit\n" + tu.source;
    ProjectSession edited(std::move(manifest), config);
    ASSERT_TRUE(edited.run());
    for (const auto &item : edited.items()) {
      if (item.name == "xsbench_kernel.c")
        EXPECT_EQ(item.cacheStatus, Session::PlanCacheStatus::Miss);
      else
        EXPECT_EQ(item.cacheStatus, Session::PlanCacheStatus::Hit)
            << item.name << " must survive a line-shifting edit elsewhere";
    }
  }

  // Semantic edit of the support TU: accumulate_stats now *writes* its
  // parameter, so the kernel TU's imported summary changes and its plan
  // must re-plan; the main TU's imports cover run_batches/init_tables
  // whose closed summaries absorb the new write, so it re-plans too.
  {
    ProjectManifest manifest = xsbenchManifest();
    for (auto &tu : manifest.tus)
      if (tu.name == "xsbench_support.c") {
        const std::string needle = "checksum += res[l];";
        const auto at = tu.source.find(needle);
        ASSERT_NE(at, std::string::npos);
        tu.source.replace(at, needle.size(),
                          "checksum += res[l]; res[l] = 0.0;");
      }
    ProjectSession edited(std::move(manifest), config);
    ASSERT_TRUE(edited.run());
    const ProjectItem *kernelItem = nullptr;
    for (const auto &item : edited.items())
      if (item.name == "xsbench_kernel.c")
        kernelItem = &item;
    ASSERT_NE(kernelItem, nullptr);
    EXPECT_EQ(kernelItem->cacheStatus, Session::PlanCacheStatus::Miss)
        << "dependent TU must re-plan when its imports change";
    // And the re-planned kernel TU now re-syncs results to the device
    // after each (now-writing) accumulate_stats call.
    Session *kernel = edited.sessionFor("xsbench_kernel.c");
    ASSERT_NE(kernel, nullptr);
    bool hasUpdateTo = false;
    for (const auto &region : kernel->ir().regions)
      for (const auto &update : region.updates)
        hasUpdateTo = hasUpdateTo ||
                      (update.direction == ir::UpdateDirection::To &&
                       update.item.rfind("results", 0) == 0);
    EXPECT_TRUE(hasUpdateTo);
  }

  fs::remove_all(cacheDir);
}

} // namespace
} // namespace ompdart
