// BatchDriver tests: concurrent runs must produce exactly the output of
// sequential single-Session runs, in input order, with consistent
// aggregate statistics and deterministic diagnostics.
#include "driver/batch.hpp"
#include "driver/tool.hpp"
#include "suite/benchmarks.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

std::vector<BatchJob> suiteJobs(std::size_t count) {
  std::vector<BatchJob> jobs;
  for (const auto &def : suite::allBenchmarks()) {
    if (jobs.size() >= count)
      break;
    jobs.push_back({def.name, def.name + ".c", def.unoptimized});
  }
  return jobs;
}

TEST(BatchDriverTest, ConcurrentMatchesSequentialOnEightSuitePrograms) {
  const std::vector<BatchJob> jobs = suiteJobs(8);
  ASSERT_EQ(jobs.size(), 8u);

  BatchDriver::Options sequentialOptions;
  sequentialOptions.threads = 1;
  const BatchResult sequential = BatchDriver(sequentialOptions).run(jobs);

  BatchDriver::Options concurrentOptions;
  concurrentOptions.threads = 4;
  const BatchResult concurrent = BatchDriver(concurrentOptions).run(jobs);

  ASSERT_EQ(sequential.items.size(), jobs.size());
  ASSERT_EQ(concurrent.items.size(), jobs.size());
  EXPECT_EQ(concurrent.stats.threads, 4u);
  EXPECT_EQ(sequential.stats.threads, 1u);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Input order is preserved regardless of scheduling.
    EXPECT_EQ(concurrent.items[i].name, jobs[i].name);
    EXPECT_TRUE(concurrent.items[i].success) << jobs[i].name;
    // Concurrency must not change any artifact.
    EXPECT_EQ(concurrent.items[i].output, sequential.items[i].output)
        << jobs[i].name;
    EXPECT_EQ(concurrent.items[i].report.plan,
              sequential.items[i].report.plan)
        << jobs[i].name;
    EXPECT_EQ(concurrent.items[i].report.metrics,
              sequential.items[i].report.metrics)
        << jobs[i].name;
    EXPECT_EQ(concurrent.items[i].report.diagnostics,
              sequential.items[i].report.diagnostics)
        << jobs[i].name;
  }
}

TEST(BatchDriverTest, MatchesTheCompatShim) {
  const std::vector<BatchJob> jobs = suiteJobs(8);
  const BatchResult batch = BatchDriver().run(jobs);
  for (const BatchJob &job : jobs) {
    const BatchItem *item = batch.find(job.name);
    ASSERT_NE(item, nullptr) << job.name;
    const ToolResult shim = runOmpDart(job.source, {}, job.fileName);
    EXPECT_EQ(item->output, shim.output) << job.name;
    EXPECT_EQ(item->success, shim.success) << job.name;
  }
}

TEST(BatchDriverTest, AggregateStatsAreConsistent) {
  const std::vector<BatchJob> jobs = suiteJobs(8);
  const BatchResult result = BatchDriver().run(jobs);
  EXPECT_EQ(result.stats.jobs, 8u);
  EXPECT_EQ(result.stats.succeeded, 8u);
  EXPECT_EQ(result.stats.failed, 0u);
  EXPECT_GT(result.stats.wallSeconds, 0.0);
  EXPECT_GT(result.stats.cpuSeconds, 0.0);
  EXPECT_GT(result.stats.speedup(), 0.0);

  double stageSum = 0.0;
  for (const Stage stage : allStages())
    stageSum += result.stats.stageSeconds[static_cast<unsigned>(stage)];
  EXPECT_NEAR(stageSum, result.stats.cpuSeconds, 1e-9);

  const json::Value statsJson = result.stats.toJson();
  EXPECT_EQ(statsJson.uintOr("jobs"), 8u);
  EXPECT_TRUE(statsJson.find("stageSeconds") != nullptr);
}

TEST(BatchDriverTest, StopAfterAppliesToEverySession) {
  BatchDriver::Options options;
  options.threads = 2;
  options.config.stopAfter = Stage::Plan;
  const BatchResult result = BatchDriver(options).run(suiteJobs(4));
  for (const BatchItem &item : result.items) {
    EXPECT_TRUE(item.success) << item.name;
    EXPECT_TRUE(item.output.empty()) << item.name;
    EXPECT_EQ(item.report.stoppedAfter, "plan") << item.name;
    EXPECT_FALSE(item.report.plan.regions.empty()) << item.name;
  }
}

TEST(BatchDriverTest, FailuresAreIsolatedPerJob) {
  std::vector<BatchJob> jobs = suiteJobs(2);
  jobs.insert(jobs.begin() + 1, BatchJob{"broken", "broken.c", "void f( {"});
  const BatchResult result = BatchDriver().run(jobs);
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_TRUE(result.items[0].success);
  EXPECT_FALSE(result.items[1].success);
  EXPECT_TRUE(result.items[1].report.hasErrors());
  EXPECT_TRUE(result.items[2].success);
  EXPECT_EQ(result.stats.succeeded, 2u);
  EXPECT_EQ(result.stats.failed, 1u);
}

TEST(BatchDriverTest, EmptyBatchIsANoOp) {
  const BatchResult result = BatchDriver().run({});
  EXPECT_TRUE(result.items.empty());
  EXPECT_EQ(result.stats.jobs, 0u);
  EXPECT_EQ(result.stats.wallSeconds, 0.0);
}

} // namespace
} // namespace ompdart
