// Tests for the staged Session/PipelineConfig API: lazy stage computation,
// artifact caching (a second access does no re-analysis), --stop-after
// semantics, report construction, and compat-shim equivalence with the
// legacy one-call interface.
#include "driver/pipeline.hpp"
#include "driver/tool.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

/// The examples/quickstart.cpp input program.
const char *const kQuickstartSource =
    R"(void saxpy(double *x, double *y, int n) {
  double a = 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; ++i) {
      y[i] = a * x[i] + y[i];
    }
  }
}
)";

const char *const kBrokenSource = "void f( {";

TEST(SessionTest, StagesAreLazy) {
  Session session("lazy.c", kQuickstartSource);
  for (const Stage stage : allStages()) {
    EXPECT_EQ(session.stageRuns(stage), 0u) << stageName(stage);
    EXPECT_EQ(session.stageSeconds(stage), 0.0) << stageName(stage);
  }

  session.parse();
  EXPECT_EQ(session.stageRuns(Stage::Parse), 1u);
  EXPECT_EQ(session.stageRuns(Stage::Cfg), 0u);
  EXPECT_EQ(session.stageRuns(Stage::Plan), 0u);
  EXPECT_EQ(session.stageRuns(Stage::Rewrite), 0u);
}

TEST(SessionTest, PlanPullsItsDependenciesOnly) {
  Session session("deps.c", kQuickstartSource);
  session.plan();
  EXPECT_EQ(session.stageRuns(Stage::Parse), 1u);
  EXPECT_EQ(session.stageRuns(Stage::Cfg), 1u);
  EXPECT_EQ(session.stageRuns(Stage::Interproc), 1u);
  EXPECT_EQ(session.stageRuns(Stage::Plan), 1u);
  // Plan does not need the rewriter or the metrics pass.
  EXPECT_EQ(session.stageRuns(Stage::Rewrite), 0u);
  EXPECT_EQ(session.stageRuns(Stage::Metrics), 0u);
}

TEST(SessionTest, SecondPlanCallDoesNoReanalysis) {
  Session session("cache.c", kQuickstartSource);
  const MappingPlan &first = session.plan();
  const MappingPlan &second = session.plan();
  // Same cached artifact, not a recomputation.
  EXPECT_EQ(&first, &second);
  for (const Stage stage :
       {Stage::Parse, Stage::Cfg, Stage::Interproc, Stage::Plan})
    EXPECT_EQ(session.stageRuns(stage), 1u) << stageName(stage);

  // The full pipeline re-uses everything the plan access already built.
  session.run();
  for (const Stage stage :
       {Stage::Parse, Stage::Cfg, Stage::Interproc, Stage::Plan})
    EXPECT_EQ(session.stageRuns(stage), 1u) << stageName(stage);
  EXPECT_EQ(session.stageRuns(Stage::Rewrite), 1u);
  EXPECT_EQ(session.stageRuns(Stage::Metrics), 1u);
}

TEST(SessionTest, RepeatedArtifactAccessesStayCached) {
  Session session("cache2.c", kQuickstartSource);
  session.run();
  const std::string &rewrittenA = session.rewrite();
  const std::string &rewrittenB = session.rewrite();
  EXPECT_EQ(&rewrittenA, &rewrittenB);
  session.metrics();
  session.cfg();
  session.interproc();
  for (const Stage stage : allStages())
    EXPECT_EQ(session.stageRuns(stage), 1u) << stageName(stage);
}

TEST(SessionTest, StopAfterPlanSkipsRewriteAndMetrics) {
  PipelineConfig config;
  config.stopAfter = Stage::Plan;
  Session session("stop.c", kQuickstartSource, config);
  EXPECT_TRUE(session.run());

  EXPECT_EQ(session.stageRuns(Stage::Parse), 1u);
  EXPECT_EQ(session.stageRuns(Stage::Plan), 1u);
  EXPECT_EQ(session.stageRuns(Stage::Rewrite), 0u);
  EXPECT_EQ(session.stageRuns(Stage::Metrics), 0u);

  const Report &report = session.report();
  EXPECT_EQ(report.stoppedAfter, "plan");
  EXPECT_TRUE(report.output.empty());
  EXPECT_EQ(report.timings.size(), 4u);
  // The plan artifact is present in the report even without a rewrite.
  ASSERT_EQ(report.plan.regions.size(), 1u);
  EXPECT_EQ(report.plan.regions.front().function, "saxpy");
  // report() must not have triggered the skipped stages.
  EXPECT_EQ(session.stageRuns(Stage::Rewrite), 0u);
  EXPECT_EQ(session.stageRuns(Stage::Metrics), 0u);
}

TEST(SessionTest, StopAfterParseRunsFrontEndOnly) {
  PipelineConfig config;
  config.stopAfter = Stage::Parse;
  Session session("stop_parse.c", kQuickstartSource, config);
  EXPECT_TRUE(session.run());
  EXPECT_EQ(session.stageRuns(Stage::Parse), 1u);
  for (const Stage stage : {Stage::Cfg, Stage::Interproc, Stage::Plan,
                            Stage::Rewrite, Stage::Metrics})
    EXPECT_EQ(session.stageRuns(stage), 0u) << stageName(stage);
  EXPECT_EQ(session.report().stoppedAfter, "parse");
}

TEST(SessionTest, ExplicitAccessOverridesStopAfter) {
  // stopAfter bounds run()/report(), not explicit artifact requests: asking
  // for rewrite() is an explicit intent to compute it.
  PipelineConfig config;
  config.stopAfter = Stage::Plan;
  Session session("explicit.c", kQuickstartSource, config);
  session.run();
  EXPECT_EQ(session.stageRuns(Stage::Rewrite), 0u);
  const std::string &output = session.rewrite();
  EXPECT_NE(output.find("#pragma omp target data"), std::string::npos);
  EXPECT_EQ(session.stageRuns(Stage::Rewrite), 1u);
  // The report now reflects the extra stage.
  EXPECT_EQ(session.report().stoppedAfter, "rewrite");
}

TEST(SessionTest, FullRunProducesReportWithAllStages) {
  Session session("full.c", kQuickstartSource);
  EXPECT_TRUE(session.run());
  const Report &report = session.report();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.fileName, "full.c");
  EXPECT_EQ(report.stoppedAfter, "metrics");
  EXPECT_EQ(report.timings.size(), kStageCount);
  for (const StageTiming &timing : report.timings) {
    EXPECT_EQ(timing.runs, 1u) << stageName(timing.stage);
    EXPECT_GE(timing.seconds, 0.0);
  }
  EXPECT_GT(report.totalSeconds, 0.0);
  EXPECT_EQ(report.metrics.kernels, 1u);
  EXPECT_FALSE(report.output.empty());
  ASSERT_EQ(report.plan.regions.size(), 1u);
  const ir::Region &region = report.plan.regions.front();
  EXPECT_EQ(region.maps.size(), 2u);
  EXPECT_EQ(region.firstprivates.size(), 2u);
}

TEST(SessionTest, ParseFailureStopsThePipeline) {
  Session session("broken.c", kBrokenSource);
  EXPECT_FALSE(session.run());
  EXPECT_FALSE(session.success());
  EXPECT_EQ(session.stageRuns(Stage::Parse), 1u);
  EXPECT_EQ(session.stageRuns(Stage::Cfg), 0u);
  EXPECT_EQ(session.stageRuns(Stage::Plan), 0u);
  EXPECT_TRUE(session.diagnostics().hasErrors());
  // rewrite() still answers (the §IV-F fallback: original text).
  EXPECT_EQ(session.rewrite(), kBrokenSource);
  const Report &report = session.report();
  EXPECT_FALSE(report.success);
  EXPECT_TRUE(report.hasErrors());
}

TEST(SessionTest, RejectsPreMappedInputByDefault) {
  const char *const preMapped = R"(int main() {
  int a[4] = {};
  #pragma omp target data map(tofrom: a)
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 4; ++i) a[i] = i;
  }
  return 0;
}
)";
  Session rejecting("pre.c", preMapped);
  EXPECT_FALSE(rejecting.run());
  EXPECT_TRUE(rejecting.diagnostics().hasErrors());

  PipelineConfig config;
  config.rejectExistingDataDirectives = false;
  Session tolerant("pre.c", preMapped, config);
  EXPECT_TRUE(tolerant.parseSucceeded());
}

TEST(SessionTest, InterprocKnobDisablesFixedPoint) {
  const char *const source = R"(
void init(int *a, int n) {
  for (int i = 0; i < n; ++i) a[i] = i;
}
int main() {
  int a[16] = {};
  init(a, 16);
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 16; ++i) a[i] *= 2;
  return 0;
}
)";
  PipelineConfig single;
  single.planner.interprocedural = false;
  Session singlePass("ip.c", source, single);
  EXPECT_TRUE(singlePass.run());
  EXPECT_EQ(singlePass.interproc().passes, 1u);

  Session fixedPoint("ip.c", source);
  EXPECT_TRUE(fixedPoint.run());
  EXPECT_GE(fixedPoint.interproc().passes, 1u);
}

// --- compat shim ---

TEST(CompatShimTest, ByteIdenticalToSessionRewriteOnQuickstart) {
  const ToolResult viaShim = runOmpDart(kQuickstartSource);
  Session session("<input>", kQuickstartSource);
  ASSERT_TRUE(session.run());
  ASSERT_TRUE(viaShim.success);
  EXPECT_EQ(viaShim.output, session.rewrite());
  EXPECT_EQ(viaShim.metrics, session.metrics());
  EXPECT_EQ(viaShim.plan.regions.size(), session.plan().regions.size());
  EXPECT_GT(viaShim.toolSeconds, 0.0);
}

TEST(CompatShimTest, FileNameThreadsThroughTheOneCallHelper) {
  // The historical asymmetry: runOmpDart(source) silently dropped the file
  // name. It now defaults to "<input>" and accepts an explicit name that
  // must produce output identical to the two-step interface.
  const ToolResult named = runOmpDart(kQuickstartSource, {}, "saxpy.c");
  const OmpDartTool tool{ToolOptions{}};
  const ToolResult viaTool = tool.run("saxpy.c", kQuickstartSource);
  EXPECT_EQ(named.output, viaTool.output);
  EXPECT_EQ(named.success, viaTool.success);
}

TEST(CompatShimTest, OptionsMapOntoPipelineConfig) {
  ToolOptions options;
  options.planner.useFirstprivate = false;
  options.rejectExistingDataDirectives = false;
  const PipelineConfig config = options.pipelineConfig();
  EXPECT_FALSE(config.planner.useFirstprivate);
  EXPECT_FALSE(config.rejectExistingDataDirectives);

  const ToolResult viaShim = runOmpDart(kQuickstartSource, options);
  Session session("<input>", kQuickstartSource, config);
  session.run();
  EXPECT_EQ(viaShim.output, session.rewrite());
  EXPECT_EQ(viaShim.output.find("firstprivate"), std::string::npos);
}

TEST(CompatShimTest, FailedRunReturnsOriginalSourceAndDiagnostics) {
  const ToolResult result = runOmpDart(kBrokenSource);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.output, kBrokenSource);
  EXPECT_TRUE(result.hasErrors());
}

} // namespace
} // namespace ompdart
