// End-to-end CLI coverage for the fuzz flags: parsing/validation of
// --fuzz / --gen-seed / --shrink, deterministic same-seed => same-corpus
// output, manifest emission under -o, and the JSON report shape. Drives
// the real ompdart_cli binary (skipped when examples were not built).
#include "support/json.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <sys/wait.h>

#ifndef OMPDART_BINARY_DIR
#define OMPDART_BINARY_DIR "."
#endif

namespace ompdart {
namespace {

namespace fs = std::filesystem;

fs::path cliPath() { return fs::path(OMPDART_BINARY_DIR) / "ompdart_cli"; }

struct CliResult {
  int exitCode = -1;
  std::string output; ///< stdout only
};

CliResult runCli(const std::string &args) {
  CliResult result;
  const std::string command =
      cliPath().string() + " " + args + " 2>/dev/null";
  FILE *pipe = popen(command.c_str(), "r");
  if (pipe == nullptr)
    return result;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0)
    result.output.append(buffer.data(), n);
  const int status = pclose(pipe);
  result.exitCode = (status >= 0 && WIFEXITED(status))
                        ? WEXITSTATUS(status)
                        : -1;
  return result;
}

class FuzzCliTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!fs::exists(cliPath()))
      GTEST_SKIP() << "ompdart_cli not built at " << cliPath();
  }
};

TEST_F(FuzzCliTest, SameSeedSameCorpusOutputByteForByte) {
  const CliResult a = runCli("--fuzz=6 --gen-seed=11");
  const CliResult b = runCli("--fuzz=6 --gen-seed=11");
  EXPECT_EQ(a.exitCode, 0);
  EXPECT_EQ(a.output, b.output);
  EXPECT_NE(a.output.find("gen-000011"), std::string::npos);
  EXPECT_NE(a.output.find("6/6 passed"), std::string::npos);
  // A different seed produces different output.
  const CliResult c = runCli("--fuzz=6 --gen-seed=12");
  EXPECT_NE(a.output, c.output);
}

TEST_F(FuzzCliTest, RejectsBadFlagCombinations) {
  EXPECT_NE(runCli("--fuzz=0").exitCode, 0);
  EXPECT_NE(runCli("--fuzz=abc").exitCode, 0);
  EXPECT_NE(runCli("--fuzz=-3").exitCode, 0);
  EXPECT_NE(runCli("--gen-seed=5").exitCode, 0);   // needs --fuzz
  EXPECT_NE(runCli("--shrink").exitCode, 0);       // needs --fuzz
  EXPECT_NE(runCli("--fuzz=2 --emit=ir").exitCode, 0);
  EXPECT_NE(runCli("--fuzz=2 /tmp/nonexistent.c").exitCode, 0);
}

TEST_F(FuzzCliTest, ShrinkFlagAcceptedWithFuzz) {
  const CliResult result = runCli("--fuzz=2 --gen-seed=3 --shrink");
  EXPECT_EQ(result.exitCode, 0); // all pass: shrink has nothing to do
}

TEST_F(FuzzCliTest, JsonReportCarriesStatsItemsAndFailures) {
  const CliResult result = runCli("--fuzz=4 --gen-seed=21 --emit=json");
  ASSERT_EQ(result.exitCode, 0);
  std::string error;
  const auto parsed = json::Value::parse(result.output, &error);
  ASSERT_TRUE(parsed.has_value()) << error << "\n" << result.output;
  const json::Value *stats = parsed->find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->uintOr("programs"), 4u);
  EXPECT_EQ(stats->uintOr("passed"), 4u);
  const json::Value *items = parsed->find("items");
  ASSERT_NE(items, nullptr);
  EXPECT_EQ(items->items().size(), 4u);
  const json::Value *failures = parsed->find("failures");
  ASSERT_NE(failures, nullptr);
  EXPECT_TRUE(failures->items().empty());
}

TEST_F(FuzzCliTest, OutputDirectoryGetsCorpusAndManifest) {
  std::random_device rd;
  const fs::path dir = fs::temp_directory_path() /
                       ("ompdart-cli-fuzz-" + std::to_string(rd()));
  fs::remove_all(dir);
  const CliResult result =
      runCli("--fuzz=3 --gen-seed=5 -o " + dir.string());
  ASSERT_EQ(result.exitCode, 0);
  ASSERT_TRUE(fs::exists(dir / "manifest.json"));
  std::ifstream in(dir / "manifest.json");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto manifest = json::Value::parse(buffer.str(), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  const json::Value *programs = manifest->find("programs");
  ASSERT_NE(programs, nullptr);
  ASSERT_EQ(programs->items().size(), 3u);
  for (const json::Value &entry : programs->items()) {
    const json::Value *files = entry.find("files");
    ASSERT_NE(files, nullptr);
    for (const json::Value &file : files->items())
      EXPECT_TRUE(fs::exists(dir / file.asString())) << file.asString();
    EXPECT_TRUE(entry.boolOr("ok"));
    EXPECT_EQ(entry.stringOr("irFingerprint").size(), 32u);
    EXPECT_EQ(entry.stringOr("sourceHash").size(), 32u);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

} // namespace
} // namespace ompdart
