// JSON report round-trip and Stage naming tests.
#include "driver/pipeline.hpp"
#include "driver/report.hpp"
#include "suite/benchmarks.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

const char *const kSaxpySource =
    R"(void saxpy(double *x, double *y, int n) {
  double a = 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; ++i) {
      y[i] = a * x[i] + y[i];
    }
  }
}
)";

TEST(StageTest, NamesRoundTrip) {
  for (const Stage stage : allStages()) {
    const std::optional<Stage> parsed = stageFromName(stageName(stage));
    ASSERT_TRUE(parsed.has_value()) << stageName(stage);
    EXPECT_EQ(*parsed, stage);
  }
  EXPECT_FALSE(stageFromName("nonsense").has_value());
  EXPECT_FALSE(stageFromName("").has_value());
}

TEST(ReportTest, JsonRoundTripOnQuickstart) {
  Session session("saxpy.c", kSaxpySource);
  ASSERT_TRUE(session.run());
  const Report &report = session.report();

  const std::string serialized = report.toJson().dump(/*pretty=*/true);
  std::string parseError;
  const std::optional<json::Value> parsed =
      json::Value::parse(serialized, &parseError);
  ASSERT_TRUE(parsed.has_value()) << parseError;

  std::string reportError;
  const std::optional<Report> restored =
      Report::fromJson(*parsed, &reportError);
  ASSERT_TRUE(restored.has_value()) << reportError;
  EXPECT_EQ(*restored, report);
}

TEST(ReportTest, JsonRoundTripOnFailedRun) {
  Session session("broken.c", "void f( {");
  session.run();
  const Report &report = session.report();
  ASSERT_FALSE(report.success);
  ASSERT_FALSE(report.diagnostics.empty());

  const std::optional<json::Value> parsed =
      json::Value::parse(report.toJson().dump());
  ASSERT_TRUE(parsed.has_value());
  const std::optional<Report> restored = Report::fromJson(*parsed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, report);
}

TEST(ReportTest, JsonRoundTripAcrossTheSuite) {
  // Every suite program's report must survive serialization exactly —
  // updates, firstprivates, multi-region plans, large byte counts.
  for (const auto &def : suite::allBenchmarks()) {
    Session session(def.name + ".c", def.unoptimized);
    ASSERT_TRUE(session.run()) << def.name;
    const Report &report = session.report();
    const std::optional<json::Value> parsed =
        json::Value::parse(report.toJson().dump(/*pretty=*/true));
    ASSERT_TRUE(parsed.has_value()) << def.name;
    const std::optional<Report> restored = Report::fromJson(*parsed);
    ASSERT_TRUE(restored.has_value()) << def.name;
    EXPECT_EQ(*restored, report) << def.name;
  }
}

TEST(ReportTest, FromJsonRejectsNonReports) {
  std::string error;
  EXPECT_FALSE(Report::fromJson(json::Value(3), &error).has_value());
  EXPECT_FALSE(error.empty());

  json::Value badStage = json::Value::object();
  json::Value timings = json::Value::array();
  json::Value entry = json::Value::object();
  entry.set("stage", "warp-drive");
  timings.push(std::move(entry));
  badStage.set("timings", std::move(timings));
  EXPECT_FALSE(Report::fromJson(badStage).has_value());
}

TEST(ReportTest, DiagnosticsAreSortedBySourceLocation) {
  // Two errors on different lines: the report must list them in source
  // order regardless of discovery order.
  const char *const twoErrors = R"(int main() {
  int a[4] = {};
  #pragma omp target data map(tofrom: a)
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 4; ++i) a[i] = i;
  }
  #pragma omp target update to(a)
  return 0;
}
)";
  Session session("two.c", twoErrors);
  session.run();
  const Report &report = session.report();
  for (std::size_t i = 1; i < report.diagnostics.size(); ++i)
    EXPECT_FALSE(diagnosticBefore(report.diagnostics[i],
                                  report.diagnostics[i - 1]));
}

TEST(ReportTest, SecondsForUnknownStageIsZero) {
  PipelineConfig config;
  config.stopAfter = Stage::Parse;
  Session session("s.c", kSaxpySource, config);
  session.run();
  const Report &report = session.report();
  EXPECT_GT(report.secondsFor(Stage::Parse), 0.0);
  EXPECT_EQ(report.secondsFor(Stage::Rewrite), 0.0);
}

} // namespace
} // namespace ompdart
