// BatchDriver::runFuzz: the fuzz batch mode must be deterministic (same
// options => same items, same verdicts), aggregate stats faithfully, share
// the driver's plan cache across oracle sessions, honor the time box, and
// shrink failures when asked.
#include "driver/batch.hpp"

#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <random>

namespace ompdart {
namespace {

namespace fs = std::filesystem;

fs::path freshDir(const char *tag) {
  std::random_device rd;
  fs::path dir = fs::temp_directory_path() /
                 (std::string("ompdart-fuzz-test-") + tag + "-" +
                  std::to_string(rd()));
  fs::remove_all(dir);
  return dir;
}

TEST(FuzzDriverTest, AllSeedsPassAndStatsAddUp) {
  BatchDriver driver;
  BatchDriver::FuzzOptions fuzz;
  fuzz.baseSeed = 50;
  fuzz.count = 25;
  const FuzzResult result = driver.runFuzz(fuzz);
  EXPECT_TRUE(result.allPassed());
  EXPECT_EQ(result.stats.programs, 25u);
  EXPECT_EQ(result.stats.ran, 25u);
  EXPECT_EQ(result.stats.passed, 25u);
  EXPECT_EQ(result.stats.failed, 0u);
  EXPECT_EQ(result.stats.skippedByTimeBox, 0u);
  ASSERT_EQ(result.items.size(), 25u);
  unsigned provable = 0;
  for (const FuzzItem &item : result.items) {
    EXPECT_TRUE(item.passed()) << item.name << ": "
                               << item.verdict.divergence();
    EXPECT_FALSE(item.verdict.irFingerprint.empty());
    if (item.provableTrips)
      ++provable;
  }
  EXPECT_EQ(result.stats.provable, provable);
  EXPECT_GT(result.stats.baselineBytes, result.stats.planBytes)
      << "plans must reduce traffic in aggregate";
}

TEST(FuzzDriverTest, DeterministicAcrossRuns) {
  BatchDriver::Options options;
  options.threads = 4; // scheduling must not leak into results
  BatchDriver driver(options);
  BatchDriver::FuzzOptions fuzz;
  fuzz.baseSeed = 200;
  fuzz.count = 16;
  const FuzzResult a = driver.runFuzz(fuzz);
  const FuzzResult b = driver.runFuzz(fuzz);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].name, b.items[i].name);
    EXPECT_EQ(a.items[i].seed, b.items[i].seed);
    EXPECT_EQ(a.items[i].verdict.ok, b.items[i].verdict.ok);
    EXPECT_EQ(a.items[i].verdict.baselineBytes,
              b.items[i].verdict.baselineBytes);
    EXPECT_EQ(a.items[i].verdict.planBytes, b.items[i].verdict.planBytes);
    EXPECT_EQ(a.items[i].verdict.irFingerprint,
              b.items[i].verdict.irFingerprint);
  }
  EXPECT_EQ(a.stats.baselineBytes, b.stats.baselineBytes);
  EXPECT_EQ(a.stats.planBytes, b.stats.planBytes);
}

TEST(FuzzDriverTest, SharedPlanCacheGoesWarmOnSecondPass) {
  const fs::path cacheDir = freshDir("cache");
  BatchDriver::Options options;
  options.config.cacheDir = cacheDir.string();
  options.config.cacheMode = cache::CacheMode::ReadWrite;
  BatchDriver driver(options);
  BatchDriver::FuzzOptions fuzz;
  fuzz.baseSeed = 300;
  fuzz.count = 10;
  const FuzzResult cold = driver.runFuzz(fuzz);
  EXPECT_EQ(cold.stats.planCacheMisses, 10u);
  EXPECT_EQ(cold.stats.planCacheHits, 0u);
  const FuzzResult warm = driver.runFuzz(fuzz);
  EXPECT_EQ(warm.stats.planCacheHits, 10u);
  EXPECT_EQ(warm.stats.planCacheMisses, 0u);
  // Cache re-hydration must not change any verdict.
  for (std::size_t i = 0; i < cold.items.size(); ++i) {
    EXPECT_EQ(cold.items[i].verdict.planBytes,
              warm.items[i].verdict.planBytes);
    EXPECT_EQ(cold.items[i].verdict.irFingerprint,
              warm.items[i].verdict.irFingerprint);
  }
  std::error_code ec;
  fs::remove_all(cacheDir, ec);
}

TEST(FuzzDriverTest, TimeBoxSkipsRemainingPrograms) {
  BatchDriver::Options options;
  options.threads = 1;
  BatchDriver driver(options);
  BatchDriver::FuzzOptions fuzz;
  fuzz.baseSeed = 1;
  fuzz.count = 8;
  fuzz.timeBoxSeconds = 1e-9; // expires before the first item starts
  const FuzzResult result = driver.runFuzz(fuzz);
  EXPECT_EQ(result.stats.ran, 0u);
  EXPECT_EQ(result.stats.skippedByTimeBox, 8u);
  EXPECT_FALSE(result.allPassed()); // nothing ran: the gate must not pass
}

TEST(FuzzDriverTest, ShrinksInjectedOracleFailure) {
  // Force a failure through the oracle by breaking the pipeline config:
  // an unknown cost model fails every session, which is reported as a
  // pipeline failure (not shrunken — shrinking needs a *runnable* failing
  // program, and the predicate rejects pipeline-dead candidates).
  BatchDriver::Options options;
  options.config.costModel = "no-such-model";
  BatchDriver driver(options);
  BatchDriver::FuzzOptions fuzz;
  fuzz.baseSeed = 1;
  fuzz.count = 2;
  fuzz.shrinkFailures = true;
  const FuzzResult result = driver.runFuzz(fuzz);
  EXPECT_EQ(result.stats.failed, 2u);
  ASSERT_EQ(result.failures.size(), 2u);
  for (const FuzzFailure &failure : result.failures) {
    EXPECT_FALSE(failure.source.empty());
    EXPECT_NE(failure.divergence.find("pipeline"), std::string::npos);
  }
}

} // namespace
} // namespace ompdart
