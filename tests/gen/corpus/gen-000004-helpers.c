extern double arr0[24];
extern double arr1[24];

void init_data() {
  srand(1004);
  for (int i = 0; i < 24; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 24; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

