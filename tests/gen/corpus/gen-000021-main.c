double arr0[48];
double arr1[48];
double arr2[40];
int iarr3[20];

void stage(double *src, double *dst, int n, double w);
void init_data();

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  for (int t = 0; t < 3; ++t) {
    acc0 = 0.0;
    #pragma omp target teams distribute parallel for reduction(+: acc0)
    for (int i = 0; i < 48; ++i) {
      acc0 += arr0[i] * 0.0312;
    }
    checksum += acc0;
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 40; ++i) {
      if (arr1[i] > 0.7000) {
        arr2[i] = arr1[i] - 0.8750;
      } else {
        arr2[i] = arr1[i] * scale + arr2[i] * 0.25;
      }
    }
    acc2 = 0.0;
    #pragma omp target teams distribute parallel for reduction(+: acc2)
    for (int i = 0; i < 48; ++i) {
      acc2 += arr1[i] * 0.1562;
    }
    checksum += acc2;
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 20; ++i) {
      iarr3[i] = iarr3[i] * 1 + i % 5;
    }
    acc1 = 0.0;
    #pragma omp target teams distribute parallel for reduction(+: acc1)
    for (int i = 0; i < 48; ++i) {
      acc1 += arr0[i] * 0.0625;
    }
    checksum += acc1;
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 40; ++i) {
    tail += arr2[i];
  }
  printf("arr2=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += iarr3[i];
  }
  printf("iarr3=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
