extern double arr0[48];
extern double arr1[12];

double mixv(double a, double b) {
  if (a > b) {
    return a - b;
  }
  return a + b * 0.5;
}

void init_data() {
  srand(1019);
  for (int i = 0; i < 48; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 12; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

