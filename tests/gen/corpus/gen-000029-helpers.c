extern double arr0[40];
extern double arr1[32];
extern double arr2[20];

double mixv(double a, double b) {
  if (a > b) {
    return a - b;
  }
  return a + b * 0.5;
}

double host_sum(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s = s + a[i];
  }
  return s;
}

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1029);
  for (int i = 0; i < 40; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 32; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 20; ++i) {
    arr2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

