double arr0[32];
double arr1[40];
double arr2[24];

void init_data();

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; ++i) {
    arr0[i] = arr0[i] * 1.3750;
  }
  for (int i = 0; i < 16; ++i) {
    arr0[i] = i * 0.25 + 2.5000;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; ++i) {
    if (arr0[i] > 0.2000) {
      arr1[i] = arr0[i] - 0.2500;
    } else {
      arr1[i] = arr0[i] * scale;
    }
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 40; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 24; ++i) {
    tail += arr2[i];
  }
  printf("arr2=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
