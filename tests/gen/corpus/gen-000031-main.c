double arr0[20];
double arr1[20];
int iarr2[40];
double cold3[48];

double host_sum(double *a, int n);
void stage(double *src, double *dst, int n, double w);
void init_data();

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  for (int t = 0; t < 2; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 20; ++i) {
      arr1[i] += arr0[i] * 0.2500;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 20; ++i) {
      arr0[i] = arr0[i] + 2.0000;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 40; ++i) {
      iarr2[i] = iarr2[i] + 4;
    }
    acc0 = 0.0;
    #pragma omp target teams distribute parallel for reduction(+: acc0)
    for (int i = 0; i < 20; ++i) {
      acc0 += arr1[i] * 0.2188;
    }
    checksum += acc0;
    for (int i = 0; i < 20; ++i) {
      checksum += arr1[i];
    }
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 40; ++i) {
    tail += iarr2[i];
  }
  printf("iarr2=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += cold3[i];
  }
  printf("cold3=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
