double arr0[40];
double arr1[32];
double arr2[20];

double mixv(double a, double b);
double host_sum(double *a, int n);
void stage(double *src, double *dst, int n, double w);
void init_data();

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    checksum += arr2[i];
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 20; ++i) {
    if (arr0[i] > 0.5000) {
      arr0[i] = arr0[i] - 0.6250;
    } else {
      arr0[i] = arr0[i] * scale + arr2[i] * 0.25;
    }
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 20; ++i) {
    if (arr2[i] > 0.4000) {
      arr2[i] = arr2[i] - 0.5000;
    } else {
      arr2[i] = arr2[i] * scale;
    }
  }
  stage(arr0, arr2, 20, scale);
  stage(arr2, arr2, 20, scale);
  checksum += host_sum(arr2, 20);
  stage(arr2, arr2, 20, scale);
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 40; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr2[i];
  }
  printf("arr2=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
