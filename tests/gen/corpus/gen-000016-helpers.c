extern double arr0[24];
extern double arr1[16];
extern double cold2[48];

double host_sum(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s = s + a[i];
  }
  return s;
}

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1016);
  for (int i = 0; i < 24; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 16; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    cold2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

