extern double arr0[16];
extern double arr1[20];

void host_fill(double *a, int n, double v) {
  for (int i = 0; i < n; ++i) {
    a[i] = v + i * 0.5;
  }
}

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1011);
  for (int i = 0; i < 16; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 20; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

