extern double arr0[32];
extern double arr1[48];
extern double cold2[48];

double mixv(double a, double b) {
  if (a > b) {
    return a - b;
  }
  return a + b * 0.5;
}

void init_data() {
  srand(1018);
  for (int i = 0; i < 32; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    cold2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

