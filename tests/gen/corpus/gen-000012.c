double arr0[20];
double arr1[32];
double cold2[32];

double mixv(double a, double b) {
  if (a > b) {
    return a - b;
  }
  return a + b * 0.5;
}

double host_sum(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s = s + a[i];
  }
  return s;
}

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1012);
  for (int i = 0; i < 20; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 32; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 32; ++i) {
    cold2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  scale = scale + 0.0625;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 20; ++i) {
    arr0[i] = arr0[i] + 2.2500 + arr0[i] * 0.25;
  }
  acc2 = 0.0;
  #pragma omp target teams distribute parallel for reduction(+: acc2)
  for (int i = 0; i < 20; ++i) {
    acc2 += arr0[i] * 0.0625;
  }
  checksum += acc2;
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += cold2[i];
  }
  printf("cold2=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
