struct cfg_t {
  double scale;
  double bias;
};

double arr0[32];
double arr1[20];
struct cfg_t cfg;

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1024);
  for (int i = 0; i < 32; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 20; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  cfg.scale = 1.25;
  cfg.bias = 0.5;
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  for (int t = 0; t < 3; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 20; ++i) {
      if (arr1[i] > 0.1000) {
        arr1[i] = arr1[i] - 0.1250;
      } else {
        arr1[i] = arr1[i] * scale + arr0[i] * 0.25;
      }
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 32; ++i) {
      if (arr0[i] > 0.7000) {
        arr0[i] = arr0[i] - 0.8750;
      } else {
        arr0[i] = arr0[i] * scale + arr0[i] * 0.25;
      }
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 32; ++i) {
      if (arr0[i] > 0.5000) {
        arr0[i] = arr0[i] - 0.6250;
      } else {
        arr0[i] = arr0[i] * scale;
      }
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 20; ++i) {
      if (arr1[i] > 0.4000) {
        arr1[i] = arr1[i] - 0.5000;
      } else {
        arr1[i] = arr1[i] * scale;
      }
    }
    cfg.bias = cfg.bias + 0.5000;
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  printf("cfg=%.6f %.6f\n", cfg.scale, cfg.bias);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
