extern double arr0[20];
extern double arr1[20];
extern int iarr2[40];
extern double cold3[48];

double host_sum(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s = s + a[i];
  }
  return s;
}

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1031);
  for (int i = 0; i < 20; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 20; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 40; ++i) {
    iarr2[i] = rand() % 50;
  }
  for (int i = 0; i < 48; ++i) {
    cold3[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

