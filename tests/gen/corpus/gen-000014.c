struct cfg_t {
  double scale;
  double bias;
};

double arr0[48];
double arr1[32];
struct cfg_t cfg;

double mixv(double a, double b) {
  if (a > b) {
    return a - b;
  }
  return a + b * 0.5;
}

void host_fill(double *a, int n, double v) {
  for (int i = 0; i < n; ++i) {
    a[i] = v + i * 0.5;
  }
}

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1014);
  for (int i = 0; i < 48; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 32; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  cfg.scale = 1.25;
  cfg.bias = 0.5;
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; ++i) {
    arr0[i] = arr1[i] * cfg.scale + cfg.bias;
  }
  host_fill(arr0, 48, 1.5000);
  acc2 = 0.0;
  #pragma omp target teams distribute parallel for reduction(+: acc2)
  for (int i = 0; i < 48; ++i) {
    acc2 += arr0[i] * 0.2500;
  }
  checksum += acc2;
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  printf("cfg=%.6f %.6f\n", cfg.scale, cfg.bias);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
