struct cfg_t {
  double scale;
  double bias;
};

double arr0[20];
double arr1[40];
double arr2[32];
struct cfg_t cfg;

double mixv(double a, double b) {
  if (a > b) {
    return a - b;
  }
  return a + b * 0.5;
}

double host_sum(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s = s + a[i];
  }
  return s;
}

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1028);
  for (int i = 0; i < 20; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 40; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 32; ++i) {
    arr2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  cfg.scale = 1.25;
  cfg.bias = 0.5;
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  stage(arr2, arr1, 32, scale);
  for (int i = 0; i < 20; ++i) {
    arr0[i] = i * 0.25 + 2.5000;
  }
  stage(arr2, arr2, 32, scale);
  cfg.scale = cfg.scale + 0.3125;
  acc1 = 0.0;
  #pragma omp target teams distribute parallel for reduction(+: acc1)
  for (int i = 0; i < 32; ++i) {
    acc1 += arr2[i] * 0.2500;
  }
  checksum += acc1;
  checksum += host_sum(arr0, 20);
  stage(arr2, arr2, 32, scale);
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 40; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr2[i];
  }
  printf("arr2=%.6f\n", tail);
  printf("cfg=%.6f %.6f\n", cfg.scale, cfg.bias);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
