struct cfg_t {
  double scale;
  double bias;
};

double arr0[12];
double arr1[48];
int iarr2[48];
struct cfg_t cfg;

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1020);
  for (int i = 0; i < 12; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    iarr2[i] = rand() % 50;
  }
  cfg.scale = 1.25;
  cfg.bias = 0.5;
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  int iter = 0;
  while (iter < 4) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 12; ++i) {
      arr0[i] += arr1[i] * 0.0625;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 12; ++i) {
      if (arr0[i] > 0.8000) {
        arr0[i] = arr0[i] - 1.0000;
      } else {
        arr0[i] = arr0[i] * scale;
      }
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 12; ++i) {
      arr0[i] = arr0[i] * 1.4375;
    }
    for (int i = 0; i < 12; ++i) {
      checksum += arr0[i];
    }
    for (int i = 0; i < 12; ++i) {
      arr0[i] = i * 0.25 + 2.0000;
    }
    for (int i = 0; i < 48; ++i) {
      checksum += arr1[i];
    }
    acc0 = 0.0;
    #pragma omp target teams distribute parallel for reduction(+: acc0)
    for (int i = 0; i < 12; ++i) {
      acc0 += arr0[i] * 0.2812;
    }
    checksum += acc0;
    iter = iter + 1;
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 12; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += iarr2[i];
  }
  printf("iarr2=%.6f\n", tail);
  printf("cfg=%.6f %.6f\n", cfg.scale, cfg.bias);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
