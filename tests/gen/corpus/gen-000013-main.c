double arr0[32];
double arr1[48];
int iarr2[32];

double mixv(double a, double b);
void host_fill(double *a, int n, double v);
void stage(double *src, double *dst, int n, double w);
void init_data();

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    arr0[i] = i * 0.25 + 4.5000;
  }
  for (int i = 0; i < 32; ++i) {
    checksum += arr0[i];
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; ++i) {
    if (arr0[i] > 0.8000) {
      arr0[i] = arr0[i] - 1.0000;
    } else {
      arr0[i] = arr0[i] * scale;
    }
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += iarr2[i];
  }
  printf("iarr2=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
