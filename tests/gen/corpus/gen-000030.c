struct cfg_t {
  double scale;
  double bias;
};

double arr0[32];
double arr1[20];
double arr2[20];
double cold3[32];
struct cfg_t cfg;

double host_sum(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s = s + a[i];
  }
  return s;
}

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1030);
  for (int i = 0; i < 32; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 20; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 20; ++i) {
    arr2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 32; ++i) {
    cold3[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  cfg.scale = 1.25;
  cfg.bias = 0.5;
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  for (int t = 0; t < 2; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 20; ++i) {
      arr1[i] += arr2[i] * 0.2500;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 20; ++i) {
      arr1[i] = arr2[i] * cfg.scale + cfg.bias;
    }
    stage(arr2, arr2, 20, scale);
    cfg.scale = cfg.scale + 0.3125;
    acc1 = 0.0;
    #pragma omp target teams distribute parallel for reduction(+: acc1)
    for (int i = 0; i < 20; ++i) {
      acc1 += arr2[i] * 0.2500;
    }
    checksum += acc1;
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr2[i];
  }
  printf("arr2=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += cold3[i];
  }
  printf("cold3=%.6f\n", tail);
  printf("cfg=%.6f %.6f\n", cfg.scale, cfg.bias);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
