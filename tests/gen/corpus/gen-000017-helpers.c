extern double arr0[16];
extern double arr1[32];
extern int iarr2[48];

double mixv(double a, double b) {
  if (a > b) {
    return a - b;
  }
  return a + b * 0.5;
}

void init_data() {
  srand(1017);
  for (int i = 0; i < 16; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 32; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    iarr2[i] = rand() % 50;
  }
}

