double arr0[32];
double arr1[48];
double cold2[48];

double mixv(double a, double b);
void init_data();

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  for (int t = 0; t < 3; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 32; ++i) {
      arr0[i] = arr0[i] * scale + 2.0000 + arr0[i] * 0.25;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 48; ++i) {
      if (arr1[i] > 0.1000) {
        arr1[i] = arr1[i] - 0.1250;
      } else {
        arr1[i] = arr1[i] * scale;
      }
    }
    acc2 = 0.0;
    #pragma omp target teams distribute parallel for reduction(+: acc2)
    for (int i = 0; i < 32; ++i) {
      acc2 += arr0[i] * 0.2188;
    }
    checksum += acc2;
    acc0 = 0.0;
    #pragma omp target teams distribute parallel for reduction(+: acc0)
    for (int i = 0; i < 32; ++i) {
      acc0 += arr0[i] * 0.1562;
    }
    checksum += acc0;
    for (int i = 0; i < 48; ++i) {
      arr1[i] = i * 0.25 + 2.0000;
    }
    for (int i = 0; i < 32; ++i) {
      checksum += arr0[i];
    }
    for (int i = 0; i < 48; ++i) {
      checksum += arr1[i];
    }
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += cold2[i];
  }
  printf("cold2=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
