double arr0[24];
double arr1[24];

void init_data();

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 24; ++i) {
    arr1[i] = arr0[i] * 1.3750;
  }
  for (int i = 0; i < 12; ++i) {
    arr0[i] = i * 0.25 + 2.5000;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 24; ++i) {
    if (arr1[i] > 0.2000) {
      arr0[i] = arr1[i] - 0.2500;
    } else {
      arr0[i] = arr1[i] * scale;
    }
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 24; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 24; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
