extern double arr0[32];
extern double arr1[40];
extern double arr2[24];

void init_data() {
  srand(1002);
  for (int i = 0; i < 32; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 40; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 24; ++i) {
    arr2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

