extern double arr0[48];
extern double arr1[48];
extern double arr2[40];
extern int iarr3[20];

void stage(double *src, double *dst, int n, double w) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    dst[i] = src[i] * w + 0.75;
  }
}

void init_data() {
  srand(1021);
  for (int i = 0; i < 48; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 40; ++i) {
    arr2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 20; ++i) {
    iarr3[i] = rand() % 50;
  }
}

