double arr0[24];
double arr1[48];
double arr2[48];

double mixv(double a, double b) {
  if (a > b) {
    return a - b;
  }
  return a + b * 0.5;
}

double host_sum(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s = s + a[i];
  }
  return s;
}

void init_data() {
  srand(1005);
  for (int i = 0; i < 24; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 48; ++i) {
    arr2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    arr2[i] = i * 0.25 + 3.5000;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 48; ++i) {
    if (arr1[i] > 0.3000) {
      arr1[i] = arr1[i] - 0.3750;
    } else {
      arr1[i] = arr1[i] * scale;
    }
  }
  for (int i = 0; i < 48; ++i) {
    checksum += arr2[i];
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 24; ++i) {
    if (arr0[i] > 0.8000) {
      arr1[i] = arr0[i] - 1.0000;
    } else {
      arr1[i] = arr0[i] * scale;
    }
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 48; ++i) {
    arr2[i] = mixv(arr2[i], scale);
  }
  for (int i = 0; i < 24; ++i) {
    checksum += arr0[i];
  }
  for (int i = 0; i < 24; ++i) {
    arr2[i] = i * 0.25 + 2.0000;
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 24; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 48; ++i) {
    tail += arr2[i];
  }
  printf("arr2=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
