struct cfg_t {
  double scale;
  double bias;
};

double arr0[40];
double arr1[32];
double arr2[40];
struct cfg_t cfg;

void init_data() {
  srand(1001);
  for (int i = 0; i < 40; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 32; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 40; ++i) {
    arr2[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  cfg.scale = 1.25;
  cfg.bias = 0.5;
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  acc0 = 0.0;
  #pragma omp target teams distribute parallel for reduction(+: acc0)
  for (int i = 0; i < 40; ++i) {
    acc0 += arr0[i] * 0.1875;
  }
  checksum += acc0;
  for (int i = 0; i < 20; ++i) {
    arr0[i] = i * 0.25 + 2.5000;
  }
  acc2 = 0.0;
  #pragma omp target teams distribute parallel for reduction(+: acc2)
  for (int i = 0; i < 40; ++i) {
    acc2 += arr0[i] * 0.0625;
  }
  checksum += acc2;
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 40; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 40; ++i) {
    tail += arr2[i];
  }
  printf("arr2=%.6f\n", tail);
  printf("cfg=%.6f %.6f\n", cfg.scale, cfg.bias);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
