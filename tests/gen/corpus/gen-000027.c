double arr0[32];
double arr1[20];

double host_sum(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    s = s + a[i];
  }
  return s;
}

void host_fill(double *a, int n, double v) {
  for (int i = 0; i < n; ++i) {
    a[i] = v + i * 0.5;
  }
}

void init_data() {
  srand(1027);
  for (int i = 0; i < 32; ++i) {
    arr0[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
  for (int i = 0; i < 20; ++i) {
    arr1[i] = (double)(rand() % 100) * 0.01 + 0.5;
  }
}

int main() {
  init_data();
  double checksum = 0.0;
  double scale = 1.5;
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double tail = 0.0;
  checksum += host_sum(arr0, 32);
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; ++i) {
    arr0[i] = arr0[i] * 1.4375;
  }
  for (int i = 0; i < 32; ++i) {
    checksum += arr0[i];
  }
  for (int i = 0; i < 16; ++i) {
    arr0[i] = i * 0.25 + 2.0000;
  }
  scale = scale + 0.1406;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 20; ++i) {
    arr0[i] = arr1[i] * 1.4375 + arr0[i] * 0.25;
  }
  checksum += acc0 + acc1 + acc2;
  tail = 0.0;
  for (int i = 0; i < 32; ++i) {
    tail += arr0[i];
  }
  printf("arr0=%.6f\n", tail);
  tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    tail += arr1[i];
  }
  printf("arr1=%.6f\n", tail);
  printf("scale=%.6f checksum=%.6f\n", scale, checksum);
  return 0;
}
