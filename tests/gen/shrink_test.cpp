// Shrinker contract tests: a failure reachable from one statement reduces
// past the 25% gate, non-failing inputs come back untouched, every kept
// intermediate (and the result) still satisfies the predicate, and the
// statement counter ignores the holes deletion leaves behind.
#include "gen/shrink.hpp"

#include "gen/generator.hpp"
#include "interp/interp.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ompdart {
namespace {

std::string injectedFailure(std::uint64_t seed) {
  gen::GeneratedProgram victim = gen::generateProgram(seed);
  std::string bugged = victim.combined();
  const std::string tail = "  return 0;\n}";
  const auto at = bugged.rfind(tail);
  EXPECT_NE(at, std::string::npos);
  bugged.insert(at, "  printf(\"FUZZBUG\\n\");\n");
  return bugged;
}

bool printsMarker(const std::string &source) {
  const auto run = interp::runProgram(source);
  return run.ok && run.output.find("FUZZBUG") != std::string::npos;
}

TEST(ShrinkTest, ReducesInjectedFailureBelowQuarter) {
  for (std::uint64_t seed : {4ull, 12ull, 31ull}) {
    const std::string bugged = injectedFailure(seed);
    const gen::ShrinkResult shrunk =
        gen::shrinkProgram(bugged, printsMarker);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + shrunk.source);
    EXPECT_GT(shrunk.originalStatements, 0u);
    EXPECT_LE(shrunk.finalStatements * 4, shrunk.originalStatements)
        << "shrinker left " << shrunk.finalStatements << " of "
        << shrunk.originalStatements;
    // The minimized program still reproduces.
    EXPECT_TRUE(printsMarker(shrunk.source));
  }
}

TEST(ShrinkTest, NonFailingInputComesBackUnchanged) {
  const std::string healthy = gen::generateProgram(4).combined();
  const gen::ShrinkResult shrunk =
      gen::shrinkProgram(healthy, printsMarker); // marker never printed
  EXPECT_EQ(shrunk.source, healthy);
  EXPECT_EQ(shrunk.finalStatements, shrunk.originalStatements);
  EXPECT_EQ(shrunk.deletions, 0u);
}

TEST(ShrinkTest, UnparseableInputComesBackUnchanged) {
  const std::string garbage = "int main( {";
  const gen::ShrinkResult shrunk =
      gen::shrinkProgram(garbage, [](const std::string &) { return true; });
  EXPECT_EQ(shrunk.source, garbage);
  EXPECT_EQ(shrunk.originalStatements, 0u);
}

TEST(ShrinkTest, EveryAcceptedDeletionSatisfiedThePredicate) {
  // The predicate sees every candidate; count how many the shrinker kept
  // and verify the final source is among the accepted ones semantically.
  unsigned accepted = 0;
  const std::string bugged = injectedFailure(4);
  const gen::ShrinkResult shrunk =
      gen::shrinkProgram(bugged, [&](const std::string &candidate) {
        const bool pass = printsMarker(candidate);
        if (pass)
          ++accepted;
        return pass;
      });
  EXPECT_GT(shrunk.deletions, 0u);
  EXPECT_GE(accepted, shrunk.deletions); // includes the initial check
  EXPECT_LE(shrunk.attempts, 6000u);
}

TEST(ShrinkTest, CountStatementsIgnoresNullHoles) {
  EXPECT_EQ(gen::countStatements("int main() { return 0; }"), 1u);
  EXPECT_EQ(gen::countStatements("int main() { ; ; return 0; }"), 1u);
  EXPECT_EQ(gen::countStatements(
                "int main() { int x = 1; if (x) { x = 2; } return x; }"),
            4u);
  EXPECT_EQ(gen::countStatements("not c"), 0u);
}

} // namespace
} // namespace ompdart
