// Generator contract tests: determinism (a seed IS the program), grammar
// coverage (every scenario family appears in a modest seed range), validity
// (generated programs parse and run), and option gating (narrowed grammars
// stay narrowed). The PRNG stream itself is pinned so a stdlib or refactor
// cannot silently shift every seed's program.
#include "gen/generator.hpp"

#include "common/test_util.hpp"
#include "interp/interp.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

TEST(SplitMix64Test, StreamIsPinned) {
  // splitmix64 reference values for state 42: drift here would re-roll the
  // whole corpus, so the constants are pinned hard.
  gen::SplitMix64 rng(42);
  EXPECT_EQ(rng.next(), 13679457532755275413ull);
  EXPECT_EQ(rng.next(), 2949826092126892291ull);
  EXPECT_EQ(rng.next(), 5139283748462763858ull);
  EXPECT_EQ(rng.next(), 6349198060258255764ull);
}

TEST(GeneratorTest, SameSeedIsByteIdentical) {
  for (std::uint64_t seed : {1ull, 7ull, 123ull, 99991ull}) {
    const gen::GeneratedProgram a = gen::generateProgram(seed);
    const gen::GeneratedProgram b = gen::generateProgram(seed);
    ASSERT_EQ(a.tus.size(), b.tus.size());
    for (std::size_t i = 0; i < a.tus.size(); ++i) {
      EXPECT_EQ(a.tus[i].name, b.tus[i].name);
      EXPECT_EQ(a.tus[i].source, b.tus[i].source);
    }
    EXPECT_EQ(a.provableTrips, b.provableTrips);
    EXPECT_EQ(a.name, b.name);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a = gen::generateProgram(1);
  const auto b = gen::generateProgram(2);
  EXPECT_NE(a.combined(), b.combined());
}

TEST(GeneratorTest, CorpusHelperMatchesPerSeedGeneration) {
  const auto corpus = gen::generateCorpus(10, 5);
  ASSERT_EQ(corpus.size(), 5u);
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_EQ(corpus[i].seed, 10u + i);
    EXPECT_EQ(corpus[i].combined(), gen::generateProgram(10 + i).combined());
  }
}

TEST(GeneratorTest, ProgramsParseAndRunDeterministically) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const gen::GeneratedProgram program = gen::generateProgram(seed);
    const std::string source = program.combined();
    SCOPED_TRACE(program.name + "\n" + source);
    const auto parsed = test::parse(source, program.name + ".c");
    ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
    const auto runA = interp::runProgram(source);
    ASSERT_TRUE(runA.ok) << runA.error;
    EXPECT_FALSE(runA.output.empty());
    const auto runB = interp::runProgram(source);
    EXPECT_EQ(runA.output, runB.output); // interp's rand is fixed-seed
    EXPECT_GT(runA.ledger.kernelLaunches(), 0u)
        << "every program must offload at least once";
  }
}

TEST(GeneratorTest, GrammarFamiliesAllAppear) {
  // Over a modest seed range every scenario family the tentpole names must
  // occur: multi-TU splits, structs, int arrays, pointer helpers,
  // reductions, dynamic-trip loops, guarded kernels.
  bool multiTu = false, usesStruct = false, intArrays = false;
  bool pointerHelpers = false, reductions = false, dynamicLoops = false;
  bool guarded = false, unprovable = false, provable = false;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const gen::GeneratedProgram program = gen::generateProgram(seed);
    multiTu = multiTu || program.multiTu();
    usesStruct = usesStruct || program.stats.usesStruct;
    intArrays = intArrays || program.stats.usesIntArrays;
    pointerHelpers = pointerHelpers || program.stats.usesPointerHelper;
    reductions = reductions || program.stats.usesReduction;
    dynamicLoops = dynamicLoops || program.stats.dynamicLoop;
    guarded = guarded || program.stats.guardedKernel;
    unprovable = unprovable || !program.provableTrips;
    provable = provable || program.provableTrips;
  }
  EXPECT_TRUE(multiTu);
  EXPECT_TRUE(usesStruct);
  EXPECT_TRUE(intArrays);
  EXPECT_TRUE(pointerHelpers);
  EXPECT_TRUE(reductions);
  EXPECT_TRUE(dynamicLoops);
  EXPECT_TRUE(guarded);
  EXPECT_TRUE(unprovable);
  EXPECT_TRUE(provable);
}

TEST(GeneratorTest, OptionGatesNarrowTheGrammar) {
  gen::GenOptions narrow;
  narrow.allowDynamicTrips = false;
  narrow.allowMultiTu = false;
  narrow.allowStructs = false;
  narrow.allowIntArrays = false;
  narrow.allowPointerHelpers = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const gen::GeneratedProgram program = gen::generateProgram(seed, narrow);
    EXPECT_TRUE(program.provableTrips) << seed;
    EXPECT_FALSE(program.multiTu()) << seed;
    EXPECT_FALSE(program.stats.usesStruct) << seed;
    EXPECT_FALSE(program.stats.usesIntArrays) << seed;
    EXPECT_FALSE(program.stats.usesPointerHelper) << seed;
    EXPECT_FALSE(program.stats.dynamicLoop) << seed;
    EXPECT_FALSE(program.stats.guardedKernel) << seed;
  }
}

TEST(GeneratorTest, MultiTuSplitConcatenatesToTheSameProgram) {
  // A multi-TU program's TUs concatenate (in link order) into one valid
  // translation unit: same parse, same behaviour as running the combined
  // text directly.
  unsigned checked = 0;
  for (std::uint64_t seed = 1; seed <= 60 && checked < 5; ++seed) {
    const gen::GeneratedProgram program = gen::generateProgram(seed);
    if (!program.multiTu())
      continue;
    ++checked;
    ASSERT_EQ(program.tus.size(), 2u);
    const auto parsed = test::parse(program.combined());
    ASSERT_TRUE(parsed.ok) << program.name << "\n"
                           << parsed.diags->summary();
    const auto run = interp::runProgram(program.combined());
    EXPECT_TRUE(run.ok) << program.name << ": " << run.error;
  }
  EXPECT_GE(checked, 3u);
}

// -------------------------------------------------------------------------
// Scale projects (plan-server fixture)
// -------------------------------------------------------------------------

TEST(ScaleProjectTest, SameSeedIsByteIdentical) {
  const auto first = gen::generateScaleProject(33, 12);
  const auto second = gen::generateScaleProject(33, 12);
  ASSERT_EQ(first.tus.size(), second.tus.size());
  for (std::size_t i = 0; i < first.tus.size(); ++i) {
    EXPECT_EQ(first.tus[i].name, second.tus[i].name);
    EXPECT_EQ(first.tus[i].source, second.tus[i].source);
  }
  EXPECT_TRUE(first.provableTrips);
}

TEST(ScaleProjectTest, ShapeIsMainPlusStagesAndClamped) {
  const auto program = gen::generateScaleProject(33, 5);
  ASSERT_EQ(program.tus.size(), 5u);
  EXPECT_NE(program.tus[0].name.find("main"), std::string::npos);
  for (std::size_t i = 1; i < program.tus.size(); ++i)
    EXPECT_NE(program.tus[i].name.find("stage"), std::string::npos) << i;
  // tuCount is clamped to main + at least one stage.
  EXPECT_EQ(gen::generateScaleProject(33, 0).tus.size(), 2u);
  // Per-TU emission matches the assembled project (the incremental tests
  // edit single TUs through generateScaleTu and rely on this).
  for (unsigned i = 0; i < 5; ++i) {
    const gen::GeneratedTu tu = gen::generateScaleTu(33, i, 5);
    EXPECT_EQ(tu.name, program.tus[i].name);
    EXPECT_EQ(tu.source, program.tus[i].source);
  }
}

TEST(ScaleProjectTest, OddVariantEditsOnlyTheStageKernel) {
  const gen::GeneratedTu base = gen::generateScaleTu(33, 2, 5);
  const gen::GeneratedTu edited = gen::generateScaleTu(33, 2, 5, 1);
  EXPECT_EQ(base.name, edited.name);
  EXPECT_NE(base.source, edited.source);
  // Even variants re-emit the base TU; main ignores the variant entirely.
  EXPECT_EQ(gen::generateScaleTu(33, 2, 5, 2).source, base.source);
  EXPECT_EQ(gen::generateScaleTu(33, 0, 5, 1).source,
            gen::generateScaleTu(33, 0, 5).source);
  // Both variants stay in the parseable subset.
  EXPECT_TRUE(test::parse(base.source).ok);
  EXPECT_TRUE(test::parse(edited.source).ok);
}

TEST(ScaleProjectTest, ConcatenationParsesAndRunsDeterministically) {
  const auto program = gen::generateScaleProject(34, 6);
  const auto parsed = test::parse(program.combined());
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  const auto first = interp::runProgram(program.combined());
  ASSERT_TRUE(first.ok) << first.error;
  const auto second = interp::runProgram(program.combined());
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(first.output, second.output);
}

} // namespace
} // namespace ompdart
