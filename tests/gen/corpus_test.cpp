// Golden-corpus pinning: tests/gen/corpus/ holds 32 seeded programs plus a
// manifest with source hashes and plan-IR fingerprints. Any generator
// drift (program text changes for a pinned seed) or planner drift (the
// plan for a pinned program changes) fails tier-1 deterministically; an
// intentional change regenerates the corpus with
//   ./build/ompdart_cli --fuzz=32 --gen-seed=1 -o tests/gen/corpus
#include "gen/generator.hpp"

#include "support/hash.hpp"
#include "support/json.hpp"
#include "verify/oracle.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef OMPDART_REPO_DIR
#define OMPDART_REPO_DIR "."
#endif

namespace ompdart {
namespace {

namespace fs = std::filesystem;

fs::path corpusDir() {
  return fs::path(OMPDART_REPO_DIR) / "tests" / "gen" / "corpus";
}

json::Value loadManifest() {
  std::ifstream in(corpusDir() / "manifest.json");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto parsed = json::Value::parse(buffer.str(), &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return parsed.value_or(json::Value());
}

std::string readFile(const fs::path &path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GoldenCorpusTest, ThirtyTwoProgramsPinned) {
  const json::Value manifest = loadManifest();
  const json::Value *programs = manifest.find("programs");
  ASSERT_NE(programs, nullptr);
  EXPECT_EQ(programs->items().size(), 32u);
  EXPECT_EQ(manifest.uintOr("baseSeed"), 1u);
}

TEST(GoldenCorpusTest, GeneratorReproducesEveryPinnedProgram) {
  const json::Value manifest = loadManifest();
  const json::Value *programs = manifest.find("programs");
  ASSERT_NE(programs, nullptr);
  for (const json::Value &entry : programs->items()) {
    const std::uint64_t seed = entry.uintOr("seed");
    const gen::GeneratedProgram program = gen::generateProgram(seed);
    SCOPED_TRACE(program.name);
    // TU-by-TU byte equality against the checked-in files.
    const json::Value *files = entry.find("files");
    ASSERT_NE(files, nullptr);
    ASSERT_EQ(files->items().size(), program.tus.size());
    for (std::size_t i = 0; i < program.tus.size(); ++i) {
      EXPECT_EQ(files->items()[i].asString(), program.tus[i].name);
      EXPECT_EQ(readFile(corpusDir() / program.tus[i].name),
                program.tus[i].source)
          << "generator drift for " << program.tus[i].name;
    }
    EXPECT_EQ(entry.stringOr("sourceHash"),
              hash::fingerprint(program.combined()));
    EXPECT_EQ(entry.boolOr("provableTrips"), program.provableTrips);
    EXPECT_EQ(entry.boolOr("multiTu"), program.multiTu());
  }
}

TEST(GoldenCorpusTest, PlannerReproducesEveryPinnedIrFingerprint) {
  const json::Value manifest = loadManifest();
  const json::Value *programs = manifest.find("programs");
  ASSERT_NE(programs, nullptr);
  for (const json::Value &entry : programs->items()) {
    const std::uint64_t seed = entry.uintOr("seed");
    const gen::GeneratedProgram program = gen::generateProgram(seed);
    SCOPED_TRACE(program.name);
    verify::OracleOptions options;
    options.checkRewrite = true;
    const verify::OracleVerdict verdict = verify::runOracle(program, options);
    EXPECT_TRUE(verdict.ok) << verdict.divergence();
    EXPECT_EQ(entry.stringOr("irFingerprint"), verdict.irFingerprint)
        << "plan drift for " << program.name;
  }
}

} // namespace
} // namespace ompdart
