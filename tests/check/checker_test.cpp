// Tests for the static plan-safety checker (src/check/): finding-code and
// JSON round-trips, mutation-battery mechanics, precision on the planner's
// own plans, and — the core of this file — the eight minimized oracle
// regressions re-introduced as IR mutations. Each regression program under
// tests/verify/regressions/ once shipped with a buggy plan; here the
// equivalent single-decision break is applied to today's correct plan and
// the checker must flag it with the diagnostic code of the original bug
// class. That pins the checker to the exact failure modes the dynamic
// oracle has already proven real.
#include "check/checker.hpp"
#include "check/mutate.hpp"
#include "driver/pipeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#ifndef OMPDART_REPO_DIR
#define OMPDART_REPO_DIR "."
#endif

namespace ompdart {
namespace {

namespace fs = std::filesystem;
using check::CheckResult;
using check::Finding;
using check::FindingCode;
using check::Mutation;

std::string loadRegression(const std::string &name) {
  const fs::path path = fs::path(OMPDART_REPO_DIR) / "tests" / "verify" /
                        "regressions" / name;
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Front end + plan for one source; keeps the Session alive so mutated IRs
/// can be re-checked against the same unit/CFG/interproc artifacts.
struct PlannedProgram {
  explicit PlannedProgram(const std::string &name)
      : session(name, loadRegression(name)) {
    session.plan();
  }

  [[nodiscard]] const ir::MappingIr &ir() { return session.ir(); }

  [[nodiscard]] CheckResult checkMutant(const ir::MappingIr &mutant) {
    return check::checkPlan(session.parse().unit(), session.cfg(),
                            session.interproc(), mutant,
                            session.config().imports);
  }

  Session session;
};

/// The region planned for `function`; fails the test when absent.
const ir::Region *regionFor(const ir::MappingIr &ir,
                            const std::string &function,
                            std::size_t *indexOut = nullptr) {
  for (std::size_t i = 0; i < ir.regions.size(); ++i)
    if (ir.regions[i].function == function) {
      if (indexOut != nullptr)
        *indexOut = i;
      return &ir.regions[i];
    }
  return nullptr;
}

/// Index of the first map item in `region` whose spelled item starts with
/// `var` and whose type satisfies `type`; npos when absent.
std::size_t findMap(const ir::Region &region, const std::string &var,
                    ir::MapType type) {
  for (std::size_t i = 0; i < region.maps.size(); ++i)
    if (region.maps[i].type == type &&
        region.maps[i].item.rfind(var, 0) == 0)
      return i;
  return static_cast<std::size_t>(-1);
}

// ---------------------------------------------------------------------------
// Finding codes & JSON
// ---------------------------------------------------------------------------

TEST(FindingTest, CodeNamesRoundTrip) {
  const FindingCode codes[] = {
      FindingCode::StaleDeviceRead, FindingCode::StaleHostRead,
      FindingCode::DeadTransfer, FindingCode::DoubleTransfer,
      FindingCode::ExitWithoutEntry};
  for (const FindingCode code : codes) {
    const auto back = check::findingCodeFromName(check::findingCodeName(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(check::findingCodeFromName("no-such-code").has_value());
}

TEST(FindingTest, JsonRoundTrip) {
  Finding finding;
  finding.code = FindingCode::DeadTransfer;
  finding.symbol = "a";
  finding.function = "main";
  finding.location.offset = 42;
  finding.location.line = 7;
  finding.location.column = 3;
  finding.message = "from-leg for 'a' copies out data no kernel ever writes";

  CheckResult result;
  result.findings.push_back(finding);
  result.regionsChecked = 2;

  const auto back = CheckResult::fromJson(result.toJson());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, result);
}

// ---------------------------------------------------------------------------
// Mutation battery mechanics
// ---------------------------------------------------------------------------

TEST(MutateTest, EnumerationIsDeterministicAndNonDestructive) {
  PlannedProgram program("warm_callee_region.c");
  const ir::MappingIr &ir = program.ir();
  ASSERT_FALSE(ir.empty());

  const auto a = check::enumerateMutations(ir);
  const auto b = check::enumerateMutations(ir);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].region, b[i].region);
    EXPECT_EQ(a[i].item, b[i].item);
  }

  const ir::MappingIr before = ir;
  for (const Mutation &mutation : a) {
    const ir::MappingIr mutant = check::applyMutation(ir, mutation);
    EXPECT_NE(mutant, before) << mutation.describe(ir);
  }
  EXPECT_EQ(ir, before); // applyMutation copies, never edits in place
}

TEST(MutateTest, WarmItemsAreNotWeakened) {
  // warm_callee_region's stage() maps are present/coldEntries==0; breaking
  // their legs is invisible to any execution, so the battery must skip
  // them (equivalent mutants would dilute the kill rate).
  PlannedProgram program("warm_callee_region.c");
  const ir::MappingIr &ir = program.ir();
  std::size_t stageIndex = 0;
  ASSERT_NE(regionFor(ir, "stage", &stageIndex), nullptr);
  for (const Mutation &mutation : check::enumerateMutations(ir)) {
    if (mutation.region != stageIndex)
      continue;
    EXPECT_NE(mutation.kind, Mutation::Kind::DropFromLeg);
    EXPECT_NE(mutation.kind, Mutation::Kind::WeakenMapType);
    EXPECT_NE(mutation.kind, Mutation::Kind::BreakPresent);
  }
}

// ---------------------------------------------------------------------------
// Precision: the planner's own plans are clean
// ---------------------------------------------------------------------------

TEST(CheckerTest, PlannerPlansAreClean) {
  const char *const regressions[] = {
      "aliased_pointer_params.c",    "braceless_loop_body_update.c",
      "dead_copyout_after_host_overwrite.c", "guarded_sole_kernel.c",
      "loop_carried_update_from.c",  "mixed_warm_callee_sites.c",
      "partial_host_write_kill.c",   "warm_callee_region.c"};
  for (const char *name : regressions) {
    PlannedProgram program(name);
    const CheckResult &result = program.session.check();
    EXPECT_TRUE(result.clean()) << name;
    EXPECT_GT(result.regionsChecked, 0u) << name;
  }
}

TEST(CheckerTest, CheckStageRunsOnceInFullPipeline) {
  PlannedProgram program("guarded_sole_kernel.c");
  program.session.run();
  EXPECT_EQ(program.session.stageRuns(Stage::Check), 1u);
  const Report &report = program.session.report();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->clean());
}

// ---------------------------------------------------------------------------
// The eight oracle regressions as IR mutations
// ---------------------------------------------------------------------------

// aliased_pointer_params: the original bug left the device image of the
// kernel's input uninitialized. Weakening src's to-leg to alloc re-creates
// exactly that — the kernel reads device memory no transfer ever fed.
TEST(CheckerRegressionTest, AliasedPointerParams) {
  PlannedProgram program("aliased_pointer_params.c");
  std::size_t region = 0;
  const ir::Region *stage = regionFor(program.ir(), "stage", &region);
  ASSERT_NE(stage, nullptr);
  const std::size_t map = findMap(*stage, "src", ir::MapType::To);
  ASSERT_NE(map, static_cast<std::size_t>(-1));

  const auto mutant = check::applyMutation(
      program.ir(), {Mutation::Kind::WeakenMapType, region, map});
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::StaleDeviceRead));
}

// braceless_loop_body_update: the rewriter once landed a body-end update
// AFTER the while loop, so the loop condition kept reading stale host
// data. Shifting the body-end update out of the loop is that bug in IR
// form.
TEST(CheckerRegressionTest, BracelessLoopBodyUpdate) {
  PlannedProgram program("braceless_loop_body_update.c");
  std::size_t region = 0;
  const ir::Region *main = regionFor(program.ir(), "main", &region);
  ASSERT_NE(main, nullptr);
  std::size_t update = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < main->updates.size(); ++i)
    if (main->updates[i].placement == ir::UpdatePlacement::BodyEnd &&
        main->updates[i].item == "stop")
      update = i;
  ASSERT_NE(update, static_cast<std::size_t>(-1));

  const auto mutant = check::applyMutation(
      program.ir(), {Mutation::Kind::ShiftUpdate, region, update});
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::StaleHostRead));
}

// dead_copyout_after_host_overwrite: the planner once kept a from-leg for
// data the host fully overwrites. Re-adding that from-leg makes the exit
// copy out a device image that misses the host's newer values.
TEST(CheckerRegressionTest, DeadCopyoutAfterHostOverwrite) {
  PlannedProgram program("dead_copyout_after_host_overwrite.c");
  std::size_t region = 0;
  const ir::Region *main = regionFor(program.ir(), "main", &region);
  ASSERT_NE(main, nullptr);
  const std::size_t map = findMap(*main, "a", ir::MapType::To);
  ASSERT_NE(map, static_cast<std::size_t>(-1));

  ir::MappingIr mutant = program.ir();
  mutant.regions[region].maps[map].type = ir::MapType::ToFrom;
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::StaleDeviceRead));
}

// guarded_sole_kernel: the region walker once dropped the kernel's
// from-leg because a post-region read looked in-region. Dropping the
// from-leg leaves the tail read consuming pre-kernel host values.
TEST(CheckerRegressionTest, GuardedSoleKernel) {
  PlannedProgram program("guarded_sole_kernel.c");
  std::size_t region = 0;
  const ir::Region *main = regionFor(program.ir(), "main", &region);
  ASSERT_NE(main, nullptr);
  const std::size_t map = findMap(*main, "a", ir::MapType::ToFrom);
  ASSERT_NE(map, static_cast<std::size_t>(-1));

  const auto mutant = check::applyMutation(
      program.ir(), {Mutation::Kind::DropFromLeg, region, map});
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::StaleHostRead));
}

// loop_carried_update_from: an update-from once ran before any kernel had
// written the device copy (no to-leg), copying uninitialized device memory
// over live host data on the first trip. Weakening the to-leg re-creates
// it.
TEST(CheckerRegressionTest, LoopCarriedUpdateFrom) {
  PlannedProgram program("loop_carried_update_from.c");
  std::size_t region = 0;
  const ir::Region *main = regionFor(program.ir(), "main", &region);
  ASSERT_NE(main, nullptr);
  const std::size_t map = findMap(*main, "a", ir::MapType::To);
  ASSERT_NE(map, static_cast<std::size_t>(-1));

  const auto mutant = check::applyMutation(
      program.ir(), {Mutation::Kind::WeakenMapType, region, map});
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::StaleDeviceRead));
}

// mixed_warm_callee_sites: per-item coldEntries exist precisely because
// all-or-nothing present marking cannot express a warm/cold call-site mix.
// Claiming present on an item with cold entries is that contradiction.
TEST(CheckerRegressionTest, MixedWarmCalleeSites) {
  PlannedProgram program("mixed_warm_callee_sites.c");
  std::size_t region = 0;
  const ir::Region *stage = regionFor(program.ir(), "stage", &region);
  ASSERT_NE(stage, nullptr);
  const std::size_t map = findMap(*stage, "src", ir::MapType::To);
  ASSERT_NE(map, static_cast<std::size_t>(-1));
  ASSERT_GT(stage->maps[map].coldEntries, 0u);
  ASSERT_FALSE(stage->maps[map].modifiers.present);

  const auto mutant = check::applyMutation(
      program.ir(), {Mutation::Kind::BreakPresent, region, map});
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::ExitWithoutEntry));
}

// partial_host_write_kill: a whole-object kill once dropped the from-leg
// although the host overwrote only half the array — the bug IS a dropped
// from-leg.
TEST(CheckerRegressionTest, PartialHostWriteKill) {
  PlannedProgram program("partial_host_write_kill.c");
  std::size_t region = 0;
  const ir::Region *main = regionFor(program.ir(), "main", &region);
  ASSERT_NE(main, nullptr);
  const std::size_t map = findMap(*main, "a", ir::MapType::ToFrom);
  ASSERT_NE(map, static_cast<std::size_t>(-1));

  const auto mutant = check::applyMutation(
      program.ir(), {Mutation::Kind::DropFromLeg, region, map});
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::StaleHostRead));
}

// warm_callee_region: the warm-callee post-pass marks fully-warm items
// present with zero cold entries. Toggling present off one of them breaks
// the refcount-shape contract the other way around.
TEST(CheckerRegressionTest, WarmCalleeRegion) {
  PlannedProgram program("warm_callee_region.c");
  std::size_t region = 0;
  const ir::Region *stage = regionFor(program.ir(), "stage", &region);
  ASSERT_NE(stage, nullptr);
  const std::size_t map = findMap(*stage, "src", ir::MapType::To);
  ASSERT_NE(map, static_cast<std::size_t>(-1));
  ASSERT_TRUE(stage->maps[map].modifiers.present);
  ASSERT_EQ(stage->maps[map].coldEntries, 0u);

  const auto mutant = check::applyMutation(
      program.ir(), {Mutation::Kind::BreakPresent, region, map});
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::ExitWithoutEntry));
}

// Zeroing the entry count is a pure shape break: every exit transfer then
// has no matching entry.
TEST(CheckerRegressionTest, ZeroEntryCountIsFlagged) {
  PlannedProgram program("guarded_sole_kernel.c");
  ASSERT_FALSE(program.ir().empty());
  const auto mutant = check::applyMutation(
      program.ir(), {Mutation::Kind::ZeroEntryCount, 0, 0});
  const CheckResult result = program.checkMutant(mutant);
  EXPECT_TRUE(result.hasCode(FindingCode::ExitWithoutEntry));
}

} // namespace
} // namespace ompdart
