// Symbolic pointer-extent resolution diagnostics: when the call sites a
// parameter's constant or extent is resolved through *disagree*, the
// planner must say so — naming the sites — instead of silently taking the
// conservative path. (Agreement keeps resolving exactly as before; the
// suite benchmarks pin that.)
#include "mapping/planner.hpp"

#include "driver/pipeline.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

std::vector<Diagnostic> planDiagnostics(const std::string &source) {
  Session session("diag.c", source);
  session.run();
  return session.report().diagnostics;
}

bool hasDisagreementWarning(const std::vector<Diagnostic> &diagnostics,
                            const std::string &param,
                            const std::string &fn) {
  for (const Diagnostic &diag : diagnostics) {
    if (diag.severity != Severity::Warning)
      continue;
    if (diag.message.find("call sites disagree") == std::string::npos)
      continue;
    if (diag.message.find("'" + param + "'") != std::string::npos &&
        diag.message.find("'" + fn + "'") != std::string::npos)
      return true;
  }
  return false;
}

TEST(ExtentDiagnosticTest, ConstantDisagreementNamesBothCallSites) {
  // `stage` maps src through the symbolic extent `n`; the two call sites
  // pass 128 and 256, so the byte prediction cannot resolve.
  const auto diagnostics = planDiagnostics(R"(
double a[128];
double b[256];
void stage(double *src, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    src[i] = src[i] * 2.0;
  }
}
int main() {
  stage(a, 128);
  stage(b, 256);
  return 0;
}
)");
  ASSERT_TRUE(hasDisagreementWarning(diagnostics, "n", "stage"))
      << "expected a disagreement warning; got:\n"
      << [&] {
           std::string all;
           for (const auto &diag : diagnostics)
             all += diag.str() + "\n";
           return all;
         }();
  // The diagnostic names both sites (values and lines).
  std::string message;
  for (const Diagnostic &diag : diagnostics)
    if (diag.message.find("call sites disagree") != std::string::npos)
      message = diag.message;
  EXPECT_NE(message.find("128 at line 11"), std::string::npos) << message;
  EXPECT_NE(message.find("256 at line 12"), std::string::npos) << message;
}

TEST(ExtentDiagnosticTest, ExtentDisagreementNamesBothCallSites) {
  // `blur` defeats loop-bound inference (stencil subscript), so the extent
  // comes from call-site arguments — which disagree (64 vs 32 elements).
  const auto diagnostics = planDiagnostics(R"(
double img1[64];
double img2[32];
void blur(double *img, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 1; i < n; ++i) {
    img[i - 1] = img[i - 1] + 1.0;
  }
}
int main() {
  blur(img1, 63);
  blur(img2, 31);
  return 0;
}
)");
  EXPECT_TRUE(hasDisagreementWarning(diagnostics, "img", "blur"))
      << "expected an extent disagreement warning";
}

TEST(ExtentDiagnosticTest, AgreeingCallSitesStaySilent) {
  const auto diagnostics = planDiagnostics(R"(
double a[128];
double b[128];
void stage(double *src, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    src[i] = src[i] * 2.0;
  }
}
int main() {
  stage(a, 128);
  stage(b, 128);
  return 0;
}
)");
  for (const Diagnostic &diag : diagnostics)
    EXPECT_EQ(diag.message.find("call sites disagree"), std::string::npos)
        << diag.str();
}

TEST(ExtentDiagnosticTest, DisagreementIsDiagnosedOnce) {
  const auto diagnostics = planDiagnostics(R"(
double a[128];
double b[256];
void stage(double *src, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    src[i] = src[i] * 2.0;
  }
}
int main() {
  stage(a, 128);
  stage(b, 256);
  return 0;
}
)");
  unsigned count = 0;
  for (const Diagnostic &diag : diagnostics)
    if (diag.message.find("call sites disagree") != std::string::npos &&
        diag.message.find("'n'") != std::string::npos)
      ++count;
  EXPECT_EQ(count, 1u);
}

} // namespace
} // namespace ompdart
