// Shim-equivalence golden tests: the transformed source for every suite
// benchmark must stay byte-identical to the pre-refactor rewriter output
// (captured in tests/mapping/golden/*.c). This pins the candidate/cost
// planner (default PaperGreedyCostModel) and the IR-based rewrite backend
// to the original behavior exactly.
#include "driver/pipeline.hpp"
#include "suite/benchmarks.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#ifndef OMPDART_REPO_DIR
#define OMPDART_REPO_DIR "."
#endif

namespace ompdart {
namespace {

std::string readGolden(const std::string &name, bool &found) {
  const std::string path =
      std::string(OMPDART_REPO_DIR) + "/tests/mapping/golden/" + name + ".c";
  std::ifstream in(path);
  found = static_cast<bool>(in);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GoldenOutputTest, SuiteBenchmarksAreByteIdenticalToPreRefactorOutput) {
  for (const suite::BenchmarkDef &def : suite::allBenchmarks()) {
    bool found = false;
    const std::string golden = readGolden(def.name, found);
    ASSERT_TRUE(found) << "missing golden file for " << def.name;
    Session session(def.name + ".c", def.unoptimized);
    ASSERT_TRUE(session.run()) << def.name;
    EXPECT_EQ(session.rewrite(), golden) << def.name;
  }
}

TEST(GoldenOutputTest, ExplicitPaperGreedyNameMatchesDefault) {
  PipelineConfig named;
  named.costModel = "paper-greedy";
  for (const suite::BenchmarkDef &def : suite::allBenchmarks()) {
    Session byDefault(def.name + ".c", def.unoptimized);
    Session byName(def.name + ".c", def.unoptimized, named);
    ASSERT_TRUE(byDefault.run()) << def.name;
    ASSERT_TRUE(byName.run()) << def.name;
    EXPECT_EQ(byDefault.rewrite(), byName.rewrite()) << def.name;
  }
}

} // namespace
} // namespace ompdart
