// End-to-end rewriting tests: source in, transformed source out. These
// exercise the full staged pipeline (parse -> cfg -> interproc -> plan ->
// rewrite -> metrics) through the Session API, the way the paper's
// evaluation does, checking the *text* of the inserted directives.
#include "driver/pipeline.hpp"
#include "frontend/parser.hpp"
#include "rewrite/rewriter.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

/// Plain-data snapshot of one Session run (the test bodies only look at
/// text and metrics).
struct PipelineRun {
  bool success = false;
  std::string output;
  ComplexityMetrics metrics;
  double toolSeconds = 0.0;
  bool errors = false;

  [[nodiscard]] bool hasErrors() const { return errors; }
};

PipelineRun runPipeline(const std::string &source) {
  Session session("test.c", source);
  PipelineRun run;
  run.success = session.run();
  run.output = session.rewrite();
  run.metrics = session.metrics();
  run.toolSeconds = session.totalSeconds();
  run.errors = session.diagnostics().hasErrors();
  return run;
}

/// The transformed source must itself be parseable.
void expectParseable(const std::string &source) {
  SourceManager sourceManager("out.c", source);
  ASTContext context;
  DiagnosticEngine diags;
  EXPECT_TRUE(parseSource(sourceManager, context, diags))
      << diags.summary() << "\n--- source ---\n"
      << source;
}

TEST(SourceRewriterTest, InsertionsApplyInOffsetOrder) {
  SourceManager sourceManager("t.c", "abcdef");
  SourceRewriter rewriter(sourceManager);
  rewriter.insert(3, "X");
  rewriter.insert(0, "Y");
  rewriter.insert(6, "Z");
  EXPECT_EQ(rewriter.apply(), "YabcXdefZ");
}

TEST(SourceRewriterTest, SameOffsetKeepsAddOrder) {
  SourceManager sourceManager("t.c", "ab");
  SourceRewriter rewriter(sourceManager);
  rewriter.insert(1, "1");
  rewriter.insert(1, "2");
  EXPECT_EQ(rewriter.apply(), "a12b");
}

TEST(RewriteEndToEnd, ListingOneWrapsLoopInDataRegion) {
  const std::string source = R"(void f(int *a, int n) {
  for (int i = 0; i < n; ++i) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < n; ++j) {
      a[j] += j;
    }
  }
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success) << result.output;
  EXPECT_NE(result.output.find("#pragma omp target data"),
            std::string::npos);
  // The data region directive must come before the outer for loop.
  const auto dataPos = result.output.find("#pragma omp target data");
  const auto loopPos = result.output.find("for (int i");
  EXPECT_LT(dataPos, loopPos);
  expectParseable(result.output);
}

TEST(RewriteEndToEnd, SingleKernelAppendsToPragma) {
  const std::string source = R"(void f(double *out, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    out[i] = i * 2.0;
  }
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  // No separate data region: the map clause lands on the kernel pragma.
  EXPECT_EQ(result.output.find("#pragma omp target data"),
            std::string::npos);
  EXPECT_NE(result.output.find("map(from:"), std::string::npos);
  expectParseable(result.output);
}

TEST(RewriteEndToEnd, UpdateFromInsertedBeforeHostRead) {
  const std::string source = R"(void f(int *a, int n, int m) {
  int sum = 0;
  for (int i = 0; i < m; ++i) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < n; ++j) {
      a[j] += j;
    }
    for (int j = 0; j < n; ++j) {
      sum += a[j];
    }
  }
  a[0] = sum;
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  const auto updatePos = result.output.find("#pragma omp target update from(");
  ASSERT_NE(updatePos, std::string::npos) << result.output;
  // It must appear after the kernel but before the summation loop.
  const auto kernelPos = result.output.find("teams distribute");
  const auto sumPos = result.output.find("sum += a[j]");
  EXPECT_GT(updatePos, kernelPos);
  EXPECT_LT(updatePos, sumPos);
  expectParseable(result.output);
}

TEST(RewriteEndToEnd, FirstprivateAppendedToKernelPragma) {
  const std::string source = R"(void f(double *a, int n) {
  double factor = 2.5;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] *= factor;
  }
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  // factor (and the read-only bound n) become firstprivate on the kernel.
  EXPECT_NE(result.output.find("firstprivate(factor"), std::string::npos)
      << result.output;
  expectParseable(result.output);
}

TEST(RewriteEndToEnd, ConsolidatesUpdatesAtSamePoint) {
  const std::string source = R"(void f(double *a, double *b, int n, int m) {
  double total = 0.0;
  for (int t = 0; t < m; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; ++i) {
      a[i] += 1.0;
      b[i] += 2.0;
    }
    for (int i = 0; i < n; ++i) {
      total += a[i] + b[i];
    }
  }
  a[0] = total;
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  // Both arrays update at the same point: a single consolidated directive.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = result.output.find("#pragma omp target update", pos)) !=
         std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 1u) << result.output;
  const auto updateLineStart =
      result.output.find("#pragma omp target update from(");
  ASSERT_NE(updateLineStart, std::string::npos);
  const auto lineEnd = result.output.find('\n', updateLineStart);
  const std::string line =
      result.output.substr(updateLineStart, lineEnd - updateLineStart);
  EXPECT_NE(line.find("a[0:"), std::string::npos);
  EXPECT_NE(line.find("b[0:"), std::string::npos);
  expectParseable(result.output);
}

TEST(RewriteEndToEnd, MapClausesGroupedByType) {
  const std::string source = R"(void f(const double *in, double *out, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    out[i] = in[i] * 2.0;
  }
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  EXPECT_NE(result.output.find("map(to: in[0:"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("map(from: out[0:"), std::string::npos);
  expectParseable(result.output);
}

TEST(RewriteEndToEnd, RejectsInputWithExistingDataDirectives) {
  const std::string source = R"(void f(double *a, int n) {
  #pragma omp target data map(tofrom: a[0:n])
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; ++i) {
      a[i] *= 2.0;
    }
  }
}
)";
  const PipelineRun result = runPipeline(source);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.hasErrors());
}

TEST(RewriteEndToEnd, OutputIsStableUnderNoKernels) {
  const std::string source = "int f(int x) { return x + 1; }\n";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.output, source);
}

TEST(RewriteEndToEnd, ToolReportsTiming) {
  const std::string source = R"(void f(double *a, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] = i;
  }
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  EXPECT_GT(result.toolSeconds, 0.0);
  EXPECT_LT(result.toolSeconds, 5.0);
}

TEST(RewriteEndToEnd, ComplexityMetricsMatchStructure) {
  const std::string source = R"(void f(double *a, double *b, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] = i;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    b[i] = a[i];
  }
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.metrics.kernels, 2u);
  EXPECT_GE(result.metrics.mappedVariables, 2u);
  EXPECT_GT(result.metrics.offloadedLines, 0u);
  EXPECT_GT(result.metrics.possibleMappings, 0u);
}

TEST(RewriteEndToEnd, BodyEndGoldenOutputForLoopConditionalRead) {
  // Paper §IV-F: the host reads a device-written flag in the while
  // condition and the producing kernel runs inside the same loop, so the
  // `update from` belongs at the END of the loop body — checked against the
  // full golden text, brace placement and indentation included.
  const std::string source = R"(int stop[1];
double data[64];
int main() {
  stop[0] = 0;
  while (stop[0] == 0) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 64; ++i) {
      data[i] = data[i] + 1.0;
      if (data[i] > 8.0) stop[0] = 1;
    }
  }
  printf("%f\n", data[0]);
  return 0;
}
)";
  const std::string golden = R"(int stop[1];
double data[64];
int main() {
  stop[0] = 0;
  #pragma omp target data map(to: stop) map(tofrom: data)
  {
  while (stop[0] == 0) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 64; ++i) {
      data[i] = data[i] + 1.0;
      if (data[i] > 8.0) stop[0] = 1;
    }
    #pragma omp target update from(stop)
  }
  }
  printf("%f\n", data[0]);
  return 0;
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success) << result.output;
  EXPECT_EQ(result.output, golden);
  expectParseable(result.output);
}

TEST(RewriteEndToEnd, BodyBeginGoldenOutputForLoopConditionalWrite) {
  // Paper §IV-F, to-direction: the host writes a scalar inside the while
  // condition itself; the `update to` that republishes it to the device
  // belongs at the START of the loop body.
  const std::string source = R"(double a[8];
void f(int n) {
  int t = 0;
  while ((t = t + 1) < n) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 8; ++i) {
      a[i] += t;
    }
  }
}
)";
  const std::string golden = R"(double a[8];
void f(int n) {
  int t = 0;
  #pragma omp target data map(tofrom: a) map(alloc: t)
  {
  while ((t = t + 1) < n) {
    #pragma omp target update to(t)
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 8; ++i) {
      a[i] += t;
    }
  }
  }
}
)";
  // Disable firstprivate so the scalar keeps its region mapping + updates
  // (with firstprivate on, the update-to is correctly dropped instead).
  PipelineConfig config;
  config.planner.useFirstprivate = false;
  Session session("test.c", source, config);
  ASSERT_TRUE(session.run());
  EXPECT_EQ(session.rewrite(), golden);
  expectParseable(session.rewrite());
}

TEST(RewriteEndToEnd, BodyPlacementsSurviveIrSerialization) {
  // The §IV-F body placements depend on the anchor's body sub-range, which
  // the IR must carry: rewrite from a JSON-round-tripped IR and compare.
  const std::string source = R"(int stop[1];
double data[64];
int main() {
  stop[0] = 0;
  while (stop[0] == 0) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 64; ++i) {
      data[i] = data[i] + 1.0;
      if (data[i] > 8.0) stop[0] = 1;
    }
  }
  printf("%f\n", data[0]);
  return 0;
}
)";
  Session session("test.c", source);
  ASSERT_TRUE(session.run());
  const auto parsed = json::Value::parse(session.ir().toJson().dump());
  ASSERT_TRUE(parsed.has_value());
  const auto restored = ir::MappingIr::fromJson(*parsed);
  ASSERT_TRUE(restored.has_value());
  SourceManager buffer("test.c", source);
  EXPECT_EQ(applyMappingIr(buffer, *restored), session.rewrite());
}

TEST(RewriteEndToEnd, BackpropMotifUpdatePlacement) {
  const std::string source =
      R"(void f(double *partial_sum, double *hidden, int hid, int nb) {
  for (int epoch = 0; epoch < 10; ++epoch) {
    #pragma omp target teams distribute parallel for
    for (int k = 0; k < nb * hid; ++k) {
      partial_sum[k] = k * 0.5 + epoch;
    }
    for (int j = 1; j <= hid; j++) {
      double sum = 0.0;
      for (int k = 0; k < nb; k++) {
        sum += partial_sum[k * hid + j - 1];
      }
      hidden[j] = 1.0 / (1.0 + exp(-sum));
    }
  }
}
)";
  const PipelineRun result = runPipeline(source);
  ASSERT_TRUE(result.success);
  const auto updatePos =
      result.output.find("#pragma omp target update from(partial_sum");
  ASSERT_NE(updatePos, std::string::npos) << result.output;
  // Before the outer j loop, not inside the k loop.
  const auto jLoopPos = result.output.find("for (int j = 1");
  EXPECT_LT(updatePos, jLoopPos) << result.output;
  expectParseable(result.output);
}

} // namespace
} // namespace ompdart
