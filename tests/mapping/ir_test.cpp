// Mapping IR tests: map-type lattice laws, tgt_map_type flag encoding,
// JSON round-trips (handcrafted, property-generated, and lifted from real
// Sessions), and the self-containment guarantee — a serialized IR plus the
// original buffer reproduce the transformed source without any AST.
#include "driver/pipeline.hpp"
#include "mapping/ir.hpp"
#include "rewrite/rewriter.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ompdart {
namespace {

const ir::MapType kAllTypes[] = {ir::MapType::Alloc,   ir::MapType::To,
                                 ir::MapType::From,    ir::MapType::ToFrom,
                                 ir::MapType::Release, ir::MapType::Delete};
const ir::MapType kMovementTypes[] = {ir::MapType::Alloc, ir::MapType::To,
                                      ir::MapType::From, ir::MapType::ToFrom};

TEST(MapTypeLatticeTest, JoinIsCommutativeIdempotentAndMonotone) {
  for (const ir::MapType a : kMovementTypes) {
    EXPECT_EQ(ir::joinMapType(a, a), a);
    for (const ir::MapType b : kMovementTypes) {
      EXPECT_EQ(ir::joinMapType(a, b), ir::joinMapType(b, a));
      // The join is an upper bound of both operands.
      EXPECT_TRUE(ir::mapTypeLE(a, ir::joinMapType(a, b)));
      EXPECT_TRUE(ir::mapTypeLE(b, ir::joinMapType(a, b)));
    }
  }
}

TEST(MapTypeLatticeTest, OrderMatchesTheMovementDiamond) {
  EXPECT_TRUE(ir::mapTypeLE(ir::MapType::Alloc, ir::MapType::To));
  EXPECT_TRUE(ir::mapTypeLE(ir::MapType::Alloc, ir::MapType::From));
  EXPECT_TRUE(ir::mapTypeLE(ir::MapType::To, ir::MapType::ToFrom));
  EXPECT_TRUE(ir::mapTypeLE(ir::MapType::From, ir::MapType::ToFrom));
  EXPECT_FALSE(ir::mapTypeLE(ir::MapType::To, ir::MapType::From));
  EXPECT_FALSE(ir::mapTypeLE(ir::MapType::ToFrom, ir::MapType::To));
  EXPECT_EQ(ir::joinMapType(ir::MapType::To, ir::MapType::From),
            ir::MapType::ToFrom);
  EXPECT_EQ(ir::joinMapType(ir::MapType::Alloc, ir::MapType::From),
            ir::MapType::From);
}

TEST(MapTypeLatticeTest, UnmappingTypesStayOutsideTheMovementOrder) {
  EXPECT_TRUE(ir::mapTypeLE(ir::MapType::Delete, ir::MapType::Delete));
  EXPECT_FALSE(ir::mapTypeLE(ir::MapType::Delete, ir::MapType::ToFrom));
  EXPECT_FALSE(ir::mapTypeLE(ir::MapType::To, ir::MapType::Release));
  // Joining with an unmapping type keeps the movement operand.
  EXPECT_EQ(ir::joinMapType(ir::MapType::Release, ir::MapType::To),
            ir::MapType::To);
  EXPECT_EQ(ir::joinMapType(ir::MapType::From, ir::MapType::Delete),
            ir::MapType::From);
}

TEST(MapTypeLatticeTest, TgtMapTypeFlagsMatchLibomptarget) {
  // The bit values of libomptarget's tgt_map_type (omptarget.h).
  EXPECT_EQ(ir::tgtMapTypeFlags(ir::MapType::Alloc), 0x000u);
  EXPECT_EQ(ir::tgtMapTypeFlags(ir::MapType::To), 0x001u);
  EXPECT_EQ(ir::tgtMapTypeFlags(ir::MapType::From), 0x002u);
  EXPECT_EQ(ir::tgtMapTypeFlags(ir::MapType::ToFrom), 0x003u);
  EXPECT_EQ(ir::tgtMapTypeFlags(ir::MapType::Delete), 0x008u);

  ir::MapModifiers always;
  always.always = true;
  EXPECT_EQ(ir::tgtMapTypeFlags(ir::MapType::To, always), 0x005u);
  ir::MapModifiers present;
  present.present = true;
  EXPECT_EQ(ir::tgtMapTypeFlags(ir::MapType::From, present), 0x1002u);
  ir::MapModifiers close;
  close.close = true;
  EXPECT_EQ(ir::tgtMapTypeFlags(ir::MapType::ToFrom, close), 0x403u);
}

TEST(IrNamesTest, EnumNamesRoundTrip) {
  for (const ir::MapType type : kAllTypes) {
    const auto parsed = ir::mapTypeFromName(ir::mapTypeName(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  for (const ir::UpdatePlacement placement :
       {ir::UpdatePlacement::Before, ir::UpdatePlacement::After,
        ir::UpdatePlacement::BodyBegin, ir::UpdatePlacement::BodyEnd}) {
    const auto parsed =
        ir::updatePlacementFromName(ir::updatePlacementName(placement));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, placement);
  }
  EXPECT_FALSE(ir::mapTypeFromName("sideways").has_value());
  EXPECT_FALSE(ir::updateDirectionFromName("diagonal").has_value());
}

TEST(IrNamesTest, ModifierSpellings) {
  ir::MapModifiers modifiers;
  EXPECT_EQ(ir::mapTypeSpellingWithModifiers(ir::MapType::To, modifiers),
            "to");
  modifiers.always = true;
  EXPECT_EQ(ir::mapTypeSpellingWithModifiers(ir::MapType::To, modifiers),
            "always, to");
  modifiers.present = true;
  EXPECT_EQ(
      ir::mapTypeSpellingWithModifiers(ir::MapType::ToFrom, modifiers),
      "always, present, tofrom");
}

// --- JSON round-trips ---

ir::MappingIr handcraftedIr() {
  ir::MappingIr out;
  out.file = "crafted.c";
  ir::Symbol a;
  a.id = 0;
  a.name = "a";
  a.declOffset = 12;
  a.declLine = 2;
  a.isParam = true;
  a.elemBytes = 8;
  out.symbols.push_back(a);
  ir::Symbol n;
  n.id = 1;
  n.name = "n";
  n.declOffset = 24;
  n.declLine = 2;
  n.isGlobal = true;
  n.elemBytes = 4;
  out.symbols.push_back(n);

  ir::Region region;
  region.function = "f";
  region.start.beginOffset = 40;
  region.start.endOffset = 200;
  region.start.line = 4;
  region.start.endLine = 10;
  region.end = region.start;
  region.entryCount = 30;

  ir::MapItem map;
  map.symbol = 0;
  map.type = ir::MapType::ToFrom;
  map.modifiers.always = true;
  map.modifiers.present = true;
  map.item = "a[0:n]";
  map.extent = ir::Extent::symbolic("n");
  map.approxBytes = 800;
  region.maps.push_back(map);

  ir::UpdateItem update;
  update.symbol = 0;
  update.direction = ir::UpdateDirection::From;
  update.placement = ir::UpdatePlacement::BodyEnd;
  update.hoisted = true;
  update.item = "a[0:n]";
  update.extent = ir::Extent::constant(100);
  update.approxBytes = 800;
  update.executions = 16;
  update.anchor.beginOffset = 60;
  update.anchor.endOffset = 180;
  update.anchor.line = 5;
  update.anchor.endLine = 9;
  update.anchor.hasBody = true;
  update.anchor.bodyIsCompound = true;
  update.anchor.bodyBeginOffset = 80;
  update.anchor.bodyEndOffset = 170;
  region.updates.push_back(update);

  ir::FirstprivateItem fp;
  fp.symbol = 1;
  fp.var = "n";
  fp.kernelLine = 6;
  fp.kernelPragmaEndOffset = 120;
  region.firstprivates.push_back(fp);

  out.regions.push_back(region);
  return out;
}

TEST(IrJsonTest, HandcraftedRoundTripIsExact) {
  const ir::MappingIr original = handcraftedIr();
  const std::string serialized = original.toJson().dump(/*pretty=*/true);
  std::string parseError;
  const auto parsed = json::Value::parse(serialized, &parseError);
  ASSERT_TRUE(parsed.has_value()) << parseError;
  std::string irError;
  const auto restored = ir::MappingIr::fromJson(*parsed, &irError);
  ASSERT_TRUE(restored.has_value()) << irError;
  EXPECT_EQ(*restored, original);
}

TEST(IrJsonTest, FingerprintTracksContent) {
  const ir::MappingIr original = handcraftedIr();
  ir::MappingIr copy = handcraftedIr();
  EXPECT_EQ(original.fingerprint(), copy.fingerprint());
  EXPECT_EQ(original.fingerprint().size(), 32u);

  copy.regions.front().entryCount += 1;
  EXPECT_NE(original.fingerprint(), copy.fingerprint());

  ir::MappingIr viaJson =
      *ir::MappingIr::fromJson(original.toJson());
  EXPECT_EQ(viaJson.fingerprint(), original.fingerprint());
}

TEST(IrJsonTest, RejectsUnknownEnumSpellings) {
  json::Value doc = json::Value::object();
  json::Value regions = json::Value::array();
  json::Value region = json::Value::object();
  json::Value maps = json::Value::array();
  json::Value map = json::Value::object();
  map.set("type", "teleport");
  maps.push(std::move(map));
  region.set("maps", std::move(maps));
  regions.push(std::move(region));
  doc.set("regions", std::move(regions));
  std::string error;
  EXPECT_FALSE(ir::MappingIr::fromJson(doc, &error).has_value());
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(ir::MappingIr::fromJson(json::Value(7), &error).has_value());
}

/// Property: random IRs survive serialize -> parse -> deserialize exactly.
TEST(IrJsonTest, PropertyRandomIrsRoundTrip) {
  std::mt19937 rng(20240715);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (int seed = 0; seed < 50; ++seed) {
    ir::MappingIr original;
    original.file = "prop" + std::to_string(seed) + ".c";
    const int symbolCount = pick(1, 5);
    for (int s = 0; s < symbolCount; ++s) {
      ir::Symbol sym;
      sym.id = static_cast<ir::SymbolId>(s);
      sym.name = "v" + std::to_string(s);
      sym.declOffset = static_cast<std::size_t>(pick(0, 5000));
      sym.declLine = static_cast<unsigned>(pick(1, 200));
      sym.isGlobal = pick(0, 1) == 1;
      sym.isParam = !sym.isGlobal && pick(0, 1) == 1;
      sym.elemBytes = static_cast<std::uint64_t>(pick(1, 16));
      original.symbols.push_back(sym);
    }
    const int regionCount = pick(1, 3);
    for (int r = 0; r < regionCount; ++r) {
      ir::Region region;
      region.function = "fn" + std::to_string(r);
      region.start.beginOffset = static_cast<std::size_t>(pick(0, 9000));
      region.start.endOffset =
          region.start.beginOffset + static_cast<std::size_t>(pick(1, 500));
      region.start.line = static_cast<unsigned>(pick(1, 300));
      region.start.endLine = region.start.line + pick(0, 30);
      region.end = region.start;
      region.appendsToKernel = pick(0, 1) == 1;
      if (region.appendsToKernel)
        region.soleKernelPragmaEndOffset =
            static_cast<std::size_t>(pick(0, 9000));
      region.entryCount = static_cast<std::uint64_t>(pick(1, 1000));
      const int mapCount = pick(0, 4);
      for (int m = 0; m < mapCount; ++m) {
        ir::MapItem map;
        map.symbol = static_cast<ir::SymbolId>(pick(0, symbolCount - 1));
        map.type = kAllTypes[pick(0, 5)];
        map.modifiers.always = pick(0, 1) == 1;
        map.modifiers.present = pick(0, 1) == 1;
        map.modifiers.close = pick(0, 1) == 1;
        map.item = "v" + std::to_string(map.symbol) + "[0:k]";
        switch (pick(0, 2)) {
        case 0:
          map.extent = ir::Extent::whole();
          break;
        case 1:
          map.extent =
              ir::Extent::constant(static_cast<std::uint64_t>(pick(0, 4096)));
          break;
        default:
          map.extent = ir::Extent::symbolic("k" + std::to_string(m));
          break;
        }
        map.approxBytes = static_cast<std::uint64_t>(pick(0, 100000));
        region.maps.push_back(map);
      }
      const int updateCount = pick(0, 3);
      for (int u = 0; u < updateCount; ++u) {
        ir::UpdateItem update;
        update.symbol = static_cast<ir::SymbolId>(pick(0, symbolCount - 1));
        update.direction = pick(0, 1) == 1 ? ir::UpdateDirection::To
                                           : ir::UpdateDirection::From;
        const ir::UpdatePlacement placements[] = {
            ir::UpdatePlacement::Before, ir::UpdatePlacement::After,
            ir::UpdatePlacement::BodyBegin, ir::UpdatePlacement::BodyEnd};
        update.placement = placements[pick(0, 3)];
        update.hoisted = pick(0, 1) == 1;
        update.item = "v" + std::to_string(update.symbol);
        update.approxBytes = static_cast<std::uint64_t>(pick(0, 100000));
        update.executions = static_cast<std::uint64_t>(pick(1, 100000));
        update.anchor.beginOffset = static_cast<std::size_t>(pick(0, 9000));
        update.anchor.endOffset =
            update.anchor.beginOffset + static_cast<std::size_t>(pick(1, 300));
        update.anchor.line = static_cast<unsigned>(pick(1, 300));
        update.anchor.endLine = update.anchor.line + pick(0, 10);
        update.anchor.hasBody = pick(0, 1) == 1;
        if (update.anchor.hasBody) {
          update.anchor.bodyIsCompound = pick(0, 1) == 1;
          update.anchor.bodyBeginOffset =
              update.anchor.beginOffset + static_cast<std::size_t>(pick(0, 50));
          update.anchor.bodyEndOffset =
              update.anchor.endOffset - static_cast<std::size_t>(pick(0, 1));
        }
        region.updates.push_back(update);
      }
      const int fpCount = pick(0, 2);
      for (int f = 0; f < fpCount; ++f) {
        ir::FirstprivateItem fp;
        fp.symbol = static_cast<ir::SymbolId>(pick(0, symbolCount - 1));
        fp.var = "v" + std::to_string(fp.symbol);
        fp.kernelLine = static_cast<unsigned>(pick(1, 300));
        fp.kernelPragmaEndOffset = static_cast<std::size_t>(pick(0, 9000));
        region.firstprivates.push_back(fp);
      }
      original.regions.push_back(std::move(region));
    }

    const auto parsed = json::Value::parse(original.toJson().dump());
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed;
    const auto restored = ir::MappingIr::fromJson(*parsed);
    ASSERT_TRUE(restored.has_value()) << "seed " << seed;
    EXPECT_EQ(*restored, original) << "seed " << seed;
  }
}

// --- Lifting from real Sessions ---

const char *const kSaxpySource =
    R"(void saxpy(double *x, double *y, int n) {
  double a = 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; ++i) {
      y[i] = a * x[i] + y[i];
    }
  }
}
)";

TEST(IrLiftTest, SessionIrMatchesThePlan) {
  Session session("saxpy.c", kSaxpySource);
  ASSERT_TRUE(session.run());
  const ir::MappingIr &ir = session.ir();
  const MappingPlan &plan = session.plan();

  EXPECT_EQ(ir.file, "saxpy.c");
  ASSERT_EQ(ir.regions.size(), plan.regions.size());
  const ir::Region *region = ir.regionFor("saxpy");
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->maps.size(), plan.regions.front().maps.size());
  EXPECT_EQ(ir.totalUpdates(), plan.totalUpdates());

  // Every referenced symbol resolves in the symbol table, by id and name.
  for (const ir::MapItem &map : region->maps) {
    const ir::Symbol *symbol = ir.symbol(map.symbol);
    ASSERT_NE(symbol, nullptr);
    EXPECT_NE(ir.findSymbol(symbol->name), nullptr);
  }
  // x and y are pointer params with symbolic extent "n".
  const ir::Symbol *x = ir.findSymbol("x");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->isParam);
  EXPECT_EQ(x->elemBytes, 8u);
}

TEST(IrLiftTest, SessionIrJsonRoundTrips) {
  Session session("saxpy.c", kSaxpySource);
  ASSERT_TRUE(session.run());
  const auto parsed = json::Value::parse(session.ir().toJson().dump(true));
  ASSERT_TRUE(parsed.has_value());
  const auto restored = ir::MappingIr::fromJson(*parsed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, session.ir());
}

TEST(IrSelfContainmentTest, SerializedIrReproducesRewriteWithoutAst) {
  // The whole point of the IR: serialize the plan, drop the session (AST
  // and all), and reproduce the transformed source from the IR + the
  // original buffer alone.
  std::string serialized;
  std::string viaSession;
  {
    Session session("saxpy.c", kSaxpySource);
    ASSERT_TRUE(session.run());
    serialized = session.ir().toJson().dump();
    viaSession = session.rewrite();
  }
  const auto parsed = json::Value::parse(serialized);
  ASSERT_TRUE(parsed.has_value());
  const auto restored = ir::MappingIr::fromJson(*parsed);
  ASSERT_TRUE(restored.has_value());
  SourceManager buffer("saxpy.c", kSaxpySource);
  EXPECT_EQ(applyMappingIr(buffer, *restored), viaSession);
}

TEST(IrRewriteTest, ModifiersSpellInMapClauses) {
  // The rewriter spells modifier sets; modifier-free items keep the classic
  // clause shape and lead the group order.
  ir::MappingIr ir;
  ir.file = "mods.c";
  const std::string source = "void f(void) {\n  int x;\n  x = 1;\n}\n";
  ir::Region region;
  region.function = "f";
  region.start.beginOffset = source.find("x = 1");
  region.start.endOffset = region.start.beginOffset + 5;
  region.start.line = 3;
  region.start.endLine = 3;
  region.end = region.start;
  ir::MapItem plain;
  plain.symbol = 0;
  plain.type = ir::MapType::To;
  plain.item = "x";
  region.maps.push_back(plain);
  ir::MapItem alwaysTo;
  alwaysTo.symbol = 0;
  alwaysTo.type = ir::MapType::To;
  alwaysTo.modifiers.always = true;
  alwaysTo.item = "y";
  region.maps.push_back(alwaysTo);
  ir.regions.push_back(region);

  SourceManager buffer("mods.c", source);
  const std::string out = applyMappingIr(buffer, ir);
  const auto plainPos = out.find("map(to: x)");
  const auto modifiedPos = out.find("map(always, to: y)");
  ASSERT_NE(plainPos, std::string::npos) << out;
  ASSERT_NE(modifiedPos, std::string::npos) << out;
  EXPECT_LT(plainPos, modifiedPos);
}

} // namespace
} // namespace ompdart
