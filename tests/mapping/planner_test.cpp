#include "../common/test_util.hpp"

#include "analysis/interproc.hpp"
#include "mapping/planner.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

struct PlanFixture {
  test::ParsedUnit parsed;
  InterproceduralResult interproc;
  DiagnosticEngine planDiags;
  MappingPlan plan;

  explicit PlanFixture(const std::string &source,
                       PlannerOptions options = {})
      : parsed(test::parse(source)) {
    EXPECT_TRUE(parsed.ok) << parsed.diags->summary();
    interproc = runInterproceduralAnalysis(parsed.unit());
    plan = planMappings(parsed.unit(), interproc, planDiags, options);
  }

  const RegionPlan *region(const std::string &fnName = "f") const {
    return plan.regionFor(parsed.function(fnName));
  }
  const MapSpec *mapOf(const std::string &varName,
                       const std::string &fnName = "f") const {
    const RegionPlan *r = region(fnName);
    if (r == nullptr)
      return nullptr;
    for (const MapSpec &spec : r->maps)
      if (spec.var->name() == varName)
        return &spec;
    return nullptr;
  }
};

// --- Paper Listing 1: kernel nested inside a loop ---
TEST(PlannerTest, ListingOneRegionHoistedOutsideLoop) {
  PlanFixture fx(R"(
void f(int *a, int n) {
  for (int i = 0; i < n; ++i) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < n; ++j) {
      a[j] += j;
    }
  }
}
)");
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  // Region anchors at the outer loop, not the kernel.
  EXPECT_EQ(region->startStmt->kind(), StmtKind::For);
  EXPECT_EQ(region->startStmt, region->endStmt);
  EXPECT_FALSE(region->appendsToKernel());
  const MapSpec *a = fx.mapOf("a");
  ASSERT_NE(a, nullptr);
  // Device read-modify-writes + escaping pointer param: tofrom.
  EXPECT_EQ(a->mapType, OmpMapType::ToFrom);
  // No per-iteration updates are needed: the host never touches `a` inside.
  EXPECT_TRUE(region->updates.empty());
}

// --- Paper Listing 2: redundant transfer between consecutive kernels ---
TEST(PlannerTest, ListingTwoSingleRegionSpansBothKernels) {
  PlanFixture fx(R"(
void f(int *a, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] += i;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] *= i;
  }
}
)");
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  EXPECT_NE(region->startStmt, region->endStmt);
  // One mapping for `a`, no updates between the kernels.
  ASSERT_EQ(region->maps.size(), 1u);
  EXPECT_TRUE(region->updates.empty());
}

// --- Paper Listing 3 (corrected): update from instead of inner map ---
TEST(PlannerTest, ListingThreeGetsUpdateFrom) {
  PlanFixture fx(R"(
void f(int *a, int n, int m) {
  int sum = 0;
  for (int i = 0; i < m; ++i) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < n; ++j) {
      a[j] += j;
    }
    for (int j = 0; j < n; ++j) {
      sum += a[j];
    }
  }
  a[0] = sum;
}
)");
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  // One update-from for `a`, hoisted before the host summation loop (the j
  // loop indexes it) but inside the outer i loop (producer kernel inside).
  ASSERT_EQ(region->updates.size(), 1u);
  const UpdateInsertion &update = region->updates[0];
  EXPECT_EQ(update.direction, UpdateDirection::From);
  EXPECT_EQ(update.var->name(), "a");
  EXPECT_TRUE(update.hoisted);
  ASSERT_EQ(update.anchor->kind(), StmtKind::For);
  // The anchor loop must be *inside* the outer loop (not the outer loop).
  EXPECT_NE(update.anchor, region->startStmt);
}

// --- firstprivate for read-only scalars (paper §IV-D) ---
TEST(PlannerTest, ReadOnlyScalarBecomesFirstprivate) {
  PlanFixture fx(R"(
void f(double *a, int n) {
  double factor = 2.5;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] *= factor;
  }
}
)");
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(fx.mapOf("factor"), nullptr);
  // Both read-only scalars (factor and the loop bound n) privatize.
  bool factorPrivatized = false;
  for (const FirstprivateInsertion &fp : region->firstprivates)
    factorPrivatized |= fp.var->name() == "factor";
  EXPECT_TRUE(factorPrivatized);
  EXPECT_EQ(fx.mapOf("n"), nullptr);
}

TEST(PlannerTest, FirstprivateDisabledByOption) {
  PlannerOptions options;
  options.useFirstprivate = false;
  PlanFixture fx(R"(
void f(double *a, int n) {
  double factor = 2.5;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] *= factor;
  }
}
)",
                 options);
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  EXPECT_TRUE(region->firstprivates.empty());
  const MapSpec *factor = fx.mapOf("factor");
  ASSERT_NE(factor, nullptr);
  EXPECT_EQ(factor->mapType, OmpMapType::To);
}

TEST(PlannerTest, DeviceWrittenScalarNotFirstprivate) {
  PlanFixture fx(R"(
void f(double *a, int n) {
  double sum = 0.0;
  #pragma omp target teams distribute parallel for reduction(+: sum)
  for (int i = 0; i < n; ++i) {
    sum += a[i];
  }
  a[0] = sum;
}
)");
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  const MapSpec *sum = fx.mapOf("sum");
  ASSERT_NE(sum, nullptr);
  // Written on device and read on host after: tofrom.
  EXPECT_EQ(sum->mapType, OmpMapType::ToFrom);
  for (const FirstprivateInsertion &fp : region->firstprivates)
    EXPECT_NE(fp.var->name(), "sum");
}

// --- map-type decisions ---
TEST(PlannerTest, FullCoverageWriteGetsFromOnly) {
  PlanFixture fx(R"(
void f(double *out, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    out[i] = i * 2.0;
  }
}
)");
  // out's malloc extent is unknown but it is fully written by the kernel
  // loop bound `n`; device never reads it -> map(from:), not tofrom.
  const MapSpec *out = fx.mapOf("out");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->mapType, OmpMapType::From);
}

TEST(PlannerTest, ReadOnlyArrayGetsToOnly) {
  PlanFixture fx(R"(
void f(const double *in, double *out, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    out[i] = in[i] * 2.0;
  }
}
)");
  const MapSpec *in = fx.mapOf("in");
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->mapType, OmpMapType::To);
}

TEST(PlannerTest, ScratchArrayGetsAlloc) {
  PlanFixture fx(R"(
void f(double *out, int n) {
  double scratch[256];
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 256; ++i) {
    scratch[i] = i;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 256; ++i) {
    out[i] = scratch[i] + 1.0;
  }
}
)");
  // scratch is written (full coverage) then read, only on the device, and
  // never read on the host afterwards: alloc.
  const MapSpec *scratch = fx.mapOf("scratch");
  ASSERT_NE(scratch, nullptr);
  EXPECT_EQ(scratch->mapType, OmpMapType::Alloc);
}

TEST(PlannerTest, PartialDeviceWriteNeedsTo) {
  PlanFixture fx(R"(
void f(double *a, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n / 2; ++i) {
    a[i] = i;
  }
  a[0] = a[n - 1];
}
)");
  const MapSpec *a = fx.mapOf("a");
  ASSERT_NE(a, nullptr);
  // Only half the array is written: the rest must be copied in so the
  // copy-out does not clobber valid host data.
  EXPECT_EQ(a->mapType, OmpMapType::ToFrom);
}

// --- update-to for host writes between kernels ---
TEST(PlannerTest, HostWriteBetweenKernelsGetsUpdateTo) {
  PlanFixture fx(R"(
void f(double *a, double *b, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    b[i] = a[i] * 2.0;
  }
  for (int i = 0; i < n; ++i) {
    a[i] = b[i] + 1.0;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    b[i] = a[i] * 3.0;
  }
}
)");
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  bool sawUpdateToA = false;
  bool sawUpdateFromB = false;
  for (const UpdateInsertion &update : region->updates) {
    if (update.var->name() == "a" &&
        update.direction == UpdateDirection::To)
      sawUpdateToA = true;
    if (update.var->name() == "b" &&
        update.direction == UpdateDirection::From)
      sawUpdateFromB = true;
  }
  EXPECT_TRUE(sawUpdateToA);
  EXPECT_TRUE(sawUpdateFromB);
}

// --- declaration-before-region validation ---
TEST(PlannerTest, DeclarationInsideRegionIsError) {
  PlanFixture fx(R"(
void f(double *a, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] = i;
  }
  double mid[64];
  for (int i = 0; i < 64; ++i) mid[i] = a[i];
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 64; ++i) {
    a[i] = mid[i];
  }
}
)");
  EXPECT_TRUE(fx.planDiags.hasErrors());
  bool mentioned = false;
  for (const Diagnostic &diag : fx.planDiags.diagnostics())
    mentioned |= diag.message.find("mid") != std::string::npos;
  EXPECT_TRUE(mentioned);
}

// --- sections ---
TEST(PlannerTest, PointerSectionUsesMallocExtent) {
  PlanFixture fx(R"(
void f(int n) {
  double *a = (double *)malloc(n * sizeof(double));
  for (int i = 0; i < n; ++i) a[i] = i;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] *= 2.0;
  }
  free(a);
}
)");
  const MapSpec *a = fx.mapOf("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->section, "a[0:n]");
}

TEST(PlannerTest, UnknownPointerExtentWarns) {
  PlanFixture fx(R"(
void f(double *a, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] += i;
  }
}
)");
  // Extent of `a` is inferable from the kernel loop? No: section falls back
  // to a warning with a[0:0] OR uses bounds -> accept either but require a
  // diagnostic-free plan to still exist.
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
}

TEST(PlannerTest, GuoFilteringShrinksSection) {
  PlanFixture fx(R"(
void f() {
  double a[1024];
  for (int i = 0; i < 100; ++i) a[i] = i;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 100; ++i) {
    a[i] *= 2.0;
  }
  double x = a[5];
  a[0] = x;
}
)");
  const MapSpec *a = fx.mapOf("a");
  ASSERT_NE(a, nullptr);
  // Device only touches a[0:100) of the 1024-element array.
  EXPECT_EQ(a->section, "a[0:100]");
  EXPECT_EQ(a->approxBytes, 100u * 8u);
}

// --- region-extent ablation ---
TEST(PlannerTest, PerKernelRegionsWhenExtensionDisabled) {
  PlannerOptions options;
  options.extendRegionOverLoops = false;
  PlanFixture fx(R"(
void f(int *a, int n) {
  for (int i = 0; i < n; ++i) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < n; ++j) {
      a[j] += j;
    }
  }
}
)",
                 options);
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  // Region collapses onto the kernel itself.
  EXPECT_TRUE(region->appendsToKernel());
}

// --- interprocedural motif: kernel in callee ---
TEST(PlannerTest, KernelInCalleeStillPlanned) {
  PlanFixture fx(R"(
void stage(double *a, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) {
    a[i] *= 2.0;
  }
}
void f(double *data, int n) {
  for (int t = 0; t < 4; ++t) {
    stage(data, n);
  }
}
)");
  // The callee containing the kernel gets its own region.
  const RegionPlan *stage = fx.region("stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_TRUE(stage->appendsToKernel());
}

TEST(PlannerTest, NoKernelsNoRegion) {
  PlanFixture fx("void f(int *a) { a[0] = 1; }");
  EXPECT_EQ(fx.region(), nullptr);
  EXPECT_TRUE(fx.plan.regions.empty());
}

// --- backprop stale-data motif: update hoisting in the planner ---
TEST(PlannerTest, BackpropUpdateFromHoistedBeforeNestedLoops) {
  PlanFixture fx(R"(
void f(double *partial_sum, double *hidden, int hid, int num_blocks) {
  for (int epoch = 0; epoch < 10; ++epoch) {
    #pragma omp target teams distribute parallel for
    for (int k = 0; k < num_blocks * hid; ++k) {
      partial_sum[k] = k * 0.5 + epoch;
    }
    for (int j = 1; j <= hid; j++) {
      double sum = 0.0;
      for (int k = 0; k < num_blocks; k++) {
        sum += partial_sum[k * hid + j - 1];
      }
      hidden[j] = 1.0 / (1.0 + exp(-sum));
    }
  }
}
)");
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  const UpdateInsertion *fromUpdate = nullptr;
  for (const UpdateInsertion &update : region->updates)
    if (update.var->name() == "partial_sum" &&
        update.direction == UpdateDirection::From)
      fromUpdate = &update;
  ASSERT_NE(fromUpdate, nullptr);
  // Must be hoisted to the outermost (j) loop, not sit in the k loop.
  EXPECT_TRUE(fromUpdate->hoisted);
  ASSERT_EQ(fromUpdate->anchor->kind(), StmtKind::For);
  // The anchor must be the j loop: its init declares `j`.
  const auto *anchorLoop = static_cast<const ForStmt *>(fromUpdate->anchor);
  const auto *init = dynamic_cast<const DeclStmt *>(anchorLoop->init());
  ASSERT_NE(init, nullptr);
  EXPECT_EQ(init->decls()[0]->name(), "j");
}

TEST(PlannerTest, NaivePlacementWhenHoistingDisabled) {
  PlannerOptions options;
  options.hoistUpdates = false;
  PlanFixture fx(R"(
void f(double *partial_sum, double *hidden, int hid, int num_blocks) {
  for (int epoch = 0; epoch < 10; ++epoch) {
    #pragma omp target teams distribute parallel for
    for (int k = 0; k < num_blocks * hid; ++k) {
      partial_sum[k] = k * 0.5 + epoch;
    }
    for (int j = 1; j <= hid; j++) {
      double sum = 0.0;
      for (int k = 0; k < num_blocks; k++) {
        sum += partial_sum[k * hid + j - 1];
      }
      hidden[j] = 1.0 / (1.0 + exp(-sum));
    }
  }
}
)",
                 options);
  const RegionPlan *region = fx.region();
  ASSERT_NE(region, nullptr);
  const UpdateInsertion *fromUpdate = nullptr;
  for (const UpdateInsertion &update : region->updates)
    if (update.var->name() == "partial_sum")
      fromUpdate = &update;
  ASSERT_NE(fromUpdate, nullptr);
  EXPECT_FALSE(fromUpdate->hoisted);
  EXPECT_NE(fromUpdate->anchor->kind(), StmtKind::For);
}

} // namespace
} // namespace ompdart
