// SourceRewriteBackend edge cases the generator + oracle exposed:
//   - zero-map regions must not emit an (invalid) empty `target data`
//     directive while still emitting their updates and firstprivates,
//   - directives whose insertion points share one source line must nest
//     structurally (update inside body braces inside region braces),
//   - BodyBegin/BodyEnd updates at loop-body boundaries must wrap
//     braceless bodies in braces instead of dropping the directive outside
//     the loop (or displacing the body).
#include "mapping/backend.hpp"

#include "common/test_util.hpp"
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "rewrite/rewriter.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ompdart {
namespace {

/// Symbol + whole-object map helper for hand-built IRs.
ir::Symbol makeSymbol(ir::SymbolId id, const std::string &name,
                      std::size_t declOffset) {
  ir::Symbol symbol;
  symbol.id = id;
  symbol.name = name;
  symbol.declOffset = declOffset;
  symbol.isGlobal = true;
  symbol.elemBytes = 8;
  return symbol;
}

TEST(RewriteEdgeTest, ZeroMapRegionEmitsNoDataDirective) {
  // A region whose maps are empty (everything became firstprivate or
  // updates) must not render `#pragma omp target data` with no clauses —
  // that is not valid OpenMP. Updates and firstprivates still render.
  const std::string source = R"(
double a[8];

int main() {
  a[0] = 1.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 8; ++i) {
    a[i] = a[i] + 1.0;
  }
  printf("%.1f\n", a[0]);
  return 0;
}
)";
  SourceManager sm("zero.c", source);

  ir::MappingIr ir;
  ir.file = "zero.c";
  ir.symbols.push_back(makeSymbol(0, "a", source.find("double a[8]")));

  ir::Region region;
  region.function = "main";
  const std::size_t hostWrite = source.find("a[0] = 1.0;");
  const std::size_t kernelEnd = source.find("printf");
  region.start.beginOffset = hostWrite;
  region.start.line = 5;
  region.end.endOffset = kernelEnd;
  region.end.endLine = 10;
  // No maps at all; one update + one firstprivate.
  ir::UpdateItem update;
  update.symbol = 0;
  update.direction = ir::UpdateDirection::To;
  update.placement = ir::UpdatePlacement::After;
  update.item = "a";
  update.anchor.beginOffset = hostWrite;
  update.anchor.endOffset = hostWrite + std::string("a[0] = 1.0;").size();
  region.updates.push_back(update);
  ir::FirstprivateItem fp;
  fp.symbol = 0;
  fp.var = "n_like";
  fp.kernelPragmaEndOffset =
      source.find("parallel for") + std::string("parallel for").size();
  region.firstprivates.push_back(fp);
  ir.regions.push_back(region);

  const std::string out = applyMappingIr(sm, ir);
  EXPECT_EQ(out.find("#pragma omp target data"), std::string::npos) << out;
  EXPECT_NE(out.find("#pragma omp target update to(a)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("firstprivate(n_like)"), std::string::npos) << out;
}

TEST(RewriteEdgeTest, BracelessWhileBodyGainsBracesAroundBodyEndUpdate) {
  // Full pipeline on a braceless while body: the BodyEnd update must land
  // inside new braces, inside the region — and the transformed program
  // must behave identically.
  const std::string source = R"(
int stop[1];
double a[8];

int main() {
  stop[0] = 0;
  for (int i = 0; i < 8; ++i) {
    a[i] = 0.5;
  }
  int t = 0;
  while (stop[0] == 0 && t < 20)
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 8; ++i) {
      a[i] = a[i] + 1.0;
      if (a[i] > 3.0) {
        stop[0] = 1;
      }
      t = t + 1;
    }
  double sum = 0.0;
  for (int i = 0; i < 8; ++i) {
    sum += a[i];
  }
  printf("%.6f %d\n", sum, stop[0]);
  return 0;
}
)";
  Session session("braceless.c", source);
  ASSERT_TRUE(session.run());
  const std::string out = session.rewrite();
  SCOPED_TRACE(out);

  // Structural nesting on the shared line: update, then body close, then
  // region close.
  const std::size_t update = out.find("#pragma omp target update from(");
  ASSERT_NE(update, std::string::npos);
  const std::size_t bodyClose = out.find("}", update);
  ASSERT_NE(bodyClose, std::string::npos);
  const std::size_t regionClose = out.find("}", bodyClose + 1);
  ASSERT_NE(regionClose, std::string::npos);
  EXPECT_LT(update, bodyClose);
  EXPECT_LT(bodyClose, regionClose);
  // An opening brace now precedes the kernel pragma inside the while.
  const std::size_t whilePos = out.find("while (stop[0]");
  const std::size_t bodyOpen = out.find("{", whilePos);
  const std::size_t pragma = out.find("#pragma omp target teams", whilePos);
  EXPECT_LT(bodyOpen, pragma);

  // The transformed program re-parses and reproduces the baseline output.
  const auto parsed = test::parse(out, "braceless_out.c");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  const auto baseline = interp::runProgram(source);
  const auto transformed = interp::runProgram(out);
  ASSERT_TRUE(baseline.ok) << baseline.error;
  ASSERT_TRUE(transformed.ok) << transformed.error;
  EXPECT_EQ(baseline.output, transformed.output);
  EXPECT_LE(transformed.ledger.totalBytes(), baseline.ledger.totalBytes());
}

TEST(RewriteEdgeTest, BracelessForBodyGainsBracesAroundBodyBeginUpdate) {
  // Hand-built IR: a BodyBegin update on a for loop whose body is a single
  // statement. The rewriter must add braces so the directive does not
  // *become* the loop body.
  const std::string source = R"(
double a[4];

int main() {
  a[0] = 1.0;
  for (int i = 0; i < 3; ++i)
    a[0] = a[0] * 2.0;
  printf("%.1f\n", a[0]);
  return 0;
}
)";
  SourceManager sm("bodybegin.c", source);

  ir::MappingIr ir;
  ir.file = "bodybegin.c";
  ir.symbols.push_back(makeSymbol(0, "a", source.find("double a[4]")));
  ir::Region region;
  region.function = "main";
  const std::size_t loopAt = source.find("for (int i = 0; i < 3");
  const std::size_t bodyAt = source.find("a[0] = a[0] * 2.0;");
  const std::size_t bodyEnd = bodyAt + std::string("a[0] = a[0] * 2.0;").size();
  region.start.beginOffset = loopAt;
  region.start.line = 6;
  region.end.endOffset = bodyEnd;
  region.end.endLine = 7;
  ir::MapItem map;
  map.symbol = 0;
  map.type = ir::MapType::To;
  map.item = "a";
  map.approxBytes = 32;
  map.coldEntries = 1;
  region.maps.push_back(map);
  ir::UpdateItem update;
  update.symbol = 0;
  update.direction = ir::UpdateDirection::To;
  update.placement = ir::UpdatePlacement::BodyBegin;
  update.item = "a";
  update.anchor.beginOffset = loopAt;
  update.anchor.endOffset = bodyEnd;
  update.anchor.hasBody = true;
  update.anchor.bodyIsCompound = false;
  update.anchor.bodyBeginOffset = bodyAt;
  update.anchor.bodyEndOffset = bodyEnd;
  region.updates.push_back(update);
  ir.regions.push_back(region);

  const std::string out = applyMappingIr(sm, ir);
  SCOPED_TRACE(out);
  const auto parsed = test::parse(out, "bodybegin_out.c");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();

  // Brace opens after the for header, then the update, then the body.
  const std::size_t forPos = out.find("for (int i = 0; i < 3");
  const std::size_t open = out.find("{", forPos);
  const std::size_t directive = out.find("#pragma omp target update to(a)");
  const std::size_t body = out.find("a[0] = a[0] * 2.0;");
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(directive, std::string::npos);
  EXPECT_LT(forPos, open);
  EXPECT_LT(open, directive);
  EXPECT_LT(directive, body);
  // The update now executes once per iteration: semantics preserved when
  // interpreted.
  const auto run = interp::runProgram(out);
  EXPECT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.output, interp::runProgram(source).output);
}

TEST(RewriteEdgeTest, BodyOnLoopHeaderLineWrapsOnlyTheBody) {
  // The body shares the loop header's line: the brace pair must wrap the
  // body's exact byte range, not the whole header line (which would hoist
  // the directive outside the loop, or wrap the loop itself).
  const std::string source = R"(
double a[4];

int main() {
  a[0] = 1.0;
  for (int i = 0; i < 3; ++i) a[0] = a[0] * 2.0;
  printf("%.1f\n", a[0]);
  return 0;
}
)";
  SourceManager sm("inline_body.c", source);

  ir::MappingIr ir;
  ir.file = "inline_body.c";
  ir.symbols.push_back(makeSymbol(0, "a", source.find("double a[4]")));
  ir::Region region;
  region.function = "main";
  const std::size_t loopAt = source.find("for (int i = 0; i < 3");
  const std::size_t bodyAt = source.find("a[0] = a[0] * 2.0;");
  const std::size_t bodyEnd = bodyAt + std::string("a[0] = a[0] * 2.0;").size();
  region.start.beginOffset = loopAt;
  region.start.line = 6;
  region.end.endOffset = bodyEnd;
  region.end.endLine = 6;
  ir::MapItem map;
  map.symbol = 0;
  map.type = ir::MapType::To;
  map.item = "a";
  map.approxBytes = 32;
  map.coldEntries = 1;
  region.maps.push_back(map);
  ir::UpdateItem update;
  update.symbol = 0;
  update.direction = ir::UpdateDirection::To;
  update.placement = ir::UpdatePlacement::BodyEnd;
  update.item = "a";
  update.anchor.beginOffset = loopAt;
  update.anchor.endOffset = bodyEnd;
  update.anchor.hasBody = true;
  update.anchor.bodyIsCompound = false;
  update.anchor.bodyBeginOffset = bodyAt;
  update.anchor.bodyEndOffset = bodyEnd;
  region.updates.push_back(update);
  ir.regions.push_back(region);

  const std::string out = applyMappingIr(sm, ir);
  SCOPED_TRACE(out);
  const auto parsed = test::parse(out, "inline_body_out.c");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();

  // Nesting on the single original line: header, open brace, body,
  // directive, close brace — the directive is INSIDE the loop.
  const std::size_t forPos = out.find("for (int i = 0; i < 3");
  const std::size_t open = out.find("{", forPos);
  const std::size_t body = out.find("a[0] = a[0] * 2.0;");
  const std::size_t directive = out.find("#pragma omp target update to(a)");
  const std::size_t close = out.find("}", directive);
  ASSERT_NE(directive, std::string::npos);
  EXPECT_LT(forPos, open);
  EXPECT_LT(open, body);
  EXPECT_LT(body, directive);
  EXPECT_LT(directive, close);
  const auto run = interp::runProgram(out);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.output, interp::runProgram(source).output);
}

TEST(RewriteEdgeTest, UpdateAndClauseAppendSharingTheKernelLine) {
  // A Before-update anchored at the kernel statement inserts at the
  // pragma's line start while firstprivate/map appends insert at the
  // pragma's end — one source line, three edits, all must compose.
  const std::string source = R"(
double a[8];

int main() {
  double s = 1.5;
  a[0] = 2.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 8; ++i) {
    a[i] = a[i] * s;
  }
  printf("%.1f\n", a[0]);
  return 0;
}
)";
  Session session("shared_line.c", source);
  ASSERT_TRUE(session.run());
  const std::string out = session.rewrite();
  SCOPED_TRACE(out);
  const auto parsed = test::parse(out, "shared_line_out.c");
  ASSERT_TRUE(parsed.ok) << parsed.diags->summary();
  EXPECT_NE(out.find("firstprivate(s)"), std::string::npos);
  const auto baseline = interp::runProgram(source);
  const auto transformed = interp::runProgram(out);
  ASSERT_TRUE(transformed.ok) << transformed.error;
  EXPECT_EQ(baseline.output, transformed.output);
}

} // namespace
} // namespace ompdart
