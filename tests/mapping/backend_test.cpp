// PlanConsumer backend tests: required-input validation, JSON/source
// backends against the Session artifacts, the ApplyToInterpBackend
// equivalence with the rewrite→reparse path (including a serialized-IR
// round-trip in the middle), and the cost-model registry/scoring.
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "mapping/backend.hpp"
#include "mapping/cost.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

const char *const kProgram = R"(double data[64];
int stop[1];
int main() {
  stop[0] = 0;
  for (int i = 0; i < 64; ++i) data[i] = i * 0.5;
  while (stop[0] == 0) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 64; ++i) {
      data[i] = data[i] + 1.0;
      if (data[i] > 40.0) stop[0] = 1;
    }
  }
  printf("%.3f\n", data[0]);
  return 0;
}
)";

TEST(PlanConsumerTest, BackendsReportMissingInputs) {
  SourceRewriteBackend rewrite;
  EXPECT_FALSE(rewrite.consume(PlanConsumerInput{}));
  EXPECT_FALSE(rewrite.error().empty());

  ir::MappingIr ir;
  PlanConsumerInput onlyIr;
  onlyIr.ir = &ir;
  SourceRewriteBackend rewriteNoSource;
  EXPECT_FALSE(rewriteNoSource.consume(onlyIr));

  ApplyToInterpBackend interpBackend;
  EXPECT_FALSE(interpBackend.consume(onlyIr)); // needs the parsed unit
  EXPECT_FALSE(interpBackend.error().empty());

  JsonBackend jsonBackend;
  EXPECT_TRUE(jsonBackend.consume(onlyIr)); // IR alone suffices
}

TEST(PlanConsumerTest, JsonBackendEmitsTheCanonicalIrSchema) {
  Session session("prog.c", kProgram);
  ASSERT_TRUE(session.run());
  JsonBackend backend;
  PlanConsumerInput input;
  input.ir = &session.ir();
  ASSERT_TRUE(backend.consume(input));
  // Identical document to the IR's own serialization (single schema).
  EXPECT_EQ(backend.value().dump(), session.ir().toJson().dump());
  // ... which is also what the Report embeds under "plan".
  const json::Value reportJson = session.report().toJson();
  const json::Value *planJson = reportJson.find("plan");
  ASSERT_NE(planJson, nullptr);
  EXPECT_EQ(planJson->dump(), backend.value().dump());
}

TEST(PlanConsumerTest, SourceRewriteBackendMatchesSessionRewrite) {
  Session session("prog.c", kProgram);
  ASSERT_TRUE(session.run());
  SourceRewriteBackend backend;
  PlanConsumerInput input;
  input.ir = &session.ir();
  input.source = &session.sourceManager();
  ASSERT_TRUE(backend.consume(input)) << backend.error();
  EXPECT_EQ(backend.transformedSource(), session.rewrite());
}

TEST(PlanConsumerTest, ApplyToInterpMatchesRewriteReparsePath) {
  Session session("prog.c", kProgram);
  ASSERT_TRUE(session.run());

  // Path A: rewrite, reparse, interpret.
  const interp::RunResult viaRewrite = interp::runProgram(session.rewrite());
  ASSERT_TRUE(viaRewrite.ok) << viaRewrite.error;

  // Path B: serialize the IR, restore it, apply to the parsed unit. The
  // serialization round-trip proves the overlay works from a cached plan.
  const auto parsed = json::Value::parse(session.ir().toJson().dump());
  ASSERT_TRUE(parsed.has_value());
  const auto restored = ir::MappingIr::fromJson(*parsed);
  ASSERT_TRUE(restored.has_value());

  ApplyToInterpBackend backend;
  PlanConsumerInput input;
  input.ir = &*restored;
  input.source = &session.sourceManager();
  input.unit = &session.parse().unit();
  ASSERT_TRUE(backend.consume(input)) << backend.error();
  const interp::RunResult &viaOverlay = backend.result();
  ASSERT_TRUE(viaOverlay.ok) << viaOverlay.error;

  EXPECT_EQ(viaOverlay.output, viaRewrite.output);
  EXPECT_EQ(viaOverlay.ledger.bytes(sim::TransferDir::HtoD),
            viaRewrite.ledger.bytes(sim::TransferDir::HtoD));
  EXPECT_EQ(viaOverlay.ledger.bytes(sim::TransferDir::DtoH),
            viaRewrite.ledger.bytes(sim::TransferDir::DtoH));
  EXPECT_EQ(viaOverlay.ledger.calls(sim::TransferDir::HtoD),
            viaRewrite.ledger.calls(sim::TransferDir::HtoD));
  EXPECT_EQ(viaOverlay.ledger.calls(sim::TransferDir::DtoH),
            viaRewrite.ledger.calls(sim::TransferDir::DtoH));
  EXPECT_EQ(viaOverlay.ledger.kernelLaunches(),
            viaRewrite.ledger.kernelLaunches());
}

// --- cost models ---

TEST(CostModelTest, RegistryKnowsBothModels) {
  EXPECT_NE(makeCostModel("paper-greedy"), nullptr);
  EXPECT_NE(makeCostModel("sim"), nullptr);
  EXPECT_EQ(makeCostModel("oracle"), nullptr);
  EXPECT_EQ(costModelNames().size(), 2u);
}

TEST(CostModelTest, PaperGreedyFollowsPaperRank) {
  PaperGreedyCostModel model;
  Candidate expensive;
  expensive.kind = CandidateKind::MapAtRegion;
  expensive.bytesPerOccurrence = 1u << 30;
  expensive.paperRank = 0;
  Candidate cheap;
  cheap.kind = CandidateKind::UpdateAtAccess;
  cheap.bytesPerOccurrence = 1;
  cheap.paperRank = 1;
  // The paper's rule ignores byte estimates entirely.
  EXPECT_EQ(model.choose({expensive, cheap}), 0u);
}

TEST(CostModelTest, SimModelPrefersFewerTransferSeconds) {
  SimCostModel model;
  Candidate once;
  once.kind = CandidateKind::MapAtRegion;
  once.bytesPerOccurrence = 1024;
  once.occurrences = 1;
  once.paperRank = 1; // rank deliberately contradicts the cost
  Candidate everyIteration;
  everyIteration.kind = CandidateKind::UpdateAtAccess;
  everyIteration.bytesPerOccurrence = 1024;
  everyIteration.occurrences = 1000;
  everyIteration.paperRank = 0;
  EXPECT_EQ(model.choose({everyIteration, once}), 1u);
  // firstprivate is free under the sim model.
  Candidate firstprivate;
  firstprivate.kind = CandidateKind::Firstprivate;
  firstprivate.transfersPerOccurrence = 0;
  EXPECT_EQ(model.score(firstprivate), 0.0);
  EXPECT_GT(model.score(once), 0.0);
}

TEST(CostModelTest, UnknownModelNameFailsThePlanStageWithDiagnostic) {
  PipelineConfig config;
  config.costModel = "oracle";
  Session session("prog.c", kProgram, config);
  EXPECT_FALSE(session.run());
  EXPECT_TRUE(session.diagnostics().hasErrors());
}

TEST(CostModelTest, SimModelProducesAValidPlanOnTheProgram) {
  PipelineConfig config;
  config.costModel = "sim";
  Session session("prog.c", kProgram, config);
  ASSERT_TRUE(session.run());
  // The cost-driven plan must still execute correctly.
  const interp::RunResult baseline = interp::runProgram(kProgram);
  const interp::RunResult optimized = interp::runProgram(session.rewrite());
  ASSERT_TRUE(baseline.ok);
  ASSERT_TRUE(optimized.ok) << optimized.error;
  EXPECT_EQ(baseline.output, optimized.output);
  EXPECT_LE(optimized.ledger.totalBytes(), baseline.ledger.totalBytes());
}

} // namespace
} // namespace ompdart
