
#define SAMPLES 2048
#define CLASSES 10
#define BATCHES 24

double scores[SAMPLES * CLASSES];
int labels[SAMPLES];

void init_data() {
  srand(42);
  for (int s = 0; s < SAMPLES; ++s) {
    labels[s] = rand() % CLASSES;
    for (int c = 0; c < CLASSES; ++c) {
      scores[s * CLASSES + c] = (double)(rand() % 1000) * 0.001;
    }
    scores[s * CLASSES + labels[s]] += 0.75;
  }
}

int main() {
  init_data();
  int total_correct = 0;
  int correct = 0;
  #pragma omp target data map(to: scores, labels) map(alloc: correct)
  {
  for (int b = 0; b < BATCHES; ++b) {
    correct = 0;
    #pragma omp target update to(correct)
    #pragma omp target teams distribute parallel for reduction(+: correct)
    for (int s = 0; s < SAMPLES; ++s) {
      int best = 0;
      double best_score = scores[s * CLASSES];
      for (int c = 1; c < CLASSES; ++c) {
        double v = scores[s * CLASSES + c];
        if (v > best_score) {
          best_score = v;
          best = c;
        }
      }
      if (best == labels[s]) {
        correct += 1;
      }
    }
    #pragma omp target update from(correct)
    total_correct += correct;
  }
  }
  printf("accuracy=%.4f\n", (double)total_correct / (SAMPLES * BATCHES));
  return 0;
}
