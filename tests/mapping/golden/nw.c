
#define DIM 48
#define PENALTY 10

int score[DIM * DIM];
int reference[DIM * DIM];

int max3(int a, int b, int c) {
  int m = a;
  if (b > m) {
    m = b;
  }
  if (c > m) {
    m = c;
  }
  return m;
}

void init_matrices() {
  srand(31);
  for (int i = 0; i < DIM * DIM; ++i) {
    reference[i] = rand() % 20 - 10;
    score[i] = 0;
  }
  for (int i = 1; i < DIM; ++i) {
    score[i * DIM] = -i * PENALTY;
    score[i] = -i * PENALTY;
  }
}

int main() {
  init_matrices();
  #pragma omp target data map(to: reference) map(tofrom: score)
  {
  for (int d = 1; d < DIM; ++d) {
    #pragma omp target teams distribute parallel for firstprivate(d)
    for (int k = 1; k <= d; ++k) {
      int i = k;
      int j = d - k + 1;
      if (j >= 1 && j < DIM && i < DIM) {
        score[i * DIM + j] = max3(
            score[(i - 1) * DIM + j - 1] + reference[i * DIM + j],
            score[i * DIM + j - 1] - PENALTY,
            score[(i - 1) * DIM + j] - PENALTY);
      }
    }
  }
  for (int d = DIM - 2; d >= 1; --d) {
    #pragma omp target teams distribute parallel for firstprivate(d)
    for (int k = 1; k <= d; ++k) {
      int i = DIM - d + k - 1;
      int j = 2 * DIM - d - i - 1;
      if (i >= 1 && i < DIM && j >= 1 && j < DIM) {
        score[i * DIM + j] = max3(
            score[(i - 1) * DIM + j - 1] + reference[i * DIM + j],
            score[i * DIM + j - 1] - PENALTY,
            score[(i - 1) * DIM + j] - PENALTY);
      }
    }
  }
  }
  long checksum = 0;
  for (int i = 0; i < DIM * DIM; ++i) {
    checksum += score[i];
  }
  printf("alignment=%d checksum=%d\n", score[DIM * DIM - 1], (int)checksum);
  return 0;
}
