
#define NUCLIDES 16
#define GRIDPOINTS 128
#define LOOKUPS 1024
#define BATCHES 8

double energy_grid[NUCLIDES * GRIDPOINTS];
double xs_total[NUCLIDES * GRIDPOINTS];
double xs_elastic[NUCLIDES * GRIDPOINTS];
double xs_absorption[NUCLIDES * GRIDPOINTS];
double xs_fission[NUCLIDES * GRIDPOINTS];
double lookup_energy[LOOKUPS];
int lookup_material[LOOKUPS];
double results[LOOKUPS];

void init_tables() {
  srand(97);
  for (int n = 0; n < NUCLIDES; ++n) {
    for (int g = 0; g < GRIDPOINTS; ++g) {
      int idx = n * GRIDPOINTS + g;
      energy_grid[idx] = (double)g / GRIDPOINTS;
      xs_total[idx] = (double)(rand() % 1000) * 0.001;
      xs_elastic[idx] = (double)(rand() % 1000) * 0.0005;
      xs_absorption[idx] = (double)(rand() % 1000) * 0.0003;
      xs_fission[idx] = (double)(rand() % 1000) * 0.0002;
    }
  }
  for (int l = 0; l < LOOKUPS; ++l) {
    lookup_energy[l] = (double)(rand() % 1000) * 0.001;
    lookup_material[l] = rand() % NUCLIDES;
  }
}

int main() {
  init_tables();
  double verification = 0.0;
  #pragma omp target data map(to: energy_grid, xs_total, xs_elastic, xs_absorption, xs_fission, lookup_energy, lookup_material) map(alloc: results)
  {
  for (int batch = 0; batch < BATCHES; ++batch) {
    double batch_scale = 1.0 + batch * 0.125;
    #pragma omp target teams distribute parallel for firstprivate(batch_scale)
    for (int l = 0; l < LOOKUPS; ++l) {
      int mat = lookup_material[l];
      double e = lookup_energy[l];
      int g = (int)(e * (GRIDPOINTS - 1));
      int idx = mat * GRIDPOINTS + g;
      double macro = xs_total[idx] + xs_elastic[idx] +
                     xs_absorption[idx] + xs_fission[idx];
      results[l] = macro * batch_scale + energy_grid[idx];
    }
    #pragma omp target update from(results)
    for (int l = 0; l < LOOKUPS; ++l) {
      verification += results[l];
    }
  }
  }
  printf("verification=%.6f\n", verification);
  return 0;
}
