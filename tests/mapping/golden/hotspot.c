
#define ROWS 24
#define COLS 24
#define STEPS 15

double temp_a[ROWS * COLS];
double temp_b[ROWS * COLS];
double power_map[ROWS * COLS];

void init_grid() {
  srand(17);
  for (int i = 0; i < ROWS * COLS; ++i) {
    temp_a[i] = 323.0 + (double)(rand() % 100) * 0.05;
    power_map[i] = (double)(rand() % 100) * 0.001;
    temp_b[i] = 0.0;
  }
}

void advance(double *t_src, double *t_dst, double *power, double dt,
             double cap, double rx, double ry, double rz, double t_amb,
             int rows, int cols, int npoints, double step_div,
             double clamp_lo, double clamp_hi) {
  #pragma omp target teams distribute parallel for map(to: power[0:npoints], t_src[0:576]) map(from: t_dst[0:npoints]) firstprivate(cap, clamp_hi, clamp_lo, cols, dt, npoints, rows, rx, ry, rz, step_div, t_amb)
  for (int i = 0; i < npoints; ++i) {
    int r = i / cols;
    int c = i % cols;
    int up = r == 0 ? i : i - cols;
    int down = r == rows - 1 ? i : i + cols;
    int left = c == 0 ? i : i - 1;
    int right = c == cols - 1 ? i : i + 1;
    double delta =
        dt / cap *
        (power[i] + (t_src[down] + t_src[up] - 2.0 * t_src[i]) / ry +
         (t_src[right] + t_src[left] - 2.0 * t_src[i]) / rx +
         (t_amb - t_src[i]) / rz);
    double v = t_src[i] + delta * step_div;
    if (v < clamp_lo) {
      v = clamp_lo;
    }
    if (v > clamp_hi) {
      v = clamp_hi;
    }
    t_dst[i] = v;
  }
}

int main() {
  init_grid();
  double t_chip = 0.0005;
  double chip_height = 0.016;
  double chip_width = 0.016;
  double t_amb = 80.0;
  double max_pd = 3000000.0;
  double precision = 0.001;
  double spec_heat = 875000.0;
  double k_si = 100.0;
  double grid_height = chip_height / ROWS;
  double grid_width = chip_width / COLS;
  double cap = spec_heat * t_chip * grid_width * grid_height;
  double rx = grid_width / (2.0 * k_si * t_chip * grid_height);
  double ry = grid_height / (2.0 * k_si * t_chip * grid_width);
  double rz = t_chip / (k_si * grid_height * grid_width);
  double max_slope = max_pd / (cap * precision);
  double dt = precision / max_slope;
  for (int step = 0; step < STEPS; ++step) {
    advance(temp_a, temp_b, power_map, dt, cap, rx, ry, rz, t_amb, ROWS,
            COLS, ROWS * COLS, 1.0, 0.0, 1.0e+6);
    advance(temp_b, temp_a, power_map, dt, cap, rx, ry, rz, t_amb, ROWS,
            COLS, ROWS * COLS, 1.0, 0.0, 1.0e+6);
  }
  double peak = 0.0;
  double total = 0.0;
  for (int i = 0; i < ROWS * COLS; ++i) {
    total += temp_a[i];
    if (temp_a[i] > peak) {
      peak = temp_a[i];
    }
  }
  printf("peak=%.6f avg=%.6f\n", peak, total / (ROWS * COLS));
  return 0;
}
