
#define NELEM 128
#define STEPS 16

double pos_x[NELEM];
double vel_x[NELEM];
double accel_x[NELEM];
double force_x[NELEM];
double node_mass[NELEM];
double elem_volume[NELEM];
double volume_new[NELEM];
double volume_dov[NELEM];
double pressure[NELEM];
double energy[NELEM];
double q_visc[NELEM];
double sound_speed[NELEM];
double strain[NELEM];
double grad_x[NELEM];
double work_arr[NELEM];
double dt_courant_elem[NELEM];
double dt_hydro_elem[NELEM];
double elem_mass[NELEM];

void init_mesh() {
  srand(3);
  for (int i = 0; i < NELEM; ++i) {
    pos_x[i] = (double)i * 0.01;
    vel_x[i] = 0.0;
    accel_x[i] = 0.0;
    force_x[i] = 0.0;
    node_mass[i] = 1.0 + (double)(rand() % 100) * 0.001;
    elem_mass[i] = 1.0 + (double)(rand() % 100) * 0.001;
    elem_volume[i] = 1.0;
    volume_new[i] = 1.0;
    volume_dov[i] = 0.0;
    pressure[i] = 0.0;
    energy[i] = i == 0 ? 3.948746e+2 : 0.0;
    q_visc[i] = 0.0;
    sound_speed[i] = 0.3;
    strain[i] = 0.0;
    grad_x[i] = 0.0;
    work_arr[i] = 0.0;
    dt_courant_elem[i] = 1.0e+20;
    dt_hydro_elem[i] = 1.0e+20;
  }
}

int main() {
  init_mesh();

  double dt = 1.0e-3;
  double sim_time = 0.0;
  double hgcoef = 3.0;
  double ss4o3 = 4.0 / 3.0;
  double qstop = 1.0e+12;
  double monoq_max_slope = 1.0;
  double monoq_limiter = 2.0;
  double qlc_monoq = 0.5;
  double qqc_monoq = 0.6667;
  double qqc = 2.0;
  double qqc2 = 64.0 * qqc * qqc;
  double eosvmax = 1.9;
  double eosvmin = 0.1;
  double pmin = 0.0;
  double emin = -1.0e+15;
  double dvovmax = 0.1;
  double refdens = 1.0;
  double cfl = 0.5;
  double u_cut = 1.0e-7;
  double p_cut = 1.0e-7;
  double q_cut = 1.0e-7;
  double e_cut = 1.0e-7;
  double v_cut = 1.0e-10;
  double arealg = 1.0e-2;
  double c1s = 2.0 / 3.0;
  double pbvc = 1.6667;
  double ss_floor = 1.111111e-36;
  double deltatimemultlb = 1.1;
  double deltatimemultub = 1.2;
  double dtmax = 1.0e-2;
  double gamma_a = 0.0625;
  double gamma_b = -0.0625;
  double twelfth = 1.0 / 12.0;
  double qlinear = 0.25;
  double ptiny = 1.0e-36;
  double dtcdef = 1.0e+20;
  double dthdef = 1.0e+20;
  int cycle = 0;
  int bc_nodes = 4;
  double mass_scale = 1.0;
  double drain = 0.999;
  double work_scale = 1.0;
  double bc_value = 0.0;
  double stress_scale = 1.0;
  double force_floor = 0.0;
  double accel_cap = 1.0e+12;
  double vel_damp = 1.0;
  double pos_scale = 1.0;
  double vol_floor = 0.0;
  double p_scale = 1.0;
  double q_scale = 1.0;
  double e_scale = 1.0;
  double hgq = 0.0;

  #pragma omp target data map(to: node_mass, elem_volume, pressure, q_visc, sound_speed, elem_mass) map(tofrom: pos_x, vel_x, energy) map(alloc: accel_x, force_x, volume_new, volume_dov, strain, grad_x, work_arr, dt_courant_elem, dt_hydro_elem)
  {
  for (int step = 0; step < STEPS; ++step) {

    /* --- CalcForceForNodes: kernels 1-4 --- */
    #pragma omp target teams distribute parallel for firstprivate(cycle, bc_value, force_floor)
    for (int i = 0; i < NELEM; ++i) {
      force_x[i] = bc_value * cycle + force_floor;
    }
    #pragma omp target teams distribute parallel for firstprivate(mass_scale, stress_scale)
    for (int i = 0; i < NELEM; ++i) {
      strain[i] = -(pressure[i] + q_visc[i]) * elem_volume[i] * 0.5 *
                  mass_scale * stress_scale;
    }
    #pragma omp target teams distribute parallel for firstprivate(gamma_a, gamma_b, twelfth)
    for (int i = 0; i < NELEM; ++i) {
      int left = i == 0 ? i : i - 1;
      int right = i == NELEM - 1 ? i : i + 1;
      grad_x[i] = (strain[right] - strain[left]) * 0.5 +
                  (gamma_a + gamma_b) * twelfth;
    }
    #pragma omp target teams distribute parallel for firstprivate(hgcoef)
    for (int i = 0; i < NELEM; ++i) {
      force_x[i] = force_x[i] + strain[i] - hgcoef * grad_x[i];
    }
    /* --- CalcAccelerationForNodes: kernel 5 --- */
    #pragma omp target teams distribute parallel for firstprivate(accel_cap)
    for (int i = 0; i < NELEM; ++i) {
      double a = force_x[i] / node_mass[i];
      if (a > accel_cap) {
        a = accel_cap;
      }
      accel_x[i] = a;
    }
    /* --- ApplyAccelerationBoundaryConditions: kernel 6 --- */
    #pragma omp target teams distribute parallel for firstprivate(bc_nodes, bc_value)
    for (int i = 0; i < bc_nodes; ++i) {
      accel_x[i] = bc_value;
    }
    /* --- CalcVelocityForNodes: kernel 7 --- */
    #pragma omp target teams distribute parallel for firstprivate(dt, u_cut, vel_damp)
    for (int i = 0; i < NELEM; ++i) {
      double v = (vel_x[i] + accel_x[i] * dt) * vel_damp;
      if (fabs(v) < u_cut) {
        v = 0.0;
      }
      vel_x[i] = v;
    }
    /* --- CalcPositionForNodes: kernel 8 --- */
    #pragma omp target teams distribute parallel for firstprivate(dt, pos_scale)
    for (int i = 0; i < NELEM; ++i) {
      pos_x[i] = pos_x[i] + vel_x[i] * dt * pos_scale;
    }
    /* --- CalcLagrangeElements: kernels 9-10 --- */
    #pragma omp target teams distribute parallel for firstprivate(dt, eosvmax, eosvmin, dvovmax, v_cut, vol_floor)
    for (int i = 0; i < NELEM; ++i) {
      int right = i == NELEM - 1 ? i : i + 1;
      double dv = (vel_x[right] - vel_x[i]) * dt * dvovmax;
      if (fabs(dv) < v_cut) {
        dv = 0.0;
      }
      volume_new[i] = elem_volume[i] * (1.0 + dv) + vol_floor;
      if (volume_new[i] < eosvmin) {
        volume_new[i] = eosvmin;
      }
      if (volume_new[i] > eosvmax) {
        volume_new[i] = eosvmax;
      }
      volume_dov[i] = dv / dt;
    }
    #pragma omp target teams distribute parallel for firstprivate(ss4o3, work_scale)
    for (int i = 0; i < NELEM; ++i) {
      work_arr[i] = volume_dov[i] * strain[i] * ss4o3 * work_scale /
                    elem_mass[i];
    }
    /* --- CalcQForElems: kernel 11 --- */
    #pragma omp target teams distribute parallel for firstprivate(qstop, monoq_max_slope, monoq_limiter, qlc_monoq, qqc_monoq, q_cut, qlinear, ptiny, q_scale, hgq)
    for (int i = 0; i < NELEM; ++i) {
      double dv = volume_dov[i];
      double limiter = monoq_max_slope < monoq_limiter ? monoq_max_slope
                                                       : monoq_limiter;
      if (dv < 0.0) {
        double dq = (qlc_monoq * sound_speed[i] * fabs(dv) +
                     qqc_monoq * dv * dv) * limiter * q_scale +
                    hgq + qlinear * ptiny;
        q_visc[i] = dq < qstop ? dq : qstop;
      } else {
        q_visc[i] = 0.0;
      }
      if (q_visc[i] < q_cut * 0.0) {
        q_visc[i] = 0.0;
      }
    }
    /* --- EvalEOSForElems: kernels 12-13 --- */
    #pragma omp target teams distribute parallel for firstprivate(dt, emin, e_cut, drain, e_scale)
    for (int i = 0; i < NELEM; ++i) {
      double e = (energy[i] * drain + work_arr[i] * dt) * e_scale;
      if (fabs(e) < e_cut) {
        e = 0.0;
      }
      if (e < emin) {
        e = emin;
      }
      energy[i] = e;
    }
    #pragma omp target teams distribute parallel for firstprivate(pmin, refdens, p_cut, c1s, pbvc, ss_floor, p_scale)
    for (int i = 0; i < NELEM; ++i) {
      double bvc = c1s * (refdens / volume_new[i]);
      double p = bvc * energy[i] * p_scale;
      if (fabs(p) < p_cut) {
        p = 0.0;
      }
      if (p < pmin) {
        p = pmin;
      }
      pressure[i] = p;
      double ss = (pbvc * energy[i] + bvc * pressure[i]) / refdens;
      if (ss < ss_floor) {
        ss = ss_floor;
      }
      sound_speed[i] = sqrt(ss);
    }
    /* --- CalcTimeConstraintsForElems: kernels 14-15 --- */
    #pragma omp target teams distribute parallel for firstprivate(qqc2, arealg, dtcdef)
    for (int i = 0; i < NELEM; ++i) {
      double dtf = sound_speed[i] * sound_speed[i];
      if (volume_dov[i] < 0.0) {
        dtf = dtf + qqc2 * volume_dov[i] * volume_dov[i];
      }
      dtf = sqrt(dtf);
      dtf = arealg / dtf;
      dt_courant_elem[i] = volume_dov[i] != 0.0 ? dtf : dtcdef;
    }
    #pragma omp target teams distribute parallel for firstprivate(dvovmax, dthdef)
    for (int i = 0; i < NELEM; ++i) {
      dt_hydro_elem[i] = volume_dov[i] != 0.0
                             ? dvovmax / (fabs(volume_dov[i]) + 1.0e-20)
                             : dthdef;
    }

    double dt_courant = 1.0e+20;
    double dt_hydro = 1.0e+20;
    #pragma omp target update from(dt_courant_elem, dt_hydro_elem)
    for (int i = 0; i < NELEM; ++i) {
      if (dt_courant_elem[i] < dt_courant) {
        dt_courant = dt_courant_elem[i];
      }
      if (dt_hydro_elem[i] < dt_hydro) {
        dt_hydro = dt_hydro_elem[i];
      }
    }
    double newdt = dt_courant < dt_hydro ? dt_courant : dt_hydro;
    newdt = newdt * cfl;
    if (newdt < dt * deltatimemultlb) {
      newdt = dt * deltatimemultlb;
    }
    if (newdt > dt * deltatimemultub) {
      newdt = dt * deltatimemultub;
    }
    if (newdt > dtmax) {
      newdt = dtmax;
    }
    dt = newdt;
    sim_time = sim_time + dt;
    cycle = cycle + 1;

  }
  }

  double e_sum = 0.0;
  double v_sum = 0.0;
  double x_sum = 0.0;
  for (int i = 0; i < NELEM; ++i) {
    e_sum += energy[i];
    v_sum += vel_x[i];
    x_sum += pos_x[i];
  }
  printf("energy=%.6f vel=%.6f pos=%.6f time=%.6f\n", e_sum, v_sum, x_sum,
         sim_time);
  return 0;
}
