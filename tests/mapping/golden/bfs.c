
#define NODES 512
#define DEGREE 4

int edge_offset[NODES + 1];
int edge_list[NODES * DEGREE];
int frontier[NODES];
int next_frontier[NODES];
int visited[NODES];
int cost[NODES];
int stop_flag[1];

void build_graph() {
  srand(5);
  for (int n = 0; n < NODES; ++n) {
    edge_offset[n] = n * DEGREE;
    for (int d = 0; d < DEGREE; ++d) {
      edge_list[n * DEGREE + d] = rand() % NODES;
    }
  }
  edge_offset[NODES] = NODES * DEGREE;
  for (int n = 0; n < NODES; ++n) {
    frontier[n] = 0;
    next_frontier[n] = 0;
    visited[n] = 0;
    cost[n] = -1;
  }
  frontier[0] = 1;
  visited[0] = 1;
  cost[0] = 0;
}

int main() {
  build_graph();
  int level = 0;
  stop_flag[0] = 0;
  #pragma omp target data map(to: edge_offset, edge_list, frontier, next_frontier, visited) map(tofrom: cost) map(alloc: stop_flag)
  {
  while (stop_flag[0] == 0 && level < NODES) {
    #pragma omp target teams distribute parallel for firstprivate(level)
    for (int n = 0; n < NODES; ++n) {
      if (frontier[n]) {
        for (int e = edge_offset[n]; e < edge_offset[n + 1]; ++e) {
          int dst = edge_list[e];
          if (visited[dst] == 0) {
            cost[dst] = level + 1;
            next_frontier[dst] = 1;
          }
        }
      }
    }
    stop_flag[0] = 1;
    #pragma omp target update to(stop_flag)
    #pragma omp target teams distribute parallel for
    for (int n = 0; n < NODES; ++n) {
      frontier[n] = 0;
      if (next_frontier[n]) {
        frontier[n] = 1;
        visited[n] = 1;
        next_frontier[n] = 0;
        stop_flag[0] = 0;
      }
    }
    level = level + 1;
    #pragma omp target update from(stop_flag)
  }
  }
  long checksum = 0;
  for (int n = 0; n < NODES; ++n) {
    checksum += cost[n];
  }
  printf("levels=%d checksum=%d\n", level, (int)checksum);
  return 0;
}
