
#define ATOMS 64
#define GRIDX 16
#define GRIDY 16
#define SLABS 12

struct lattice {
  double spacing;
  double origin_x;
  double origin_y;
  double origin_z;
};

double atom_x[ATOMS];
double atom_y[ATOMS];
double atom_z[ATOMS];
double atom_q[ATOMS];
double energygrid[SLABS * GRIDY * GRIDX];
struct lattice grid;

void init_atoms() {
  srand(23);
  grid.spacing = 0.5;
  grid.origin_x = -4.0;
  grid.origin_y = -4.0;
  grid.origin_z = -3.0;
  for (int a = 0; a < ATOMS; ++a) {
    atom_x[a] = (double)(rand() % 800) * 0.01 - 4.0;
    atom_y[a] = (double)(rand() % 800) * 0.01 - 4.0;
    atom_z[a] = (double)(rand() % 600) * 0.01 - 3.0;
    atom_q[a] = (double)(rand() % 200) * 0.01 - 1.0;
  }
  for (int i = 0; i < SLABS * GRIDY * GRIDX; ++i) {
    energygrid[i] = 0.0;
  }
}

int main() {
  init_atoms();
  #pragma omp target data map(to: atom_x, atom_y, atom_z, atom_q, grid) map(tofrom: energygrid)
  {
  for (int slab = 0; slab < SLABS; ++slab) {
    #pragma omp target teams distribute parallel for firstprivate(slab)
    for (int g = 0; g < GRIDY * GRIDX; ++g) {
      int gx = g % GRIDX;
      int gy = g / GRIDX;
      double px = grid.origin_x + gx * grid.spacing;
      double py = grid.origin_y + gy * grid.spacing;
      double pz = grid.origin_z + slab * grid.spacing;
      double energy = 0.0;
      for (int a = 0; a < ATOMS; ++a) {
        double dx = px - atom_x[a];
        double dy = py - atom_y[a];
        double dz = pz - atom_z[a];
        double r2 = dx * dx + dy * dy + dz * dz + 0.01;
        energy += atom_q[a] / sqrt(r2);
      }
      energygrid[slab * GRIDY * GRIDX + g] += energy;
    }
    #pragma omp target teams distribute parallel for firstprivate(slab)
    for (int g = 0; g < GRIDY * GRIDX; ++g) {
      int idx = slab * GRIDY * GRIDX + g;
      energygrid[idx] = energygrid[idx] * grid.spacing;
    }
  }
  }
  double total = 0.0;
  for (int i = 0; i < SLABS * GRIDY * GRIDX; ++i) {
    total += energygrid[i];
  }
  printf("potential=%.6f\n", total);
  return 0;
}
