
#define IN 256
#define HID 16
#define BLOCKS 8
#define EPOCHS 6

double input_units[IN];
double input_weights[IN * HID];
double hidden_units[HID];
double hidden_delta[HID];
double partial_sum[BLOCKS * HID];
double target_out[HID];
double momentum_w[IN * HID];

void init_net() {
  srand(11);
  for (int i = 0; i < IN; ++i) {
    input_units[i] = (double)(rand() % 1000) * 0.001;
  }
  for (int i = 0; i < IN * HID; ++i) {
    input_weights[i] = (double)(rand() % 1000) * 0.0002 - 0.1;
    momentum_w[i] = 0.0;
  }
  for (int j = 0; j < HID; ++j) {
    target_out[j] = (double)((j * 37) % 100) * 0.01;
  }
}

int main() {
  init_net();
  int chunk = IN / BLOCKS;
  double eta = 0.3;
  double momentum = 0.3;
  #pragma omp target data map(to: input_units, momentum_w) map(tofrom: input_weights) map(alloc: hidden_delta, partial_sum)
  {
  for (int epoch = 0; epoch < EPOCHS; ++epoch) {
    #pragma omp target teams distribute parallel for firstprivate(chunk)
    for (int t = 0; t < BLOCKS * HID; ++t) {
      int b = t / HID;
      int j = t % HID;
      double sum = 0.0;
      for (int k = 0; k < chunk; ++k) {
        int i = b * chunk + k;
        sum += input_units[i] * input_weights[i * HID + j];
      }
      partial_sum[t] = sum;
    }
    #pragma omp target update from(partial_sum)
    for (int j = 1; j <= HID; j++) {
      double sum = 0.0;
      for (int k = 0; k < BLOCKS; k++) {
        sum += partial_sum[k * HID + j - 1];
      }
      hidden_units[j - 1] = 1.0 / (1.0 + exp(-sum));
      hidden_delta[j - 1] =
          (target_out[j - 1] - hidden_units[j - 1]) * hidden_units[j - 1] *
          (1.0 - hidden_units[j - 1]);
    }
    #pragma omp target update to(hidden_delta)
    #pragma omp target teams distribute parallel for firstprivate(eta, momentum)
    for (int t = 0; t < IN * HID; ++t) {
      int j = t % HID;
      double grad = eta * hidden_delta[j] * input_units[t / HID] +
                    momentum * momentum_w[t];
      input_weights[t] += grad;
      momentum_w[t] = grad;
    }
  }
  }
  double wsum = 0.0;
  for (int i = 0; i < IN * HID; ++i) {
    wsum += input_weights[i];
  }
  double hsum = 0.0;
  for (int j = 0; j < HID; ++j) {
    hsum += hidden_units[j];
  }
  printf("weights=%.6f hidden=%.6f\n", wsum, hsum);
  return 0;
}
