
#define NX 24
#define NY 24
#define STEPS 40

double phi[NX * NY];
double phinew[NX * NY];
double temp[NX * NY];
double tempnew[NX * NY];
double lap_phi[NX * NY];
double lap_temp[NX * NY];

void init_fields() {
  for (int i = 0; i < NX * NY; ++i) {
    phi[i] = 0.0;
    temp[i] = -0.5;
  }
  int cx = NX / 2;
  int cy = NY / 2;
  for (int y = cy - 2; y <= cy + 2; ++y) {
    for (int x = cx - 2; x <= cx + 2; ++x) {
      phi[y * NX + x] = 1.0;
    }
  }
}

int main() {
  init_fields();
  double dt = 0.002;
  double kappa = 1.6;
  double tau = 0.3;
  #pragma omp target data map(tofrom: phi, temp) map(alloc: phinew, tempnew, lap_phi, lap_temp)
  {
  for (int step = 0; step < STEPS; ++step) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < NX * NY; ++i) {
      int x = i % NX;
      int y = i / NX;
      int xm = x == 0 ? x : x - 1;
      int xp = x == NX - 1 ? x : x + 1;
      int ym = y == 0 ? y : y - 1;
      int yp = y == NY - 1 ? y : y + 1;
      lap_phi[i] = phi[y * NX + xm] + phi[y * NX + xp] +
                   phi[ym * NX + x] + phi[yp * NX + x] - 4.0 * phi[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < NX * NY; ++i) {
      int x = i % NX;
      int y = i / NX;
      int xm = x == 0 ? x : x - 1;
      int xp = x == NX - 1 ? x : x + 1;
      int ym = y == 0 ? y : y - 1;
      int yp = y == NY - 1 ? y : y + 1;
      lap_temp[i] = temp[y * NX + xm] + temp[y * NX + xp] +
                    temp[ym * NX + x] + temp[yp * NX + x] - 4.0 * temp[i];
    }
    #pragma omp target teams distribute parallel for firstprivate(dt, kappa, tau)
    for (int i = 0; i < NX * NY; ++i) {
      double p = phi[i];
      double m = 0.5 * temp[i];
      double drive = p * (1.0 - p) * (p - 0.5 + m);
      phinew[i] = p + dt / tau * (kappa * lap_phi[i] + drive);
    }
    #pragma omp target teams distribute parallel for firstprivate(dt)
    for (int i = 0; i < NX * NY; ++i) {
      tempnew[i] = temp[i] + dt * (lap_temp[i] + 2.0 * (phinew[i] - phi[i]));
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < NX * NY; ++i) {
      phi[i] = phinew[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < NX * NY; ++i) {
      temp[i] = tempnew[i];
    }
  }
  }
  double phi_sum = 0.0;
  double temp_sum = 0.0;
  for (int i = 0; i < NX * NY; ++i) {
    phi_sum += phi[i];
    temp_sum += temp[i];
  }
  printf("phi=%.6f temp=%.6f\n", phi_sum, temp_sum);
  return 0;
}
