// Floor-of-one pinning for provable execution estimates on *guarded*
// nesting (paper-faithful present-table accounting, PR 3): a region start
// or update insertion point sitting under an if/switch may execute zero
// times per enclosing iteration, so the estimator must charge the floor of
// one instead of multiplying the loop trips above the guard. Before this
// suite the behavior was only pinned indirectly through whole-suite
// predicted-vs-simulated ratios.
#include "driver/pipeline.hpp"

#include <gtest/gtest.h>

namespace ompdart {
namespace {

const ir::MappingIr &planIr(Session &session) {
  session.run();
  return session.ir();
}

TEST(GuardedExecutionsTest, RegionEntryUnderIfFloorsAtOne) {
  // The kernel-bearing loop nest sits behind `if (flag)`: the 10-trip time
  // loop is not provable for the region entry count.
  Session session("guarded_region.c", R"(
double field[256];
int flag;
int main() {
  if (flag) {
    for (int t = 0; t < 10; ++t) {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 256; ++i) {
        field[i] = field[i] + i;
      }
    }
  }
  printf("%f\n", field[0]);
  return 0;
}
)");
  const ir::MappingIr &ir = planIr(session);
  ASSERT_EQ(ir.regions.size(), 1u);
  EXPECT_EQ(ir.regions[0].entryCount, 1u);
}

TEST(GuardedExecutionsTest, UnguardedRegionEntryMultipliesForContrast) {
  // Same nest without the guard: per-kernel regions are hoisted over the
  // loop, so entries stay 1 — but with region-over-loops disabled, the
  // region re-enters per provable trip. This is the contrast case proving
  // the guard (not some other conservatism) produced the floor above.
  PipelineConfig config;
  config.planner.extendRegionOverLoops = false;
  Session session("unguarded_region.c", R"(
double field[256];
int main() {
  for (int t = 0; t < 10; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 256; ++i) {
      field[i] = field[i] + i;
    }
  }
  printf("%f\n", field[0]);
  return 0;
}
)",
                  config);
  const ir::MappingIr &ir = planIr(session);
  ASSERT_EQ(ir.regions.size(), 1u);
  EXPECT_EQ(ir.regions[0].entryCount, 10u);

  PipelineConfig guardedConfig;
  guardedConfig.planner.extendRegionOverLoops = false;
  Session guarded("guarded_per_kernel.c", R"(
double field[256];
int flag;
int main() {
  if (flag) {
    for (int t = 0; t < 10; ++t) {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 256; ++i) {
        field[i] = field[i] + i;
      }
    }
  }
  printf("%f\n", field[0]);
  return 0;
}
)",
                  guardedConfig);
  const ir::MappingIr &guardedIr = planIr(guarded);
  ASSERT_EQ(guardedIr.regions.size(), 1u);
  EXPECT_EQ(guardedIr.regions[0].entryCount, 1u);
}

TEST(GuardedExecutionsTest, UpdateUnderGuardedNestedLoopFloorsAtOne) {
  // The host read of `field` sits under `if (t % 2)` inside the 10-trip
  // region loop: the update-from it forces may execute zero times per
  // trip, so executions must floor at one — not multiply to 10.
  Session session("guarded_update.c", R"(
double field[256];
double probe[16];
int main() {
  for (int t = 0; t < 10; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 256; ++i) {
      field[i] = field[i] + i;
    }
    if (t % 2) {
      probe[0] = field[0];
    }
  }
  printf("%f %f\n", field[0], probe[0]);
  return 0;
}
)");
  const ir::MappingIr &ir = planIr(session);
  ASSERT_EQ(ir.regions.size(), 1u);
  const ir::UpdateItem *fromUpdate = nullptr;
  for (const ir::UpdateItem &update : ir.regions[0].updates)
    if (update.direction == ir::UpdateDirection::From &&
        update.item.rfind("field", 0) == 0)
      fromUpdate = &update;
  ASSERT_NE(fromUpdate, nullptr);
  EXPECT_EQ(fromUpdate->executions, 1u);
}

TEST(GuardedExecutionsTest, UnguardedUpdateMultipliesByProvableTrips) {
  // Contrast: the same read unguarded multiplies by the loop's 10 trips.
  Session session("unguarded_update.c", R"(
double field[256];
double probe[16];
int main() {
  for (int t = 0; t < 10; ++t) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < 256; ++i) {
      field[i] = field[i] + i;
    }
    probe[0] = field[0];
  }
  printf("%f %f\n", field[0], probe[0]);
  return 0;
}
)");
  const ir::MappingIr &ir = planIr(session);
  ASSERT_EQ(ir.regions.size(), 1u);
  const ir::UpdateItem *fromUpdate = nullptr;
  for (const ir::UpdateItem &update : ir.regions[0].updates)
    if (update.direction == ir::UpdateDirection::From &&
        update.item.rfind("field", 0) == 0)
      fromUpdate = &update;
  ASSERT_NE(fromUpdate, nullptr);
  EXPECT_EQ(fromUpdate->executions, 10u);
}

} // namespace
} // namespace ompdart
