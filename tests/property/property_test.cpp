// Property-based tests: a deterministic generator produces random OpenMP
// offload programs (varying array counts/sizes, kernel chains, host
// interleavings, loop nesting) and the pipeline must uphold, for every
// seed:
//   P1  the tool's transformed output re-parses,
//   P2  the transformed program produces byte-identical stdout,
//   P3  the transformed program never moves more bytes or issues more
//       memcpy calls than the implicit-mapping original,
//   P4  running the tool on its own output is rejected (the §IV-A input
//       contract), and
//   P5  the device data environment ends balanced (everything unmapped).
#include "driver/pipeline.hpp"
#include "frontend/parser.hpp"
#include "interp/interp.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

namespace ompdart {
namespace {

/// Deterministic random OpenMP program generator.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned seed) : rng_(seed) {}

  std::string generate() {
    const int arrayCount = pick(2, 4);
    std::ostringstream out;
    for (int a = 0; a < arrayCount; ++a)
      out << "double arr" << a << "[" << extent(a) << "];\n";
    out << "\nint main() {\n";
    // Host initialization of every array.
    for (int a = 0; a < arrayCount; ++a) {
      out << "  for (int i = 0; i < " << extent(a) << "; ++i) arr" << a
          << "[i] = i * 0." << (a + 1) << " + " << a << ";\n";
    }
    out << "  double checksum = 0.0;\n";
    out << "  double scale = 1." << pick(1, 9) << ";\n";
    // Reduction accumulators are declared before any loop so the tool's
    // declaration-before-region rule is satisfied (as the paper's error
    // message instructs users to do).
    out << "  double acc0 = 0.0;\n  double acc1 = 0.0;\n"
           "  double acc2 = 0.0;\n";

    const bool outerLoop = pick(0, 1) == 1;
    const int trips = pick(2, 6);
    if (outerLoop)
      out << "  for (int t = 0; t < " << trips << "; ++t) {\n";

    const int kernelCount = pick(1, 3);
    for (int k = 0; k < kernelCount; ++k) {
      const int dst = pick(0, arrayCount - 1);
      const int src = pick(0, arrayCount - 1);
      const int kind = pick(0, 3);
      if (kind == 3) {
        // Reduction kernel: device-written scalar consumed on the host.
        out << "  acc" << k << " = 0.0;\n";
        out << "  #pragma omp target teams distribute parallel for "
               "reduction(+: acc"
            << k << ")\n";
        out << "  for (int i = 0; i < " << extent(src) << "; ++i) {\n";
        out << "    acc" << k << " += arr" << src << "[i] * 0.125;\n";
        out << "  }\n";
        out << "  checksum += acc" << k << ";\n";
      } else {
        out << "  #pragma omp target teams distribute parallel for\n";
        out << "  for (int i = 0; i < " << std::min(extent(dst), extent(src))
            << "; ++i) {\n";
        switch (kind) {
        case 0:
          out << "    arr" << dst << "[i] = arr" << src
              << "[i] * scale + 1.0;\n";
          break;
        case 1:
          out << "    arr" << dst << "[i] += arr" << src << "[i] * 0.5;\n";
          break;
        default:
          out << "    if (arr" << src << "[i] > 2.0) { arr" << dst
              << "[i] = arr" << src << "[i] - 1.0; }\n";
          break;
        }
        out << "  }\n";
      }
      // Optional host interleaving: read/write an array or bump the scalar
      // the kernels consume (exercises update-to vs firstprivate logic).
      const int action = pick(0, 4);
      if (action == 1) {
        const int read = pick(0, arrayCount - 1);
        out << "  for (int i = 0; i < " << extent(read)
            << "; ++i) checksum += arr" << read << "[i];\n";
      } else if (action == 2) {
        const int write = pick(0, arrayCount - 1);
        out << "  for (int i = 0; i < " << extent(write) << "; ++i) arr"
            << write << "[i] = i * 0.25;\n";
      } else if (action == 3) {
        out << "  scale = scale + 0.0625;\n";
      }
    }
    if (outerLoop)
      out << "  }\n";

    // Final host consumption of everything.
    out << "  checksum += acc0 + acc1 + acc2;\n";
    for (int a = 0; a < arrayCount; ++a)
      out << "  for (int i = 0; i < " << extent(a)
          << "; ++i) checksum += arr" << a << "[i];\n";
    out << "  printf(\"%.6f\\n\", checksum);\n";
    out << "  return 0;\n}\n";
    return out.str();
  }

private:
  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }
  /// Array extents are fixed per array index for stable cross-references.
  int extent(int array) {
    while (static_cast<int>(extents_.size()) <= array)
      extents_.push_back(pick(16, 48));
    return extents_[static_cast<std::size_t>(array)];
  }

  std::mt19937 rng_;
  std::vector<int> extents_;
};

class PropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PropertyTest, PipelineInvariants) {
  ProgramGenerator generator(GetParam());
  const std::string source = generator.generate();
  SCOPED_TRACE("--- generated (seed " + std::to_string(GetParam()) +
               ") ---\n" + source);

  // The generated program must itself be valid.
  const auto baseline = interp::runProgram(source);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  Session session("generated.c", source);
  ASSERT_TRUE(session.run()) << [&] {
    std::string out;
    for (const auto &diag : session.diagnostics().sortedDiagnostics())
      out += diag.str() + "\n";
    return out;
  }();
  const std::string &output = session.rewrite();

  // P1: the transformed output re-parses.
  {
    SourceManager sourceManager("out.c", output);
    ASTContext context;
    DiagnosticEngine diags;
    EXPECT_TRUE(parseSource(sourceManager, context, diags))
        << diags.summary() << "\n--- transformed ---\n"
        << output;
  }

  // P2: identical observable behaviour.
  const auto transformed = interp::runProgram(output);
  ASSERT_TRUE(transformed.ok)
      << transformed.error << "\n--- transformed ---\n" << output;
  EXPECT_EQ(baseline.output, transformed.output)
      << "--- transformed ---\n"
      << output;

  // P3: never more traffic than the implicit rules.
  EXPECT_LE(transformed.ledger.totalBytes(), baseline.ledger.totalBytes())
      << "--- transformed ---\n"
      << output;
  EXPECT_LE(transformed.ledger.totalCalls(), baseline.ledger.totalCalls());

  // P4: the tool rejects its own output when it inserted data directives.
  if (output.find("#pragma omp target data") != std::string::npos ||
      output.find("#pragma omp target update") != std::string::npos) {
    Session again("generated2.c", output);
    EXPECT_FALSE(again.run());
  }

  // P5: kernel launches unchanged (the tool must not alter computation).
  EXPECT_EQ(baseline.ledger.kernelLaunches(),
            transformed.ledger.kernelLaunches());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range(0u, 80u));

} // namespace
} // namespace ompdart
