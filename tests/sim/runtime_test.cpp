// OpenMP 5.2 device-data-environment semantics (paper §III): reference
// counts, copy-on-transition rules, update semantics, and the Listing 3
// trap where an inner map(from:) does NOT copy because the reference count
// stays above zero.
#include "sim/runtime.hpp"

#include <gtest/gtest.h>

namespace ompdart::sim {
namespace {

TEST(LedgerTest, RecordsBytesAndCalls) {
  TransferLedger ledger;
  ledger.record(TransferDir::HtoD, 1000, "a");
  ledger.record(TransferDir::HtoD, 500, "b");
  ledger.record(TransferDir::DtoH, 250, "a");
  EXPECT_EQ(ledger.bytes(TransferDir::HtoD), 1500u);
  EXPECT_EQ(ledger.bytes(TransferDir::DtoH), 250u);
  EXPECT_EQ(ledger.calls(TransferDir::HtoD), 2u);
  EXPECT_EQ(ledger.calls(TransferDir::DtoH), 1u);
  EXPECT_EQ(ledger.totalBytes(), 1750u);
  EXPECT_EQ(ledger.totalCalls(), 3u);
}

TEST(LedgerTest, ResetClearsEverything) {
  TransferLedger ledger;
  ledger.record(TransferDir::HtoD, 10, "x");
  ledger.recordKernelLaunch();
  ledger.addHostOps(5);
  ledger.addDeviceOps(7);
  ledger.reset();
  EXPECT_EQ(ledger.totalBytes(), 0u);
  EXPECT_EQ(ledger.totalCalls(), 0u);
  EXPECT_EQ(ledger.kernelLaunches(), 0u);
  EXPECT_EQ(ledger.hostOps(), 0u);
  EXPECT_EQ(ledger.deviceOps(), 0u);
}

TEST(PresentTableTest, FirstMapToCopiesIn) {
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  const auto action = env.mapEnter(1, MapKind::To, 800, "a");
  EXPECT_TRUE(action.allocate);
  EXPECT_TRUE(action.copyToDevice);
  EXPECT_EQ(ledger.bytes(TransferDir::HtoD), 800u);
  EXPECT_TRUE(env.isPresent(1));
  EXPECT_EQ(env.refCount(1), 1u);
}

TEST(PresentTableTest, AllocDoesNotCopy) {
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  const auto action = env.mapEnter(1, MapKind::Alloc, 800, "a");
  EXPECT_TRUE(action.allocate);
  EXPECT_FALSE(action.copyToDevice);
  EXPECT_EQ(ledger.totalBytes(), 0u);
}

TEST(PresentTableTest, MapFromCopiesOnlyOnExit) {
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  const auto enter = env.mapEnter(1, MapKind::From, 400, "a");
  EXPECT_TRUE(enter.allocate);
  EXPECT_FALSE(enter.copyToDevice);
  const auto exit = env.mapExit(1, MapKind::From, 400, "a");
  EXPECT_TRUE(exit.copyFromDevice);
  EXPECT_TRUE(exit.deallocate);
  EXPECT_EQ(ledger.bytes(TransferDir::DtoH), 400u);
  EXPECT_FALSE(env.isPresent(1));
}

TEST(PresentTableTest, NestedRegionsIncrementRefCount) {
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  env.mapEnter(1, MapKind::ToFrom, 100, "a");
  const auto inner = env.mapEnter(1, MapKind::ToFrom, 100, "a");
  EXPECT_FALSE(inner.allocate);
  EXPECT_FALSE(inner.copyToDevice); // ref count 1 -> 2: no transfer
  EXPECT_EQ(env.refCount(1), 2u);
  EXPECT_EQ(ledger.calls(TransferDir::HtoD), 1u);
}

TEST(PresentTableTest, PaperListingThreeTrap) {
  // Outer region maps `a`; an inner kernel maps `a` with from. The paper's
  // point: the inner exit decrements 2 -> 1, so NO copy-out happens and the
  // host keeps reading stale data.
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  env.mapEnter(1, MapKind::ToFrom, 100, "a"); // outer target data
  env.mapEnter(1, MapKind::From, 100, "a");   // inner kernel map(from:)
  const auto innerExit = env.mapExit(1, MapKind::From, 100, "a");
  EXPECT_FALSE(innerExit.copyFromDevice) << "Listing 3: no copy at ref 2->1";
  EXPECT_TRUE(env.isPresent(1));
  const auto outerExit = env.mapExit(1, MapKind::ToFrom, 100, "a");
  EXPECT_TRUE(outerExit.copyFromDevice); // only the final exit copies
  EXPECT_EQ(ledger.calls(TransferDir::DtoH), 1u);
}

TEST(PresentTableTest, UpdateCopiesWhenPresent) {
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  env.mapEnter(1, MapKind::Alloc, 64, "a");
  EXPECT_TRUE(env.updateTo(1, 64, "a"));
  EXPECT_TRUE(env.updateFrom(1, 64, "a"));
  EXPECT_EQ(ledger.calls(TransferDir::HtoD), 1u);
  EXPECT_EQ(ledger.calls(TransferDir::DtoH), 1u);
}

TEST(PresentTableTest, UpdateIsNoOpWhenAbsent) {
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  EXPECT_FALSE(env.updateTo(9, 64, "a"));
  EXPECT_FALSE(env.updateFrom(9, 64, "a"));
  EXPECT_EQ(ledger.totalCalls(), 0u);
}

TEST(PresentTableTest, ExitWithoutEntryIsNoOp) {
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  const auto action = env.mapExit(5, MapKind::From, 64, "a");
  EXPECT_FALSE(action.copyFromDevice);
  EXPECT_FALSE(action.deallocate);
}

TEST(PresentTableTest, DeleteForcesRelease) {
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  env.mapEnter(1, MapKind::ToFrom, 64, "a");
  env.mapEnter(1, MapKind::ToFrom, 64, "a");
  const auto action = env.mapExit(1, MapKind::Delete, 64, "a");
  EXPECT_TRUE(action.deallocate);
  EXPECT_FALSE(env.isPresent(1));
}

TEST(PresentTableTest, RepeatedKernelMapsTransferEachTime) {
  // The unoptimized pattern (paper Listing 1): per-kernel tofrom maps move
  // data on every launch.
  TransferLedger ledger;
  DeviceDataEnvironment env(ledger);
  for (int i = 0; i < 10; ++i) {
    env.mapEnter(1, MapKind::ToFrom, 1000, "a");
    env.mapExit(1, MapKind::ToFrom, 1000, "a");
  }
  EXPECT_EQ(ledger.calls(TransferDir::HtoD), 10u);
  EXPECT_EQ(ledger.calls(TransferDir::DtoH), 10u);
  EXPECT_EQ(ledger.totalBytes(), 20000u);
}

TEST(CostModelTest, TransferTimeScalesWithBytesAndCalls) {
  CostModel model;
  TransferLedger small;
  small.record(TransferDir::HtoD, 1000, "a");
  TransferLedger large;
  large.record(TransferDir::HtoD, 100'000'000, "a");
  EXPECT_LT(model.transferSeconds(small), model.transferSeconds(large));

  TransferLedger manyCalls;
  for (int i = 0; i < 100; ++i)
    manyCalls.record(TransferDir::HtoD, 10, "a");
  TransferLedger oneCall;
  oneCall.record(TransferDir::HtoD, 1000, "a");
  EXPECT_LT(model.transferSeconds(oneCall),
            model.transferSeconds(manyCalls));
}

TEST(CostModelTest, TotalIncludesComputeAndLaunch) {
  CostModel model;
  TransferLedger ledger;
  ledger.addHostOps(1'000'000);
  ledger.addDeviceOps(1'000'000);
  ledger.recordKernelLaunch();
  const double total = model.totalSeconds(ledger);
  EXPECT_GT(total, model.transferSeconds(ledger));
  // Device ops must be much cheaper than host ops (GPU advantage).
  TransferLedger hostOnly;
  hostOnly.addHostOps(1'000'000);
  TransferLedger deviceOnly;
  deviceOnly.addDeviceOps(1'000'000);
  EXPECT_GT(model.totalSeconds(hostOnly), model.totalSeconds(deviceOnly));
}

} // namespace
} // namespace ompdart::sim
