#include "../common/test_util.hpp"

#include "cfg/cfg.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ompdart {
namespace {

using test::parse;

std::unique_ptr<AstCfg> buildCfg(const std::string &source,
                                 const std::string &fnName = "f") {
  auto parsed = test::parse(source);
  EXPECT_TRUE(parsed.ok) << parsed.diags->summary();
  FunctionDecl *fn = parsed.function(fnName);
  EXPECT_NE(fn, nullptr);
  CfgBuilder builder;
  auto cfg = builder.build(fn);
  // The AST context must outlive CFG consumers in real use; tests keep it
  // alive via static storage of the parse result.
  static std::vector<test::ParsedUnit> keepAlive;
  keepAlive.push_back(std::move(parsed));
  return cfg;
}

/// All blocks reachable from entry.
std::set<const BasicBlock *> reachable(const AstCfg &cfg) {
  std::set<const BasicBlock *> seen;
  std::vector<const BasicBlock *> stack{cfg.entry()};
  while (!stack.empty()) {
    const BasicBlock *block = stack.back();
    stack.pop_back();
    if (!seen.insert(block).second)
      continue;
    for (const CfgEdge &edge : block->successors())
      stack.push_back(edge.target);
  }
  return seen;
}

TEST(CfgTest, StraightLineCode) {
  auto cfg = buildCfg("void f() { int a = 1; int b = 2; a = b; }");
  // entry and exit at minimum; straight-line statements share entry block.
  EXPECT_NE(cfg->entry(), nullptr);
  EXPECT_NE(cfg->exit(), nullptr);
  auto blocks = reachable(*cfg);
  EXPECT_TRUE(blocks.count(cfg->exit()));
  EXPECT_EQ(cfg->entry()->elements().size(), 3u);
}

TEST(CfgTest, IfCreatesDiamond) {
  auto cfg = buildCfg("void f(int x) { if (x > 0) { x = 1; } else { x = 2; } "
                      "x = 3; }");
  // entry(+cond) -> then, else -> join -> exit
  const BasicBlock *entry = cfg->entry();
  ASSERT_EQ(entry->successors().size(), 2u);
  EXPECT_EQ(entry->successors()[0].kind, EdgeKind::True);
  EXPECT_EQ(entry->successors()[1].kind, EdgeKind::False);
  EXPECT_NE(entry->condition(), nullptr);
}

TEST(CfgTest, IfWithoutElseFallsThrough) {
  auto cfg = buildCfg("void f(int x) { if (x) { x = 1; } x = 2; }");
  const BasicBlock *entry = cfg->entry();
  ASSERT_EQ(entry->successors().size(), 2u);
  // False edge goes straight to the join block.
  const BasicBlock *joined = entry->successors()[1].target;
  EXPECT_FALSE(joined->elements().empty());
}

TEST(CfgTest, ForLoopHasBackEdge) {
  auto cfg = buildCfg(
      "void f(int n, int *a) { for (int i = 0; i < n; ++i) a[i] = i; }");
  bool sawBackEdge = false;
  for (const auto &block : cfg->blocks())
    for (const CfgEdge &edge : block->successors())
      sawBackEdge |= edge.kind == EdgeKind::LoopBack;
  EXPECT_TRUE(sawBackEdge);
}

TEST(CfgTest, WhileLoopShape) {
  auto cfg = buildCfg("void f(int n) { while (n > 0) { n--; } n = 5; }");
  bool sawBackEdge = false;
  unsigned loopHeads = 0;
  for (const auto &block : cfg->blocks()) {
    for (const CfgEdge &edge : block->successors())
      if (edge.kind == EdgeKind::LoopBack) {
        sawBackEdge = true;
        ++loopHeads;
      }
  }
  EXPECT_TRUE(sawBackEdge);
  EXPECT_EQ(loopHeads, 1u);
}

TEST(CfgTest, DoLoopExecutesBodyFirst) {
  auto cfg = buildCfg("void f(int n) { do { n--; } while (n > 0); }");
  // Entry's successor is the body block, not a condition block.
  const BasicBlock *entry = cfg->entry();
  ASSERT_EQ(entry->successors().size(), 1u);
  bool sawBackEdge = false;
  for (const auto &block : cfg->blocks())
    for (const CfgEdge &edge : block->successors())
      sawBackEdge |= edge.kind == EdgeKind::LoopBack;
  EXPECT_TRUE(sawBackEdge);
}

TEST(CfgTest, BreakLeavesLoop) {
  auto cfg = buildCfg(
      "void f(int n) { for (int i = 0; i < n; ++i) { if (i == 3) break; } }");
  bool sawBreakEdge = false;
  for (const auto &block : cfg->blocks())
    for (const CfgEdge &edge : block->successors())
      sawBreakEdge |= edge.kind == EdgeKind::Break;
  EXPECT_TRUE(sawBreakEdge);
}

TEST(CfgTest, ContinueTargetsLoopHead) {
  auto cfg = buildCfg("void f(int n) { for (int i = 0; i < n; ++i) { if (i) "
                      "continue; n--; } }");
  bool sawContinueEdge = false;
  for (const auto &block : cfg->blocks())
    for (const CfgEdge &edge : block->successors())
      sawContinueEdge |= edge.kind == EdgeKind::Continue;
  EXPECT_TRUE(sawContinueEdge);
}

TEST(CfgTest, ReturnEdgesToExit) {
  auto cfg = buildCfg("int f(int x) { if (x) return 1; return 0; }");
  unsigned returnEdges = 0;
  for (const auto &block : cfg->blocks())
    for (const CfgEdge &edge : block->successors())
      if (edge.kind == EdgeKind::Return) {
        ++returnEdges;
        EXPECT_EQ(edge.target, cfg->exit());
      }
  EXPECT_EQ(returnEdges, 2u);
}

TEST(CfgTest, SwitchFanOut) {
  auto cfg = buildCfg(R"(
void f(int k) {
  switch (k) {
  case 0: k = 1; break;
  case 1: k = 2; break;
  default: k = 3;
  }
}
)");
  unsigned caseEdges = 0;
  for (const auto &block : cfg->blocks())
    for (const CfgEdge &edge : block->successors())
      caseEdges += edge.kind == EdgeKind::SwitchCase ? 1 : 0;
  EXPECT_EQ(caseEdges, 3u);
}

TEST(CfgTest, OffloadRegionMarking) {
  auto cfg = buildCfg(R"(
void f(int n, double *a) {
  a[0] = 1.0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; ++i) a[i] = i;
  a[1] = 2.0;
}
)");
  ASSERT_EQ(cfg->kernels().size(), 1u);
  bool sawOffloadBlock = false;
  bool sawHostBlock = false;
  for (const auto &block : cfg->blocks()) {
    if (block->elements().empty())
      continue;
    if (block->isOffloaded())
      sawOffloadBlock = true;
    else
      sawHostBlock = true;
  }
  EXPECT_TRUE(sawOffloadBlock);
  EXPECT_TRUE(sawHostBlock);
}

TEST(CfgTest, KernelsListedInSourceOrder) {
  auto cfg = buildCfg(R"(
void f(int n, double *a) {
  #pragma omp target
  for (int i = 0; i < n; ++i) a[i] = i;
  #pragma omp target teams
  for (int i = 0; i < n; ++i) a[i] *= 2.0;
}
)");
  ASSERT_EQ(cfg->kernels().size(), 2u);
  EXPECT_EQ(cfg->kernels()[0]->directive(), OmpDirectiveKind::Target);
  EXPECT_EQ(cfg->kernels()[1]->directive(), OmpDirectiveKind::TargetTeams);
  EXPECT_LT(cfg->kernels()[0]->range().begin.offset,
            cfg->kernels()[1]->range().begin.offset);
}

TEST(CfgTest, EnclosingLoopsForKernel) {
  auto cfg = buildCfg(R"(
void f(int n, double *a) {
  for (int t = 0; t < 10; ++t) {
    #pragma omp target
    for (int i = 0; i < n; ++i) a[i] += t;
  }
}
)");
  ASSERT_EQ(cfg->kernels().size(), 1u);
  const auto *loops = cfg->enclosingLoops(cfg->kernels()[0]);
  ASSERT_NE(loops, nullptr);
  ASSERT_EQ(loops->size(), 1u);
  EXPECT_EQ((*loops)[0]->kind(), StmtKind::For);
}

TEST(CfgTest, NestedLoopStackOrder) {
  auto cfg = buildCfg(R"(
void f(int n, double *a) {
  for (int t = 0; t < 10; ++t) {
    while (n > 0) {
      #pragma omp target
      for (int i = 0; i < n; ++i) a[i] += t;
      n--;
    }
  }
}
)");
  ASSERT_EQ(cfg->kernels().size(), 1u);
  const auto *loops = cfg->enclosingLoops(cfg->kernels()[0]);
  ASSERT_NE(loops, nullptr);
  ASSERT_EQ(loops->size(), 2u);
  EXPECT_EQ((*loops)[0]->kind(), StmtKind::For);   // outermost first
  EXPECT_EQ((*loops)[1]->kind(), StmtKind::While);
}

TEST(CfgTest, TargetDataRegionIsNotOffloaded) {
  auto cfg = buildCfg(R"(
void f(int n, double *a) {
  #pragma omp target data map(tofrom: a[0:n])
  {
    a[0] = 1.0;
    #pragma omp target
    for (int i = 0; i < n; ++i) a[i] = i;
  }
}
)");
  ASSERT_EQ(cfg->kernels().size(), 1u);
  // The host statement inside the data region must not be marked offloaded.
  bool hostAssignFound = false;
  for (const auto &block : cfg->blocks()) {
    for (const Stmt *stmt : block->elements()) {
      if (stmt->kind() == StmtKind::Expr && !block->isOffloaded())
        hostAssignFound = true;
    }
  }
  EXPECT_TRUE(hostAssignFound);
}

TEST(CfgTest, UnreachableCodeGetsDetachedBlock) {
  auto cfg = buildCfg("int f() { return 1; int dead = 2; return dead; }");
  auto blocks = reachable(*cfg);
  // Some block holding `dead` is NOT reachable.
  bool foundUnreachable = false;
  for (const auto &block : cfg->blocks())
    if (!blocks.count(block.get()) && !block->elements().empty())
      foundUnreachable = true;
  EXPECT_TRUE(foundUnreachable);
}

TEST(CfgTest, DotExportMentionsBlocksAndEdges) {
  auto cfg = buildCfg(R"(
void f(int n, double *a) {
  #pragma omp target
  for (int i = 0; i < n; ++i) a[i] = i;
}
)");
  const std::string dot = cfg->toDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos); // offloaded block
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(CfgTest, BlockOfStmtLookup) {
  auto cfg = buildCfg("void f() { int a = 1; a = 2; }");
  const auto &elements = cfg->entry()->elements();
  ASSERT_EQ(elements.size(), 2u);
  EXPECT_EQ(cfg->blockOf(elements[0]), cfg->entry());
  EXPECT_EQ(cfg->blockOf(elements[1]), cfg->entry());
}

TEST(CfgTest, AllDefinedFunctionsGetCfgs) {
  auto parsed = parse(R"(
void a() { }
void b(int x);
void c() { a(); }
)");
  ASSERT_TRUE(parsed.ok);
  auto cfgs = buildAllCfgs(parsed.unit());
  EXPECT_EQ(cfgs.size(), 2u); // prototypes skipped
}

} // namespace
} // namespace ompdart
