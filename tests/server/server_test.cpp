// Plan-server coverage: NDJSON framing, parse-error replies, the
// PlanService dispatch surface, and the real socket daemon — concurrent
// clients on the same and on distinct TUs (byte-identical to a one-shot
// Session), graceful shutdown mid-connection, stale-socket cleanup on
// restart, and live-socket/bad-path bind refusals.
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/service.hpp"

#include "driver/pipeline.hpp"
#include "support/json.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ompdart::server {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string &tag) {
    path = fs::temp_directory_path() /
           ("ompdart-test-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

constexpr const char *kKernelSource = R"(double a[64];
double b[64];

int main() {
  for (int i = 0; i < 64; ++i)
    a[i] = i;
#pragma omp target teams distribute parallel for
  for (int i = 0; i < 64; ++i)
    b[i] = a[i] * 2.0;
  double acc = 0.0;
  for (int i = 0; i < 64; ++i)
    acc += b[i];
  return acc > 0.0 ? 0 : 1;
}
)";

constexpr const char *kOtherSource = R"(double x[32];
double y[32];

int main() {
  for (int i = 0; i < 32; ++i)
    x[i] = i * 0.5;
#pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; ++i)
    y[i] = x[i] + 1.0;
  double acc = 0.0;
  for (int i = 0; i < 32; ++i)
    acc += y[i];
  return acc > 0.0 ? 0 : 1;
}
)";

/// The one-shot answer the server must reproduce byte-for-byte.
std::string oneShotOutput(const std::string &name, const std::string &source) {
  Session session(name, source);
  EXPECT_TRUE(session.run());
  return session.rewrite();
}

json::Value planRequest(const std::string &name, const std::string &source,
                        int id) {
  json::Value request = json::Value::object();
  request.set("id", json::Value(static_cast<std::int64_t>(id)));
  request.set("method", json::Value("plan"));
  request.set("file", json::Value(name));
  request.set("source", json::Value(source));
  return request;
}

// -------------------------------------------------------------------------
// Framing
// -------------------------------------------------------------------------

TEST(LineFramerTest, ReassemblesLinesAcrossPartialFeeds) {
  LineFramer framer;
  const std::string wire = "{\"a\":1}\n{\"b\":2}\n";
  // Feed one byte at a time: framing must not depend on recv boundaries.
  for (char c : wire)
    ASSERT_TRUE(framer.feed(&c, 1));
  std::optional<std::string> first = framer.next();
  std::optional<std::string> second = framer.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, "{\"a\":1}");
  EXPECT_EQ(*second, "{\"b\":2}");
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_FALSE(framer.overflowed());
}

TEST(LineFramerTest, StripsCarriageReturnAndHoldsPartialLine) {
  LineFramer framer;
  const std::string wire = "{\"a\":1}\r\n{\"tail";
  ASSERT_TRUE(framer.feed(wire.data(), wire.size()));
  std::optional<std::string> line = framer.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "{\"a\":1}");
  // The unterminated tail stays buffered until its newline arrives.
  EXPECT_FALSE(framer.next().has_value());
  const std::string rest = "\"}\n";
  ASSERT_TRUE(framer.feed(rest.data(), rest.size()));
  line = framer.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "{\"tail\"}");
}

TEST(LineFramerTest, EmptyLinesAreDelivered) {
  LineFramer framer;
  const std::string wire = "\n\n";
  ASSERT_TRUE(framer.feed(wire.data(), wire.size()));
  std::optional<std::string> line = framer.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->empty());
}

// -------------------------------------------------------------------------
// PlanService dispatch (no sockets)
// -------------------------------------------------------------------------

TEST(PlanServiceTest, InvalidJsonGetsErrorReplyWithoutId) {
  PlanService service(ServiceOptions{});
  const json::Value response = service.handleLine("this is not json");
  EXPECT_FALSE(response.boolOr("ok", true));
  EXPECT_EQ(response.find("id"), nullptr);
  ASSERT_NE(response.find("error"), nullptr);
  EXPECT_NE(response.stringOr("error", "").find("invalid JSON"),
            std::string::npos);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.parseErrors, 1u);
  EXPECT_EQ(stats.errors, 1u);
}

TEST(PlanServiceTest, NonObjectAndUnknownMethodAreErrors) {
  PlanService service(ServiceOptions{});
  const json::Value arrayReply = service.handleLine("[1, 2, 3]");
  EXPECT_FALSE(arrayReply.boolOr("ok", true));

  json::Value unknown = json::Value::object();
  unknown.set("id", json::Value(static_cast<std::int64_t>(7)));
  unknown.set("method", json::Value("frobnicate"));
  const json::Value reply = service.handle(unknown);
  EXPECT_FALSE(reply.boolOr("ok", true));
  // The id WAS recoverable, so it is echoed even on errors.
  ASSERT_NE(reply.find("id"), nullptr);
  EXPECT_EQ(reply.find("id")->asInt(), 7);

  json::Value noMethod = json::Value::object();
  noMethod.set("file", json::Value("a.c"));
  EXPECT_FALSE(service.handle(noMethod).boolOr("ok", true));
}

TEST(PlanServiceTest, PlanMatchesOneShotSessionByteForByte) {
  PlanService service(ServiceOptions{});
  const json::Value response =
      service.handle(planRequest("kernel.c", kKernelSource, 1));
  ASSERT_TRUE(response.boolOr("ok", false));
  const json::Value *result = response.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->boolOr("success", false));
  EXPECT_EQ(result->stringOr("output", ""),
            oneShotOutput("kernel.c", kKernelSource));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.planRequests, 1u);
  EXPECT_EQ(stats.tusPlanned, 1u);
}

TEST(PlanServiceTest, UnknownConfigOverrideKeyIsRejected) {
  PlanService service(ServiceOptions{});
  json::Value request = planRequest("kernel.c", kKernelSource, 1);
  json::Value overrides = json::Value::object();
  overrides.set("notAKnob", json::Value(true));
  request.set("config", overrides);
  const json::Value response = service.handle(request);
  EXPECT_FALSE(response.boolOr("ok", true));
  EXPECT_NE(response.stringOr("error", "").find("notAKnob"),
            std::string::npos);
}

TEST(PlanServiceTest, StatsExposesAtomicCacheCountersMidTraffic) {
  TempDir dir("service-stats");
  ServiceOptions options;
  options.config.cacheDir = (dir.path / "cache").string();
  options.config.cacheMode = cache::CacheMode::ReadWrite;
  PlanService service(std::move(options));

  // One writer hammers plan requests while a reader polls stats: the
  // snapshot must always be well-formed (this is the satellite's "safe to
  // read in flight" contract; TSan would flag a non-atomic counter here).
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      json::Value statsRequest = json::Value::object();
      statsRequest.set("method", json::Value("stats"));
      const json::Value reply = service.handle(statsRequest);
      EXPECT_TRUE(reply.boolOr("ok", false));
      const json::Value *result = reply.find("result");
      ASSERT_NE(result, nullptr);
      EXPECT_NE(result->find("cache"), nullptr);
    }
  });
  for (int i = 0; i < 6; ++i) {
    const json::Value response =
        service.handle(planRequest("kernel.c", kKernelSource, i));
    ASSERT_TRUE(response.boolOr("ok", false));
  }
  done.store(true);
  reader.join();

  ASSERT_NE(service.cache(), nullptr);
  const cache::CacheStats cacheStats = service.cache()->stats();
  EXPECT_EQ(cacheStats.lookups, 6u);
  EXPECT_EQ(cacheStats.misses, 1u);
  EXPECT_EQ(cacheStats.hits, 5u);
  EXPECT_GE(cacheStats.memoHits, 4u);
}

TEST(PlanServiceTest, ProjectRequestsReplanIncrementally) {
  PlanService service(ServiceOptions{});

  const auto projectRequest = [&](const std::string &mainSource) {
    json::Value request = json::Value::object();
    request.set("method", json::Value("project"));
    request.set("project", json::Value("app"));
    json::Value tus = json::Value::array();
    json::Value mainTu = json::Value::object();
    mainTu.set("file", json::Value("main.c"));
    mainTu.set("source", json::Value(mainSource));
    tus.push(mainTu);
    json::Value otherTu = json::Value::object();
    otherTu.set("file", json::Value("other.c"));
    otherTu.set("source", json::Value(kOtherSource));
    tus.push(otherTu);
    request.set("tus", tus);
    return service.handle(request);
  };

  const json::Value cold = projectRequest(kKernelSource);
  ASSERT_TRUE(cold.boolOr("ok", false));
  EXPECT_EQ(cold.find("result")->uintOr("tusReplanned", 0), 2u);
  EXPECT_EQ(service.heldProjects(), 1u);

  // Identical request: everything reused, no sessions run.
  const json::Value warm = projectRequest(kKernelSource);
  ASSERT_TRUE(warm.boolOr("ok", false));
  EXPECT_EQ(warm.find("result")->uintOr("tusReplanned", 1), 0u);
  EXPECT_EQ(warm.find("result")->uintOr("tusReused", 0), 2u);

  // Comment-only edit: exactly the edited TU replans.
  const json::Value edited =
      projectRequest(std::string(kKernelSource) + "/* touched */\n");
  ASSERT_TRUE(edited.boolOr("ok", false));
  EXPECT_EQ(edited.find("result")->uintOr("tusReplanned", 0), 1u);

  json::Value invalidate = json::Value::object();
  invalidate.set("method", json::Value("invalidate"));
  invalidate.set("project", json::Value("app"));
  const json::Value dropped = service.handle(invalidate);
  ASSERT_TRUE(dropped.boolOr("ok", false));
  EXPECT_EQ(dropped.find("result")->uintOr("projectsDropped", 0), 1u);
  EXPECT_EQ(service.heldProjects(), 0u);
}

TEST(PlanServiceTest, InvalidateDuringConcurrentProjectRequestsIsSafe) {
  PlanService service(ServiceOptions{});

  // Regression: "invalidate" used to destroy a held IncrementalProject
  // (erase its map slot) while another worker was mid-replan on the same
  // instance — a use-after-free. The service now copies a shared_ptr out
  // under the lock, so the instance outlives every in-flight replan and
  // hammering both methods concurrently must stay clean (ASan/TSan builds
  // would flag the old behavior here).
  constexpr int kPlanners = 3;
  constexpr int kRequests = 6;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kPlanners; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        json::Value request = json::Value::object();
        request.set("method", json::Value("project"));
        request.set("project", json::Value("app"));
        json::Value tus = json::Value::array();
        json::Value tu = json::Value::object();
        tu.set("file", json::Value("main.c"));
        // Distinct comment suffixes force real replans each round.
        tu.set("source",
               json::Value(std::string(kKernelSource) + "// t" +
                           std::to_string(t) + "i" + std::to_string(i) +
                           "\n"));
        tus.push(tu);
        request.set("tus", tus);
        if (!service.handle(request).boolOr("ok", false))
          failed.store(true);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kPlanners * kRequests; ++i) {
      json::Value request = json::Value::object();
      request.set("method", json::Value("invalidate"));
      if (!service.handle(request).boolOr("ok", false))
        failed.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread &thread : threads)
    thread.join();
  EXPECT_FALSE(failed.load());
}

// -------------------------------------------------------------------------
// Socket daemon
// -------------------------------------------------------------------------

class PlanServerTest : public ::testing::Test {
protected:
  /// Socket paths live in /tmp directly: sockaddr_un caps the path at
  /// ~100 bytes and nested temp dirs flirt with it.
  std::string socketPathFor(const std::string &tag) {
    return (fs::temp_directory_path() /
            ("ompdart-sock-" + tag + "-" + std::to_string(::getpid())))
        .string();
  }
};

TEST_F(PlanServerTest, ServesPlanRequestsByteIdenticalToOneShot) {
  ServerOptions options;
  options.socketPath = socketPathFor("serve");
  PlanServer planServer(options);
  std::string error;
  ASSERT_TRUE(planServer.start(&error)) << error;

  PlanClient client;
  ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
  std::optional<json::Value> response =
      client.call(planRequest("kernel.c", kKernelSource, 42), &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_TRUE(response->boolOr("ok", false));
  ASSERT_NE(response->find("id"), nullptr);
  EXPECT_EQ(response->find("id")->asInt(), 42);
  EXPECT_EQ(response->find("result")->stringOr("output", ""),
            oneShotOutput("kernel.c", kKernelSource));

  // Malformed line on the same connection: error reply, connection lives.
  std::optional<std::string> rawReply = client.callRaw("{broken", &error);
  ASSERT_TRUE(rawReply.has_value()) << error;
  std::optional<json::Value> parsed = json::Value::parse(*rawReply);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->boolOr("ok", true));
  response = client.call(planRequest("kernel.c", kKernelSource, 43), &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_TRUE(response->boolOr("ok", false));

  client.close();
  planServer.stop();
  planServer.wait();
  EXPECT_FALSE(fs::exists(options.socketPath));
}

TEST_F(PlanServerTest, ConcurrentClientsOnSameAndDistinctTus) {
  TempDir dir("server-concurrent");
  ServerOptions options;
  options.socketPath = socketPathFor("conc");
  options.workers = 4;
  options.service.config.cacheDir = (dir.path / "cache").string();
  options.service.config.cacheMode = cache::CacheMode::ReadWrite;
  PlanServer planServer(options);
  std::string error;
  ASSERT_TRUE(planServer.start(&error)) << error;

  const std::string expectedKernel =
      oneShotOutput("kernel.c", kKernelSource);
  const std::string expectedOther = oneShotOutput("other.c", kOtherSource);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      PlanClient client;
      std::string clientError;
      if (!client.connect(options.socketPath, &clientError)) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        // Even clients hammer the same TU (cache/memo contention); odd
        // clients alternate TUs (distinct planning problems in flight).
        const bool other = (c % 2 == 1) && (r % 2 == 1);
        const std::string name = other ? "other.c" : "kernel.c";
        const std::string &source = other ? kOtherSource : kKernelSource;
        const std::string &expected =
            other ? expectedOther : expectedKernel;
        std::optional<json::Value> response = client.call(
            planRequest(name, source, c * 100 + r), &clientError);
        if (!response.has_value() || !response->boolOr("ok", false) ||
            response->find("result")->stringOr("output", "") != expected)
          ++failures;
      }
    });
  }
  for (std::thread &t : clients)
    t.join();
  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = planServer.service().stats();
  EXPECT_EQ(stats.planRequests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.errors, 0u);

  planServer.stop();
  planServer.wait();
  // Counted when a worker finishes a connection, so only stable after the
  // workers joined.
  EXPECT_GE(planServer.connectionsServed(),
            static_cast<std::uint64_t>(kClients));
}

TEST_F(PlanServerTest, ShutdownRequestAnswersInFlightWorkFirst) {
  ServerOptions options;
  options.socketPath = socketPathFor("shutdown");
  PlanServer planServer(options);
  std::string error;
  ASSERT_TRUE(planServer.start(&error)) << error;

  // Pipeline a plan AND a shutdown in one write: the server must answer
  // the plan (already buffered ahead of the shutdown) before stopping.
  PlanClient client;
  ASSERT_TRUE(client.connect(options.socketPath, &error)) << error;
  json::Value shutdownRequest = json::Value::object();
  shutdownRequest.set("id", json::Value(static_cast<std::int64_t>(2)));
  shutdownRequest.set("method", json::Value("shutdown"));
  const std::string wire =
      planRequest("kernel.c", kKernelSource, 1).dump(false) + "\n" +
      shutdownRequest.dump(false);
  std::optional<std::string> firstLine = client.callRaw(wire, &error);
  ASSERT_TRUE(firstLine.has_value()) << error;
  std::optional<json::Value> first = json::Value::parse(*firstLine);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->boolOr("ok", false));
  EXPECT_EQ(first->find("result")->stringOr("output", ""),
            oneShotOutput("kernel.c", kKernelSource));

  planServer.wait(); // returns because the shutdown request stopped it
  EXPECT_FALSE(planServer.running());
  EXPECT_FALSE(fs::exists(options.socketPath));
  EXPECT_FALSE(isSocketLive(options.socketPath));
}

TEST_F(PlanServerTest, StaleSocketFileIsCleanedUpOnRestart) {
  const std::string path = socketPathFor("stale");
  // Fake a crashed server: bind a socket at the path, close the fd
  // without unlinking — the file stays but nobody listens.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)),
            0);
  ::close(fd);
  ASSERT_TRUE(fs::exists(path));
  ASSERT_FALSE(isSocketLive(path));

  ServerOptions options;
  options.socketPath = path;
  PlanServer planServer(options);
  std::string error;
  ASSERT_TRUE(planServer.start(&error)) << error;
  EXPECT_TRUE(isSocketLive(path));
  planServer.stop();
  planServer.wait();
}

TEST_F(PlanServerTest, RefusesLiveSocketAndNonSocketPaths) {
  ServerOptions options;
  options.socketPath = socketPathFor("live");
  PlanServer first(options);
  std::string error;
  ASSERT_TRUE(first.start(&error)) << error;

  // A second server on the same live path must refuse, not steal it.
  PlanServer second(options);
  EXPECT_FALSE(second.start(&error));
  EXPECT_NE(error.find("live"), std::string::npos) << error;
  first.stop();
  first.wait();

  // A plain file at the path is never unlinked.
  const std::string filePath = socketPathFor("plainfile");
  {
    std::ofstream out(filePath);
    out << "precious\n";
  }
  ServerOptions fileOptions;
  fileOptions.socketPath = filePath;
  PlanServer third(fileOptions);
  EXPECT_FALSE(third.start(&error));
  EXPECT_TRUE(fs::exists(filePath));
  fs::remove(filePath);
}

} // namespace
} // namespace ompdart::server
