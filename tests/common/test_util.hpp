// Shared helpers for OMPDart tests: parse a source string and hand back the
// AST plus diagnostics in one bundle.
#pragma once

#include "frontend/parser.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <memory>
#include <string>

namespace ompdart::test {

struct ParsedUnit {
  std::unique_ptr<SourceManager> sourceManager;
  std::unique_ptr<ASTContext> context;
  std::unique_ptr<DiagnosticEngine> diags;
  bool ok = false;

  [[nodiscard]] const TranslationUnit &unit() const {
    return context->unit();
  }
  [[nodiscard]] FunctionDecl *function(const std::string &name) const {
    return context->unit().findFunction(name);
  }
};

inline ParsedUnit parse(const std::string &source,
                        const std::string &fileName = "test.c") {
  ParsedUnit result;
  result.sourceManager = std::make_unique<SourceManager>(fileName, source);
  result.context = std::make_unique<ASTContext>();
  result.diags = std::make_unique<DiagnosticEngine>();
  result.ok =
      parseSource(*result.sourceManager, *result.context, *result.diags);
  return result;
}

/// First statement of a function body, cast to the requested type.
template <typename T> T *firstStmtAs(FunctionDecl *fn) {
  if (fn == nullptr || fn->body() == nullptr || fn->body()->body().empty())
    return nullptr;
  return dynamic_cast<T *>(fn->body()->body().front());
}

/// Finds the first OpenMP directive in a statement tree (depth first).
OmpDirectiveStmt *findFirstDirective(Stmt *stmt);

inline OmpDirectiveStmt *findFirstDirectiveImpl(Stmt *stmt) {
  if (stmt == nullptr)
    return nullptr;
  if (auto *directive = dynamic_cast<OmpDirectiveStmt *>(stmt))
    return directive;
  switch (stmt->kind()) {
  case StmtKind::Compound:
    for (Stmt *sub : static_cast<CompoundStmt *>(stmt)->body())
      if (auto *found = findFirstDirectiveImpl(sub))
        return found;
    return nullptr;
  case StmtKind::If: {
    auto *ifStmt = static_cast<IfStmt *>(stmt);
    if (auto *found = findFirstDirectiveImpl(ifStmt->thenStmt()))
      return found;
    return findFirstDirectiveImpl(ifStmt->elseStmt());
  }
  case StmtKind::For:
    return findFirstDirectiveImpl(static_cast<ForStmt *>(stmt)->body());
  case StmtKind::While:
    return findFirstDirectiveImpl(static_cast<WhileStmt *>(stmt)->body());
  case StmtKind::Do:
    return findFirstDirectiveImpl(static_cast<DoStmt *>(stmt)->body());
  default:
    return nullptr;
  }
}

inline OmpDirectiveStmt *findFirstDirective(FunctionDecl *fn) {
  return fn != nullptr ? findFirstDirectiveImpl(fn->body()) : nullptr;
}

} // namespace ompdart::test
