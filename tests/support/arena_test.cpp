// Tests for the bump-pointer arena and the AST lifetime contract it backs:
// nodes live exactly as long as their ASTContext, so anything holding the
// Session's shared_ptr<ASTContext> may keep walking the tree after the
// Session itself is gone. The dangling-access cases are the ones ASan turns
// from "happens to work" into hard failures.
#include "driver/pipeline.hpp"
#include "support/arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ompdart {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDistinct) {
  BumpArena arena;
  std::vector<void *> seen;
  for (int i = 0; i < 1000; ++i) {
    void *p8 = arena.allocate(1, 1);
    void *p64 = arena.allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p64) % 8, 0u);
    seen.push_back(p8);
    seen.push_back(p64);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  EXPECT_GE(arena.bytesAllocated(), 1000u * 25u);
}

TEST(ArenaTest, LargeAllocationGetsItsOwnSlab) {
  BumpArena arena;
  // Larger than one 64 KiB slab: must still succeed, in a dedicated slab.
  char *big = static_cast<char *>(arena.allocate(256 * 1024, 16));
  big[0] = 1;
  big[256 * 1024 - 1] = 2; // ASan would flag an undersized slab here
  EXPECT_GE(arena.slabCount(), 1u);
}

TEST(ArenaTest, NonTrivialDestructorsRunOnReset) {
  struct Tracked {
    explicit Tracked(int *counter) : counter_(counter) { ++*counter_; }
    ~Tracked() { --*counter_; }
    int *counter_;
    std::string payload = "heap-owning member";
  };
  int alive = 0;
  {
    BumpArena arena;
    for (int i = 0; i < 100; ++i)
      arena.create<Tracked>(&alive);
    EXPECT_EQ(alive, 100);
    arena.reset();
    EXPECT_EQ(alive, 0);
    // The arena is reusable after reset.
    arena.create<Tracked>(&alive);
    EXPECT_EQ(alive, 1);
  }
  EXPECT_EQ(alive, 0); // destructor path on arena death too
}

TEST(ArenaTest, AstOutlivesSessionViaSharedContext) {
  // The Session's AST nodes are arena-allocated inside its ASTContext.
  // Holding shareAst() must keep every node reachable from the unit valid
  // after the Session is destroyed — under ASan a dangling node access here
  // fails loudly instead of silently reading freed slabs.
  const std::string source = R"(
    int data[64];
    void fill(int n) {
      for (int i = 0; i < n; ++i)
        data[i] = i;
    }
    int main(void) {
      fill(64);
      #pragma omp target teams distribute parallel for map(tofrom: data)
      for (int i = 0; i < 64; ++i)
        data[i] = data[i] * 2;
      return 0;
    }
  )";
  std::shared_ptr<ASTContext> ast;
  {
    Session session("arena_lifetime.c", source, PipelineConfig{});
    ASSERT_TRUE(session.run());
    ast = session.shareAst();
  }
  // Session (and its SourceManager/DiagnosticEngine) are gone; the tree is
  // not.
  ASSERT_NE(ast, nullptr);
  const TranslationUnit &unit = ast->unit();
  ASSERT_EQ(unit.functions.size(), 2u);
  const FunctionDecl *mainFn = unit.findFunction("main");
  ASSERT_NE(mainFn, nullptr);
  EXPECT_EQ(mainFn->name(), "main");
  ASSERT_NE(mainFn->body(), nullptr);
  EXPECT_FALSE(mainFn->body()->body().empty());
  ASSERT_EQ(unit.globals.size(), 1u);
  EXPECT_EQ(unit.globals[0]->name(), "data");
}

} // namespace
} // namespace ompdart
