// Tests for the process-global symbol interner: id stability within a
// process, agreement under concurrent interning (the plan server's worker
// threads intern from parallel batch/project requests), and the
// PortableSummary JSON round trip that spells interned ids back out as
// sorted names on disk.
#include "analysis/interproc.hpp"
#include "support/intern.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

namespace ompdart {
namespace {

TEST(InternTest, SameSpellingYieldsSameId) {
  const SymbolId a = internSymbol("intern_test_alpha");
  const SymbolId b = internSymbol("intern_test_alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, internSymbol(std::string("intern_test_alpha")));
}

TEST(InternTest, DistinctSpellingsYieldDistinctIds) {
  const SymbolId a = internSymbol("intern_test_left");
  const SymbolId b = internSymbol("intern_test_right");
  EXPECT_NE(a, b);
}

TEST(InternTest, NameRoundTripsThroughId) {
  const SymbolId id = internSymbol("intern_test_roundtrip");
  EXPECT_EQ(symbolName(id), "intern_test_roundtrip");
  // The id is stable: a later intern of the same spelling still maps to the
  // same storage.
  EXPECT_EQ(symbolName(internSymbol("intern_test_roundtrip")),
            "intern_test_roundtrip");
}

TEST(InternTest, EmptyAndEmbeddedNulByteSpellingsAreDistinctSymbols) {
  const SymbolId empty = internSymbol("");
  const std::string withNul("a\0b", 3);
  const SymbolId nul = internSymbol(withNul);
  EXPECT_NE(empty, nul);
  EXPECT_EQ(symbolName(empty), "");
  EXPECT_EQ(symbolName(nul), withNul);
}

TEST(InternTest, ConcurrentInterningAgreesOnIds) {
  // Server workers intern the same global/function names from concurrent
  // requests. Every thread interns an overlapping window of names and
  // records the ids it observed; afterwards all observations of one name
  // must agree, and every id must spell back to its name.
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::vector<std::map<std::string, SymbolId>> observed(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &observed]() {
      // Offset start so threads race on different names at any instant but
      // cover the same full set.
      for (int i = 0; i < kNames; ++i) {
        const int n = (i + t * 17) % kNames;
        const std::string name =
            "intern_test_concurrent_" + std::to_string(n);
        observed[static_cast<std::size_t>(t)][name] = internSymbol(name);
      }
    });
  }
  for (std::thread &worker : workers)
    worker.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(observed[0], observed[static_cast<std::size_t>(t)]);
  for (const auto &[name, id] : observed[0])
    EXPECT_EQ(symbolName(id), name);
}

TEST(InternTest, PortableSummaryGlobalsRoundTripByName) {
  PortableSummary summary;
  summary.function = "touches_globals";
  summary.signature = "void(int *)";
  summary.defined = true;
  summary.launchesKernels = true;
  summary.params.resize(1);
  summary.params[0].readHost = true;
  // Interning order deliberately differs from name order: serialization
  // must sort by spelled name, not id.
  ObjectEffect zig;
  zig.writeHost = true;
  ObjectEffect alpha;
  alpha.readDevice = true;
  summary.globals[internSymbol("zig_global")] = zig;
  summary.globals[internSymbol("alpha_global")] = alpha;

  const json::Value doc = summary.toJson();
  const std::string dumped = doc.dump();
  // Name-keyed and name-sorted on the wire.
  const std::size_t alphaPos = dumped.find("alpha_global");
  const std::size_t zigPos = dumped.find("zig_global");
  ASSERT_NE(alphaPos, std::string::npos);
  ASSERT_NE(zigPos, std::string::npos);
  EXPECT_LT(alphaPos, zigPos);

  std::string error;
  const std::optional<PortableSummary> parsed =
      PortableSummary::fromJson(doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, summary);
  EXPECT_TRUE(parsed->globals.at(internSymbol("zig_global")).writeHost);
  EXPECT_TRUE(parsed->globals.at(internSymbol("alpha_global")).readDevice);
}

TEST(InternTest, PortableSummaryJsonIsByteStableAcrossInterningOrder) {
  // Two summaries with the same content but opposite interning order must
  // serialize to identical bytes (the plan cache keys and the identity
  // digest both hash serialized summaries).
  PortableSummary first;
  first.function = "f";
  first.globals[internSymbol("intern_bytes_b")].writeHost = true;
  first.globals[internSymbol("intern_bytes_a")].readHost = true;

  PortableSummary second;
  second.function = "f";
  second.globals[internSymbol("intern_bytes_a")].readHost = true;
  second.globals[internSymbol("intern_bytes_b")].writeHost = true;

  EXPECT_EQ(first.toJson().dump(), second.toJson().dump());
}

} // namespace
} // namespace ompdart
