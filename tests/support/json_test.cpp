// Tests for the JSON value model (writer determinism, strict parser,
// integer fidelity) and the diagnostics sink/ordering machinery.
#include "support/diagnostics.hpp"
#include "support/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ompdart {
namespace {

TEST(JsonTest, ScalarsSerializeAndParse) {
  EXPECT_EQ(json::Value().dump(), "null");
  EXPECT_EQ(json::Value(true).dump(), "true");
  EXPECT_EQ(json::Value(false).dump(), "false");
  EXPECT_EQ(json::Value(42).dump(), "42");
  EXPECT_EQ(json::Value(-7).dump(), "-7");
  EXPECT_EQ(json::Value("hi").dump(), "\"hi\"");
  EXPECT_EQ(json::Value(1.5).dump(), "1.5");

  EXPECT_EQ(json::Value::parse("42")->asInt(), 42);
  EXPECT_EQ(json::Value::parse("-7")->asInt(), -7);
  EXPECT_TRUE(json::Value::parse("true")->asBool());
  EXPECT_TRUE(json::Value::parse("null")->isNull());
  EXPECT_DOUBLE_EQ(json::Value::parse("2.75")->asDouble(), 2.75);
  EXPECT_DOUBLE_EQ(json::Value::parse("1e3")->asDouble(), 1000.0);
}

TEST(JsonTest, LargeIntegersSurviveExactly) {
  const std::uint64_t big = (1ull << 53) + 1; // not representable as double
  json::Value value(big);
  const std::optional<json::Value> parsed = json::Value::parse(value.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->asUint(), big);
}

TEST(JsonTest, DoublesKeepTheirKindThroughARoundTrip) {
  // A whole-number double must re-parse as Double, not Int, or report
  // equality breaks after round trips.
  json::Value seconds(3.0);
  const std::optional<json::Value> parsed =
      json::Value::parse(seconds.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, seconds);
}

TEST(JsonTest, StringEscaping) {
  json::Value value(std::string("line\n\"quote\"\tand \\ control\x01"));
  const std::string dumped = value.dump();
  const std::optional<json::Value> parsed = json::Value::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, value);
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  json::Value object = json::Value::object();
  object.set("zulu", 1);
  object.set("alpha", 2);
  object.set("mike", 3);
  EXPECT_EQ(object.dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
  // Overwrite keeps the original position.
  object.set("alpha", 9);
  EXPECT_EQ(object.dump(), "{\"zulu\":1,\"alpha\":9,\"mike\":3}");
}

TEST(JsonTest, NestedStructuresRoundTrip) {
  json::Value doc = json::Value::object();
  json::Value list = json::Value::array();
  for (int i = 0; i < 3; ++i) {
    json::Value entry = json::Value::object();
    entry.set("index", i);
    entry.set("label", "item-" + std::to_string(i));
    list.push(std::move(entry));
  }
  doc.set("items", std::move(list));
  doc.set("empty", json::Value::array());
  doc.set("nothing", json::Value());

  for (const bool pretty : {false, true}) {
    const std::optional<json::Value> parsed =
        json::Value::parse(doc.dump(pretty));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, doc);
  }
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json::Value::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(json::Value::parse("[1,]").has_value());
  EXPECT_FALSE(json::Value::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(json::Value::parse("\"unterminated").has_value());
  EXPECT_FALSE(json::Value::parse("12 34").has_value());
  EXPECT_FALSE(json::Value::parse("tru").has_value());
  EXPECT_FALSE(json::Value::parse("").has_value());
}

TEST(JsonTest, ParseErrorCarriesLineAndColumn) {
  std::string error;
  EXPECT_FALSE(json::Value::parse("{\n  \"a\": !\n}", &error).has_value());
  EXPECT_EQ(error.rfind("2:", 0), 0u) << error;
}

// --- diagnostics sinks and ordering ---

TEST(DiagnosticSinkTest, EngineCollectsByDefault) {
  DiagnosticEngine engine;
  engine.error(SourceLocation{10, 2, 1}, "boom");
  engine.warning(SourceLocation{4, 1, 5}, "hmm");
  EXPECT_EQ(engine.diagnostics().size(), 2u);
  EXPECT_TRUE(engine.hasErrors());
  EXPECT_EQ(engine.errorCount(), 1u);
}

TEST(DiagnosticSinkTest, AttachedSinkSeesEveryDiagnostic) {
  DiagnosticEngine engine;
  std::vector<Diagnostic> forwarded;
  CollectingSink sink(forwarded);
  engine.setSink(&sink);
  engine.error(SourceLocation{0, 1, 1}, "first");
  engine.note(SourceLocation{5, 1, 6}, "second");
  ASSERT_EQ(forwarded.size(), 2u);
  EXPECT_EQ(forwarded[0].message, "first");
  EXPECT_EQ(forwarded[1].message, "second");
  // Collection still happens alongside the sink.
  EXPECT_EQ(engine.diagnostics().size(), 2u);

  engine.setSink(nullptr);
  engine.warning(SourceLocation{9, 2, 1}, "third");
  EXPECT_EQ(forwarded.size(), 2u);
  EXPECT_EQ(engine.diagnostics().size(), 3u);
}

TEST(DiagnosticSinkTest, StreamSinkPrettyPrints) {
  std::ostringstream out;
  StreamSink sink(out, "demo.c");
  DiagnosticEngine engine;
  engine.setSink(&sink);
  engine.error(SourceLocation{12, 3, 5}, "undeclared identifier");
  EXPECT_EQ(out.str(), "demo.c:3:5: error: undeclared identifier\n");

  std::ostringstream bare;
  StreamSink nameless(bare);
  nameless.handle(Diagnostic{Severity::Warning, SourceLocation{0, 1, 1},
                             "careful"});
  EXPECT_EQ(bare.str(), "1:1: warning: careful\n");
}

TEST(DiagnosticSinkTest, SortedDiagnosticsAreDeterministic) {
  DiagnosticEngine engine;
  engine.note(SourceLocation{50, 5, 1}, "later");
  engine.error(SourceLocation{}, "no location");
  engine.error(SourceLocation{10, 2, 1}, "earlier");
  engine.warning(SourceLocation{10, 2, 1}, "same spot, lower severity");

  const std::vector<Diagnostic> sorted = engine.sortedDiagnostics();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].message, "earlier"); // errors first at equal locations
  EXPECT_EQ(sorted[1].message, "same spot, lower severity");
  EXPECT_EQ(sorted[2].message, "later");
  EXPECT_EQ(sorted[3].message, "no location"); // invalid locations last
  // Emission order is untouched.
  EXPECT_EQ(engine.diagnostics().front().message, "later");
}

} // namespace
} // namespace ompdart
