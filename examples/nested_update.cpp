// The paper's Listing 6 / Algorithm 1 walkthrough: a kernel produces
// partial sums on the device, the host consumes them in nested loops, and
// the placement of `target update from(partial_sum)` decides whether data
// moves once per epoch or once per inner iteration. Compares Algorithm 1's
// hoisted placement against naive innermost placement (the paper's 2 GB ->
// 5 MB / 14x example).
//
//   $ ./nested_update
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"

#include <cstdio>

namespace {

const char *const kSource = R"(
#define HID 16
#define BLOCKS 64
#define EPOCHS 32

double partial_sum[BLOCKS * HID];
double hidden_units[HID];

int main() {
  double checksum = 0.0;
  for (int epoch = 0; epoch < EPOCHS; ++epoch) {
    #pragma omp target teams distribute parallel for
    for (int t = 0; t < BLOCKS * HID; ++t) {
      partial_sum[t] = t * 0.001 + epoch;
    }
    for (int j = 1; j <= HID; j++) {
      double sum = 0.0;
      for (int k = 0; k < BLOCKS; k++) {
        sum += partial_sum[k * HID + j - 1];
      }
      hidden_units[j - 1] = 1.0 / (1.0 + exp(-sum));
    }
  }
  for (int j = 0; j < HID; ++j) checksum += hidden_units[j];
  printf("checksum=%.6f\n", checksum);
  return 0;
}
)";

void showVariant(const char *title, bool hoist) {
  ompdart::PipelineConfig config;
  config.planner.hoistUpdates = hoist;
  ompdart::Session session("nested_update.c", kSource, config);
  if (!session.run()) {
    std::printf("%s: tool failed\n", title);
    return;
  }
  const std::string &output = session.rewrite();
  const auto run = ompdart::interp::runProgram(output);
  std::printf("%-28s %6u memcpy calls, %10llu bytes, output %s", title,
              run.ledger.totalCalls(),
              static_cast<unsigned long long>(run.ledger.totalBytes()),
              run.output.c_str());
  // Show where the update landed.
  const auto pos = output.find("#pragma omp target update from");
  if (pos != std::string::npos) {
    const auto lineStart = output.rfind('\n', pos) + 1;
    const auto lineEnd = output.find('\n', pos);
    std::printf("  placement: %s\n",
                output.substr(lineStart, lineEnd - lineStart).c_str());
  }
}

} // namespace

int main() {
  std::printf("Algorithm 1 (FIND_UPDATE_INSERT_LOC) on the backprop motif\n");
  std::printf("---------------------------------------------------------\n");
  showVariant("Algorithm 1 (hoisted):", true);
  showVariant("naive (innermost loop):", false);

  const auto baseline = ompdart::interp::runProgram(kSource);
  std::printf("%-28s %6u memcpy calls, %10llu bytes (implicit rules)\n",
              "no tool (reference):", baseline.ledger.totalCalls(),
              static_cast<unsigned long long>(baseline.ledger.totalBytes()));
  return 0;
}
