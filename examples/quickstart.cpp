// Quickstart: feed OMPDart an OpenMP offload program with no explicit data
// mappings and print the transformed source plus the plan summary.
//
//   $ ./quickstart
#include "driver/tool.hpp"

#include <cstdio>

int main() {
  const std::string source = R"(void saxpy(double *x, double *y, int n) {
  double a = 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; ++i) {
      y[i] = a * x[i] + y[i];
    }
  }
}
)";

  std::printf("=== input ===\n%s\n", source.c_str());

  const ompdart::ToolResult result = ompdart::runOmpDart(source);
  if (!result.success) {
    std::printf("tool failed:\n");
    for (const auto &diag : result.diagnostics)
      std::printf("  %s\n", diag.str().c_str());
    return 1;
  }

  std::printf("=== OMPDart output ===\n%s\n", result.output.c_str());
  std::printf("=== plan summary ===\n");
  for (const auto &region : result.plan.regions) {
    std::printf("function '%s': %zu map item(s), %zu update(s), %zu "
                "firstprivate(s)\n",
                region.function->name().c_str(), region.maps.size(),
                region.updates.size(), region.firstprivates.size());
    for (const auto &map : region.maps)
      std::printf("  map(%s: %s)\n",
                  ompdart::mapTypeSpelling(map.mapType),
                  map.section.empty() ? map.var->name().c_str()
                                      : map.section.c_str());
    for (const auto &fp : region.firstprivates)
      std::printf("  firstprivate(%s) on a kernel\n",
                  fp.var->name().c_str());
  }
  std::printf("tool time: %.4f s\n", result.toolSeconds);
  return 0;
}
