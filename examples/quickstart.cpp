// Quickstart: feed OMPDart an OpenMP offload program with no explicit data
// mappings and print the transformed source plus the plan summary — using
// the staged Session API (each stage is a lazy, cached artifact).
//
//   $ ./quickstart
#include "driver/pipeline.hpp"

#include <cstdio>

int main() {
  const std::string source = R"(void saxpy(double *x, double *y, int n) {
  double a = 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; ++i) {
      y[i] = a * x[i] + y[i];
    }
  }
}
)";

  std::printf("=== input ===\n%s\n", source.c_str());

  ompdart::Session session("quickstart.c", source);
  if (!session.run()) {
    std::printf("tool failed:\n");
    for (const auto &diag : session.diagnostics().sortedDiagnostics())
      std::printf("  %s\n", diag.str().c_str());
    return 1;
  }

  std::printf("=== OMPDart output ===\n%s\n", session.rewrite().c_str());
  std::printf("=== plan summary (Mapping IR) ===\n");
  for (const auto &region : session.ir().regions) {
    std::printf("function '%s': %zu map item(s), %zu update(s), %zu "
                "firstprivate(s)\n",
                region.function.c_str(), region.maps.size(),
                region.updates.size(), region.firstprivates.size());
    for (const auto &map : region.maps)
      std::printf("  map(%s: %s)\n",
                  ompdart::ir::mapTypeSpellingWithModifiers(map.type,
                                                            map.modifiers)
                      .c_str(),
                  map.item.c_str());
    for (const auto &fp : region.firstprivates)
      std::printf("  firstprivate(%s) on the kernel at line %u\n",
                  fp.var.c_str(), fp.kernelLine);
  }
  std::printf("=== per-stage timings ===\n");
  for (const auto &timing : session.report().timings)
    std::printf("  %-9s %.6f s\n", ompdart::stageName(timing.stage),
                timing.seconds);
  std::printf("tool time: %.4f s\n", session.totalSeconds());
  return 0;
}
