// Command-line front end over the staged pipeline API: read a C file with
// OpenMP offload kernels, run the pipeline (optionally stopping after a
// given stage), and emit transformed source, the mapping plan, the
// serialized Mapping IR, or the full JSON report.
//
//   $ ./ompdart_cli input.c                    # transformed source to stdout
//   $ ./ompdart_cli input.c -o output.c        # ... or to a file
//   $ ./ompdart_cli input.c --emit=json        # structured report (plan,
//                                              #  diagnostics, timings)
//   $ ./ompdart_cli input.c --emit=plan        # human-readable plan summary
//   $ ./ompdart_cli input.c --emit=ir          # self-contained Mapping IR
//   $ ./ompdart_cli input.c --cost-model=sim   # cost-driven candidate choice
//   $ ./ompdart_cli input.c --stop-after=plan --emit=json
//   $ ./ompdart_cli input.c --dump-ast         # front-end debugging
//   $ ./ompdart_cli input.c --no-firstprivate --no-hoist
#include "driver/pipeline.hpp"
#include "driver/project.hpp"
#include "frontend/ast_printer.hpp"
#include "frontend/parser.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

const std::vector<std::string> &emitKinds() {
  static const std::vector<std::string> kinds = {"source", "plan", "ir",
                                                 "json"};
  return kinds;
}

std::string joined(const std::vector<std::string> &names) {
  std::string out;
  for (const std::string &name : names)
    out += (out.empty() ? "" : " | ") + name;
  return out;
}

void usage(const char *argv0) {
  std::printf(
      "usage: %s <input.c> [options]\n"
      "       %s --project=<manifest.json> [options]\n"
      "  --project=<file>     whole-program mode: analyze every TU listed\n"
      "                       in the manifest ({\"tus\": [\"a.c\", ...]})\n"
      "                       as one program; -o names an output DIRECTORY\n"
      "  -o <file>            write output to <file> instead of stdout\n"
      "  --emit=<kind>        %s (default: source)\n"
      "  --stop-after=<stage> parse | cfg | interproc | plan | rewrite |"
      " metrics\n"
      "  --cost-model=<name>  %s (default: paper-greedy)\n"
      "  --dump-ast           print the AST instead of transforming\n"
      "  --no-firstprivate    disable the firstprivate optimization\n"
      "  --no-hoist           disable Algorithm 1 update hoisting\n"
      "  --per-kernel         do not extend data regions over loops\n"
      "  --no-interproc       disable the interprocedural fixed point\n"
      "  --cache-dir=<dir>    content-addressed plan cache directory\n"
      "  --cache=<mode>       off | read | read-write (default: read-write\n"
      "                       once --cache-dir is set)\n",
      argv0, argv0, joined(emitKinds()).c_str(),
      joined(ompdart::costModelNames()).c_str());
}

std::string renderPlanSummaryFor(const ompdart::Report &report) {
  std::ostringstream out;
  for (const ompdart::ir::Region &region : report.plan.regions) {
    out << "function '" << region.function << "' (lines "
        << region.beginLine() << ".." << region.endLine() << ", "
        << (region.appendsToKernel ? "clauses on kernel pragma"
                                   : "new target data region")
        << ")\n";
    for (const ompdart::ir::MapItem &map : region.maps)
      out << "  map("
          << ompdart::ir::mapTypeSpellingWithModifiers(map.type,
                                                       map.modifiers)
          << ": " << map.item << ")  ~" << map.approxBytes << " bytes\n";
    for (const ompdart::ir::UpdateItem &update : region.updates)
      out << "  update " << ompdart::ir::updateDirectionName(update.direction)
          << "(" << update.item << ") at line " << update.anchor.line << " ["
          << ompdart::ir::updatePlacementName(update.placement)
          << (update.hoisted ? ", hoisted" : "") << "]\n";
    for (const ompdart::ir::FirstprivateItem &fp : region.firstprivates)
      out << "  firstprivate(" << fp.var << ") on kernel at line "
          << fp.kernelLine << "\n";
  }
  if (report.plan.regions.empty())
    out << "no target data regions planned\n";
  return out.str();
}

/// Whole-program mode: run the manifest's TUs as one ProjectSession and
/// emit per-TU sources (into the -o directory or stdout with separators),
/// the aggregate JSON report, or per-TU plan/IR sections.
int runProjectMode(const std::string &manifestPath,
                   const std::string &outputPath, const std::string &emit,
                   ompdart::PipelineConfig config) {
  namespace fs = std::filesystem;
  std::string error;
  auto manifest = ompdart::ProjectManifest::fromJsonFile(manifestPath,
                                                         &error);
  if (!manifest) {
    std::fprintf(stderr, "cannot load project '%s': %s\n",
                 manifestPath.c_str(), error.c_str());
    return 1;
  }
  ompdart::ProjectSession project(std::move(*manifest), std::move(config));
  const bool ok = project.run();

  for (const ompdart::Diagnostic &diag : project.linkDiagnostics())
    std::fprintf(stderr, "link: %s: %s\n",
                 ompdart::severityName(diag.severity),
                 diag.message.c_str());
  for (const ompdart::ProjectItem &item : project.items())
    for (const ompdart::Diagnostic &diag : item.report.diagnostics)
      std::fprintf(stderr, "%s:%s\n", item.name.c_str(),
                   diag.str().c_str());

  if (emit == "json") {
    // The aggregate report is one document: here -o names a file, unlike
    // the per-TU emissions below where it names a directory.
    const std::string payload =
        project.reportJson().dump(/*pretty=*/true);
    if (outputPath.empty()) {
      std::printf("%s", payload.c_str());
    } else {
      std::ofstream out(outputPath);
      out << payload;
      out.flush();
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     outputPath.c_str());
        return 1;
      }
    }
    return ok ? 0 : 1;
  }

  bool writeFailed = false;
  std::set<std::string> usedNames;
  for (const ompdart::ProjectItem &item : project.items()) {
    std::string payload;
    if (emit == "plan") {
      payload = renderPlanSummaryFor(item.report);
    } else if (emit == "ir") {
      payload = item.report.plan.toJson().dump(/*pretty=*/true);
    } else {
      payload = item.output;
    }
    if (outputPath.empty()) {
      std::printf("// ===== %s =====\n%s", item.name.c_str(),
                  payload.c_str());
      if (!payload.empty() && payload.back() != '\n')
        std::printf("\n");
    } else {
      std::error_code ec;
      fs::create_directories(outputPath, ec);
      // Flatten the TU name into one path component so same-basename TUs
      // from different directories land in distinct files; flattening is
      // not injective ("a/b.c" vs "a_b.c"), so residual collisions get a
      // numeric suffix instead of silently overwriting.
      std::string flat = item.name;
      for (char &c : flat)
        if (c == '/' || c == '\\')
          c = '_';
      std::string unique = flat;
      for (unsigned n = 2; !usedNames.insert(unique).second; ++n)
        unique = flat + "." + std::to_string(n);
      const fs::path target = fs::path(outputPath) / unique;
      std::ofstream out(target);
      out << payload;
      out.flush();
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     target.string().c_str());
        writeFailed = true;
      } else {
        std::fprintf(stderr, "wrote %s\n", target.string().c_str());
      }
    }
  }
  return (ok && !writeFailed) ? 0 : 1;
}

std::string renderPlanSummary(ompdart::Session &session) {
  return renderPlanSummaryFor(session.report());
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  std::string inputPath;
  std::string outputPath;
  std::string projectPath;
  std::string emit = "source";
  bool dumpAst = false;
  bool cacheModeExplicit = false;
  ompdart::PipelineConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      outputPath = argv[++i];
    } else if (arg.rfind("--project=", 0) == 0) {
      projectPath = arg.substr(10);
    } else if (arg == "--project" && i + 1 < argc) {
      projectPath = argv[++i];
    } else if (arg == "--dump-ast") {
      dumpAst = true;
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit = arg.substr(7);
      bool known = false;
      for (const std::string &kind : emitKinds())
        known = known || emit == kind;
      if (!known) {
        std::fprintf(stderr, "unknown emit kind '%s' (valid kinds: %s)\n",
                     emit.c_str(), joined(emitKinds()).c_str());
        return 1;
      }
    } else if (arg.rfind("--stop-after=", 0) == 0) {
      const std::string stage = arg.substr(13);
      config.stopAfter = ompdart::stageFromName(stage);
      if (!config.stopAfter) {
        std::fprintf(stderr, "unknown stage '%s'\n", stage.c_str());
        return 1;
      }
    } else if (arg.rfind("--cost-model=", 0) == 0) {
      config.costModel = arg.substr(13);
      if (ompdart::makeCostModel(config.costModel) == nullptr) {
        std::fprintf(stderr, "unknown cost model '%s' (known models: %s)\n",
                     config.costModel.c_str(),
                     joined(ompdart::costModelNames()).c_str());
        return 1;
      }
    } else if (arg == "--no-firstprivate") {
      config.planner.useFirstprivate = false;
    } else if (arg == "--no-hoist") {
      config.planner.hoistUpdates = false;
    } else if (arg == "--per-kernel") {
      config.planner.extendRegionOverLoops = false;
    } else if (arg == "--no-interproc") {
      config.planner.interprocedural = false;
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      config.cacheDir = arg.substr(12);
    } else if (arg.rfind("--cache=", 0) == 0) {
      const std::string mode = arg.substr(8);
      const auto parsed = ompdart::cache::cacheModeFromName(mode);
      if (!parsed) {
        std::fprintf(stderr,
                     "unknown cache mode '%s' (off | read | read-write)\n",
                     mode.c_str());
        return 1;
      }
      config.cacheMode = *parsed;
      cacheModeExplicit = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      inputPath = arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (inputPath.empty() && projectPath.empty()) {
    usage(argv[0]);
    return 1;
  }
  if (!projectPath.empty() && !inputPath.empty()) {
    std::fprintf(stderr,
                 "--project and a positional input are mutually exclusive\n");
    return 1;
  }
  if (!projectPath.empty() && dumpAst) {
    std::fprintf(stderr,
                 "--dump-ast is a single-file flag; run it per TU\n");
    return 1;
  }
  if (emit == "source" && config.stopAfter &&
      *config.stopAfter < ompdart::Stage::Rewrite) {
    std::fprintf(stderr,
                 "--emit=source needs the rewrite stage; drop --stop-after "
                 "or use --emit=plan/ir/json\n");
    return 1;
  }

  std::string source;
  if (projectPath.empty()) {
    std::ifstream in(inputPath);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", inputPath.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  if (dumpAst) {
    ompdart::SourceManager sourceManager(inputPath, source);
    ompdart::ASTContext context;
    ompdart::DiagnosticEngine diags;
    if (!ompdart::parseSource(sourceManager, context, diags)) {
      std::fprintf(stderr, "%s", diags.summary().c_str());
      return 1;
    }
    std::printf("%s", ompdart::dumpTranslationUnit(context.unit()).c_str());
    return 0;
  }

  // Flag order must not matter: --cache-dir without an explicit --cache
  // defaults to read-write; an explicit --cache=off wins either way.
  if (!config.cacheDir.empty() && !cacheModeExplicit)
    config.cacheMode = ompdart::cache::CacheMode::ReadWrite;
  if (config.cacheDir.empty() &&
      config.cacheMode != ompdart::cache::CacheMode::Off) {
    std::fprintf(stderr, "--cache=%s needs --cache-dir=<dir>\n",
                 ompdart::cache::cacheModeName(config.cacheMode));
    return 1;
  }
  if (!config.cacheDir.empty() &&
      config.cacheMode == ompdart::cache::CacheMode::Off)
    config.cacheDir.clear();

  if (!projectPath.empty())
    return runProjectMode(projectPath, outputPath, emit, std::move(config));

  ompdart::Session session(inputPath, source, config);
  // Pretty-print diagnostics to stderr as they are reported.
  ompdart::StreamSink diagnosticPrinter(std::cerr, inputPath);
  session.diagnostics().setSink(&diagnosticPrinter);

  const bool ok = session.run();

  switch (session.planCacheStatus()) {
  case ompdart::Session::PlanCacheStatus::Disabled:
    break;
  case ompdart::Session::PlanCacheStatus::Uncacheable:
    std::fprintf(stderr, "plan cache: uncacheable configuration\n");
    break;
  case ompdart::Session::PlanCacheStatus::Miss:
  case ompdart::Session::PlanCacheStatus::Hit:
    std::fprintf(stderr, "plan cache: %s (key %s)\n",
                 session.planFromCache() ? "hit" : "miss",
                 session.planCacheKey().id().c_str());
    break;
  }

  std::string payload;
  if (emit == "json") {
    payload = session.report().toJson().dump(/*pretty=*/true);
  } else if (emit == "plan") {
    payload = renderPlanSummary(session);
  } else if (emit == "ir") {
    payload = session.ir().toJson().dump(/*pretty=*/true);
  } else {
    if (!ok)
      return 1;
    payload = session.rewrite();
  }

  if (outputPath.empty()) {
    std::printf("%s", payload.c_str());
  } else {
    std::ofstream out(outputPath);
    out << payload;
    const ompdart::Report &report = session.report();
    std::size_t maps = 0, updates = 0;
    for (const ompdart::ir::Region &region : report.plan.regions) {
      maps += region.maps.size();
      updates += region.updates.size();
    }
    std::fprintf(stderr,
                 "wrote %s (%zu map items, %zu updates, tool time %.4fs)\n",
                 outputPath.c_str(), maps, updates, report.totalSeconds);
  }
  return ok ? 0 : 1;
}
