// Command-line front end over the staged pipeline API: read a C file with
// OpenMP offload kernels, run the pipeline (optionally stopping after a
// given stage), and emit transformed source, the mapping plan, the
// serialized Mapping IR, or the full JSON report.
//
//   $ ./ompdart_cli input.c                    # transformed source to stdout
//   $ ./ompdart_cli input.c -o output.c        # ... or to a file
//   $ ./ompdart_cli input.c --emit=json        # structured report (plan,
//                                              #  diagnostics, timings)
//   $ ./ompdart_cli input.c --emit=plan        # human-readable plan summary
//   $ ./ompdart_cli input.c --emit=ir          # self-contained Mapping IR
//   $ ./ompdart_cli input.c --cost-model=sim   # cost-driven candidate choice
//   $ ./ompdart_cli input.c --stop-after=plan --emit=json
//   $ ./ompdart_cli input.c --dump-ast         # front-end debugging
//   $ ./ompdart_cli input.c --no-firstprivate --no-hoist
#include "driver/batch.hpp"
#include "driver/pipeline.hpp"
#include "driver/project.hpp"
#include "frontend/ast_printer.hpp"
#include "frontend/parser.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "support/hash.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

const std::vector<std::string> &emitKinds() {
  static const std::vector<std::string> kinds = {"source", "plan", "ir",
                                                 "json"};
  return kinds;
}

std::string joined(const std::vector<std::string> &names) {
  std::string out;
  for (const std::string &name : names)
    out += (out.empty() ? "" : " | ") + name;
  return out;
}

std::vector<std::string> stageNames() {
  std::vector<std::string> names;
  for (const ompdart::Stage stage : ompdart::allStages())
    names.emplace_back(ompdart::stageName(stage));
  return names;
}

void usage(const char *argv0) {
  std::printf(
      "usage: %s <input.c> [options]\n"
      "       %s --project=<manifest.json> [options]\n"
      "  --project=<file>     whole-program mode: analyze every TU listed\n"
      "                       in the manifest ({\"tus\": [\"a.c\", ...]})\n"
      "                       as one program; -o names an output DIRECTORY\n"
      "  -o <file>            write output to <file> instead of stdout\n"
      "  --emit=<kind>        %s (default: source)\n"
      "  --stop-after=<stage> %s\n"
      "  --cost-model=<name>  %s (default: paper-greedy)\n"
      "  --check              report plan-safety findings (stale-device-read,\n"
      "                       stale-host-read, dead-transfer, double-transfer,\n"
      "                       exit-without-entry) as warnings\n"
      "  --check=error        promote plan-safety findings to errors (the\n"
      "                       pipeline stops before the rewrite stage)\n"
      "  --dump-ast           print the AST instead of transforming\n"
      "  --no-firstprivate    disable the firstprivate optimization\n"
      "  --no-hoist           disable Algorithm 1 update hoisting\n"
      "  --per-kernel         do not extend data regions over loops\n"
      "  --no-interproc       disable the interprocedural fixed point\n"
      "  --cache-dir=<dir>    content-addressed plan cache directory\n"
      "  --cache=<mode>       off | read | read-write (default: read-write\n"
      "                       once --cache-dir is set)\n"
      "  --fuzz=<N>           generate N seeded programs and run the\n"
      "                       differential plan-correctness oracle on each\n"
      "                       (-o names a DIRECTORY: corpus + manifest.json;\n"
      "                       --emit=json prints the full fuzz report)\n"
      "  --gen-seed=<K>       first seed of the fuzz corpus (default: 1)\n"
      "  --shrink             minimize failing programs to statement-minimal\n"
      "                       repros (written as <name>.shrunk.c under -o)\n"
      "  --serve=<socket>     plan-server daemon on a Unix socket: the plan\n"
      "                       cache and project summaries stay hot across\n"
      "                       requests (NDJSON protocol; see README)\n"
      "  --workers=<N>        connection worker threads for --serve\n"
      "  --connect=<socket>   client mode: plan the positional file (or\n"
      "                       --project manifest) via a running server\n"
      "  --request=<file|->   with --connect: replay raw NDJSON request\n"
      "                       lines and print each response line\n"
      "  --shutdown           with --connect: ask the server to stop\n",
      argv0, argv0, joined(emitKinds()).c_str(),
      joined(stageNames()).c_str(),
      joined(ompdart::costModelNames()).c_str());
}

std::string renderPlanSummaryFor(const ompdart::Report &report) {
  std::ostringstream out;
  for (const ompdart::ir::Region &region : report.plan.regions) {
    out << "function '" << region.function << "' (lines "
        << region.beginLine() << ".." << region.endLine() << ", "
        << (region.appendsToKernel ? "clauses on kernel pragma"
                                   : "new target data region")
        << ")\n";
    for (const ompdart::ir::MapItem &map : region.maps)
      out << "  map("
          << ompdart::ir::mapTypeSpellingWithModifiers(map.type,
                                                       map.modifiers)
          << ": " << map.item << ")  ~" << map.approxBytes << " bytes\n";
    for (const ompdart::ir::UpdateItem &update : region.updates)
      out << "  update " << ompdart::ir::updateDirectionName(update.direction)
          << "(" << update.item << ") at line " << update.anchor.line << " ["
          << ompdart::ir::updatePlacementName(update.placement)
          << (update.hoisted ? ", hoisted" : "") << "]\n";
    for (const ompdart::ir::FirstprivateItem &fp : region.firstprivates)
      out << "  firstprivate(" << fp.var << ") on kernel at line "
          << fp.kernelLine << "\n";
  }
  if (report.plan.regions.empty())
    out << "no target data regions planned\n";
  return out.str();
}

/// Whole-program mode: run the manifest's TUs as one ProjectSession and
/// emit per-TU sources (into the -o directory or stdout with separators),
/// the aggregate JSON report, or per-TU plan/IR sections.
int runProjectMode(const std::string &manifestPath,
                   const std::string &outputPath, const std::string &emit,
                   ompdart::PipelineConfig config) {
  namespace fs = std::filesystem;
  std::string error;
  auto manifest = ompdart::ProjectManifest::fromJsonFile(manifestPath,
                                                         &error);
  if (!manifest) {
    std::fprintf(stderr, "cannot load project '%s': %s\n",
                 manifestPath.c_str(), error.c_str());
    return 1;
  }
  ompdart::ProjectSession project(std::move(*manifest), std::move(config));
  const bool ok = project.run();

  for (const ompdart::Diagnostic &diag : project.linkDiagnostics())
    std::fprintf(stderr, "link: %s: %s\n",
                 ompdart::severityName(diag.severity),
                 diag.message.c_str());
  for (const ompdart::ProjectItem &item : project.items())
    for (const ompdart::Diagnostic &diag : item.report.diagnostics)
      std::fprintf(stderr, "%s:%s\n", item.name.c_str(),
                   diag.str().c_str());

  if (emit == "json") {
    // The aggregate report is one document: here -o names a file, unlike
    // the per-TU emissions below where it names a directory.
    const std::string payload =
        project.reportJson().dump(/*pretty=*/true);
    if (outputPath.empty()) {
      std::printf("%s", payload.c_str());
    } else {
      std::ofstream out(outputPath);
      out << payload;
      out.flush();
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     outputPath.c_str());
        return 1;
      }
    }
    return ok ? 0 : 1;
  }

  bool writeFailed = false;
  std::set<std::string> usedNames;
  for (const ompdart::ProjectItem &item : project.items()) {
    std::string payload;
    if (emit == "plan") {
      payload = renderPlanSummaryFor(item.report);
    } else if (emit == "ir") {
      payload = item.report.plan.toJson().dump(/*pretty=*/true);
    } else {
      payload = item.output;
    }
    if (outputPath.empty()) {
      std::printf("// ===== %s =====\n%s", item.name.c_str(),
                  payload.c_str());
      if (!payload.empty() && payload.back() != '\n')
        std::printf("\n");
    } else {
      std::error_code ec;
      fs::create_directories(outputPath, ec);
      // Flatten the TU name into one path component so same-basename TUs
      // from different directories land in distinct files; flattening is
      // not injective ("a/b.c" vs "a_b.c"), so residual collisions get a
      // numeric suffix instead of silently overwriting.
      std::string flat = item.name;
      for (char &c : flat)
        if (c == '/' || c == '\\')
          c = '_';
      std::string unique = flat;
      for (unsigned n = 2; !usedNames.insert(unique).second; ++n)
        unique = flat + "." + std::to_string(n);
      const fs::path target = fs::path(outputPath) / unique;
      std::ofstream out(target);
      out << payload;
      out.flush();
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     target.string().c_str());
        writeFailed = true;
      } else {
        std::fprintf(stderr, "wrote %s\n", target.string().c_str());
      }
    }
  }
  return (ok && !writeFailed) ? 0 : 1;
}

std::string renderPlanSummary(ompdart::Session &session) {
  return renderPlanSummaryFor(session.report());
}

/// Fuzz mode: generate the seeded corpus, run the differential oracle on
/// every program, print one deterministic line per program (or the JSON
/// report), and optionally write the corpus + manifest into the -o
/// directory. Exit 0 iff every program passed all oracle invariants.
int runFuzzMode(unsigned count, std::uint64_t baseSeed, bool shrink,
                const std::string &outputPath, const std::string &emit,
                const ompdart::PipelineConfig &config) {
  namespace fs = std::filesystem;
  using ompdart::BatchDriver;
  namespace json = ompdart::json;

  BatchDriver::Options options;
  options.config = config;
  options.config.stopAfter.reset();
  BatchDriver driver(options);

  BatchDriver::FuzzOptions fuzz;
  fuzz.baseSeed = baseSeed;
  fuzz.count = count;
  fuzz.shrinkFailures = shrink;
  const ompdart::FuzzResult result = driver.runFuzz(fuzz);

  if (!outputPath.empty()) {
    // Regenerate for emission: runFuzz owns no corpus copy, and generation
    // is deterministic by contract.
    const auto corpus = ompdart::gen::generateCorpus(baseSeed, count);
    std::error_code ec;
    fs::create_directories(outputPath, ec);
    json::Value manifest = json::Value::object();
    manifest.set("baseSeed", baseSeed);
    manifest.set("count", count);
    json::Value programs = json::Value::array();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const auto &program = corpus[i];
      json::Value entry = json::Value::object();
      entry.set("name", program.name);
      entry.set("seed", program.seed);
      entry.set("provableTrips", program.provableTrips);
      entry.set("multiTu", program.multiTu());
      entry.set("sourceHash", ompdart::hash::fingerprint(program.combined()));
      entry.set("irFingerprint", result.items[i].verdict.irFingerprint);
      entry.set("ok", result.items[i].passed());
      json::Value files = json::Value::array();
      for (const auto &tu : program.tus) {
        std::ofstream out(fs::path(outputPath) / tu.name);
        out << tu.source;
        out.flush();
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", tu.name.c_str());
          return 1;
        }
        files.push(tu.name);
      }
      entry.set("files", std::move(files));
      programs.push(std::move(entry));
    }
    manifest.set("programs", std::move(programs));
    std::ofstream out(fs::path(outputPath) / "manifest.json");
    out << manifest.dump(/*pretty=*/true);
    for (const ompdart::FuzzFailure &failure : result.failures) {
      if (failure.shrunken.empty())
        continue;
      std::ofstream repro(fs::path(outputPath) /
                          (failure.name + ".shrunk.c"));
      repro << failure.shrunken;
    }
  }

  if (emit == "json") {
    json::Value report = json::Value::object();
    report.set("stats", result.stats.toJson());
    json::Value items = json::Value::array();
    for (const ompdart::FuzzItem &item : result.items) {
      json::Value entry = json::Value::object();
      entry.set("name", item.name);
      entry.set("seed", item.seed);
      entry.set("ran", item.ran);
      entry.set("provableTrips", item.provableTrips);
      entry.set("multiTu", item.multiTu);
      entry.set("verdict", item.verdict.toJson());
      items.push(std::move(entry));
    }
    report.set("items", std::move(items));
    json::Value failures = json::Value::array();
    for (const ompdart::FuzzFailure &failure : result.failures) {
      json::Value entry = json::Value::object();
      entry.set("name", failure.name);
      entry.set("seed", failure.seed);
      entry.set("divergence", failure.divergence);
      entry.set("originalStatements", failure.originalStatements);
      entry.set("shrunkenStatements", failure.shrunkenStatements);
      failures.push(std::move(entry));
    }
    report.set("failures", std::move(failures));
    std::printf("%s\n", report.dump(/*pretty=*/true).c_str());
  } else {
    for (const ompdart::FuzzItem &item : result.items) {
      if (!item.ran) {
        std::printf("%s seed=%llu SKIP (time box)\n", item.name.c_str(),
                    static_cast<unsigned long long>(item.seed));
        continue;
      }
      std::printf("%s seed=%llu %s provable=%d multi-tu=%d baseline=%llu "
                  "plan=%llu predicted=%llu ir=%s\n",
                  item.name.c_str(),
                  static_cast<unsigned long long>(item.seed),
                  item.verdict.ok ? "PASS" : "FAIL", item.provableTrips,
                  item.multiTu,
                  static_cast<unsigned long long>(
                      item.verdict.baselineBytes),
                  static_cast<unsigned long long>(item.verdict.planBytes),
                  static_cast<unsigned long long>(
                      item.verdict.predictedBytes),
                  item.verdict.irFingerprint.c_str());
    }
    for (const ompdart::FuzzFailure &failure : result.failures) {
      std::printf("--- %s ---\n%s\n", failure.name.c_str(),
                  failure.divergence.c_str());
      if (!failure.shrunken.empty())
        std::printf("shrunken repro (%u -> %u statements):\n%s\n",
                    failure.originalStatements, failure.shrunkenStatements,
                    failure.shrunken.c_str());
    }
    std::printf("fuzz: %u/%u passed (%u failed, %u skipped), %u provable, "
                "%u multi-TU\n",
                result.stats.passed, result.stats.programs,
                result.stats.failed, result.stats.skippedByTimeBox,
                result.stats.provable, result.stats.multiTu);
  }
  return result.allPassed() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Plan-server modes
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t gStopRequested = 0;

void handleStopSignal(int) { gStopRequested = 1; }

/// Daemon mode: serve plan requests on a Unix socket until a "shutdown"
/// request or SIGINT/SIGTERM arrives.
int runServeMode(const std::string &socketPath, unsigned workers,
                 ompdart::PipelineConfig config) {
  namespace server = ompdart::server;
  server::ServerOptions options;
  options.socketPath = socketPath;
  options.workers = workers;
  options.service.config = std::move(config);

  server::PlanServer planServer(std::move(options));
  std::string error;
  if (!planServer.start(&error)) {
    std::fprintf(stderr, "cannot start plan server: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "plan server listening on %s\n", socketPath.c_str());

  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);
  // The signal handler only flips a flag; the main thread polls it so the
  // actual stop runs in normal (signal-safe) context.
  while (planServer.running() && gStopRequested == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  planServer.stop();
  planServer.wait();

  const server::ServiceStats stats = planServer.service().stats();
  std::fprintf(stderr,
               "plan server stopped: %llu requests, %llu TUs planned, "
               "%llu TUs reused, %llu connections\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.tusPlanned),
               static_cast<unsigned long long>(stats.tusReused),
               static_cast<unsigned long long>(
                   planServer.connectionsServed()));
  return 0;
}

/// The planning switches of this invocation as a request "config" override
/// object, so a server with different defaults still plans what the client
/// asked for.
ompdart::json::Value configOverrides(const ompdart::PipelineConfig &config) {
  ompdart::json::Value overrides = ompdart::json::Value::object();
  overrides.set("costModel", config.costModel);
  overrides.set("firstprivate", config.planner.useFirstprivate);
  overrides.set("hoistUpdates", config.planner.hoistUpdates);
  overrides.set("regionOverLoops", config.planner.extendRegionOverLoops);
  overrides.set("interprocedural", config.planner.interprocedural);
  return overrides;
}

/// Client mode: plan the given file / project through a running server, or
/// replay a raw NDJSON request script.
int runConnectMode(const std::string &socketPath,
                   const std::string &inputPath, const std::string &source,
                   const std::string &projectPath,
                   const std::string &requestScript, bool shutdown,
                   const std::string &outputPath, const std::string &emit,
                   const ompdart::PipelineConfig &config) {
  namespace fs = std::filesystem;
  namespace json = ompdart::json;
  namespace server = ompdart::server;

  server::PlanClient client;
  std::string error;
  if (!client.connect(socketPath, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  if (!requestScript.empty()) {
    // Raw replay: one response line per request line, verbatim.
    std::istream *in = &std::cin;
    std::ifstream file;
    if (requestScript != "-") {
      file.open(requestScript);
      if (!file) {
        std::fprintf(stderr, "cannot open '%s'\n", requestScript.c_str());
        return 1;
      }
      in = &file;
    }
    std::string line;
    bool anyFailed = false;
    while (std::getline(*in, line)) {
      if (line.empty())
        continue;
      const auto response = client.callRaw(line, &error);
      if (!response) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      std::printf("%s\n", response->c_str());
      const auto parsed = json::Value::parse(*response);
      anyFailed = anyFailed || !parsed || !parsed->boolOr("ok");
    }
    return anyFailed ? 1 : 0;
  }

  if (shutdown) {
    json::Value request = json::Value::object();
    request.set("method", "shutdown");
    const auto response = client.call(request, &error);
    if (!response || !response->boolOr("ok")) {
      std::fprintf(stderr, "shutdown failed: %s\n", error.c_str());
      return 1;
    }
    return 0;
  }

  if (!projectPath.empty()) {
    auto manifest = ompdart::ProjectManifest::fromJsonFile(projectPath,
                                                           &error);
    if (!manifest) {
      std::fprintf(stderr, "cannot load project '%s': %s\n",
                   projectPath.c_str(), error.c_str());
      return 1;
    }
    json::Value request = json::Value::object();
    request.set("method", "project");
    request.set("project", manifest->name);
    request.set("config", configOverrides(config));
    if (emit == "json")
      request.set("report", true);
    json::Value tus = json::Value::array();
    for (const ompdart::ProjectTu &tu : manifest->tus) {
      json::Value tuJson = json::Value::object();
      tuJson.set("name", tu.name);
      tuJson.set("file", tu.fileName);
      tuJson.set("source", tu.source);
      tus.push(std::move(tuJson));
    }
    request.set("tus", std::move(tus));

    const auto response = client.call(request, &error);
    if (!response) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (!response->boolOr("ok")) {
      std::fprintf(stderr, "server error: %s\n",
                   response->stringOr("error").c_str());
      return 1;
    }
    // An ok:true reply can still be missing members (protocol skew, an
    // older server) — report it instead of dereferencing null.
    const json::Value *result = response->find("result");
    if (result == nullptr) {
      std::fprintf(stderr, "malformed server response: missing \"result\"\n");
      return 1;
    }
    if (emit == "json") {
      std::printf("%s\n", result->dump(/*pretty=*/true).c_str());
      return result->boolOr("success") ? 0 : 1;
    }
    const json::Value *tusJson = result->find("tus");
    if (tusJson == nullptr) {
      std::fprintf(stderr, "malformed server response: missing \"tus\"\n");
      return 1;
    }
    bool ok = result->boolOr("success");
    for (const json::Value &tu : tusJson->items()) {
      const std::string name = tu.stringOr("name");
      const std::string output = tu.stringOr("output");
      if (outputPath.empty()) {
        std::printf("// ===== %s =====\n%s", name.c_str(), output.c_str());
        if (!output.empty() && output.back() != '\n')
          std::printf("\n");
      } else {
        std::error_code ec;
        fs::create_directories(outputPath, ec);
        std::string flat = name;
        for (char &c : flat)
          if (c == '/' || c == '\\')
            c = '_';
        std::ofstream out(fs::path(outputPath) / flat);
        out << output;
        out.flush();
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", flat.c_str());
          ok = false;
        }
      }
    }
    return ok ? 0 : 1;
  }

  json::Value request = json::Value::object();
  request.set("method", "plan");
  request.set("file", inputPath);
  request.set("source", source);
  request.set("config", configOverrides(config));
  if (emit != "source")
    request.set("report", true);
  const auto response = client.call(request, &error);
  if (!response) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (!response->boolOr("ok")) {
    std::fprintf(stderr, "server error: %s\n",
                 response->stringOr("error").c_str());
    return 1;
  }
  const json::Value *result = response->find("result");
  if (result == nullptr) {
    std::fprintf(stderr, "malformed server response: missing \"result\"\n");
    return 1;
  }
  std::fprintf(stderr, "plan cache: %s\n",
               result->stringOr("cache").c_str());
  const bool ok = result->boolOr("success");

  std::string payload;
  if (emit == "json") {
    const json::Value *report = result->find("report");
    payload = (report != nullptr ? *report : json::Value()).dump(true);
  } else if (emit == "plan" || emit == "ir") {
    const json::Value *report = result->find("report");
    std::string decodeError;
    std::optional<ompdart::Report> decoded;
    if (report != nullptr)
      decoded = ompdart::Report::fromJson(*report, &decodeError);
    if (!decoded) {
      std::fprintf(stderr, "cannot decode server report: %s\n",
                   decodeError.c_str());
      return 1;
    }
    payload = emit == "plan" ? renderPlanSummaryFor(*decoded)
                             : decoded->plan.toJson().dump(/*pretty=*/true);
  } else {
    if (!ok)
      return 1;
    payload = result->stringOr("output");
  }
  if (outputPath.empty()) {
    std::printf("%s", payload.c_str());
  } else {
    std::ofstream out(outputPath);
    out << payload;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", outputPath.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  std::string inputPath;
  std::string outputPath;
  std::string projectPath;
  std::string emit = "source";
  bool dumpAst = false;
  bool cacheModeExplicit = false;
  unsigned fuzzCount = 0;
  bool fuzzMode = false;
  std::uint64_t genSeed = 1;
  bool genSeedExplicit = false;
  bool shrink = false;
  std::string servePath;
  std::string connectPath;
  std::string requestScript;
  unsigned serveWorkers = 0;
  bool shutdownRequest = false;
  ompdart::PipelineConfig config;
  auto parseUnsigned = [](const std::string &text,
                          std::uint64_t &value) -> bool {
    if (text.empty())
      return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
      return false;
    value = parsed;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      outputPath = argv[++i];
    } else if (arg.rfind("--project=", 0) == 0) {
      projectPath = arg.substr(10);
    } else if (arg == "--project" && i + 1 < argc) {
      projectPath = argv[++i];
    } else if (arg == "--dump-ast") {
      dumpAst = true;
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit = arg.substr(7);
      bool known = false;
      for (const std::string &kind : emitKinds())
        known = known || emit == kind;
      if (!known) {
        std::fprintf(stderr, "unknown emit kind '%s' (valid kinds: %s)\n",
                     emit.c_str(), joined(emitKinds()).c_str());
        return 1;
      }
    } else if (arg.rfind("--stop-after=", 0) == 0) {
      const std::string stage = arg.substr(13);
      config.stopAfter = ompdart::stageFromName(stage);
      if (!config.stopAfter) {
        std::fprintf(stderr, "unknown stage '%s' (valid stages: %s)\n",
                     stage.c_str(), joined(stageNames()).c_str());
        return 1;
      }
    } else if (arg.rfind("--cost-model=", 0) == 0) {
      config.costModel = arg.substr(13);
      if (ompdart::makeCostModel(config.costModel) == nullptr) {
        std::fprintf(stderr, "unknown cost model '%s' (known models: %s)\n",
                     config.costModel.c_str(),
                     joined(ompdart::costModelNames()).c_str());
        return 1;
      }
    } else if (arg == "--check") {
      config.check = true;
    } else if (arg == "--check=error") {
      config.checkErrors = true;
    } else if (arg.rfind("--check=", 0) == 0) {
      std::fprintf(stderr,
                   "unknown check mode '%s' (use --check or --check=error)\n",
                   arg.substr(8).c_str());
      return 1;
    } else if (arg == "--no-firstprivate") {
      config.planner.useFirstprivate = false;
    } else if (arg == "--no-hoist") {
      config.planner.hoistUpdates = false;
    } else if (arg == "--per-kernel") {
      config.planner.extendRegionOverLoops = false;
    } else if (arg == "--no-interproc") {
      config.planner.interprocedural = false;
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      config.cacheDir = arg.substr(12);
    } else if (arg.rfind("--cache=", 0) == 0) {
      const std::string mode = arg.substr(8);
      const auto parsed = ompdart::cache::cacheModeFromName(mode);
      if (!parsed) {
        std::fprintf(stderr,
                     "unknown cache mode '%s' (off | read | read-write)\n",
                     mode.c_str());
        return 1;
      }
      config.cacheMode = *parsed;
      cacheModeExplicit = true;
    } else if (arg.rfind("--fuzz=", 0) == 0) {
      std::uint64_t parsed = 0;
      if (!parseUnsigned(arg.substr(7), parsed) || parsed == 0 ||
          parsed > 1'000'000) {
        std::fprintf(stderr,
                     "--fuzz needs a positive program count, got '%s'\n",
                     arg.substr(7).c_str());
        return 1;
      }
      fuzzCount = static_cast<unsigned>(parsed);
      fuzzMode = true;
    } else if (arg.rfind("--gen-seed=", 0) == 0) {
      if (!parseUnsigned(arg.substr(11), genSeed)) {
        std::fprintf(stderr, "--gen-seed needs an unsigned seed, got '%s'\n",
                     arg.substr(11).c_str());
        return 1;
      }
      genSeedExplicit = true;
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg.rfind("--serve=", 0) == 0) {
      servePath = arg.substr(8);
    } else if (arg.rfind("--connect=", 0) == 0) {
      connectPath = arg.substr(10);
    } else if (arg.rfind("--request=", 0) == 0) {
      requestScript = arg.substr(10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      std::uint64_t parsed = 0;
      if (!parseUnsigned(arg.substr(10), parsed) || parsed == 0 ||
          parsed > 256) {
        std::fprintf(stderr,
                     "--workers needs a thread count in 1..256, got '%s'\n",
                     arg.substr(10).c_str());
        return 1;
      }
      serveWorkers = static_cast<unsigned>(parsed);
    } else if (arg == "--shutdown") {
      shutdownRequest = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      inputPath = arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (!fuzzMode && (genSeedExplicit || shrink)) {
    std::fprintf(stderr, "%s requires --fuzz=<N>\n",
                 genSeedExplicit ? "--gen-seed" : "--shrink");
    return 1;
  }
  const bool serveMode = !servePath.empty();
  const bool connectMode = !connectPath.empty();
  if (serveMode && (fuzzMode || connectMode || !inputPath.empty() ||
                    !projectPath.empty() || dumpAst)) {
    std::fprintf(stderr,
                 "--serve is a standalone mode; drop the input file, "
                 "--project, --fuzz, --connect and --dump-ast\n");
    return 1;
  }
  if (serveWorkers != 0 && !serveMode) {
    std::fprintf(stderr, "--workers requires --serve=<socket>\n");
    return 1;
  }
  if ((!requestScript.empty() || shutdownRequest) && !connectMode) {
    std::fprintf(stderr, "%s requires --connect=<socket>\n",
                 requestScript.empty() ? "--shutdown" : "--request");
    return 1;
  }
  if (connectMode) {
    if (fuzzMode || dumpAst) {
      std::fprintf(stderr,
                   "--connect cannot combine with --fuzz or --dump-ast\n");
      return 1;
    }
    const int payloads = (inputPath.empty() ? 0 : 1) +
                         (projectPath.empty() ? 0 : 1) +
                         (requestScript.empty() ? 0 : 1) +
                         (shutdownRequest ? 1 : 0);
    if (payloads != 1) {
      std::fprintf(stderr,
                   "--connect needs exactly one of: an input file, "
                   "--project, --request, --shutdown\n");
      return 1;
    }
  }
  if (fuzzMode && (!inputPath.empty() || !projectPath.empty())) {
    std::fprintf(stderr,
                 "--fuzz generates its own inputs; drop the positional "
                 "file / --project\n");
    return 1;
  }
  if (fuzzMode && emit != "source" && emit != "json") {
    std::fprintf(stderr, "--fuzz supports --emit=json only\n");
    return 1;
  }
  if (inputPath.empty() && projectPath.empty() && !fuzzMode && !serveMode &&
      !connectMode) {
    usage(argv[0]);
    return 1;
  }
  if (!projectPath.empty() && !inputPath.empty()) {
    std::fprintf(stderr,
                 "--project and a positional input are mutually exclusive\n");
    return 1;
  }
  if (!projectPath.empty() && dumpAst) {
    std::fprintf(stderr,
                 "--dump-ast is a single-file flag; run it per TU\n");
    return 1;
  }
  if (emit == "source" && config.stopAfter &&
      *config.stopAfter < ompdart::Stage::Rewrite) {
    std::fprintf(stderr,
                 "--emit=source needs the rewrite stage; drop --stop-after "
                 "or use --emit=plan/ir/json\n");
    return 1;
  }

  std::string source;
  if (!inputPath.empty() && projectPath.empty() && !fuzzMode) {
    std::ifstream in(inputPath);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", inputPath.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  if (dumpAst) {
    ompdart::SourceManager sourceManager(inputPath, source);
    ompdart::ASTContext context;
    ompdart::DiagnosticEngine diags;
    if (!ompdart::parseSource(sourceManager, context, diags)) {
      std::fprintf(stderr, "%s", diags.summary().c_str());
      return 1;
    }
    std::printf("%s", ompdart::dumpTranslationUnit(context.unit()).c_str());
    return 0;
  }

  // Flag order must not matter: --cache-dir without an explicit --cache
  // defaults to read-write; an explicit --cache=off wins either way.
  if (!config.cacheDir.empty() && !cacheModeExplicit)
    config.cacheMode = ompdart::cache::CacheMode::ReadWrite;
  if (config.cacheDir.empty() &&
      config.cacheMode != ompdart::cache::CacheMode::Off) {
    std::fprintf(stderr, "--cache=%s needs --cache-dir=<dir>\n",
                 ompdart::cache::cacheModeName(config.cacheMode));
    return 1;
  }
  if (!config.cacheDir.empty() &&
      config.cacheMode == ompdart::cache::CacheMode::Off)
    config.cacheDir.clear();

  if (serveMode)
    return runServeMode(servePath, serveWorkers, std::move(config));
  if (connectMode)
    return runConnectMode(connectPath, inputPath, source, projectPath,
                          requestScript, shutdownRequest, outputPath, emit,
                          config);
  if (fuzzMode)
    return runFuzzMode(fuzzCount, genSeed, shrink, outputPath, emit, config);
  if (!projectPath.empty())
    return runProjectMode(projectPath, outputPath, emit, std::move(config));

  ompdart::Session session(inputPath, source, config);
  // Pretty-print diagnostics to stderr as they are reported.
  ompdart::StreamSink diagnosticPrinter(std::cerr, inputPath);
  session.diagnostics().setSink(&diagnosticPrinter);

  const bool ok = session.run();

  switch (session.planCacheStatus()) {
  case ompdart::Session::PlanCacheStatus::Disabled:
    break;
  case ompdart::Session::PlanCacheStatus::Uncacheable:
    std::fprintf(stderr, "plan cache: uncacheable configuration\n");
    break;
  case ompdart::Session::PlanCacheStatus::Miss:
  case ompdart::Session::PlanCacheStatus::Hit:
    std::fprintf(stderr, "plan cache: %s (key %s)\n",
                 session.planFromCache() ? "hit" : "miss",
                 session.planCacheKey().id().c_str());
    break;
  }

  std::string payload;
  if (emit == "json") {
    payload = session.report().toJson().dump(/*pretty=*/true);
  } else if (emit == "plan") {
    payload = renderPlanSummary(session);
  } else if (emit == "ir") {
    payload = session.ir().toJson().dump(/*pretty=*/true);
  } else {
    if (!ok)
      return 1;
    payload = session.rewrite();
  }

  if (outputPath.empty()) {
    std::printf("%s", payload.c_str());
  } else {
    std::ofstream out(outputPath);
    out << payload;
    const ompdart::Report &report = session.report();
    std::size_t maps = 0, updates = 0;
    for (const ompdart::ir::Region &region : report.plan.regions) {
      maps += region.maps.size();
      updates += region.updates.size();
    }
    std::fprintf(stderr,
                 "wrote %s (%zu map items, %zu updates, tool time %.4fs)\n",
                 outputPath.c_str(), maps, updates, report.totalSeconds);
  }
  return ok ? 0 : 1;
}
