// Command-line front end, mirroring the paper's tool usage: read a C file
// with OpenMP offload kernels, insert data-mapping directives, and write
// the transformed source.
//
//   $ ./ompdart_cli input.c                # transformed source to stdout
//   $ ./ompdart_cli input.c -o output.c    # ... or to a file
//   $ ./ompdart_cli input.c --dump-ast     # front-end debugging
//   $ ./ompdart_cli input.c --no-firstprivate --no-hoist
#include "driver/tool.hpp"
#include "frontend/ast_printer.hpp"
#include "frontend/parser.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

void usage(const char *argv0) {
  std::printf(
      "usage: %s <input.c> [options]\n"
      "  -o <file>          write transformed source to <file>\n"
      "  --dump-ast         print the AST instead of transforming\n"
      "  --no-firstprivate  disable the firstprivate optimization\n"
      "  --no-hoist         disable Algorithm 1 update hoisting\n"
      "  --per-kernel       do not extend data regions over loops\n",
      argv0);
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  std::string inputPath;
  std::string outputPath;
  bool dumpAst = false;
  ompdart::ToolOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      outputPath = argv[++i];
    } else if (arg == "--dump-ast") {
      dumpAst = true;
    } else if (arg == "--no-firstprivate") {
      options.planner.useFirstprivate = false;
    } else if (arg == "--no-hoist") {
      options.planner.hoistUpdates = false;
    } else if (arg == "--per-kernel") {
      options.planner.extendRegionOverLoops = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      inputPath = arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (inputPath.empty()) {
    usage(argv[0]);
    return 1;
  }

  std::ifstream in(inputPath);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", inputPath.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  if (dumpAst) {
    ompdart::SourceManager sourceManager(inputPath, source);
    ompdart::ASTContext context;
    ompdart::DiagnosticEngine diags;
    if (!ompdart::parseSource(sourceManager, context, diags)) {
      std::fprintf(stderr, "%s", diags.summary().c_str());
      return 1;
    }
    std::printf("%s", ompdart::dumpTranslationUnit(context.unit()).c_str());
    return 0;
  }

  ompdart::OmpDartTool tool(options);
  const ompdart::ToolResult result = tool.run(inputPath, source);
  for (const auto &diag : result.diagnostics)
    std::fprintf(stderr, "%s: %s\n", inputPath.c_str(), diag.str().c_str());
  if (!result.success)
    return 1;

  if (outputPath.empty()) {
    std::printf("%s", result.output.c_str());
  } else {
    std::ofstream out(outputPath);
    out << result.output;
    std::fprintf(stderr, "wrote %s (%zu map items, %zu updates, tool time "
                         "%.4fs)\n",
                 outputPath.c_str(),
                 result.plan.regions.empty()
                     ? 0
                     : result.plan.regions.front().maps.size(),
                 result.plan.totalUpdates(), result.toolSeconds);
  }
  return 0;
}
