// The paper's §III motivation, end to end:
//  - Listing 1 (kernel inside a loop) and Listing 2 (kernel-to-kernel reuse)
//    are transformed by OMPDart and executed on the simulated runtime to
//    show the transfer reduction;
//  - Listing 3's *incorrect* hand mapping is executed to demonstrate the
//    reference-count trap (stale host reads), then contrasted with the
//    tool's correct update-based mapping.
#include "driver/pipeline.hpp"
#include "interp/interp.hpp"

#include <cstdio>

namespace {

void report(const char *title, const ompdart::interp::RunResult &run) {
  std::printf("%-26s output: %-24s transfers: %u calls, %llu bytes\n", title,
              run.ok ? run.output.substr(0, run.output.find('\n')).c_str()
                     : run.error.c_str(),
              run.ledger.totalCalls(),
              static_cast<unsigned long long>(run.ledger.totalBytes()));
}

void transformAndCompare(const char *name, const std::string &source) {
  const auto before = ompdart::interp::runProgram(source);
  ompdart::Session session(std::string(name) + ".c", source);
  const auto after = ompdart::interp::runProgram(session.rewrite());
  std::printf("--- %s ---\n", name);
  report("implicit mappings:", before);
  report("OMPDart mappings:", after);
  std::printf("outputs match: %s\n\n",
              before.output == after.output ? "yes" : "NO");
}

} // namespace

int main() {
  // Paper Listing 1: kernel nested inside a loop.
  transformAndCompare("Listing 1", R"(
int main() {
  int a[256] = {};
  int total = 0;
  for (int i = 0; i < 64; ++i) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < 256; ++j) {
      a[j] += j;
    }
  }
  for (int j = 0; j < 256; ++j) total += a[j];
  printf("%d\n", total);
  return 0;
}
)");

  // Paper Listing 2: consecutive kernels on the same data.
  transformAndCompare("Listing 2", R"(
int main() {
  int a[256] = {};
  int total = 0;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 256; ++i) {
    a[i] += i;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 256; ++i) {
    a[i] *= 2;
  }
  for (int i = 0; i < 256; ++i) total += a[i];
  printf("%d\n", total);
  return 0;
}
)");

  // Paper Listing 3: the programmer's incorrect mapping. The inner
  // map(from:) decrements the reference count 2 -> 1 so nothing is copied
  // and the host sums stale zeros.
  const std::string listing3Incorrect = R"(
int main() {
  int a[64] = {};
  int sum = 0;
  #pragma omp target data map(tofrom: a)
  {
    for (int i = 0; i < 8; ++i) {
      #pragma omp target teams distribute parallel for map(from: a)
      for (int j = 0; j < 64; ++j) {
        a[j] += j;
      }
      for (int j = 0; j < 64; ++j) {
        sum += a[j];
      }
    }
  }
  printf("%d\n", sum);
  return 0;
}
)";
  const std::string listing3Unmapped = R"(
int main() {
  int a[64] = {};
  int sum = 0;
  for (int i = 0; i < 8; ++i) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < 64; ++j) {
      a[j] += j;
    }
    for (int j = 0; j < 64; ++j) {
      sum += a[j];
    }
  }
  printf("%d\n", sum);
  return 0;
}
)";
  std::printf("--- Listing 3 (the reference-count trap) ---\n");
  const auto broken = ompdart::interp::runProgram(listing3Incorrect);
  report("incorrect hand mapping:", broken);
  const auto reference = ompdart::interp::runProgram(listing3Unmapped);
  report("implicit (correct):", reference);
  ompdart::Session session("listing3.c", listing3Unmapped);
  const auto fixed = ompdart::interp::runProgram(session.rewrite());
  report("OMPDart (correct):", fixed);
  std::printf("hand mapping silently wrong: %s; OMPDart matches reference: "
              "%s\n",
              broken.output != reference.output ? "yes" : "no",
              fixed.output == reference.output ? "yes" : "no");
  return 0;
}
