// Runs one benchmark of the evaluation suite through all three variants
// (unoptimized / OMPDart / expert) on the simulated runtime and prints a
// per-variant transfer report — a one-benchmark slice of Figures 3-6.
//
//   $ ./transfer_report            # defaults to ace
//   $ ./transfer_report lulesh
#include "exp/experiment.hpp"

#include <cstdio>
#include <string>

int main(int argc, char **argv) {
  const std::string name = argc > 1 ? argv[1] : "ace";
  const auto *def = ompdart::suite::findBenchmark(name);
  if (def == nullptr) {
    std::printf("unknown benchmark '%s'; available:", name.c_str());
    for (const auto &bench : ompdart::suite::allBenchmarks())
      std::printf(" %s", bench.name.c_str());
    std::printf("\n");
    return 1;
  }

  const auto cmp = ompdart::exp::runBenchmark(*def);
  std::printf("benchmark: %s (%s, %s)\n", def->name.c_str(),
              def->suiteName.c_str(), def->domain.c_str());
  std::printf("  %s\n\n", def->description.c_str());

  auto show = [](const char *title, const ompdart::exp::VariantResult &v) {
    std::printf("%-12s HtoD %10s in %5u calls | DtoH %10s in %5u calls | "
                "%3u launches | modeled %8.1f us\n",
                title, ompdart::exp::formatBytes(v.bytesHtoD).c_str(),
                v.callsHtoD, ompdart::exp::formatBytes(v.bytesDtoH).c_str(),
                v.callsDtoH, v.kernelLaunches, v.totalSeconds * 1e6);
  };
  show("unoptimized", cmp.unoptimized);
  show("OMPDart", cmp.ompdart);
  show("expert", cmp.expert);

  std::printf("\noutputs match across variants: %s\n",
              cmp.outputsMatch ? "yes" : "NO");
  std::printf("OMPDart vs unoptimized: %.1fx less data, %.2fx speedup "
              "(paper: %.0fx / %.1fx)\n",
              cmp.transferReduction(cmp.ompdart), cmp.speedup(cmp.ompdart),
              cmp.paper.transferReduction, cmp.paper.speedup);
  std::printf("tool time: %.4f s\n", cmp.toolSeconds);
  for (const auto &timing : cmp.toolReport.timings)
    std::printf("  %-9s %.6f s\n", ompdart::stageName(timing.stage),
                timing.seconds);
  return 0;
}
