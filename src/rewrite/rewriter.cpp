#include "rewrite/rewriter.hpp"

#include <algorithm>
#include <map>

namespace ompdart {

void SourceRewriter::insert(std::size_t offset, std::string text) {
  edits_.push_back(
      Edit{offset, static_cast<unsigned>(edits_.size()), std::move(text)});
}

std::string SourceRewriter::apply() const {
  std::vector<Edit> sorted = edits_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Edit &a, const Edit &b) {
                     if (a.offset != b.offset)
                       return a.offset < b.offset;
                     return a.sequence < b.sequence;
                   });
  const std::string &original = sourceManager_.text();
  std::string out;
  out.reserve(original.size() + 256);
  std::size_t cursor = 0;
  for (const Edit &edit : sorted) {
    const std::size_t offset = std::min(edit.offset, original.size());
    out.append(original, cursor, offset - cursor);
    out.append(edit.text);
    cursor = offset;
  }
  out.append(original, cursor, original.size() - cursor);
  return out;
}

std::size_t PlanRewriter::lineStartFor(std::size_t offset) const {
  return sourceManager_.lineStartOffset(sourceManager_.lineNumber(offset));
}

std::size_t PlanRewriter::lineEndFor(std::size_t offset) const {
  const unsigned line = sourceManager_.lineNumber(offset);
  std::size_t end = sourceManager_.lineEndOffset(line);
  if (end < sourceManager_.size())
    ++end; // past the newline
  return end;
}

std::string PlanRewriter::mapClausesText(const RegionPlan &region) {
  // Group map items by map type in a stable to/from/tofrom/alloc order.
  const OmpMapType order[] = {OmpMapType::To, OmpMapType::From,
                              OmpMapType::ToFrom, OmpMapType::Alloc};
  std::string out;
  for (OmpMapType type : order) {
    std::string items;
    for (const MapSpec &spec : region.maps) {
      if (spec.mapType != type)
        continue;
      if (!items.empty())
        items += ", ";
      items += spec.section.empty() ? spec.var->name() : spec.section;
    }
    if (items.empty())
      continue;
    out += " map(";
    out += mapTypeSpelling(type);
    out += ": ";
    out += items;
    out += ")";
  }
  return out;
}

void PlanRewriter::rewriteRegion(const RegionPlan &region,
                                 SourceRewriter &rewriter) {
  const std::string clauses = mapClausesText(region);
  if (clauses.empty())
    return;
  if (region.appendsToKernel()) {
    // Single kernel: append clauses to its pragma line.
    rewriter.insert(region.soleKernel->pragmaRange().end.offset, clauses);
    return;
  }
  const std::size_t startLine =
      lineStartFor(region.startStmt->range().begin.offset);
  const std::string indent =
      sourceManager_.indentationAt(region.startStmt->range().begin.offset);
  rewriter.insert(startLine, indent + "#pragma omp target data" + clauses +
                                 "\n" + indent + "{\n");
  const std::size_t endLine = lineEndFor(region.endStmt->range().end.offset > 0
                                             ? region.endStmt->range().end.offset - 1
                                             : 0);
  rewriter.insert(endLine, indent + "}\n");
}

void PlanRewriter::emitUpdates(const RegionPlan &region,
                               SourceRewriter &rewriter) {
  // Consolidate: one directive per (insertion offset, direction), listing
  // every variable that updates there (paper §IV-F last paragraph).
  struct Point {
    std::size_t offset;
    UpdateDirection direction;
    std::string indent;
    std::vector<std::string> items;
    bool newlineBefore = false; ///< text begins with "\n" (after-statement)
  };
  std::map<std::pair<std::size_t, int>, Point> points;

  for (const UpdateInsertion &update : region.updates) {
    const Stmt *anchor = update.anchor;
    std::size_t offset = 0;
    std::string indent;
    bool newlineBefore = false;
    switch (update.placement) {
    case UpdatePlacement::Before:
      offset = lineStartFor(anchor->range().begin.offset);
      indent = sourceManager_.indentationAt(anchor->range().begin.offset);
      break;
    case UpdatePlacement::After:
      offset = lineEndFor(anchor->range().end.offset > 0
                              ? anchor->range().end.offset - 1
                              : 0);
      indent = sourceManager_.indentationAt(anchor->range().begin.offset);
      break;
    case UpdatePlacement::BodyBegin:
    case UpdatePlacement::BodyEnd: {
      const Stmt *body = nullptr;
      if (anchor->kind() == StmtKind::For)
        body = static_cast<const ForStmt *>(anchor)->body();
      else if (anchor->kind() == StmtKind::While)
        body = static_cast<const WhileStmt *>(anchor)->body();
      else if (anchor->kind() == StmtKind::Do)
        body = static_cast<const DoStmt *>(anchor)->body();
      if (body == nullptr)
        body = anchor;
      indent =
          sourceManager_.indentationAt(anchor->range().begin.offset) + "  ";
      if (update.placement == UpdatePlacement::BodyBegin) {
        // Just after the opening brace (or before a braceless body).
        if (body->kind() == StmtKind::Compound)
          offset = lineEndFor(body->range().begin.offset);
        else
          offset = lineStartFor(body->range().begin.offset);
      } else {
        // Just before the closing brace (or after a braceless body).
        if (body->kind() == StmtKind::Compound)
          offset = lineStartFor(body->range().end.offset > 0
                                    ? body->range().end.offset - 1
                                    : 0);
        else
          offset = lineEndFor(body->range().end.offset > 0
                                  ? body->range().end.offset - 1
                                  : 0);
      }
      break;
    }
    }
    auto &point = points[{offset, static_cast<int>(update.direction)}];
    point.offset = offset;
    point.direction = update.direction;
    point.indent = indent;
    point.newlineBefore = newlineBefore;
    const std::string item =
        update.section.empty() ? update.var->name() : update.section;
    if (std::find(point.items.begin(), point.items.end(), item) ==
        point.items.end())
      point.items.push_back(item);
  }

  for (const auto &[key, point] : points) {
    std::string items;
    for (const std::string &item : point.items) {
      if (!items.empty())
        items += ", ";
      items += item;
    }
    std::string text = point.indent + "#pragma omp target update " +
                       (point.direction == UpdateDirection::To ? "to("
                                                               : "from(") +
                       items + ")\n";
    rewriter.insert(point.offset, std::move(text));
  }
}

void PlanRewriter::emitFirstprivates(const RegionPlan &region,
                                     SourceRewriter &rewriter) {
  // Consolidate per kernel.
  std::map<const OmpDirectiveStmt *, std::vector<std::string>> byKernel;
  for (const FirstprivateInsertion &fp : region.firstprivates) {
    auto &names = byKernel[fp.kernel];
    if (std::find(names.begin(), names.end(), fp.var->name()) == names.end())
      names.push_back(fp.var->name());
  }
  for (const auto &[kernel, names] : byKernel) {
    std::string items;
    for (const std::string &name : names) {
      if (!items.empty())
        items += ", ";
      items += name;
    }
    rewriter.insert(kernel->pragmaRange().end.offset,
                    " firstprivate(" + items + ")");
  }
}

std::string PlanRewriter::rewrite() {
  SourceRewriter rewriter(sourceManager_);
  for (const RegionPlan &region : plan_.regions) {
    rewriteRegion(region, rewriter);
    emitUpdates(region, rewriter);
    emitFirstprivates(region, rewriter);
  }
  return rewriter.apply();
}

std::string applyMappingPlan(const SourceManager &sourceManager,
                             const MappingPlan &plan) {
  PlanRewriter rewriter(sourceManager, plan);
  return rewriter.rewrite();
}

} // namespace ompdart
