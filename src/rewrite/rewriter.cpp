#include "rewrite/rewriter.hpp"

#include "mapping/plan.hpp"

#include <algorithm>
#include <map>

namespace ompdart {

void SourceRewriter::insert(std::size_t offset, std::string text) {
  edits_.push_back(
      Edit{offset, static_cast<unsigned>(edits_.size()), std::move(text)});
}

std::string SourceRewriter::apply() const {
  std::vector<Edit> sorted = edits_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Edit &a, const Edit &b) {
                     if (a.offset != b.offset)
                       return a.offset < b.offset;
                     return a.sequence < b.sequence;
                   });
  const std::string &original = sourceManager_.text();
  std::string out;
  out.reserve(original.size() + 256);
  std::size_t cursor = 0;
  for (const Edit &edit : sorted) {
    const std::size_t offset = std::min(edit.offset, original.size());
    out.append(original, cursor, offset - cursor);
    out.append(edit.text);
    cursor = offset;
  }
  out.append(original, cursor, original.size() - cursor);
  return out;
}

namespace {

std::size_t lineStartOf(const SourceManager &sourceManager,
                        std::size_t offset) {
  return sourceManager.lineStartOffset(sourceManager.lineNumber(offset));
}

std::size_t lineEndOf(const SourceManager &sourceManager,
                      std::size_t offset) {
  const unsigned line = sourceManager.lineNumber(offset);
  std::size_t end = sourceManager.lineEndOffset(line);
  if (end < sourceManager.size())
    ++end; // past the newline
  return end;
}

} // namespace

std::size_t PlanRewriter::lineStartFor(std::size_t offset) const {
  return lineStartOf(sourceManager_, offset);
}

std::size_t PlanRewriter::lineEndFor(std::size_t offset) const {
  return lineEndOf(sourceManager_, offset);
}

std::string PlanRewriter::mapClausesText(const ir::Region &region) {
  // Group map items by map type in a stable to/from/tofrom/alloc order
  // (unmapping types last); within one type, modifier-free items come
  // first, then one clause per distinct modifier set in first-seen order.
  const ir::MapType order[] = {ir::MapType::To,     ir::MapType::From,
                               ir::MapType::ToFrom, ir::MapType::Alloc,
                               ir::MapType::Release, ir::MapType::Delete};
  std::string out;
  for (const ir::MapType type : order) {
    std::vector<std::pair<std::string, std::string>> groups; // spelling, items
    for (const ir::MapItem &map : region.maps) {
      if (map.type != type)
        continue;
      const std::string spelling =
          ir::mapTypeSpellingWithModifiers(type, map.modifiers);
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto &group) {
                               return group.first == spelling;
                             });
      if (it == groups.end()) {
        // Modifier-free group leads so unmodified output keeps the classic
        // "map(to: ...)" shape in front.
        if (!map.modifiers.any())
          it = groups.insert(groups.begin(), {spelling, std::string()});
        else
          it = groups.insert(groups.end(), {spelling, std::string()});
      }
      if (!it->second.empty())
        it->second += ", ";
      it->second += map.item;
    }
    for (const auto &[spelling, items] : groups) {
      out += " map(";
      out += spelling;
      out += ": ";
      out += items;
      out += ")";
    }
  }
  return out;
}

void PlanRewriter::rewriteRegion(const ir::Region &region,
                                 SourceRewriter &rewriter) {
  const std::string clauses = mapClausesText(region);
  if (clauses.empty())
    return;
  if (region.appendsToKernel) {
    // Single kernel: append clauses to its pragma line.
    rewriter.insert(region.soleKernelPragmaEndOffset, clauses);
    return;
  }
  const std::size_t startLine = lineStartFor(region.start.beginOffset);
  const std::string indent =
      sourceManager_.indentationAt(region.start.beginOffset);
  rewriter.insert(startLine, indent + "#pragma omp target data" + clauses +
                                 "\n" + indent + "{\n");
  const std::size_t endLine = lineEndFor(
      region.end.endOffset > 0 ? region.end.endOffset - 1 : 0);
  rewriter.insert(endLine, indent + "}\n");
}

std::size_t updateInsertionOffset(const SourceManager &sourceManager,
                                  const ir::UpdateItem &update) {
  const auto lineStartFor = [&](std::size_t offset) {
    return lineStartOf(sourceManager, offset);
  };
  const auto lineEndFor = [&](std::size_t offset) {
    return lineEndOf(sourceManager, offset);
  };
  const ir::StmtAnchor &anchor = update.anchor;
  switch (update.placement) {
  case ir::UpdatePlacement::Before:
    return lineStartFor(anchor.beginOffset);
  case ir::UpdatePlacement::After:
    return lineEndFor(anchor.endOffset > 0 ? anchor.endOffset - 1 : 0);
  case ir::UpdatePlacement::BodyBegin:
  case ir::UpdatePlacement::BodyEnd: {
    const std::size_t bodyBegin =
        anchor.hasBody ? anchor.bodyBeginOffset : anchor.beginOffset;
    const std::size_t bodyEnd =
        anchor.hasBody ? anchor.bodyEndOffset : anchor.endOffset;
    const bool bodyIsCompound = anchor.hasBody && anchor.bodyIsCompound;
    if (update.placement == ir::UpdatePlacement::BodyBegin) {
      // Just after the opening brace (or before a braceless body).
      return bodyIsCompound ? lineEndFor(bodyBegin)
                            : lineStartFor(bodyBegin);
    }
    // Just before the closing brace (or after a braceless body).
    return bodyIsCompound ? lineStartFor(bodyEnd > 0 ? bodyEnd - 1 : 0)
                          : lineEndFor(bodyEnd > 0 ? bodyEnd - 1 : 0);
  }
  }
  return lineStartFor(anchor.beginOffset);
}

void PlanRewriter::emitUpdates(const ir::Region &region,
                               SourceRewriter &rewriter) {
  // Consolidate: one directive per (insertion offset, direction), listing
  // every variable that updates there (paper §IV-F last paragraph).
  struct Point {
    std::size_t offset;
    ir::UpdateDirection direction;
    std::string indent;
    std::vector<std::string> items;
  };
  std::map<std::pair<std::size_t, int>, Point> points;

  for (const ir::UpdateItem &update : region.updates) {
    const ir::StmtAnchor &anchor = update.anchor;
    const std::size_t offset = updateInsertionOffset(sourceManager_, update);
    std::string indent = sourceManager_.indentationAt(anchor.beginOffset);
    if (update.placement == ir::UpdatePlacement::BodyBegin ||
        update.placement == ir::UpdatePlacement::BodyEnd)
      indent += "  ";
    auto &point = points[{offset, static_cast<int>(update.direction)}];
    point.offset = offset;
    point.direction = update.direction;
    point.indent = indent;
    if (std::find(point.items.begin(), point.items.end(), update.item) ==
        point.items.end())
      point.items.push_back(update.item);
  }

  for (const auto &[key, point] : points) {
    std::string items;
    for (const std::string &item : point.items) {
      if (!items.empty())
        items += ", ";
      items += item;
    }
    std::string text =
        point.indent + "#pragma omp target update " +
        (point.direction == ir::UpdateDirection::To ? "to(" : "from(") +
        items + ")\n";
    rewriter.insert(point.offset, std::move(text));
  }
}

void PlanRewriter::emitFirstprivates(const ir::Region &region,
                                     SourceRewriter &rewriter) {
  // Consolidate per kernel (identified by its pragma-end offset).
  std::map<std::size_t, std::vector<std::string>> byKernel;
  for (const ir::FirstprivateItem &fp : region.firstprivates) {
    auto &names = byKernel[fp.kernelPragmaEndOffset];
    if (std::find(names.begin(), names.end(), fp.var) == names.end())
      names.push_back(fp.var);
  }
  for (const auto &[offset, names] : byKernel) {
    std::string items;
    for (const std::string &name : names) {
      if (!items.empty())
        items += ", ";
      items += name;
    }
    rewriter.insert(offset, " firstprivate(" + items + ")");
  }
}

std::string PlanRewriter::rewrite() {
  SourceRewriter rewriter(sourceManager_);
  for (const ir::Region &region : ir_.regions) {
    rewriteRegion(region, rewriter);
    emitUpdates(region, rewriter);
    emitFirstprivates(region, rewriter);
  }
  return rewriter.apply();
}

std::string applyMappingIr(const SourceManager &sourceManager,
                           const ir::MappingIr &ir) {
  PlanRewriter rewriter(sourceManager, ir);
  return rewriter.rewrite();
}

std::string applyMappingPlan(const SourceManager &sourceManager,
                             const MappingPlan &plan) {
  return applyMappingIr(sourceManager,
                        ir::liftPlan(plan, sourceManager.fileName()));
}

} // namespace ompdart
