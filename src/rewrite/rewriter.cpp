#include "rewrite/rewriter.hpp"

#include "mapping/plan.hpp"

#include <algorithm>
#include <map>

namespace ompdart {

void SourceRewriter::insert(std::size_t offset, std::string text,
                            Priority priority) {
  edits_.push_back(Edit{offset, static_cast<int>(priority),
                        static_cast<unsigned>(edits_.size()),
                        std::move(text)});
}

std::string SourceRewriter::apply() const {
  std::vector<Edit> sorted = edits_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Edit &a, const Edit &b) {
                     if (a.offset != b.offset)
                       return a.offset < b.offset;
                     if (a.priority != b.priority)
                       return a.priority < b.priority;
                     return a.sequence < b.sequence;
                   });
  const std::string &original = sourceManager_.text();
  std::string out;
  out.reserve(original.size() + 256);
  std::size_t cursor = 0;
  for (const Edit &edit : sorted) {
    const std::size_t offset = std::min(edit.offset, original.size());
    out.append(original, cursor, offset - cursor);
    out.append(edit.text);
    cursor = offset;
  }
  out.append(original, cursor, original.size() - cursor);
  return out;
}

namespace {

std::size_t lineStartOf(const SourceManager &sourceManager,
                        std::size_t offset) {
  return sourceManager.lineStartOffset(sourceManager.lineNumber(offset));
}

std::size_t lineEndOf(const SourceManager &sourceManager,
                      std::size_t offset) {
  const unsigned line = sourceManager.lineNumber(offset);
  std::size_t end = sourceManager.lineEndOffset(line);
  if (end < sourceManager.size())
    ++end; // past the newline
  return end;
}

} // namespace

std::size_t PlanRewriter::lineStartFor(std::size_t offset) const {
  return lineStartOf(sourceManager_, offset);
}

std::size_t PlanRewriter::lineEndFor(std::size_t offset) const {
  return lineEndOf(sourceManager_, offset);
}

std::string PlanRewriter::mapClausesText(const ir::Region &region) {
  // Group map items by map type in a stable to/from/tofrom/alloc order
  // (unmapping types last); within one type, modifier-free items come
  // first, then one clause per distinct modifier set in first-seen order.
  const ir::MapType order[] = {ir::MapType::To,     ir::MapType::From,
                               ir::MapType::ToFrom, ir::MapType::Alloc,
                               ir::MapType::Release, ir::MapType::Delete};
  std::string out;
  for (const ir::MapType type : order) {
    std::vector<std::pair<std::string, std::string>> groups; // spelling, items
    for (const ir::MapItem &map : region.maps) {
      if (map.type != type)
        continue;
      const std::string spelling =
          ir::mapTypeSpellingWithModifiers(type, map.modifiers);
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto &group) {
                               return group.first == spelling;
                             });
      if (it == groups.end()) {
        // Modifier-free group leads so unmodified output keeps the classic
        // "map(to: ...)" shape in front.
        if (!map.modifiers.any())
          it = groups.insert(groups.begin(), {spelling, std::string()});
        else
          it = groups.insert(groups.end(), {spelling, std::string()});
      }
      if (!it->second.empty())
        it->second += ", ";
      it->second += map.item;
    }
    for (const auto &[spelling, items] : groups) {
      out += " map(";
      out += spelling;
      out += ": ";
      out += items;
      out += ")";
    }
  }
  return out;
}

void PlanRewriter::rewriteRegion(const ir::Region &region,
                                 SourceRewriter &rewriter) {
  const std::string clauses = mapClausesText(region);
  if (clauses.empty())
    return;
  if (region.appendsToKernel) {
    // Single kernel: append clauses to its pragma line.
    rewriter.insert(region.soleKernelPragmaEndOffset, clauses);
    return;
  }
  const std::size_t startLine = lineStartFor(region.start.beginOffset);
  const std::string indent =
      sourceManager_.indentationAt(region.start.beginOffset);
  rewriter.insert(startLine,
                  indent + "#pragma omp target data" + clauses + "\n" +
                      indent + "{\n",
                  SourceRewriter::Priority::RegionOpen);
  const std::size_t endLine = lineEndFor(
      region.end.endOffset > 0 ? region.end.endOffset - 1 : 0);
  rewriter.insert(endLine, indent + "}\n",
                  SourceRewriter::Priority::RegionClose);
}

std::size_t updateInsertionOffset(const SourceManager &sourceManager,
                                  const ir::UpdateItem &update) {
  const auto lineStartFor = [&](std::size_t offset) {
    return lineStartOf(sourceManager, offset);
  };
  const auto lineEndFor = [&](std::size_t offset) {
    return lineEndOf(sourceManager, offset);
  };
  const ir::StmtAnchor &anchor = update.anchor;
  switch (update.placement) {
  case ir::UpdatePlacement::Before:
    return lineStartFor(anchor.beginOffset);
  case ir::UpdatePlacement::After:
    return lineEndFor(anchor.endOffset > 0 ? anchor.endOffset - 1 : 0);
  case ir::UpdatePlacement::BodyBegin:
  case ir::UpdatePlacement::BodyEnd: {
    const std::size_t bodyBegin =
        anchor.hasBody ? anchor.bodyBeginOffset : anchor.beginOffset;
    const std::size_t bodyEnd =
        anchor.hasBody ? anchor.bodyEndOffset : anchor.endOffset;
    const bool bodyIsCompound = anchor.hasBody && anchor.bodyIsCompound;
    if (update.placement == ir::UpdatePlacement::BodyBegin) {
      // Just after the opening brace, or — for a braceless body, which
      // gains a brace pair at these exact offsets — right at the body's
      // first byte, regardless of whether it shares the loop header's
      // line.
      return bodyIsCompound ? lineEndFor(bodyBegin) : bodyBegin;
    }
    // Just before the closing brace (or after a braceless body).
    return bodyIsCompound ? lineStartFor(bodyEnd > 0 ? bodyEnd - 1 : 0)
                          : bodyEnd;
  }
  }
  return lineStartFor(anchor.beginOffset);
}

void PlanRewriter::emitUpdates(const ir::Region &region,
                               SourceRewriter &rewriter) {
  // Consolidate: one directive per (insertion offset, direction), listing
  // every variable that updates there (paper §IV-F last paragraph).
  struct Point {
    std::size_t offset;
    ir::UpdateDirection direction;
    std::string indent;
    /// Braceless-body insertion: the offset is mid-line (the body's exact
    /// begin/end byte), so the directive line needs a leading newline
    /// (BodyEnd) or follows the freshly inserted `{\n` (BodyBegin).
    bool inlineBegin = false;
    bool inlineEnd = false;
    std::vector<std::string> items;
  };
  std::map<std::pair<std::size_t, int>, Point> points;
  // Braceless loop bodies hosting a BodyBegin/BodyEnd directive must gain
  // braces, or the inserted pragma line either becomes the body itself
  // (BodyBegin, pushing the real body out of the loop) or lands after the
  // loop entirely (BodyEnd). Braces land at the body's exact byte range —
  // a body sharing the loop header's line must not wrap the whole loop.
  // One brace pair per anchor, shared by all its updates.
  std::map<std::pair<std::size_t, std::size_t>, std::string> braceWraps;

  for (const ir::UpdateItem &update : region.updates) {
    const ir::StmtAnchor &anchor = update.anchor;
    const std::size_t offset = updateInsertionOffset(sourceManager_, update);
    std::string indent = sourceManager_.indentationAt(anchor.beginOffset);
    const bool bodyPlacement =
        update.placement == ir::UpdatePlacement::BodyBegin ||
        update.placement == ir::UpdatePlacement::BodyEnd;
    const bool braceless =
        bodyPlacement && anchor.hasBody && !anchor.bodyIsCompound;
    if (bodyPlacement) {
      if (braceless)
        braceWraps[{anchor.bodyBeginOffset, anchor.bodyEndOffset}] = indent;
      indent += "  ";
    }
    auto &point = points[{offset, static_cast<int>(update.direction)}];
    point.offset = offset;
    point.direction = update.direction;
    point.indent = indent;
    point.inlineBegin =
        point.inlineBegin ||
        (braceless && update.placement == ir::UpdatePlacement::BodyBegin);
    point.inlineEnd =
        point.inlineEnd ||
        (braceless && update.placement == ir::UpdatePlacement::BodyEnd);
    if (std::find(point.items.begin(), point.items.end(), update.item) ==
        point.items.end())
      point.items.push_back(update.item);
  }

  for (const auto &[body, indent] : braceWraps) {
    rewriter.insert(body.first, "{\n", SourceRewriter::Priority::BodyOpen);
    rewriter.insert(body.second, "\n" + indent + "}",
                    SourceRewriter::Priority::BodyClose);
  }

  for (const auto &[key, point] : points) {
    std::string items;
    for (const std::string &item : point.items) {
      if (!items.empty())
        items += ", ";
      items += item;
    }
    const std::string directive =
        "#pragma omp target update " +
        std::string(point.direction == ir::UpdateDirection::To ? "to("
                                                               : "from(") +
        items + ")";
    std::string text;
    if (point.inlineEnd) {
      // After the body's last byte, before the inserted `\n<indent>}`.
      text = "\n" + point.indent + directive;
    } else if (point.inlineBegin) {
      // After the inserted `{\n`, before the body's first byte.
      text = point.indent + directive + "\n" + point.indent;
    } else {
      text = point.indent + directive + "\n";
    }
    rewriter.insert(point.offset, std::move(text));
  }
}

void PlanRewriter::emitFirstprivates(const ir::Region &region,
                                     SourceRewriter &rewriter) {
  // Consolidate per kernel (identified by its pragma-end offset).
  std::map<std::size_t, std::vector<std::string>> byKernel;
  for (const ir::FirstprivateItem &fp : region.firstprivates) {
    auto &names = byKernel[fp.kernelPragmaEndOffset];
    if (std::find(names.begin(), names.end(), fp.var) == names.end())
      names.push_back(fp.var);
  }
  for (const auto &[offset, names] : byKernel) {
    std::string items;
    for (const std::string &name : names) {
      if (!items.empty())
        items += ", ";
      items += name;
    }
    rewriter.insert(offset, " firstprivate(" + items + ")");
  }
}

std::string PlanRewriter::rewrite() {
  SourceRewriter rewriter(sourceManager_);
  for (const ir::Region &region : ir_.regions) {
    rewriteRegion(region, rewriter);
    emitUpdates(region, rewriter);
    emitFirstprivates(region, rewriter);
  }
  return rewriter.apply();
}

std::string applyMappingIr(const SourceManager &sourceManager,
                           const ir::MappingIr &ir) {
  PlanRewriter rewriter(sourceManager, ir);
  return rewriter.rewrite();
}

std::string applyMappingPlan(const SourceManager &sourceManager,
                             const MappingPlan &plan) {
  return applyMappingIr(sourceManager,
                        ir::liftPlan(plan, sourceManager.fileName()));
}

} // namespace ompdart
