// Source rewriter (paper §IV-F).
//
// Materializes a MappingPlan as text edits on the original buffer:
//  - a new `#pragma omp target data map(...)` directive + braces around the
//    region, or clause appends onto a sole kernel's pragma,
//  - consolidated `#pragma omp target update to/from(...)` directives at
//    each insertion point (one directive per point, multiple list items),
//  - `firstprivate(...)` clauses appended to kernel pragmas.
#pragma once

#include "mapping/plan.hpp"
#include "support/source_manager.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace ompdart {

/// Offset-keyed insert-only text editor. Edits at the same offset apply in
/// the order they were added.
class SourceRewriter {
public:
  explicit SourceRewriter(const SourceManager &sourceManager)
      : sourceManager_(sourceManager) {}

  void insert(std::size_t offset, std::string text);

  /// Applies all edits and returns the rewritten buffer.
  [[nodiscard]] std::string apply() const;

  [[nodiscard]] const SourceManager &sourceManager() const {
    return sourceManager_;
  }

private:
  struct Edit {
    std::size_t offset;
    unsigned sequence;
    std::string text;
  };
  const SourceManager &sourceManager_;
  std::vector<Edit> edits_;
};

/// Renders a MappingPlan into the transformed source text.
class PlanRewriter {
public:
  PlanRewriter(const SourceManager &sourceManager, const MappingPlan &plan)
      : sourceManager_(sourceManager), plan_(plan) {}

  [[nodiscard]] std::string rewrite();

private:
  void rewriteRegion(const RegionPlan &region, SourceRewriter &rewriter);
  void emitUpdates(const RegionPlan &region, SourceRewriter &rewriter);
  void emitFirstprivates(const RegionPlan &region, SourceRewriter &rewriter);

  /// Builds the map clause list text for a region, grouped by map type.
  [[nodiscard]] static std::string mapClausesText(const RegionPlan &region);

  /// Offset of the first character of the line containing `offset`.
  [[nodiscard]] std::size_t lineStartFor(std::size_t offset) const;
  /// Offset just past the line containing `offset` (after its newline).
  [[nodiscard]] std::size_t lineEndFor(std::size_t offset) const;

  const SourceManager &sourceManager_;
  const MappingPlan &plan_;
};

/// Convenience: apply `plan` to the source and return the transformed text.
[[nodiscard]] std::string applyMappingPlan(const SourceManager &sourceManager,
                                           const MappingPlan &plan);

} // namespace ompdart
