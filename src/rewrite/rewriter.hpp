// Source rewriter (paper §IV-F).
//
// Materializes a mapping plan as text edits on the original buffer:
//  - a new `#pragma omp target data map(...)` directive + braces around the
//    region, or clause appends onto a sole kernel's pragma,
//  - consolidated `#pragma omp target update to/from(...)` directives at
//    each insertion point (one directive per point, multiple list items),
//  - `firstprivate(...)` clauses appended to kernel pragmas.
//
// The rewriter consumes the self-contained Mapping IR: every insertion
// point is a byte offset recorded in the IR, so a serialized plan can be
// re-applied to the original text without the AST (the IR + the buffer are
// sufficient). `applyMappingPlan` keeps the AST-level convenience
// signature by lifting the plan first.
#pragma once

#include "mapping/ir.hpp"
#include "support/source_manager.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace ompdart {

struct MappingPlan;

/// Offset-keyed insert-only text editor. Edits at the same offset apply in
/// priority order (then insertion order): structural nesting at one line —
/// region open, body-wrapping brace open, directives, body-wrapping brace
/// close, region close — must hold regardless of which emission phase ran
/// first.
class SourceRewriter {
public:
  /// Same-offset ordering classes, outermost-open first.
  enum class Priority {
    RegionOpen = 0, ///< `#pragma omp target data ... {`
    BodyOpen = 1,   ///< brace wrapping a braceless loop body
    Directive = 2,  ///< updates, clause appends (the default)
    BodyClose = 3,
    RegionClose = 4,
  };

  explicit SourceRewriter(const SourceManager &sourceManager)
      : sourceManager_(sourceManager) {}

  void insert(std::size_t offset, std::string text,
              Priority priority = Priority::Directive);

  /// Applies all edits and returns the rewritten buffer.
  [[nodiscard]] std::string apply() const;

  [[nodiscard]] const SourceManager &sourceManager() const {
    return sourceManager_;
  }

private:
  struct Edit {
    std::size_t offset;
    int priority;
    unsigned sequence;
    std::string text;
  };
  const SourceManager &sourceManager_;
  std::vector<Edit> edits_;
};

/// Renders a Mapping IR into the transformed source text.
class PlanRewriter {
public:
  PlanRewriter(const SourceManager &sourceManager, const ir::MappingIr &ir)
      : sourceManager_(sourceManager), ir_(ir) {}

  [[nodiscard]] std::string rewrite();

private:
  void rewriteRegion(const ir::Region &region, SourceRewriter &rewriter);
  void emitUpdates(const ir::Region &region, SourceRewriter &rewriter);
  void emitFirstprivates(const ir::Region &region, SourceRewriter &rewriter);

  /// Builds the map clause list text for a region, grouped by map type (and
  /// modifier set) in a stable to/from/tofrom/alloc order.
  [[nodiscard]] static std::string mapClausesText(const ir::Region &region);

  /// Offset of the first character of the line containing `offset`.
  [[nodiscard]] std::size_t lineStartFor(std::size_t offset) const;
  /// Offset just past the line containing `offset` (after its newline).
  [[nodiscard]] std::size_t lineEndFor(std::size_t offset) const;

  const SourceManager &sourceManager_;
  const ir::MappingIr &ir_;
};

/// The byte offset where the rewriter inserts one update directive. Also
/// serves as the consolidation key: updates sharing (offset, direction)
/// merge into a single directive, which backends mirror when they apply a
/// plan without rewriting.
[[nodiscard]] std::size_t
updateInsertionOffset(const SourceManager &sourceManager,
                      const ir::UpdateItem &update);

/// Convenience: render `ir` against the original buffer.
[[nodiscard]] std::string applyMappingIr(const SourceManager &sourceManager,
                                         const ir::MappingIr &ir);

/// Convenience: apply an AST-level `plan` to the source and return the
/// transformed text (lifts to IR internally).
[[nodiscard]] std::string applyMappingPlan(const SourceManager &sourceManager,
                                           const MappingPlan &plan);

} // namespace ompdart
