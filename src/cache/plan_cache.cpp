#include "cache/plan_cache.hpp"

#include "support/hash.hpp"

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace ompdart::cache {

namespace fs = std::filesystem;

namespace {

constexpr unsigned kEntryFormatVersion = 1;
/// Memo caps: bound a long-lived server's footprint. Plan entries carry a
/// whole Mapping IR, summaries a small JSON document, hence the asymmetry.
constexpr std::size_t kEntryMemoCap = 16384;
constexpr std::size_t kSummaryMemoCap = 65536;

std::optional<std::string> readFile(const fs::path &path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Atomic publish: write next to the target, then rename over it. Readers
/// either see the old content or the new, never a torn file. The temp name
/// is unique per process AND per write, so concurrent writers (threads or
/// CLI processes sharing one cache directory) never interleave into one
/// temp file.
bool writeFileAtomic(const fs::path &path, const std::string &content) {
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  static std::atomic<unsigned long long> writeCounter{0};
  const fs::path temp =
      path.parent_path() /
      (path.filename().string() + ".tmp." +
       std::to_string(static_cast<long long>(::getpid())) + "." +
       std::to_string(writeCounter.fetch_add(1)));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out)
      return false;
    out << content;
    // Force the buffered tail out and observe close-time failures (full
    // disk) BEFORE the rename publishes the file — never replace a good
    // entry/index with a truncated one.
    out.flush();
    out.close();
    if (out.fail()) {
      fs::remove(temp, ec);
      return false;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

/// Index rows are keyed by everything BUT the source content, so a row
/// changes exactly when the same file+config+tool combination re-plans
/// edited content — the stale transition worth invalidating. Config flips
/// get their own rows and never unlink each other's (still valid) entries.
std::string indexKeyFor(const CacheKey &key, const std::string &fileName) {
  return fileName + "\n" + key.configHash + "\n" + key.toolVersion;
}

/// Reads one index document (a shard file or the legacy monolithic
/// index.json) into `rows` for the rows `accept` admits; existing rows are
/// kept (caller decides precedence by read order).
void readIndexDocument(const fs::path &path,
                       std::map<std::string, std::string> &rows,
                       const std::set<std::string> &skip,
                       unsigned acceptShard) {
  const auto text = readFile(path);
  if (!text)
    return;
  const auto doc = json::Value::parse(*text);
  if (!doc || !doc->isObject())
    return;
  for (const auto &[rowKey, id] : doc->members()) {
    if (id.kind() != json::Value::Kind::String)
      continue;
    if (skip.count(rowKey) != 0)
      continue;
    if (PlanCache::shardOf(rowKey) != acceptShard)
      continue;
    if (rows.count(rowKey) == 0)
      rows[rowKey] = id.asString();
  }
}

} // namespace

const char *cacheModeName(CacheMode mode) {
  switch (mode) {
  case CacheMode::Off:
    return "off";
  case CacheMode::Read:
    return "read";
  case CacheMode::ReadWrite:
    return "read-write";
  }
  return "unknown";
}

std::optional<CacheMode> cacheModeFromName(const std::string &name) {
  if (name == "off")
    return CacheMode::Off;
  if (name == "read")
    return CacheMode::Read;
  if (name == "read-write")
    return CacheMode::ReadWrite;
  return std::nullopt;
}

std::string CacheKey::id() const {
  // Length-prefix each component so ("ab","c") and ("a","bc") cannot
  // collide by concatenation.
  hash::Hasher hasher;
  hasher.update(static_cast<std::uint64_t>(sourceHash.size()));
  hasher.update(sourceHash);
  hasher.update(static_cast<std::uint64_t>(configHash.size()));
  hasher.update(configHash);
  hasher.update(static_cast<std::uint64_t>(toolVersion.size()));
  hasher.update(toolVersion);
  hasher.update(static_cast<std::uint64_t>(importsHash.size()));
  hasher.update(importsHash);
  return hasher.hex();
}

json::Value CacheEntry::toJson(const CacheKey &key) const {
  json::Value out = json::Value::object();
  out.set("formatVersion", kEntryFormatVersion);
  json::Value keyJson = json::Value::object();
  keyJson.set("sourceHash", key.sourceHash);
  keyJson.set("configHash", key.configHash);
  keyJson.set("toolVersion", key.toolVersion);
  keyJson.set("importsHash", key.importsHash);
  out.set("key", std::move(keyJson));
  out.set("file", fileName);
  out.set("irFingerprint", irFingerprint);

  json::Value metricsJson = json::Value::object();
  metricsJson.set("kernels", metrics.kernels);
  metricsJson.set("offloadedLines", metrics.offloadedLines);
  metricsJson.set("mappedVariables", metrics.mappedVariables);
  metricsJson.set("possibleMappings", metrics.possibleMappings);
  out.set("metrics", std::move(metricsJson));

  json::Value diagnosticsJson = json::Value::array();
  for (const Diagnostic &diag : diagnostics)
    diagnosticsJson.push(diagnosticToJson(diag));
  out.set("diagnostics", std::move(diagnosticsJson));

  out.set("ir", ir.toJson());
  return out;
}

std::optional<CacheEntry> CacheEntry::fromJson(const json::Value &value,
                                               const CacheKey &expect,
                                               std::string *error) {
  if (!value.isObject()) {
    json::setFirstError(error, "cache entry must be a JSON object");
    return std::nullopt;
  }
  if (value.uintOr("formatVersion") != kEntryFormatVersion) {
    json::setFirstError(error, "cache entry has an unsupported format version");
    return std::nullopt;
  }
  const json::Value *keyJson = value.find("key");
  if (keyJson == nullptr) {
    json::setFirstError(error, "cache entry is missing its key");
    return std::nullopt;
  }
  CacheKey key;
  key.sourceHash = keyJson->stringOr("sourceHash");
  key.configHash = keyJson->stringOr("configHash");
  key.toolVersion = keyJson->stringOr("toolVersion");
  key.importsHash = keyJson->stringOr("importsHash");
  if (!(key == expect)) {
    json::setFirstError(error, "cache entry key does not match the lookup key");
    return std::nullopt;
  }

  CacheEntry entry;
  entry.fileName = value.stringOr("file");
  entry.irFingerprint = value.stringOr("irFingerprint");

  if (const json::Value *metricsJson = value.find("metrics")) {
    entry.metrics.kernels =
        static_cast<unsigned>(metricsJson->uintOr("kernels"));
    entry.metrics.offloadedLines =
        static_cast<unsigned>(metricsJson->uintOr("offloadedLines"));
    entry.metrics.mappedVariables =
        static_cast<unsigned>(metricsJson->uintOr("mappedVariables"));
    entry.metrics.possibleMappings = metricsJson->uintOr("possibleMappings");
  }

  if (const json::Value *diagnosticsJson = value.find("diagnostics")) {
    for (const json::Value &diagJson : diagnosticsJson->items()) {
      std::optional<Diagnostic> diag = diagnosticFromJson(diagJson);
      if (!diag) {
        json::setFirstError(error, "cache entry holds a malformed diagnostic");
        return std::nullopt;
      }
      entry.diagnostics.push_back(std::move(*diag));
    }
  }

  const json::Value *irJson = value.find("ir");
  if (irJson == nullptr) {
    json::setFirstError(error, "cache entry is missing the mapping IR");
    return std::nullopt;
  }
  std::optional<ir::MappingIr> mappingIr = ir::MappingIr::fromJson(*irJson,
                                                                   error);
  if (!mappingIr)
    return std::nullopt;
  entry.ir = std::move(*mappingIr);
  if (entry.ir.fingerprint() != entry.irFingerprint) {
    json::setFirstError(error, "cache entry IR fails its integrity fingerprint");
    return std::nullopt;
  }
  return entry;
}

json::Value CacheStats::toJson() const {
  json::Value out = json::Value::object();
  out.set("lookups", lookups);
  out.set("hits", hits);
  out.set("misses", misses);
  out.set("stores", stores);
  out.set("invalidations", invalidations);
  out.set("memoHits", memoHits);
  out.set("summaryLookups", summaryLookups);
  out.set("summaryHits", summaryHits);
  out.set("summaryMisses", summaryMisses);
  out.set("summaryStores", summaryStores);
  out.set("summaryMemoHits", summaryMemoHits);
  return out;
}

PlanCache::PlanCache(std::string directory, CacheMode mode)
    : directory_(std::move(directory)), mode_(mode) {}

std::string PlanCache::entryPathFor(const CacheKey &key) const {
  return (fs::path(directory_) / "plans" / (key.id() + ".json")).string();
}

std::string PlanCache::indexShardPath(unsigned shard) const {
  std::string name = "index-";
  name += static_cast<char>('0' + shard / 10);
  name += static_cast<char>('0' + shard % 10);
  name += ".json";
  return (fs::path(directory_) / name).string();
}

unsigned PlanCache::shardOf(const std::string &row) {
  // Stable across processes and platforms (hash::Hasher is pinned), so
  // every writer sharing the directory files a row under the same shard.
  hash::Hasher hasher;
  hasher.update(row);
  return static_cast<unsigned>(hasher.low() % kIndexShards);
}

void PlanCache::loadShardLocked(unsigned shard) {
  IndexShard &stripe = shards_[shard];
  if (stripe.loaded)
    return;
  stripe.loaded = true;
  static const std::set<std::string> kSkipNone;
  std::error_code ec;
  const bool shardFileExists = fs::exists(indexShardPath(shard), ec);
  readIndexDocument(indexShardPath(shard), stripe.rows, kSkipNone, shard);
  // Legacy migration: a pre-sharding cache kept every row in one
  // index.json. Every shard-file save includes the migrated rows (adoption
  // marks the shard dirty), so once the shard file exists it is the
  // authoritative superset of the legacy rows AND of later erasures — a
  // row a writable cache deliberately dropped (stale detection) must not
  // be resurrected from the legacy file on every fresh load. Only a shard
  // that was never flushed adopts legacy rows. The legacy file itself is
  // left in place and never rewritten — rows for shards no writable
  // process has flushed yet stay readable there.
  if (shardFileExists)
    return;
  const std::size_t beforeLegacy = stripe.rows.size();
  readIndexDocument(fs::path(directory_) / "index.json", stripe.rows,
                    kSkipNone, shard);
  if (writable() && stripe.rows.size() != beforeLegacy)
    stripe.dirty = true;
}

void PlanCache::mergeDiskShardLocked(unsigned shard) {
  // Another process sharing this directory may have stored or updated rows
  // since our load. Rows this process touched (ownedRows) keep our value
  // — including deliberate erasures, which must not resurrect — and every
  // other row adopts the disk state, so concurrent processes never clobber
  // each other's updates.
  IndexShard &stripe = shards_[shard];
  std::map<std::string, std::string> disk;
  readIndexDocument(indexShardPath(shard), disk, stripe.ownedRows, shard);
  for (auto &[rowKey, id] : disk)
    stripe.rows[rowKey] = std::move(id);
}

void PlanCache::saveShardLocked(unsigned shard) {
  // The per-shard mutex serializes saves within this instance, but other
  // instances — worker threads holding their own PlanCache, or separate
  // CLI processes sharing the directory — can run this read-merge-write
  // cycle concurrently on the same shard file. Without a cross-instance
  // lock, two writers can both read, then both rename, and the second
  // rename silently drops every row only the first writer held. An
  // advisory flock on a sidecar (never-renamed) lock file makes the whole
  // cycle atomic across instances AND processes; writeFileAtomic's rename
  // alone only guards against torn reads, not lost merges.
  const std::string lockPath = indexShardPath(shard) + ".lock";
  const int lockFd =
      ::open(lockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lockFd >= 0)
    while (::flock(lockFd, LOCK_EX) != 0 && errno == EINTR) {
    }
  mergeDiskShardLocked(shard);
  IndexShard &stripe = shards_[shard];
  json::Value doc = json::Value::object();
  for (const auto &[rowKey, id] : stripe.rows)
    doc.set(rowKey, id);
  if (writeFileAtomic(indexShardPath(shard), doc.dump(true)))
    stripe.dirty = false;
  if (lockFd >= 0) {
    ::flock(lockFd, LOCK_UN);
    ::close(lockFd);
  }
}

void PlanCache::flushIndex() {
  for (unsigned shard = 0; shard < kIndexShards; ++shard) {
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    if (shards_[shard].dirty)
      saveShardLocked(shard);
  }
}

PlanCache::~PlanCache() { flushIndex(); }

void PlanCache::memoizeEntry(SymbolId id, const CacheEntry &entry) {
  std::lock_guard<std::mutex> lock(memoMutex_);
  if (entryMemo_.size() < kEntryMemoCap)
    entryMemo_.emplace(id, entry);
}

void PlanCache::memoizeSummary(SymbolId id, const json::Value &payload) {
  std::lock_guard<std::mutex> lock(memoMutex_);
  if (summaryMemo_.size() < kSummaryMemoCap)
    summaryMemo_.emplace(id, payload);
}

void PlanCache::dropMemos() {
  std::lock_guard<std::mutex> lock(memoMutex_);
  entryMemo_.clear();
  summaryMemo_.clear();
}

std::optional<CacheEntry> PlanCache::lookup(const CacheKey &key,
                                            const std::string &fileName) {
  if (!enabled())
    return std::nullopt;
  const std::string id = key.id();
  const SymbolId idSym = internSymbol(id);

  // Memo first: entries are immutable by content address, so a memoized
  // value validated once never goes stale — warm server traffic skips the
  // disk read, JSON parse and fingerprint check entirely.
  std::optional<CacheEntry> entry;
  bool fromMemo = false;
  {
    std::lock_guard<std::mutex> lock(memoMutex_);
    auto it = entryMemo_.find(idSym);
    if (it != entryMemo_.end()) {
      entry = it->second;
      fromMemo = true;
    }
  }
  // File read, JSON parse, IR deserialization and fingerprint verification
  // touch no shared state — keep them outside every lock so a warm batch's
  // lookups run concurrently instead of serializing.
  if (!entry) {
    if (const auto text = readFile(entryPathFor(key))) {
      if (const auto doc = json::Value::parse(*text))
        entry = CacheEntry::fromJson(*doc, key);
    }
    if (entry)
      memoizeEntry(idSym, *entry);
  }

  const std::string row = indexKeyFor(key, fileName);
  IndexShard &stripe = shards_[shardOf(row)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  loadShardLocked(shardOf(row));
  counters_.lookups.fetch_add(1, std::memory_order_relaxed);
  if (entry) {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    if (fromMemo)
      counters_.memoHits.fetch_add(1, std::memory_order_relaxed);
    // Register this file+config against the entry it resolves to
    // (identical sources share one content-addressed entry), so every
    // combination currently served by an entry is visible in the index.
    if (writable()) {
      auto indexIt = stripe.rows.find(row);
      if (indexIt == stripe.rows.end() || indexIt->second != id) {
        stripe.rows[row] = id;
        stripe.ownedRows.insert(row);
        stripe.dirty = true;
      }
    }
    return entry;
  }

  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  // Stale detection: the index knows a different entry for this
  // file+config+tool row, so the file's content changed since the store.
  // Count the transition once and (read-write) drop the row — the re-plan
  // that follows this miss will store and re-index. The superseded entry
  // FILE stays on disk: content-addressed entries are immutable-valid, so
  // flipping the file back to earlier content (branch switches, A-B edits)
  // re-hits it, and identical-content twins or other configs sharing the
  // entry are never robbed of it.
  auto indexIt = stripe.rows.find(row);
  if (indexIt != stripe.rows.end() && indexIt->second != id) {
    if (stripe.countedStale.insert({row, indexIt->second}).second)
      counters_.invalidations.fetch_add(1, std::memory_order_relaxed);
    if (writable()) {
      stripe.rows.erase(indexIt);
      stripe.ownedRows.insert(row);
      stripe.dirty = true;
    }
  }
  return std::nullopt;
}

void PlanCache::store(const CacheKey &key, const CacheEntry &entry) {
  if (!writable())
    return;
  // The entry write touches no shared state (the path is content-addressed
  // and the rename atomic) — only stats and the index need a lock.
  if (!writeFileAtomic(entryPathFor(key), entry.toJson(key).dump(true)))
    return;
  const std::string id = key.id();
  memoizeEntry(internSymbol(id), entry);
  counters_.stores.fetch_add(1, std::memory_order_relaxed);
  if (!entry.fileName.empty()) {
    const std::string row = indexKeyFor(key, entry.fileName);
    IndexShard &stripe = shards_[shardOf(row)];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    loadShardLocked(shardOf(row));
    stripe.rows[row] = id;
    stripe.ownedRows.insert(row);
    stripe.dirty = true;
  }
}

std::string PlanCache::summaryPathFor(const CacheKey &key) const {
  return (fs::path(directory_) / "summaries" / (key.id() + ".json")).string();
}

std::optional<json::Value> PlanCache::lookupSummary(const CacheKey &key) {
  if (!enabled())
    return std::nullopt;
  const SymbolId idSym = internSymbol(key.id());
  counters_.summaryLookups.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(memoMutex_);
    auto it = summaryMemo_.find(idSym);
    if (it != summaryMemo_.end()) {
      counters_.summaryHits.fetch_add(1, std::memory_order_relaxed);
      counters_.summaryMemoHits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Like plan lookups, the file read and parse stay outside every lock.
  std::optional<json::Value> payload;
  if (const auto text = readFile(summaryPathFor(key))) {
    if (auto doc = json::Value::parse(*text); doc && doc->isObject()) {
      const json::Value *keyJson = doc->find("key");
      CacheKey stored;
      if (keyJson != nullptr) {
        stored.sourceHash = keyJson->stringOr("sourceHash");
        stored.configHash = keyJson->stringOr("configHash");
        stored.toolVersion = keyJson->stringOr("toolVersion");
        stored.importsHash = keyJson->stringOr("importsHash");
      }
      if (stored == key) {
        if (const json::Value *payloadJson = doc->find("summary"))
          payload = *payloadJson;
      }
    }
  }
  if (payload) {
    counters_.summaryHits.fetch_add(1, std::memory_order_relaxed);
    memoizeSummary(idSym, *payload);
  } else {
    counters_.summaryMisses.fetch_add(1, std::memory_order_relaxed);
  }
  return payload;
}

void PlanCache::storeSummary(const CacheKey &key, const json::Value &payload) {
  if (!enabled())
    return;
  // Memoize regardless of writability: a read-only server still keeps its
  // extracted summaries hot in memory (disk state is untouched).
  memoizeSummary(internSymbol(key.id()), payload);
  if (!writable())
    return;
  json::Value doc = json::Value::object();
  json::Value keyJson = json::Value::object();
  keyJson.set("sourceHash", key.sourceHash);
  keyJson.set("configHash", key.configHash);
  keyJson.set("toolVersion", key.toolVersion);
  keyJson.set("importsHash", key.importsHash);
  doc.set("key", std::move(keyJson));
  doc.set("summary", payload);
  if (!writeFileAtomic(summaryPathFor(key), doc.dump(true)))
    return;
  counters_.summaryStores.fetch_add(1, std::memory_order_relaxed);
}

CacheStats PlanCache::stats() const {
  CacheStats out;
  out.lookups = counters_.lookups.load(std::memory_order_relaxed);
  out.hits = counters_.hits.load(std::memory_order_relaxed);
  out.misses = counters_.misses.load(std::memory_order_relaxed);
  out.stores = counters_.stores.load(std::memory_order_relaxed);
  out.invalidations =
      counters_.invalidations.load(std::memory_order_relaxed);
  out.memoHits = counters_.memoHits.load(std::memory_order_relaxed);
  out.summaryLookups =
      counters_.summaryLookups.load(std::memory_order_relaxed);
  out.summaryHits = counters_.summaryHits.load(std::memory_order_relaxed);
  out.summaryMisses =
      counters_.summaryMisses.load(std::memory_order_relaxed);
  out.summaryStores =
      counters_.summaryStores.load(std::memory_order_relaxed);
  out.summaryMemoHits =
      counters_.summaryMemoHits.load(std::memory_order_relaxed);
  return out;
}

} // namespace ompdart::cache
