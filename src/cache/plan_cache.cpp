#include "cache/plan_cache.hpp"

#include "support/hash.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace ompdart::cache {

namespace fs = std::filesystem;

namespace {

constexpr unsigned kEntryFormatVersion = 1;

std::optional<std::string> readFile(const fs::path &path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Atomic publish: write next to the target, then rename over it. Readers
/// either see the old content or the new, never a torn file. The temp name
/// is unique per process AND per write, so concurrent writers (threads or
/// CLI processes sharing one cache directory) never interleave into one
/// temp file.
bool writeFileAtomic(const fs::path &path, const std::string &content) {
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  static std::atomic<unsigned long long> writeCounter{0};
  const fs::path temp =
      path.parent_path() /
      (path.filename().string() + ".tmp." +
       std::to_string(static_cast<long long>(::getpid())) + "." +
       std::to_string(writeCounter.fetch_add(1)));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out)
      return false;
    out << content;
    // Force the buffered tail out and observe close-time failures (full
    // disk) BEFORE the rename publishes the file — never replace a good
    // entry/index with a truncated one.
    out.flush();
    out.close();
    if (out.fail()) {
      fs::remove(temp, ec);
      return false;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

/// Index rows are keyed by everything BUT the source content, so a row
/// changes exactly when the same file+config+tool combination re-plans
/// edited content — the stale transition worth invalidating. Config flips
/// get their own rows and never unlink each other's (still valid) entries.
std::string indexKeyFor(const CacheKey &key, const std::string &fileName) {
  return fileName + "\n" + key.configHash + "\n" + key.toolVersion;
}

} // namespace

const char *cacheModeName(CacheMode mode) {
  switch (mode) {
  case CacheMode::Off:
    return "off";
  case CacheMode::Read:
    return "read";
  case CacheMode::ReadWrite:
    return "read-write";
  }
  return "unknown";
}

std::optional<CacheMode> cacheModeFromName(const std::string &name) {
  if (name == "off")
    return CacheMode::Off;
  if (name == "read")
    return CacheMode::Read;
  if (name == "read-write")
    return CacheMode::ReadWrite;
  return std::nullopt;
}

std::string CacheKey::id() const {
  // Length-prefix each component so ("ab","c") and ("a","bc") cannot
  // collide by concatenation.
  hash::Hasher hasher;
  hasher.update(static_cast<std::uint64_t>(sourceHash.size()));
  hasher.update(sourceHash);
  hasher.update(static_cast<std::uint64_t>(configHash.size()));
  hasher.update(configHash);
  hasher.update(static_cast<std::uint64_t>(toolVersion.size()));
  hasher.update(toolVersion);
  hasher.update(static_cast<std::uint64_t>(importsHash.size()));
  hasher.update(importsHash);
  return hasher.hex();
}

json::Value CacheEntry::toJson(const CacheKey &key) const {
  json::Value out = json::Value::object();
  out.set("formatVersion", kEntryFormatVersion);
  json::Value keyJson = json::Value::object();
  keyJson.set("sourceHash", key.sourceHash);
  keyJson.set("configHash", key.configHash);
  keyJson.set("toolVersion", key.toolVersion);
  keyJson.set("importsHash", key.importsHash);
  out.set("key", std::move(keyJson));
  out.set("file", fileName);
  out.set("irFingerprint", irFingerprint);

  json::Value metricsJson = json::Value::object();
  metricsJson.set("kernels", metrics.kernels);
  metricsJson.set("offloadedLines", metrics.offloadedLines);
  metricsJson.set("mappedVariables", metrics.mappedVariables);
  metricsJson.set("possibleMappings", metrics.possibleMappings);
  out.set("metrics", std::move(metricsJson));

  json::Value diagnosticsJson = json::Value::array();
  for (const Diagnostic &diag : diagnostics)
    diagnosticsJson.push(diagnosticToJson(diag));
  out.set("diagnostics", std::move(diagnosticsJson));

  out.set("ir", ir.toJson());
  return out;
}

std::optional<CacheEntry> CacheEntry::fromJson(const json::Value &value,
                                               const CacheKey &expect,
                                               std::string *error) {
  if (!value.isObject()) {
    json::setFirstError(error, "cache entry must be a JSON object");
    return std::nullopt;
  }
  if (value.uintOr("formatVersion") != kEntryFormatVersion) {
    json::setFirstError(error, "cache entry has an unsupported format version");
    return std::nullopt;
  }
  const json::Value *keyJson = value.find("key");
  if (keyJson == nullptr) {
    json::setFirstError(error, "cache entry is missing its key");
    return std::nullopt;
  }
  CacheKey key;
  key.sourceHash = keyJson->stringOr("sourceHash");
  key.configHash = keyJson->stringOr("configHash");
  key.toolVersion = keyJson->stringOr("toolVersion");
  key.importsHash = keyJson->stringOr("importsHash");
  if (!(key == expect)) {
    json::setFirstError(error, "cache entry key does not match the lookup key");
    return std::nullopt;
  }

  CacheEntry entry;
  entry.fileName = value.stringOr("file");
  entry.irFingerprint = value.stringOr("irFingerprint");

  if (const json::Value *metricsJson = value.find("metrics")) {
    entry.metrics.kernels =
        static_cast<unsigned>(metricsJson->uintOr("kernels"));
    entry.metrics.offloadedLines =
        static_cast<unsigned>(metricsJson->uintOr("offloadedLines"));
    entry.metrics.mappedVariables =
        static_cast<unsigned>(metricsJson->uintOr("mappedVariables"));
    entry.metrics.possibleMappings = metricsJson->uintOr("possibleMappings");
  }

  if (const json::Value *diagnosticsJson = value.find("diagnostics")) {
    for (const json::Value &diagJson : diagnosticsJson->items()) {
      std::optional<Diagnostic> diag = diagnosticFromJson(diagJson);
      if (!diag) {
        json::setFirstError(error, "cache entry holds a malformed diagnostic");
        return std::nullopt;
      }
      entry.diagnostics.push_back(std::move(*diag));
    }
  }

  const json::Value *irJson = value.find("ir");
  if (irJson == nullptr) {
    json::setFirstError(error, "cache entry is missing the mapping IR");
    return std::nullopt;
  }
  std::optional<ir::MappingIr> mappingIr = ir::MappingIr::fromJson(*irJson,
                                                                   error);
  if (!mappingIr)
    return std::nullopt;
  entry.ir = std::move(*mappingIr);
  if (entry.ir.fingerprint() != entry.irFingerprint) {
    json::setFirstError(error, "cache entry IR fails its integrity fingerprint");
    return std::nullopt;
  }
  return entry;
}

json::Value CacheStats::toJson() const {
  json::Value out = json::Value::object();
  out.set("lookups", lookups);
  out.set("hits", hits);
  out.set("misses", misses);
  out.set("stores", stores);
  out.set("invalidations", invalidations);
  out.set("summaryLookups", summaryLookups);
  out.set("summaryHits", summaryHits);
  out.set("summaryMisses", summaryMisses);
  out.set("summaryStores", summaryStores);
  return out;
}

PlanCache::PlanCache(std::string directory, CacheMode mode)
    : directory_(std::move(directory)), mode_(mode) {}

std::string PlanCache::entryPathFor(const CacheKey &key) const {
  return (fs::path(directory_) / "plans" / (key.id() + ".json")).string();
}

void PlanCache::loadIndexLocked() {
  if (indexLoaded_)
    return;
  indexLoaded_ = true;
  const auto text = readFile(fs::path(directory_) / "index.json");
  if (!text)
    return;
  const auto doc = json::Value::parse(*text);
  if (!doc || !doc->isObject())
    return;
  for (const auto &[file, id] : doc->members())
    if (id.kind() == json::Value::Kind::String)
      index_[file] = id.asString();
}

void PlanCache::mergeDiskIndexLocked() {
  // Another process sharing this directory may have stored or updated rows
  // since our load. Rows this process touched (ownedRows_) keep our value
  // — including deliberate erasures, which must not resurrect — and every
  // other row adopts the disk state, so concurrent processes never clobber
  // each other's updates.
  const auto text = readFile(fs::path(directory_) / "index.json");
  if (!text)
    return;
  const auto doc = json::Value::parse(*text);
  if (!doc || !doc->isObject())
    return;
  for (const auto &[rowKey, id] : doc->members())
    if (id.kind() == json::Value::Kind::String &&
        ownedRows_.count(rowKey) == 0)
      index_[rowKey] = id.asString();
}

void PlanCache::saveIndexLocked() {
  mergeDiskIndexLocked();
  json::Value doc = json::Value::object();
  for (const auto &[rowKey, id] : index_)
    doc.set(rowKey, id);
  if (writeFileAtomic(fs::path(directory_) / "index.json", doc.dump(true)))
    indexDirty_ = false;
}

void PlanCache::flushIndex() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (indexDirty_)
    saveIndexLocked();
}

PlanCache::~PlanCache() { flushIndex(); }

std::optional<CacheEntry> PlanCache::lookup(const CacheKey &key,
                                            const std::string &fileName) {
  if (!enabled())
    return std::nullopt;
  const std::string id = key.id();

  // File read, JSON parse, IR deserialization and fingerprint verification
  // touch no shared state — keep them outside the mutex so a warm batch's
  // lookups run concurrently instead of serializing on the lock.
  std::optional<CacheEntry> entry;
  if (const auto text = readFile(entryPathFor(key))) {
    if (const auto doc = json::Value::parse(*text))
      entry = CacheEntry::fromJson(*doc, key);
  }

  const std::string row = indexKeyFor(key, fileName);
  std::lock_guard<std::mutex> lock(mutex_);
  loadIndexLocked();
  ++stats_.lookups;
  if (entry) {
    ++stats_.hits;
    // Register this file+config against the entry it resolves to
    // (identical sources share one content-addressed entry), so every
    // combination currently served by an entry is visible in the index.
    if (writable()) {
      auto indexIt = index_.find(row);
      if (indexIt == index_.end() || indexIt->second != id) {
        index_[row] = id;
        ownedRows_.insert(row);
        indexDirty_ = true;
      }
    }
    return entry;
  }

  ++stats_.misses;
  // Stale detection: the index knows a different entry for this
  // file+config+tool row, so the file's content changed since the store.
  // Count the transition once and (read-write) drop the row — the re-plan
  // that follows this miss will store and re-index. The superseded entry
  // FILE stays on disk: content-addressed entries are immutable-valid, so
  // flipping the file back to earlier content (branch switches, A-B edits)
  // re-hits it, and identical-content twins or other configs sharing the
  // entry are never robbed of it.
  auto indexIt = index_.find(row);
  if (indexIt != index_.end() && indexIt->second != id) {
    if (countedStale_.insert({row, indexIt->second}).second)
      ++stats_.invalidations;
    if (writable()) {
      index_.erase(indexIt);
      ownedRows_.insert(row);
      indexDirty_ = true;
    }
  }
  return std::nullopt;
}

void PlanCache::store(const CacheKey &key, const CacheEntry &entry) {
  if (!writable())
    return;
  // The entry write touches no shared state (the path is content-addressed
  // and the rename atomic) — only stats and the index need the lock.
  if (!writeFileAtomic(entryPathFor(key), entry.toJson(key).dump(true)))
    return;
  std::lock_guard<std::mutex> lock(mutex_);
  loadIndexLocked();
  ++stats_.stores;
  if (!entry.fileName.empty()) {
    const std::string row = indexKeyFor(key, entry.fileName);
    index_[row] = key.id();
    ownedRows_.insert(row);
    indexDirty_ = true;
  }
}

std::string PlanCache::summaryPathFor(const CacheKey &key) const {
  return (fs::path(directory_) / "summaries" / (key.id() + ".json")).string();
}

std::optional<json::Value> PlanCache::lookupSummary(const CacheKey &key) {
  if (!enabled())
    return std::nullopt;
  // Like plan lookups, the file read and parse stay outside the mutex.
  std::optional<json::Value> payload;
  if (const auto text = readFile(summaryPathFor(key))) {
    if (auto doc = json::Value::parse(*text); doc && doc->isObject()) {
      const json::Value *keyJson = doc->find("key");
      CacheKey stored;
      if (keyJson != nullptr) {
        stored.sourceHash = keyJson->stringOr("sourceHash");
        stored.configHash = keyJson->stringOr("configHash");
        stored.toolVersion = keyJson->stringOr("toolVersion");
        stored.importsHash = keyJson->stringOr("importsHash");
      }
      if (stored == key) {
        if (const json::Value *payloadJson = doc->find("summary"))
          payload = *payloadJson;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.summaryLookups;
  if (payload)
    ++stats_.summaryHits;
  else
    ++stats_.summaryMisses;
  return payload;
}

void PlanCache::storeSummary(const CacheKey &key, const json::Value &payload) {
  if (!writable())
    return;
  json::Value doc = json::Value::object();
  json::Value keyJson = json::Value::object();
  keyJson.set("sourceHash", key.sourceHash);
  keyJson.set("configHash", key.configHash);
  keyJson.set("toolVersion", key.toolVersion);
  keyJson.set("importsHash", key.importsHash);
  doc.set("key", std::move(keyJson));
  doc.set("summary", payload);
  if (!writeFileAtomic(summaryPathFor(key), doc.dump(true)))
    return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.summaryStores;
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

} // namespace ompdart::cache
