// Content-addressed plan cache: the persistence layer that lets the tool
// behave like a service under repeated traffic instead of a one-shot
// compiler pass.
//
// A cache key fingerprints everything that determines planning output:
//   - the source buffer's content hash (not its path or mtime),
//   - the planning-relevant PipelineConfig fingerprint (ablation switches,
//     cost model, interprocedural pass cap — see planFingerprint()),
//   - the tool version (kToolVersion).
// An entry stores the serialized Mapping IR plus everything the plan stage
// produced besides it: complexity metrics and the diagnostics present at
// the end of planning. A Session that hits re-hydrates the IR straight into
// the emission backends and skips parse->cfg->interproc->plan entirely; a
// miss plans normally and (in read-write mode) stores the result.
//
// On-disk layout under the cache directory:
//   plans/<key-id>.json   one entry per content address
//   index-<NN>.json       lock-striped index shards: a (fileName,
//                         configHash, toolVersion) row lives in the shard
//                         its stable hash selects and maps to the latest
//                         key id for that combination (stale detection)
// The index is sharded (kIndexShards files, one mutex each) so heavy
// concurrent traffic — a plan server's worker pool, parallel batch
// sessions, multiple CLI processes — stripes its row updates across
// independent locks and rewrites 1/N of the index per flush instead of one
// monolithic index.json. Row-to-shard assignment uses the stable content
// hash, so every process agrees on the layout; a legacy single-file
// index.json is migrated shard-by-shard on first load (and ignored for a
// shard once a flush has written that shard's file, which then carries the
// migrated rows).
// Because entries are content-addressed, editing a source never corrupts a
// cache: the edit changes the key, the lookup misses, and the superseded
// entry for that file+config row is counted as an invalidation (the row is
// dropped in read-write mode; the entry file itself stays — entries are
// immutable-valid, so flipping content back re-hits it, and twins/other
// configs sharing the entry keep it). Config flips get their own rows, so
// A-B config traffic over one file keeps both entries warm. Writes go
// through a uniquely-named temp-file rename, so concurrent sessions — and
// separate CLI processes — sharing one cache never observe torn entries,
// and each shard merges other processes' rows on save instead of
// clobbering them.
//
// Long-lived processes (the plan server) additionally keep validated plan
// entries and module-summary documents memoized in memory, so warm traffic
// skips the disk read + JSON parse + fingerprint check entirely; memo hits
// still count as cache hits (plus the memoHits/summaryMemoHits counters).
// All statistics counters are atomics, so `stats()` is safe to call while
// requests are in flight on other threads.
#pragma once

#include "driver/report.hpp"
#include "mapping/ir.hpp"
#include "support/diagnostics.hpp"
#include "support/intern.hpp"
#include "support/json.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ompdart::cache {

/// Cache behavior: Off (never touch disk), Read (consume entries, never
/// write), ReadWrite (consume and populate).
enum class CacheMode { Off, Read, ReadWrite };

[[nodiscard]] const char *cacheModeName(CacheMode mode);
/// "off" | "read" | "read-write"; nullopt otherwise.
[[nodiscard]] std::optional<CacheMode>
cacheModeFromName(const std::string &name);

/// Everything that determines planning output, fingerprinted.
struct CacheKey {
  std::string sourceHash;  ///< content hash of the input buffer
  std::string configHash;  ///< planning-relevant config fingerprint
  std::string toolVersion; ///< kToolVersion of the producing binary
  /// Fingerprint of the cross-TU imports a Project run injected (empty for
  /// single-TU runs): editing one file re-plans only the TUs whose imported
  /// summaries or call facts actually changed.
  std::string importsHash;

  /// The content address: a stable hash over all components.
  [[nodiscard]] std::string id() const;

  [[nodiscard]] bool operator==(const CacheKey &other) const {
    return sourceHash == other.sourceHash &&
           configHash == other.configHash &&
           toolVersion == other.toolVersion &&
           importsHash == other.importsHash;
  }
};

/// One cached plan-stage result.
struct CacheEntry {
  std::string fileName; ///< diagnostics file name of the producing session
  ir::MappingIr ir;
  ComplexityMetrics metrics;
  /// All diagnostics present at the end of the plan stage (parse through
  /// plan), replayed on a hit so warm reports match cold ones. Entries with
  /// errors are never stored.
  std::vector<Diagnostic> diagnostics;
  /// Integrity check: ir.fingerprint() at store time; lookups recompute and
  /// reject mismatches (truncated or hand-edited entry files).
  std::string irFingerprint;

  [[nodiscard]] json::Value toJson(const CacheKey &key) const;
  /// Validates the document shape, that its key matches `expect`, and that
  /// the embedded IR re-hashes to `irFingerprint`.
  [[nodiscard]] static std::optional<CacheEntry>
  fromJson(const json::Value &value, const CacheKey &expect,
           std::string *error = nullptr);
};

/// Monotonic counters; `invalidations` counts lookups that found a
/// superseded entry for the same file (source/config/tool changed). The
/// `summary*` counters track the Project layer's per-TU module-summary
/// entries, which live beside the plans in the same cache directory. The
/// `memoHits`/`summaryMemoHits` counters are the subset of hits served from
/// the in-memory memo without touching disk. This is a plain snapshot
/// struct: `PlanCache::stats()` materializes it atomically-per-counter, so
/// it is safe to read while requests are in flight.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t memoHits = 0;
  std::uint64_t summaryLookups = 0;
  std::uint64_t summaryHits = 0;
  std::uint64_t summaryMisses = 0;
  std::uint64_t summaryStores = 0;
  std::uint64_t summaryMemoHits = 0;

  [[nodiscard]] json::Value toJson() const;
};

/// Thread-safe on-disk store. One instance may be shared across concurrent
/// Sessions (the BatchDriver and the plan server do); the index is lock-
/// striped across kIndexShards independent shards, statistics are atomic,
/// and entry writes are atomic renames.
class PlanCache {
public:
  /// Lock stripes / on-disk index shard files. Fixed (it names on-disk
  /// files shared across processes): every process sharing a cache
  /// directory must agree on the row-to-shard map.
  static constexpr unsigned kIndexShards = 16;

  PlanCache(std::string directory, CacheMode mode);
  /// Flushes the index (see flushIndex) before destruction.
  ~PlanCache();

  [[nodiscard]] bool enabled() const {
    return mode_ != CacheMode::Off && !directory_.empty();
  }
  [[nodiscard]] bool writable() const {
    return mode_ == CacheMode::ReadWrite && !directory_.empty();
  }
  [[nodiscard]] CacheMode mode() const { return mode_; }
  [[nodiscard]] const std::string &directory() const { return directory_; }

  /// Content-addressed lookup. `fileName` is only used for stale-entry
  /// detection: a miss whose file+config index row points at a superseded
  /// entry counts as an invalidation (and drops the stale row in
  /// read-write mode; the entry file itself is kept).
  [[nodiscard]] std::optional<CacheEntry>
  lookup(const CacheKey &key, const std::string &fileName);

  /// Persists an entry (no-op unless writable) and points the file index at
  /// it.
  void store(const CacheKey &key, const CacheEntry &entry);

  /// Content-addressed lookup of a per-TU module-summary document
  /// (`summaries/<key-id>.json`). The payload is an opaque JSON value the
  /// Project layer owns; a stored document whose embedded key mismatches
  /// the lookup is rejected like a corrupted plan entry.
  [[nodiscard]] std::optional<json::Value>
  lookupSummary(const CacheKey &key);

  /// Persists a module-summary document (no-op unless writable; the
  /// in-memory memo is populated in read mode too, keeping a long-lived
  /// process's summaries hot without touching disk).
  void storeSummary(const CacheKey &key, const json::Value &payload);

  /// `<directory>/summaries/<key-id>.json`.
  [[nodiscard]] std::string summaryPathFor(const CacheKey &key) const;

  /// Atomic snapshot of the counters; safe to call concurrently with
  /// lookups/stores on other threads.
  [[nodiscard]] CacheStats stats() const;

  /// Drops the in-memory plan/summary memos (disk entries are untouched).
  /// The server's `invalidate` request uses this to force re-validation
  /// against disk.
  void dropMemos();

  /// Persists pending index-row changes (entry files are always written
  /// immediately; the index is write-behind so a batch does not rewrite it
  /// once per job). Called by the destructor; safe to call any time.
  void flushIndex();

  /// `<directory>/plans/<key-id>.json`.
  [[nodiscard]] std::string entryPathFor(const CacheKey &key) const;

  /// `<directory>/index-<NN>.json` for shard `shard` (< kIndexShards).
  [[nodiscard]] std::string indexShardPath(unsigned shard) const;

  /// Stable row-to-shard assignment (same for every process sharing the
  /// directory). Exposed for tests that pin the on-disk layout.
  [[nodiscard]] static unsigned shardOf(const std::string &row);

private:
  /// One lock stripe of the index: its rows, the rows this process changed
  /// (which disk merges must not overwrite), and write-behind state.
  struct IndexShard {
    std::mutex mutex;
    std::map<std::string, std::string> rows;
    /// Rows this process changed (stored, re-registered, or erased): the
    /// disk merge must not overwrite these with other processes' values,
    /// while every untouched row adopts the disk state.
    std::set<std::string> ownedRows;
    /// (row, stale id) pairs already counted as invalidations, so a
    /// read-only cache (which cannot erase the stale row) reports one
    /// invalidation per transition instead of one per lookup.
    std::set<std::pair<std::string, std::string>> countedStale;
    bool loaded = false;
    bool dirty = false;
  };

  void loadShardLocked(unsigned shard);
  /// Merges rows other processes wrote to this shard since our load — any
  /// row this process did not touch itself adopts the disk value — then
  /// persists the shard file.
  void saveShardLocked(unsigned shard);
  void mergeDiskShardLocked(unsigned shard);

  void memoizeEntry(SymbolId id, const CacheEntry &entry);
  void memoizeSummary(SymbolId id, const json::Value &payload);

  std::string directory_;
  CacheMode mode_;
  std::array<IndexShard, kIndexShards> shards_;

  /// Every counter is independently atomic (relaxed: they are statistics,
  /// not synchronization), so readers never block writers.
  struct Counters {
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> invalidations{0};
    std::atomic<std::uint64_t> memoHits{0};
    std::atomic<std::uint64_t> summaryLookups{0};
    std::atomic<std::uint64_t> summaryHits{0};
    std::atomic<std::uint64_t> summaryMisses{0};
    std::atomic<std::uint64_t> summaryStores{0};
    std::atomic<std::uint64_t> summaryMemoHits{0};
  };
  mutable Counters counters_;

  /// In-memory memos keyed by the *interned* CacheKey::id(), so the warm
  /// path hashes the content address once (at interning) and probes both
  /// memos with integer keys. Entries are immutable by content address, so
  /// a memoized value never goes stale; the caps bound a long-lived
  /// server's footprint (inserts are skipped once full, and the interner
  /// rows behind the ids are the same size as the index rows the cache
  /// already keeps in memory).
  std::mutex memoMutex_;
  std::unordered_map<SymbolId, CacheEntry> entryMemo_;
  std::unordered_map<SymbolId, json::Value> summaryMemo_;
};

} // namespace ompdart::cache
