// Content-addressed plan cache: the persistence layer that lets the tool
// behave like a service under repeated traffic instead of a one-shot
// compiler pass.
//
// A cache key fingerprints everything that determines planning output:
//   - the source buffer's content hash (not its path or mtime),
//   - the planning-relevant PipelineConfig fingerprint (ablation switches,
//     cost model, interprocedural pass cap — see planFingerprint()),
//   - the tool version (kToolVersion).
// An entry stores the serialized Mapping IR plus everything the plan stage
// produced besides it: complexity metrics and the diagnostics present at
// the end of planning. A Session that hits re-hydrates the IR straight into
// the emission backends and skips parse->cfg->interproc->plan entirely; a
// miss plans normally and (in read-write mode) stores the result.
//
// On-disk layout under the cache directory:
//   plans/<key-id>.json   one entry per content address
//   index.json            (fileName, configHash, toolVersion) row -> latest
//                         key id, for stale detection
// Because entries are content-addressed, editing a source never corrupts a
// cache: the edit changes the key, the lookup misses, and the superseded
// entry for that file+config row is counted as an invalidation (the row is
// dropped in read-write mode; the entry file itself stays — entries are
// immutable-valid, so flipping content back re-hits it, and twins/other
// configs sharing the entry keep it). Config flips get their own rows, so
// A-B config traffic over one file keeps both entries warm. Writes go
// through a uniquely-named temp-file rename, so concurrent sessions — and
// separate CLI processes — sharing one cache never observe torn entries,
// and the index merges other processes' rows on save instead of clobbering
// them.
#pragma once

#include "driver/report.hpp"
#include "mapping/ir.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace ompdart::cache {

/// Cache behavior: Off (never touch disk), Read (consume entries, never
/// write), ReadWrite (consume and populate).
enum class CacheMode { Off, Read, ReadWrite };

[[nodiscard]] const char *cacheModeName(CacheMode mode);
/// "off" | "read" | "read-write"; nullopt otherwise.
[[nodiscard]] std::optional<CacheMode>
cacheModeFromName(const std::string &name);

/// Everything that determines planning output, fingerprinted.
struct CacheKey {
  std::string sourceHash;  ///< content hash of the input buffer
  std::string configHash;  ///< planning-relevant config fingerprint
  std::string toolVersion; ///< kToolVersion of the producing binary
  /// Fingerprint of the cross-TU imports a Project run injected (empty for
  /// single-TU runs): editing one file re-plans only the TUs whose imported
  /// summaries or call facts actually changed.
  std::string importsHash;

  /// The content address: a stable hash over all components.
  [[nodiscard]] std::string id() const;

  [[nodiscard]] bool operator==(const CacheKey &other) const {
    return sourceHash == other.sourceHash &&
           configHash == other.configHash &&
           toolVersion == other.toolVersion &&
           importsHash == other.importsHash;
  }
};

/// One cached plan-stage result.
struct CacheEntry {
  std::string fileName; ///< diagnostics file name of the producing session
  ir::MappingIr ir;
  ComplexityMetrics metrics;
  /// All diagnostics present at the end of the plan stage (parse through
  /// plan), replayed on a hit so warm reports match cold ones. Entries with
  /// errors are never stored.
  std::vector<Diagnostic> diagnostics;
  /// Integrity check: ir.fingerprint() at store time; lookups recompute and
  /// reject mismatches (truncated or hand-edited entry files).
  std::string irFingerprint;

  [[nodiscard]] json::Value toJson(const CacheKey &key) const;
  /// Validates the document shape, that its key matches `expect`, and that
  /// the embedded IR re-hashes to `irFingerprint`.
  [[nodiscard]] static std::optional<CacheEntry>
  fromJson(const json::Value &value, const CacheKey &expect,
           std::string *error = nullptr);
};

/// Monotonic counters; `invalidations` counts lookups that found a
/// superseded entry for the same file (source/config/tool changed). The
/// `summary*` counters track the Project layer's per-TU module-summary
/// entries, which live beside the plans in the same cache directory.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t summaryLookups = 0;
  std::uint64_t summaryHits = 0;
  std::uint64_t summaryMisses = 0;
  std::uint64_t summaryStores = 0;

  [[nodiscard]] json::Value toJson() const;
};

/// Thread-safe on-disk store. One instance may be shared across concurrent
/// Sessions (the BatchDriver does); all state is guarded by one mutex and
/// entry writes are atomic renames.
class PlanCache {
public:
  PlanCache(std::string directory, CacheMode mode);
  /// Flushes the index (see flushIndex) before destruction.
  ~PlanCache();

  [[nodiscard]] bool enabled() const {
    return mode_ != CacheMode::Off && !directory_.empty();
  }
  [[nodiscard]] bool writable() const {
    return mode_ == CacheMode::ReadWrite && !directory_.empty();
  }
  [[nodiscard]] CacheMode mode() const { return mode_; }
  [[nodiscard]] const std::string &directory() const { return directory_; }

  /// Content-addressed lookup. `fileName` is only used for stale-entry
  /// detection: a miss whose file+config index row points at a superseded
  /// entry counts as an invalidation (and drops the stale row in
  /// read-write mode; the entry file itself is kept).
  [[nodiscard]] std::optional<CacheEntry>
  lookup(const CacheKey &key, const std::string &fileName);

  /// Persists an entry (no-op unless writable) and points the file index at
  /// it.
  void store(const CacheKey &key, const CacheEntry &entry);

  /// Content-addressed lookup of a per-TU module-summary document
  /// (`summaries/<key-id>.json`). The payload is an opaque JSON value the
  /// Project layer owns; a stored document whose embedded key mismatches
  /// the lookup is rejected like a corrupted plan entry.
  [[nodiscard]] std::optional<json::Value>
  lookupSummary(const CacheKey &key);

  /// Persists a module-summary document (no-op unless writable).
  void storeSummary(const CacheKey &key, const json::Value &payload);

  /// `<directory>/summaries/<key-id>.json`.
  [[nodiscard]] std::string summaryPathFor(const CacheKey &key) const;

  [[nodiscard]] CacheStats stats() const;

  /// Persists pending index-row changes (entry files are always written
  /// immediately; the index is write-behind so a batch does not rewrite it
  /// once per job). Called by the destructor; safe to call any time.
  void flushIndex();

  /// `<directory>/plans/<key-id>.json`.
  [[nodiscard]] std::string entryPathFor(const CacheKey &key) const;

private:
  void loadIndexLocked();
  /// Merges rows other processes wrote since our load — any row this
  /// process did not touch itself adopts the disk value (including
  /// updates to rows we merely read) — then persists. Keeps concurrent
  /// CLI processes sharing one cache directory from clobbering each
  /// other's rows.
  void saveIndexLocked();
  void mergeDiskIndexLocked();

  std::string directory_;
  CacheMode mode_;
  mutable std::mutex mutex_;
  CacheStats stats_;
  /// (fileName, configHash, toolVersion) row -> entry id of the latest
  /// store for that combination.
  std::map<std::string, std::string> index_;
  bool indexLoaded_ = false;
  /// Rows this process changed (stored, re-registered, or erased): the
  /// disk merge must not overwrite these with other processes' values,
  /// while every untouched row adopts the disk state.
  std::set<std::string> ownedRows_;
  /// Unflushed index changes pending (write-behind).
  bool indexDirty_ = false;
  /// (row, stale id) pairs already counted as invalidations, so a
  /// read-only cache (which cannot erase the stale row) reports one
  /// invalidation per transition instead of one per lookup.
  std::set<std::pair<std::string, std::string>> countedStale_;
};

} // namespace ompdart::cache
