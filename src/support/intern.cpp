#include "support/intern.hpp"

#include <cassert>
#include <mutex>

namespace ompdart {

SymbolTable &SymbolTable::global() {
  static SymbolTable table;
  return table;
}

SymbolId SymbolTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = index_.find(name);
    if (it != index_.end())
      return it->second;
  }
  std::unique_lock lock(mutex_);
  // Re-check: another thread may have interned it between the locks.
  const auto it = index_.find(name);
  if (it != index_.end())
    return it->second;
  const auto id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

const std::string &SymbolTable::name(SymbolId id) const {
  std::shared_lock lock(mutex_);
  assert(id < names_.size() && "unknown SymbolId");
  return names_[id];
}

std::size_t SymbolTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

} // namespace ompdart
