// Global-per-process symbol interner.
//
// Cross-TU analysis artifacts (module summaries, the link fixed point, the
// execution-count call graph, cache memo keys) are name-keyed: at project
// scale the same function and global names are hashed and compared as
// std::strings millions of times. The interner maps each distinct name to a
// dense u32 `SymbolId` once; everything downstream then compares and hashes
// ints. Serialized artifacts (PortableSummary JSON, cache entries) stay
// name-keyed on disk — names are interned on load and spelled back out on
// save, so the on-disk format is unchanged.
//
// Semantics:
//   - One table per process (`SymbolTable::global()`), thread-safe: lookups
//     take a shared lock, first-time interning takes an exclusive lock.
//     Concurrent server workers may intern freely.
//   - Ids are stable for the lifetime of the process (append-only table)
//     and start at 0 in interning order. They are NOT stable across
//     processes — never serialize a SymbolId; spell the name.
//   - `symbolName` returns a reference valid for the process lifetime
//     (names are never freed).
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ompdart {

/// Dense process-lifetime id of an interned name.
using SymbolId = std::uint32_t;

class SymbolTable {
public:
  /// The process-wide table.
  [[nodiscard]] static SymbolTable &global();

  SymbolTable() = default;
  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Returns the id for `name`, interning it on first sight. Thread-safe.
  [[nodiscard]] SymbolId intern(std::string_view name);

  /// Spelling of an interned id; the reference lives as long as the table.
  [[nodiscard]] const std::string &name(SymbolId id) const;

  [[nodiscard]] std::size_t size() const;

private:
  mutable std::shared_mutex mutex_;
  /// Keys are views into names_ (std::deque never moves elements).
  std::unordered_map<std::string_view, SymbolId> index_;
  std::deque<std::string> names_;
};

/// Shorthands over the global table.
[[nodiscard]] inline SymbolId internSymbol(std::string_view name) {
  return SymbolTable::global().intern(name);
}
[[nodiscard]] inline const std::string &symbolName(SymbolId id) {
  return SymbolTable::global().name(id);
}

} // namespace ompdart
