// Stable content hashing for cache keys and fingerprints.
//
// The plan cache addresses entries by content (source text, configuration
// fingerprint, tool version), so the hash must be deterministic across
// processes, platforms and library versions — std::hash guarantees none of
// that. This is a 128-bit FNV-1a variant (two independent 64-bit lanes with
// distinct offset bases) rendered as 32 lowercase hex characters: cheap,
// dependency-free, and collision-resistant enough for a content-addressed
// store whose worst case is a stale plan that fails validation downstream.
// NOT cryptographic — do not use where an adversary controls the input and
// a collision has security consequences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ompdart::hash {

/// Incremental 128-bit stable hasher (two FNV-1a lanes).
class Hasher {
public:
  Hasher() = default;

  Hasher &update(const void *data, std::size_t size);
  Hasher &update(const std::string &text) {
    return update(text.data(), text.size());
  }
  /// Hashes the value's little-endian byte representation.
  Hasher &update(std::uint64_t value);

  /// 32 lowercase hex characters; does not reset the hasher state.
  [[nodiscard]] std::string hex() const;

  [[nodiscard]] std::uint64_t low() const { return lo_; }
  [[nodiscard]] std::uint64_t high() const { return hi_; }

private:
  // FNV-1a 64-bit offset basis / prime; the second lane perturbs the basis
  // so the lanes decorrelate.
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;
  static constexpr std::uint64_t kLaneSplit = 0x9e3779b97f4a7c15ull;

  std::uint64_t lo_ = kOffset;
  std::uint64_t hi_ = kOffset ^ kLaneSplit;
};

/// One-shot convenience: 32-hex-char stable fingerprint of a string.
[[nodiscard]] std::string fingerprint(const std::string &text);

} // namespace ompdart::hash
