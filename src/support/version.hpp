// Tool version identity. Participates in plan-cache keys: any release that
// can change planning output must bump this so stale cached plans from
// older binaries are never replayed.
#pragma once

namespace ompdart {

inline constexpr const char *kToolVersion = "0.4.0";

} // namespace ompdart
