// Owns the text of one translation unit and answers location queries
// (offset -> line/column, line extraction, indentation). The rewriter and
// diagnostics both consult it; there is exactly one SourceManager per tool
// invocation since OMPDart analyzes a single translation unit at a time.
#pragma once

#include "support/source_location.hpp"

#include <string>
#include <string_view>
#include <vector>

namespace ompdart {

class SourceManager {
public:
  SourceManager() = default;
  SourceManager(std::string fileName, std::string text);

  [[nodiscard]] const std::string &fileName() const { return fileName_; }
  [[nodiscard]] const std::string &text() const { return text_; }
  [[nodiscard]] std::size_t size() const { return text_.size(); }

  /// Builds a full SourceLocation (line/column) for a byte offset.
  [[nodiscard]] SourceLocation locationFor(std::size_t offset) const;

  /// Like `locationFor`, but starts the line search at `hintLine` (1-based)
  /// and updates it — amortized O(1) for monotonically increasing offsets
  /// (the lexer's access pattern). Offsets before the hinted line fall back
  /// to the binary search.
  [[nodiscard]] SourceLocation locationWithHint(std::size_t offset,
                                                unsigned &hintLine) const;

  /// 1-based line number containing `offset`.
  [[nodiscard]] unsigned lineNumber(std::size_t offset) const;

  /// The text of the (1-based) line, without the trailing newline.
  [[nodiscard]] std::string_view lineText(unsigned line) const;

  /// Byte offset of the first character of the (1-based) line.
  [[nodiscard]] std::size_t lineStartOffset(unsigned line) const;

  /// Offset just past the last character of the line (the newline position,
  /// or end of buffer for the final line).
  [[nodiscard]] std::size_t lineEndOffset(unsigned line) const;

  /// Leading whitespace of the line containing `offset`; used by the
  /// rewriter to indent inserted directives like the surrounding code.
  [[nodiscard]] std::string indentationAt(std::size_t offset) const;

  [[nodiscard]] unsigned lineCount() const {
    return static_cast<unsigned>(lineOffsets_.size());
  }

private:
  std::string fileName_;
  std::string text_;
  /// lineOffsets_[i] = byte offset where line i+1 starts.
  std::vector<std::size_t> lineOffsets_;
};

/// Forward-moving location queries: remembers the last line so a run of
/// monotonically increasing offsets (one lexer pass) costs amortized O(1)
/// instead of a binary search per token.
class LocationCursor {
public:
  explicit LocationCursor(const SourceManager &sourceManager)
      : sourceManager_(&sourceManager) {}

  [[nodiscard]] SourceLocation at(std::size_t offset) {
    return sourceManager_->locationWithHint(offset, line_);
  }

private:
  const SourceManager *sourceManager_;
  unsigned line_ = 1;
};

} // namespace ompdart
