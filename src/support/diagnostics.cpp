#include "support/diagnostics.hpp"

#include <algorithm>
#include <ostream>

namespace ompdart {

const char *severityName(Severity severity) {
  switch (severity) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

std::optional<Severity> severityFromName(const std::string &name) {
  if (name == "note")
    return Severity::Note;
  if (name == "warning")
    return Severity::Warning;
  if (name == "error")
    return Severity::Error;
  return std::nullopt;
}

json::Value diagnosticToJson(const Diagnostic &diagnostic) {
  json::Value out = json::Value::object();
  out.set("severity", severityName(diagnostic.severity));
  json::Value location = json::Value::object();
  location.set("offset", static_cast<std::int64_t>(diagnostic.location.offset));
  location.set("line", diagnostic.location.line);
  location.set("column", diagnostic.location.column);
  out.set("location", std::move(location));
  out.set("message", diagnostic.message);
  return out;
}

std::optional<Diagnostic> diagnosticFromJson(const json::Value &value) {
  const std::optional<Severity> severity =
      severityFromName(value.stringOr("severity"));
  if (!severity)
    return std::nullopt;
  Diagnostic diag;
  diag.severity = *severity;
  if (const json::Value *location = value.find("location")) {
    diag.location.offset =
        static_cast<std::size_t>(location->intOr("offset", -1));
    diag.location.line = static_cast<unsigned>(location->uintOr("line"));
    diag.location.column = static_cast<unsigned>(location->uintOr("column"));
  }
  diag.message = value.stringOr("message");
  return diag;
}

std::string Diagnostic::str() const {
  std::string out;
  if (location.isValid()) {
    out += location.str();
    out += ": ";
  }
  out += severityName(severity);
  out += ": ";
  out += message;
  return out;
}

bool diagnosticBefore(const Diagnostic &a, const Diagnostic &b) {
  // SourceLocation::kInvalid is the max offset, so invalid locations
  // naturally sort last.
  if (a.location.offset != b.location.offset)
    return a.location.offset < b.location.offset;
  if (a.severity != b.severity)
    return static_cast<int>(a.severity) > static_cast<int>(b.severity);
  return a.message < b.message;
}

void StreamSink::handle(const Diagnostic &diagnostic) {
  if (!fileName_.empty())
    out_ << fileName_ << ":";
  out_ << diagnostic.str() << "\n";
}

void DiagnosticEngine::report(Severity severity, SourceLocation loc,
                              std::string message) {
  if (severity == Severity::Error)
    ++errorCount_;
  diagnostics_.push_back(Diagnostic{severity, loc, std::move(message)});
  if (sink_ != nullptr)
    sink_->handle(diagnostics_.back());
}

std::vector<Diagnostic> DiagnosticEngine::sortedDiagnostics() const {
  std::vector<Diagnostic> sorted = diagnostics_;
  std::stable_sort(sorted.begin(), sorted.end(), diagnosticBefore);
  return sorted;
}

std::string DiagnosticEngine::summary() const {
  std::string out;
  for (const Diagnostic &diag : diagnostics_) {
    out += diag.str();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  errorCount_ = 0;
}

} // namespace ompdart
