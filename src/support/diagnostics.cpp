#include "support/diagnostics.hpp"

namespace ompdart {

const char *severityName(Severity severity) {
  switch (severity) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string out;
  if (location.isValid()) {
    out += location.str();
    out += ": ";
  }
  out += severityName(severity);
  out += ": ";
  out += message;
  return out;
}

void DiagnosticEngine::report(Severity severity, SourceLocation loc,
                              std::string message) {
  if (severity == Severity::Error)
    ++errorCount_;
  diagnostics_.push_back(Diagnostic{severity, loc, std::move(message)});
}

std::string DiagnosticEngine::summary() const {
  std::string out;
  for (const Diagnostic &diag : diagnostics_) {
    out += diag.str();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  errorCount_ = 0;
}

} // namespace ompdart
