#include "support/source_manager.hpp"

#include <algorithm>
#include <cassert>

namespace ompdart {

SourceManager::SourceManager(std::string fileName, std::string text)
    : fileName_(std::move(fileName)), text_(std::move(text)) {
  lineOffsets_.push_back(0);
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n')
      lineOffsets_.push_back(i + 1);
  }
}

SourceLocation SourceManager::locationFor(std::size_t offset) const {
  if (offset > text_.size())
    offset = text_.size();
  const unsigned line = lineNumber(offset);
  SourceLocation loc;
  loc.offset = offset;
  loc.line = line;
  loc.column = static_cast<unsigned>(offset - lineOffsets_[line - 1]) + 1;
  return loc;
}

SourceLocation SourceManager::locationWithHint(std::size_t offset,
                                               unsigned &hintLine) const {
  if (offset > text_.size())
    offset = text_.size();
  if (hintLine < 1 || hintLine > lineOffsets_.size() ||
      lineOffsets_[hintLine - 1] > offset) {
    hintLine = lineNumber(offset);
  } else {
    while (hintLine < lineOffsets_.size() && lineOffsets_[hintLine] <= offset)
      ++hintLine;
  }
  SourceLocation loc;
  loc.offset = offset;
  loc.line = hintLine;
  loc.column = static_cast<unsigned>(offset - lineOffsets_[hintLine - 1]) + 1;
  return loc;
}

unsigned SourceManager::lineNumber(std::size_t offset) const {
  auto it = std::upper_bound(lineOffsets_.begin(), lineOffsets_.end(), offset);
  return static_cast<unsigned>(it - lineOffsets_.begin());
}

std::string_view SourceManager::lineText(unsigned line) const {
  assert(line >= 1 && line <= lineOffsets_.size());
  const std::size_t begin = lineOffsets_[line - 1];
  const std::size_t end = lineEndOffset(line);
  return std::string_view(text_).substr(begin, end - begin);
}

std::size_t SourceManager::lineStartOffset(unsigned line) const {
  assert(line >= 1 && line <= lineOffsets_.size());
  return lineOffsets_[line - 1];
}

std::size_t SourceManager::lineEndOffset(unsigned line) const {
  assert(line >= 1 && line <= lineOffsets_.size());
  if (line < lineOffsets_.size())
    return lineOffsets_[line] - 1; // position of the '\n'
  return text_.size();
}

std::string SourceManager::indentationAt(std::size_t offset) const {
  const unsigned line = lineNumber(offset);
  const std::string_view text = lineText(line);
  std::string indent;
  for (const char c : text) {
    if (c == ' ' || c == '\t')
      indent.push_back(c);
    else
      break;
  }
  return indent;
}

} // namespace ompdart
