// Diagnostics engine: collects errors/warnings/notes with source locations.
// The tool reports analysis obstacles through this channel (e.g. the paper's
// "declaration must precede the target data region" error) instead of
// aborting, so callers can decide how to proceed.
#pragma once

#include "support/source_location.hpp"

#include <string>
#include <vector>

namespace ompdart {

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char *severityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLocation location;
  std::string message;

  /// "12:3: error: ..." rendering used in test expectations and CLI output.
  [[nodiscard]] std::string str() const;
};

class DiagnosticEngine {
public:
  void report(Severity severity, SourceLocation loc, std::string message);

  void error(SourceLocation loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLocation loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLocation loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  [[nodiscard]] const std::vector<Diagnostic> &diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
  [[nodiscard]] unsigned errorCount() const { return errorCount_; }

  /// All diagnostics joined by newlines; convenient for error messages.
  [[nodiscard]] std::string summary() const;

  void clear();

private:
  std::vector<Diagnostic> diagnostics_;
  unsigned errorCount_ = 0;
};

} // namespace ompdart
