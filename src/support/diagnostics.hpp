// Diagnostics engine: collects errors/warnings/notes with source locations.
// The tool reports analysis obstacles through this channel (e.g. the paper's
// "declaration must precede the target data region" error) instead of
// aborting, so callers can decide how to proceed.
//
// Emission is pluggable: the engine always collects into a vector (the
// default sink behavior every API consumer relies on) and additionally
// forwards each diagnostic to an attached DiagnosticSink — the CLI attaches
// a stderr pretty-printer, batch drivers attach per-session collectors.
// `sortedDiagnostics()` gives a deterministic source-location order so
// concurrent batch runs produce stable output.
#pragma once

#include "support/json.hpp"
#include "support/source_location.hpp"

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ompdart {

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char *severityName(Severity severity);

/// Inverse of `severityName`; nullopt for unknown spellings.
[[nodiscard]] std::optional<Severity>
severityFromName(const std::string &name);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLocation location;
  std::string message;

  /// "12:3: error: ..." rendering used in test expectations and CLI output.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] bool operator==(const Diagnostic &other) const {
    return severity == other.severity && location == other.location &&
           message == other.message;
  }
};

/// Deterministic order: by source location (invalid locations last), then
/// severity (errors first), then message text.
[[nodiscard]] bool diagnosticBefore(const Diagnostic &a, const Diagnostic &b);

/// JSON round trip shared by reports and the plan cache (one diagnostic
/// schema everywhere).
[[nodiscard]] json::Value diagnosticToJson(const Diagnostic &diagnostic);
[[nodiscard]] std::optional<Diagnostic>
diagnosticFromJson(const json::Value &value);

/// Receives each diagnostic as it is reported.
class DiagnosticSink {
public:
  virtual ~DiagnosticSink() = default;
  virtual void handle(const Diagnostic &diagnostic) = 0;
};

/// Appends into a caller-owned vector (batch drivers aggregating across
/// sessions).
class CollectingSink : public DiagnosticSink {
public:
  explicit CollectingSink(std::vector<Diagnostic> &out) : out_(out) {}
  void handle(const Diagnostic &diagnostic) override {
    out_.push_back(diagnostic);
  }

private:
  std::vector<Diagnostic> &out_;
};

/// Pretty-prints "file:line:col: severity: message" lines to a stream; the
/// CLI attaches one over stderr.
class StreamSink : public DiagnosticSink {
public:
  explicit StreamSink(std::ostream &out, std::string fileName = "")
      : out_(out), fileName_(std::move(fileName)) {}
  void handle(const Diagnostic &diagnostic) override;

private:
  std::ostream &out_;
  std::string fileName_;
};

class DiagnosticEngine {
public:
  void report(Severity severity, SourceLocation loc, std::string message);

  void error(SourceLocation loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLocation loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLocation loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  /// Attaches an additional (non-owning) sink; diagnostics reported from now
  /// on are forwarded to it as well as collected. Null detaches.
  void setSink(DiagnosticSink *sink) { sink_ = sink; }
  [[nodiscard]] DiagnosticSink *sink() const { return sink_; }

  /// Diagnostics in emission order.
  [[nodiscard]] const std::vector<Diagnostic> &diagnostics() const {
    return diagnostics_;
  }
  /// Diagnostics in deterministic source-location order (see
  /// `diagnosticBefore`); the order batch runs and reports use.
  [[nodiscard]] std::vector<Diagnostic> sortedDiagnostics() const;

  [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
  [[nodiscard]] unsigned errorCount() const { return errorCount_; }

  /// All diagnostics joined by newlines; convenient for error messages.
  [[nodiscard]] std::string summary() const;

  void clear();

private:
  std::vector<Diagnostic> diagnostics_;
  unsigned errorCount_ = 0;
  DiagnosticSink *sink_ = nullptr;
};

} // namespace ompdart
