#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ompdart::json {

void Value::push(Value value) {
  if (kind_ == Kind::Null)
    kind_ = Kind::Array;
  items_.push_back(std::move(value));
}

void Value::set(const std::string &key, Value value) {
  if (kind_ == Kind::Null)
    kind_ = Kind::Object;
  for (auto &member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const Value *Value::find(const std::string &key) const {
  if (kind_ != Kind::Object)
    return nullptr;
  for (const auto &member : members_)
    if (member.first == key)
      return &member.second;
  return nullptr;
}

std::string Value::stringOr(const std::string &key,
                            const std::string &fallback) const {
  const Value *value = find(key);
  return value != nullptr && value->kind_ == Kind::String ? value->string_
                                                          : fallback;
}

std::int64_t Value::intOr(const std::string &key, std::int64_t fallback) const {
  const Value *value = find(key);
  return value != nullptr ? value->asInt(fallback) : fallback;
}

std::uint64_t Value::uintOr(const std::string &key,
                            std::uint64_t fallback) const {
  const Value *value = find(key);
  return value != nullptr ? value->asUint(fallback) : fallback;
}

double Value::doubleOr(const std::string &key, double fallback) const {
  const Value *value = find(key);
  return value != nullptr ? value->asDouble(fallback) : fallback;
}

bool Value::boolOr(const std::string &key, bool fallback) const {
  const Value *value = find(key);
  return value != nullptr ? value->asBool(fallback) : fallback;
}

bool Value::operator==(const Value &other) const {
  if (kind_ != other.kind_)
    return false;
  switch (kind_) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return bool_ == other.bool_;
  case Kind::Int:
    return int_ == other.int_;
  case Kind::Double:
    return double_ == other.double_;
  case Kind::String:
    return string_ == other.string_;
  case Kind::Array:
    return items_ == other.items_;
  case Kind::Object:
    return members_ == other.members_;
  }
  return false;
}

std::string escape(const std::string &text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\r':
      out += "\\r";
      break;
    case '\t':
      out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof buffer, "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buffer;
      } else {
        out += c;
      }
    }
  }
  return out;
}

namespace {

void appendIndent(std::string &out, unsigned depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

std::string formatDouble(double value) {
  if (std::isnan(value) || std::isinf(value))
    return "null"; // JSON has no NaN/Inf; timings should never produce them.
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // Ensure the token re-parses as a double, not an integer, so the value
  // kind survives a round trip.
  std::string out = buffer;
  if (out.find_first_of(".eE") == std::string::npos)
    out += ".0";
  return out;
}

} // namespace

void Value::dumpTo(std::string &out, bool pretty, unsigned depth) const {
  switch (kind_) {
  case Kind::Null:
    out += "null";
    return;
  case Kind::Bool:
    out += bool_ ? "true" : "false";
    return;
  case Kind::Int:
    out += std::to_string(int_);
    return;
  case Kind::Double:
    out += formatDouble(double_);
    return;
  case Kind::String:
    out += '"';
    out += escape(string_);
    out += '"';
    return;
  case Kind::Array: {
    if (items_.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Value &item : items_) {
      if (!first)
        out += ',';
      first = false;
      if (pretty) {
        out += '\n';
        appendIndent(out, depth + 1);
      }
      item.dumpTo(out, pretty, depth + 1);
    }
    if (pretty) {
      out += '\n';
      appendIndent(out, depth);
    }
    out += ']';
    return;
  }
  case Kind::Object: {
    if (members_.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto &member : members_) {
      if (!first)
        out += ',';
      first = false;
      if (pretty) {
        out += '\n';
        appendIndent(out, depth + 1);
      }
      out += '"';
      out += escape(member.first);
      out += "\":";
      if (pretty)
        out += ' ';
      member.second.dumpTo(out, pretty, depth + 1);
    }
    if (pretty) {
      out += '\n';
      appendIndent(out, depth);
    }
    out += '}';
    return;
  }
  }
}

std::string Value::dump(bool pretty) const {
  std::string out;
  dumpTo(out, pretty, 0);
  if (pretty)
    out += '\n';
  return out;
}

namespace {

class ParseCursor {
public:
  ParseCursor(const std::string &text, std::string *error)
      : text_(text), error_(error) {}

  std::optional<Value> parseDocument() {
    std::optional<Value> value = parseValue();
    if (!value)
      return std::nullopt;
    skipWhitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return value;
  }

private:
  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }

  void fail(const std::string &message) {
    if (error_ == nullptr || !error_->empty())
      return;
    unsigned line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    *error_ =
        std::to_string(line) + ":" + std::to_string(column) + ": " + message;
  }

  bool consumeLiteral(const char *literal) {
    std::size_t length = 0;
    while (literal[length] != '\0')
      ++length;
    if (text_.compare(pos_, length, literal) != 0) {
      fail(std::string("expected '") + literal + "'");
      return false;
    }
    pos_ += length;
    return true;
  }

  std::optional<Value> parseValue() {
    skipWhitespace();
    if (atEnd()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    switch (c) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"': {
      std::optional<std::string> str = parseString();
      if (!str)
        return std::nullopt;
      return Value(std::move(*str));
    }
    case 't':
      if (!consumeLiteral("true"))
        return std::nullopt;
      return Value(true);
    case 'f':
      if (!consumeLiteral("false"))
        return std::nullopt;
      return Value(false);
    case 'n':
      if (!consumeLiteral("null"))
        return std::nullopt;
      return Value();
    default:
      return parseNumber();
    }
  }

  std::optional<Value> parseObject() {
    ++pos_; // '{'
    Value object = Value::object();
    skipWhitespace();
    if (!atEnd() && text_[pos_] == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skipWhitespace();
      if (atEnd() || text_[pos_] != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      std::optional<std::string> key = parseString();
      if (!key)
        return std::nullopt;
      skipWhitespace();
      if (atEnd() || text_[pos_] != ':') {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      ++pos_;
      std::optional<Value> value = parseValue();
      if (!value)
        return std::nullopt;
      object.set(*key, std::move(*value));
      skipWhitespace();
      if (!atEnd() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!atEnd() && text_[pos_] == '}') {
        ++pos_;
        return object;
      }
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Value> parseArray() {
    ++pos_; // '['
    Value array = Value::array();
    skipWhitespace();
    if (!atEnd() && text_[pos_] == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      std::optional<Value> value = parseValue();
      if (!value)
        return std::nullopt;
      array.push(std::move(*value));
      skipWhitespace();
      if (!atEnd() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!atEnd() && text_[pos_] == ']') {
        ++pos_;
        return array;
      }
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<std::string> parseString() {
    ++pos_; // '"'
    std::string out;
    while (true) {
      if (atEnd()) {
        fail("unterminated string");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == '"')
        return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (atEnd()) {
        fail("unterminated escape sequence");
        return std::nullopt;
      }
      const char esc = text_[pos_++];
      switch (esc) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (pos_ + 4 > text_.size()) {
          fail("truncated \\u escape");
          return std::nullopt;
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9')
            code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<unsigned>(h - 'A' + 10);
          else {
            fail("invalid \\u escape");
            return std::nullopt;
          }
        }
        // UTF-8 encode the BMP code point (reports only ever emit ASCII
        // control escapes, but accept the full range on input).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        fail("invalid escape character");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> parseNumber() {
    const std::size_t begin = pos_;
    if (!atEnd() && text_[pos_] == '-')
      ++pos_;
    bool isDouble = false;
    while (!atEnd()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E')
          isDouble = true;
        // '+'/'-' only valid inside an exponent; the strtod check below
        // rejects malformed placements.
        if (c == '+' || (c == '-' && pos_ > begin))
          isDouble = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(begin, pos_ - begin);
    if (token.empty() || token == "-") {
      fail("invalid number");
      return std::nullopt;
    }
    if (!isDouble) {
      errno = 0;
      char *end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0')
        return Value(static_cast<std::int64_t>(parsed));
    }
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("invalid number");
      return std::nullopt;
    }
    return Value(parsed);
  }

  const std::string &text_;
  std::string *error_;
  std::size_t pos_ = 0;
};

} // namespace

std::optional<Value> Value::parse(const std::string &text, std::string *error) {
  if (error != nullptr)
    error->clear();
  ParseCursor cursor(text, error);
  return cursor.parseDocument();
}

} // namespace ompdart::json
