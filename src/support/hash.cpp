#include "support/hash.hpp"

namespace ompdart::hash {

Hasher &Hasher::update(const void *data, std::size_t size) {
  const auto *bytes = static_cast<const unsigned char *>(data);
  for (std::size_t i = 0; i < size; ++i) {
    lo_ = (lo_ ^ bytes[i]) * kPrime;
    hi_ = (hi_ ^ bytes[i]) * kPrime;
    // Cross-feed the lanes so they do not stay a fixed XOR apart.
    hi_ ^= lo_ >> 32;
  }
  return *this;
}

Hasher &Hasher::update(std::uint64_t value) {
  unsigned char bytes[8];
  for (unsigned i = 0; i < 8; ++i)
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
  return update(bytes, sizeof bytes);
}

std::string Hasher::hex() const {
  static const char *const digits = "0123456789abcdef";
  std::string out(32, '0');
  for (unsigned i = 0; i < 16; ++i)
    out[i] = digits[(hi_ >> (60 - 4 * i)) & 0xf];
  for (unsigned i = 0; i < 16; ++i)
    out[16 + i] = digits[(lo_ >> (60 - 4 * i)) & 0xf];
  return out;
}

std::string fingerprint(const std::string &text) {
  Hasher hasher;
  hasher.update(text);
  return hasher.hex();
}

} // namespace ompdart::hash
