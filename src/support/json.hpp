// Minimal JSON value model with a deterministic writer and a strict parser.
// Objects preserve insertion order so serialized reports are byte-stable
// across runs (a requirement for batch output and golden tests). Integers
// are kept distinct from doubles so 64-bit counters (byte totals, Table IV
// possible-mapping counts) round-trip exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ompdart::json {

class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() = default;
  Value(bool value) : kind_(Kind::Bool), bool_(value) {}
  Value(int value) : kind_(Kind::Int), int_(value) {}
  Value(unsigned value) : kind_(Kind::Int), int_(value) {}
  Value(std::int64_t value) : kind_(Kind::Int), int_(value) {}
  Value(std::uint64_t value)
      : kind_(Kind::Int), int_(static_cast<std::int64_t>(value)) {}
  Value(double value) : kind_(Kind::Double), double_(value) {}
  Value(const char *value) : kind_(Kind::String), string_(value) {}
  Value(std::string value) : kind_(Kind::String), string_(std::move(value)) {}

  [[nodiscard]] static Value array() {
    Value value;
    value.kind_ = Kind::Array;
    return value;
  }
  [[nodiscard]] static Value object() {
    Value value;
    value.kind_ = Kind::Object;
    return value;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }

  [[nodiscard]] bool asBool(bool fallback = false) const {
    return kind_ == Kind::Bool ? bool_ : fallback;
  }
  [[nodiscard]] std::int64_t asInt(std::int64_t fallback = 0) const {
    if (kind_ == Kind::Int)
      return int_;
    if (kind_ == Kind::Double)
      return static_cast<std::int64_t>(double_);
    return fallback;
  }
  [[nodiscard]] std::uint64_t asUint(std::uint64_t fallback = 0) const {
    return kind_ == Kind::Int ? static_cast<std::uint64_t>(int_)
           : kind_ == Kind::Double ? static_cast<std::uint64_t>(double_)
                                   : fallback;
  }
  [[nodiscard]] double asDouble(double fallback = 0.0) const {
    if (kind_ == Kind::Double)
      return double_;
    if (kind_ == Kind::Int)
      return static_cast<double>(int_);
    return fallback;
  }
  [[nodiscard]] const std::string &asString() const { return string_; }

  [[nodiscard]] const std::vector<Value> &items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>> &
  members() const {
    return members_;
  }

  /// Appends to an array value (converts a null value to an array).
  void push(Value value);

  /// Sets/overwrites an object member (converts a null value to an object).
  void set(const std::string &key, Value value);

  /// Object member lookup; null when absent or not an object.
  [[nodiscard]] const Value *find(const std::string &key) const;

  /// Member access with fallbacks for report deserialization.
  [[nodiscard]] std::string stringOr(const std::string &key,
                                     const std::string &fallback = "") const;
  [[nodiscard]] std::int64_t intOr(const std::string &key,
                                   std::int64_t fallback = 0) const;
  [[nodiscard]] std::uint64_t uintOr(const std::string &key,
                                     std::uint64_t fallback = 0) const;
  [[nodiscard]] double doubleOr(const std::string &key,
                                double fallback = 0.0) const;
  [[nodiscard]] bool boolOr(const std::string &key,
                            bool fallback = false) const;

  [[nodiscard]] bool operator==(const Value &other) const;
  [[nodiscard]] bool operator!=(const Value &other) const {
    return !(*this == other);
  }

  /// Serializes with 2-space indentation when `pretty`, compact otherwise.
  [[nodiscard]] std::string dump(bool pretty = false) const;

  /// Strict parse of a complete JSON document. On failure returns nullopt
  /// and, when `error` is non-null, a "line:col: message" description.
  [[nodiscard]] static std::optional<Value> parse(const std::string &text,
                                                  std::string *error = nullptr);

private:
  void dumpTo(std::string &out, bool pretty, unsigned depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string escape(const std::string &text);

/// Deserializer convenience: records `message` into `*error` when non-null
/// and still empty (first error wins), and returns false so parsers can
/// `return setFirstError(error, "...")`.
inline bool setFirstError(std::string *error, const char *message) {
  if (error != nullptr && error->empty())
    *error = message;
  return false;
}

} // namespace ompdart::json
