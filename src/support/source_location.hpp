// Source locations and ranges used throughout the front end, analyses and
// rewriter. Locations are byte offsets into the original source buffer plus
// cached 1-based line/column; the rewriter keys every edit on `offset`, so a
// location must always refer to the *unexpanded* input text.
#pragma once

#include <cstddef>
#include <string>

namespace ompdart {

/// A position in the original source buffer.
struct SourceLocation {
  /// Byte offset into the source buffer. `kInvalid` marks an unset location.
  std::size_t offset = kInvalid;
  /// 1-based line number (0 when invalid).
  unsigned line = 0;
  /// 1-based column number (0 when invalid).
  unsigned column = 0;

  static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);

  [[nodiscard]] bool isValid() const { return offset != kInvalid; }

  [[nodiscard]] bool operator==(const SourceLocation &other) const {
    return offset == other.offset;
  }
  [[nodiscard]] bool operator<(const SourceLocation &other) const {
    return offset < other.offset;
  }

  /// Renders as "line:column" for diagnostics.
  [[nodiscard]] std::string str() const {
    if (!isValid())
      return "<invalid>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// A half-open range [begin, end) over the source buffer. `end` points one
/// past the last byte of the ranged entity.
struct SourceRange {
  SourceLocation begin;
  SourceLocation end;

  SourceRange() = default;
  SourceRange(SourceLocation b, SourceLocation e) : begin(b), end(e) {}

  [[nodiscard]] bool isValid() const {
    return begin.isValid() && end.isValid();
  }

  /// True when `loc` falls inside the range.
  [[nodiscard]] bool contains(SourceLocation loc) const {
    return isValid() && loc.isValid() && begin.offset <= loc.offset &&
           loc.offset < end.offset;
  }

  /// True when `other` is entirely inside this range.
  [[nodiscard]] bool contains(const SourceRange &other) const {
    return isValid() && other.isValid() && begin.offset <= other.begin.offset &&
           other.end.offset <= end.offset;
  }
};

} // namespace ompdart
