// Bump-pointer arena for per-TU node allocation (AST nodes, declarations).
//
// The front end allocates hundreds of thousands of small polymorphic nodes
// per translation unit and frees them all at once when the Session is torn
// down. A general-purpose heap pays per-node malloc/free plus a
// unique_ptr bookkeeping slot for every node; the arena replaces that with
// pointer bumps into 64 KiB slabs and a wholesale drop at destruction.
//
// Ownership rules (see README "Memory model"):
//   - `create<T>()` returns a pointer that lives exactly as long as the
//     arena. Nodes are never freed individually.
//   - Types with non-trivial destructors (std::string/std::vector members —
//     most AST nodes) are tracked and destroyed, in reverse creation order,
//     when the arena dies. Trivially-destructible types skip the list
//     entirely.
//   - The arena is not thread-safe: one arena belongs to one Session, and
//     a Session is confined to one thread (driver/pipeline.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace ompdart {

class BumpArena {
public:
  BumpArena() = default;
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  ~BumpArena() { reset(); }

  /// Constructs a T inside the arena. The result is valid until the arena
  /// is destroyed or reset; never delete it.
  template <typename T, typename... Args> T *create(Args &&...args) {
    void *memory = allocate(sizeof(T), alignof(T));
    T *object = ::new (memory) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      destructors_.push_back(
          {object, [](void *raw) { static_cast<T *>(raw)->~T(); }});
    return object;
  }

  /// Raw aligned storage without construction (callers placement-new).
  [[nodiscard]] void *allocate(std::size_t size, std::size_t align) {
    std::size_t current = reinterpret_cast<std::uintptr_t>(cursor_);
    std::size_t aligned = (current + (align - 1)) & ~(align - 1);
    std::size_t padded = aligned - current + size;
    if (padded > static_cast<std::size_t>(end_ - cursor_)) {
      newSlab(size + align);
      current = reinterpret_cast<std::uintptr_t>(cursor_);
      aligned = (current + (align - 1)) & ~(align - 1);
      padded = aligned - current + size;
    }
    cursor_ += padded;
    bytesAllocated_ += padded;
    return reinterpret_cast<void *>(aligned);
  }

  /// Destroys every tracked object (reverse creation order) and releases
  /// all slabs.
  void reset() {
    for (auto it = destructors_.rbegin(); it != destructors_.rend(); ++it)
      it->destroy(it->object);
    destructors_.clear();
    slabs_.clear();
    cursor_ = nullptr;
    end_ = nullptr;
    bytesAllocated_ = 0;
  }

  /// Bytes handed out (including alignment padding) since construction or
  /// the last reset.
  [[nodiscard]] std::size_t bytesAllocated() const { return bytesAllocated_; }
  [[nodiscard]] std::size_t slabCount() const { return slabs_.size(); }

private:
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  struct DestructorEntry {
    void *object;
    void (*destroy)(void *);
  };

  void newSlab(std::size_t atLeast) {
    const std::size_t size = atLeast > kSlabBytes ? atLeast : kSlabBytes;
    slabs_.push_back(std::make_unique<char[]>(size));
    cursor_ = slabs_.back().get();
    end_ = cursor_ + size;
  }

  std::vector<std::unique_ptr<char[]>> slabs_;
  char *cursor_ = nullptr;
  char *end_ = nullptr;
  std::vector<DestructorEntry> destructors_;
  std::size_t bytesAllocated_ = 0;
};

} // namespace ompdart
