#include "suite/benchmarks.hpp"

namespace ompdart::suite {

const std::vector<BenchmarkDef> &allBenchmarks() {
  static const std::vector<BenchmarkDef> benchmarks = {
      makeAccuracy(), makeAce(),     makeBackprop(),
      makeBfs(),      makeClenergy(), makeHotspot(),
      makeLulesh(),   makeNw(),       makeXsbench(),
  };
  return benchmarks;
}

const BenchmarkDef *findBenchmark(const std::string &name) {
  for (const BenchmarkDef &def : allBenchmarks())
    if (def.name == name)
      return &def;
  return nullptr;
}

} // namespace ompdart::suite
