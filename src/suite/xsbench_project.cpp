// xsbench split across three translation units — the Project layer's
// multi-file fidelity benchmark. The structure stresses both cross-TU
// directions the whole-program analysis must get right:
//
//   - caller -> callee facts: `run_batches` (kernel TU) is called once
//     from `main` (main TU), and `accumulate_stats` (support TU) is called
//     from inside the kernel TU's 8-trip batch loop, so execution counts
//     must cross TU boundaries for the transfer predictor to reconcile;
//   - callee -> caller summaries: `accumulate_stats` takes a *non-const*
//     `double *` yet only reads it. Single-TU analysis must assume the
//     worst (unknown host write => a re-`update to` of results every batch
//     iteration); the imported summary proves the parameter read-only and
//     the pessimistic transfers disappear.
//
// Concatenating the TUs in link order (main, support, kernel) forms one
// valid single-TU program: definitions precede the `extern` declarations
// the parser unifies by name, and prototypes precede calls.
#include "suite/benchmarks.hpp"

namespace ompdart::suite {

namespace {

const char *const kMainTu = R"(
#define NUCLIDES 16
#define GRIDPOINTS 128
#define LOOKUPS 1024

double energy_grid[NUCLIDES * GRIDPOINTS];
double xs_total[NUCLIDES * GRIDPOINTS];
double xs_elastic[NUCLIDES * GRIDPOINTS];
double xs_absorption[NUCLIDES * GRIDPOINTS];
double xs_fission[NUCLIDES * GRIDPOINTS];
double lookup_energy[LOOKUPS];
int lookup_material[LOOKUPS];
double results[LOOKUPS];
double checksum;

void init_tables();
void run_batches();

int main() {
  init_tables();
  run_batches();
  printf("checksum=%.6f\n", checksum);
  return 0;
}
)";

const char *const kSupportTu = R"(
#define NUCLIDES 16
#define GRIDPOINTS 128
#define LOOKUPS 1024

extern double energy_grid[NUCLIDES * GRIDPOINTS];
extern double xs_total[NUCLIDES * GRIDPOINTS];
extern double xs_elastic[NUCLIDES * GRIDPOINTS];
extern double xs_absorption[NUCLIDES * GRIDPOINTS];
extern double xs_fission[NUCLIDES * GRIDPOINTS];
extern double lookup_energy[LOOKUPS];
extern int lookup_material[LOOKUPS];
extern double checksum;

void init_tables() {
  srand(97);
  for (int n = 0; n < NUCLIDES; ++n) {
    for (int g = 0; g < GRIDPOINTS; ++g) {
      int idx = n * GRIDPOINTS + g;
      energy_grid[idx] = (double)g / GRIDPOINTS;
      xs_total[idx] = (double)(rand() % 1000) * 0.001;
      xs_elastic[idx] = (double)(rand() % 1000) * 0.0005;
      xs_absorption[idx] = (double)(rand() % 1000) * 0.0003;
      xs_fission[idx] = (double)(rand() % 1000) * 0.0002;
    }
  }
  for (int l = 0; l < LOOKUPS; ++l) {
    lookup_energy[l] = (double)(rand() % 1000) * 0.001;
    lookup_material[l] = rand() % NUCLIDES;
  }
}

void accumulate_stats(double *res, int n) {
  for (int l = 0; l < n; ++l) {
    checksum += res[l];
  }
}
)";

const char *const kKernelTu = R"(
#define NUCLIDES 16
#define GRIDPOINTS 128
#define LOOKUPS 1024
#define BATCHES 8

extern double energy_grid[NUCLIDES * GRIDPOINTS];
extern double xs_total[NUCLIDES * GRIDPOINTS];
extern double xs_elastic[NUCLIDES * GRIDPOINTS];
extern double xs_absorption[NUCLIDES * GRIDPOINTS];
extern double xs_fission[NUCLIDES * GRIDPOINTS];
extern double lookup_energy[LOOKUPS];
extern int lookup_material[LOOKUPS];
extern double results[LOOKUPS];

void accumulate_stats(double *res, int n);

void run_batches() {
  for (int batch = 0; batch < BATCHES; ++batch) {
    double batch_scale = 1.0 + batch * 0.125;
    #pragma omp target teams distribute parallel for
    for (int l = 0; l < LOOKUPS; ++l) {
      int mat = lookup_material[l];
      double e = lookup_energy[l];
      int g = (int)(e * (GRIDPOINTS - 1));
      int idx = mat * GRIDPOINTS + g;
      double macro = xs_total[idx] + xs_elastic[idx] +
                     xs_absorption[idx] + xs_fission[idx];
      results[l] = results[l] * 0.5 + macro * batch_scale + energy_grid[idx];
    }
    accumulate_stats(results, LOOKUPS);
  }
}
)";

} // namespace

std::string ProjectBenchmarkDef::combined() const {
  std::string out;
  for (const Tu &tu : tus)
    out += tu.source;
  return out;
}

const ProjectBenchmarkDef &xsbenchProject() {
  static const ProjectBenchmarkDef def = [] {
    ProjectBenchmarkDef project;
    project.name = "xsbench-project";
    project.tus.push_back({"xsbench_main.c", kMainTu});
    project.tus.push_back({"xsbench_support.c", kSupportTu});
    project.tus.push_back({"xsbench_kernel.c", kKernelTu});
    return project;
  }();
  return def;
}

} // namespace ompdart::suite
