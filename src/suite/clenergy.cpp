// clenergy — HeCBench "Coulombic Potential": direct Coulomb summation of
// atom charges onto a 3-D lattice, processed slab by slab. A small lattice
// configuration struct is read by every kernel launch; the expert mappings
// overlook it (the paper's 66% memcpy-call reduction anecdote), while
// OMPDart maps it with the data region.
#include "suite/benchmarks.hpp"

namespace ompdart::suite {

namespace {

const char *const kUnoptimized = R"(
#define ATOMS 64
#define GRIDX 16
#define GRIDY 16
#define SLABS 12

struct lattice {
  double spacing;
  double origin_x;
  double origin_y;
  double origin_z;
};

double atom_x[ATOMS];
double atom_y[ATOMS];
double atom_z[ATOMS];
double atom_q[ATOMS];
double energygrid[SLABS * GRIDY * GRIDX];
struct lattice grid;

void init_atoms() {
  srand(23);
  grid.spacing = 0.5;
  grid.origin_x = -4.0;
  grid.origin_y = -4.0;
  grid.origin_z = -3.0;
  for (int a = 0; a < ATOMS; ++a) {
    atom_x[a] = (double)(rand() % 800) * 0.01 - 4.0;
    atom_y[a] = (double)(rand() % 800) * 0.01 - 4.0;
    atom_z[a] = (double)(rand() % 600) * 0.01 - 3.0;
    atom_q[a] = (double)(rand() % 200) * 0.01 - 1.0;
  }
  for (int i = 0; i < SLABS * GRIDY * GRIDX; ++i) {
    energygrid[i] = 0.0;
  }
}

int main() {
  init_atoms();
  for (int slab = 0; slab < SLABS; ++slab) {
    #pragma omp target teams distribute parallel for
    for (int g = 0; g < GRIDY * GRIDX; ++g) {
      int gx = g % GRIDX;
      int gy = g / GRIDX;
      double px = grid.origin_x + gx * grid.spacing;
      double py = grid.origin_y + gy * grid.spacing;
      double pz = grid.origin_z + slab * grid.spacing;
      double energy = 0.0;
      for (int a = 0; a < ATOMS; ++a) {
        double dx = px - atom_x[a];
        double dy = py - atom_y[a];
        double dz = pz - atom_z[a];
        double r2 = dx * dx + dy * dy + dz * dz + 0.01;
        energy += atom_q[a] / sqrt(r2);
      }
      energygrid[slab * GRIDY * GRIDX + g] += energy;
    }
    #pragma omp target teams distribute parallel for
    for (int g = 0; g < GRIDY * GRIDX; ++g) {
      int idx = slab * GRIDY * GRIDX + g;
      energygrid[idx] = energygrid[idx] * grid.spacing;
    }
  }
  double total = 0.0;
  for (int i = 0; i < SLABS * GRIDY * GRIDX; ++i) {
    total += energygrid[i];
  }
  printf("potential=%.6f\n", total);
  return 0;
}
)";

const char *const kExpert = R"(
#define ATOMS 64
#define GRIDX 16
#define GRIDY 16
#define SLABS 12

struct lattice {
  double spacing;
  double origin_x;
  double origin_y;
  double origin_z;
};

double atom_x[ATOMS];
double atom_y[ATOMS];
double atom_z[ATOMS];
double atom_q[ATOMS];
double energygrid[SLABS * GRIDY * GRIDX];
struct lattice grid;

void init_atoms() {
  srand(23);
  grid.spacing = 0.5;
  grid.origin_x = -4.0;
  grid.origin_y = -4.0;
  grid.origin_z = -3.0;
  for (int a = 0; a < ATOMS; ++a) {
    atom_x[a] = (double)(rand() % 800) * 0.01 - 4.0;
    atom_y[a] = (double)(rand() % 800) * 0.01 - 4.0;
    atom_z[a] = (double)(rand() % 600) * 0.01 - 3.0;
    atom_q[a] = (double)(rand() % 200) * 0.01 - 1.0;
  }
  for (int i = 0; i < SLABS * GRIDY * GRIDX; ++i) {
    energygrid[i] = 0.0;
  }
}

int main() {
  init_atoms();
  // Expert mapping from the suite: atom arrays and the grid are mapped, but
  // the small lattice struct was overlooked and keeps falling back to the
  // implicit per-kernel map.
  #pragma omp target data map(to: atom_x, atom_y, atom_z, atom_q) \
      map(tofrom: energygrid)
  {
    for (int slab = 0; slab < SLABS; ++slab) {
      #pragma omp target teams distribute parallel for firstprivate(slab)
      for (int g = 0; g < GRIDY * GRIDX; ++g) {
        int gx = g % GRIDX;
        int gy = g / GRIDX;
        double px = grid.origin_x + gx * grid.spacing;
        double py = grid.origin_y + gy * grid.spacing;
        double pz = grid.origin_z + slab * grid.spacing;
        double energy = 0.0;
        for (int a = 0; a < ATOMS; ++a) {
          double dx = px - atom_x[a];
          double dy = py - atom_y[a];
          double dz = pz - atom_z[a];
          double r2 = dx * dx + dy * dy + dz * dz + 0.01;
          energy += atom_q[a] / sqrt(r2);
        }
        energygrid[slab * GRIDY * GRIDX + g] += energy;
      }
      #pragma omp target teams distribute parallel for firstprivate(slab)
      for (int g = 0; g < GRIDY * GRIDX; ++g) {
        int idx = slab * GRIDY * GRIDX + g;
        energygrid[idx] = energygrid[idx] * grid.spacing;
      }
    }
  }
  double total = 0.0;
  for (int i = 0; i < SLABS * GRIDY * GRIDX; ++i) {
    total += energygrid[i];
  }
  printf("potential=%.6f\n", total);
  return 0;
}
)";

} // namespace

BenchmarkDef makeClenergy() {
  BenchmarkDef def;
  def.name = "clenergy";
  def.suiteName = "HeCBench";
  def.domain = "Physics Simulation";
  def.description = "Evaluates electrostatic potentials on a 3-D lattice "
                    "using direct Coulomb summation";
  def.unoptimized = kUnoptimized;
  def.expert = kExpert;
  def.paper = PaperReference{2, 103, 5, 812, 65.0, 1.11, 0.16};
  return def;
}

} // namespace ompdart::suite
