// nw — Rodinia "Needleman-Wunsch": DNA sequence alignment by dynamic
// programming over anti-diagonals. Two kernels process the upper-left and
// lower-right triangles of the score matrix diagonal by diagonal; the many
// per-launch scalars (dimension, penalty, diagonal index) become
// firstprivate under OMPDart (the paper's 33% call reduction).
#include "suite/benchmarks.hpp"

namespace ompdart::suite {

namespace {

const char *const kUnoptimized = R"(
#define DIM 48
#define PENALTY 10

int score[DIM * DIM];
int reference[DIM * DIM];

int max3(int a, int b, int c) {
  int m = a;
  if (b > m) {
    m = b;
  }
  if (c > m) {
    m = c;
  }
  return m;
}

void init_matrices() {
  srand(31);
  for (int i = 0; i < DIM * DIM; ++i) {
    reference[i] = rand() % 20 - 10;
    score[i] = 0;
  }
  for (int i = 1; i < DIM; ++i) {
    score[i * DIM] = -i * PENALTY;
    score[i] = -i * PENALTY;
  }
}

int main() {
  init_matrices();
  for (int d = 1; d < DIM; ++d) {
    #pragma omp target teams distribute parallel for
    for (int k = 1; k <= d; ++k) {
      int i = k;
      int j = d - k + 1;
      if (j >= 1 && j < DIM && i < DIM) {
        score[i * DIM + j] = max3(
            score[(i - 1) * DIM + j - 1] + reference[i * DIM + j],
            score[i * DIM + j - 1] - PENALTY,
            score[(i - 1) * DIM + j] - PENALTY);
      }
    }
  }
  for (int d = DIM - 2; d >= 1; --d) {
    #pragma omp target teams distribute parallel for
    for (int k = 1; k <= d; ++k) {
      int i = DIM - d + k - 1;
      int j = 2 * DIM - d - i - 1;
      if (i >= 1 && i < DIM && j >= 1 && j < DIM) {
        score[i * DIM + j] = max3(
            score[(i - 1) * DIM + j - 1] + reference[i * DIM + j],
            score[i * DIM + j - 1] - PENALTY,
            score[(i - 1) * DIM + j] - PENALTY);
      }
    }
  }
  long checksum = 0;
  for (int i = 0; i < DIM * DIM; ++i) {
    checksum += score[i];
  }
  printf("alignment=%d checksum=%d\n", score[DIM * DIM - 1], (int)checksum);
  return 0;
}
)";

const char *const kExpert = R"(
#define DIM 48
#define PENALTY 10

int score[DIM * DIM];
int reference[DIM * DIM];

int max3(int a, int b, int c) {
  int m = a;
  if (b > m) {
    m = b;
  }
  if (c > m) {
    m = c;
  }
  return m;
}

void init_matrices() {
  srand(31);
  for (int i = 0; i < DIM * DIM; ++i) {
    reference[i] = rand() % 20 - 10;
    score[i] = 0;
  }
  for (int i = 1; i < DIM; ++i) {
    score[i * DIM] = -i * PENALTY;
    score[i] = -i * PENALTY;
  }
}

int main() {
  init_matrices();
  #pragma omp target data map(tofrom: score) map(to: reference)
  {
    for (int d = 1; d < DIM; ++d) {
      #pragma omp target teams distribute parallel for map(to: d)
      for (int k = 1; k <= d; ++k) {
        int i = k;
        int j = d - k + 1;
        if (j >= 1 && j < DIM && i < DIM) {
          score[i * DIM + j] = max3(
              score[(i - 1) * DIM + j - 1] + reference[i * DIM + j],
              score[i * DIM + j - 1] - PENALTY,
              score[(i - 1) * DIM + j] - PENALTY);
        }
      }
    }
    for (int d = DIM - 2; d >= 1; --d) {
      #pragma omp target teams distribute parallel for map(to: d)
      for (int k = 1; k <= d; ++k) {
        int i = DIM - d + k - 1;
        int j = 2 * DIM - d - i - 1;
        if (i >= 1 && i < DIM && j >= 1 && j < DIM) {
          score[i * DIM + j] = max3(
              score[(i - 1) * DIM + j - 1] + reference[i * DIM + j],
              score[i * DIM + j - 1] - PENALTY,
              score[(i - 1) * DIM + j] - PENALTY);
        }
      }
    }
  }
  long checksum = 0;
  for (int i = 0; i < DIM * DIM; ++i) {
    checksum += score[i];
  }
  printf("alignment=%d checksum=%d\n", score[DIM * DIM - 1], (int)checksum);
  return 0;
}
)";

} // namespace

BenchmarkDef makeNw() {
  BenchmarkDef def;
  def.name = "nw";
  def.suiteName = "Rodinia";
  def.domain = "Bioinformatics";
  def.description = "Non-linear global optimization method for DNA sequence "
                    "alignments";
  def.unoptimized = kUnoptimized;
  def.expert = kExpert;
  def.paper = PaperReference{2, 122, 12, 2292, 2.0, 1.04, 0.14};
  return def;
}

} // namespace ompdart::suite
