// Structured pipeline report: the self-contained (no AST pointers) summary
// a Session produces — the plan as a Mapping IR, diagnostics with source
// locations, Table IV complexity metrics, Table V per-stage timings — with
// JSON round-trip serialization for benchmarks, batch drivers and the
// CLI's `--emit=json` mode.
//
// The plan summary is the Mapping IR itself (mapping/ir.hpp): the report no
// longer mirrors plan contents in hand-copied structs, so plan JSON has a
// single schema whether it comes from `--emit=ir`, a serialized IR cache,
// or a full report.
#pragma once

#include "check/finding.hpp"
#include "mapping/ir.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ompdart {

/// The pipeline stages of paper Fig. 1, in execution order, plus the static
/// plan-safety `Check` stage that validates the plan before it is consumed.
/// `Rewrite` precedes `Metrics` because metrics are measurement-only and the
/// transformed source is the tool's primary artifact.
enum class Stage { Parse, Cfg, Interproc, Plan, Check, Rewrite, Metrics };

inline constexpr unsigned kStageCount = 7;

/// All stages in execution order.
[[nodiscard]] const std::vector<Stage> &allStages();

[[nodiscard]] const char *stageName(Stage stage);

/// Inverse of `stageName`; nullopt for unknown spellings.
[[nodiscard]] std::optional<Stage> stageFromName(const std::string &name);

/// Benchmark data-mapping complexity metrics (paper Table IV).
struct ComplexityMetrics {
  unsigned kernels = 0;
  unsigned offloadedLines = 0;
  unsigned mappedVariables = 0;
  /// Paper's formula: kernels*vars*4 + (lines/2)*vars*3, where `lines`
  /// counts the lines of functions containing kernels.
  std::uint64_t possibleMappings = 0;

  [[nodiscard]] bool operator==(const ComplexityMetrics &other) const {
    return kernels == other.kernels &&
           offloadedLines == other.offloadedLines &&
           mappedVariables == other.mappedVariables &&
           possibleMappings == other.possibleMappings;
  }
};

/// Wall-clock seconds and execution count for one stage. `runs` exposes the
/// Session's lazy caching: a cached artifact access leaves it unchanged.
struct StageTiming {
  Stage stage = Stage::Parse;
  double seconds = 0.0;
  unsigned runs = 0;

  [[nodiscard]] bool operator==(const StageTiming &other) const {
    return stage == other.stage && seconds == other.seconds &&
           runs == other.runs;
  }
};

/// Plan-cache observability embedded in a report: the session's probe
/// outcome plus the active cache's counters, so `--emit=json` makes warm
/// runs observable without a separate benchmark run. Counters come from the
/// (possibly shared) cache instance, so in batch mode they aggregate across
/// the batch up to the moment the report was built.
struct PlanCacheReport {
  std::string status; ///< "disabled" | "uncacheable" | "miss" | "hit"
  std::string keyId;  ///< content address used by the probe ("" until keyed)
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t memoHits = 0;
  std::uint64_t summaryLookups = 0;
  std::uint64_t summaryHits = 0;
  std::uint64_t summaryMisses = 0;
  std::uint64_t summaryStores = 0;
  std::uint64_t summaryMemoHits = 0;

  [[nodiscard]] bool operator==(const PlanCacheReport &other) const {
    return status == other.status && keyId == other.keyId &&
           lookups == other.lookups && hits == other.hits &&
           misses == other.misses && stores == other.stores &&
           invalidations == other.invalidations &&
           memoHits == other.memoHits &&
           summaryLookups == other.summaryLookups &&
           summaryHits == other.summaryHits &&
           summaryMisses == other.summaryMisses &&
           summaryStores == other.summaryStores &&
           summaryMemoHits == other.summaryMemoHits;
  }
};

struct Report {
  std::string fileName;
  bool success = false;
  /// Name of the last stage that executed (e.g. "plan" under
  /// `--stop-after=plan`; "metrics" for a full run).
  std::string stoppedAfter;
  ComplexityMetrics metrics;
  std::vector<StageTiming> timings; ///< only stages that ran, in order
  double totalSeconds = 0.0;        ///< Table V tool time (sum of timings)
  /// In deterministic source-location order (see `diagnosticBefore`).
  std::vector<Diagnostic> diagnostics;
  /// The mapping plan as a self-contained IR (empty when the plan stage did
  /// not run).
  ir::MappingIr plan;
  /// Transformed source; empty when the rewrite stage did not run or the
  /// Session was configured not to embed it.
  std::string output;
  /// Plan-cache probe outcome + counters; absent when no cache was
  /// configured for the producing session.
  std::optional<PlanCacheReport> planCache;
  /// Static plan-safety findings; absent when the check stage did not run.
  std::optional<check::CheckResult> check;

  [[nodiscard]] bool hasErrors() const {
    for (const Diagnostic &diag : diagnostics)
      if (diag.severity == Severity::Error)
        return true;
    return false;
  }
  [[nodiscard]] double secondsFor(Stage stage) const {
    for (const StageTiming &timing : timings)
      if (timing.stage == stage)
        return timing.seconds;
    return 0.0;
  }

  [[nodiscard]] json::Value toJson() const;
  /// Inverse of `toJson`. Returns nullopt (and sets `error`) on documents
  /// that are not a serialized Report.
  [[nodiscard]] static std::optional<Report>
  fromJson(const json::Value &value, std::string *error = nullptr);

  [[nodiscard]] bool operator==(const Report &other) const;
};

} // namespace ompdart
