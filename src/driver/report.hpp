// Structured pipeline report: the self-contained (no AST pointers) summary
// a Session produces — plan contents, diagnostics with source locations,
// Table IV complexity metrics, Table V per-stage timings — with JSON
// round-trip serialization for benchmarks, batch drivers and the CLI's
// `--emit=json` mode.
#pragma once

#include "support/diagnostics.hpp"
#include "support/json.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ompdart {

/// The pipeline stages of paper Fig. 1, in execution order. `Rewrite`
/// precedes `Metrics` because metrics are measurement-only and the
/// transformed source is the tool's primary artifact.
enum class Stage { Parse, Cfg, Interproc, Plan, Rewrite, Metrics };

inline constexpr unsigned kStageCount = 6;

/// All stages in execution order.
[[nodiscard]] const std::vector<Stage> &allStages();

[[nodiscard]] const char *stageName(Stage stage);

/// Inverse of `stageName`; nullopt for unknown spellings.
[[nodiscard]] std::optional<Stage> stageFromName(const std::string &name);

/// Benchmark data-mapping complexity metrics (paper Table IV).
struct ComplexityMetrics {
  unsigned kernels = 0;
  unsigned offloadedLines = 0;
  unsigned mappedVariables = 0;
  /// Paper's formula: kernels*vars*4 + (lines/2)*vars*3, where `lines`
  /// counts the lines of functions containing kernels.
  std::uint64_t possibleMappings = 0;

  [[nodiscard]] bool operator==(const ComplexityMetrics &other) const {
    return kernels == other.kernels &&
           offloadedLines == other.offloadedLines &&
           mappedVariables == other.mappedVariables &&
           possibleMappings == other.possibleMappings;
  }
};

/// Wall-clock seconds and execution count for one stage. `runs` exposes the
/// Session's lazy caching: a cached artifact access leaves it unchanged.
struct StageTiming {
  Stage stage = Stage::Parse;
  double seconds = 0.0;
  unsigned runs = 0;

  [[nodiscard]] bool operator==(const StageTiming &other) const {
    return stage == other.stage && seconds == other.seconds &&
           runs == other.runs;
  }
};

// --- Plain-data mirrors of the MappingPlan (serializable, AST-free) ---

struct ReportMap {
  std::string mapType; ///< "to" | "from" | "tofrom" | "alloc"
  std::string item;    ///< variable name or array section spelling
  std::uint64_t approxBytes = 0;

  [[nodiscard]] bool operator==(const ReportMap &other) const {
    return mapType == other.mapType && item == other.item &&
           approxBytes == other.approxBytes;
  }
};

struct ReportUpdate {
  std::string direction; ///< "to" | "from"
  std::string item;
  unsigned anchorLine = 0;
  std::string placement; ///< "before" | "after" | "body-begin" | "body-end"
  bool hoisted = false;

  [[nodiscard]] bool operator==(const ReportUpdate &other) const {
    return direction == other.direction && item == other.item &&
           anchorLine == other.anchorLine && placement == other.placement &&
           hoisted == other.hoisted;
  }
};

struct ReportFirstprivate {
  std::string var;
  unsigned kernelLine = 0;

  [[nodiscard]] bool operator==(const ReportFirstprivate &other) const {
    return var == other.var && kernelLine == other.kernelLine;
  }
};

struct ReportRegion {
  std::string function;
  unsigned beginLine = 0;
  unsigned endLine = 0;
  bool appendsToKernel = false;
  std::vector<ReportMap> maps;
  std::vector<ReportUpdate> updates;
  std::vector<ReportFirstprivate> firstprivates;

  [[nodiscard]] bool operator==(const ReportRegion &other) const {
    return function == other.function && beginLine == other.beginLine &&
           endLine == other.endLine &&
           appendsToKernel == other.appendsToKernel && maps == other.maps &&
           updates == other.updates && firstprivates == other.firstprivates;
  }
};

struct Report {
  std::string fileName;
  bool success = false;
  /// Name of the last stage that executed (e.g. "plan" under
  /// `--stop-after=plan`; "metrics" for a full run).
  std::string stoppedAfter;
  ComplexityMetrics metrics;
  std::vector<StageTiming> timings; ///< only stages that ran, in order
  double totalSeconds = 0.0;        ///< Table V tool time (sum of timings)
  /// In deterministic source-location order (see `diagnosticBefore`).
  std::vector<Diagnostic> diagnostics;
  std::vector<ReportRegion> regions;
  /// Transformed source; empty when the rewrite stage did not run or the
  /// Session was configured not to embed it.
  std::string output;

  [[nodiscard]] bool hasErrors() const {
    for (const Diagnostic &diag : diagnostics)
      if (diag.severity == Severity::Error)
        return true;
    return false;
  }
  [[nodiscard]] double secondsFor(Stage stage) const {
    for (const StageTiming &timing : timings)
      if (timing.stage == stage)
        return timing.seconds;
    return 0.0;
  }

  [[nodiscard]] json::Value toJson() const;
  /// Inverse of `toJson`. Returns nullopt (and sets `error`) on documents
  /// that are not a serialized Report.
  [[nodiscard]] static std::optional<Report>
  fromJson(const json::Value &value, std::string *error = nullptr);

  [[nodiscard]] bool operator==(const Report &other) const;
};

} // namespace ompdart
