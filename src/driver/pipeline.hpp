// Staged pipeline API for OMPDart (paper Fig. 1).
//
// A `Session` owns one translation unit and exposes each pipeline stage as
// an explicit, lazily-computed, cached artifact:
//
//   parse()     -> const ASTContext &          front end (+ §IV-A input check)
//   cfg()       -> per-function AST-CFGs       Fig. 2 hybrid representation
//   interproc() -> InterproceduralResult       §IV-C fixed point
//   plan()      -> MappingPlan                 §IV-D/§IV-E decision engine
//   rewrite()   -> transformed source          §IV-F
//   metrics()   -> ComplexityMetrics           Table IV counters
//   report()    -> Report                      aggregate, JSON-serializable
//
// Stages compute their dependencies on demand; repeated accesses return the
// cached artifact (`stageRuns` proves it). `run()` executes stages in order
// up to `PipelineConfig::stopAfter`, which is how the CLI's `--stop-after`
// and ablation harnesses skip the stages they do not need. Each Session is
// confined to one thread; independent Sessions share no mutable state, which
// is what BatchDriver exploits to run them in parallel.
#pragma once

#include "analysis/interproc.hpp"
#include "analysis/summary.hpp"
#include "cache/plan_cache.hpp"
#include "cfg/cfg.hpp"
#include "driver/report.hpp"
#include "frontend/ast.hpp"
#include "mapping/cost.hpp"
#include "mapping/ir.hpp"
#include "mapping/plan.hpp"
#include "mapping/planner.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ompdart {

/// Unified configuration for the whole pipeline.
struct PipelineConfig {
  PlannerOptions planner;
  /// Cost model scoring the planner's candidate sets ("paper-greedy" |
  /// "sim"; see costModelNames()). Ignored when `planner.costModel` already
  /// carries an instance. Unknown names fail the plan stage with a
  /// diagnostic.
  std::string costModel = "paper-greedy";
  /// Reject inputs that already contain target data / target update
  /// directives (paper §IV-A: the expected input has none).
  bool rejectExistingDataDirectives = true;
  /// Cap on interprocedural fixed-point passes (forced to 1 when
  /// `planner.interprocedural` is off).
  unsigned interprocMaxPasses = 16;
  /// `run()`/`report()` execute stages only up to this one; nullopt runs
  /// the full pipeline.
  std::optional<Stage> stopAfter;
  /// Surface plan-safety findings (the check stage) as warning diagnostics.
  /// The stage itself runs on every fresh plan regardless and records its
  /// findings in the report; this flag only controls diagnostic emission —
  /// and forces the stage after a plan-cache hit, where it is otherwise
  /// skipped (checking needs the front end the hit avoided). Excluded from
  /// the plan fingerprint: findings never change the plan.
  bool check = false;
  /// Promote plan-safety findings to errors; `run()` then stops before the
  /// rewrite stage. Implies the diagnostics of `check`.
  bool checkErrors = false;
  /// Embed the transformed source in `report().output` (and its JSON).
  bool includeOutputInReport = true;
  /// Plan-cache directory; with a non-Off mode the Session consults a
  /// content-addressed cache before planning and skips
  /// parse->cfg->interproc->plan entirely on a hit.
  std::string cacheDir;
  cache::CacheMode cacheMode = cache::CacheMode::Off;
  /// Shared cache instance (wins over cacheDir/cacheMode when set; the
  /// BatchDriver shares one across its sessions so stats aggregate).
  /// Non-owning; must outlive the Session.
  cache::PlanCache *planCache = nullptr;
  /// Cross-TU facts injected by the Project layer: closed summaries for
  /// bodiless callees (consumed by the interproc stage), whole-program
  /// execution counts and external call-site facts (consumed by the
  /// planner). Null for single-TU runs. The imports fingerprint joins the
  /// plan-cache key, so a TU's cached plan is invalidated exactly when its
  /// imports change. Non-owning; must outlive the Session.
  const summary::TuImports *imports = nullptr;
};

/// Fingerprint of every PipelineConfig field that can change planning
/// output (ablation switches, cost model, interprocedural pass cap, input
/// validation). Cache keys embed this, so flipping any such switch is an
/// automatic cache invalidation; presentation-only fields (stopAfter,
/// includeOutputInReport, cache wiring) are excluded.
[[nodiscard]] std::string planFingerprint(const PipelineConfig &config);

/// One translation unit moving through the staged pipeline.
class Session {
public:
  /// Outcome of the plan-cache probe for this Session.
  enum class PlanCacheStatus {
    Disabled,    ///< no cache configured (or the probe has not run)
    Uncacheable, ///< cache configured, but this config cannot be keyed
                 ///< (injected cost-model instance)
    Miss,        ///< probed, planned fresh
    Hit,         ///< probed, plan re-hydrated from the cache
  };

  Session(std::string fileName, std::string source,
          PipelineConfig config = {});

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  // --- stage artifacts (lazy, cached) ---

  /// Front end. Always returns the context; check `parseSucceeded()` or
  /// `diagnostics()` for errors.
  const ASTContext &parse();
  /// Per-function hybrid AST-CFGs (empty when parsing failed).
  const std::vector<std::unique_ptr<AstCfg>> &cfg();
  /// Interprocedural side-effect summaries.
  const InterproceduralResult &interproc();
  /// The AST-level mapping plan (empty when any earlier stage reported
  /// errors — and after a plan-cache hit, which re-hydrates only the
  /// AST-free IR; check `planFromCache()` and consume `ir()` instead).
  const MappingPlan &plan();
  /// The plan as a self-contained Mapping IR (lifted alongside `plan()`;
  /// same stage). Serializable, AST-free, consumable by any PlanConsumer
  /// backend.
  const ir::MappingIr &ir();
  /// Plan-safety findings (empty when the stage was skipped after a
  /// cache hit without `config.check`, or when planning failed).
  const check::CheckResult &check();
  /// Transformed source; the original text when the pipeline failed.
  /// Produced by the SourceRewriteBackend over `ir()`.
  const std::string &rewrite();
  /// Table IV complexity counters.
  const ComplexityMetrics &metrics();
  /// Aggregate report over every stage that has run. Executes stages up to
  /// `config.stopAfter` first (the full pipeline by default).
  const Report &report();

  /// Executes stages in order up to `config.stopAfter`; stops early when a
  /// stage reports errors. Returns `success()`.
  bool run();

  // --- state queries (never trigger computation beyond their stage) ---

  [[nodiscard]] bool parseSucceeded();
  /// True when every executed stage completed without error diagnostics and
  /// parsing succeeded.
  [[nodiscard]] bool success() const;
  [[nodiscard]] const std::string &fileName() const { return fileName_; }
  [[nodiscard]] const SourceManager &sourceManager() const {
    return sourceManager_;
  }
  [[nodiscard]] const PipelineConfig &config() const { return config_; }
  [[nodiscard]] DiagnosticEngine &diagnostics() { return diags_; }
  [[nodiscard]] const DiagnosticEngine &diagnostics() const { return diags_; }

  /// Keeps the AST alive past the Session (compat shim support).
  [[nodiscard]] std::shared_ptr<ASTContext> shareAst() const { return ast_; }

  /// Plan-cache probe outcome (Disabled until `run()`/`plan()` executes
  /// with a cache configured).
  [[nodiscard]] PlanCacheStatus planCacheStatus() const {
    return cacheStatus_;
  }
  /// The content-addressed key this Session used (empty hashes until the
  /// probe ran).
  [[nodiscard]] const cache::CacheKey &planCacheKey() const {
    return cacheKey_;
  }
  /// True when the plan artifact was re-hydrated from the cache (the
  /// parse/cfg/interproc/plan stages were skipped).
  [[nodiscard]] bool planFromCache() const { return planFromCache_; }

  /// How many times a stage actually executed (0 = never, 1 = computed once;
  /// never higher because artifacts are cached).
  [[nodiscard]] unsigned stageRuns(Stage stage) const {
    return runs_[static_cast<unsigned>(stage)];
  }
  /// Wall-clock seconds a stage spent computing (0 when it never ran).
  [[nodiscard]] double stageSeconds(Stage stage) const {
    return seconds_[static_cast<unsigned>(stage)];
  }
  /// Sum over all executed stages: the Table V tool time.
  [[nodiscard]] double totalSeconds() const;

private:
  class StageTimer;

  void ensureParse();
  void ensureCfg();
  void ensureInterproc();
  void ensurePlan();
  void ensureCheck();
  void ensureRewrite();
  void ensureMetrics();
  void ensureStage(Stage stage);

  [[nodiscard]] bool done(Stage stage) const {
    return done_[static_cast<unsigned>(stage)];
  }

  /// The plan artifact exists and no stage reported errors (fresh parse or
  /// cache re-hydration); gates the downstream stages.
  [[nodiscard]] bool planUsable() const {
    return (parseOk_ || planFromCache_) && !diags_.hasErrors();
  }

  /// The cache this Session consults: the shared instance from the config,
  /// else one lazily owned over `config.cacheDir`.
  [[nodiscard]] cache::PlanCache *activeCache();

  /// Computes the cache key and attempts re-hydration (once). On a hit the
  /// plan stage is marked done without running and true is returned.
  bool probePlanCache();

  /// Persists the freshly planned IR (+ metrics + diagnostics) when the
  /// active cache is writable and planning succeeded.
  void storePlanCacheEntry();

  [[nodiscard]] ComplexityMetrics computeMetrics() const;

  Report buildReport();

  std::string fileName_;
  PipelineConfig config_;
  SourceManager sourceManager_;
  DiagnosticEngine diags_;
  std::shared_ptr<ASTContext> ast_;

  std::array<bool, kStageCount> done_{};
  std::array<unsigned, kStageCount> runs_{};
  std::array<double, kStageCount> seconds_{};

  bool parseOk_ = false;
  std::vector<std::unique_ptr<AstCfg>> cfgs_;
  InterproceduralResult interproc_;
  MappingPlan plan_;
  ir::MappingIr ir_;
  /// Findings of the check stage; empty before it runs (and when it was
  /// skipped after a cache hit).
  check::CheckResult checkResult_;
  /// Owns the cost model named by `config.costModel` for the plan stage.
  std::unique_ptr<CostModel> costModel_;
  std::string rewritten_;
  ComplexityMetrics metrics_;
  std::optional<Report> report_;
  /// Total stage executions when `report_` was built; a later stage run
  /// invalidates the cached report.
  unsigned reportStageRuns_ = 0;

  // --- plan cache state ---
  std::unique_ptr<cache::PlanCache> ownedCache_;
  cache::CacheKey cacheKey_;
  PlanCacheStatus cacheStatus_ = PlanCacheStatus::Disabled;
  bool cacheProbed_ = false;
  bool planFromCache_ = false;
  /// Metrics re-hydrated from a cache hit, or precomputed at plan time on
  /// a fresh plan (served by the metrics stage either way).
  ComplexityMetrics cachedMetrics_;
  bool metricsPrecomputed_ = false;
};

} // namespace ompdart
