#include "driver/batch.hpp"

#include "driver/project.hpp"
#include "gen/shrink.hpp"
#include "interp/interp.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

namespace ompdart {

json::Value BatchStats::toJson() const {
  json::Value out = json::Value::object();
  out.set("jobs", jobs);
  out.set("succeeded", succeeded);
  out.set("failed", failed);
  out.set("threads", threads);
  out.set("wallSeconds", wallSeconds);
  out.set("cpuSeconds", cpuSeconds);
  out.set("speedup", speedup());
  json::Value stages = json::Value::object();
  for (const Stage stage : allStages())
    stages.set(stageName(stage), stageSeconds[static_cast<unsigned>(stage)]);
  out.set("stageSeconds", std::move(stages));
  json::Value runs = json::Value::object();
  for (const Stage stage : allStages())
    runs.set(stageName(stage), stageRuns[static_cast<unsigned>(stage)]);
  out.set("stageRuns", std::move(runs));
  json::Value cacheJson = json::Value::object();
  cacheJson.set("hits", planCacheHits);
  cacheJson.set("misses", planCacheMisses);
  cacheJson.set("stores", planCacheStores);
  cacheJson.set("invalidations", planCacheInvalidations);
  out.set("planCache", std::move(cacheJson));
  return out;
}

json::Value FuzzStats::toJson() const {
  json::Value out = json::Value::object();
  out.set("programs", programs);
  out.set("ran", ran);
  out.set("passed", passed);
  out.set("failed", failed);
  out.set("skippedByTimeBox", skippedByTimeBox);
  out.set("provable", provable);
  out.set("multiTu", multiTu);
  out.set("threads", threads);
  out.set("wallSeconds", wallSeconds);
  out.set("baselineBytes", baselineBytes);
  out.set("planBytes", planBytes);
  json::Value cacheJson = json::Value::object();
  cacheJson.set("hits", planCacheHits);
  cacheJson.set("misses", planCacheMisses);
  out.set("planCache", std::move(cacheJson));
  return out;
}

FuzzResult BatchDriver::runFuzz(const FuzzOptions &fuzz) const {
  FuzzResult result;
  result.stats.programs = fuzz.count;
  if (fuzz.count == 0)
    return result;

  // Generation is cheap and deterministic; do it up front so the corpus is
  // fixed before any scheduling nondeterminism can matter.
  const std::vector<gen::GeneratedProgram> corpus =
      gen::generateCorpus(fuzz.baseSeed, fuzz.count, fuzz.gen);

  // One shared cache across the oracle sessions, exactly like run().
  std::unique_ptr<cache::PlanCache> ownedCache;
  cache::PlanCache *sharedCache = options_.config.planCache;
  if (sharedCache == nullptr && !options_.config.cacheDir.empty() &&
      options_.config.cacheMode != cache::CacheMode::Off) {
    ownedCache = std::make_unique<cache::PlanCache>(
        options_.config.cacheDir, options_.config.cacheMode);
    sharedCache = ownedCache.get();
  }

  unsigned threadCount = options_.threads;
  if (threadCount == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    threadCount = hardware > 0 ? hardware : 2;
  }
  if (threadCount > fuzz.count)
    threadCount = fuzz.count;
  result.stats.threads = threadCount;

  result.items.resize(corpus.size());
  const auto wallStart = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};

  auto worker = [&]() {
    while (true) {
      const std::size_t index = cursor.fetch_add(1);
      if (index >= corpus.size())
        return;
      const gen::GeneratedProgram &program = corpus[index];
      FuzzItem &item = result.items[index];
      item.name = program.name;
      item.seed = program.seed;
      item.provableTrips = program.provableTrips;
      item.multiTu = program.multiTu();
      if (fuzz.timeBoxSeconds > 0.0) {
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   wallStart)
                                   .count();
        if (elapsed >= fuzz.timeBoxSeconds)
          continue; // time box expired: leave ran == false
      }
      verify::OracleOptions oracleOptions;
      oracleOptions.pipeline = options_.config;
      oracleOptions.pipeline.planCache = sharedCache;
      oracleOptions.interp = fuzz.interp;
      oracleOptions.checkPredicted = fuzz.checkPredicted;
      oracleOptions.checkRewrite = fuzz.checkRewrite;
      item.verdict = verify::runOracle(program, oracleOptions);
      item.ran = true;
    }
  };

  if (threadCount == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i)
      threads.emplace_back(worker);
    for (std::thread &thread : threads)
      thread.join();
  }

  // Failure collection (and shrinking) runs sequentially in seed order so
  // the report is deterministic regardless of worker scheduling.
  for (std::size_t index = 0; index < corpus.size(); ++index) {
    const gen::GeneratedProgram &program = corpus[index];
    const FuzzItem &item = result.items[index];
    if (!item.ran) {
      ++result.stats.skippedByTimeBox;
      continue;
    }
    ++result.stats.ran;
    if (item.provableTrips)
      ++result.stats.provable;
    if (item.multiTu)
      ++result.stats.multiTu;
    result.stats.baselineBytes += item.verdict.baselineBytes;
    result.stats.planBytes += item.verdict.planBytes;
    if (item.verdict.cacheStatus == Session::PlanCacheStatus::Hit)
      ++result.stats.planCacheHits;
    else if (item.verdict.cacheStatus == Session::PlanCacheStatus::Miss)
      ++result.stats.planCacheMisses;
    if (item.verdict.ok) {
      ++result.stats.passed;
      continue;
    }
    ++result.stats.failed;

    FuzzFailure failure;
    failure.name = program.name;
    failure.seed = program.seed;
    failure.divergence = item.verdict.divergence();
    failure.source = program.combined();
    if (fuzz.shrinkFailures) {
      verify::OracleOptions oracleOptions;
      oracleOptions.pipeline = options_.config;
      oracleOptions.pipeline.planCache = nullptr; // candidates churn
      oracleOptions.interp = fuzz.interp;
      oracleOptions.checkPredicted = fuzz.checkPredicted;
      oracleOptions.checkRewrite = fuzz.checkRewrite;
      const bool provable = program.provableTrips;
      const gen::ShrinkResult shrunk = gen::shrinkProgram(
          failure.source,
          [&](const std::string &candidate) {
            const verify::OracleVerdict verdict = verify::runOracle(
                "shrink.c", candidate, provable, oracleOptions);
            return verdict.pipelineOk && !verdict.ok;
          });
      // A pipeline-dead failure never satisfies the predicate (it demands
      // a *runnable* divergence), so shrinkProgram returns the input
      // unchanged — report that honestly as "not shrunken" instead of
      // passing the full program off as a minimized repro.
      if (shrunk.reduced())
        failure.shrunken = shrunk.source;
      failure.originalStatements = shrunk.originalStatements;
      failure.shrunkenStatements = shrunk.finalStatements;
    }
    result.failures.push_back(std::move(failure));
  }

  result.stats.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wallStart)
          .count();
  return result;
}

BatchResult BatchDriver::run(const std::vector<BatchJob> &jobs) const {
  // One shared cache instance for the whole batch (and its warm-up passes):
  // concurrent sessions then serialize on its mutex for lookups/stores, and
  // hit/store counters aggregate in one place.
  std::unique_ptr<cache::PlanCache> ownedCache;
  cache::PlanCache *sharedCache = options_.config.planCache;
  if (sharedCache == nullptr && !options_.config.cacheDir.empty() &&
      options_.config.cacheMode != cache::CacheMode::Off) {
    ownedCache = std::make_unique<cache::PlanCache>(
        options_.config.cacheDir, options_.config.cacheMode);
    sharedCache = ownedCache.get();
  }
  for (unsigned pass = 0; pass < options_.warmupPasses; ++pass)
    (void)runOnce(jobs, sharedCache);
  return runOnce(jobs, sharedCache);
}

BatchResult BatchDriver::runProject(const std::vector<BatchJob> &jobs) const {
  BatchResult result;
  result.stats.jobs = static_cast<unsigned>(jobs.size());
  if (jobs.empty())
    return result;

  ProjectManifest manifest;
  manifest.name = "batch-project";
  for (const BatchJob &job : jobs) {
    ProjectTu tu;
    tu.name = job.name;
    tu.fileName = job.fileName.empty() ? job.name : job.fileName;
    tu.source = job.source;
    manifest.tus.push_back(std::move(tu));
  }

  unsigned threadCount = options_.threads;
  if (threadCount == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    threadCount = hardware > 0 ? hardware : 2;
  }
  if (threadCount > jobs.size())
    threadCount = static_cast<unsigned>(jobs.size());
  result.stats.threads = threadCount;

  // One shared cache instance for the project and its warm-up passes, as
  // in the independent-job path, so hit/store counters aggregate.
  std::unique_ptr<cache::PlanCache> ownedCache;
  PipelineConfig config = options_.config;
  if (config.planCache == nullptr && !config.cacheDir.empty() &&
      config.cacheMode != cache::CacheMode::Off) {
    ownedCache = std::make_unique<cache::PlanCache>(config.cacheDir,
                                                    config.cacheMode);
    config.planCache = ownedCache.get();
  }
  ProjectSession::Options projectOptions;
  projectOptions.threads = threadCount;
  ProjectSession project(std::move(manifest), config, projectOptions);

  // Warm-up passes populate the cache but stay outside the measured wall
  // time and counter deltas, matching the independent-job path.
  for (unsigned pass = 0; pass < options_.warmupPasses; ++pass) {
    ProjectSession warmup(project.manifest(), config, projectOptions);
    (void)warmup.run();
  }
  const cache::CacheStats cacheBefore = config.planCache != nullptr
                                            ? config.planCache->stats()
                                            : cache::CacheStats{};
  const auto wallStart = std::chrono::steady_clock::now();
  (void)project.run();
  const auto wallEnd = std::chrono::steady_clock::now();
  result.stats.wallSeconds =
      std::chrono::duration<double>(wallEnd - wallStart).count();
  if (config.planCache != nullptr) {
    const cache::CacheStats cacheAfter = config.planCache->stats();
    result.stats.planCacheStores = cacheAfter.stores - cacheBefore.stores;
    result.stats.planCacheInvalidations =
        cacheAfter.invalidations - cacheBefore.invalidations;
  }

  result.projectSchedule = project.scheduleOrder();
  for (const ProjectItem &projectItem : project.items()) {
    BatchItem item;
    item.name = projectItem.name;
    item.success = projectItem.success;
    item.report = projectItem.report;
    item.output = projectItem.output;
    item.cacheStatus = projectItem.cacheStatus;
    result.items.push_back(std::move(item));
  }
  for (const BatchItem &item : result.items) {
    if (item.success)
      ++result.stats.succeeded;
    else
      ++result.stats.failed;
    result.stats.cpuSeconds += item.report.totalSeconds;
    for (const StageTiming &timing : item.report.timings) {
      result.stats.stageSeconds[static_cast<unsigned>(timing.stage)] +=
          timing.seconds;
      result.stats.stageRuns[static_cast<unsigned>(timing.stage)] +=
          timing.runs;
    }
    if (item.cacheStatus == Session::PlanCacheStatus::Hit)
      ++result.stats.planCacheHits;
    else if (item.cacheStatus == Session::PlanCacheStatus::Miss)
      ++result.stats.planCacheMisses;
  }
  return result;
}

BatchResult BatchDriver::runOnce(const std::vector<BatchJob> &jobs,
                                 cache::PlanCache *sharedCache) const {
  BatchResult result;
  result.items.resize(jobs.size());
  result.stats.jobs = static_cast<unsigned>(jobs.size());
  if (jobs.empty())
    return result;

  unsigned threadCount = options_.threads;
  if (threadCount == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    threadCount = hardware > 0 ? hardware : 2;
  }
  if (threadCount > jobs.size())
    threadCount = static_cast<unsigned>(jobs.size());
  result.stats.threads = threadCount;

  const cache::CacheStats cacheBefore =
      sharedCache != nullptr ? sharedCache->stats() : cache::CacheStats{};
  const auto wallStart = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};

  auto worker = [&]() {
    while (true) {
      const std::size_t index = cursor.fetch_add(1);
      if (index >= jobs.size())
        return;
      const BatchJob &job = jobs[index];
      PipelineConfig config = options_.config;
      config.planCache = sharedCache;
      Session session(job.fileName.empty() ? job.name : job.fileName,
                      job.source, config);
      BatchItem &item = result.items[index];
      item.name = job.name;
      item.success = session.run();
      item.report = session.report();
      item.cacheStatus = session.planCacheStatus();
      // Respect stopAfter: only read the transformed source when the
      // rewrite stage actually ran.
      if (session.stageRuns(Stage::Rewrite) > 0)
        item.output = session.rewrite();
    }
  };

  if (threadCount == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i)
      threads.emplace_back(worker);
    for (std::thread &thread : threads)
      thread.join();
  }

  const auto wallEnd = std::chrono::steady_clock::now();
  result.stats.wallSeconds =
      std::chrono::duration<double>(wallEnd - wallStart).count();
  for (const BatchItem &item : result.items) {
    if (item.success)
      ++result.stats.succeeded;
    else
      ++result.stats.failed;
    result.stats.cpuSeconds += item.report.totalSeconds;
    for (const StageTiming &timing : item.report.timings) {
      result.stats.stageSeconds[static_cast<unsigned>(timing.stage)] +=
          timing.seconds;
      result.stats.stageRuns[static_cast<unsigned>(timing.stage)] +=
          timing.runs;
    }
    if (item.cacheStatus == Session::PlanCacheStatus::Hit)
      ++result.stats.planCacheHits;
    else if (item.cacheStatus == Session::PlanCacheStatus::Miss)
      ++result.stats.planCacheMisses;
  }
  if (sharedCache != nullptr) {
    const cache::CacheStats cacheAfter = sharedCache->stats();
    result.stats.planCacheStores = cacheAfter.stores - cacheBefore.stores;
    result.stats.planCacheInvalidations =
        cacheAfter.invalidations - cacheBefore.invalidations;
  }
  return result;
}

} // namespace ompdart
