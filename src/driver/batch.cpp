#include "driver/batch.hpp"

#include <atomic>
#include <chrono>
#include <thread>

namespace ompdart {

json::Value BatchStats::toJson() const {
  json::Value out = json::Value::object();
  out.set("jobs", jobs);
  out.set("succeeded", succeeded);
  out.set("failed", failed);
  out.set("threads", threads);
  out.set("wallSeconds", wallSeconds);
  out.set("cpuSeconds", cpuSeconds);
  out.set("speedup", speedup());
  json::Value stages = json::Value::object();
  for (const Stage stage : allStages())
    stages.set(stageName(stage), stageSeconds[static_cast<unsigned>(stage)]);
  out.set("stageSeconds", std::move(stages));
  return out;
}

BatchResult BatchDriver::run(const std::vector<BatchJob> &jobs) const {
  BatchResult result;
  result.items.resize(jobs.size());
  result.stats.jobs = static_cast<unsigned>(jobs.size());
  if (jobs.empty())
    return result;

  unsigned threadCount = options_.threads;
  if (threadCount == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    threadCount = hardware > 0 ? hardware : 2;
  }
  if (threadCount > jobs.size())
    threadCount = static_cast<unsigned>(jobs.size());
  result.stats.threads = threadCount;

  const auto wallStart = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};

  auto worker = [&]() {
    while (true) {
      const std::size_t index = cursor.fetch_add(1);
      if (index >= jobs.size())
        return;
      const BatchJob &job = jobs[index];
      Session session(job.fileName.empty() ? job.name : job.fileName,
                      job.source, options_.config);
      BatchItem &item = result.items[index];
      item.name = job.name;
      item.success = session.run();
      item.report = session.report();
      // Respect stopAfter: only read the transformed source when the
      // rewrite stage actually ran.
      if (session.stageRuns(Stage::Rewrite) > 0)
        item.output = session.rewrite();
    }
  };

  if (threadCount == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i)
      threads.emplace_back(worker);
    for (std::thread &thread : threads)
      thread.join();
  }

  const auto wallEnd = std::chrono::steady_clock::now();
  result.stats.wallSeconds =
      std::chrono::duration<double>(wallEnd - wallStart).count();
  for (const BatchItem &item : result.items) {
    if (item.success)
      ++result.stats.succeeded;
    else
      ++result.stats.failed;
    result.stats.cpuSeconds += item.report.totalSeconds;
    for (const StageTiming &timing : item.report.timings)
      result.stats.stageSeconds[static_cast<unsigned>(timing.stage)] +=
          timing.seconds;
  }
  return result;
}

} // namespace ompdart
