// Whole-program multi-TU driver (the Project layer).
//
// A `ProjectSession` analyzes a set of translation units as one program:
//
//   summaries  each TU's serialized ModuleSummary (analysis/summary) is
//              loaded from the per-TU summary cache by source hash, or
//              extracted from a fresh parse on a miss,
//   link       the whole-program §IV-C fixed point closes the summaries
//              over the cross-TU call graph, estimates whole-program
//              execution counts, aggregates call-site facts and checks
//              declaration/definition signatures,
//   plan       every TU runs through the staged single-TU `Session` with
//              its `TuImports` slice injected — bodiless in-project callees
//              analyze with their imported summaries (no "maximally
//              pessimistic" inflation), and the planner's entry-count /
//              update-execution estimator sees cross-TU call counts —
//              scheduled in reverse topological call-graph order,
//   emit       per-TU rewritten sources and reports, plus an aggregate
//              project report.
//
// Incrementality: plan-cache keys embed each TU's imports fingerprint, so
// editing one file re-parses that file (its source hash changed) and
// re-plans only the TUs whose imported facts actually changed; a
// whitespace-only edit re-extracts one summary, fingerprints equal, and
// every other TU re-hits its cached plan.
//
// A single-TU project is bit-compatible with the plain Session: the import
// slice degenerates (no externals, execution counts identical to the
// per-TU estimator by construction) and the emitted source is byte-equal —
// pinned by tests/driver/project_test.cpp.
#pragma once

#include "analysis/summary.hpp"
#include "cache/plan_cache.hpp"
#include "driver/pipeline.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ompdart {

/// Loads one TU's module summary from the plan cache's summary store (the
/// in-memory memo or disk) by source hash, or extracts it from a fresh
/// parse on a miss, storing the artifact back so the next caller skips the
/// parse. Shared by ProjectSession and the incremental replanner; safe to
/// call concurrently (the cache is thread-safe and everything else is
/// local).
[[nodiscard]] summary::ModuleSummary
loadOrExtractModuleSummary(cache::PlanCache *cache,
                           const std::string &fileName,
                           const std::string &source,
                           bool *fromCache = nullptr);

/// One translation unit of a project.
struct ProjectTu {
  std::string name;     ///< label used in results (defaults to fileName)
  std::string fileName; ///< diagnostics file name
  std::string source;
};

/// The set of translation units forming one program.
struct ProjectManifest {
  std::string name = "project";
  std::vector<ProjectTu> tus;

  /// Loads a manifest JSON file:
  ///   { "name": "app", "tus": ["main.c", {"file": "kernel.c"}] }
  /// TU paths resolve relative to the manifest's directory; each listed
  /// file is read into its TU's source. Returns nullopt (and sets `error`)
  /// on malformed documents or unreadable files.
  [[nodiscard]] static std::optional<ProjectManifest>
  fromJsonFile(const std::string &path, std::string *error = nullptr);
};

/// Per-TU outcome of a project run, in manifest order.
struct ProjectItem {
  std::string name;
  bool success = false;
  Report report;
  /// Transformed source (empty when the rewrite stage did not run).
  std::string output;
  Session::PlanCacheStatus cacheStatus = Session::PlanCacheStatus::Disabled;
  /// The TU's module summary came from the summary cache (no link-phase
  /// parse happened).
  bool summaryFromCache = false;
  /// Content fingerprint of the TU's module summary.
  std::string summaryFingerprint;
};

class ProjectSession {
public:
  struct Options {
    /// Worker threads for the per-TU plan phase; 0/1 = sequential. The
    /// link phase is always sequential (it is a fixed point).
    unsigned threads = 1;
  };

  ProjectSession(ProjectManifest manifest, PipelineConfig config,
                 Options options);
  explicit ProjectSession(ProjectManifest manifest,
                          PipelineConfig config = {});

  ProjectSession(const ProjectSession &) = delete;
  ProjectSession &operator=(const ProjectSession &) = delete;

  /// Runs summaries -> link -> per-TU pipelines. Returns `success()`.
  bool run();

  [[nodiscard]] bool success() const { return ran_ && success_; }

  /// Per-TU outcomes in manifest order (empty before `run()`).
  [[nodiscard]] const std::vector<ProjectItem> &items() const {
    return items_;
  }
  /// TU names in the order they were scheduled (reverse topological over
  /// the cross-TU call graph: callees before callers).
  [[nodiscard]] const std::vector<std::string> &scheduleOrder() const {
    return scheduleOrder_;
  }
  /// The whole-program link result (closed summaries, execution counts,
  /// signature diagnostics).
  [[nodiscard]] const summary::LinkResult &link() const { return link_; }
  /// Link-level diagnostics (signature mismatches, duplicate definitions).
  [[nodiscard]] const std::vector<Diagnostic> &linkDiagnostics() const {
    return link_.diagnostics;
  }
  /// The per-TU module summaries, in manifest order.
  [[nodiscard]] const std::vector<summary::ModuleSummary> &
  moduleSummaries() const {
    return modules_;
  }
  /// The per-TU import slices, in manifest order.
  [[nodiscard]] const std::vector<summary::TuImports> &tuImports() const {
    return imports_;
  }
  /// The Session that planned a TU (by name); null before `run()` or for
  /// unknown names. Useful for inspecting stage artifacts (interproc
  /// summaries, IR) after a project run.
  [[nodiscard]] Session *sessionFor(const std::string &name);

  [[nodiscard]] const ProjectManifest &manifest() const { return manifest_; }

  /// Aggregate project report: schedule, link facts, per-TU reports, and
  /// (when a cache is configured) plan/summary cache counters.
  [[nodiscard]] json::Value reportJson() const;

private:
  [[nodiscard]] cache::PlanCache *activeCache();
  void loadOrExtractSummaries(cache::PlanCache *cache);
  void runSessions(cache::PlanCache *cache);

  ProjectManifest manifest_;
  PipelineConfig config_;
  Options options_;
  std::unique_ptr<cache::PlanCache> ownedCache_;

  std::vector<summary::ModuleSummary> modules_;
  /// char, not bool: worker threads write distinct elements concurrently,
  /// which vector<bool>'s bit packing would turn into a data race.
  std::vector<char> summaryCached_;
  summary::LinkResult link_;
  /// Stable storage: sessions hold non-owning pointers into this.
  std::vector<summary::TuImports> imports_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<ProjectItem> items_;
  std::vector<std::string> scheduleOrder_;
  bool ran_ = false;
  bool success_ = false;
};

} // namespace ompdart
