#include "driver/incremental.hpp"

#include "support/hash.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

namespace ompdart {

namespace {

/// Runs `worker` on up to `threads` threads (inline when <= 1). Workers
/// pull indices from a shared cursor, so callers pass a closure that loops.
void runPool(unsigned threads, std::size_t jobs,
             const std::function<void()> &worker) {
  if (threads > jobs)
    threads = static_cast<unsigned>(jobs);
  if (threads <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    pool.emplace_back(worker);
  for (std::thread &thread : pool)
    thread.join();
}

} // namespace

const char *replanReasonName(ReplanReason reason) {
  switch (reason) {
  case ReplanReason::Reused:
    return "reused";
  case ReplanReason::Initial:
    return "initial";
  case ReplanReason::SourceChanged:
    return "source-changed";
  case ReplanReason::ImportsChanged:
    return "imports-changed";
  }
  return "unknown";
}

json::Value IncrementalResult::toJson() const {
  json::Value doc = json::Value::object();
  doc.set("success", success);
  doc.set("linkPasses", linkPasses);
  doc.set("summariesExtracted", summariesExtracted);
  doc.set("summariesReused", summariesReused);
  doc.set("tusReplanned", tusReplanned);
  doc.set("tusReused", tusReused);
  doc.set("wallSeconds", wallSeconds);

  json::Value scheduleJson = json::Value::array();
  for (const std::string &name : scheduleOrder)
    scheduleJson.push(name);
  doc.set("schedule", std::move(scheduleJson));

  json::Value runsJson = json::Value::object();
  for (const Stage stage : allStages())
    runsJson.set(stageName(stage), stageRuns[static_cast<unsigned>(stage)]);
  doc.set("stageRuns", std::move(runsJson));

  json::Value secondsJson = json::Value::object();
  for (const Stage stage : allStages())
    secondsJson.set(stageName(stage),
                    stageSeconds[static_cast<unsigned>(stage)]);
  doc.set("stageSeconds", std::move(secondsJson));

  json::Value linkDiagsJson = json::Value::array();
  for (const Diagnostic &diag : linkDiagnostics)
    linkDiagsJson.push(diagnosticToJson(diag));
  doc.set("linkDiagnostics", std::move(linkDiagsJson));

  json::Value tusJson = json::Value::array();
  for (const IncrementalTuResult &tu : tus) {
    json::Value tuJson = json::Value::object();
    tuJson.set("name", tu.name);
    tuJson.set("reason", replanReasonName(tu.reason));
    tuJson.set("summaryReused", tu.summaryReused);
    tuJson.set("success", tu.item.success);
    tusJson.push(std::move(tuJson));
  }
  doc.set("tus", std::move(tusJson));
  return doc;
}

IncrementalProject::IncrementalProject(PipelineConfig config,
                                       Options options)
    : config_(std::move(config)), options_(options) {}

IncrementalProject::IncrementalProject(PipelineConfig config)
    : IncrementalProject(std::move(config), Options()) {}

cache::PlanCache *IncrementalProject::activeCache() {
  if (config_.planCache != nullptr)
    return config_.planCache;
  if (ownedCache_ == nullptr && !config_.cacheDir.empty() &&
      config_.cacheMode != cache::CacheMode::Off)
    ownedCache_ = std::make_unique<cache::PlanCache>(config_.cacheDir,
                                                     config_.cacheMode);
  return ownedCache_.get();
}

void IncrementalProject::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_.clear();
}

std::size_t IncrementalProject::heldTus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.size();
}

IncrementalResult
IncrementalProject::replan(const std::vector<ProjectTu> &tus) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto wallStart = std::chrono::steady_clock::now();

  IncrementalResult result;
  result.tus.resize(tus.size());
  if (tus.empty()) {
    result.success = true;
    return result;
  }

  cache::PlanCache *cache = activeCache();

  // Phase 1 — summaries: reuse the held ModuleSummary when the source hash
  // is unchanged; otherwise extract (via the summary cache) in parallel.
  std::vector<std::string> sourceHashes(tus.size());
  std::vector<summary::ModuleSummary> modules(tus.size());
  std::vector<char> summaryReused(tus.size(), 0);
  std::atomic<std::size_t> cursor{0};
  runPool(options_.threads, tus.size(), [&]() {
    while (true) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= tus.size())
        return;
      const ProjectTu &tu = tus[i];
      sourceHashes[i] = hash::fingerprint(tu.source);
      const auto held = state_.find(tu.name);
      if (held != state_.end() && held->second.sourceHash == sourceHashes[i]) {
        modules[i] = held->second.module;
        modules[i].rebindFile(tu.fileName);
        summaryReused[i] = 1;
        continue;
      }
      modules[i] = loadOrExtractModuleSummary(cache, tu.fileName, tu.source);
    }
  });

  // Phase 2 — link fixed point over the full summary set (sequential: it
  // is a whole-program fixed point), then per-TU import slices.
  const summary::LinkResult link = summary::linkProgram(modules);
  result.linkPasses = link.passes;
  result.linkDiagnostics = link.diagnostics;

  std::vector<summary::TuImports> imports;
  imports.reserve(tus.size());
  for (const summary::ModuleSummary &module : modules)
    imports.push_back(summary::buildTuImports(module, link));

  // Phase 3 — decide reuse per TU. The decision mirrors the plan-cache key
  // (source hash + imports fingerprint; config fixed per instance), so a
  // reused item equals what a fresh Session would emit.
  std::vector<std::string> importsFingerprints(tus.size());
  std::vector<std::size_t> toPlan;
  for (std::size_t i = 0; i < tus.size(); ++i) {
    importsFingerprints[i] = imports[i].fingerprint();
    IncrementalTuResult &tu = result.tus[i];
    tu.name = tus[i].name;
    tu.summaryReused = summaryReused[i] != 0;
    const auto held = state_.find(tus[i].name);
    if (held == state_.end()) {
      tu.reason = ReplanReason::Initial;
    } else if (held->second.sourceHash != sourceHashes[i]) {
      tu.reason = ReplanReason::SourceChanged;
    } else if (held->second.importsFingerprint != importsFingerprints[i]) {
      tu.reason = ReplanReason::ImportsChanged;
    } else {
      tu.reason = ReplanReason::Reused;
      tu.item = held->second.item;
      continue;
    }
    toPlan.push_back(i);
  }

  // Phase 4 — plan the invalidated TUs in reverse topological call-graph
  // order (callees first, matching ProjectSession), over the worker pool.
  const std::vector<std::size_t> topo =
      summary::reverseTopologicalOrder(modules);
  std::vector<char> needsPlan(tus.size(), 0);
  for (const std::size_t index : toPlan)
    needsPlan[index] = 1;
  std::vector<std::size_t> planOrder;
  planOrder.reserve(toPlan.size());
  for (const std::size_t index : topo)
    if (needsPlan[index] != 0)
      planOrder.push_back(index);
  for (const std::size_t index : planOrder)
    result.scheduleOrder.push_back(tus[index].name);

  std::vector<std::array<unsigned, kStageCount>> sessionRuns(
      planOrder.size());
  std::vector<std::array<double, kStageCount>> sessionSeconds(
      planOrder.size());
  std::atomic<std::size_t> planCursor{0};
  runPool(options_.threads, planOrder.size(), [&]() {
    while (true) {
      const std::size_t slot = planCursor.fetch_add(1);
      if (slot >= planOrder.size())
        return;
      const std::size_t index = planOrder[slot];
      const ProjectTu &tu = tus[index];
      PipelineConfig config = config_;
      config.imports = &imports[index];
      if (cache != nullptr)
        config.planCache = cache;
      Session session(tu.fileName, tu.source, config);
      ProjectItem &item = result.tus[index].item;
      item.name = tu.name;
      item.summaryFromCache = summaryReused[index] != 0;
      item.summaryFingerprint = modules[index].fingerprint();
      item.success = session.run();
      item.report = session.report();
      item.cacheStatus = session.planCacheStatus();
      if (session.stageRuns(Stage::Rewrite) > 0)
        item.output = session.rewrite();
      for (const Stage stage : allStages()) {
        sessionRuns[slot][static_cast<unsigned>(stage)] =
            session.stageRuns(stage);
        sessionSeconds[slot][static_cast<unsigned>(stage)] =
            session.stageSeconds(stage);
      }
    }
  });

  // Phase 5 — fold results and refresh the held state.
  for (const auto &runs : sessionRuns)
    for (unsigned stage = 0; stage < kStageCount; ++stage)
      result.stageRuns[stage] += runs[stage];
  for (const auto &seconds : sessionSeconds)
    for (unsigned stage = 0; stage < kStageCount; ++stage)
      result.stageSeconds[stage] += seconds[stage];

  result.success = true;
  for (std::size_t i = 0; i < tus.size(); ++i) {
    IncrementalTuResult &tu = result.tus[i];
    if (tu.replanned())
      ++result.tusReplanned;
    else
      ++result.tusReused;
    if (tu.summaryReused)
      ++result.summariesReused;
    else
      ++result.summariesExtracted;
    result.success = result.success && tu.item.success;
  }
  for (const Diagnostic &diag : link.diagnostics)
    if (diag.severity == Severity::Error)
      result.success = false;

  std::map<std::string, TuState> nextState;
  for (std::size_t i = 0; i < tus.size(); ++i) {
    TuState held;
    held.sourceHash = std::move(sourceHashes[i]);
    held.module = std::move(modules[i]);
    held.importsFingerprint = std::move(importsFingerprints[i]);
    held.item = result.tus[i].item;
    nextState[tus[i].name] = std::move(held);
  }
  // Replacing (not merging) drops TUs that left the project.
  state_ = std::move(nextState);

  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wallStart)
          .count();
  return result;
}

} // namespace ompdart
