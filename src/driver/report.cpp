#include "driver/report.hpp"

namespace ompdart {

const std::vector<Stage> &allStages() {
  static const std::vector<Stage> stages = {
      Stage::Parse, Stage::Cfg,     Stage::Interproc, Stage::Plan,
      Stage::Check, Stage::Rewrite, Stage::Metrics};
  return stages;
}

const char *stageName(Stage stage) {
  switch (stage) {
  case Stage::Parse:
    return "parse";
  case Stage::Cfg:
    return "cfg";
  case Stage::Interproc:
    return "interproc";
  case Stage::Plan:
    return "plan";
  case Stage::Check:
    return "check";
  case Stage::Rewrite:
    return "rewrite";
  case Stage::Metrics:
    return "metrics";
  }
  return "unknown";
}

std::optional<Stage> stageFromName(const std::string &name) {
  for (const Stage stage : allStages())
    if (name == stageName(stage))
      return stage;
  return std::nullopt;
}

json::Value Report::toJson() const {
  json::Value out = json::Value::object();
  out.set("file", fileName);
  out.set("success", success);
  out.set("stoppedAfter", stoppedAfter);

  json::Value metricsJson = json::Value::object();
  metricsJson.set("kernels", metrics.kernels);
  metricsJson.set("offloadedLines", metrics.offloadedLines);
  metricsJson.set("mappedVariables", metrics.mappedVariables);
  metricsJson.set("possibleMappings", metrics.possibleMappings);
  out.set("metrics", std::move(metricsJson));

  json::Value timingsJson = json::Value::array();
  for (const StageTiming &timing : timings) {
    json::Value entry = json::Value::object();
    entry.set("stage", stageName(timing.stage));
    entry.set("seconds", timing.seconds);
    entry.set("runs", timing.runs);
    timingsJson.push(std::move(entry));
  }
  out.set("timings", std::move(timingsJson));
  out.set("totalSeconds", totalSeconds);

  json::Value diagnosticsJson = json::Value::array();
  for (const Diagnostic &diag : diagnostics)
    diagnosticsJson.push(diagnosticToJson(diag));
  out.set("diagnostics", std::move(diagnosticsJson));

  // Single plan schema: the embedded Mapping IR serializes itself.
  out.set("plan", plan.toJson());

  if (!output.empty())
    out.set("output", output);

  if (planCache) {
    json::Value cacheJson = json::Value::object();
    cacheJson.set("status", planCache->status);
    cacheJson.set("keyId", planCache->keyId);
    cacheJson.set("lookups", planCache->lookups);
    cacheJson.set("hits", planCache->hits);
    cacheJson.set("misses", planCache->misses);
    cacheJson.set("stores", planCache->stores);
    cacheJson.set("invalidations", planCache->invalidations);
    cacheJson.set("memoHits", planCache->memoHits);
    cacheJson.set("summaryLookups", planCache->summaryLookups);
    cacheJson.set("summaryHits", planCache->summaryHits);
    cacheJson.set("summaryMisses", planCache->summaryMisses);
    cacheJson.set("summaryStores", planCache->summaryStores);
    cacheJson.set("summaryMemoHits", planCache->summaryMemoHits);
    out.set("planCache", std::move(cacheJson));
  }

  if (check)
    out.set("check", check->toJson());
  return out;
}

std::optional<Report> Report::fromJson(const json::Value &value,
                                       std::string *error) {
  if (!value.isObject()) {
    json::setFirstError(error, "report document must be a JSON object");
    return std::nullopt;
  }
  Report report;
  report.fileName = value.stringOr("file");
  report.success = value.boolOr("success");
  report.stoppedAfter = value.stringOr("stoppedAfter");
  report.totalSeconds = value.doubleOr("totalSeconds");
  report.output = value.stringOr("output");

  if (const json::Value *metricsJson = value.find("metrics")) {
    report.metrics.kernels =
        static_cast<unsigned>(metricsJson->uintOr("kernels"));
    report.metrics.offloadedLines =
        static_cast<unsigned>(metricsJson->uintOr("offloadedLines"));
    report.metrics.mappedVariables =
        static_cast<unsigned>(metricsJson->uintOr("mappedVariables"));
    report.metrics.possibleMappings = metricsJson->uintOr("possibleMappings");
  }

  if (const json::Value *timingsJson = value.find("timings")) {
    for (const json::Value &entry : timingsJson->items()) {
      const std::optional<Stage> stage =
          stageFromName(entry.stringOr("stage"));
      if (!stage) {
        json::setFirstError(error, "timing entry names an unknown stage");
        return std::nullopt;
      }
      StageTiming timing;
      timing.stage = *stage;
      timing.seconds = entry.doubleOr("seconds");
      timing.runs = static_cast<unsigned>(entry.uintOr("runs"));
      report.timings.push_back(timing);
    }
  }

  if (const json::Value *diagnosticsJson = value.find("diagnostics")) {
    for (const json::Value &entry : diagnosticsJson->items()) {
      std::optional<Diagnostic> diag = diagnosticFromJson(entry);
      if (!diag) {
        json::setFirstError(error, "diagnostic entry names an unknown severity");
        return std::nullopt;
      }
      report.diagnostics.push_back(std::move(*diag));
    }
  }

  if (const json::Value *planJson = value.find("plan")) {
    std::optional<ir::MappingIr> plan =
        ir::MappingIr::fromJson(*planJson, error);
    if (!plan)
      return std::nullopt;
    report.plan = std::move(*plan);
  }

  if (const json::Value *cacheJson = value.find("planCache")) {
    PlanCacheReport cache;
    cache.status = cacheJson->stringOr("status");
    cache.keyId = cacheJson->stringOr("keyId");
    cache.lookups = cacheJson->uintOr("lookups");
    cache.hits = cacheJson->uintOr("hits");
    cache.misses = cacheJson->uintOr("misses");
    cache.stores = cacheJson->uintOr("stores");
    cache.invalidations = cacheJson->uintOr("invalidations");
    cache.memoHits = cacheJson->uintOr("memoHits");
    cache.summaryLookups = cacheJson->uintOr("summaryLookups");
    cache.summaryHits = cacheJson->uintOr("summaryHits");
    cache.summaryMisses = cacheJson->uintOr("summaryMisses");
    cache.summaryStores = cacheJson->uintOr("summaryStores");
    cache.summaryMemoHits = cacheJson->uintOr("summaryMemoHits");
    report.planCache = std::move(cache);
  }

  if (const json::Value *checkJson = value.find("check")) {
    std::optional<check::CheckResult> result =
        check::CheckResult::fromJson(*checkJson);
    if (!result) {
      json::setFirstError(error, "check entry is not a valid check result");
      return std::nullopt;
    }
    report.check = std::move(*result);
  }

  return report;
}

bool Report::operator==(const Report &other) const {
  return fileName == other.fileName && success == other.success &&
         stoppedAfter == other.stoppedAfter && metrics == other.metrics &&
         timings == other.timings && totalSeconds == other.totalSeconds &&
         diagnostics == other.diagnostics && plan == other.plan &&
         output == other.output && planCache == other.planCache &&
         check == other.check;
}

} // namespace ompdart
