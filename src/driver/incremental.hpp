// Incremental whole-program replanning (the plan server's project engine).
//
// `ProjectSession` is one-shot: every `project` request re-extracts every
// TU's summary (or at least re-reads the artifact), re-links, and runs a
// Session per TU — even when the request differs from the previous one by a
// single edit. `IncrementalProject` is the long-lived counterpart: it holds
// the previous replan's per-TU state (source hash, module summary, imports
// fingerprint, planned item) and on the next request
//
//   1. re-extracts summaries ONLY for TUs whose source hash changed
//      (unchanged TUs reuse the held ModuleSummary object — no parse, no
//      disk, no JSON),
//   2. re-runs the link fixed point over the full summary set (the fixed
//      point is whole-program by definition, but it is cheap next to
//      planning),
//   3. re-plans ONLY the TUs whose source hash or imports fingerprint
//      changed; every other TU's item is served from the held state with
//      zero pipeline stage executions.
//
// The reuse decision mirrors the plan-cache key exactly (source hash +
// imports fingerprint; the config is fixed per instance), so a served-from-
// state item is byte-identical to what a fresh Session would produce — the
// cache-key equality IS the proof. tests/driver/incremental_test.cpp pins
// this against ProjectSession outputs.
#pragma once

#include "driver/pipeline.hpp"
#include "driver/project.hpp"

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ompdart {

/// Why a TU ran (or skipped) a pipeline Session during a replan.
enum class ReplanReason {
  Reused,         ///< source and imports unchanged: served from held state
  Initial,        ///< first time this TU name was seen
  SourceChanged,  ///< the TU's own source hash changed
  ImportsChanged, ///< a dependency's facts changed this TU's imports
};

[[nodiscard]] const char *replanReasonName(ReplanReason reason);

/// Per-TU outcome of one replan, in request order.
struct IncrementalTuResult {
  std::string name;
  ReplanReason reason = ReplanReason::Initial;
  /// The TU's module summary was reused from held state (no extraction and
  /// no summary-cache lookup happened this replan).
  bool summaryReused = false;
  ProjectItem item;

  [[nodiscard]] bool replanned() const {
    return reason != ReplanReason::Reused;
  }
};

/// Outcome of one replan request.
struct IncrementalResult {
  bool success = false;
  std::vector<IncrementalTuResult> tus; ///< request order
  /// Names of the TUs that actually ran a Session, in the (reverse
  /// topological) order they were scheduled.
  std::vector<std::string> scheduleOrder;
  /// Link-level diagnostics of this replan's fixed point.
  std::vector<Diagnostic> linkDiagnostics;
  unsigned linkPasses = 0;
  unsigned summariesExtracted = 0; ///< summaries refreshed (parse or cache)
  unsigned summariesReused = 0;    ///< summaries served from held state
  unsigned tusReplanned = 0;
  unsigned tusReused = 0;
  /// Pipeline stage executions across THIS replan's sessions only; reused
  /// TUs contribute zero by construction — the observable proof the replan
  /// was incremental.
  std::array<unsigned, kStageCount> stageRuns{};
  /// Wall seconds per stage summed across this replan's sessions.
  std::array<double, kStageCount> stageSeconds{};
  double wallSeconds = 0.0;

  [[nodiscard]] const IncrementalTuResult *
  find(const std::string &name) const {
    for (const IncrementalTuResult &tu : tus)
      if (tu.name == name)
        return &tu;
    return nullptr;
  }
  [[nodiscard]] json::Value toJson() const;
};

/// Long-lived whole-program replanner. Thread-safe: replans serialize on an
/// internal mutex (the per-TU phases inside one replan still fan out over
/// the worker pool).
class IncrementalProject {
public:
  struct Options {
    /// Worker threads for the summary and plan phases; 0/1 = sequential.
    unsigned threads = 1;
  };

  IncrementalProject(PipelineConfig config, Options options);
  explicit IncrementalProject(PipelineConfig config);

  IncrementalProject(const IncrementalProject &) = delete;
  IncrementalProject &operator=(const IncrementalProject &) = delete;

  /// Replans `tus` as one program against the held state. TUs are matched
  /// to held state by name; names that disappeared are dropped, new names
  /// plan as Initial.
  [[nodiscard]] IncrementalResult replan(const std::vector<ProjectTu> &tus);

  /// Drops all held state: the next replan is a full plan.
  void invalidate();

  /// Number of TUs currently held.
  [[nodiscard]] std::size_t heldTus() const;

private:
  struct TuState {
    std::string sourceHash;
    summary::ModuleSummary module;
    std::string importsFingerprint;
    ProjectItem item;
  };

  [[nodiscard]] cache::PlanCache *activeCache();

  PipelineConfig config_;
  Options options_;
  std::unique_ptr<cache::PlanCache> ownedCache_;
  mutable std::mutex mutex_;
  std::map<std::string, TuState> state_;
};

} // namespace ompdart
