#include "driver/project.hpp"

#include "frontend/parser.hpp"
#include "support/hash.hpp"
#include "support/source_manager.hpp"
#include "support/version.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace ompdart {

namespace fs = std::filesystem;

namespace {

/// Summary-cache keys fingerprint the source and the artifact format; the
/// artifact is config-independent (direct effects + call edges only), so
/// ablation switches never invalidate it.
cache::CacheKey summaryKeyFor(const std::string &source) {
  cache::CacheKey key;
  key.sourceHash = hash::fingerprint(source);
  key.configHash =
      "module-summary-v" + std::to_string(summary::ModuleSummary::kVersion);
  key.toolVersion = kToolVersion;
  return key;
}

std::optional<std::string> readFileText(const fs::path &path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

} // namespace

summary::ModuleSummary
loadOrExtractModuleSummary(cache::PlanCache *cache,
                           const std::string &fileName,
                           const std::string &source, bool *fromCache) {
  if (fromCache != nullptr)
    *fromCache = false;
  const cache::CacheKey key = summaryKeyFor(source);
  if (cache != nullptr && cache->enabled()) {
    if (const auto payload = cache->lookupSummary(key)) {
      if (auto module = summary::ModuleSummary::fromJson(*payload)) {
        // The cached artifact may carry another path for identical
        // content; the facts are path-independent, but the labels —
        // including the file-qualified prefixes of static-function
        // linked names — must follow this project's TU.
        module->rebindFile(fileName);
        if (fromCache != nullptr)
          *fromCache = true;
        return std::move(*module);
      }
    }
  }
  // Link-phase parse: summary extraction only (the plan phase's Session
  // owns the authoritative parse and its diagnostics).
  SourceManager sourceManager(fileName, source);
  ASTContext context;
  DiagnosticEngine diags;
  summary::ModuleSummary module;
  module.file = fileName;
  if (parseSource(sourceManager, context, diags) && !diags.hasErrors()) {
    module = summary::extractModuleSummary(context.unit(), fileName);
    // enabled(), not writable(): a read-only cache still memoizes the
    // artifact in memory, so a long-lived process re-extracts a given
    // source hash at most once.
    if (cache != nullptr && cache->enabled())
      cache->storeSummary(key, module.toJson());
  }
  return module;
}

std::optional<ProjectManifest>
ProjectManifest::fromJsonFile(const std::string &path, std::string *error) {
  const auto text = readFileText(path);
  if (!text) {
    json::setFirstError(error, "cannot read the manifest file");
    return std::nullopt;
  }
  const auto doc = json::Value::parse(*text, error);
  if (!doc)
    return std::nullopt;
  if (!doc->isObject()) {
    json::setFirstError(error, "manifest must be a JSON object");
    return std::nullopt;
  }
  ProjectManifest manifest;
  manifest.name = doc->stringOr("name", "project");
  const json::Value *tusJson = doc->find("tus");
  if (tusJson == nullptr || !tusJson->isArray() || tusJson->items().empty()) {
    json::setFirstError(error, "manifest needs a non-empty 'tus' array");
    return std::nullopt;
  }
  const fs::path baseDir = fs::path(path).parent_path();
  for (const json::Value &entry : tusJson->items()) {
    ProjectTu tu;
    std::string file;
    if (entry.kind() == json::Value::Kind::String) {
      file = entry.asString();
    } else if (entry.isObject()) {
      file = entry.stringOr("file");
      tu.name = entry.stringOr("name");
    }
    if (file.empty()) {
      json::setFirstError(error,
                          "each manifest TU must be a file path or an "
                          "object with a 'file' member");
      return std::nullopt;
    }
    const fs::path resolved =
        fs::path(file).is_absolute() ? fs::path(file) : baseDir / file;
    const auto source = readFileText(resolved);
    if (!source) {
      if (error != nullptr && error->empty())
        *error = "cannot read TU '" + resolved.string() + "'";
      return std::nullopt;
    }
    tu.fileName = resolved.string();
    // Default names keep the manifest-relative path (not the basename):
    // two TUs named a/util.c and b/util.c must stay distinguishable in
    // results and per-TU output files.
    if (tu.name.empty())
      tu.name = file;
    tu.source = *source;
    manifest.tus.push_back(std::move(tu));
  }
  return manifest;
}

ProjectSession::ProjectSession(ProjectManifest manifest,
                               PipelineConfig config)
    : ProjectSession(std::move(manifest), std::move(config), Options()) {}

ProjectSession::ProjectSession(ProjectManifest manifest,
                               PipelineConfig config, Options options)
    : manifest_(std::move(manifest)), config_(std::move(config)),
      options_(options) {
  for (ProjectTu &tu : manifest_.tus) {
    if (tu.fileName.empty())
      tu.fileName = tu.name;
    if (tu.name.empty())
      tu.name = tu.fileName;
  }
}

cache::PlanCache *ProjectSession::activeCache() {
  if (config_.planCache != nullptr)
    return config_.planCache;
  if (ownedCache_ == nullptr && !config_.cacheDir.empty() &&
      config_.cacheMode != cache::CacheMode::Off)
    ownedCache_ = std::make_unique<cache::PlanCache>(config_.cacheDir,
                                                     config_.cacheMode);
  return ownedCache_.get();
}

void ProjectSession::loadOrExtractSummaries(cache::PlanCache *cache) {
  modules_.assign(manifest_.tus.size(), summary::ModuleSummary{});
  summaryCached_.assign(manifest_.tus.size(), false);

  // Per-TU extraction is independent (the cache is thread-safe), so cold
  // starts use the same worker-pool width as the plan phase.
  std::atomic<std::size_t> cursor{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= manifest_.tus.size())
        return;
      const ProjectTu &tu = manifest_.tus[i];
      bool fromCache = false;
      modules_[i] = loadOrExtractModuleSummary(cache, tu.fileName,
                                               tu.source, &fromCache);
      summaryCached_[i] = fromCache;
    }
  };
  unsigned threadCount = options_.threads;
  if (threadCount > manifest_.tus.size())
    threadCount = static_cast<unsigned>(manifest_.tus.size());
  if (threadCount <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i)
      threads.emplace_back(worker);
    for (std::thread &thread : threads)
      thread.join();
  }
}

void ProjectSession::runSessions(cache::PlanCache *cache) {
  sessions_.clear();
  sessions_.resize(manifest_.tus.size());
  items_.assign(manifest_.tus.size(), ProjectItem{});

  // Plan TUs in reverse topological call-graph order (callees first). With
  // the import slices precomputed the order does not change results; it
  // matches the direction facts flow, keeps warm-cache behavior
  // deterministic, and is the order a future pipelined scheduler would
  // stream artifacts in.
  const std::vector<std::size_t> order =
      summary::reverseTopologicalOrder(modules_);
  scheduleOrder_.clear();
  for (const std::size_t index : order)
    scheduleOrder_.push_back(manifest_.tus[index].name);

  std::atomic<std::size_t> cursor{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t slot = cursor.fetch_add(1);
      if (slot >= order.size())
        return;
      const std::size_t index = order[slot];
      const ProjectTu &tu = manifest_.tus[index];
      PipelineConfig config = config_;
      config.imports = &imports_[index];
      if (cache != nullptr)
        config.planCache = cache;
      auto session =
          std::make_unique<Session>(tu.fileName, tu.source, config);
      ProjectItem &item = items_[index];
      item.name = tu.name;
      item.summaryFromCache = summaryCached_[index];
      item.summaryFingerprint = modules_[index].fingerprint();
      item.success = session->run();
      item.report = session->report();
      item.cacheStatus = session->planCacheStatus();
      if (session->stageRuns(Stage::Rewrite) > 0)
        item.output = session->rewrite();
      sessions_[index] = std::move(session);
    }
  };

  unsigned threadCount = options_.threads;
  if (threadCount > order.size())
    threadCount = static_cast<unsigned>(order.size());
  if (threadCount <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i)
      threads.emplace_back(worker);
    for (std::thread &thread : threads)
      thread.join();
  }
}

bool ProjectSession::run() {
  if (ran_)
    return success_;
  ran_ = true;

  cache::PlanCache *cache = activeCache();
  loadOrExtractSummaries(cache);
  link_ = summary::linkProgram(modules_);

  imports_.clear();
  imports_.reserve(modules_.size());
  for (const summary::ModuleSummary &module : modules_)
    imports_.push_back(summary::buildTuImports(module, link_));

  runSessions(cache);

  success_ = true;
  for (const ProjectItem &item : items_)
    success_ = success_ && item.success;
  for (const Diagnostic &diag : link_.diagnostics)
    if (diag.severity == Severity::Error)
      success_ = false;
  return success_;
}

Session *ProjectSession::sessionFor(const std::string &name) {
  for (std::size_t i = 0; i < manifest_.tus.size(); ++i)
    if (manifest_.tus[i].name == name && i < sessions_.size())
      return sessions_[i].get();
  return nullptr;
}

json::Value ProjectSession::reportJson() const {
  json::Value doc = json::Value::object();
  doc.set("project", manifest_.name);
  doc.set("success", success_);

  json::Value scheduleJson = json::Value::array();
  for (const std::string &name : scheduleOrder_)
    scheduleJson.push(name);
  doc.set("schedule", std::move(scheduleJson));

  json::Value linkJson = json::Value::object();
  linkJson.set("passes", link_.passes);
  json::Value definedInJson = json::Value::object();
  for (const auto &[fn, file] : link_.definedIn)
    definedInJson.set(fn, file);
  linkJson.set("definedIn", std::move(definedInJson));
  json::Value executionsJson = json::Value::object();
  for (const auto &[fn, count] : link_.executions)
    executionsJson.set(fn, count);
  linkJson.set("executions", std::move(executionsJson));
  json::Value linkDiagsJson = json::Value::array();
  for (const Diagnostic &diag : link_.diagnostics)
    linkDiagsJson.push(diagnosticToJson(diag));
  linkJson.set("diagnostics", std::move(linkDiagsJson));
  doc.set("link", std::move(linkJson));

  json::Value tusJson = json::Value::array();
  for (const ProjectItem &item : items_) {
    json::Value tuJson = json::Value::object();
    tuJson.set("name", item.name);
    tuJson.set("success", item.success);
    tuJson.set("summaryFromCache", item.summaryFromCache);
    tuJson.set("summaryFingerprint", item.summaryFingerprint);
    tuJson.set("report", item.report.toJson());
    tusJson.push(std::move(tuJson));
  }
  doc.set("tus", std::move(tusJson));

  if (config_.planCache != nullptr || ownedCache_ != nullptr) {
    const cache::PlanCache *cache =
        config_.planCache != nullptr ? config_.planCache : ownedCache_.get();
    doc.set("planCache", cache->stats().toJson());
  }
  return doc;
}

} // namespace ompdart
