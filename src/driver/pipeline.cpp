#include "driver/pipeline.hpp"

#include "check/checker.hpp"
#include "frontend/parser.hpp"
#include "mapping/backend.hpp"
#include "support/hash.hpp"
#include "support/version.hpp"

#include <chrono>
#include <set>

namespace ompdart {

namespace {

/// Scans for pre-existing data-mapping directives (paper §IV-A: the input
/// "should not include any instances of target data or target update").
bool containsDataDirectives(const Stmt *stmt) {
  if (stmt == nullptr)
    return false;
  if (stmt->kind() == StmtKind::OmpDirective) {
    const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
    switch (directive->directive()) {
    case OmpDirectiveKind::TargetData:
    case OmpDirectiveKind::TargetEnterData:
    case OmpDirectiveKind::TargetExitData:
    case OmpDirectiveKind::TargetUpdate:
      return true;
    default:
      return containsDataDirectives(directive->associated());
    }
  }
  switch (stmt->kind()) {
  case StmtKind::Compound:
    for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
      if (containsDataDirectives(sub))
        return true;
    return false;
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    return containsDataDirectives(ifStmt->thenStmt()) ||
           containsDataDirectives(ifStmt->elseStmt());
  }
  case StmtKind::For:
    return containsDataDirectives(static_cast<const ForStmt *>(stmt)->body());
  case StmtKind::While:
    return containsDataDirectives(
        static_cast<const WhileStmt *>(stmt)->body());
  case StmtKind::Do:
    return containsDataDirectives(static_cast<const DoStmt *>(stmt)->body());
  case StmtKind::Switch:
    return containsDataDirectives(
        static_cast<const SwitchStmt *>(stmt)->body());
  case StmtKind::Case:
    return containsDataDirectives(static_cast<const CaseStmt *>(stmt)->sub());
  case StmtKind::Default:
    return containsDataDirectives(
        static_cast<const DefaultStmt *>(stmt)->sub());
  default:
    return false;
  }
}

} // namespace

std::string planFingerprint(const PipelineConfig &config) {
  // Canonical JSON over every switch that can change planning output. The
  // cost model is identified by name; configs carrying an *injected*
  // CostModel instance never reach cache keying (probePlanCache refuses
  // them as Uncacheable — a name cannot distinguish two differently tuned
  // instances), so the instance branch below only serves direct callers
  // that fingerprint configs for their own bookkeeping.
  json::Value doc = json::Value::object();
  doc.set("useFirstprivate", config.planner.useFirstprivate);
  doc.set("hoistUpdates", config.planner.hoistUpdates);
  doc.set("extendRegionOverLoops", config.planner.extendRegionOverLoops);
  doc.set("interprocedural", config.planner.interprocedural);
  doc.set("costModel", config.planner.costModel != nullptr
                           ? config.planner.costModel->name()
                           : config.costModel);
  doc.set("rejectExistingDataDirectives",
          config.rejectExistingDataDirectives);
  doc.set("interprocMaxPasses", config.interprocMaxPasses);
  return hash::fingerprint(doc.dump(/*pretty=*/false));
}

/// RAII stage timer: accumulates wall-clock seconds and marks the stage done
/// exactly once, so cached accesses never re-enter the computation.
class Session::StageTimer {
public:
  StageTimer(Session &session, Stage stage)
      : session_(session), stage_(static_cast<unsigned>(stage)),
        start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    const auto end = std::chrono::steady_clock::now();
    session_.seconds_[stage_] +=
        std::chrono::duration<double>(end - start_).count();
    session_.runs_[stage_] += 1;
    session_.done_[stage_] = true;
  }

private:
  Session &session_;
  unsigned stage_;
  std::chrono::steady_clock::time_point start_;
};

Session::Session(std::string fileName, std::string source,
                 PipelineConfig config)
    : fileName_(std::move(fileName)), config_(config),
      sourceManager_(fileName_, std::move(source)),
      ast_(std::make_shared<ASTContext>()) {}

void Session::ensureParse() {
  if (done(Stage::Parse))
    return;
  // After a cache hit the engine already holds the cold run's replayed
  // diagnostics; a lazy fresh parse (a caller touching parse()/cfg() on a
  // warm session) would re-report its subset. Let the parse report fresh,
  // then re-add only the replayed diagnostics it did not regenerate. Any
  // attached sink already saw every one of these at probe time (the source
  // is content-identical, so the fresh parse cannot produce new ones) —
  // mute it for the rebuild so nothing prints twice.
  std::vector<Diagnostic> replayed;
  DiagnosticSink *mutedSink = nullptr;
  if (planFromCache_) {
    replayed = diags_.diagnostics();
    diags_.clear();
    mutedSink = diags_.sink();
    diags_.setSink(nullptr);
  }
  {
    StageTimer timer(*this, Stage::Parse);
    parseOk_ = parseSource(sourceManager_, *ast_, diags_);
    if (parseOk_ && config_.rejectExistingDataDirectives) {
      for (const FunctionDecl *fn : ast_->unit().functions) {
        if (fn->isDefined() && containsDataDirectives(fn->body())) {
          diags_.error(fn->range().begin,
                       "input already contains target data/update "
                       "directives in '" +
                           fn->name() + "'; OMPDart expects unmapped input");
        }
      }
      if (diags_.hasErrors())
        parseOk_ = false;
    }
  }
  for (const Diagnostic &diag : replayed) {
    bool present = false;
    for (const Diagnostic &existing : diags_.diagnostics())
      if (existing == diag) {
        present = true;
        break;
      }
    if (!present)
      diags_.report(diag.severity, diag.location, diag.message);
  }
  if (mutedSink != nullptr)
    diags_.setSink(mutedSink);
}

void Session::ensureCfg() {
  if (done(Stage::Cfg))
    return;
  ensureParse();
  StageTimer timer(*this, Stage::Cfg);
  if (parseOk_)
    cfgs_ = buildAllCfgs(ast_->unit());
}

void Session::ensureInterproc() {
  if (done(Stage::Interproc))
    return;
  ensureParse();
  StageTimer timer(*this, Stage::Interproc);
  if (!parseOk_)
    return;
  InterproceduralOptions options;
  options.maxPasses =
      config_.planner.interprocedural ? config_.interprocMaxPasses : 1;
  if (config_.imports != nullptr)
    options.importedSummaries = &config_.imports->externals;
  interproc_ = runInterproceduralAnalysis(ast_->unit(), options);
}

cache::PlanCache *Session::activeCache() {
  if (config_.planCache != nullptr)
    return config_.planCache;
  if (ownedCache_ == nullptr && !config_.cacheDir.empty() &&
      config_.cacheMode != cache::CacheMode::Off)
    ownedCache_ =
        std::make_unique<cache::PlanCache>(config_.cacheDir,
                                           config_.cacheMode);
  return ownedCache_.get();
}

bool Session::probePlanCache() {
  if (cacheProbed_)
    return planFromCache_;
  cacheProbed_ = true;
  cache::PlanCache *cache = activeCache();
  if (cache == nullptr || !cache->enabled())
    return false;
  // An injected CostModel instance is only identifiable by its name, and
  // two differently-behaving models may share one — refusing to cache is
  // the only fingerprint that cannot replay a stale plan. Named models
  // (config.costModel) cache normally. Surface the refusal: a distinct
  // status plus a note, so "configured a cache but never warms" is
  // diagnosable.
  if (config_.planner.costModel != nullptr) {
    cacheStatus_ = PlanCacheStatus::Uncacheable;
    diags_.note(SourceLocation{},
                "plan cache skipped: an injected cost-model instance "
                "cannot be fingerprinted; name the model via "
                "PipelineConfig::costModel to enable caching");
    return false;
  }
  // Imports injected at the planner level bypass the config fingerprint;
  // only PipelineConfig::imports (hashed into the key) caches safely.
  if (config_.planner.imports != nullptr) {
    cacheStatus_ = PlanCacheStatus::Uncacheable;
    diags_.note(SourceLocation{},
                "plan cache skipped: planner-level imports cannot be "
                "fingerprinted; inject them via PipelineConfig::imports "
                "to enable caching");
    return false;
  }
  cacheKey_.sourceHash = hash::fingerprint(sourceManager_.text());
  cacheKey_.configHash = planFingerprint(config_);
  cacheKey_.toolVersion = kToolVersion;
  cacheKey_.importsHash =
      config_.imports != nullptr ? config_.imports->fingerprint() : "";
  std::optional<cache::CacheEntry> entry =
      cache->lookup(cacheKey_, fileName_);
  if (!entry) {
    cacheStatus_ = PlanCacheStatus::Miss;
    return false;
  }
  // Re-hydrate: the IR goes straight to the emission backends; metrics and
  // the cold run's diagnostics replay so warm reports match cold ones. The
  // plan stage is marked done WITHOUT a StageTimer — it never executed
  // (stageRuns(Plan) stays 0), which is what batch statistics and the CI
  // warm-run check observe.
  ir_ = std::move(entry->ir);
  // The entry may have been produced under another name (identical-content
  // files share one content address); the IR belongs to THIS session now.
  ir_.file = fileName_;
  cachedMetrics_ = entry->metrics;
  for (const Diagnostic &diag : entry->diagnostics)
    diags_.report(diag.severity, diag.location, diag.message);
  planFromCache_ = true;
  done_[static_cast<unsigned>(Stage::Plan)] = true;
  cacheStatus_ = PlanCacheStatus::Hit;
  return true;
}

void Session::storePlanCacheEntry() {
  cache::PlanCache *cache = activeCache();
  if (cache == nullptr || !cache->writable())
    return;
  // An empty source hash means the probe bailed before keying (cache
  // disabled, or an injected cost-model instance that cannot be
  // fingerprinted) — never store under an unkeyed address.
  if (cacheKey_.sourceHash.empty())
    return;
  if (planFromCache_ || !parseOk_ || diags_.hasErrors())
    return;
  cache::CacheEntry entry;
  entry.fileName = fileName_;
  entry.ir = ir_;
  entry.metrics = cachedMetrics_; // precomputed at plan time
  entry.diagnostics = diags_.sortedDiagnostics();
  entry.irFingerprint = ir_.fingerprint();
  cache->store(cacheKey_, entry);
}

void Session::ensurePlan() {
  if (done(Stage::Plan))
    return;
  if (config_.cacheMode != cache::CacheMode::Off ||
      config_.planCache != nullptr) {
    if (probePlanCache())
      return;
  }
  ensureCfg();
  ensureInterproc();
  bool planned = false;
  {
    StageTimer timer(*this, Stage::Plan);
    if (!parseOk_ || diags_.hasErrors())
      return;
    PlannerOptions options = config_.planner;
    if (config_.imports != nullptr)
      options.imports = config_.imports;
    if (options.costModel == nullptr) {
      costModel_ = makeCostModel(config_.costModel);
      if (costModel_ == nullptr) {
        std::string known;
        for (const std::string &name : costModelNames())
          known += (known.empty() ? "" : ", ") + name;
        diags_.error(SourceLocation{},
                     "unknown cost model '" + config_.costModel +
                         "' (known models: " + known + ")");
        return;
      }
      options.costModel = costModel_.get();
    }
    plan_ = planMappings(ast_->unit(), interproc_, diags_, options, &cfgs_);
    ir_ = ir::liftPlan(plan_, fileName_);
    // Table IV counters are a pure function of the fresh plan artifacts.
    // Computing them here — in every cache mode — keeps the plan stage's
    // timing mode-independent and gives the metrics stage and cache
    // stores one shared copy instead of re-walking the CFGs.
    cachedMetrics_ = computeMetrics();
    metricsPrecomputed_ = true;
    planned = true;
  }
  // Outside the StageTimer: serializing and writing the cache entry is
  // store I/O, not planning — keep the plan-stage timings honest (a
  // read-write run must report the same plan seconds as a read-only one).
  if (planned)
    storePlanCacheEntry();
}

void Session::ensureCheck() {
  if (done(Stage::Check))
    return;
  ensurePlan();
  const bool wanted = config_.check || config_.checkErrors;
  // Checking needs the front-end artifacts a cache hit skipped; rebuilding
  // them would forfeit the hit's entire point, so after a hit the stage
  // only runs when explicitly requested (it then lazily re-parses, with
  // ensureParse deduplicating the replayed diagnostics).
  if (planFromCache_ && !wanted) {
    done_[static_cast<unsigned>(Stage::Check)] = true;
    return;
  }
  if (planFromCache_) {
    ensureCfg();
    ensureInterproc();
  }
  StageTimer timer(*this, Stage::Check);
  if (!parseOk_ || diags_.hasErrors())
    return;
  checkResult_ = check::checkPlan(ast_->unit(), cfgs_, interproc_, ir_,
                                  config_.imports);
  if (!wanted)
    return;
  for (const check::Finding &finding : checkResult_.findings) {
    const std::string message =
        std::string("plan check [") + check::findingCodeName(finding.code) +
        "]: " + finding.message;
    if (config_.checkErrors)
      diags_.error(finding.location, message);
    else
      diags_.warning(finding.location, message);
  }
}

void Session::ensureRewrite() {
  if (done(Stage::Rewrite))
    return;
  ensurePlan();
  StageTimer timer(*this, Stage::Rewrite);
  if (!planUsable()) {
    rewritten_ = sourceManager_.text();
    return;
  }
  // The rewrite backend needs only the IR and the original text — on a
  // cache hit no AST exists and none is required.
  SourceRewriteBackend backend;
  PlanConsumerInput input;
  input.ir = &ir_;
  input.source = &sourceManager_;
  input.unit = planFromCache_ ? nullptr : &ast_->unit();
  if (!backend.consume(input)) {
    diags_.error(SourceLocation{}, "rewrite backend failed: " +
                                       backend.error());
    rewritten_ = sourceManager_.text();
    return;
  }
  rewritten_ = backend.transformedSource();
}

ComplexityMetrics Session::computeMetrics() const {
  ComplexityMetrics metrics;
  if (!parseOk_)
    return metrics;

  std::set<const VarDecl *> mapped;
  for (const RegionPlan &region : plan_.regions) {
    for (const MapSpec &spec : region.maps)
      mapped.insert(spec.var);
    for (const FirstprivateInsertion &fp : region.firstprivates)
      mapped.insert(fp.var);
  }
  metrics.mappedVariables = static_cast<unsigned>(mapped.size());

  unsigned kernelFunctionLines = 0;
  for (const auto &cfg : cfgs_) {
    if (cfg->kernels().empty())
      continue;
    metrics.kernels += static_cast<unsigned>(cfg->kernels().size());
    for (const OmpDirectiveStmt *kernel : cfg->kernels()) {
      const SourceRange range = kernel->range();
      if (range.isValid())
        metrics.offloadedLines +=
            range.end.line >= range.begin.line
                ? range.end.line - range.begin.line + 1
                : 1;
    }
    const SourceRange fnRange = cfg->function()->range();
    if (fnRange.isValid() && fnRange.end.line >= fnRange.begin.line)
      kernelFunctionLines += fnRange.end.line - fnRange.begin.line + 1;
  }
  // Paper Table IV formula.
  const std::uint64_t vars = metrics.mappedVariables;
  metrics.possibleMappings =
      static_cast<std::uint64_t>(metrics.kernels) * vars * 4 +
      (static_cast<std::uint64_t>(kernelFunctionLines) / 2) * vars * 3;
  return metrics;
}

void Session::ensureMetrics() {
  if (done(Stage::Metrics))
    return;
  ensurePlan();
  StageTimer timer(*this, Stage::Metrics);
  // The counters were either re-hydrated from the cache entry (no AST
  // exists to recount them from) or precomputed at plan time; recount only
  // when neither happened (plan stage errored out early).
  metrics_ = (planFromCache_ || metricsPrecomputed_) ? cachedMetrics_
                                                     : computeMetrics();
}

void Session::ensureStage(Stage stage) {
  switch (stage) {
  case Stage::Parse:
    ensureParse();
    return;
  case Stage::Cfg:
    ensureCfg();
    return;
  case Stage::Interproc:
    ensureInterproc();
    return;
  case Stage::Plan:
    ensurePlan();
    return;
  case Stage::Check:
    ensureCheck();
    return;
  case Stage::Rewrite:
    ensureRewrite();
    return;
  case Stage::Metrics:
    ensureMetrics();
    return;
  }
}

const ASTContext &Session::parse() {
  ensureParse();
  return *ast_;
}

const std::vector<std::unique_ptr<AstCfg>> &Session::cfg() {
  ensureCfg();
  return cfgs_;
}

const InterproceduralResult &Session::interproc() {
  ensureInterproc();
  return interproc_;
}

const MappingPlan &Session::plan() {
  ensurePlan();
  return plan_;
}

const ir::MappingIr &Session::ir() {
  ensurePlan();
  return ir_;
}

const check::CheckResult &Session::check() {
  ensureCheck();
  return checkResult_;
}

const std::string &Session::rewrite() {
  ensureRewrite();
  return rewritten_;
}

const ComplexityMetrics &Session::metrics() {
  ensureMetrics();
  return metrics_;
}

bool Session::run() {
  // Probe the plan cache up front when the run will reach the plan stage:
  // a hit satisfies parse/cfg/interproc/plan at once, so those stages must
  // be skipped BEFORE the loop would execute the front end.
  const bool planWanted =
      !config_.stopAfter || *config_.stopAfter >= Stage::Plan;
  if (planWanted && (config_.cacheMode != cache::CacheMode::Off ||
                     config_.planCache != nullptr))
    probePlanCache();
  for (const Stage stage : allStages()) {
    if (planFromCache_ && stage < Stage::Plan)
      continue; // satisfied by the cache hit
    ensureStage(stage);
    if (!planUsable())
      break;
    if (config_.stopAfter && stage == *config_.stopAfter)
      break;
  }
  return success();
}

bool Session::parseSucceeded() {
  ensureParse();
  return parseOk_;
}

bool Session::success() const {
  if (planFromCache_)
    return !diags_.hasErrors();
  return done(Stage::Parse) && parseOk_ && !diags_.hasErrors();
}

double Session::totalSeconds() const {
  double total = 0.0;
  for (const double seconds : seconds_)
    total += seconds;
  return total;
}

Report Session::buildReport() {
  Report report;
  report.fileName = fileName_;
  report.success = success();
  for (const Stage stage : allStages()) {
    const bool executed = runs_[static_cast<unsigned>(stage)] > 0;
    // A cache-hydrated plan never executed (no timing row, runs stay 0)
    // but the artifact exists, so the stage still counts as reached —
    // keeps warm reports' stoppedAfter consistent with cold ones.
    const bool hydrated = stage == Stage::Plan && planFromCache_;
    if (!executed && !hydrated)
      continue;
    if (executed) {
      StageTiming timing;
      timing.stage = stage;
      timing.seconds = stageSeconds(stage);
      timing.runs = stageRuns(stage);
      report.timings.push_back(timing);
    }
    report.stoppedAfter = stageName(stage);
  }
  report.totalSeconds = totalSeconds();
  report.diagnostics = diags_.sortedDiagnostics();
  if (done(Stage::Metrics))
    report.metrics = metrics_;

  if (done(Stage::Plan))
    report.plan = ir_;

  // Check findings surface only when the stage actually executed (it is
  // marked done-without-running after a cache hit without config.check).
  if (stageRuns(Stage::Check) > 0)
    report.check = checkResult_;

  if (done(Stage::Rewrite) && config_.includeOutputInReport)
    report.output = rewritten_;

  // Plan-cache observability (absent when no cache was configured): the
  // probe outcome plus the active cache's counters, so `--emit=json` makes
  // warm runs visible without a separate benchmark run.
  cache::PlanCache *cache = activeCache();
  if (cache != nullptr || cacheStatus_ != PlanCacheStatus::Disabled) {
    PlanCacheReport cacheReport;
    switch (cacheStatus_) {
    case PlanCacheStatus::Disabled:
      cacheReport.status = "disabled";
      break;
    case PlanCacheStatus::Uncacheable:
      cacheReport.status = "uncacheable";
      break;
    case PlanCacheStatus::Miss:
      cacheReport.status = "miss";
      break;
    case PlanCacheStatus::Hit:
      cacheReport.status = "hit";
      break;
    }
    if (!cacheKey_.sourceHash.empty())
      cacheReport.keyId = cacheKey_.id();
    if (cache != nullptr) {
      const cache::CacheStats stats = cache->stats();
      cacheReport.lookups = stats.lookups;
      cacheReport.hits = stats.hits;
      cacheReport.misses = stats.misses;
      cacheReport.stores = stats.stores;
      cacheReport.invalidations = stats.invalidations;
      cacheReport.memoHits = stats.memoHits;
      cacheReport.summaryLookups = stats.summaryLookups;
      cacheReport.summaryHits = stats.summaryHits;
      cacheReport.summaryMisses = stats.summaryMisses;
      cacheReport.summaryStores = stats.summaryStores;
      cacheReport.summaryMemoHits = stats.summaryMemoHits;
    }
    report.planCache = std::move(cacheReport);
  }
  return report;
}

const Report &Session::report() {
  run();
  // The report is invalidated whenever another stage executes after it was
  // built (e.g. report() under stopAfter, then an explicit rewrite()).
  if (report_) {
    unsigned executed = 0;
    for (const unsigned runs : runs_)
      executed += runs;
    if (executed != reportStageRuns_)
      report_.reset();
  }
  if (!report_) {
    report_ = buildReport();
    unsigned executed = 0;
    for (const unsigned runs : runs_)
      executed += runs;
    reportStageRuns_ = executed;
  }
  return *report_;
}

} // namespace ompdart
