#include "driver/pipeline.hpp"

#include "frontend/parser.hpp"
#include "mapping/backend.hpp"

#include <chrono>
#include <set>

namespace ompdart {

namespace {

/// Scans for pre-existing data-mapping directives (paper §IV-A: the input
/// "should not include any instances of target data or target update").
bool containsDataDirectives(const Stmt *stmt) {
  if (stmt == nullptr)
    return false;
  if (stmt->kind() == StmtKind::OmpDirective) {
    const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
    switch (directive->directive()) {
    case OmpDirectiveKind::TargetData:
    case OmpDirectiveKind::TargetEnterData:
    case OmpDirectiveKind::TargetExitData:
    case OmpDirectiveKind::TargetUpdate:
      return true;
    default:
      return containsDataDirectives(directive->associated());
    }
  }
  switch (stmt->kind()) {
  case StmtKind::Compound:
    for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
      if (containsDataDirectives(sub))
        return true;
    return false;
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    return containsDataDirectives(ifStmt->thenStmt()) ||
           containsDataDirectives(ifStmt->elseStmt());
  }
  case StmtKind::For:
    return containsDataDirectives(static_cast<const ForStmt *>(stmt)->body());
  case StmtKind::While:
    return containsDataDirectives(
        static_cast<const WhileStmt *>(stmt)->body());
  case StmtKind::Do:
    return containsDataDirectives(static_cast<const DoStmt *>(stmt)->body());
  case StmtKind::Switch:
    return containsDataDirectives(
        static_cast<const SwitchStmt *>(stmt)->body());
  case StmtKind::Case:
    return containsDataDirectives(static_cast<const CaseStmt *>(stmt)->sub());
  case StmtKind::Default:
    return containsDataDirectives(
        static_cast<const DefaultStmt *>(stmt)->sub());
  default:
    return false;
  }
}

} // namespace

/// RAII stage timer: accumulates wall-clock seconds and marks the stage done
/// exactly once, so cached accesses never re-enter the computation.
class Session::StageTimer {
public:
  StageTimer(Session &session, Stage stage)
      : session_(session), stage_(static_cast<unsigned>(stage)),
        start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    const auto end = std::chrono::steady_clock::now();
    session_.seconds_[stage_] +=
        std::chrono::duration<double>(end - start_).count();
    session_.runs_[stage_] += 1;
    session_.done_[stage_] = true;
  }

private:
  Session &session_;
  unsigned stage_;
  std::chrono::steady_clock::time_point start_;
};

Session::Session(std::string fileName, std::string source,
                 PipelineConfig config)
    : fileName_(std::move(fileName)), config_(config),
      sourceManager_(fileName_, std::move(source)),
      ast_(std::make_shared<ASTContext>()) {}

void Session::ensureParse() {
  if (done(Stage::Parse))
    return;
  StageTimer timer(*this, Stage::Parse);
  parseOk_ = parseSource(sourceManager_, *ast_, diags_);
  if (!parseOk_)
    return;
  if (config_.rejectExistingDataDirectives) {
    for (const FunctionDecl *fn : ast_->unit().functions) {
      if (fn->isDefined() && containsDataDirectives(fn->body())) {
        diags_.error(fn->range().begin,
                     "input already contains target data/update directives "
                     "in '" +
                         fn->name() + "'; OMPDart expects unmapped input");
      }
    }
    if (diags_.hasErrors())
      parseOk_ = false;
  }
}

void Session::ensureCfg() {
  if (done(Stage::Cfg))
    return;
  ensureParse();
  StageTimer timer(*this, Stage::Cfg);
  if (parseOk_)
    cfgs_ = buildAllCfgs(ast_->unit());
}

void Session::ensureInterproc() {
  if (done(Stage::Interproc))
    return;
  ensureParse();
  StageTimer timer(*this, Stage::Interproc);
  if (!parseOk_)
    return;
  InterproceduralOptions options;
  options.maxPasses =
      config_.planner.interprocedural ? config_.interprocMaxPasses : 1;
  interproc_ = runInterproceduralAnalysis(ast_->unit(), options);
}

void Session::ensurePlan() {
  if (done(Stage::Plan))
    return;
  ensureCfg();
  ensureInterproc();
  StageTimer timer(*this, Stage::Plan);
  if (!parseOk_ || diags_.hasErrors())
    return;
  PlannerOptions options = config_.planner;
  if (options.costModel == nullptr) {
    costModel_ = makeCostModel(config_.costModel);
    if (costModel_ == nullptr) {
      std::string known;
      for (const std::string &name : costModelNames())
        known += (known.empty() ? "" : ", ") + name;
      diags_.error(SourceLocation{},
                   "unknown cost model '" + config_.costModel +
                       "' (known models: " + known + ")");
      return;
    }
    options.costModel = costModel_.get();
  }
  plan_ = planMappings(ast_->unit(), interproc_, diags_, options, &cfgs_);
  ir_ = ir::liftPlan(plan_, fileName_);
}

void Session::ensureRewrite() {
  if (done(Stage::Rewrite))
    return;
  ensurePlan();
  StageTimer timer(*this, Stage::Rewrite);
  if (!parseOk_ || diags_.hasErrors()) {
    rewritten_ = sourceManager_.text();
    return;
  }
  SourceRewriteBackend backend;
  PlanConsumerInput input;
  input.ir = &ir_;
  input.source = &sourceManager_;
  input.unit = &ast_->unit();
  if (!backend.consume(input)) {
    diags_.error(SourceLocation{}, "rewrite backend failed: " +
                                       backend.error());
    rewritten_ = sourceManager_.text();
    return;
  }
  rewritten_ = backend.transformedSource();
}

void Session::ensureMetrics() {
  if (done(Stage::Metrics))
    return;
  ensurePlan();
  StageTimer timer(*this, Stage::Metrics);
  metrics_ = ComplexityMetrics{};
  if (!parseOk_)
    return;

  std::set<const VarDecl *> mapped;
  for (const RegionPlan &region : plan_.regions) {
    for (const MapSpec &spec : region.maps)
      mapped.insert(spec.var);
    for (const FirstprivateInsertion &fp : region.firstprivates)
      mapped.insert(fp.var);
  }
  metrics_.mappedVariables = static_cast<unsigned>(mapped.size());

  unsigned kernelFunctionLines = 0;
  for (const auto &cfg : cfgs_) {
    if (cfg->kernels().empty())
      continue;
    metrics_.kernels += static_cast<unsigned>(cfg->kernels().size());
    for (const OmpDirectiveStmt *kernel : cfg->kernels()) {
      const SourceRange range = kernel->range();
      if (range.isValid())
        metrics_.offloadedLines +=
            range.end.line >= range.begin.line
                ? range.end.line - range.begin.line + 1
                : 1;
    }
    const SourceRange fnRange = cfg->function()->range();
    if (fnRange.isValid() && fnRange.end.line >= fnRange.begin.line)
      kernelFunctionLines += fnRange.end.line - fnRange.begin.line + 1;
  }
  // Paper Table IV formula.
  const std::uint64_t vars = metrics_.mappedVariables;
  metrics_.possibleMappings =
      static_cast<std::uint64_t>(metrics_.kernels) * vars * 4 +
      (static_cast<std::uint64_t>(kernelFunctionLines) / 2) * vars * 3;
}

void Session::ensureStage(Stage stage) {
  switch (stage) {
  case Stage::Parse:
    ensureParse();
    return;
  case Stage::Cfg:
    ensureCfg();
    return;
  case Stage::Interproc:
    ensureInterproc();
    return;
  case Stage::Plan:
    ensurePlan();
    return;
  case Stage::Rewrite:
    ensureRewrite();
    return;
  case Stage::Metrics:
    ensureMetrics();
    return;
  }
}

const ASTContext &Session::parse() {
  ensureParse();
  return *ast_;
}

const std::vector<std::unique_ptr<AstCfg>> &Session::cfg() {
  ensureCfg();
  return cfgs_;
}

const InterproceduralResult &Session::interproc() {
  ensureInterproc();
  return interproc_;
}

const MappingPlan &Session::plan() {
  ensurePlan();
  return plan_;
}

const ir::MappingIr &Session::ir() {
  ensurePlan();
  return ir_;
}

const std::string &Session::rewrite() {
  ensureRewrite();
  return rewritten_;
}

const ComplexityMetrics &Session::metrics() {
  ensureMetrics();
  return metrics_;
}

bool Session::run() {
  for (const Stage stage : allStages()) {
    ensureStage(stage);
    if (!parseOk_ || diags_.hasErrors())
      break;
    if (config_.stopAfter && stage == *config_.stopAfter)
      break;
  }
  return success();
}

bool Session::parseSucceeded() {
  ensureParse();
  return parseOk_;
}

bool Session::success() const {
  return done(Stage::Parse) && parseOk_ && !diags_.hasErrors();
}

double Session::totalSeconds() const {
  double total = 0.0;
  for (const double seconds : seconds_)
    total += seconds;
  return total;
}

Report Session::buildReport() {
  Report report;
  report.fileName = fileName_;
  report.success = success();
  for (const Stage stage : allStages()) {
    if (runs_[static_cast<unsigned>(stage)] == 0)
      continue;
    StageTiming timing;
    timing.stage = stage;
    timing.seconds = stageSeconds(stage);
    timing.runs = stageRuns(stage);
    report.timings.push_back(timing);
    report.stoppedAfter = stageName(stage);
  }
  report.totalSeconds = totalSeconds();
  report.diagnostics = diags_.sortedDiagnostics();
  if (done(Stage::Metrics))
    report.metrics = metrics_;

  if (done(Stage::Plan))
    report.plan = ir_;

  if (done(Stage::Rewrite) && config_.includeOutputInReport)
    report.output = rewritten_;
  return report;
}

const Report &Session::report() {
  run();
  // The report is invalidated whenever another stage executes after it was
  // built (e.g. report() under stopAfter, then an explicit rewrite()).
  if (report_) {
    unsigned executed = 0;
    for (const unsigned runs : runs_)
      executed += runs;
    if (executed != reportStageRuns_)
      report_.reset();
  }
  if (!report_) {
    report_ = buildReport();
    unsigned executed = 0;
    for (const unsigned runs : runs_)
      executed += runs;
    reportStageRuns_ = executed;
  }
  return *report_;
}

} // namespace ompdart
