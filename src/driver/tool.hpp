// OMPDart tool façade — now a thin compatibility shim over the staged
// pipeline API in driver/pipeline.hpp. New code should use `Session`
// directly (stage artifacts, per-stage timing, structured reports) or
// `BatchDriver` for many inputs; this header keeps the original one-call
// interface for existing consumers.
#pragma once

#include "driver/pipeline.hpp"

#include <memory>
#include <string>

namespace ompdart {

struct ToolOptions {
  PlannerOptions planner;
  /// Reject inputs that already contain target data / target update
  /// directives (paper §IV-A: the expected input has none).
  bool rejectExistingDataDirectives = true;

  /// The equivalent staged-pipeline configuration.
  [[nodiscard]] PipelineConfig pipelineConfig() const {
    PipelineConfig config;
    config.planner = planner;
    config.rejectExistingDataDirectives = rejectExistingDataDirectives;
    return config;
  }
};

struct ToolResult {
  bool success = false;
  /// Transformed source (original text when the tool failed).
  std::string output;
  /// The parsed AST backing `plan` (plan nodes point into it); kept alive
  /// so callers can inspect the plan after the tool returns.
  std::shared_ptr<ASTContext> ast;
  MappingPlan plan;
  ComplexityMetrics metrics;
  /// All diagnostics from parsing and planning.
  std::vector<Diagnostic> diagnostics;
  /// Wall-clock seconds the tool spent (Table V).
  double toolSeconds = 0.0;

  [[nodiscard]] bool hasErrors() const {
    for (const Diagnostic &diag : diagnostics)
      if (diag.severity == Severity::Error)
        return true;
    return false;
  }
};

/// Runs OMPDart on one translation unit (compat shim over `Session`).
class OmpDartTool {
public:
  explicit OmpDartTool(ToolOptions options = {}) : options_(options) {}

  [[nodiscard]] ToolResult run(const std::string &fileName,
                               const std::string &source) const;

private:
  ToolOptions options_;
};

/// One-call helper. `fileName` is threaded into diagnostics and reports so
/// callers that only have a source string still get attributable output.
[[nodiscard]] ToolResult runOmpDart(const std::string &source,
                                    ToolOptions options = {},
                                    const std::string &fileName = "<input>");

/// Computes Table IV metrics for a source (independent of transformation).
[[nodiscard]] ComplexityMetrics computeComplexity(const std::string &source);

} // namespace ompdart
