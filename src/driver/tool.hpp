// OMPDart tool façade: the full source-to-source pipeline of Fig. 1 in the
// paper (Clang-equivalent front end -> AST-CFG -> interprocedural pass ->
// data-flow analysis -> rewriter), plus the Table IV complexity counters and
// Table V tool-overhead timing.
#pragma once

#include "frontend/ast.hpp"
#include "mapping/planner.hpp"
#include "support/diagnostics.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace ompdart {

/// Benchmark data-mapping complexity metrics (paper Table IV).
struct ComplexityMetrics {
  unsigned kernels = 0;
  unsigned offloadedLines = 0;
  unsigned mappedVariables = 0;
  /// Paper's formula: kernels*vars*4 + (lines/2)*vars*3, where `lines`
  /// counts the lines of functions containing kernels.
  std::uint64_t possibleMappings = 0;
};

struct ToolOptions {
  PlannerOptions planner;
  /// Reject inputs that already contain target data / target update
  /// directives (paper §IV-A: the expected input has none).
  bool rejectExistingDataDirectives = true;
};

struct ToolResult {
  bool success = false;
  /// Transformed source (original text when the tool failed).
  std::string output;
  /// The parsed AST backing `plan` (plan nodes point into it); kept alive
  /// so callers can inspect the plan after the tool returns.
  std::shared_ptr<ASTContext> ast;
  MappingPlan plan;
  ComplexityMetrics metrics;
  /// All diagnostics from parsing and planning.
  std::vector<Diagnostic> diagnostics;
  /// Wall-clock seconds the tool spent (Table V).
  double toolSeconds = 0.0;

  [[nodiscard]] bool hasErrors() const {
    for (const Diagnostic &diag : diagnostics)
      if (diag.severity == Severity::Error)
        return true;
    return false;
  }
};

/// Runs OMPDart on one translation unit.
class OmpDartTool {
public:
  explicit OmpDartTool(ToolOptions options = {}) : options_(options) {}

  [[nodiscard]] ToolResult run(const std::string &fileName,
                               const std::string &source) const;

private:
  ToolOptions options_;
};

/// One-call helper.
[[nodiscard]] ToolResult runOmpDart(const std::string &source,
                                    ToolOptions options = {});

/// Computes Table IV metrics for a source (independent of transformation).
[[nodiscard]] ComplexityMetrics computeComplexity(const std::string &source);

} // namespace ompdart
