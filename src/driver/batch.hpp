// Thread-safe batch driver: runs N independent pipeline Sessions in
// parallel over a worker pool. Sessions share no mutable state (each owns
// its SourceManager, ASTContext and DiagnosticEngine), so the only
// coordination is the work queue cursor. Results come back in input order
// with per-stage timing and aggregate statistics; per-item diagnostics are
// sorted by source location, so batch output is deterministic regardless of
// scheduling.
#pragma once

#include "cache/plan_cache.hpp"
#include "driver/pipeline.hpp"
#include "driver/report.hpp"
#include "gen/generator.hpp"
#include "support/json.hpp"
#include "verify/oracle.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ompdart {

/// One translation unit to push through the pipeline.
struct BatchJob {
  std::string name;     ///< label used in results/statistics
  std::string fileName; ///< diagnostics file name (defaults to `name`)
  std::string source;
};

/// Outcome for one job, in input order.
struct BatchItem {
  std::string name;
  bool success = false;
  Report report;
  /// Transformed source (empty when the rewrite stage was stopped before).
  std::string output;
  /// Plan-cache probe outcome for this job's session.
  Session::PlanCacheStatus cacheStatus = Session::PlanCacheStatus::Disabled;

  [[nodiscard]] bool planCacheHit() const {
    return cacheStatus == Session::PlanCacheStatus::Hit;
  }
};

/// Aggregate statistics over one batch run.
struct BatchStats {
  unsigned jobs = 0;
  unsigned succeeded = 0;
  unsigned failed = 0;
  unsigned threads = 0;
  /// End-to-end wall time of the batch.
  double wallSeconds = 0.0;
  /// Sum of per-session pipeline seconds (what a sequential run would cost).
  double cpuSeconds = 0.0;
  /// Per-stage seconds summed across all sessions, indexed by Stage.
  std::array<double, kStageCount> stageSeconds{};
  /// Per-stage execution counts summed across all sessions. On a fully warm
  /// cache run the parse/cfg/interproc/plan counters are zero — the
  /// observable proof those stages were skipped.
  std::array<unsigned, kStageCount> stageRuns{};
  /// Plan-cache outcomes across the batch (jobs with a cache configured).
  unsigned planCacheHits = 0;
  unsigned planCacheMisses = 0;
  /// Cache-side deltas for this run (shared-instance counters).
  std::uint64_t planCacheStores = 0;
  std::uint64_t planCacheInvalidations = 0;

  /// Parallel efficiency proxy: sequential-cost / wall-time.
  [[nodiscard]] double speedup() const {
    return wallSeconds > 0.0 ? cpuSeconds / wallSeconds : 0.0;
  }
  /// True when every job's plan came from the cache.
  [[nodiscard]] bool fullyWarm() const {
    return jobs > 0 && planCacheHits == jobs;
  }
  [[nodiscard]] json::Value toJson() const;
};

struct BatchResult {
  std::vector<BatchItem> items;
  BatchStats stats;
  /// Project mode only: TU names in the (reverse topological) order the
  /// driver scheduled them; empty for independent-job batches.
  std::vector<std::string> projectSchedule;

  [[nodiscard]] const BatchItem *find(const std::string &name) const {
    for (const BatchItem &item : items)
      if (item.name == name)
        return &item;
    return nullptr;
  }
};

/// One fuzzed program's outcome (input order = seed order).
struct FuzzItem {
  std::string name;
  std::uint64_t seed = 0;
  /// False when the time box expired before this program ran.
  bool ran = false;
  bool provableTrips = false;
  bool multiTu = false;
  verify::OracleVerdict verdict;

  [[nodiscard]] bool passed() const { return ran && verdict.ok; }
};

/// A failing program, with its shrunken repro when shrinking was on.
struct FuzzFailure {
  std::string name;
  std::uint64_t seed = 0;
  std::string divergence;
  std::string source; ///< combined program text
  std::string shrunken;
  unsigned originalStatements = 0;
  unsigned shrunkenStatements = 0;
};

struct FuzzStats {
  unsigned programs = 0;
  unsigned ran = 0;
  unsigned passed = 0;
  unsigned failed = 0;
  unsigned skippedByTimeBox = 0;
  unsigned provable = 0; ///< programs where invariant (3) applied
  unsigned multiTu = 0;
  unsigned threads = 0;
  double wallSeconds = 0.0;
  /// Ledger sums over every program that ran (baseline vs planned run).
  std::uint64_t baselineBytes = 0;
  std::uint64_t planBytes = 0;
  unsigned planCacheHits = 0;
  unsigned planCacheMisses = 0;

  [[nodiscard]] json::Value toJson() const;
};

struct FuzzResult {
  std::vector<FuzzItem> items;
  std::vector<FuzzFailure> failures;
  FuzzStats stats;

  [[nodiscard]] bool allPassed() const {
    return stats.ran > 0 && stats.failed == 0;
  }
};

class BatchDriver {
public:
  struct Options {
    /// Worker threads; 0 = min(hardware_concurrency, job count).
    unsigned threads = 0;
    /// Pipeline configuration applied to every session. When it names a
    /// cache (cacheDir + cacheMode, or an explicit planCache), the driver
    /// shares ONE PlanCache instance across all sessions so lookups,
    /// stores and stats aggregate coherently under concurrency.
    PipelineConfig config;
    /// Warm-run mode: execute the whole batch this many extra times first
    /// (results discarded) so the measured run hits a populated cache.
    /// Requires a writable cache to have any effect.
    unsigned warmupPasses = 0;
  };

  BatchDriver() = default;
  explicit BatchDriver(Options options) : options_(std::move(options)) {}

  /// Fuzz-mode knobs (BatchDriver::runFuzz).
  struct FuzzOptions {
    std::uint64_t baseSeed = 1;
    unsigned count = 100;
    gen::GenOptions gen;
    /// Interpreter limits + predicted-bytes switch for the oracle. The
    /// oracle's pipeline config comes from Options::config (cost model,
    /// shared plan cache).
    interp::InterpOptions interp;
    bool checkPredicted = true;
    /// Also verify the SourceRewriteBackend's transformed text against the
    /// baseline (oracle rewrite leg); pays a second parse + run per
    /// program.
    bool checkRewrite = false;
    /// Minimize failing programs with the statement-deletion shrinker.
    bool shrinkFailures = false;
    /// Stop starting new programs once this much wall time elapsed
    /// (0 = unbounded). Already-started programs finish; the rest are
    /// reported as skipped.
    double timeBoxSeconds = 0.0;
  };

  /// Runs every job through its own Session, in parallel.
  [[nodiscard]] BatchResult run(const std::vector<BatchJob> &jobs) const;

  /// Fuzz mode: generates `count` seeded programs, runs the differential
  /// oracle on each over the worker pool (sessions share the driver's plan
  /// cache exactly like `run`), and optionally shrinks failures to minimal
  /// repros. Deterministic: the same options produce the same corpus and
  /// the same verdicts.
  [[nodiscard]] FuzzResult runFuzz(const FuzzOptions &fuzz) const;

  /// Project mode: treats the jobs as the translation units of ONE program
  /// and drives them through a ProjectSession — whole-program summary link
  /// first, then per-TU pipelines with cross-TU imports, scheduled in
  /// reverse topological call-graph order over the worker pool. Results
  /// come back in input order; `projectSchedule` records the order TUs
  /// actually planned in.
  [[nodiscard]] BatchResult
  runProject(const std::vector<BatchJob> &jobs) const;

private:
  [[nodiscard]] BatchResult runOnce(const std::vector<BatchJob> &jobs,
                                    cache::PlanCache *sharedCache) const;

  Options options_;
};

} // namespace ompdart
