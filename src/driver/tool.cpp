#include "driver/tool.hpp"

#include "cfg/cfg.hpp"
#include "frontend/parser.hpp"
#include "rewrite/rewriter.hpp"

#include <chrono>
#include <memory>
#include <set>

namespace ompdart {

namespace {

/// Scans for pre-existing data-mapping directives (paper §IV-A: the input
/// "should not include any instances of target data or target update").
bool containsDataDirectives(const Stmt *stmt) {
  if (stmt == nullptr)
    return false;
  if (stmt->kind() == StmtKind::OmpDirective) {
    const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
    switch (directive->directive()) {
    case OmpDirectiveKind::TargetData:
    case OmpDirectiveKind::TargetEnterData:
    case OmpDirectiveKind::TargetExitData:
    case OmpDirectiveKind::TargetUpdate:
      return true;
    default:
      return containsDataDirectives(directive->associated());
    }
  }
  switch (stmt->kind()) {
  case StmtKind::Compound:
    for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
      if (containsDataDirectives(sub))
        return true;
    return false;
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    return containsDataDirectives(ifStmt->thenStmt()) ||
           containsDataDirectives(ifStmt->elseStmt());
  }
  case StmtKind::For:
    return containsDataDirectives(static_cast<const ForStmt *>(stmt)->body());
  case StmtKind::While:
    return containsDataDirectives(
        static_cast<const WhileStmt *>(stmt)->body());
  case StmtKind::Do:
    return containsDataDirectives(static_cast<const DoStmt *>(stmt)->body());
  case StmtKind::Switch:
    return containsDataDirectives(
        static_cast<const SwitchStmt *>(stmt)->body());
  case StmtKind::Case:
    return containsDataDirectives(static_cast<const CaseStmt *>(stmt)->sub());
  case StmtKind::Default:
    return containsDataDirectives(
        static_cast<const DefaultStmt *>(stmt)->sub());
  default:
    return false;
  }
}

ComplexityMetrics metricsFor(const TranslationUnit &unit,
                             const MappingPlan &plan) {
  ComplexityMetrics metrics;
  std::set<const VarDecl *> mapped;
  for (const RegionPlan &region : plan.regions) {
    for (const MapSpec &spec : region.maps)
      mapped.insert(spec.var);
    for (const FirstprivateInsertion &fp : region.firstprivates)
      mapped.insert(fp.var);
  }
  metrics.mappedVariables = static_cast<unsigned>(mapped.size());

  unsigned kernelFunctionLines = 0;
  auto cfgs = buildAllCfgs(unit);
  for (const auto &cfg : cfgs) {
    if (cfg->kernels().empty())
      continue;
    metrics.kernels += static_cast<unsigned>(cfg->kernels().size());
    for (const OmpDirectiveStmt *kernel : cfg->kernels()) {
      const SourceRange range = kernel->range();
      if (range.isValid())
        metrics.offloadedLines +=
            range.end.line >= range.begin.line
                ? range.end.line - range.begin.line + 1
                : 1;
    }
    const SourceRange fnRange = cfg->function()->range();
    if (fnRange.isValid() && fnRange.end.line >= fnRange.begin.line)
      kernelFunctionLines += fnRange.end.line - fnRange.begin.line + 1;
  }
  // Paper Table IV formula.
  const std::uint64_t vars = metrics.mappedVariables;
  metrics.possibleMappings =
      static_cast<std::uint64_t>(metrics.kernels) * vars * 4 +
      (static_cast<std::uint64_t>(kernelFunctionLines) / 2) * vars * 3;
  return metrics;
}

} // namespace

ToolResult OmpDartTool::run(const std::string &fileName,
                            const std::string &source) const {
  const auto start = std::chrono::steady_clock::now();
  ToolResult result;
  result.output = source;

  SourceManager sourceManager(fileName, source);
  result.ast = std::make_shared<ASTContext>();
  ASTContext &context = *result.ast;
  DiagnosticEngine diags;
  const bool parsed = parseSource(sourceManager, context, diags);
  if (!parsed) {
    result.diagnostics = diags.diagnostics();
    return result;
  }

  if (options_.rejectExistingDataDirectives) {
    for (const FunctionDecl *fn : context.unit().functions) {
      if (fn->isDefined() && containsDataDirectives(fn->body())) {
        diags.error(fn->range().begin,
                    "input already contains target data/update directives "
                    "in '" +
                        fn->name() + "'; OMPDart expects unmapped input");
      }
    }
    if (diags.hasErrors()) {
      result.diagnostics = diags.diagnostics();
      return result;
    }
  }

  InterproceduralOptions interprocOptions;
  if (!options_.planner.interprocedural)
    interprocOptions.maxPasses = 1;
  const InterproceduralResult interproc =
      runInterproceduralAnalysis(context.unit(), interprocOptions);

  result.plan = planMappings(context.unit(), interproc, diags,
                             options_.planner);
  result.metrics = metricsFor(context.unit(), result.plan);
  result.diagnostics = diags.diagnostics();
  if (diags.hasErrors())
    return result;

  result.output = applyMappingPlan(sourceManager, result.plan);
  result.success = true;
  const auto end = std::chrono::steady_clock::now();
  result.toolSeconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

ToolResult runOmpDart(const std::string &source, ToolOptions options) {
  OmpDartTool tool(options);
  return tool.run("input.c", source);
}

ComplexityMetrics computeComplexity(const std::string &source) {
  SourceManager sourceManager("input.c", source);
  ASTContext context;
  DiagnosticEngine diags;
  if (!parseSource(sourceManager, context, diags))
    return {};
  const InterproceduralResult interproc =
      runInterproceduralAnalysis(context.unit());
  DiagnosticEngine planDiags;
  const MappingPlan plan =
      planMappings(context.unit(), interproc, planDiags);
  return metricsFor(context.unit(), plan);
}

} // namespace ompdart
