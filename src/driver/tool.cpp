#include "driver/tool.hpp"

namespace ompdart {

ToolResult OmpDartTool::run(const std::string &fileName,
                            const std::string &source) const {
  Session session(fileName, source, options_.pipelineConfig());
  ToolResult result;
  result.success = session.run();
  // Metrics were historically populated even when planning reported errors
  // (they are measurement-only); force the stage the same way.
  result.metrics = session.metrics();
  result.output = session.rewrite();
  result.plan = session.plan();
  result.ast = session.shareAst();
  result.diagnostics = session.diagnostics().diagnostics();
  result.toolSeconds = session.totalSeconds();
  return result;
}

ToolResult runOmpDart(const std::string &source, ToolOptions options,
                      const std::string &fileName) {
  OmpDartTool tool(options);
  return tool.run(fileName, source);
}

ComplexityMetrics computeComplexity(const std::string &source) {
  PipelineConfig config;
  // Metrics-only query: tolerate inputs that already contain data
  // directives (matches the historical behavior, which never ran the
  // §IV-A input check on this path).
  config.rejectExistingDataDirectives = false;
  Session session("<input>", source, config);
  return session.metrics();
}

} // namespace ompdart
