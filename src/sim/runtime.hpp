// Simulated OpenMP 5.2 offload runtime (device data environment).
//
// Implements the reference-count semantics of the OpenMP 5.2 spec that the
// paper's §III motivation hinges on: a present-table entry per mapped
// object, refCount incremented on region entry and decremented on exit,
// with host<->device copies only on the 0->1 (to/tofrom) and 1->0
// (from/tofrom) transitions; `target update` copies unconditionally when
// the object is present. Every copy is recorded in a TransferLedger that
// regenerates the paper's Figures 3 (bytes) and 4 (memcpy calls), and an
// analytic CostModel turns ledger + op counts into the modeled runtimes
// behind Figures 5 and 6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ompdart::sim {

enum class TransferDir { HtoD, DtoH };

enum class MapKind { To, From, ToFrom, Alloc, Release, Delete };

/// One recorded memcpy.
struct Transfer {
  TransferDir dir = TransferDir::HtoD;
  std::uint64_t bytes = 0;
  std::string tag; ///< variable name or region label, for reports
};

/// Counts every simulated CUDA-memcpy-equivalent plus the op/launch counters
/// the cost model needs.
class TransferLedger {
public:
  void record(TransferDir dir, std::uint64_t bytes, std::string tag);
  void recordKernelLaunch() { ++kernelLaunches_; }
  void addHostOps(std::uint64_t ops) { hostOps_ += ops; }
  void addDeviceOps(std::uint64_t ops) { deviceOps_ += ops; }

  [[nodiscard]] std::uint64_t bytes(TransferDir dir) const {
    return dir == TransferDir::HtoD ? bytesHtoD_ : bytesDtoH_;
  }
  [[nodiscard]] unsigned calls(TransferDir dir) const {
    return dir == TransferDir::HtoD ? callsHtoD_ : callsDtoH_;
  }
  [[nodiscard]] std::uint64_t totalBytes() const {
    return bytesHtoD_ + bytesDtoH_;
  }
  [[nodiscard]] unsigned totalCalls() const {
    return callsHtoD_ + callsDtoH_;
  }
  [[nodiscard]] unsigned kernelLaunches() const { return kernelLaunches_; }
  [[nodiscard]] std::uint64_t hostOps() const { return hostOps_; }
  [[nodiscard]] std::uint64_t deviceOps() const { return deviceOps_; }
  [[nodiscard]] const std::vector<Transfer> &transfers() const {
    return transfers_;
  }

  void reset();

private:
  std::vector<Transfer> transfers_;
  std::uint64_t bytesHtoD_ = 0;
  std::uint64_t bytesDtoH_ = 0;
  unsigned callsHtoD_ = 0;
  unsigned callsDtoH_ = 0;
  unsigned kernelLaunches_ = 0;
  std::uint64_t hostOps_ = 0;
  std::uint64_t deviceOps_ = 0;
};

/// Analytic performance model calibrated to an A100-class node (PCIe gen4
/// link, microsecond-scale launch/transfer latencies, ~100x device-side
/// throughput advantage for offloaded loop bodies). Absolute values are not
/// meant to match the paper's testbed; the *shape* of Figures 5/6 is.
struct CostModel {
  double hostToDeviceBytesPerSec = 25.0e9;
  double deviceToHostBytesPerSec = 25.0e9;
  double perTransferLatencySec = 10.0e-6;
  double perKernelLaunchSec = 5.0e-6;
  double hostSecPerOp = 2.0e-9;
  double deviceSecPerOp = 2.0e-11;

  /// Time spent moving data (Figure 6's metric).
  [[nodiscard]] double transferSeconds(const TransferLedger &ledger) const;
  /// Modeled end-to-end runtime (Figure 5's metric).
  [[nodiscard]] double totalSeconds(const TransferLedger &ledger) const;
};

/// What the caller (interpreter) must do after a map-enter decision.
struct MapEnterAction {
  bool allocate = false;     ///< fresh device allocation required
  bool copyToDevice = false; ///< HtoD copy of the mapped section
};

/// What the caller must do after a map-exit decision.
struct MapExitAction {
  bool copyFromDevice = false; ///< DtoH copy of the mapped section
  bool deallocate = false;     ///< device allocation released
};

/// The device data environment: present table with reference counts.
/// Objects are identified by opaque ids (the interpreter's memory-object
/// ids); `bytes` is the size of the mapped section for transfer accounting.
///
/// Ids are dense (the interpreter allocates them sequentially), so the
/// table is a flat refcount vector rather than a map: `isPresent` sits on
/// the interpreter's load/store path (every device-mode slot access picks
/// a buffer by presence), making the probe an array read matters.
class DeviceDataEnvironment {
public:
  explicit DeviceDataEnvironment(TransferLedger &ledger) : ledger_(ledger) {}

  /// Region entry for one map item (OpenMP 5.2 §5.8.3 semantics).
  MapEnterAction mapEnter(int objectId, MapKind kind, std::uint64_t bytes,
                          const std::string &tag);
  /// Region exit for the same item.
  MapExitAction mapExit(int objectId, MapKind kind, std::uint64_t bytes,
                        const std::string &tag);

  /// `target update to/from`: unconditional copy when present; no-op (per
  /// spec) when the object is not in the device data environment.
  bool updateTo(int objectId, std::uint64_t bytes, const std::string &tag);
  bool updateFrom(int objectId, std::uint64_t bytes, const std::string &tag);

  [[nodiscard]] bool isPresent(int objectId) const {
    return refCount(objectId) > 0;
  }
  [[nodiscard]] unsigned refCount(int objectId) const {
    const auto index = static_cast<std::size_t>(objectId);
    return objectId >= 0 && index < refCounts_.size() ? refCounts_[index]
                                                      : 0;
  }

  [[nodiscard]] TransferLedger &ledger() { return ledger_; }

private:
  /// Refcount slot for `objectId`, growing the table on demand.
  [[nodiscard]] unsigned &slot(int objectId);

  TransferLedger &ledger_;
  std::vector<unsigned> refCounts_;
};

[[nodiscard]] const char *mapKindSpelling(MapKind kind);

} // namespace ompdart::sim
