#include "sim/runtime.hpp"

namespace ompdart::sim {

void TransferLedger::record(TransferDir dir, std::uint64_t bytes,
                            std::string tag) {
  transfers_.push_back(Transfer{dir, bytes, std::move(tag)});
  if (dir == TransferDir::HtoD) {
    bytesHtoD_ += bytes;
    ++callsHtoD_;
  } else {
    bytesDtoH_ += bytes;
    ++callsDtoH_;
  }
}

void TransferLedger::reset() {
  transfers_.clear();
  bytesHtoD_ = bytesDtoH_ = 0;
  callsHtoD_ = callsDtoH_ = 0;
  kernelLaunches_ = 0;
  hostOps_ = deviceOps_ = 0;
}

double CostModel::transferSeconds(const TransferLedger &ledger) const {
  const double htod =
      static_cast<double>(ledger.bytes(TransferDir::HtoD)) /
      hostToDeviceBytesPerSec;
  const double dtoh =
      static_cast<double>(ledger.bytes(TransferDir::DtoH)) /
      deviceToHostBytesPerSec;
  const double latency = perTransferLatencySec * ledger.totalCalls();
  return htod + dtoh + latency;
}

double CostModel::totalSeconds(const TransferLedger &ledger) const {
  return transferSeconds(ledger) +
         perKernelLaunchSec * ledger.kernelLaunches() +
         hostSecPerOp * static_cast<double>(ledger.hostOps()) +
         deviceSecPerOp * static_cast<double>(ledger.deviceOps());
}

unsigned &DeviceDataEnvironment::slot(int objectId) {
  const auto index = static_cast<std::size_t>(objectId);
  if (index >= refCounts_.size())
    refCounts_.resize(index + 1, 0);
  return refCounts_[index];
}

MapEnterAction DeviceDataEnvironment::mapEnter(int objectId, MapKind kind,
                                               std::uint64_t bytes,
                                               const std::string &tag) {
  MapEnterAction action;
  unsigned &refCount = slot(objectId);
  if (refCount == 0) {
    action.allocate = true;
    if (kind == MapKind::To || kind == MapKind::ToFrom) {
      action.copyToDevice = true;
      ledger_.record(TransferDir::HtoD, bytes, tag);
    }
  }
  ++refCount;
  return action;
}

MapExitAction DeviceDataEnvironment::mapExit(int objectId, MapKind kind,
                                             std::uint64_t bytes,
                                             const std::string &tag) {
  MapExitAction action;
  if (refCount(objectId) == 0)
    return action; // exit without matching entry: no-op
  unsigned &refCount = slot(objectId);
  if (refCount > 0)
    --refCount;
  if (kind == MapKind::Delete)
    refCount = 0;
  if (refCount == 0) {
    // Data is only copied back when the reference count reaches zero — the
    // exact trap of the paper's Listing 3.
    if (kind == MapKind::From || kind == MapKind::ToFrom) {
      action.copyFromDevice = true;
      ledger_.record(TransferDir::DtoH, bytes, tag);
    }
    action.deallocate = true;
  }
  return action;
}

bool DeviceDataEnvironment::updateTo(int objectId, std::uint64_t bytes,
                                     const std::string &tag) {
  if (!isPresent(objectId))
    return false;
  ledger_.record(TransferDir::HtoD, bytes, tag);
  return true;
}

bool DeviceDataEnvironment::updateFrom(int objectId, std::uint64_t bytes,
                                       const std::string &tag) {
  if (!isPresent(objectId))
    return false;
  ledger_.record(TransferDir::DtoH, bytes, tag);
  return true;
}

const char *mapKindSpelling(MapKind kind) {
  switch (kind) {
  case MapKind::To:
    return "to";
  case MapKind::From:
    return "from";
  case MapKind::ToFrom:
    return "tofrom";
  case MapKind::Alloc:
    return "alloc";
  case MapKind::Release:
    return "release";
  case MapKind::Delete:
    return "delete";
  }
  return "?";
}

} // namespace ompdart::sim
