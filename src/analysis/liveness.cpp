#include "analysis/liveness.hpp"

namespace ompdart {

const std::set<const VarDecl *> LivenessAnalysis::kEmpty;

bool LivenessAnalysis::eventReads(const AccessEvent &event) {
  // Device-side reads do not keep a variable live on the *host*; only host
  // reads (and unknowns) do.
  if (event.onDevice)
    return false;
  return event.kind == AccessKind::Read || event.kind == AccessKind::Unknown;
}

bool LivenessAnalysis::eventKills(const AccessEvent &event) {
  // Only unconditional host writes to whole scalars kill; array-element /
  // pointee writes and device writes never kill host liveness.
  if (event.onDevice || event.conditional)
    return false;
  if (event.kind != AccessKind::Write)
    return false;
  return event.var != nullptr && !isAggregateLike(event.var);
}

LivenessAnalysis::LivenessAnalysis(const AstCfg &cfg,
                                   const FunctionAccessInfo &accesses)
    : cfg_(cfg), accesses_(accesses) {
  // Escape set.
  for (const VarDecl *taken : accesses.addressTaken)
    escaping_.insert(taken);
  if (cfg.function() != nullptr) {
    for (const VarDecl *param : cfg.function()->params())
      if (isAggregateLike(param))
        escaping_.insert(param);
  }

  // Per-block use/kill, walking elements in order.
  for (const auto &block : cfg.blocks()) {
    BlockSets &sets = sets_[block.get()];
    for (const Stmt *stmt : block->elements()) {
      auto it = accesses.byStmt.find(stmt);
      if (it == accesses.byStmt.end())
        continue;
      for (const AccessEvent &event : it->second) {
        if (event.var == nullptr)
          continue;
        if (event.var->isGlobal()) {
          escaping_.insert(event.var);
          continue;
        }
        if (eventReads(event) && !sets.kill.count(event.var))
          sets.use.insert(event.var);
        if (eventKills(event))
          sets.kill.insert(event.var);
      }
    }
  }

  // Standard backward fixed point.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto &block : cfg.blocks()) {
      BlockSets &sets = sets_[block.get()];
      std::set<const VarDecl *> liveOut;
      for (const CfgEdge &edge : block->successors()) {
        const BlockSets &succ = sets_[edge.target];
        liveOut.insert(succ.liveIn.begin(), succ.liveIn.end());
      }
      std::set<const VarDecl *> liveIn = sets.use;
      for (const VarDecl *var : liveOut)
        if (!sets.kill.count(var))
          liveIn.insert(var);
      if (liveIn != sets.liveIn || liveOut != sets.liveOut) {
        sets.liveIn = std::move(liveIn);
        sets.liveOut = std::move(liveOut);
        changed = true;
      }
    }
  }
}

bool LivenessAnalysis::escapes(const VarDecl *var) const {
  if (var == nullptr)
    return true;
  if (var->isGlobal())
    return true;
  if (var->isParam() && isAggregateLike(var))
    return true;
  return escaping_.count(var) > 0;
}

bool LivenessAnalysis::isLiveAfter(const Stmt *stmt,
                                   const VarDecl *var) const {
  if (escapes(var))
    return true;
  const BasicBlock *block = cfg_.blockOf(stmt);
  if (block == nullptr)
    return true; // unknown placement: be conservative
  auto setsIt = sets_.find(block);
  if (setsIt == sets_.end())
    return true;
  const BlockSets &sets = setsIt->second;

  // Walk the remainder of the block after `stmt`.
  bool after = false;
  for (const Stmt *element : block->elements()) {
    if (element == stmt) {
      after = true;
      continue;
    }
    if (!after)
      continue;
    auto it = accesses_.byStmt.find(element);
    if (it == accesses_.byStmt.end())
      continue;
    for (const AccessEvent &event : it->second) {
      if (event.var != var)
        continue;
      if (eventReads(event))
        return true;
      if (eventKills(event))
        return false;
    }
  }
  return sets.liveOut.count(var) > 0;
}

const std::set<const VarDecl *> &
LivenessAnalysis::liveIn(const BasicBlock *block) const {
  auto it = sets_.find(block);
  return it != sets_.end() ? it->second.liveIn : kEmpty;
}

const std::set<const VarDecl *> &
LivenessAnalysis::liveOut(const BasicBlock *block) const {
  auto it = sets_.find(block);
  return it != sets_.end() ? it->second.liveOut : kEmpty;
}

} // namespace ompdart
