#include "analysis/liveness.hpp"

namespace ompdart {

bool LivenessAnalysis::eventReads(const AccessEvent &event) {
  // Device-side reads do not keep a variable live on the *host*; only host
  // reads (and unknowns) do.
  if (event.onDevice)
    return false;
  return event.kind == AccessKind::Read || event.kind == AccessKind::Unknown;
}

bool LivenessAnalysis::eventKills(const AccessEvent &event) {
  // Only unconditional host writes to whole scalars kill; array-element /
  // pointee writes and device writes never kill host liveness.
  if (event.onDevice || event.conditional)
    return false;
  if (event.kind != AccessKind::Write)
    return false;
  return event.var != nullptr && !isAggregateLike(event.var);
}

LivenessAnalysis::LivenessAnalysis(const AstCfg &cfg,
                                   const FunctionAccessInfo &accesses)
    : cfg_(cfg), accesses_(accesses) {
  // Escape set.
  for (const VarDecl *taken : accesses.addressTaken)
    escaping_.insert(taken);
  if (cfg.function() != nullptr) {
    for (const VarDecl *param : cfg.function()->params())
      if (isAggregateLike(param))
        escaping_.insert(param);
  }

  // Number the variables that participate in host liveness (globals escape
  // instead; they never enter the bitsets).
  blockCount_ = cfg.blocks().size();
  for (const auto &block : cfg.blocks()) {
    for (const Stmt *stmt : block->elements()) {
      auto it = accesses.byStmt.find(stmt);
      if (it == accesses.byStmt.end())
        continue;
      for (const AccessEvent &event : it->second) {
        if (event.var == nullptr)
          continue;
        if (event.var->isGlobal()) {
          escaping_.insert(event.var);
          continue;
        }
        if (eventReads(event) || eventKills(event))
          varIndex_.emplace(event.var,
                            static_cast<std::uint32_t>(varIndex_.size()));
      }
    }
  }
  if (varIndex_.empty() || blockCount_ == 0)
    return;

  words_ = (varIndex_.size() + 63) / 64;
  bits_.assign(4 * blockCount_ * words_, 0);

  // Per-block use/kill, walking elements in order.
  for (const auto &block : cfg.blocks()) {
    std::uint64_t *use = setWords(kUse, block->id());
    std::uint64_t *kill = setWords(kKill, block->id());
    for (const Stmt *stmt : block->elements()) {
      auto it = accesses.byStmt.find(stmt);
      if (it == accesses.byStmt.end())
        continue;
      for (const AccessEvent &event : it->second) {
        if (event.var == nullptr || event.var->isGlobal())
          continue;
        auto varIt = varIndex_.find(event.var);
        if (varIt == varIndex_.end())
          continue;
        const std::size_t word = varIt->second / 64;
        const std::uint64_t bit = 1ull << (varIt->second % 64);
        if (eventReads(event) && (kill[word] & bit) == 0)
          use[word] |= bit;
        if (eventKills(event))
          kill[word] |= bit;
      }
    }
  }

  // Standard backward fixed point; reverse block order converges in few
  // passes because blocks are created in roughly source order.
  std::vector<std::uint64_t> out(words_);
  bool changed = true;
  while (changed) {
    changed = false;
    const auto &blocks = cfg.blocks();
    for (auto blockIt = blocks.rbegin(); blockIt != blocks.rend();
         ++blockIt) {
      const BasicBlock *block = blockIt->get();
      std::fill(out.begin(), out.end(), 0);
      for (const CfgEdge &edge : block->successors()) {
        const std::uint64_t *succIn = setWords(kLiveIn, edge.target->id());
        for (std::size_t w = 0; w < words_; ++w)
          out[w] |= succIn[w];
      }
      std::uint64_t *liveOut = setWords(kLiveOut, block->id());
      std::uint64_t *liveIn = setWords(kLiveIn, block->id());
      const std::uint64_t *use = setWords(kUse, block->id());
      const std::uint64_t *kill = setWords(kKill, block->id());
      for (std::size_t w = 0; w < words_; ++w) {
        const std::uint64_t in = use[w] | (out[w] & ~kill[w]);
        if (out[w] != liveOut[w] || in != liveIn[w]) {
          liveOut[w] = out[w];
          liveIn[w] = in;
          changed = true;
        }
      }
    }
  }
}

bool LivenessAnalysis::escapes(const VarDecl *var) const {
  if (var == nullptr)
    return true;
  if (var->isGlobal())
    return true;
  if (var->isParam() && isAggregateLike(var))
    return true;
  return escaping_.count(var) > 0;
}

bool LivenessAnalysis::isLiveAfter(const Stmt *stmt,
                                   const VarDecl *var) const {
  if (escapes(var))
    return true;
  const BasicBlock *block = cfg_.blockOf(stmt);
  if (block == nullptr)
    return true; // unknown placement: be conservative

  // Walk the remainder of the block after `stmt`.
  bool after = false;
  for (const Stmt *element : block->elements()) {
    if (element == stmt) {
      after = true;
      continue;
    }
    if (!after)
      continue;
    auto it = accesses_.byStmt.find(element);
    if (it == accesses_.byStmt.end())
      continue;
    for (const AccessEvent &event : it->second) {
      if (event.var != var)
        continue;
      if (eventReads(event))
        return true;
      if (eventKills(event))
        return false;
    }
  }

  auto varIt = varIndex_.find(var);
  if (varIt == varIndex_.end())
    return false; // never read nor killed anywhere: dead after the block
  if (bits_.empty())
    return false;
  const std::uint64_t *liveOut = setWords(kLiveOut, block->id());
  return (liveOut[varIt->second / 64] & (1ull << (varIt->second % 64))) != 0;
}

} // namespace ompdart
