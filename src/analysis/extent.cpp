#include "analysis/extent.hpp"

#include "frontend/ast_printer.hpp"
#include "frontend/const_fold.hpp"

#include <algorithm>

namespace ompdart {

ExtentResolver::ExtentResolver(const TranslationUnit &unit,
                               const InterproceduralResult &interproc,
                               const MallocExtents &mallocExtents,
                               const summary::TuImports *imports,
                               DiagnosticEngine *diags)
    : unit_(unit), interproc_(interproc), mallocExtents_(mallocExtents),
      imports_(imports), diags_(diags) {}

ExtentInfo ExtentResolver::effectiveExtent(VarDecl *var) const {
  auto it = extentMemo_.find(var);
  if (it != extentMemo_.end())
    return it->second;
  ExtentInfo extent = computeEffectiveExtent(var);
  extentMemo_.emplace(var, extent);
  return extent;
}

ExtentInfo ExtentResolver::computeEffectiveExtent(VarDecl *var) const {
  ExtentInfo extent = dataExtent(var, mallocExtents_);
  if (extent.known())
    return extent;
  // Guo-style inference: when the allocation size is invisible (pointer
  // parameter), derive the accessed extent from the loop bounds of the
  // device accesses. All accesses must be single-dimension `a[i]` with an
  // analyzable enclosing loop (or constant index).
  std::optional<std::uint64_t> maxConst;
  std::string symbolicSpelling;
  const Expr *symbolicExpr = nullptr;
  for (const AccessEvent &event : accesses_->events) {
    if (event.var != var || !event.isDataAccess())
      continue;
    if (event.subscript == nullptr)
      return callSiteExtent(var); // whole-object access: try call sites
    const Expr *base = ignoreParensAndCasts(event.subscript->base());
    if (base == nullptr || base->kind() == ExprKind::ArraySubscript)
      return callSiteExtent(var);
    if (const auto constIndex =
            foldIntegerConstant(event.subscript->index());
        constIndex && *constIndex >= 0) {
      maxConst = std::max<std::uint64_t>(
          maxConst.value_or(0), static_cast<std::uint64_t>(*constIndex) + 1);
      continue;
    }
    VarDecl *indexVar =
        referencedVar(ignoreParensAndCasts(event.subscript->index()));
    const auto *loops = cfg_->enclosingLoops(event.stmt);
    bool bounded = false;
    if (indexVar != nullptr && loops != nullptr) {
      for (const Stmt *loop : *loops) {
        const auto *forStmt = dynamic_cast<const ForStmt *>(loop);
        if (forStmt == nullptr)
          continue;
        const LoopBounds loopBounds = analyzeForLoop(forStmt);
        if (!loopBounds.valid || loopBounds.inductionVar != indexVar)
          continue;
        if (loopBounds.upperConst) {
          maxConst = std::max<std::uint64_t>(
              maxConst.value_or(0),
              static_cast<std::uint64_t>(
                  std::max<std::int64_t>(0, *loopBounds.upperConst)));
          bounded = true;
        } else if (loopBounds.upperExpr != nullptr &&
                   !loopBounds.upperInclusiveAdjusted) {
          const std::string spelling = exprToSource(loopBounds.upperExpr);
          if (symbolicSpelling.empty() || symbolicSpelling == spelling) {
            symbolicSpelling = spelling;
            symbolicExpr = loopBounds.upperExpr;
            bounded = true;
          }
        }
        break;
      }
    }
    if (!bounded)
      return callSiteExtent(var);
  }
  if (!symbolicSpelling.empty()) {
    extent.spelling = symbolicSpelling;
    extent.expr = symbolicExpr;
  } else if (maxConst) {
    extent.constElems = maxConst;
    extent.spelling = std::to_string(*maxConst);
  }
  if (extent.known())
    return extent;
  return callSiteExtent(var);
}

std::pair<const FunctionDecl *, int>
ExtentResolver::paramOwner(const VarDecl *param) const {
  for (const FunctionDecl *fn : unit_.functions)
    for (std::size_t i = 0; i < fn->params().size(); ++i)
      if (fn->params()[i] == param)
        return {fn, static_cast<int>(i)};
  return {nullptr, -1};
}

void ExtentResolver::reportCallSiteDisagreement(
    const VarDecl *param, const FunctionDecl *owner, const std::string &what,
    const std::vector<std::string> &sites) const {
  if (diags_ == nullptr)
    return;
  if (!disagreementDiagnosed_.emplace(param, what).second)
    return;
  std::string where;
  for (const std::string &site : sites)
    where += (where.empty() ? "" : ", ") + site;
  diags_->warning(param->range().begin,
                  "call sites disagree on the " + what + " of parameter '" +
                      param->name() + "' of '" + owner->name() + "': " +
                      where + "; taking the conservative path");
}

ExtentInfo ExtentResolver::callSiteExtent(VarDecl *var) const {
  // Interprocedural extent propagation: a pointer parameter whose accesses
  // defeat loop-bound inference (e.g. neighbor stencils `a[i - cols]`) can
  // still get its extent from the arguments at every call site — local
  // ones plus records the Project link imported from other TUs — provided
  // they agree. Disagreement is diagnosed (naming the call sites) and
  // stays conservative.
  const auto [owner, paramIndex] = paramOwner(var);
  if (owner == nullptr || paramIndex < 0)
    return ExtentInfo{};
  struct SiteExtent {
    ExtentInfo info;
    std::string where;
  };
  std::vector<SiteExtent> sites;
  for (const FunctionDecl *caller : unit_.functions) {
    const FunctionAccessInfo *info = interproc_.accessesFor(caller);
    if (info == nullptr)
      continue;
    for (const CallSite &site : info->callSites) {
      if (site.call->callee() != owner ||
          static_cast<std::size_t>(paramIndex) >= site.call->args().size())
        continue;
      VarDecl *argVar =
          referencedVar(ignoreParensAndCasts(
              site.call->args()[static_cast<std::size_t>(paramIndex)]));
      if (argVar == nullptr)
        return ExtentInfo{}; // untrackable argument: give up
      const ExtentInfo argExtent = dataExtent(argVar, mallocExtents_);
      if (!argExtent.known())
        return ExtentInfo{};
      std::string where = "'" + argExtent.spelling + "'";
      if (site.stmt != nullptr)
        where += " at line " + std::to_string(site.stmt->range().begin.line);
      sites.push_back(SiteExtent{argExtent, std::move(where)});
    }
  }
  if (imports_ != nullptr) {
    auto factsIt = imports_->paramFacts.find(owner->name());
    if (factsIt != imports_->paramFacts.end() &&
        static_cast<std::size_t>(paramIndex) < factsIt->second.size()) {
      for (const summary::ParamCallFact &fact :
           factsIt->second[static_cast<std::size_t>(paramIndex)]) {
        if (!fact.tracked || !fact.extentKnown)
          return ExtentInfo{}; // untrackable external argument: give up
        ExtentInfo imported;
        imported.constElems = fact.extentConstElems;
        imported.spelling = fact.extentSpelling;
        sites.push_back(SiteExtent{
            imported, "'" + imported.spelling + "' at " + fact.callerFile +
                          ":" + std::to_string(fact.line)});
      }
    }
  }
  if (sites.empty())
    return ExtentInfo{};
  for (std::size_t i = 1; i < sites.size(); ++i) {
    if (sites[i].info.spelling != sites.front().info.spelling ||
        sites[i].info.constElems != sites.front().info.constElems) {
      std::vector<std::string> descriptions;
      for (const SiteExtent &site : sites)
        descriptions.push_back(site.where);
      reportCallSiteDisagreement(var, owner, "extent", descriptions);
      return ExtentInfo{};
    }
  }
  // Local sites come first, so a symbolic extent keeps its foldable AST
  // expression whenever one exists.
  return sites.front().info;
}

std::optional<std::uint64_t>
ExtentResolver::symbolicExtentElems(const ExtentInfo &extent) const {
  if (extent.expr == nullptr)
    return std::nullopt;
  if (const auto folded = foldIntegerConstant(extent.expr);
      folded && *folded >= 0)
    return static_cast<std::uint64_t>(*folded);
  const VarDecl *lengthVar =
      referencedVar(ignoreParensAndCasts(extent.expr));
  if (lengthVar == nullptr || !lengthVar->isParam())
    return std::nullopt;
  if (const auto value = paramConstAcrossCallSites(lengthVar);
      value && *value >= 0)
    return static_cast<std::uint64_t>(*value);
  return std::nullopt;
}

std::optional<std::int64_t>
ExtentResolver::paramConstAcrossCallSites(const VarDecl *param) const {
  const auto [owner, paramIndex] = paramOwner(param);
  if (owner == nullptr || paramIndex < 0)
    return std::nullopt;
  // The call-site constant only describes the parameter's entry value; if
  // the function ever reassigns it, the clause will evaluate the new value
  // at runtime — stay conservative.
  if (const FunctionAccessInfo *ownerInfo = interproc_.accessesFor(owner)) {
    for (const AccessEvent &event : ownerInfo->events) {
      if (event.var != param)
        continue;
      if (event.kind == AccessKind::Write ||
          event.kind == AccessKind::Unknown)
        return std::nullopt;
    }
  }
  struct SiteValue {
    std::int64_t value = 0;
    std::string where;
  };
  std::vector<SiteValue> sites;
  for (const FunctionDecl *caller : unit_.functions) {
    const FunctionAccessInfo *info = interproc_.accessesFor(caller);
    if (info == nullptr)
      continue;
    for (const CallSite &site : info->callSites) {
      if (site.call->callee() != owner ||
          static_cast<std::size_t>(paramIndex) >= site.call->args().size())
        continue;
      const auto folded = foldIntegerConstant(
          site.call->args()[static_cast<std::size_t>(paramIndex)]);
      if (!folded)
        return std::nullopt; // non-constant argument: give up
      std::string where = std::to_string(*folded);
      if (site.stmt != nullptr)
        where += " at line " + std::to_string(site.stmt->range().begin.line);
      sites.push_back(SiteValue{*folded, std::move(where)});
    }
  }
  // Cross-TU records the Project link imported for this parameter.
  if (imports_ != nullptr) {
    auto factsIt = imports_->paramFacts.find(owner->name());
    if (factsIt != imports_->paramFacts.end() &&
        static_cast<std::size_t>(paramIndex) < factsIt->second.size()) {
      for (const summary::ParamCallFact &fact :
           factsIt->second[static_cast<std::size_t>(paramIndex)]) {
        if (!fact.constValue)
          return std::nullopt; // non-constant external argument: give up
        sites.push_back(SiteValue{
            *fact.constValue, std::to_string(*fact.constValue) + " at " +
                                  fact.callerFile + ":" +
                                  std::to_string(fact.line)});
      }
    }
  }
  if (sites.empty())
    return std::nullopt;
  for (std::size_t i = 1; i < sites.size(); ++i) {
    if (sites[i].value != sites.front().value) {
      std::vector<std::string> descriptions;
      for (const SiteValue &site : sites)
        descriptions.push_back(site.where);
      reportCallSiteDisagreement(param, owner, "constant value",
                                 descriptions);
      return std::nullopt; // call sites disagree: stay conservative
    }
  }
  return sites.front().value;
}

} // namespace ompdart
