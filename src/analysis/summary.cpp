#include "analysis/summary.hpp"

#include "analysis/bounds.hpp"
#include "analysis/execution.hpp"
#include "frontend/const_fold.hpp"
#include "support/hash.hpp"

#include <algorithm>
#include <functional>

namespace ompdart::summary {

// ---------------------------------------------------------------------------
// JSON round trips
// ---------------------------------------------------------------------------

bool ArgBinding::operator==(const ArgBinding &other) const {
  return kind == other.kind && paramIndex == other.paramIndex &&
         global == other.global &&
         isPointerArg == other.isPointerArg &&
         pointeeConst == other.pointeeConst &&
         constValue == other.constValue && extentKnown == other.extentKnown &&
         extentConstElems == other.extentConstElems &&
         extentSpelling == other.extentSpelling;
}

json::Value ArgBinding::toJson() const {
  json::Value doc = json::Value::object();
  switch (kind) {
  case Kind::None:
    doc.set("binds", "none");
    break;
  case Kind::Param:
    doc.set("binds", "param");
    doc.set("paramIndex", paramIndex);
    break;
  case Kind::Global:
    doc.set("binds", "global");
    doc.set("global", symbolName(global));
    break;
  }
  doc.set("isPointerArg", isPointerArg);
  doc.set("pointeeConst", pointeeConst);
  if (constValue)
    doc.set("constValue", *constValue);
  doc.set("extentKnown", extentKnown);
  if (extentConstElems)
    doc.set("extentConstElems", *extentConstElems);
  if (!extentSpelling.empty())
    doc.set("extentSpelling", extentSpelling);
  return doc;
}

ArgBinding ArgBinding::fromJson(const json::Value &value) {
  ArgBinding binding;
  const std::string kindName = value.stringOr("binds", "none");
  if (kindName == "param") {
    binding.kind = Kind::Param;
    binding.paramIndex = static_cast<int>(value.intOr("paramIndex", -1));
  } else if (kindName == "global") {
    binding.kind = Kind::Global;
    binding.global = internSymbol(value.stringOr("global"));
  }
  binding.isPointerArg = value.boolOr("isPointerArg");
  binding.pointeeConst = value.boolOr("pointeeConst");
  if (value.find("constValue") != nullptr)
    binding.constValue = value.intOr("constValue");
  binding.extentKnown = value.boolOr("extentKnown");
  if (value.find("extentConstElems") != nullptr)
    binding.extentConstElems = value.uintOr("extentConstElems");
  binding.extentSpelling = value.stringOr("extentSpelling");
  return binding;
}

bool CallEdge::operator==(const CallEdge &other) const {
  return callee == other.callee && onDevice == other.onDevice &&
         provableTrips == other.provableTrips && guarded == other.guarded &&
         line == other.line && args == other.args;
}

json::Value CallEdge::toJson() const {
  json::Value doc = json::Value::object();
  doc.set("callee", callee);
  doc.set("onDevice", onDevice);
  doc.set("provableTrips", provableTrips);
  doc.set("guarded", guarded);
  doc.set("line", line);
  json::Value argsJson = json::Value::array();
  for (const ArgBinding &arg : args)
    argsJson.push(arg.toJson());
  doc.set("args", std::move(argsJson));
  return doc;
}

CallEdge CallEdge::fromJson(const json::Value &value) {
  CallEdge edge;
  edge.callee = value.stringOr("callee");
  edge.onDevice = value.boolOr("onDevice");
  edge.provableTrips = value.uintOr("provableTrips", 1);
  edge.guarded = value.boolOr("guarded");
  edge.line = static_cast<unsigned>(value.uintOr("line"));
  if (const json::Value *argsJson = value.find("args"))
    for (const json::Value &item : argsJson->items())
      edge.args.push_back(ArgBinding::fromJson(item));
  return edge;
}

json::Value FunctionArtifact::toJson() const {
  json::Value doc = direct.toJson();
  json::Value callsJson = json::Value::array();
  for (const CallEdge &edge : calls)
    callsJson.push(edge.toJson());
  doc.set("calls", std::move(callsJson));
  return doc;
}

std::optional<FunctionArtifact>
FunctionArtifact::fromJson(const json::Value &value, std::string *error) {
  auto direct = PortableSummary::fromJson(value, error);
  if (!direct)
    return std::nullopt;
  FunctionArtifact artifact;
  artifact.direct = std::move(*direct);
  if (const json::Value *callsJson = value.find("calls"))
    for (const json::Value &item : callsJson->items())
      artifact.calls.push_back(CallEdge::fromJson(item));
  return artifact;
}

json::Value ModuleSummary::toJson() const {
  json::Value doc = json::Value::object();
  doc.set("version", kVersion);
  doc.set("file", file);
  json::Value functionsJson = json::Value::array();
  for (const FunctionArtifact &fn : functions)
    functionsJson.push(fn.toJson());
  doc.set("functions", std::move(functionsJson));
  json::Value externsJson = json::Value::array();
  for (const ExternRef &ref : externs) {
    json::Value refJson = json::Value::object();
    refJson.set("function", ref.function);
    refJson.set("signature", ref.signature);
    refJson.set("line", ref.line);
    externsJson.push(std::move(refJson));
  }
  doc.set("externs", std::move(externsJson));
  return doc;
}

std::optional<ModuleSummary> ModuleSummary::fromJson(const json::Value &value,
                                                     std::string *error) {
  if (!value.isObject()) {
    json::setFirstError(error, "module summary is not an object");
    return std::nullopt;
  }
  if (value.uintOr("version") != kVersion) {
    json::setFirstError(error, "unsupported module summary version");
    return std::nullopt;
  }
  ModuleSummary module;
  module.file = value.stringOr("file");
  if (const json::Value *functionsJson = value.find("functions")) {
    for (const json::Value &item : functionsJson->items()) {
      auto artifact = FunctionArtifact::fromJson(item, error);
      if (!artifact)
        return std::nullopt;
      module.functions.push_back(std::move(*artifact));
    }
  }
  if (const json::Value *externsJson = value.find("externs")) {
    for (const json::Value &item : externsJson->items()) {
      ExternRef ref;
      ref.function = item.stringOr("function");
      ref.signature = item.stringOr("signature");
      ref.line = static_cast<unsigned>(item.uintOr("line"));
      module.externs.push_back(std::move(ref));
    }
  }
  return module;
}

namespace {

/// Drops source-location members ("line", "callerFile") recursively.
/// Fingerprints must cover facts, not positions: a comment added above a
/// call site shifts its line but changes no analysis fact, and must not
/// invalidate dependents' cached plans.
json::Value scrubLocations(const json::Value &value) {
  if (value.isObject()) {
    json::Value out = json::Value::object();
    for (const auto &[key, member] : value.members()) {
      if (key == "line" || key == "callerFile")
        continue;
      out.set(key, scrubLocations(member));
    }
    return out;
  }
  if (value.isArray()) {
    json::Value out = json::Value::array();
    for (const json::Value &item : value.items())
      out.push(scrubLocations(item));
    return out;
  }
  return value;
}

} // namespace

std::string ModuleSummary::fingerprint() const {
  // Facts only: renaming a TU must not ripple, so the file label — and
  // its embedding in static-function linked names — is normalized away.
  ModuleSummary normalized = *this;
  normalized.rebindFile("");
  json::Value doc = scrubLocations(normalized.toJson());
  return hash::fingerprint(doc.dump(/*pretty=*/false));
}

void ModuleSummary::rebindFile(const std::string &newFile) {
  const std::string oldPrefix = file + "::";
  const std::string newPrefix = newFile + "::";
  auto rebind = [&](std::string &name) {
    if (name.rfind(oldPrefix, 0) == 0)
      name = newPrefix + name.substr(oldPrefix.size());
  };
  for (FunctionArtifact &artifact : functions) {
    rebind(artifact.direct.function);
    for (CallEdge &edge : artifact.calls)
      rebind(edge.callee);
  }
  file = newFile;
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

namespace {

/// Link-level identity of a function. `static` functions have internal
/// linkage — two TUs may define same-named statics that are distinct
/// objects — so their linked name is qualified by the defining file,
/// keeping them out of the global namespace while still participating in
/// the closure and execution graph for their own module.
std::string linkedName(const FunctionDecl *fn, const std::string &file) {
  return fn->isStatic() ? file + "::" + fn->name() : fn->name();
}

} // namespace

ModuleSummary extractModuleSummary(const TranslationUnit &unit,
                                   const std::string &file) {
  ModuleSummary module;
  module.file = file;
  MallocExtents mallocExtents(unit);

  for (const FunctionDecl *fn : unit.functions) {
    if (!fn->isDefined()) {
      // A `static` prototype can only be defined in this TU; exporting it
      // as an extern ref could wrongly import another TU's same-named
      // definition.
      if (fn->isStatic())
        continue;
      ExternRef ref;
      ref.function = fn->name();
      ref.signature = functionSignature(fn);
      ref.line = fn->range().begin.line;
      module.externs.push_back(std::move(ref));
      continue;
    }
    const FunctionAccessInfo info = collectAccesses(fn);
    FunctionArtifact artifact;
    artifact.direct = portableSummaryOf(directFunctionSummary(fn, info));
    artifact.direct.function = linkedName(fn, file);

    std::unordered_map<const Stmt *, const Stmt *> parents;
    {
      ParentMap map(fn);
      parents = map.takeLinks();
    }
    for (const CallSite &site : info.callSites) {
      const FunctionDecl *callee = site.call->callee();
      if (callee == nullptr)
        continue; // builtins (printf, malloc, ...) are not linkable
      CallEdge edge;
      edge.callee = linkedName(callee, file);
      edge.onDevice = site.onDevice;
      const ProvableMultiplier multiplier =
          provableMultiplierOf(parents, site.stmt);
      edge.provableTrips = multiplier.trips;
      edge.guarded = multiplier.guarded;
      if (site.stmt != nullptr)
        edge.line = site.stmt->range().begin.line;
      const auto &args = site.call->args();
      for (std::size_t i = 0; i < args.size(); ++i) {
        ArgBinding binding;
        // Effect binding object (pointer passing, array decay, &scalar).
        if (VarDecl *object = argumentObject(args[i])) {
          if (object->isGlobal()) {
            binding.kind = ArgBinding::Kind::Global;
            binding.global = internSymbol(object->name());
          } else {
            for (std::size_t p = 0; p < fn->params().size(); ++p) {
              if (fn->params()[p] == object) {
                binding.kind = ArgBinding::Kind::Param;
                binding.paramIndex = static_cast<int>(p);
                break;
              }
            }
          }
        }
        // Callee parameter type facts (pessimistic rule for callees with no
        // body anywhere in the project).
        if (i < callee->params().size()) {
          if (const auto *pointer = dynamic_cast<const PointerType *>(
                  callee->params()[i]->type())) {
            binding.isPointerArg = true;
            binding.pointeeConst = pointer->isPointeeConst();
          }
        }
        // Argument value/extent facts for cross-TU symbolic resolution
        // (mirrors the planner's local call-site scans: constants fold per
        // argument expression; extents follow the directly referenced
        // variable).
        binding.constValue = foldIntegerConstant(args[i]);
        if (VarDecl *argVar = referencedVar(ignoreParensAndCasts(args[i]))) {
          const ExtentInfo extent = dataExtent(argVar, mallocExtents);
          binding.extentKnown = extent.known();
          binding.extentConstElems = extent.constElems;
          binding.extentSpelling = extent.spelling;
        }
        edge.args.push_back(std::move(binding));
      }
      artifact.calls.push_back(std::move(edge));
    }
    module.functions.push_back(std::move(artifact));
  }
  return module;
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

namespace {

/// Merges `effect` onto the caller object the binding names (param or
/// global); unbound arguments drop the effect — effects on caller locals
/// stay local, exactly as in the TU-level fixed point.
void mergeOntoBinding(PortableSummary &caller, const ArgBinding &binding,
                      const ObjectEffect &effect) {
  if (!effect.any())
    return;
  switch (binding.kind) {
  case ArgBinding::Kind::Param:
    if (binding.paramIndex >= 0 &&
        static_cast<std::size_t>(binding.paramIndex) < caller.params.size())
      caller.params[static_cast<std::size_t>(binding.paramIndex)].mergeFrom(
          effect);
    return;
  case ArgBinding::Kind::Global:
    caller.globals[binding.global].mergeFrom(effect);
    return;
  case ArgBinding::Kind::None:
    return;
  }
}

/// The paper's pessimistic rule for a callee with no body anywhere in the
/// project, applied through one call edge's argument bindings.
void mergePessimisticEdge(PortableSummary &caller, const CallEdge &edge) {
  for (const ArgBinding &binding : edge.args) {
    if (!binding.isPointerArg)
      continue;
    ObjectEffect effect;
    effect.readHost = true;
    if (!binding.pointeeConst) {
      effect.writeHost = true;
      effect.unknown = true;
    }
    mergeOntoBinding(caller, binding, effect);
  }
}

} // namespace

LinkResult linkProgram(const std::vector<ModuleSummary> &modules,
                       LinkOptions options) {
  LinkResult result;

  // Definition index + duplicate detection (first definition wins,
  // matching the single-TU parser's prototype-reuse rule). Ownership is
  // tracked by module *index*, not file string: a manifest accidentally
  // listing one path twice must not double-count anything.
  std::map<std::string, std::size_t> ownerIndex;
  for (std::size_t moduleIndex = 0; moduleIndex < modules.size();
       ++moduleIndex) {
    const ModuleSummary &module = modules[moduleIndex];
    for (const FunctionArtifact &artifact : module.functions) {
      const std::string &name = artifact.direct.function;
      auto [it, inserted] = ownerIndex.emplace(name, moduleIndex);
      if (!inserted) {
        Diagnostic diag;
        diag.severity = Severity::Warning;
        diag.message = "duplicate definition of '" + name + "' in " +
                       module.file + " (already defined in " +
                       modules[it->second].file +
                       "); the first definition wins";
        result.diagnostics.push_back(std::move(diag));
        continue;
      }
      result.definedIn[name] = module.file;
      result.closed[name] = artifact.direct;
    }
  }
  const auto owns = [&](const std::string &name, std::size_t moduleIndex) {
    auto it = ownerIndex.find(name);
    return it != ownerIndex.end() && it->second == moduleIndex;
  };

  // Signature checks: a TU's prototype must match the defining TU's
  // signature, or that TU keeps the pessimistic treatment for the callee.
  for (const ModuleSummary &module : modules) {
    for (const ExternRef &ref : module.externs) {
      auto closedIt = result.closed.find(ref.function);
      if (closedIt == result.closed.end())
        continue; // genuinely external to the project
      if (closedIt->second.signature == ref.signature)
        continue;
      result.signatureMismatches[module.file].insert(ref.function);
      Diagnostic diag;
      diag.severity = Severity::Warning;
      diag.message = "declaration of '" + ref.function + "' at " +
                     module.file + ":" + std::to_string(ref.line) + " (" +
                     ref.signature + ") does not match its definition in " +
                     result.definedIn[ref.function] + " (" +
                     closedIt->second.signature +
                     "); treating the call as external";
      result.diagnostics.push_back(std::move(diag));
    }
  }

  // Whole-program §IV-C fixed point over the serialized artifacts. The set
  // of linked functions is fixed before the passes start, so every name
  // lookup the inner loop used to do — which callee summary an edge merges
  // from, whether the declaring file's signature mismatched — is resolved
  // ONCE here to a plain pointer (null = pessimistic rule). The passes
  // then touch no string-keyed containers at all: merges land in
  // SymbolId-keyed globals maps and convergence compares integer keys.
  struct EdgeWork {
    const CallEdge *edge = nullptr;
    /// Closed summary of the callee; null applies the pessimistic rule.
    const PortableSummary *callee = nullptr;
  };
  struct FunctionWork {
    const FunctionArtifact *artifact = nullptr;
    PortableSummary *current = nullptr; ///< slot in result.closed
    std::vector<EdgeWork> edges;
  };
  std::vector<FunctionWork> work;
  for (std::size_t moduleIndex = 0; moduleIndex < modules.size();
       ++moduleIndex) {
    const ModuleSummary &module = modules[moduleIndex];
    const std::set<std::string> *mismatches = nullptr;
    auto mismatchIt = result.signatureMismatches.find(module.file);
    if (mismatchIt != result.signatureMismatches.end())
      mismatches = &mismatchIt->second;
    for (const FunctionArtifact &artifact : module.functions) {
      const std::string &name = artifact.direct.function;
      if (!owns(name, moduleIndex))
        continue; // duplicate loser
      FunctionWork fn;
      fn.artifact = &artifact;
      fn.current = &result.closed.at(name);
      fn.edges.reserve(artifact.calls.size());
      for (const CallEdge &edge : artifact.calls) {
        EdgeWork ew;
        ew.edge = &edge;
        if (mismatches == nullptr || mismatches->count(edge.callee) == 0) {
          auto calleeIt = result.closed.find(edge.callee);
          if (calleeIt != result.closed.end())
            ew.callee = &calleeIt->second;
        }
        fn.edges.push_back(ew);
      }
      work.push_back(std::move(fn));
    }
  }
  for (unsigned pass = 0; pass < options.maxPasses; ++pass) {
    ++result.passes;
    bool changed = false;
    for (const FunctionWork &fn : work) {
      PortableSummary next = fn.artifact->direct;
      for (const EdgeWork &ew : fn.edges) {
        if (ew.callee == nullptr) {
          mergePessimisticEdge(next, *ew.edge);
          continue;
        }
        const PortableSummary &callee = *ew.callee;
        next.launchesKernels |= callee.launchesKernels;
        for (std::size_t i = 0;
             i < callee.params.size() && i < ew.edge->args.size(); ++i)
          mergeOntoBinding(next, ew.edge->args[i], callee.params[i]);
        for (const auto &[globalSym, effect] : callee.globals) {
          if (effect.any())
            next.globals[globalSym].mergeFrom(effect);
        }
      }
      if (!(*fn.current == next)) {
        *fn.current = std::move(next);
        changed = true;
      }
    }
    if (!changed)
      break;
  }

  // Whole-program execution estimation over the same weighted-graph
  // estimator the per-TU planner uses.
  WeightedCallGraph graph;
  for (const ModuleSummary &module : modules) {
    for (const FunctionArtifact &artifact : module.functions)
      graph.addFunction(artifact.direct.function);
    for (const ExternRef &ref : module.externs)
      graph.addFunction(ref.function);
  }
  for (std::size_t moduleIndex = 0; moduleIndex < modules.size();
       ++moduleIndex) {
    for (const FunctionArtifact &artifact :
         modules[moduleIndex].functions) {
      if (!owns(artifact.direct.function, moduleIndex))
        continue;
      for (const CallEdge &edge : artifact.calls)
        graph.addCall(artifact.direct.function, edge.callee,
                      edge.provableTrips, edge.guarded, edge.onDevice);
    }
  }
  result.executions = estimateExecutions(graph);

  // Per-parameter call-site facts across every module. Duplicate-loser
  // definitions are dead code in the linked program; their call sites
  // must not pollute the facts (or force spurious disagreements).
  for (std::size_t moduleIndex = 0; moduleIndex < modules.size();
       ++moduleIndex) {
    const ModuleSummary &module = modules[moduleIndex];
    for (const FunctionArtifact &artifact : module.functions) {
      if (!owns(artifact.direct.function, moduleIndex))
        continue;
      for (const CallEdge &edge : artifact.calls) {
        auto &perParam = result.paramFacts[edge.callee];
        if (perParam.size() < edge.args.size())
          perParam.resize(edge.args.size());
        for (std::size_t i = 0; i < edge.args.size(); ++i) {
          const ArgBinding &binding = edge.args[i];
          ParamCallFact fact;
          fact.callerFile = module.file;
          fact.line = edge.line;
          fact.tracked = binding.extentKnown || binding.constValue ||
                         binding.kind != ArgBinding::Kind::None;
          fact.constValue = binding.constValue;
          fact.extentKnown = binding.extentKnown;
          fact.extentConstElems = binding.extentConstElems;
          fact.extentSpelling = binding.extentSpelling;
          perParam[i].push_back(std::move(fact));
        }
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Per-TU imports
// ---------------------------------------------------------------------------

json::Value TuImports::toJson() const {
  json::Value doc = json::Value::object();
  json::Value externalsJson = json::Value::object();
  for (const auto &[name, portable] : externals)
    externalsJson.set(name, portable.toJson());
  doc.set("externals", std::move(externalsJson));
  json::Value executionsJson = json::Value::object();
  for (const auto &[name, count] : executions)
    executionsJson.set(name, count);
  doc.set("executions", std::move(executionsJson));
  json::Value factsJson = json::Value::object();
  for (const auto &[name, perParam] : paramFacts) {
    json::Value paramsJson = json::Value::array();
    for (const auto &facts : perParam) {
      json::Value siteJson = json::Value::array();
      for (const ParamCallFact &fact : facts) {
        json::Value factJson = json::Value::object();
        factJson.set("callerFile", fact.callerFile);
        factJson.set("line", fact.line);
        factJson.set("tracked", fact.tracked);
        if (fact.constValue)
          factJson.set("constValue", *fact.constValue);
        factJson.set("extentKnown", fact.extentKnown);
        if (fact.extentConstElems)
          factJson.set("extentConstElems", *fact.extentConstElems);
        if (!fact.extentSpelling.empty())
          factJson.set("extentSpelling", fact.extentSpelling);
        siteJson.push(std::move(factJson));
      }
      paramsJson.push(std::move(siteJson));
    }
    factsJson.set(name, std::move(paramsJson));
  }
  doc.set("paramFacts", std::move(factsJson));
  return doc;
}

std::string TuImports::fingerprint() const {
  // Location members (call-site lines, caller file paths) serve
  // diagnostics only; scrubbing them keeps the plan-cache key insensitive
  // to edits that move code without changing facts.
  return hash::fingerprint(scrubLocations(toJson()).dump(/*pretty=*/false));
}

TuImports buildTuImports(const ModuleSummary &module, const LinkResult &link) {
  TuImports imports;
  const std::set<std::string> *mismatches = nullptr;
  auto mismatchIt = link.signatureMismatches.find(module.file);
  if (mismatchIt != link.signatureMismatches.end())
    mismatches = &mismatchIt->second;

  auto recordExecution = [&](const std::string &name) {
    auto it = link.executions.find(name);
    if (it != link.executions.end())
      imports.executions[name] = it->second;
  };

  for (const ExternRef &ref : module.externs) {
    recordExecution(ref.function);
    if (mismatches != nullptr && mismatches->count(ref.function) > 0)
      continue; // stays pessimistic
    auto closedIt = link.closed.find(ref.function);
    if (closedIt == link.closed.end())
      continue; // external to the whole project
    imports.externals[ref.function] = closedIt->second;
  }
  const std::string staticPrefix = module.file + "::";
  for (const FunctionArtifact &artifact : module.functions) {
    const std::string &name = artifact.direct.function;
    recordExecution(name);
    // Static functions link under their file-qualified name; the planner
    // looks execution counts up by the bare declaration name, which is
    // unambiguous within the TU.
    if (name.rfind(staticPrefix, 0) == 0) {
      auto it = link.executions.find(name);
      if (it != link.executions.end())
        imports.executions[name.substr(staticPrefix.size())] = it->second;
    }
    auto factsIt = link.paramFacts.find(name);
    if (factsIt == link.paramFacts.end())
      continue;
    // Only *external* call sites: the TU's planner re-scans its own.
    std::vector<std::vector<ParamCallFact>> externalFacts(
        factsIt->second.size());
    bool anyExternal = false;
    for (std::size_t i = 0; i < factsIt->second.size(); ++i) {
      for (const ParamCallFact &fact : factsIt->second[i]) {
        if (fact.callerFile == module.file)
          continue;
        externalFacts[i].push_back(fact);
        anyExternal = true;
      }
    }
    if (anyExternal)
      imports.paramFacts[name] = std::move(externalFacts);
  }
  return imports;
}

std::vector<std::size_t>
reverseTopologicalOrder(const std::vector<ModuleSummary> &modules) {
  // Module-level dependency edges: caller-module -> callee-module. A DFS
  // post-order then yields callees before callers; ties and cycles resolve
  // by input order, so the schedule is deterministic.
  std::map<std::string, std::size_t> moduleOf;
  for (std::size_t i = 0; i < modules.size(); ++i)
    for (const FunctionArtifact &artifact : modules[i].functions)
      moduleOf.emplace(artifact.direct.function, i);

  std::vector<std::vector<std::size_t>> callees(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    std::set<std::size_t> targets;
    for (const FunctionArtifact &artifact : modules[i].functions)
      for (const CallEdge &edge : artifact.calls) {
        auto it = moduleOf.find(edge.callee);
        if (it != moduleOf.end() && it->second != i)
          targets.insert(it->second);
      }
    callees[i].assign(targets.begin(), targets.end());
  }

  std::vector<std::size_t> order;
  std::vector<bool> visited(modules.size(), false);
  std::function<void(std::size_t)> visit = [&](std::size_t index) {
    if (visited[index])
      return;
    visited[index] = true;
    for (std::size_t callee : callees[index])
      visit(callee);
    order.push_back(index);
  };
  for (std::size_t i = 0; i < modules.size(); ++i)
    visit(i);
  return order;
}

} // namespace ompdart::summary
