#include "analysis/bounds.hpp"

#include "frontend/ast_printer.hpp"
#include "frontend/const_fold.hpp"

#include <algorithm>

namespace ompdart {

namespace {

/// Collects every variable referenced in an expression tree.
void collectVars(const Expr *expr, std::vector<VarDecl *> &out) {
  if (expr == nullptr)
    return;
  switch (expr->kind()) {
  case ExprKind::DeclRef: {
    VarDecl *var = static_cast<const DeclRefExpr *>(expr)->decl();
    if (var != nullptr &&
        std::find(out.begin(), out.end(), var) == out.end())
      out.push_back(var);
    return;
  }
  case ExprKind::ArraySubscript: {
    const auto *subscript = static_cast<const ArraySubscriptExpr *>(expr);
    collectVars(subscript->base(), out);
    collectVars(subscript->index(), out);
    return;
  }
  case ExprKind::Member:
    collectVars(static_cast<const MemberExpr *>(expr)->base(), out);
    return;
  case ExprKind::Call:
    for (const Expr *arg : static_cast<const CallExpr *>(expr)->args())
      collectVars(arg, out);
    return;
  case ExprKind::Unary:
    collectVars(static_cast<const UnaryExpr *>(expr)->operand(), out);
    return;
  case ExprKind::Binary: {
    const auto *binary = static_cast<const BinaryExpr *>(expr);
    collectVars(binary->lhs(), out);
    collectVars(binary->rhs(), out);
    return;
  }
  case ExprKind::Conditional: {
    const auto *conditional = static_cast<const ConditionalExpr *>(expr);
    collectVars(conditional->cond(), out);
    collectVars(conditional->trueExpr(), out);
    collectVars(conditional->falseExpr(), out);
    return;
  }
  case ExprKind::Cast:
    collectVars(static_cast<const CastExpr *>(expr)->operand(), out);
    return;
  case ExprKind::Paren:
    collectVars(static_cast<const ParenExpr *>(expr)->inner(), out);
    return;
  case ExprKind::InitList:
    for (const Expr *init : static_cast<const InitListExpr *>(expr)->inits())
      collectVars(init, out);
    return;
  default:
    return;
  }
}

/// Matches `var = var (+|-) constant` or `var (+|-)= constant`; returns the
/// signed step, or nullopt.
std::optional<int> stepOfIncExpr(const Expr *inc, const VarDecl *var) {
  inc = ignoreParensAndCasts(inc);
  if (inc == nullptr)
    return std::nullopt;
  if (inc->kind() == ExprKind::Unary) {
    const auto *unary = static_cast<const UnaryExpr *>(inc);
    if (referencedVar(unary->operand()) != var)
      return std::nullopt;
    switch (unary->op()) {
    case UnaryOp::PreInc:
    case UnaryOp::PostInc:
      return 1;
    case UnaryOp::PreDec:
    case UnaryOp::PostDec:
      return -1;
    default:
      return std::nullopt;
    }
  }
  if (inc->kind() == ExprKind::Binary) {
    const auto *binary = static_cast<const BinaryExpr *>(inc);
    if (referencedVar(binary->lhs()) != var)
      return std::nullopt;
    if (binary->op() == BinaryOp::AddAssign || binary->op() == BinaryOp::SubAssign) {
      const auto step = foldIntegerConstant(binary->rhs());
      if (!step)
        return std::nullopt;
      return binary->op() == BinaryOp::AddAssign ? static_cast<int>(*step)
                                                 : -static_cast<int>(*step);
    }
    if (binary->op() == BinaryOp::Assign) {
      const Expr *rhs = ignoreParensAndCasts(binary->rhs());
      if (rhs == nullptr || rhs->kind() != ExprKind::Binary)
        return std::nullopt;
      const auto *sum = static_cast<const BinaryExpr *>(rhs);
      if (sum->op() != BinaryOp::Add && sum->op() != BinaryOp::Sub)
        return std::nullopt;
      if (referencedVar(sum->lhs()) != var)
        return std::nullopt;
      const auto step = foldIntegerConstant(sum->rhs());
      if (!step)
        return std::nullopt;
      return sum->op() == BinaryOp::Add ? static_cast<int>(*step)
                                        : -static_cast<int>(*step);
    }
  }
  return std::nullopt;
}

} // namespace

LoopBounds analyzeForLoop(const ForStmt *loop) {
  LoopBounds bounds;
  if (loop == nullptr)
    return bounds;

  // Init: `int i = e` or `i = e`.
  const Expr *lower = nullptr;
  VarDecl *var = nullptr;
  if (const auto *declStmt = dynamic_cast<const DeclStmt *>(loop->init())) {
    if (declStmt->decls().size() == 1 &&
        declStmt->decls()[0]->init() != nullptr) {
      var = declStmt->decls()[0];
      lower = declStmt->decls()[0]->init();
    }
  } else if (const auto *exprStmt =
                 dynamic_cast<const ExprStmt *>(loop->init())) {
    const Expr *init = ignoreParensAndCasts(exprStmt->expr());
    if (init != nullptr && init->kind() == ExprKind::Binary) {
      const auto *assign = static_cast<const BinaryExpr *>(init);
      if (assign->op() == BinaryOp::Assign) {
        var = referencedVar(assign->lhs());
        lower = assign->rhs();
      }
    }
  }
  if (var == nullptr || lower == nullptr)
    return bounds;

  // Inc: determines direction.
  const auto step = stepOfIncExpr(loop->inc(), var);
  if (!step || (*step != 1 && *step != -1))
    return bounds;

  // Cond: `i < e`, `i <= e`, `i > e`, `i >= e` (or mirrored).
  const Expr *cond = ignoreParensAndCasts(loop->cond());
  if (cond == nullptr || cond->kind() != ExprKind::Binary)
    return bounds;
  const auto *cmp = static_cast<const BinaryExpr *>(cond);
  BinaryOp op = cmp->op();
  const Expr *boundExpr = nullptr;
  if (referencedVar(cmp->lhs()) == var) {
    boundExpr = cmp->rhs();
  } else if (referencedVar(cmp->rhs()) == var) {
    boundExpr = cmp->lhs();
    // Mirror the comparison: `n > i` is `i < n`.
    switch (op) {
    case BinaryOp::LT:
      op = BinaryOp::GT;
      break;
    case BinaryOp::GT:
      op = BinaryOp::LT;
      break;
    case BinaryOp::LE:
      op = BinaryOp::GE;
      break;
    case BinaryOp::GE:
      op = BinaryOp::LE;
      break;
    default:
      break;
    }
  } else {
    return bounds;
  }

  const bool upward = *step > 0;
  if (upward && op != BinaryOp::LT && op != BinaryOp::LE)
    return bounds;
  if (!upward && op != BinaryOp::GT && op != BinaryOp::GE)
    return bounds;

  bounds.valid = true;
  bounds.inductionVar = var;
  bounds.step = *step;
  if (upward) {
    bounds.lowerExpr = lower;
    bounds.lowerConst = foldIntegerConstant(lower);
    bounds.upperExpr = boundExpr;
    bounds.upperConst = foldIntegerConstant(boundExpr);
    if (op == BinaryOp::LE) {
      bounds.upperInclusiveAdjusted = true;
      if (bounds.upperConst)
        bounds.upperConst = *bounds.upperConst + 1;
    }
  } else {
    // Downward loop `for (i = hi; i >= lo; --i)`: lower bound is the cond
    // bound, upper (exclusive) is init + 1.
    bounds.lowerExpr = boundExpr;
    bounds.lowerConst = foldIntegerConstant(boundExpr);
    if (op == BinaryOp::GT && bounds.lowerConst)
      bounds.lowerConst = *bounds.lowerConst + 1;
    bounds.upperExpr = lower;
    bounds.upperConst = foldIntegerConstant(lower);
    if (bounds.upperConst)
      bounds.upperConst = *bounds.upperConst + 1;
    bounds.upperInclusiveAdjusted = true;
  }
  return bounds;
}

VarDecl *findIndexingVar(const Stmt *loop) {
  const auto *forStmt = dynamic_cast<const ForStmt *>(loop);
  if (forStmt == nullptr)
    return nullptr; // while/do: "not a valid variable" -> caller continues
  const LoopBounds bounds = analyzeForLoop(forStmt);
  return bounds.valid ? bounds.inductionVar : nullptr;
}

std::vector<VarDecl *>
referencedIndexVars(const ArraySubscriptExpr *access) {
  std::vector<VarDecl *> vars;
  const Expr *cursor = access;
  while (cursor != nullptr && cursor->kind() == ExprKind::ArraySubscript) {
    const auto *level = static_cast<const ArraySubscriptExpr *>(cursor);
    collectVars(level->index(), vars);
    cursor = ignoreParensAndCasts(level->base());
  }
  return vars;
}

const Stmt *findUpdateInsertLoc(const ArraySubscriptExpr *access,
                                const Stmt *anchor,
                                const std::vector<const Stmt *> &loops,
                                SourceLocation locLim) {
  const Stmt *pos = anchor;
  if (access == nullptr)
    return pos; // scalar access: no loop hoisting (paper Algorithm 1)
  const std::vector<VarDecl *> indexingVars = referencedIndexVars(access);
  // `loops` is outermost-first; the paper pops a stack whose top is the
  // innermost loop, so iterate in reverse.
  for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
    const Stmt *loop = *it;
    if (locLim.isValid() && loop->range().begin.offset < locLim.offset)
      break; // would hoist above the producer (locLim)
    VarDecl *inductionVar = findIndexingVar(loop);
    if (inductionVar == nullptr)
      continue;
    if (std::find(indexingVars.begin(), indexingVars.end(), inductionVar) !=
        indexingVars.end())
      pos = loop;
  }
  return pos;
}

MallocExtents::MallocExtents(const TranslationUnit &unit) {
  for (const FunctionDecl *fn : unit.functions)
    if (fn->isDefined())
      scanStmt(fn->body());
  for (const VarDecl *global : unit.globals)
    if (global->init() != nullptr)
      recordAssignment(global, global->init());
}

void MallocExtents::scanStmt(const Stmt *stmt) {
  if (stmt == nullptr)
    return;
  switch (stmt->kind()) {
  case StmtKind::Compound:
    for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
      scanStmt(sub);
    return;
  case StmtKind::Decl:
    for (const VarDecl *var : static_cast<const DeclStmt *>(stmt)->decls())
      if (var->init() != nullptr)
        recordAssignment(var, var->init());
    return;
  case StmtKind::Expr: {
    const Expr *expr =
        ignoreParensAndCasts(static_cast<const ExprStmt *>(stmt)->expr());
    if (expr != nullptr && expr->kind() == ExprKind::Binary) {
      const auto *assign = static_cast<const BinaryExpr *>(expr);
      if (assign->op() == BinaryOp::Assign) {
        const VarDecl *var = referencedVar(assign->lhs());
        if (var != nullptr)
          recordAssignment(var, assign->rhs());
      }
    }
    return;
  }
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    scanStmt(ifStmt->thenStmt());
    scanStmt(ifStmt->elseStmt());
    return;
  }
  case StmtKind::For:
    scanStmt(static_cast<const ForStmt *>(stmt)->init());
    scanStmt(static_cast<const ForStmt *>(stmt)->body());
    return;
  case StmtKind::While:
    scanStmt(static_cast<const WhileStmt *>(stmt)->body());
    return;
  case StmtKind::Do:
    scanStmt(static_cast<const DoStmt *>(stmt)->body());
    return;
  case StmtKind::Switch:
    scanStmt(static_cast<const SwitchStmt *>(stmt)->body());
    return;
  case StmtKind::Case:
    scanStmt(static_cast<const CaseStmt *>(stmt)->sub());
    return;
  case StmtKind::Default:
    scanStmt(static_cast<const DefaultStmt *>(stmt)->sub());
    return;
  case StmtKind::OmpDirective:
    scanStmt(static_cast<const OmpDirectiveStmt *>(stmt)->associated());
    return;
  default:
    return;
  }
}

void MallocExtents::recordAssignment(const VarDecl *var, const Expr *value) {
  if (var == nullptr || !var->type()->isPointer())
    return;
  const Expr *stripped = ignoreParensAndCasts(value);
  if (stripped == nullptr || stripped->kind() != ExprKind::Call)
    return;
  const auto *call = static_cast<const CallExpr *>(stripped);
  const auto *pointer = static_cast<const PointerType *>(var->type());
  const std::uint64_t elemSize = pointer->pointee()->sizeInBytes();
  if (elemSize == 0)
    return;

  ExtentInfo info;
  if (call->calleeName() == "malloc" && call->args().size() == 1) {
    // Pattern: malloc(count * sizeof(T)) or malloc(sizeof(T) * count) or a
    // constant byte count.
    const Expr *size = ignoreParensAndCasts(call->args()[0]);
    if (const auto bytes = foldIntegerConstant(size);
        bytes && *bytes >= 0 && *bytes % static_cast<std::int64_t>(elemSize) == 0) {
      info.constElems = static_cast<std::uint64_t>(*bytes) / elemSize;
      info.spelling = std::to_string(*info.constElems);
    } else if (size != nullptr && size->kind() == ExprKind::Binary) {
      const auto *product = static_cast<const BinaryExpr *>(size);
      if (product->op() == BinaryOp::Mul) {
        const Expr *lhs = ignoreParensAndCasts(product->lhs());
        const Expr *rhs = ignoreParensAndCasts(product->rhs());
        const Expr *count = nullptr;
        if (lhs != nullptr && lhs->kind() == ExprKind::Sizeof)
          count = rhs;
        else if (rhs != nullptr && rhs->kind() == ExprKind::Sizeof)
          count = lhs;
        if (count != nullptr) {
          info.expr = count;
          info.constElems = [&]() -> std::optional<std::uint64_t> {
            if (auto folded = foldIntegerConstant(count); folded && *folded >= 0)
              return static_cast<std::uint64_t>(*folded);
            return std::nullopt;
          }();
          info.spelling = exprToSource(count);
        }
      }
    }
  } else if (call->calleeName() == "calloc" && call->args().size() == 2) {
    const Expr *count = ignoreParensAndCasts(call->args()[0]);
    info.expr = count;
    if (auto folded = foldIntegerConstant(count); folded && *folded >= 0)
      info.constElems = static_cast<std::uint64_t>(*folded);
    info.spelling = exprToSource(count);
  }
  if (info.known())
    extents_[var] = std::move(info);
}

ExtentInfo dataExtent(const VarDecl *var, const MallocExtents &mallocExtents) {
  ExtentInfo info;
  if (var == nullptr)
    return info;
  if (const auto *array = dynamic_cast<const ArrayType *>(var->type())) {
    // Multi-dimensional arrays report the flattened element count so byte
    // accounting matches the simulator; the spelling keeps the outer extent.
    std::uint64_t total = 1;
    bool allKnown = true;
    const Type *cursor = array;
    while (const auto *dim = dynamic_cast<const ArrayType *>(cursor)) {
      if (dim->extent())
        total *= *dim->extent();
      else
        allKnown = false;
      cursor = dim->element();
    }
    if (allKnown) {
      info.constElems = total;
      info.spelling = std::to_string(total);
    } else {
      info.spelling = array->extentSpelling();
    }
    return info;
  }
  if (var->type()->isPointer()) {
    if (const ExtentInfo *fromMalloc = mallocExtents.lookup(var))
      return *fromMalloc;
    return info;
  }
  // Scalars and records: one element.
  info.constElems = 1;
  info.spelling = "1";
  return info;
}

bool isFullCoverageWrite(const AccessEvent &event, const VarDecl *var,
                         const ExtentInfo &extent,
                         const std::vector<const Stmt *> &loops) {
  if (event.kind != AccessKind::Write || event.conditional ||
      event.subscript == nullptr || var == nullptr)
    return false;
  // Only single-dimension direct `a[i]` accesses are provable.
  const Expr *index = ignoreParensAndCasts(event.subscript->index());
  VarDecl *indexVar = referencedVar(index);
  if (indexVar == nullptr)
    return false;
  const Expr *base = ignoreParensAndCasts(event.subscript->base());
  if (base == nullptr || base->kind() == ExprKind::ArraySubscript)
    return false; // multi-dimensional: be conservative
  // Find the enclosing loop driven by the index variable.
  for (const Stmt *loop : loops) {
    const auto *forStmt = dynamic_cast<const ForStmt *>(loop);
    if (forStmt == nullptr)
      continue;
    const LoopBounds bounds = analyzeForLoop(forStmt);
    if (!bounds.valid || bounds.inductionVar != indexVar)
      continue;
    if (bounds.step != 1)
      return false;
    if (!bounds.lowerConst || *bounds.lowerConst != 0)
      return false;
    // Upper bound must cover the full extent: equal constants or textually
    // identical symbolic spellings.
    if (bounds.upperConst && extent.constElems &&
        static_cast<std::uint64_t>(*bounds.upperConst) >= *extent.constElems)
      return true;
    if (bounds.upperExpr != nullptr && !extent.spelling.empty() &&
        exprToSource(bounds.upperExpr) == extent.spelling &&
        !bounds.upperInclusiveAdjusted)
      return true;
    return false;
  }
  return false;
}

} // namespace ompdart
