// Interprocedural side-effect analysis (paper §IV-C).
//
// For every function we summarize how it touches data visible to callers:
// pointee data of pointer parameters and global variables, split by memory
// space (host vs device). Summaries are computed to a fixed point over the
// call graph, bounded by the maximum call depth, and call sites in each
// function's access stream are then *augmented* with synthesized events so
// the data-flow analysis sees callee effects inline ("maximally pessimistic"
// for functions without visible bodies; `const T *` parameters are assumed
// read-only, matching the paper's conservative rules).
#pragma once

#include "analysis/access.hpp"
#include "frontend/ast.hpp"

#include <map>
#include <unordered_map>
#include <vector>

namespace ompdart {

/// Effect of a function on one externally visible object.
struct ObjectEffect {
  bool readHost = false;
  bool writeHost = false;
  bool readDevice = false;
  bool writeDevice = false;
  /// Set when the effect is not statically known (external function).
  bool unknown = false;

  void mergeFrom(const ObjectEffect &other) {
    readHost |= other.readHost;
    writeHost |= other.writeHost;
    readDevice |= other.readDevice;
    writeDevice |= other.writeDevice;
    unknown |= other.unknown;
  }
  [[nodiscard]] bool any() const {
    return readHost || writeHost || readDevice || writeDevice || unknown;
  }
  [[nodiscard]] bool operator==(const ObjectEffect &other) const {
    return readHost == other.readHost && writeHost == other.writeHost &&
           readDevice == other.readDevice &&
           writeDevice == other.writeDevice && unknown == other.unknown;
  }
};

/// Side-effect summary for one function.
struct FunctionSummary {
  const FunctionDecl *function = nullptr;
  /// Effect per parameter index (only meaningful for pointer params).
  std::vector<ObjectEffect> params;
  /// Effects on global variables.
  std::map<VarDecl *, ObjectEffect> globals;
  /// True when the function (transitively) launches offload kernels.
  bool launchesKernels = false;
  /// External function without a body: callers must assume the worst.
  bool isExternal = false;

  [[nodiscard]] bool operator==(const FunctionSummary &other) const {
    return params == other.params && globals == other.globals &&
           launchesKernels == other.launchesKernels;
  }
};

/// Result of the interprocedural pass over a translation unit.
struct InterproceduralResult {
  /// Per-function summaries.
  std::unordered_map<const FunctionDecl *, FunctionSummary> summaries;
  /// Per-function access info, augmented with call-site effects.
  std::unordered_map<const FunctionDecl *, FunctionAccessInfo> accesses;
  /// Number of fixed-point passes performed.
  unsigned passes = 0;

  [[nodiscard]] const FunctionSummary *
  summaryFor(const FunctionDecl *fn) const {
    auto it = summaries.find(fn);
    return it != summaries.end() ? &it->second : nullptr;
  }
  [[nodiscard]] const FunctionAccessInfo *
  accessesFor(const FunctionDecl *fn) const {
    auto it = accesses.find(fn);
    return it != accesses.end() ? &it->second : nullptr;
  }
};

struct InterproceduralOptions {
  /// Cap on fixed-point passes (the paper: "can be repeated several times up
  /// to the maximum call depth ... stopped early if no updates are made").
  unsigned maxPasses = 16;
};

/// Runs access collection plus the interprocedural fixed point for every
/// defined function in the unit.
[[nodiscard]] InterproceduralResult
runInterproceduralAnalysis(const TranslationUnit &unit,
                           InterproceduralOptions options = {});

} // namespace ompdart
