// Interprocedural side-effect analysis (paper §IV-C).
//
// For every function we summarize how it touches data visible to callers:
// pointee data of pointer parameters and global variables, split by memory
// space (host vs device). Summaries are computed to a fixed point over the
// call graph, bounded by the maximum call depth, and call sites in each
// function's access stream are then *augmented* with synthesized events so
// the data-flow analysis sees callee effects inline.
//
// The two phases are exposed separately (computeFunctionSummaries /
// augmentCallSiteAccesses) so the Project layer can run the fixed point
// over whole-program facts: a bodiless callee whose closed summary was
// *imported* from another translation unit (PortableSummary, the
// JSON-round-trippable artifact form) is analyzed with that summary instead
// of the "maximally pessimistic" external rule; only genuinely external
// functions (no body anywhere in the project, `const T *` parameters
// assumed read-only) keep the paper's conservative treatment.
#pragma once

#include "analysis/access.hpp"
#include "frontend/ast.hpp"
#include "support/intern.hpp"
#include "support/json.hpp"

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ompdart {

/// Effect of a function on one externally visible object.
struct ObjectEffect {
  bool readHost = false;
  bool writeHost = false;
  bool readDevice = false;
  bool writeDevice = false;
  /// Set when the effect is not statically known (external function).
  bool unknown = false;
  /// For a host write of a pointer parameter: the callee's parameter index
  /// whose value bounds a provable full sweep `param[0 .. bound)` (-1 when
  /// coverage is unprovable). Call-site augmentation compares the bound
  /// argument against the passed array's extent: equal means the callee
  /// fully overwrites the object, so the caller's planner may treat the
  /// call as a kill instead of paying a device->host sync first.
  int fullWriteBoundParam = -1;

  void mergeFrom(const ObjectEffect &other) {
    // Two distinct host-write sources make per-sweep coverage ambiguous.
    if (other.writeHost)
      fullWriteBoundParam =
          writeHost && fullWriteBoundParam != other.fullWriteBoundParam
              ? -1
              : other.fullWriteBoundParam;
    readHost |= other.readHost;
    writeHost |= other.writeHost;
    readDevice |= other.readDevice;
    writeDevice |= other.writeDevice;
    unknown |= other.unknown;
  }
  [[nodiscard]] bool any() const {
    return readHost || writeHost || readDevice || writeDevice || unknown;
  }
  [[nodiscard]] bool operator==(const ObjectEffect &other) const {
    return readHost == other.readHost && writeHost == other.writeHost &&
           readDevice == other.readDevice &&
           writeDevice == other.writeDevice && unknown == other.unknown &&
           fullWriteBoundParam == other.fullWriteBoundParam;
  }

  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] static ObjectEffect fromJson(const json::Value &value);
};

/// Side-effect summary for one function.
struct FunctionSummary {
  const FunctionDecl *function = nullptr;
  /// Effect per parameter index (only meaningful for pointer params).
  std::vector<ObjectEffect> params;
  /// Effects on global variables.
  std::map<VarDecl *, ObjectEffect> globals;
  /// True when the function (transitively) launches offload kernels.
  bool launchesKernels = false;
  /// External function without a body: callers must assume the worst.
  bool isExternal = false;
  /// Bodiless here, but its closed summary was imported from another
  /// translation unit of the same project — no pessimism applied.
  bool imported = false;

  [[nodiscard]] bool operator==(const FunctionSummary &other) const {
    return params == other.params && globals == other.globals &&
           launchesKernels == other.launchesKernels;
  }
};

/// AST-free, JSON-round-trippable form of a FunctionSummary: effects are
/// keyed by parameter index and global *name* instead of decl pointers.
/// This is the artifact the Project layer serializes, caches and imports
/// across translation units.
struct PortableSummary {
  std::string function;
  /// `functionSignature()` of the summarized declaration; importers refuse
  /// summaries whose signature does not match their local prototype.
  std::string signature;
  bool defined = false;
  bool launchesKernels = false;
  std::vector<ObjectEffect> params;
  /// Keyed by the *interned* global name, so the whole-program fixed point
  /// merges and compares these maps with integer keys. The serialized form
  /// stays name-keyed (sorted by name — toJson spells the symbols out).
  std::map<SymbolId, ObjectEffect> globals;

  [[nodiscard]] bool operator==(const PortableSummary &other) const {
    return function == other.function && signature == other.signature &&
           defined == other.defined &&
           launchesKernels == other.launchesKernels &&
           params == other.params && globals == other.globals;
  }

  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] static std::optional<PortableSummary>
  fromJson(const json::Value &value, std::string *error = nullptr);
};

/// "ret(param, param, ...)" type spelling used for cross-TU linkage checks.
[[nodiscard]] std::string functionSignature(const FunctionDecl *fn);

/// Resolves which caller variable a call argument exposes to the callee
/// (pointer passing, array decay, &scalar). Returns null when the argument
/// does not name a trackable object.
[[nodiscard]] VarDecl *argumentObject(const Expr *arg);

/// Converts a decl-bound summary into its portable form.
[[nodiscard]] PortableSummary portableSummaryOf(const FunctionSummary &summary);

/// Binds a portable summary to a local (bodiless) declaration: parameter
/// effects attach by index, global effects by name against the unit's
/// globals (effects on globals this unit never declares are dropped — the
/// unit cannot reference them, so they cannot affect its mapping).
[[nodiscard]] FunctionSummary
bindImportedSummary(const PortableSummary &portable, const FunctionDecl *fn,
                    const TranslationUnit &unit);

/// Intra-procedural (direct) summary of one defined function: effects from
/// its own access events only, no call propagation. The fixed point and the
/// Project layer's module extraction both start from this.
[[nodiscard]] FunctionSummary
directFunctionSummary(const FunctionDecl *fn, const FunctionAccessInfo &info);

/// Pessimistic summary for a function whose body is not visible anywhere:
/// `const T *` parameters are read-only; all other pointer parameters may
/// be read and written on the host (the paper's cross-TU rule).
[[nodiscard]] FunctionSummary externalSummary(const FunctionDecl *fn);

/// Result of the interprocedural pass over a translation unit.
struct InterproceduralResult {
  /// Per-function summaries.
  std::unordered_map<const FunctionDecl *, FunctionSummary> summaries;
  /// Per-function access info, augmented with call-site effects.
  std::unordered_map<const FunctionDecl *, FunctionAccessInfo> accesses;
  /// Number of fixed-point passes performed.
  unsigned passes = 0;

  [[nodiscard]] const FunctionSummary *
  summaryFor(const FunctionDecl *fn) const {
    auto it = summaries.find(fn);
    return it != summaries.end() ? &it->second : nullptr;
  }
  [[nodiscard]] const FunctionAccessInfo *
  accessesFor(const FunctionDecl *fn) const {
    auto it = accesses.find(fn);
    return it != accesses.end() ? &it->second : nullptr;
  }
};

struct InterproceduralOptions {
  /// Cap on fixed-point passes (the paper: "can be repeated several times up
  /// to the maximum call depth ... stopped early if no updates are made").
  unsigned maxPasses = 16;
  /// Closed cross-TU summaries for bodiless callees, keyed by function
  /// name (already signature-checked by the Project link). Null preserves
  /// the classic single-TU pessimistic behavior. Non-owning.
  const std::map<std::string, PortableSummary> *importedSummaries = nullptr;
};

/// Phase 1 (§IV-C fixed point): per-function summaries from the base access
/// streams plus current callee summaries. `passesOut` (optional) receives
/// the number of passes performed.
[[nodiscard]] std::unordered_map<const FunctionDecl *, FunctionSummary>
computeFunctionSummaries(
    const TranslationUnit &unit,
    const std::unordered_map<const FunctionDecl *, FunctionAccessInfo>
        &baseAccesses,
    InterproceduralOptions options = {}, unsigned *passesOut = nullptr);

/// Phase 2: synthesizes call-site events so the data-flow walk sees callee
/// side effects inline.
[[nodiscard]] std::unordered_map<const FunctionDecl *, FunctionAccessInfo>
augmentCallSiteAccesses(
    const std::unordered_map<const FunctionDecl *, FunctionAccessInfo>
        &baseAccesses,
    const std::unordered_map<const FunctionDecl *, FunctionSummary>
        &summaries);

/// Runs access collection plus both phases for every defined function in
/// the unit.
[[nodiscard]] InterproceduralResult
runInterproceduralAnalysis(const TranslationUnit &unit,
                           InterproceduralOptions options = {});

} // namespace ompdart
