// Backward live-variable analysis over the AST-CFG (paper §II-B, used in
// §IV-D: "Upon reaching the end of the target data region ... the problem
// becomes a liveness problem"). Determines, for the region-exit decision,
// whether a variable written on the device may still be read on the host
// after the region, in which case the `from` map-type must be emitted.
#pragma once

#include "analysis/access.hpp"
#include "cfg/cfg.hpp"

#include <set>
#include <unordered_map>

namespace ompdart {

class LivenessAnalysis {
public:
  /// Computes block-level live-in/live-out sets for host-side reads.
  LivenessAnalysis(const AstCfg &cfg, const FunctionAccessInfo &accesses);

  /// True when `var` may be read (on the host) at some program point after
  /// the given leaf statement. Conservative: unknown accesses count as
  /// reads; only unconditional whole-variable writes kill.
  [[nodiscard]] bool isLiveAfter(const Stmt *stmt, const VarDecl *var) const;

  /// True when `var` outlives the function from the caller's perspective
  /// (global, pointer/array parameter data, or address-taken local) — such
  /// variables are always treated as live after the region.
  [[nodiscard]] bool escapes(const VarDecl *var) const;

  [[nodiscard]] const std::set<const VarDecl *> &
  liveIn(const BasicBlock *block) const;
  [[nodiscard]] const std::set<const VarDecl *> &
  liveOut(const BasicBlock *block) const;

private:
  struct BlockSets {
    std::set<const VarDecl *> use;  ///< read before any kill in the block
    std::set<const VarDecl *> kill; ///< definitely overwritten
    std::set<const VarDecl *> liveIn;
    std::set<const VarDecl *> liveOut;
  };

  [[nodiscard]] static bool eventReads(const AccessEvent &event);
  [[nodiscard]] static bool eventKills(const AccessEvent &event);

  const AstCfg &cfg_;
  const FunctionAccessInfo &accesses_;
  std::unordered_map<const BasicBlock *, BlockSets> sets_;
  std::set<const VarDecl *> escaping_;
  static const std::set<const VarDecl *> kEmpty;
};

} // namespace ompdart
