// Backward live-variable analysis over the AST-CFG (paper §II-B, used in
// §IV-D: "Upon reaching the end of the target data region ... the problem
// becomes a liveness problem"). Determines, for the region-exit decision,
// whether a variable written on the device may still be read on the host
// after the region, in which case the `from` map-type must be emitted.
//
// Representation: variables that participate in host liveness get dense
// indices and every per-block set (use/kill/live-in/live-out) is a bitset
// word-run inside one flat allocation, indexed by block id. The fixed point
// then unions/masks machine words instead of rebalancing std::set trees —
// profiling showed the tree-based version alone was ~35% of the cold plan
// stage. Escaping variables (globals, aggregate params, address-taken) are
// kept out of the bitsets entirely; `escapes()` answers for them.
#pragma once

#include "analysis/access.hpp"
#include "cfg/cfg.hpp"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ompdart {

class LivenessAnalysis {
public:
  /// Computes block-level live-in/live-out sets for host-side reads.
  LivenessAnalysis(const AstCfg &cfg, const FunctionAccessInfo &accesses);

  /// True when `var` may be read (on the host) at some program point after
  /// the given leaf statement. Conservative: unknown accesses count as
  /// reads; only unconditional whole-variable writes kill.
  [[nodiscard]] bool isLiveAfter(const Stmt *stmt, const VarDecl *var) const;

  /// True when `var` outlives the function from the caller's perspective
  /// (global, pointer/array parameter data, or address-taken local) — such
  /// variables are always treated as live after the region.
  [[nodiscard]] bool escapes(const VarDecl *var) const;

private:
  [[nodiscard]] static bool eventReads(const AccessEvent &event);
  [[nodiscard]] static bool eventKills(const AccessEvent &event);

  /// Word run for one per-block set inside `bits_`.
  [[nodiscard]] std::uint64_t *setWords(std::size_t setKind,
                                        std::size_t blockId) {
    return bits_.data() + ((setKind * blockCount_) + blockId) * words_;
  }
  [[nodiscard]] const std::uint64_t *setWords(std::size_t setKind,
                                              std::size_t blockId) const {
    return bits_.data() + ((setKind * blockCount_) + blockId) * words_;
  }

  static constexpr std::size_t kUse = 0;
  static constexpr std::size_t kKill = 1;
  static constexpr std::size_t kLiveIn = 2;
  static constexpr std::size_t kLiveOut = 3;

  const AstCfg &cfg_;
  const FunctionAccessInfo &accesses_;
  /// Dense index per tracked (local, non-escaping) variable.
  std::unordered_map<const VarDecl *, std::uint32_t> varIndex_;
  std::unordered_set<const VarDecl *> escaping_;
  std::size_t blockCount_ = 0;
  std::size_t words_ = 0; ///< 64-bit words per set
  /// 4 sets (use/kill/live-in/live-out) x blockCount_ x words_.
  std::vector<std::uint64_t> bits_;
};

} // namespace ompdart
