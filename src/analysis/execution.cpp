#include "analysis/execution.hpp"

#include "analysis/bounds.hpp"

#include <functional>

namespace ompdart {

ParentMap::ParentMap(const FunctionDecl *fn) {
  if (fn->body() != nullptr)
    visit(fn->body(), nullptr);
}

std::unordered_map<const Stmt *, const Stmt *> ParentMap::takeLinks() {
  return std::move(parents_);
}

void ParentMap::visit(const Stmt *stmt, const Stmt *parent) {
  if (stmt == nullptr)
    return;
  parents_[stmt] = parent;
  switch (stmt->kind()) {
  case StmtKind::Compound:
    for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
      visit(sub, stmt);
    return;
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    visit(ifStmt->thenStmt(), stmt);
    visit(ifStmt->elseStmt(), stmt);
    return;
  }
  case StmtKind::For: {
    const auto *forStmt = static_cast<const ForStmt *>(stmt);
    visit(forStmt->init(), stmt);
    visit(forStmt->body(), stmt);
    return;
  }
  case StmtKind::While:
    visit(static_cast<const WhileStmt *>(stmt)->body(), stmt);
    return;
  case StmtKind::Do:
    visit(static_cast<const DoStmt *>(stmt)->body(), stmt);
    return;
  case StmtKind::Switch:
    visit(static_cast<const SwitchStmt *>(stmt)->body(), stmt);
    return;
  case StmtKind::Case:
    visit(static_cast<const CaseStmt *>(stmt)->sub(), stmt);
    return;
  case StmtKind::Default:
    visit(static_cast<const DefaultStmt *>(stmt)->sub(), stmt);
    return;
  case StmtKind::OmpDirective:
    visit(static_cast<const OmpDirectiveStmt *>(stmt)->associated(), stmt);
    return;
  default:
    return;
  }
}

bool isLoopStmt(const Stmt *stmt) {
  return stmt != nullptr &&
         (stmt->kind() == StmtKind::For || stmt->kind() == StmtKind::While ||
          stmt->kind() == StmtKind::Do);
}

bool isConditionalStmt(const Stmt *stmt) {
  return stmt != nullptr && (stmt->kind() == StmtKind::If ||
                             stmt->kind() == StmtKind::Switch);
}

std::uint64_t saturatingMul(std::uint64_t a, std::uint64_t b) {
  constexpr std::uint64_t kCap = std::uint64_t{1} << 40;
  if (a == 0 || b == 0)
    return 0;
  if (a > kCap / b)
    return kCap;
  return a * b;
}

std::uint64_t loopTripsOrOne(const Stmt *loop) {
  if (const auto *forStmt = dynamic_cast<const ForStmt *>(loop)) {
    const LoopBounds bounds = analyzeForLoop(forStmt);
    if (bounds.valid && bounds.upperConst && bounds.lowerConst &&
        *bounds.upperConst > *bounds.lowerConst)
      return static_cast<std::uint64_t>(*bounds.upperConst -
                                        *bounds.lowerConst);
  }
  return 1;
}

ProvableMultiplier provableMultiplierOf(
    const std::unordered_map<const Stmt *, const Stmt *> &parents,
    const Stmt *site, std::size_t minBeginOffset) {
  ProvableMultiplier result;
  auto parentOf = [&](const Stmt *stmt) -> const Stmt * {
    auto it = parents.find(stmt);
    return it != parents.end() ? it->second : nullptr;
  };
  for (const Stmt *cursor = parentOf(site); cursor != nullptr;
       cursor = parentOf(cursor)) {
    if (cursor->range().begin.offset < minBeginOffset)
      break;
    if (isConditionalStmt(cursor)) {
      result.guarded = true;
      return result;
    }
    if (isLoopStmt(cursor))
      result.trips = saturatingMul(result.trips, loopTripsOrOne(cursor));
  }
  return result;
}

std::map<std::string, std::uint64_t>
estimateExecutions(const WeightedCallGraph &graph) {
  // The DFS runs entirely over interned ids; names are only spelled back
  // out into the (name-sorted, deterministic) result map at the end.
  const SymbolId mainSym = internSymbol("main");
  std::unordered_map<SymbolId, std::uint64_t> counts;
  auto seedOf = [&](SymbolId fn) -> std::uint64_t {
    return (graph.called.count(fn) == 0 || fn == mainSym) ? 1 : 0;
  };
  enum class State { Gray, Done };
  std::unordered_map<SymbolId, State> state;
  std::function<std::uint64_t(SymbolId)> eval = [&](SymbolId fn) -> std::uint64_t {
    auto stateIt = state.find(fn);
    if (stateIt != state.end()) {
      if (stateIt->second == State::Gray)
        return 0; // back-edge of a cycle: unprovable, charge nothing
      return counts[fn];
    }
    state[fn] = State::Gray;
    std::uint64_t total = seedOf(fn);
    auto callersIt = graph.callersOf.find(fn);
    if (callersIt != graph.callersOf.end()) {
      for (const WeightedCallGraph::Edge &edge : callersIt->second) {
        const std::uint64_t contribution =
            edge.guarded ? (eval(edge.caller) > 0 ? 1 : 0)
                         : saturatingMul(eval(edge.caller), edge.trips);
        total = std::min<std::uint64_t>(total + contribution,
                                        std::uint64_t{1} << 40);
      }
    }
    state[fn] = State::Done;
    counts[fn] = total;
    return total;
  };
  for (const SymbolId fn : graph.functions)
    eval(fn);
  std::map<std::string, std::uint64_t> executions;
  for (const auto &[sym, count] : counts)
    executions[symbolName(sym)] = count;
  return executions;
}

} // namespace ompdart
