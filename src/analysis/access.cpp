#include "analysis/access.hpp"

#include <algorithm>

namespace ompdart {

namespace {

/// Builtin functions whose pointer arguments have known effects; anything
/// else without a visible body is treated pessimistically by the
/// interprocedural pass.
enum class BuiltinEffect { None, ReadsArgs, WritesArg0, Memcpy, Unknown };

BuiltinEffect builtinEffect(const std::string &name) {
  static const char *pure[] = {"exp",  "sqrt", "fabs",  "pow",  "log",
                               "sin",  "cos",  "tan",   "atan", "floor",
                               "ceil", "fmin", "fmax",  "expf", "sqrtf",
                               "fabsf", "powf", "logf", "sinf", "cosf",
                               "fminf", "fmaxf", "log2", "cbrt", "abs",
                               "rand",  "srand", "atoi", "exit"};
  for (const char *fn : pure)
    if (name == fn)
      return BuiltinEffect::ReadsArgs;
  if (name == "printf")
    return BuiltinEffect::ReadsArgs;
  if (name == "malloc" || name == "calloc" || name == "free")
    return BuiltinEffect::None; // allocation, not data access
  if (name == "memset")
    return BuiltinEffect::WritesArg0;
  if (name == "memcpy")
    return BuiltinEffect::Memcpy;
  return BuiltinEffect::Unknown;
}

/// Walks expressions collecting accesses; maintains per-statement read and
/// write lists so emission order is reads-then-writes.
class AccessCollector {
public:
  explicit AccessCollector(FunctionAccessInfo &info) : info_(info) {}

  void run(const FunctionDecl *fn) {
    info_.function = fn;
    if (fn->body() != nullptr)
      visitStmt(fn->body());
  }

private:
  struct StmtAccesses {
    std::vector<AccessEvent> reads;
    std::vector<AccessEvent> writes;
  };

  void visitStmt(const Stmt *stmt) {
    if (stmt == nullptr)
      return;
    switch (stmt->kind()) {
    case StmtKind::Compound:
      for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
        visitStmt(sub);
      return;
    case StmtKind::Decl: {
      beginStmt(stmt);
      for (const VarDecl *var : static_cast<const DeclStmt *>(stmt)->decls()) {
        if (var->init() != nullptr) {
          visitExpr(var->init(), AccessKind::Read);
          // The declaration itself writes the variable.
          emit(const_cast<VarDecl *>(var), AccessKind::Write, nullptr);
        }
      }
      endStmt(stmt);
      return;
    }
    case StmtKind::Expr:
      beginStmt(stmt);
      visitExpr(static_cast<const ExprStmt *>(stmt)->expr(),
                AccessKind::Read);
      endStmt(stmt);
      return;
    case StmtKind::If: {
      const auto *ifStmt = static_cast<const IfStmt *>(stmt);
      beginStmt(stmt);
      visitExpr(ifStmt->cond(), AccessKind::Read);
      endStmt(stmt);
      ++conditionalDepth_;
      visitStmt(ifStmt->thenStmt());
      visitStmt(ifStmt->elseStmt());
      --conditionalDepth_;
      return;
    }
    case StmtKind::For: {
      const auto *forStmt = static_cast<const ForStmt *>(stmt);
      visitStmt(forStmt->init());
      if (forStmt->cond() != nullptr) {
        beginStmt(stmt);
        visitExpr(forStmt->cond(), AccessKind::Read);
        endStmt(stmt);
      }
      visitStmt(forStmt->body());
      if (forStmt->inc() != nullptr) {
        beginStmt(stmt);
        visitExpr(forStmt->inc(), AccessKind::Read);
        endStmt(stmt);
      }
      return;
    }
    case StmtKind::While: {
      const auto *whileStmt = static_cast<const WhileStmt *>(stmt);
      beginStmt(stmt);
      visitExpr(whileStmt->cond(), AccessKind::Read);
      endStmt(stmt);
      visitStmt(whileStmt->body());
      return;
    }
    case StmtKind::Do: {
      const auto *doStmt = static_cast<const DoStmt *>(stmt);
      visitStmt(doStmt->body());
      beginStmt(stmt);
      visitExpr(doStmt->cond(), AccessKind::Read);
      endStmt(stmt);
      return;
    }
    case StmtKind::Switch: {
      const auto *switchStmt = static_cast<const SwitchStmt *>(stmt);
      beginStmt(stmt);
      visitExpr(switchStmt->cond(), AccessKind::Read);
      endStmt(stmt);
      visitStmt(switchStmt->body());
      return;
    }
    case StmtKind::Case:
      ++conditionalDepth_;
      visitStmt(static_cast<const CaseStmt *>(stmt)->sub());
      --conditionalDepth_;
      return;
    case StmtKind::Default:
      ++conditionalDepth_;
      visitStmt(static_cast<const DefaultStmt *>(stmt)->sub());
      --conditionalDepth_;
      return;
    case StmtKind::Return: {
      const auto *returnStmt = static_cast<const ReturnStmt *>(stmt);
      if (returnStmt->value() != nullptr) {
        beginStmt(stmt);
        visitExpr(returnStmt->value(), AccessKind::Read);
        endStmt(stmt);
      }
      return;
    }
    case StmtKind::OmpDirective: {
      const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
      // Clause expressions (num_teams etc.) are host-evaluated reads.
      beginStmt(stmt);
      for (const OmpClause &clause : directive->clauses()) {
        if (clause.value != nullptr)
          visitExpr(clause.value, AccessKind::Read);
        // Reduction variables are read and written on the device.
        if (clause.kind == OmpClauseKind::Reduction &&
            directive->isOffloadKernel()) {
          for (const OmpObject &object : clause.objects) {
            if (object.var == nullptr)
              continue;
            const OmpDirectiveStmt *outerKernel = kernel_;
            kernel_ = directive;
            emit(object.var, AccessKind::ReadWrite, nullptr);
            kernel_ = outerKernel;
          }
        }
      }
      endStmt(stmt);
      if (directive->associated() != nullptr) {
        if (directive->isOffloadKernel()) {
          const OmpDirectiveStmt *outerKernel = kernel_;
          kernel_ = directive;
          visitStmt(directive->associated());
          kernel_ = outerKernel;
        } else {
          visitStmt(directive->associated());
        }
      }
      return;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Null:
      return;
    }
  }

  void visitExpr(const Expr *expr, AccessKind context) {
    if (expr == nullptr)
      return;
    switch (expr->kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::FloatLiteral:
    case ExprKind::CharLiteral:
    case ExprKind::StringLiteral:
    case ExprKind::Sizeof:
      return;
    case ExprKind::DeclRef: {
      VarDecl *var = static_cast<const DeclRefExpr *>(expr)->decl();
      if (var != nullptr && !var->name().empty())
        emit(var, context, nullptr);
      return;
    }
    case ExprKind::ArraySubscript: {
      const auto *subscript = static_cast<const ArraySubscriptExpr *>(expr);
      // Every index along the (possibly multi-dimensional) subscript chain
      // is a read; the base variable carries the access context. The event
      // records the outermost subscript so the bounds analysis sees the
      // whole `a[i][j]` access.
      const Expr *cursor = subscript;
      while (cursor != nullptr &&
             cursor->kind() == ExprKind::ArraySubscript) {
        const auto *level = static_cast<const ArraySubscriptExpr *>(cursor);
        visitExpr(level->index(), AccessKind::Read);
        cursor = ignoreParensAndCasts(level->base());
      }
      VarDecl *baseVar = baseVariableOf(subscript);
      if (baseVar != nullptr) {
        emit(baseVar, context, subscript, /*pointeeAccess=*/true);
      } else if (cursor != nullptr) {
        visitExpr(cursor, AccessKind::Read);
      }
      return;
    }
    case ExprKind::Member: {
      const auto *member = static_cast<const MemberExpr *>(expr);
      // Access to s.f (or p->f) is an access to the whole record object —
      // the paper maps structs as units.
      VarDecl *baseVar = referencedVar(member->base());
      if (baseVar != nullptr)
        emit(baseVar, context, nullptr, /*pointeeAccess=*/true);
      else
        visitExpr(member->base(), context);
      return;
    }
    case ExprKind::Call: {
      const auto *call = static_cast<const CallExpr *>(expr);
      handleCall(call);
      return;
    }
    case ExprKind::Unary: {
      const auto *unary = static_cast<const UnaryExpr *>(expr);
      switch (unary->op()) {
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec:
        visitExpr(unary->operand(), AccessKind::ReadWrite);
        return;
      case UnaryOp::Deref: {
        // *p: an access to p's pointee; also reads p itself.
        VarDecl *pointer = referencedVar(unary->operand());
        if (pointer != nullptr) {
          emit(pointer, context, nullptr, /*pointeeAccess=*/true);
        } else {
          visitExpr(unary->operand(), AccessKind::Read);
        }
        return;
      }
      case UnaryOp::AddrOf: {
        VarDecl *var = referencedVar(unary->operand());
        if (var != nullptr) {
          if (std::find(info_.addressTaken.begin(), info_.addressTaken.end(),
                        var) == info_.addressTaken.end())
            info_.addressTaken.push_back(var);
          emit(var, AccessKind::Unknown, nullptr);
        } else {
          visitExpr(unary->operand(), AccessKind::Read);
        }
        return;
      }
      default:
        visitExpr(unary->operand(), AccessKind::Read);
        return;
      }
    }
    case ExprKind::Binary: {
      const auto *binary = static_cast<const BinaryExpr *>(expr);
      if (isAssignmentOp(binary->op())) {
        visitExpr(binary->rhs(), AccessKind::Read);
        visitExpr(binary->lhs(), binary->op() == BinaryOp::Assign
                                     ? AccessKind::Write
                                     : AccessKind::ReadWrite);
        return;
      }
      visitExpr(binary->lhs(), AccessKind::Read);
      visitExpr(binary->rhs(), AccessKind::Read);
      return;
    }
    case ExprKind::Conditional: {
      const auto *conditional = static_cast<const ConditionalExpr *>(expr);
      visitExpr(conditional->cond(), AccessKind::Read);
      ++conditionalDepth_;
      visitExpr(conditional->trueExpr(), context);
      visitExpr(conditional->falseExpr(), context);
      --conditionalDepth_;
      return;
    }
    case ExprKind::Cast:
      visitExpr(static_cast<const CastExpr *>(expr)->operand(), context);
      return;
    case ExprKind::Paren:
      visitExpr(static_cast<const ParenExpr *>(expr)->inner(), context);
      return;
    case ExprKind::InitList:
      for (const Expr *init :
           static_cast<const InitListExpr *>(expr)->inits())
        visitExpr(init, AccessKind::Read);
      return;
    }
  }

  void handleCall(const CallExpr *call) {
    // Scalar arguments are reads; pointer arguments depend on the callee.
    const BuiltinEffect effect =
        call->callee() == nullptr ? builtinEffect(call->calleeName())
                                  : BuiltinEffect::None;
    unsigned index = 0;
    for (const Expr *arg : call->args()) {
      const Expr *stripped = ignoreParensAndCasts(arg);
      VarDecl *var = referencedVar(stripped);
      const bool pointerLike =
          var != nullptr &&
          (var->type()->isPointer() || var->type()->isArray());
      if (!pointerLike) {
        visitExpr(arg, AccessKind::Read);
        ++index;
        continue;
      }
      if (call->callee() != nullptr) {
        // User function: the pointer value itself is read here; pointee
        // effects are added by the interprocedural pass.
        emit(var, AccessKind::Read, nullptr);
      } else {
        switch (effect) {
        case BuiltinEffect::ReadsArgs:
          emit(var, AccessKind::Read, nullptr, /*pointeeAccess=*/true);
          break;
        case BuiltinEffect::None:
          emit(var, AccessKind::Read, nullptr);
          break;
        case BuiltinEffect::WritesArg0:
        case BuiltinEffect::Memcpy:
          emit(var, index == 0 ? AccessKind::Write : AccessKind::Read,
               nullptr, /*pointeeAccess=*/true);
          break;
        case BuiltinEffect::Unknown:
          emit(var, AccessKind::Unknown, nullptr, /*pointeeAccess=*/true);
          break;
        }
      }
      ++index;
    }
    if (call->callee() != nullptr)
      info_.callSites.push_back(
          CallSite{call, currentStmt_, kernel_ != nullptr, kernel_});
  }

  void emit(VarDecl *var, AccessKind kind,
            const ArraySubscriptExpr *subscript,
            bool pointeeAccess = false) {
    AccessEvent event;
    event.var = var;
    event.kind = kind;
    event.onDevice = kernel_ != nullptr;
    event.kernel = kernel_;
    event.stmt = currentStmt_;
    event.subscript = subscript;
    event.pointeeAccess = pointeeAccess || subscript != nullptr;
    event.conditional = conditionalDepth_ > 0;
    switch (kind) {
    case AccessKind::Read:
      current_.reads.push_back(event);
      break;
    case AccessKind::Write:
      current_.writes.push_back(event);
      break;
    case AccessKind::ReadWrite:
    case AccessKind::Unknown:
      // Read component first, write component after.
      current_.reads.push_back(event);
      current_.writes.push_back(event);
      break;
    }
  }

  void beginStmt(const Stmt *stmt) {
    currentStmt_ = stmt;
    // clear() keeps the vectors' capacity: statements repeat similar event
    // counts, so the buffers stop reallocating after the first few.
    current_.reads.clear();
    current_.writes.clear();
  }

  void endStmt(const Stmt *stmt) {
    auto &bucket = info_.byStmt[stmt];
    bucket.reserve(bucket.size() + current_.reads.size() +
                   current_.writes.size());
    for (AccessEvent &event : current_.reads) {
      // ReadWrite events appear in both lists; normalize the read copy.
      AccessEvent read = event;
      if (read.kind == AccessKind::ReadWrite)
        read.kind = AccessKind::Read;
      if (read.kind == AccessKind::Unknown)
        read.kind = AccessKind::Unknown;
      info_.events.push_back(read);
      bucket.push_back(read);
    }
    for (AccessEvent &event : current_.writes) {
      AccessEvent write = event;
      if (write.kind == AccessKind::ReadWrite)
        write.kind = AccessKind::Write;
      if (write.kind == AccessKind::Unknown)
        write.kind = AccessKind::Unknown;
      info_.events.push_back(write);
      bucket.push_back(write);
    }
    currentStmt_ = nullptr;
  }

  static VarDecl *baseVariableOf(const ArraySubscriptExpr *subscript) {
    const Expr *base = ignoreParensAndCasts(subscript->base());
    while (base != nullptr && base->kind() == ExprKind::ArraySubscript)
      base = ignoreParensAndCasts(
          static_cast<const ArraySubscriptExpr *>(base)->base());
    return base != nullptr ? referencedVar(base) : nullptr;
  }

  FunctionAccessInfo &info_;
  const OmpDirectiveStmt *kernel_ = nullptr;
  const Stmt *currentStmt_ = nullptr;
  unsigned conditionalDepth_ = 0;
  StmtAccesses current_;
};

} // namespace

const char *accessKindName(AccessKind kind) {
  switch (kind) {
  case AccessKind::Read:
    return "read";
  case AccessKind::Write:
    return "write";
  case AccessKind::ReadWrite:
    return "read-write";
  case AccessKind::Unknown:
    return "unknown";
  }
  return "?";
}

FunctionAccessInfo collectAccesses(const FunctionDecl *fn) {
  FunctionAccessInfo info;
  AccessCollector collector(info);
  collector.run(fn);
  return info;
}

bool isAggregateLike(const VarDecl *var) {
  if (var == nullptr)
    return false;
  const Type *type = var->type();
  return type->isArray() || type->isPointer() || type->isRecord();
}

} // namespace ompdart
