// Memory-access collection and classification (paper §IV-B).
//
// Every variable reference in a function is classified as read / write /
// read-write / unknown, tagged with the memory space it executes in (host or
// device), the leaf statement that performs it, and — for array accesses —
// the innermost subscript expression (consumed by the bounds analysis and
// Algorithm 1). Events for one statement are ordered reads-before-writes,
// matching the RAW-dependency granularity the data-flow analysis needs.
#pragma once

#include "frontend/ast.hpp"

#include <unordered_map>
#include <vector>

namespace ompdart {

enum class AccessKind { Read, Write, ReadWrite, Unknown };

[[nodiscard]] const char *accessKindName(AccessKind kind);

/// One classified memory access.
struct AccessEvent {
  VarDecl *var = nullptr;
  AccessKind kind = AccessKind::Read;
  /// True when the access executes inside an offload kernel.
  bool onDevice = false;
  /// The kernel directive when onDevice.
  const OmpDirectiveStmt *kernel = nullptr;
  /// Leaf statement performing the access.
  const Stmt *stmt = nullptr;
  /// Innermost array subscript when the access is an element access
  /// (`a[expr]`); null for whole-variable accesses.
  const ArraySubscriptExpr *subscript = nullptr;
  /// True when this event was synthesized from a callee's side effects.
  bool fromCall = false;
  /// Call-synthesized writes only: the callee provably overwrites the
  /// whole argument object (full `[0, bound)` sweep whose bound argument
  /// equals the array's extent at this call site), so the planner may
  /// treat the call as a kill without a device->host sync first.
  bool provenFullCoverage = false;
  /// True when the access touches the variable's *data* (array element,
  /// dereferenced pointee, struct contents) rather than merely its value
  /// (e.g. reading a pointer to pass it along). Mapping decisions for
  /// aggregates only follow data accesses.
  bool pointeeAccess = false;
  /// True when the access sits under a branch (if/switch/?:) relative to its
  /// enclosing kernel or function — such writes cannot prove full coverage.
  bool conditional = false;

  /// Whether this event represents an access to mapped data for `var`.
  /// Pointer AND array variables referenced without a subscript or
  /// explicit pointee access only expose their address (arrays decay when
  /// passed to callees; the callee's data effects are synthesized by the
  /// interprocedural pass) — treating such an argument as a host data read
  /// made the planner emit a dead device->host sync before every
  /// array-passing helper call.
  [[nodiscard]] bool isDataAccess() const {
    return pointeeAccess || var == nullptr ||
           (!var->type()->isPointer() && !var->type()->isArray());
  }
};

/// A call site recorded for the interprocedural pass.
struct CallSite {
  const CallExpr *call = nullptr;
  const Stmt *stmt = nullptr;
  bool onDevice = false;
  const OmpDirectiveStmt *kernel = nullptr;
};

/// Accesses of one function, in execution (source) order.
struct FunctionAccessInfo {
  const FunctionDecl *function = nullptr;
  /// All events in order; events of one statement are reads-then-writes.
  std::vector<AccessEvent> events;
  /// Events grouped by leaf statement (same objects as `events`).
  std::unordered_map<const Stmt *, std::vector<AccessEvent>> byStmt;
  std::vector<CallSite> callSites;
  /// Variables whose address is taken (escape; treated pessimistically).
  std::vector<VarDecl *> addressTaken;

  [[nodiscard]] bool isAddressTaken(const VarDecl *var) const {
    for (const VarDecl *taken : addressTaken)
      if (taken == var)
        return true;
    return false;
  }
};

/// Collects accesses for one function. Call effects are added separately by
/// the interprocedural pass (see interproc.hpp).
[[nodiscard]] FunctionAccessInfo collectAccesses(const FunctionDecl *fn);

/// True when the variable's type makes it mappable data (arrays, pointers
/// to data, structs) rather than a scalar.
[[nodiscard]] bool isAggregateLike(const VarDecl *var);

} // namespace ompdart
