// Shared mapped-extent resolution: declared/malloc extents with Guo-style
// inference from device-access loop bounds and interprocedural call-site
// propagation. Extracted from the mapping planner so other plan consumers
// (the static plan-safety checker in src/check) prove full-coverage writes
// against exactly the extents the planner planned with — a checker that
// re-derived extents its own way would disagree with the planner precisely
// on the programs where inference matters.
//
// The resolver is stateless across functions except for per-function
// context (the function's augmented access stream and AST-CFG), installed
// via `setFunctionContext` before queries. Diagnostics are optional: the
// planner passes its engine so call-site disagreements are reported once;
// the checker passes nullptr and resolves silently (the plan stage already
// reported them).
#pragma once

#include "analysis/bounds.hpp"
#include "analysis/interproc.hpp"
#include "analysis/summary.hpp"
#include "cfg/cfg.hpp"
#include "support/diagnostics.hpp"

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ompdart {

class ExtentResolver {
public:
  ExtentResolver(const TranslationUnit &unit,
                 const InterproceduralResult &interproc,
                 const MallocExtents &mallocExtents,
                 const summary::TuImports *imports, DiagnosticEngine *diags);

  /// Installs the per-function context subsequent queries resolve against.
  /// Resets the extent memo: loop-bound inference depends on the installed
  /// access stream and CFG.
  void setFunctionContext(const FunctionAccessInfo *accesses,
                          const AstCfg *cfg) {
    accesses_ = accesses;
    cfg_ = cfg;
    extentMemo_.clear();
  }

  /// Declared/malloc extent, falling back to inference from the loop bounds
  /// of the function's accesses when the allocation size is invisible.
  [[nodiscard]] ExtentInfo effectiveExtent(VarDecl *var) const;

  /// Extent of a pointer parameter derived from agreeing call-site
  /// arguments (interprocedural propagation).
  [[nodiscard]] ExtentInfo callSiteExtent(VarDecl *var) const;

  /// Constant value of a symbolic pointer extent, resolved by folding the
  /// extent expression, or — when it names a parameter — by folding the
  /// agreeing argument at every call site.
  [[nodiscard]] std::optional<std::uint64_t>
  symbolicExtentElems(const ExtentInfo &extent) const;

  /// Constant value a parameter holds across all call sites — local ones
  /// plus imported cross-TU records (nullopt when any call passes a
  /// non-constant or the sites disagree; disagreement additionally emits a
  /// diagnostic naming the call sites when a DiagnosticEngine is attached).
  [[nodiscard]] std::optional<std::int64_t>
  paramConstAcrossCallSites(const VarDecl *param) const;

  /// The function owning `param` and its index, or {nullptr, -1}.
  [[nodiscard]] std::pair<const FunctionDecl *, int>
  paramOwner(const VarDecl *param) const;

private:
  [[nodiscard]] ExtentInfo computeEffectiveExtent(VarDecl *var) const;

  void reportCallSiteDisagreement(const VarDecl *param,
                                  const FunctionDecl *owner,
                                  const std::string &what,
                                  const std::vector<std::string> &sites) const;

  const TranslationUnit &unit_;
  const InterproceduralResult &interproc_;
  const MallocExtents &mallocExtents_;
  const summary::TuImports *imports_;
  DiagnosticEngine *diags_;

  // Per-function context.
  const FunctionAccessInfo *accesses_ = nullptr;
  const AstCfg *cfg_ = nullptr;

  /// Parameters whose call-site disagreement was already diagnosed (the
  /// extent queries run once per mapped variable reference; the diagnostic
  /// must not repeat).
  mutable std::set<std::pair<const VarDecl *, std::string>>
      disagreementDiagnosed_;

  /// effectiveExtent is pure for a fixed function context but costs a full
  /// scan of the access stream (plus loop-bound analysis per enclosing
  /// loop, and call-site walks for parameters); the planner and checker
  /// query it once per candidate, so memoize per variable until the
  /// context changes. Disagreement diagnostics stay correct: they are
  /// deduplicated independently above, so dropping repeat computations
  /// never drops a first-time report.
  mutable std::unordered_map<VarDecl *, ExtentInfo> extentMemo_;
};

} // namespace ompdart
